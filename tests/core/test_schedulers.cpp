#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/check.h"
#include "core/baselines.h"
#include "core/cocg_scheduler.h"
#include "core/offline.h"
#include "game/library.h"
#include "platform/cloud_platform.h"

namespace cocg::core {
namespace {

/// Static suite so GameSpec pointers stay valid for the whole binary.
const std::vector<game::GameSpec>& suite() {
  static const std::vector<game::GameSpec> s = game::paper_suite();
  return s;
}

std::map<std::string, TrainedGame> small_models(std::uint64_t seed = 31) {
  OfflineConfig cfg;
  cfg.profiling_runs = 8;
  cfg.corpus_runs = 30;
  cfg.seed = seed;
  return train_suite(suite(), cfg);
}

platform::PlatformConfig quiet_platform(std::uint64_t seed = 1) {
  platform::PlatformConfig cfg;
  cfg.seed = seed;
  cfg.session.spike_prob = 0.0;
  return cfg;
}

// --- VBP ---

TEST(Vbp, ReservesNinetyPercentOfPeak) {
  auto models = small_models();
  const ResourceVector peak =
      models.at("Genshin Impact").profile->peak_demand;
  platform::CloudPlatform cloud(
      quiet_platform(),
      std::make_unique<VbpScheduler>(std::move(models)));
  cloud.add_server(hw::ServerSpec{});
  static const auto genshin = game::make_genshin();
  cloud.submit(&genshin, 0, 1);
  cloud.run(10 * 1000);
  ASSERT_EQ(cloud.running_sessions(), 1u);
  const auto info = cloud.session_info(cloud.session_ids()[0]);
  EXPECT_NEAR(info.allocation.gpu(), 0.9 * peak.gpu(), 1e-9);
  EXPECT_NEAR(info.allocation.cpu(), 0.9 * peak.cpu(), 1e-9);
}

TEST(Vbp, RefusesWhenReservationDoesNotFit) {
  platform::CloudPlatform cloud(
      quiet_platform(2), std::make_unique<VbpScheduler>(small_models()));
  hw::ServerSpec one_gpu;
  one_gpu.num_gpus = 1;
  cloud.add_server(one_gpu);
  static const auto genshin = game::make_genshin();
  static const auto dmc = game::make_devil_may_cry();
  cloud.submit(&genshin, 0, 1);
  cloud.submit(&dmc, 0, 2);
  cloud.run(20 * 1000);
  // Genshin reserves ~70% GPU; DMC's ~68% cannot co-locate under VBP.
  EXPECT_EQ(cloud.running_sessions(), 1u);
  EXPECT_EQ(cloud.queued_requests(), 1u);
}

// --- GAugur ---

TEST(Gaugur, FixedLimitBetweenMeanAndPeak) {
  auto models = small_models();
  GaugurScheduler g(std::move(models));
  const ResourceVector limit = g.fixed_limit("DOTA2");
  auto models2 = small_models();
  const auto& profile = *models2.at("DOTA2").profile;
  EXPECT_LT(limit.gpu(), profile.peak_demand.gpu());
  EXPECT_GT(limit.gpu(), 0.0);
}

TEST(Gaugur, RefusesHeavyPairOnOneGpu) {
  platform::CloudPlatform cloud(
      quiet_platform(3),
      std::make_unique<GaugurScheduler>(small_models()));
  hw::ServerSpec one_gpu;
  one_gpu.num_gpus = 1;
  cloud.add_server(one_gpu);
  static const auto genshin = game::make_genshin();
  static const auto dmc = game::make_devil_may_cry();
  cloud.submit(&genshin, 0, 1);
  cloud.submit(&dmc, 2, 2);
  cloud.run(20 * 1000);
  // Fixed limits of the two heavy titles exceed one GPU together.
  EXPECT_EQ(cloud.running_sessions(), 1u);
}

TEST(Gaugur, AdmitsLightPair) {
  platform::CloudPlatform cloud(
      quiet_platform(4),
      std::make_unique<GaugurScheduler>(small_models()));
  hw::ServerSpec one_gpu;
  one_gpu.num_gpus = 1;
  cloud.add_server(one_gpu);
  static const auto contra = game::make_contra();
  static const auto dota2 = game::make_dota2();
  cloud.submit(&contra, 0, 1);
  cloud.submit(&dota2, 1, 2);  // arcade script, light
  cloud.run(20 * 1000);
  EXPECT_EQ(cloud.running_sessions(), 2u);
}

// --- Improved (reactive) ---

TEST(Improved, ReallocatesTowardObservedUsage) {
  platform::CloudPlatform cloud(
      quiet_platform(5),
      std::make_unique<ImprovedScheduler>(small_models()));
  cloud.add_server(hw::ServerSpec{});
  static const auto genshin = game::make_genshin();
  cloud.submit(&genshin, 0, 1);
  cloud.run(10 * 1000);
  ASSERT_EQ(cloud.running_sessions(), 1u);
  const SessionId sid = cloud.session_ids()[0];
  const double alloc_loading = cloud.session_info(sid).allocation.gpu();
  // Run until well inside the first execution stage; the reactive
  // controller follows the higher observed GPU usage.
  cloud.run(120 * 1000);
  if (cloud.running_sessions() == 1u) {
    const double alloc_exec = cloud.session_info(sid).allocation.gpu();
    EXPECT_GT(alloc_exec, alloc_loading);
  }
}

// --- CoCG ---

TEST(Cocg, RequiresModels) {
  EXPECT_THROW(CocgScheduler({}, CocgConfig{}), ContractError);
}

TEST(Cocg, AdmitsAndTracksSessions) {
  auto sched = std::make_unique<CocgScheduler>(small_models());
  auto* sched_ptr = sched.get();
  platform::CloudPlatform cloud(quiet_platform(6), std::move(sched));
  cloud.add_server(hw::ServerSpec{});
  static const auto genshin = game::make_genshin();
  cloud.submit(&genshin, 0, 1);
  cloud.run(30 * 1000);
  EXPECT_EQ(cloud.running_sessions(), 1u);
  EXPECT_EQ(sched_ptr->total_callbacks(), 0);  // quiet run, no transients
}

TEST(Cocg, AllocationFollowsStages) {
  platform::CloudPlatform cloud(
      quiet_platform(7),
      std::make_unique<CocgScheduler>(small_models()));
  cloud.add_server(hw::ServerSpec{});
  static const auto genshin = game::make_genshin();
  cloud.submit(&genshin, 0, 1);
  // Collect the allocation over time; it must change as stages change
  // (fine-grained allocation, unlike VBP's constant reservation).
  std::set<long> distinct_gpu_allocs;
  for (int step = 0; step < 60; ++step) {
    cloud.run(10 * 1000);
    if (cloud.running_sessions() == 0) break;
    const auto info = cloud.session_info(cloud.session_ids()[0]);
    distinct_gpu_allocs.insert(std::lround(info.allocation.gpu()));
  }
  EXPECT_GE(distinct_gpu_allocs.size(), 2u);
}

TEST(Cocg, CoLocatesComplementaryPairOnOneGpu) {
  platform::CloudPlatform cloud(
      quiet_platform(8),
      std::make_unique<CocgScheduler>(small_models()));
  hw::ServerSpec one_gpu;
  one_gpu.num_gpus = 1;
  cloud.add_server(one_gpu);
  static const auto genshin = game::make_genshin();
  static const auto dota2 = game::make_dota2();
  cloud.add_source({&genshin, 1, 4});
  cloud.add_source({&dota2, 1, 4});
  cloud.run(5 * 60 * 1000);
  // CoCG's fine-grained admission gets both running together.
  EXPECT_EQ(cloud.running_sessions(), 2u);
}

TEST(Cocg, ThroughputBeatsVbpOnPairWorkload) {
  auto run_with = [&](std::unique_ptr<platform::Scheduler> sched) {
    platform::CloudPlatform cloud(quiet_platform(9), std::move(sched));
    hw::ServerSpec one_gpu;
    one_gpu.num_gpus = 1;
    cloud.add_server(one_gpu);
    static const auto genshin = game::make_genshin();
    static const auto dota2 = game::make_dota2();
    cloud.add_source({&genshin, 1, 4});
    cloud.add_source({&dota2, 1, 4});
    cloud.run(40 * 60 * 1000);
    return cloud.throughput();
  };
  const double t_cocg =
      run_with(std::make_unique<CocgScheduler>(small_models(41)));
  const double t_vbp =
      run_with(std::make_unique<VbpScheduler>(small_models(41)));
  EXPECT_GE(t_cocg, t_vbp);
}

TEST(Cocg, RegulatorHoldsLoadingUnderPressure) {
  CocgConfig cfg;
  cfg.regulator.capacity_limit = 0.5;  // force pressure early
  platform::CloudPlatform cloud(
      quiet_platform(10),
      std::make_unique<CocgScheduler>(small_models(), cfg));
  hw::ServerSpec one_gpu;
  one_gpu.num_gpus = 1;
  cloud.add_server(one_gpu);
  static const auto contra = game::make_contra();
  static const auto dota2 = game::make_dota2();
  cloud.submit(&dota2, 1, 1);
  cloud.submit(&contra, 0, 2);
  cloud.run(3 * 60 * 1000);
  // With a 50% limit the two games' combined provisioning exceeds the
  // limit whenever either pre-provisions an execution stage; at least one
  // loading stage must have been stretched or a session kept queued.
  bool any_extension = false;
  for (const auto& run : cloud.completed_runs()) {
    if (run.loading_extension_ms > 0) any_extension = true;
  }
  for (SessionId sid : cloud.session_ids()) {
    if (cloud.session_truth(sid).loading_extension_ms() > 0) {
      any_extension = true;
    }
  }
  EXPECT_TRUE(any_extension || cloud.queued_requests() > 0);
}

TEST(Cocg, SessionStateCleanedUpOnEnd) {
  auto sched = std::make_unique<CocgScheduler>(small_models());
  auto* sched_ptr = sched.get();
  platform::CloudPlatform cloud(quiet_platform(11), std::move(sched));
  cloud.add_server(hw::ServerSpec{});
  static const auto contra = game::make_contra();
  cloud.submit(&contra, 0, 1);
  cloud.run(20 * 60 * 1000);  // far beyond one Contra run
  EXPECT_GE(cloud.completed_runs().size(), 1u);
  EXPECT_EQ(cloud.running_sessions(), 0u);
  EXPECT_EQ(sched_ptr->total_callbacks(), 0);  // state map empty again
}

TEST(Cocg, UntrainedGameStaysQueued) {
  // Train only Contra; submit Genshin → no model → request remains queued.
  OfflineConfig cfg;
  cfg.profiling_runs = 6;
  cfg.corpus_runs = 10;
  std::vector<game::GameSpec> just_contra = {game::make_contra()};
  static const std::vector<game::GameSpec> keep = just_contra;
  auto models = train_suite(keep, cfg);
  platform::CloudPlatform cloud(
      quiet_platform(12),
      std::make_unique<CocgScheduler>(std::move(models)));
  cloud.add_server(hw::ServerSpec{});
  static const auto genshin = game::make_genshin();
  cloud.submit(&genshin, 0, 1);
  cloud.run(30 * 1000);
  EXPECT_EQ(cloud.running_sessions(), 0u);
  EXPECT_EQ(cloud.queued_requests(), 1u);
}

}  // namespace
}  // namespace cocg::core
