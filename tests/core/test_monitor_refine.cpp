// Window-based stage refinement: multi-cluster stage types (§IV-A's
// "three bosses in a secret realm") are only identifiable from the union
// of clusters observed over time — the monitor must upgrade its judgement
// and score predictions against the resolved type.
#include <gtest/gtest.h>

#include "core/online_monitor.h"
#include "core/stage_predictor.h"

namespace cocg::core {
namespace {

/// Profile with loading (0), two singleton types and one two-cluster
/// "realm" type {1,2} — like Genshin's Domain.
GameProfile realm_profile() {
  GameProfile p;
  p.game_name = "realm";
  p.norm_scale = default_norm_scale();
  const double gpu[3] = {5, 40, 75};
  const double cpu[3] = {50, 30, 45};
  for (int c = 0; c < 3; ++c) {
    ClusterInfo ci;
    ci.id = c;
    ci.centroid = ResourceVector{cpu[c], gpu[c], 1000, 1000};
    ci.loading = (c == 0);
    p.clusters.push_back(ci);
  }
  auto add_type = [&](int id, bool loading, std::vector<int> clusters) {
    StageTypeInfo st;
    st.id = id;
    st.loading = loading;
    st.clusters = std::move(clusters);
    ResourceVector peak;
    for (int c : st.clusters) {
      peak = ResourceVector::max(
          peak, p.clusters[static_cast<std::size_t>(c)].centroid);
    }
    st.peak_demand = peak;
    st.mean_demand = peak;
    st.mean_duration_ms = 120000;
    st.occurrences = 5;
    p.stage_types.push_back(st);
  };
  add_type(0, true, {0});
  add_type(1, false, {1});
  add_type(2, false, {2});
  add_type(3, false, {1, 2});  // the realm
  p.loading_stage_type = 0;
  p.peak_demand = p.clusters[2].centroid;
  return p;
}

StagePredictor realm_predictor(const GameProfile& p) {
  StagePredictor pred(&p, PredictorConfig{});
  std::vector<TrainingRun> runs;
  for (int i = 0; i < 30; ++i) {
    runs.push_back(TrainingRun{{0, 3, 0, 1, 0}, 1, 0});  // realm → solo
  }
  Rng rng(1);
  pred.train(runs, rng);
  return pred;
}

struct Fixture {
  GameProfile profile = realm_profile();
  StagePredictor predictor = realm_predictor(profile);
  OnlineMonitor monitor{&profile, &predictor, 1, 0};

  MonitorEvent step(int cluster, TimeMs& t) {
    const auto ev =
        monitor.observe(t, profile.cluster(cluster).centroid);
    t += 5000;
    return ev;
  }
};

TEST(MonitorRefine, SignatureCompletionUpgradesJudgement) {
  Fixture f;
  TimeMs t = 0;
  f.step(0, t);
  f.step(0, t);
  // The realm opens showing only cluster 1 → judged as the singleton.
  EXPECT_EQ(f.step(1, t), MonitorEvent::kEnteredExecution);
  EXPECT_EQ(f.monitor.current_stage(), 1);
  f.step(1, t);
  // Cluster 2 appears: the window {1,2} completes the realm signature.
  EXPECT_EQ(f.step(2, t), MonitorEvent::kStageRefined);
  EXPECT_EQ(f.monitor.current_stage(), 3);
  // The upgrade rewrites history, not the error counters.
  EXPECT_EQ(f.monitor.exec_history(), (std::vector<int>{3}));
  EXPECT_EQ(f.monitor.callbacks(), 0);
  EXPECT_EQ(f.monitor.consecutive_errors(), 0);
}

TEST(MonitorRefine, RealmPredictionScoredAsHit) {
  Fixture f;
  TimeMs t = 0;
  f.step(0, t);
  f.step(0, t);
  EXPECT_EQ(f.monitor.predicted_next(), 3);  // corpus opens with the realm
  f.step(1, t);
  f.step(2, t);  // refined to 3
  f.step(1, t);
  f.step(0, t);
  f.step(0, t);  // loading confirmed → realm scored vs prediction 3
  EXPECT_EQ(f.monitor.prediction_hits(), 1);
  EXPECT_EQ(f.monitor.prediction_misses(), 0);
}

TEST(MonitorRefine, RefinedAllocationCoversRealmPeak) {
  Fixture f;
  TimeMs t = 0;
  f.step(0, t);
  f.step(0, t);
  f.step(1, t);
  const double before = f.monitor.recommended_allocation().gpu();
  f.step(2, t);  // refinement
  const double after = f.monitor.recommended_allocation().gpu();
  EXPECT_LT(before, after);
  EXPECT_DOUBLE_EQ(after, f.profile.stage_type(3).peak_demand.gpu());
}

TEST(MonitorRefine, MinorityClusterDoesNotUpgrade) {
  Fixture f;
  TimeMs t = 0;
  f.step(0, t);
  f.step(0, t);
  f.step(1, t);
  // Many cluster-1 detections, a single cluster-2 blip (< 20% share):
  // the window filter rejects the upgrade; the blip is at most a pending
  // jump.
  for (int i = 0; i < 8; ++i) f.step(1, t);
  const auto ev = f.step(2, t);
  EXPECT_NE(ev, MonitorEvent::kStageRefined);
  EXPECT_EQ(f.monitor.current_stage(), 1);
}

TEST(MonitorRefine, TransientLoadingDipResumesWindow) {
  Fixture f;
  TimeMs t = 0;
  f.step(0, t);
  f.step(0, t);
  f.step(1, t);
  f.step(2, t);  // refined to realm
  ASSERT_EQ(f.monitor.current_stage(), 3);
  // A one-detection loading dip, then the realm continues: the judgement
  // returns and no prediction is scored for the interruption.
  EXPECT_EQ(f.step(0, t), MonitorEvent::kEnteredLoading);
  EXPECT_EQ(f.step(2, t), MonitorEvent::kRehearsalCallback);
  EXPECT_EQ(f.monitor.current_stage(), 3);
  EXPECT_EQ(f.monitor.prediction_hits() + f.monitor.prediction_misses(), 0);
  EXPECT_EQ(f.monitor.exec_history(), (std::vector<int>{3}));
}

}  // namespace
}  // namespace cocg::core
