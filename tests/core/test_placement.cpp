// Placement quality: CoCG's best-fit complementary choice across views.
#include <gtest/gtest.h>

#include "core/cocg_scheduler.h"
#include "core/offline.h"
#include "game/library.h"
#include "platform/cloud_platform.h"

namespace cocg::core {
namespace {

const std::vector<game::GameSpec>& suite() {
  static const std::vector<game::GameSpec> s = game::paper_suite();
  return s;
}

std::map<std::string, TrainedGame> models() {
  OfflineConfig cfg;
  cfg.profiling_runs = 8;
  cfg.corpus_runs = 20;
  cfg.seed = 91;
  return train_suite(suite(), cfg);
}

platform::PlatformConfig quiet(std::uint64_t seed) {
  platform::PlatformConfig cfg;
  cfg.seed = seed;
  cfg.session.spike_prob = 0.0;
  return cfg;
}

TEST(Placement, HeavyTitlesSpreadAcrossGpus) {
  // Two heavy games on a 2-GPU server: best-fit puts them on different
  // devices rather than stacking the first view. (A roomier CPU pool than
  // the paper's 4-core box, which cannot host both heavy titles at once.)
  platform::CloudPlatform cloud(quiet(1),
                                std::make_unique<CocgScheduler>(models()));
  hw::ServerSpec big_cpu;
  big_cpu.cpu_capacity_pct = 200.0;
  cloud.add_server(big_cpu);
  static const auto genshin = game::make_genshin();
  static const auto dmc = game::make_devil_may_cry();
  cloud.submit(&genshin, 0, 1);
  cloud.submit(&dmc, 1, 2);
  cloud.run(20 * 1000);
  ASSERT_EQ(cloud.running_sessions(), 2u);
  std::set<int> gpus;
  for (SessionId sid : cloud.session_ids()) {
    gpus.insert(cloud.session_info(sid).gpu_index);
  }
  EXPECT_EQ(gpus.size(), 2u);
}

TEST(Placement, LightTitleJoinsLessLoadedView) {
  // GPU 0 hosts a heavy title; a light title must land on GPU 1 even
  // though GPU 0 could admit it.
  platform::CloudPlatform cloud(quiet(2),
                                std::make_unique<CocgScheduler>(models()));
  cloud.add_server(hw::ServerSpec{});
  static const auto dmc = game::make_devil_may_cry();
  static const auto contra = game::make_contra();
  cloud.submit(&dmc, 2, 1);
  cloud.run(10 * 1000);
  ASSERT_EQ(cloud.running_sessions(), 1u);
  const int heavy_gpu =
      cloud.session_info(cloud.session_ids()[0]).gpu_index;
  cloud.submit(&contra, 0, 2);
  cloud.run(10 * 1000);
  ASSERT_EQ(cloud.running_sessions(), 2u);
  for (SessionId sid : cloud.session_ids()) {
    const auto info = cloud.session_info(sid);
    if (info.spec == &contra) {
      EXPECT_NE(info.gpu_index, heavy_gpu);
    }
  }
}

TEST(Placement, SpreadsAcrossServersBeforeStacking) {
  platform::CloudPlatform cloud(quiet(3),
                                std::make_unique<CocgScheduler>(models()));
  hw::ServerSpec one_gpu;
  one_gpu.num_gpus = 1;
  cloud.add_server(one_gpu);
  cloud.add_server(one_gpu);
  static const auto dota2 = game::make_dota2();
  cloud.submit(&dota2, 0, 1);
  cloud.submit(&dota2, 0, 2);
  cloud.run(20 * 1000);
  ASSERT_EQ(cloud.running_sessions(), 2u);
  std::set<std::uint64_t> servers;
  for (SessionId sid : cloud.session_ids()) {
    servers.insert(cloud.session_info(sid).server.value);
  }
  EXPECT_EQ(servers.size(), 2u);
}

}  // namespace
}  // namespace cocg::core
