#include "core/stage_predictor.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "common/check.h"
#include "core/features.h"
#include "core/offline.h"
#include "game/library.h"

namespace cocg::core {
namespace {

/// Hand-built profile: type 0 = loading, types 1..3 execution.
GameProfile toy_profile() {
  GameProfile p;
  p.game_name = "toy";
  p.norm_scale = default_norm_scale();
  for (int c = 0; c < 4; ++c) {
    ClusterInfo ci;
    ci.id = c;
    ci.centroid = ResourceVector{20.0 + 10 * c, 10.0 + 20 * c, 1000, 1000};
    ci.loading = (c == 0);
    p.clusters.push_back(ci);
  }
  for (int t = 0; t < 4; ++t) {
    StageTypeInfo st;
    st.id = t;
    st.loading = (t == 0);
    st.clusters = {t};
    st.peak_demand = p.clusters[static_cast<std::size_t>(t)].centroid;
    st.mean_demand = st.peak_demand;
    st.mean_duration_ms = 60000;
    st.occurrences = 10;
    p.stage_types.push_back(st);
  }
  p.loading_stage_type = 0;
  p.peak_demand = p.clusters[3].centroid;
  return p;
}

/// Deterministic corpus: every run follows L 1 L 2 L 3 L.
std::vector<TrainingRun> deterministic_corpus(int n) {
  std::vector<TrainingRun> runs;
  for (int i = 0; i < n; ++i) {
    runs.push_back(TrainingRun{{0, 1, 0, 2, 0, 3, 0},
                               static_cast<std::uint64_t>(i % 5 + 1), 0});
  }
  return runs;
}

// --- FeatureEncoder ---

TEST(FeatureEncoder, WidthMatchesNames) {
  EncoderConfig cfg;
  FeatureEncoder enc(cfg, 4);
  const auto names = enc.feature_names();
  const auto row = enc.encode({1, 2}, 7, 1);
  EXPECT_EQ(row.size(), names.size());
}

TEST(FeatureEncoder, HistoryMostRecentFirst) {
  EncoderConfig cfg;
  cfg.history_len = 3;
  cfg.player_features = false;
  cfg.mode_feature = false;
  FeatureEncoder enc(cfg, 5);
  const auto row = enc.encode({7, 8, 9}, 1, 0);
  EXPECT_EQ(row[0], 9.0);  // hist_0 = most recent
  EXPECT_EQ(row[1], 8.0);
  EXPECT_EQ(row[2], 7.0);
  EXPECT_EQ(row[3], 3.0);  // position
}

TEST(FeatureEncoder, PadsShortHistory) {
  EncoderConfig cfg;
  cfg.history_len = 3;
  cfg.player_features = false;
  cfg.mode_feature = false;
  FeatureEncoder enc(cfg, 5);
  const auto row = enc.encode({2}, 1, 0);
  EXPECT_EQ(row[0], 2.0);
  EXPECT_EQ(row[1], 5.0);  // pad = num_types
  EXPECT_EQ(row[2], 5.0);
}

TEST(FeatureEncoder, PlayerHashStable) {
  double a0, a1, b0, b1;
  player_hash_floats(42, a0, a1);
  player_hash_floats(42, b0, b1);
  EXPECT_EQ(a0, b0);
  EXPECT_EQ(a1, b1);
  player_hash_floats(43, b0, b1);
  EXPECT_NE(a0, b0);
  EXPECT_GE(a0, 0.0);
  EXPECT_LT(a0, 1.0);
}

TEST(FeatureEncoder, ModeFeatureIncluded) {
  EncoderConfig cfg;
  cfg.player_features = false;
  FeatureEncoder enc(cfg, 4);
  const auto r0 = enc.encode({}, 1, 0);
  const auto r2 = enc.encode({}, 1, 2);
  EXPECT_NE(r0, r2);
}

// --- StagePredictor ---

TEST(StagePredictor, LearnsDeterministicChain) {
  const GameProfile p = toy_profile();
  PredictorConfig cfg;
  StagePredictor pred(&p, cfg);
  Rng rng(1);
  pred.train(deterministic_corpus(40), rng);
  EXPECT_TRUE(pred.trained());
  EXPECT_GT(pred.accuracy(), 0.99);
  EXPECT_EQ(pred.predict_next({}, 1, 0), 1);
  EXPECT_EQ(pred.predict_next({1}, 1, 0), 2);
  EXPECT_EQ(pred.predict_next({1, 2}, 1, 0), 3);
}

TEST(StagePredictor, PredictSequenceIterates) {
  const GameProfile p = toy_profile();
  StagePredictor pred(&p, PredictorConfig{});
  Rng rng(2);
  pred.train(deterministic_corpus(40), rng);
  const auto seq = pred.predict_sequence({}, 1, 0, 3);
  EXPECT_EQ(seq, (std::vector<int>{1, 2, 3}));
}

TEST(StagePredictor, RedundancyEq1) {
  const GameProfile p = toy_profile();
  StagePredictor pred(&p, PredictorConfig{});
  Rng rng(3);
  pred.train(deterministic_corpus(40), rng);
  // S = (1 − P) × M with P ≈ 1 → S ≈ 0.
  const ResourceVector s = pred.redundancy();
  EXPECT_LT(s.gpu(), 0.05 * p.peak_demand.gpu() + 1e-9);
  // The relationship is exact: S == (1−P)·M.
  const ResourceVector expect = (1.0 - pred.accuracy()) * p.peak_demand;
  EXPECT_EQ(s, expect);
}

TEST(StagePredictor, ReplaceModelRotates) {
  const GameProfile p = toy_profile();
  StagePredictor pred(&p, PredictorConfig{});
  Rng rng(4);
  pred.train(deterministic_corpus(40), rng);
  EXPECT_EQ(pred.model_kind(), ml::ModelKind::kDtc);
  pred.replace_model(rng);
  EXPECT_EQ(pred.model_kind(), ml::ModelKind::kRf);
  EXPECT_EQ(pred.predict_next({1}, 1, 0), 2);  // retrained, still works
  pred.replace_model(rng);
  EXPECT_EQ(pred.model_kind(), ml::ModelKind::kGbdt);
  pred.replace_model(rng);
  EXPECT_EQ(pred.model_kind(), ml::ModelKind::kDtc);
}

TEST(StagePredictor, EvaluateModelAllKinds) {
  const GameProfile p = toy_profile();
  StagePredictor pred(&p, PredictorConfig{});
  Rng rng(5);
  pred.train(deterministic_corpus(60), rng);
  for (ml::ModelKind kind :
       {ml::ModelKind::kDtc, ml::ModelKind::kRf, ml::ModelKind::kGbdt}) {
    EXPECT_GT(pred.evaluate_model(kind, rng), 0.9)
        << ml::model_kind_name(kind);
  }
}

TEST(StagePredictor, ModeDisambiguatesBranches) {
  // Two modes with opposite chains: mode 0 → 1,2; mode 1 → 2,1.
  const GameProfile p = toy_profile();
  std::vector<TrainingRun> runs;
  for (int i = 0; i < 30; ++i) {
    runs.push_back(TrainingRun{{0, 1, 0, 2, 0}, 1, 0});
    runs.push_back(TrainingRun{{0, 2, 0, 1, 0}, 1, 1});
  }
  StagePredictor pred(&p, PredictorConfig{});
  Rng rng(6);
  pred.train(runs, rng);
  EXPECT_EQ(pred.predict_next({}, 1, 0), 1);
  EXPECT_EQ(pred.predict_next({}, 1, 1), 2);
  EXPECT_GT(pred.accuracy(), 0.95);
}

TEST(StagePredictor, MobilePerPlayerModels) {
  GameProfile p = toy_profile();
  PredictorConfig cfg;
  cfg.category = game::GameCategory::kMobile;
  cfg.min_player_runs = 3;
  // Player 1 always plays 1→2→3; player 2 always 3→2→1.
  std::vector<TrainingRun> runs;
  for (int i = 0; i < 6; ++i) {
    runs.push_back(TrainingRun{{0, 1, 0, 2, 0, 3, 0}, 1, 0});
    runs.push_back(TrainingRun{{0, 3, 0, 2, 0, 1, 0}, 2, 0});
  }
  StagePredictor pred(&p, cfg);
  Rng rng(7);
  pred.train(runs, rng);
  EXPECT_EQ(pred.predict_next({}, 1, 0), 1);
  EXPECT_EQ(pred.predict_next({}, 2, 0), 3);
}

TEST(StagePredictor, LoadingStagesStrippedFromHistory) {
  const GameProfile p = toy_profile();
  StagePredictor pred(&p, PredictorConfig{});
  Rng rng(8);
  pred.train(deterministic_corpus(40), rng);
  // Histories never contain type 0; prediction never returns it either.
  for (int i = 0; i < 3; ++i) {
    std::vector<int> hist;
    for (int j = 0; j < i; ++j) hist.push_back(j + 1);
    EXPECT_NE(pred.predict_next(hist, 1, 0), 0);
  }
}

TEST(StagePredictor, OnlineAccuracySeedsFromOffline) {
  const GameProfile p = toy_profile();
  StagePredictor pred(&p, PredictorConfig{});
  Rng rng(31);
  pred.train(deterministic_corpus(40), rng);
  EXPECT_DOUBLE_EQ(pred.online_accuracy(), pred.accuracy());
  EXPECT_EQ(pred.online_outcomes(), 0u);
}

TEST(StagePredictor, OnlineMissesInflateRedundancy) {
  const GameProfile p = toy_profile();
  StagePredictor pred(&p, PredictorConfig{});
  Rng rng(32);
  pred.train(deterministic_corpus(40), rng);
  const double s_before = pred.redundancy().gpu();
  for (int i = 0; i < 50; ++i) pred.record_outcome(false);
  EXPECT_LT(pred.online_accuracy(), pred.accuracy());
  EXPECT_GT(pred.redundancy().gpu(), s_before);
  // Sustained hits recover.
  for (int i = 0; i < 300; ++i) pred.record_outcome(true);
  EXPECT_GT(pred.online_accuracy(), 0.95);
}

TEST(StagePredictor, Preconditions) {
  const GameProfile p = toy_profile();
  StagePredictor pred(&p, PredictorConfig{});
  Rng rng(9);
  EXPECT_THROW(pred.train({}, rng), ContractError);
  EXPECT_THROW(pred.predict_next({}, 1, 0), ContractError);
  PredictorConfig bad;
  bad.train_fraction = 1.0;
  EXPECT_THROW(StagePredictor(&p, bad), ContractError);
}

// --- predictor bundles (save_bundle / load_bundle) ---

TEST(StagePredictorBundle, RoundTripPreservesEverything) {
  const GameProfile p = toy_profile();
  PredictorConfig cfg;
  cfg.category = game::GameCategory::kMobile;
  cfg.min_player_runs = 3;
  StagePredictor pred(&p, cfg);
  Rng rng(41);
  std::vector<TrainingRun> runs = deterministic_corpus(40);
  for (int i = 0; i < 6; ++i) {
    runs.push_back(TrainingRun{{0, 3, 0, 2, 0, 1, 0}, 9, 0});
  }
  pred.train(runs, rng);

  std::stringstream ss;
  pred.save_bundle(ss);
  const auto back = StagePredictor::load_bundle(ss, &p);
  EXPECT_TRUE(back->trained());
  EXPECT_EQ(back->model_kind(), pred.model_kind());
  EXPECT_EQ(back->accuracy(), pred.accuracy());
  EXPECT_TRUE(back->can_retrain());
  for (std::uint64_t player : {1u, 2u, 9u}) {
    EXPECT_EQ(back->predict_next({}, player, 0),
              pred.predict_next({}, player, 0));
    EXPECT_EQ(back->predict_sequence({1}, player, 0, 3),
              pred.predict_sequence({1}, player, 0, 3));
  }
}

TEST(StagePredictorBundle, CorpusFreeLoadCannotRetrain) {
  const GameProfile p = toy_profile();
  StagePredictor pred(&p, PredictorConfig{});
  Rng rng(42);
  pred.train(deterministic_corpus(40), rng);
  std::stringstream ss;
  pred.save_bundle(ss, /*include_corpus=*/false);
  const auto back = StagePredictor::load_bundle(ss, &p);
  EXPECT_FALSE(back->can_retrain());
  EXPECT_EQ(back->predict_next({1}, 1, 0), pred.predict_next({1}, 1, 0));
  EXPECT_THROW(back->replace_model(rng), std::runtime_error);
  EXPECT_THROW(back->evaluate_model(ml::ModelKind::kRf, rng),
               std::runtime_error);
}

TEST(StagePredictorBundle, TruncatedAndCorruptRejected) {
  const GameProfile p = toy_profile();
  StagePredictor pred(&p, PredictorConfig{});
  Rng rng(43);
  pred.train(deterministic_corpus(40), rng);
  std::stringstream ss;
  pred.save_bundle(ss);
  const std::string full = ss.str();
  std::stringstream cut(full.substr(0, full.size() / 3));
  EXPECT_THROW(StagePredictor::load_bundle(cut, &p), std::runtime_error);
  std::string skewed = full;
  skewed.replace(skewed.find("cocg-predictor-v1"), 17, "cocg-predictor-v8");
  std::stringstream sk(skewed);
  EXPECT_THROW(StagePredictor::load_bundle(sk, &p), std::runtime_error);
}

TEST(StagePredictorBundle, MismatchedProfileRejected) {
  const GameProfile p = toy_profile();
  StagePredictor pred(&p, PredictorConfig{});
  Rng rng(44);
  pred.train(deterministic_corpus(40), rng);
  std::stringstream ss;
  pred.save_bundle(ss);
  // A profile with a different stage-type catalog cannot host the model.
  GameProfile smaller = toy_profile();
  smaller.stage_types.resize(2);
  EXPECT_THROW(StagePredictor::load_bundle(ss, &smaller),
               std::runtime_error);
}

// --- end-to-end offline pipeline (train_game) ---

TEST(Offline, TrainGameProducesWorkingBundle) {
  const game::GameSpec g = game::make_contra();
  OfflineConfig cfg;
  cfg.profiling_runs = 6;
  cfg.corpus_runs = 12;
  cfg.seed = 11;
  const TrainedGame tg = train_game(g, cfg);
  EXPECT_EQ(tg.spec, &g);
  ASSERT_NE(tg.profile, nullptr);
  ASSERT_NE(tg.predictor, nullptr);
  EXPECT_EQ(tg.profile->num_clusters(), 2);
  EXPECT_GT(tg.predictor->accuracy(), 0.9);  // web games are near-trivial
  EXPECT_GT(tg.mean_run_duration_ms, 0);
  EXPECT_EQ(tg.chosen_k, 2);
}

TEST(Offline, TrainSuiteKeysByName) {
  OfflineConfig cfg;
  cfg.profiling_runs = 5;
  cfg.corpus_runs = 8;
  const std::vector<game::GameSpec> suite = {game::make_contra(),
                                             game::make_genshin()};
  const auto models = train_suite(suite, cfg);
  ASSERT_EQ(models.size(), 2u);
  EXPECT_TRUE(models.count("Contra"));
  EXPECT_TRUE(models.count("Genshin Impact"));
  // The bundle's predictor points at the bundle's own (heap) profile —
  // moves into the map must not dangle.
  const auto& tg = models.at("Genshin Impact");
  EXPECT_EQ(tg.profile->game_name, "Genshin Impact");
  EXPECT_NO_THROW(tg.predictor->predict_next({}, 1, 0));
}

TEST(Offline, Fig15AccuracyShape) {
  // DTC on the paper suite: ≥90% for web/console/MOBA-style games.
  OfflineConfig cfg;
  cfg.profiling_runs = 12;
  cfg.corpus_runs = 60;
  cfg.seed = 13;
  for (const auto& name : {"Contra", "DOTA2"}) {
    const auto tg = train_game(game::game_by_name(name), cfg);
    EXPECT_GT(tg.predictor->accuracy(), 0.9) << name;
  }
}

}  // namespace
}  // namespace cocg::core
