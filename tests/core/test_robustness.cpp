// Failure injection and robustness: heavy measurement noise, demand
// spikes, tiny training corpora, and pathological scheduler configs must
// degrade gracefully, never crash or wedge the platform.
#include <gtest/gtest.h>

#include "core/cocg_scheduler.h"
#include "core/offline.h"
#include "game/library.h"
#include "platform/cloud_platform.h"

namespace cocg::core {
namespace {

const std::vector<game::GameSpec>& suite() {
  static const std::vector<game::GameSpec> s = game::paper_suite();
  return s;
}

std::map<std::string, TrainedGame> tiny_models(std::uint64_t seed = 61) {
  OfflineConfig cfg;
  cfg.profiling_runs = 6;
  cfg.corpus_runs = 15;
  cfg.seed = seed;
  return train_suite(suite(), cfg);
}

TEST(Robustness, HeavyMeasurementNoiseStillSchedules) {
  platform::PlatformConfig pcfg;
  pcfg.seed = 1;
  pcfg.measurement_noise_rel = 0.15;  // 7x the default probe noise
  platform::CloudPlatform cloud(
      pcfg, std::make_unique<CocgScheduler>(tiny_models()));
  cloud.add_server(hw::ServerSpec{});
  cloud.add_source({&suite()[4], 1, 4});  // Contra
  cloud.run(25 * 60 * 1000);
  EXPECT_GE(cloud.completed_runs().size(), 1u);
}

TEST(Robustness, AggressiveSpikesTriggerCallbacksNotCrashes) {
  platform::PlatformConfig pcfg;
  pcfg.seed = 2;
  pcfg.session.spike_prob = 0.05;  // 25x the default
  pcfg.session.spike_factor = 1.6;
  auto sched = std::make_unique<CocgScheduler>(tiny_models());
  auto* sched_ptr = sched.get();
  platform::CloudPlatform cloud(pcfg, std::move(sched));
  cloud.add_server(hw::ServerSpec{});
  cloud.add_source({&suite()[2], 1, 4});  // Genshin
  cloud.run(20 * 60 * 1000);
  // The run proceeds; transients are absorbed by pending-jump guards and
  // rehearsal callbacks rather than crashing the monitor.
  EXPECT_GE(cloud.completed_runs().size() + cloud.running_sessions(), 1u);
  (void)sched_ptr->total_callbacks();  // accessible, non-throwing
}

TEST(Robustness, TinyCorpusPredictorStillWorks) {
  OfflineConfig cfg;
  cfg.profiling_runs = 2;
  cfg.corpus_runs = 0;  // profiling runs only
  cfg.seed = 3;
  const TrainedGame tg = train_game(game::make_contra(), cfg);
  EXPECT_TRUE(tg.predictor->trained());
  EXPECT_NO_THROW(tg.predictor->predict_next({}, 1, 0));
  EXPECT_GE(tg.predictor->accuracy(), 0.0);
  EXPECT_LE(tg.predictor->accuracy(), 1.0);
}

TEST(Robustness, ReplaceModelAfterSingleErrorKeepsRunning) {
  CocgConfig cfg;
  cfg.replace_model_after = 1;  // hair-trigger fallback
  auto sched = std::make_unique<CocgScheduler>(tiny_models(62), cfg);
  auto* sched_ptr = sched.get();
  platform::PlatformConfig pcfg;
  pcfg.seed = 4;
  pcfg.session.spike_prob = 0.02;
  platform::CloudPlatform cloud(pcfg, std::move(sched));
  cloud.add_server(hw::ServerSpec{});
  cloud.add_source({&suite()[2], 1, 4});  // Genshin (imperfect predictor)
  cloud.run(30 * 60 * 1000);
  EXPECT_GE(cloud.completed_runs().size() + cloud.running_sessions(), 1u);
  EXPECT_GE(sched_ptr->model_replacements(), 0);
}

TEST(Robustness, ZeroCapacityLimitQueuesEverything) {
  CocgConfig cfg;
  cfg.distributor.capacity_limit = 0.01;
  platform::CloudPlatform cloud(
      platform::PlatformConfig{},
      std::make_unique<CocgScheduler>(tiny_models(63), cfg));
  cloud.add_server(hw::ServerSpec{});
  static const auto genshin = game::make_genshin();
  cloud.submit(&genshin, 0, 1);
  cloud.run(60 * 1000);
  // Even an empty server rejects nothing at the raw-capacity level, so
  // the first game lands; a second must queue under the 1% limit.
  cloud.submit(&genshin, 0, 2);
  cloud.run(60 * 1000);
  EXPECT_EQ(cloud.running_sessions(), 1u);
  EXPECT_EQ(cloud.queued_requests(), 1u);
}

TEST(Robustness, GenerousLimitNeverCrashesUnderOvercommit) {
  CocgConfig cfg;
  cfg.distributor.capacity_limit = 2.0;  // admit far past the hardware
  platform::PlatformConfig pcfg;
  pcfg.seed = 5;
  platform::CloudPlatform cloud(
      pcfg, std::make_unique<CocgScheduler>(tiny_models(64), cfg));
  hw::ServerSpec one_gpu;
  one_gpu.num_gpus = 1;
  cloud.add_server(one_gpu);
  for (const auto& g : suite()) cloud.add_source({&g, 1, 4});
  cloud.run(15 * 60 * 1000);
  // Massive contention, degraded FPS — but the invariants hold: supply
  // never exceeds hardware, sessions progress or queue.
  cloud.enable_utilization_recording(true);
  cloud.run(60 * 1000);
  for (const auto& up : cloud.utilization_log()) {
    EXPECT_LE(up.max_dim_fraction, 1.0 + 1e-9);
  }
}

TEST(Robustness, StarvedSessionEventuallyRecovers) {
  // The observability trap regression test: a session admitted with a far
  // too small allocation must be probed back to health.
  auto models = tiny_models(65);
  platform::PlatformConfig pcfg;
  pcfg.seed = 6;
  pcfg.session.spike_prob = 0.0;
  auto sched = std::make_unique<CocgScheduler>(std::move(models));
  platform::CloudPlatform cloud(pcfg, std::move(sched));
  cloud.add_server(hw::ServerSpec{});
  static const auto dota2 = game::make_dota2();
  cloud.submit(&dota2, 0, 1);
  cloud.run(30 * 1000);
  ASSERT_EQ(cloud.running_sessions(), 1u);
  const SessionId sid = cloud.session_ids()[0];
  // Sabotage: shrink the allocation to a fifth of any execution demand.
  ASSERT_TRUE(cloud.reallocate(sid, {8, 5, 500, 600}));
  cloud.run(5 * 60 * 1000);
  if (cloud.running_sessions() == 1u) {
    // The saturation probe must have grown the allocation well beyond the
    // sabotaged value.
    const auto info = cloud.session_info(sid);
    EXPECT_GT(info.allocation.gpu(), 10.0);
  }
}

}  // namespace
}  // namespace cocg::core
