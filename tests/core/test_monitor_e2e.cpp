// End-to-end online monitoring accuracy: for every game, run fresh solo
// sessions, feed the monitor the same 5-second observations the online
// system would see, and score its stage judgements against the session's
// ground truth. This is the property the whole Fig. 8 loop rests on.
#include <gtest/gtest.h>

#include "core/offline.h"
#include "core/online_monitor.h"
#include "game/library.h"
#include "game/plan.h"
#include "game/session.h"

namespace cocg::core {
namespace {

struct E2eScore {
  double loading_detection = 0.0;  ///< loading/execution judged correctly
  double cluster_consistency = 0.0;  ///< judged stage contains true cluster
  std::size_t observations = 0;
};

E2eScore run_monitored_session(const TrainedGame& tg, std::size_t script,
                               std::uint64_t player, std::uint64_t seed) {
  const game::GameSpec& spec = *tg.spec;
  Rng rng(seed);
  auto plan = game::generate_plan(spec, script, player, rng);
  game::SessionConfig scfg;
  scfg.spike_prob = 0.0;
  game::GameSession session(SessionId{1}, &spec, script, std::move(plan),
                            rng.fork(), scfg);
  OnlineMonitor monitor(tg.profile.get(), tg.predictor.get(), player,
                        script);
  Rng noise = rng.fork();

  E2eScore score;
  std::size_t loading_hits = 0, cluster_hits = 0;
  TimeMs now = 0;
  session.begin(now);
  ResourceVector window_acc;
  int window_n = 0;
  while (!session.finished()) {
    const ResourceVector demand = session.demand();
    const bool true_loading =
        session.stage_kind() == game::StageKind::kLoading;
    const int true_cluster = session.current_cluster();
    // Full supply + 2% probe noise, like the platform's telemetry.
    ResourceVector usage = demand;
    for (std::size_t d = 0; d < kNumDims; ++d) {
      usage.at(d) *= 1.0 + noise.normal(0.0, 0.02);
    }
    window_acc += usage;
    ++window_n;
    if (window_n == 5) {  // one 5-second detection
      window_acc *= 1.0 / 5.0;
      monitor.observe(now, window_acc);
      ++score.observations;
      if (monitor.in_loading() == true_loading) ++loading_hits;
      if (!true_loading && monitor.current_stage() >= 0 &&
          !tg.profile->stage_type(monitor.current_stage()).loading) {
        const auto& sig =
            tg.profile->stage_type(monitor.current_stage()).clusters;
        // The judged stage's signature should contain a cluster whose
        // centroid is near the true cluster's draw; since catalogs are
        // learned, compare via the profile's own matcher.
        const int matched = tg.profile->match_cluster(usage);
        if (std::find(sig.begin(), sig.end(), matched) != sig.end()) {
          ++cluster_hits;
        }
      } else if (true_loading && monitor.in_loading()) {
        ++cluster_hits;  // loading agreement counts
      }
      window_acc = ResourceVector{};
      window_n = 0;
    }
    session.tick(now, demand);
    now += 1000;
    (void)true_cluster;
  }
  if (score.observations > 0) {
    score.loading_detection = static_cast<double>(loading_hits) /
                              static_cast<double>(score.observations);
    score.cluster_consistency = static_cast<double>(cluster_hits) /
                                static_cast<double>(score.observations);
  }
  return score;
}

class MonitorE2e : public ::testing::TestWithParam<int> {
 protected:
  static const std::vector<game::GameSpec>& suite() {
    static const std::vector<game::GameSpec> s = game::paper_suite();
    return s;
  }
};

TEST_P(MonitorE2e, OnlineJudgementTracksGroundTruth) {
  const auto& spec = suite()[static_cast<std::size_t>(GetParam())];
  OfflineConfig cfg;
  cfg.profiling_runs = 10;
  cfg.corpus_runs = 30;
  cfg.seed = 81;
  const TrainedGame tg = train_game(spec, cfg);

  E2eScore total;
  std::size_t loading_w = 0, cluster_w = 0;
  for (std::uint64_t run = 0; run < 4; ++run) {
    const auto score = run_monitored_session(
        tg, run % spec.scripts.size(), run % 3 + 1, 9000 + run);
    ASSERT_GT(score.observations, 0u) << spec.name;
    total.observations += score.observations;
    loading_w += static_cast<std::size_t>(score.loading_detection *
                                          score.observations);
    cluster_w += static_cast<std::size_t>(score.cluster_consistency *
                                          score.observations);
  }
  const double loading_acc =
      static_cast<double>(loading_w) / static_cast<double>(total.observations);
  const double stage_acc =
      static_cast<double>(cluster_w) / static_cast<double>(total.observations);
  // Loading/execution discrimination is the paper's Observation 2 — it
  // must be near-perfect (one detection of lag per transition allowed).
  EXPECT_GT(loading_acc, 0.85) << spec.name;
  // The judged stage should be consistent with the observed cluster for
  // the overwhelming majority of detections.
  EXPECT_GT(stage_acc, 0.85) << spec.name;
}

INSTANTIATE_TEST_SUITE_P(AllGames, MonitorE2e, ::testing::Range(0, 5));

}  // namespace
}  // namespace cocg::core
