#include "core/online_monitor.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "core/stage_predictor.h"

namespace cocg::core {
namespace {

/// Profile with loading (type 0) and three single-cluster execution types.
GameProfile toy_profile() {
  GameProfile p;
  p.game_name = "toy";
  p.norm_scale = default_norm_scale();
  const double gpu[4] = {5, 30, 60, 90};   // cluster GPU centroids
  const double cpu[4] = {50, 30, 40, 45};  // loading = high CPU / low GPU
  for (int c = 0; c < 4; ++c) {
    ClusterInfo ci;
    ci.id = c;
    ci.centroid = ResourceVector{cpu[c], gpu[c], 1000, 1000};
    ci.loading = (c == 0);
    p.clusters.push_back(ci);
  }
  for (int t = 0; t < 4; ++t) {
    StageTypeInfo st;
    st.id = t;
    st.loading = (t == 0);
    st.clusters = {t};
    st.peak_demand = p.clusters[static_cast<std::size_t>(t)].centroid;
    st.mean_demand = st.peak_demand;
    st.mean_duration_ms = 100000;
    st.occurrences = 5;
    p.stage_types.push_back(st);
  }
  p.loading_stage_type = 0;
  p.peak_demand = p.clusters[3].centroid;
  return p;
}

StagePredictor trained_predictor(const GameProfile& p) {
  StagePredictor pred(&p, PredictorConfig{});
  std::vector<TrainingRun> runs;
  for (int i = 0; i < 30; ++i) {
    runs.push_back(TrainingRun{{0, 1, 0, 2, 0, 3, 0}, 1, 0});
  }
  Rng rng(1);
  pred.train(runs, rng);
  return pred;
}

ResourceVector usage_of(const GameProfile& p, int cluster) {
  return p.cluster(cluster).centroid;
}

struct Fixture {
  GameProfile profile = toy_profile();
  StagePredictor predictor = trained_predictor(profile);
  OnlineMonitor monitor{&profile, &predictor, 1, 0};
};

TEST(OnlineMonitor, FirstObservationExecution) {
  Fixture f;
  const auto ev = f.monitor.observe(0, usage_of(f.profile, 1));
  EXPECT_EQ(ev, MonitorEvent::kEnteredExecution);
  EXPECT_EQ(f.monitor.current_stage(), 1);
  EXPECT_FALSE(f.monitor.in_loading());
}

TEST(OnlineMonitor, FirstObservationLoadingPredicts) {
  Fixture f;
  const auto ev = f.monitor.observe(0, usage_of(f.profile, 0));
  EXPECT_EQ(ev, MonitorEvent::kEnteredLoading);
  EXPECT_TRUE(f.monitor.in_loading());
  EXPECT_EQ(f.monitor.predicted_next(), 1);  // chain opens with 1
}

TEST(OnlineMonitor, FullChainWithCorrectPredictions) {
  Fixture f;
  TimeMs t = 0;
  auto step = [&](int cluster) {
    const auto ev = f.monitor.observe(t, usage_of(f.profile, cluster));
    t += 5000;
    return ev;
  };
  EXPECT_EQ(step(0), MonitorEvent::kEnteredLoading);
  EXPECT_EQ(step(0), MonitorEvent::kSameStage);
  EXPECT_EQ(step(1), MonitorEvent::kEnteredExecution);
  EXPECT_EQ(step(1), MonitorEvent::kSameStage);
  EXPECT_EQ(step(0), MonitorEvent::kEnteredLoading);
  EXPECT_EQ(f.monitor.predicted_next(), 2);
  // Stage 1 is scored once the loading judgement is confirmed (deferred
  // scoring lets a transient dip withdraw cleanly).
  EXPECT_EQ(f.monitor.prediction_hits(), 0);
  EXPECT_EQ(step(0), MonitorEvent::kSameStage);  // confirm → stage 1 scored
  EXPECT_EQ(f.monitor.prediction_hits(), 1);
  EXPECT_EQ(step(2), MonitorEvent::kEnteredExecution);
  EXPECT_EQ(step(2), MonitorEvent::kSameStage);
  EXPECT_EQ(step(0), MonitorEvent::kEnteredLoading);
  EXPECT_EQ(step(0), MonitorEvent::kSameStage);  // confirm → stage 2 scored
  EXPECT_EQ(f.monitor.prediction_hits(), 2);
  EXPECT_EQ(f.monitor.prediction_misses(), 0);
  EXPECT_EQ(f.monitor.exec_history(), (std::vector<int>{1, 2}));
}

TEST(OnlineMonitor, PredictionMissCounted) {
  Fixture f;
  TimeMs t = 0;
  auto step = [&](int cluster) {
    const auto ev = f.monitor.observe(t, usage_of(f.profile, cluster));
    t += 5000;
    return ev;
  };
  step(0);
  step(0);
  // Predicted 1, but the game enters 3; the miss lands when the stage is
  // finalized at the next confirmed loading.
  step(3);
  EXPECT_EQ(f.monitor.current_stage(), 3);
  EXPECT_EQ(f.monitor.prediction_misses(), 0);  // not yet scored
  step(3);
  step(0);
  step(0);  // confirm → stage 3 finalized, prediction 1 scored as a miss
  EXPECT_EQ(f.monitor.prediction_misses(), 1);
  EXPECT_EQ(f.monitor.consecutive_errors(), 1);
}

TEST(OnlineMonitor, RehearsalCallbackStageJump) {
  Fixture f;
  TimeMs t = 0;
  f.monitor.observe(t, usage_of(f.profile, 1));
  // One stray detection → pending, not a jump (Fig. 10 transient).
  t += 5000;
  EXPECT_EQ(f.monitor.observe(t, usage_of(f.profile, 2)),
            MonitorEvent::kPendingJump);
  EXPECT_EQ(f.monitor.current_stage(), 1);
  // Back to 1: the pending jump is dropped.
  t += 5000;
  EXPECT_EQ(f.monitor.observe(t, usage_of(f.profile, 1)),
            MonitorEvent::kSameStage);
  // Two consecutive detections of 2 → the callback re-matches the stage.
  t += 5000;
  EXPECT_EQ(f.monitor.observe(t, usage_of(f.profile, 2)),
            MonitorEvent::kPendingJump);
  t += 5000;
  EXPECT_EQ(f.monitor.observe(t, usage_of(f.profile, 2)),
            MonitorEvent::kRehearsalCallback);
  EXPECT_EQ(f.monitor.current_stage(), 2);
  EXPECT_EQ(f.monitor.callbacks(), 1);
}

TEST(OnlineMonitor, LoadingMisjudgeJumpsBack) {
  Fixture f;
  TimeMs t = 0;
  f.monitor.observe(t, usage_of(f.profile, 1));
  t += 5000;
  // A dip looks like loading...
  EXPECT_EQ(f.monitor.observe(t, usage_of(f.profile, 0)),
            MonitorEvent::kEnteredLoading);
  t += 5000;
  // ...but the very next detection matches stage 1 again → jump back
  // (§IV-B2 callback case 2).
  EXPECT_EQ(f.monitor.observe(t, usage_of(f.profile, 1)),
            MonitorEvent::kRehearsalCallback);
  EXPECT_EQ(f.monitor.current_stage(), 1);
  // History unaffected: only the initial stage is recorded.
  EXPECT_EQ(f.monitor.exec_history(), (std::vector<int>{1}));
}

TEST(OnlineMonitor, RealLoadingAfterTwoDetectionsNotWithdrawn) {
  Fixture f;
  TimeMs t = 0;
  f.monitor.observe(t, usage_of(f.profile, 1));
  t += 5000;
  f.monitor.observe(t, usage_of(f.profile, 0));
  t += 5000;
  f.monitor.observe(t, usage_of(f.profile, 0));  // second loading detection
  t += 5000;
  // Exit into the same stage type as before is now a genuine transition.
  EXPECT_EQ(f.monitor.observe(t, usage_of(f.profile, 1)),
            MonitorEvent::kEnteredExecution);
  EXPECT_EQ(f.monitor.exec_history(), (std::vector<int>{1, 1}));
}

TEST(OnlineMonitor, RecommendedAllocationExecution) {
  Fixture f;
  f.monitor.observe(0, usage_of(f.profile, 2));
  // No prediction errors yet: allocation = the judged stage's peak.
  const ResourceVector rec = f.monitor.recommended_allocation();
  EXPECT_EQ(rec, f.profile.stage_type(2).peak_demand);
}

TEST(OnlineMonitor, RedundancyAppliedAfterError) {
  Fixture f;
  TimeMs t = 0;
  auto step = [&](int cluster) {
    const auto ev = f.monitor.observe(t, usage_of(f.profile, cluster));
    t += 5000;
    return ev;
  };
  step(0);
  step(0);
  step(2);  // predicted 1, entered 2
  step(2);
  step(0);
  step(0);  // confirm → miss scored
  ASSERT_GT(f.monitor.consecutive_errors(), 0);
  // The next execution stage's allocation carries S = (1−P)·M, capped at
  // the game peak M.
  step(3);
  const ResourceVector rec = f.monitor.recommended_allocation();
  const ResourceVector expect = ResourceVector::min(
      f.profile.stage_type(3).peak_demand + f.predictor.redundancy(),
      f.profile.peak_demand);
  EXPECT_EQ(rec, expect);
  EXPECT_TRUE(rec.fits_within(f.profile.peak_demand));
}

TEST(OnlineMonitor, RecommendedAllocationLoadingPreProvisions) {
  Fixture f;
  f.monitor.observe(0, usage_of(f.profile, 0));
  const ResourceVector rec = f.monitor.recommended_allocation();
  // Covers both the loading draw and the predicted stage-1 peak.
  EXPECT_GE(rec.gpu(),
            f.profile.stage_type(1).peak_demand.gpu() - 1e-9);
  EXPECT_GE(rec.cpu(),
            f.profile.stage_type(0).peak_demand.cpu() - 1e-9);
}

TEST(OnlineMonitor, RecommendedAllocationBeforeFirstObservation) {
  Fixture f;
  EXPECT_EQ(f.monitor.recommended_allocation(), f.profile.peak_demand);
}

TEST(OnlineMonitor, PredictedPeaksStartWithCurrent) {
  Fixture f;
  f.monitor.observe(0, usage_of(f.profile, 1));
  const auto peaks = f.monitor.predicted_peaks(2);
  ASSERT_GE(peaks.size(), 3u);
  EXPECT_EQ(peaks[0], f.profile.stage_type(1).peak_demand);
  EXPECT_EQ(peaks[1], f.profile.stage_type(2).peak_demand);
}

TEST(OnlineMonitor, StageElapsedTracksTime) {
  Fixture f;
  f.monitor.observe(0, usage_of(f.profile, 1));
  EXPECT_EQ(f.monitor.stage_elapsed_ms(15000), 15000);
  // mean_duration 100 s → 85 s expected remaining.
  EXPECT_EQ(f.monitor.expected_remaining_ms(15000), 85000);
  EXPECT_EQ(f.monitor.expected_remaining_ms(500000), 0);
}

TEST(OnlineMonitor, ErrorStreakResets) {
  Fixture f;
  TimeMs t = 0;
  auto step = [&](int cluster) {
    const auto ev = f.monitor.observe(t, usage_of(f.profile, cluster));
    t += 5000;
    return ev;
  };
  step(0);
  step(0);
  step(3);  // predicted 1, entered 3
  step(3);
  step(0);
  step(0);  // confirm → miss scored
  EXPECT_EQ(f.monitor.consecutive_errors(), 1);
  f.monitor.reset_error_streak();
  EXPECT_EQ(f.monitor.consecutive_errors(), 0);
}

TEST(OnlineMonitor, ConstructorValidation) {
  GameProfile p = toy_profile();
  StagePredictor pred = trained_predictor(p);
  EXPECT_THROW(OnlineMonitor(nullptr, &pred, 1, 0), ContractError);
  EXPECT_THROW(OnlineMonitor(&p, nullptr, 1, 0), ContractError);
}

}  // namespace
}  // namespace cocg::core
