#include "core/profile_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "core/frame_profiler.h"
#include "game/library.h"
#include "game/tracegen.h"

namespace cocg::core {
namespace {

GameProfile sample_profile() {
  const game::GameSpec spec = game::make_genshin();
  std::vector<telemetry::Trace> traces;
  Rng rng(21);
  for (int r = 0; r < 8; ++r) {
    traces.push_back(game::profile_run(
        spec, static_cast<std::size_t>(r % 3),
        static_cast<std::uint64_t>(r % 4 + 1), rng.next_u64()));
  }
  ProfilerConfig cfg;
  cfg.forced_k = spec.num_clusters();
  FrameProfiler profiler(cfg);
  return profiler.profile(spec.name, traces, rng).profile;
}

void expect_profiles_equal(const GameProfile& a, const GameProfile& b) {
  EXPECT_EQ(a.game_name, b.game_name);
  EXPECT_EQ(a.norm_scale, b.norm_scale);
  EXPECT_EQ(a.loading_stage_type, b.loading_stage_type);
  ASSERT_EQ(a.clusters.size(), b.clusters.size());
  for (std::size_t i = 0; i < a.clusters.size(); ++i) {
    EXPECT_EQ(a.clusters[i].id, b.clusters[i].id);
    EXPECT_EQ(a.clusters[i].frames, b.clusters[i].frames);
    EXPECT_EQ(a.clusters[i].loading, b.clusters[i].loading);
    for (std::size_t d = 0; d < kNumDims; ++d) {
      EXPECT_NEAR(a.clusters[i].centroid.at(d), b.clusters[i].centroid.at(d),
                  1e-4 * (1.0 + std::abs(a.clusters[i].centroid.at(d))));
    }
  }
  ASSERT_EQ(a.stage_types.size(), b.stage_types.size());
  for (std::size_t i = 0; i < a.stage_types.size(); ++i) {
    EXPECT_EQ(a.stage_types[i].id, b.stage_types[i].id);
    EXPECT_EQ(a.stage_types[i].loading, b.stage_types[i].loading);
    EXPECT_EQ(a.stage_types[i].clusters, b.stage_types[i].clusters);
    EXPECT_EQ(a.stage_types[i].mean_duration_ms,
              b.stage_types[i].mean_duration_ms);
    EXPECT_EQ(a.stage_types[i].occurrences, b.stage_types[i].occurrences);
  }
}

TEST(ProfileIo, StreamRoundTrip) {
  const GameProfile p = sample_profile();
  std::stringstream ss;
  write_profile(p, ss);
  const GameProfile back = read_profile(ss);
  expect_profiles_equal(p, back);
}

TEST(ProfileIo, FileRoundTrip) {
  const GameProfile p = sample_profile();
  const std::string path = "test_profile_io_tmp.cocg";
  save_profile(p, path);
  const GameProfile back = load_profile(path);
  expect_profiles_equal(p, back);
  std::remove(path.c_str());
}

TEST(ProfileIo, LoadedProfileIsFunctional) {
  const GameProfile p = sample_profile();
  std::stringstream ss;
  write_profile(p, ss);
  const GameProfile back = read_profile(ss);
  // The matching machinery works on the loaded copy.
  for (const auto& c : back.clusters) {
    EXPECT_EQ(back.match_cluster(c.centroid), c.id);
  }
  for (const auto& st : back.stage_types) {
    EXPECT_EQ(back.match_stage_signature(st.clusters), st.id);
  }
}

TEST(ProfileIo, BadMagicRejected) {
  std::stringstream ss;
  ss << "not-a-profile\n";
  EXPECT_THROW(read_profile(ss), std::runtime_error);
}

TEST(ProfileIo, TruncatedRejected) {
  const GameProfile p = sample_profile();
  std::stringstream ss;
  write_profile(p, ss);
  const std::string full = ss.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(read_profile(cut), std::runtime_error);
}

TEST(ProfileIo, MissingFileThrows) {
  EXPECT_THROW(load_profile("no_such_profile_xyz.cocg"), std::runtime_error);
}

TEST(ProfileIo, VersionSkewNamesTheVersion) {
  const GameProfile p = sample_profile();
  std::stringstream ss;
  write_profile(p, ss);
  std::string text = ss.str();
  text.replace(text.find("cocg-profile-v1"), 15, "cocg-profile-v3");
  std::stringstream skewed(text);
  try {
    read_profile(skewed);
    FAIL() << "version skew accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
        << e.what();
  }
}

TEST(ProfileIo, CorruptFieldDiagnosticNamesTheLine) {
  const GameProfile p = sample_profile();
  std::stringstream ss;
  write_profile(p, ss);
  std::string text = ss.str();
  const auto pos = text.find("clusters ");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, text.find('\n', pos) - pos, "clusters banana");
  std::stringstream corrupt(text);
  try {
    read_profile(corrupt);
    FAIL() << "corrupt field accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line"), std::string::npos)
        << e.what();
  }
}

TEST(ProfileIo, RoundTripIsByteExact) {
  // max_digits10 serialization: a load/save cycle reproduces the file
  // byte for byte, so profiles behave as golden artifacts under diff.
  const GameProfile p = sample_profile();
  std::stringstream ss;
  write_profile(p, ss);
  const std::string text = ss.str();
  const GameProfile back = read_profile(ss);
  std::stringstream ss2;
  write_profile(back, ss2);
  EXPECT_EQ(ss2.str(), text);
}

TEST(ProfileIo, GameNameWithSpacesSurvives) {
  GameProfile p = sample_profile();
  p.game_name = "Devil May Cry";
  std::stringstream ss;
  write_profile(p, ss);
  EXPECT_EQ(read_profile(ss).game_name, "Devil May Cry");
}

}  // namespace
}  // namespace cocg::core
