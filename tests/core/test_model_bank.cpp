// GameBundle / ModelBank tests: the train-once / share-everywhere path.
// Round trips must preserve predictions bit-for-bit and the training
// corpus (so replace_model retrains exactly like the original); bundles
// saved without the corpus must degrade gracefully; instantiation must
// alias the compiled forests, not copy them.
#include "core/model_bank.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "core/stage_predictor.h"
#include "game/library.h"

namespace cocg::core {
namespace {

OfflineConfig small_cfg(std::uint64_t seed = 11) {
  OfflineConfig cfg;
  cfg.profiling_runs = 6;
  cfg.corpus_runs = 16;
  cfg.seed = seed;
  return cfg;
}

/// A probe that exercises pooled and (if any) per-player models.
void expect_same_predictions(const StagePredictor& a,
                             const StagePredictor& b) {
  for (std::uint64_t player = 1; player <= 4; ++player) {
    for (std::size_t mode = 0; mode < 2; ++mode) {
      EXPECT_EQ(a.predict_next({}, player, mode),
                b.predict_next({}, player, mode));
      EXPECT_EQ(a.predict_sequence({1}, player, mode, 3),
                b.predict_sequence({1}, player, mode, 3));
    }
  }
}

TEST(GameBundle, StreamRoundTripIsExact) {
  static const game::GameSpec g = game::make_genshin();
  const TrainedGame tg = train_game(g, small_cfg());
  const GameBundle bundle = ModelBank::bundle_from(tg);

  std::stringstream ss;
  write_bundle(bundle, ss);
  const GameBundle back = read_bundle(ss);

  EXPECT_EQ(back.game_name(), "Genshin Impact");  // spaces survive
  EXPECT_EQ(back.chosen_k, tg.chosen_k);
  EXPECT_EQ(back.mean_run_duration_ms, tg.mean_run_duration_ms);
  EXPECT_EQ(back.sse_by_k, tg.sse_by_k);
  EXPECT_EQ(back.predictor.accuracy, tg.predictor->accuracy());
  EXPECT_EQ(back.predictor.corpus.size(),
            bundle.predictor.corpus.size());

  const auto restored =
      StagePredictor::from_artifact(back.predictor, back.profile.get());
  EXPECT_TRUE(restored->trained());
  EXPECT_EQ(restored->accuracy(), tg.predictor->accuracy());
  expect_same_predictions(*tg.predictor, *restored);
}

TEST(GameBundle, FileRoundTrip) {
  static const game::GameSpec g = game::make_contra();
  const TrainedGame tg = train_game(g, small_cfg());
  const GameBundle bundle = ModelBank::bundle_from(tg);
  const std::string path = "test_model_bank_tmp.cocgm";
  save_bundle_file(bundle, path);
  const GameBundle back = load_bundle_file(path);
  EXPECT_EQ(back.game_name(), "Contra");
  const auto restored =
      StagePredictor::from_artifact(back.predictor, back.profile.get());
  expect_same_predictions(*tg.predictor, *restored);
  std::filesystem::remove(path);
}

TEST(GameBundle, ReplaceModelRetrainsIdentically) {
  static const game::GameSpec g = game::make_contra();
  const TrainedGame tg = train_game(g, small_cfg());
  std::stringstream ss;
  write_bundle(ModelBank::bundle_from(tg), ss);
  const GameBundle back = read_bundle(ss);
  const auto restored =
      StagePredictor::from_artifact(back.predictor, back.profile.get());

  // Same corpus + same seed → the §IV-B2 fallback retrains to the exact
  // same model on both sides.
  ASSERT_TRUE(restored->can_retrain());
  Rng rng_a(1234), rng_b(1234);
  tg.predictor->replace_model(rng_a);
  restored->replace_model(rng_b);
  EXPECT_EQ(restored->model_kind(), tg.predictor->model_kind());
  EXPECT_EQ(restored->accuracy(), tg.predictor->accuracy());
  expect_same_predictions(*tg.predictor, *restored);
}

TEST(GameBundle, CorpusFreeBundleDegradesGracefully) {
  static const game::GameSpec g = game::make_contra();
  const TrainedGame tg = train_game(g, small_cfg());
  std::stringstream ss;
  write_bundle(ModelBank::bundle_from(tg), ss, /*include_corpus=*/false);
  const GameBundle back = read_bundle(ss);
  EXPECT_TRUE(back.predictor.corpus.empty());

  const auto restored =
      StagePredictor::from_artifact(back.predictor, back.profile.get());
  // Inference still works, bit-identical to the original...
  expect_same_predictions(*tg.predictor, *restored);
  // ...but retraining is a clear error, not UB, and the active model
  // kind is left untouched.
  EXPECT_FALSE(restored->can_retrain());
  const ml::ModelKind kind_before = restored->model_kind();
  Rng rng(5);
  EXPECT_THROW(restored->replace_model(rng), std::runtime_error);
  EXPECT_EQ(restored->model_kind(), kind_before);
  EXPECT_THROW(restored->evaluate_model(ml::ModelKind::kRf, rng),
               std::runtime_error);
  EXPECT_NO_THROW(restored->predict_next({}, 1, 0));
}

TEST(GameBundle, TruncatedAndSkewedInputsRejected) {
  static const game::GameSpec g = game::make_contra();
  const TrainedGame tg = train_game(g, small_cfg());
  std::stringstream ss;
  write_bundle(ModelBank::bundle_from(tg), ss);
  const std::string full = ss.str();

  for (double frac : {0.05, 0.4, 0.8, 0.99}) {
    std::stringstream cut(
        full.substr(0, static_cast<std::size_t>(full.size() * frac)));
    EXPECT_THROW(read_bundle(cut), std::runtime_error) << "frac " << frac;
  }
  std::string skewed = full;
  skewed.replace(skewed.find("cocg-bundle-v1"), 14, "cocg-bundle-v9");
  std::stringstream sk(skewed);
  try {
    read_bundle(sk);
    FAIL() << "version skew accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
        << e.what();
  }
}

TEST(ModelBank, InstantiateSharesForestsCopiesProfile) {
  static const game::GameSpec g = game::make_genshin();
  const TrainedGame tg = train_game(g, small_cfg());
  ModelBank bank;
  bank.add_trained(tg);
  ASSERT_TRUE(bank.has("Genshin Impact"));

  const TrainedGame inst_a = bank.instantiate("Genshin Impact", &g);
  const TrainedGame inst_b = bank.instantiate("Genshin Impact", &g);

  // The compiled forests are one shared copy across the bank and every
  // instantiation; the profiles are independent deep copies.
  const auto& bank_pooled = bank.bundle("Genshin Impact").predictor.pooled;
  EXPECT_EQ(inst_a.predictor->to_artifact(false).pooled.get(),
            bank_pooled.get());
  EXPECT_EQ(inst_b.predictor->to_artifact(false).pooled.get(),
            bank_pooled.get());
  EXPECT_NE(inst_a.profile.get(), inst_b.profile.get());
  EXPECT_NE(inst_a.profile.get(),
            bank.bundle("Genshin Impact").profile.get());

  EXPECT_EQ(inst_a.spec, &g);
  EXPECT_EQ(inst_a.chosen_k, tg.chosen_k);
  expect_same_predictions(*tg.predictor, *inst_a.predictor);
}

TEST(ModelBank, UnknownGameThrows) {
  ModelBank bank;
  EXPECT_THROW(bank.bundle("Nope"), std::runtime_error);
  static const game::GameSpec g = game::make_contra();
  EXPECT_THROW(bank.instantiate("Nope", &g), std::runtime_error);
}

TEST(ModelBank, InstantiateSuiteNamesMissingGame) {
  static const std::vector<game::GameSpec> suite = {game::make_contra(),
                                                    game::make_genshin()};
  ModelBank bank;
  bank.add_trained(train_game(suite[0], small_cfg()));
  try {
    bank.instantiate_suite(suite);
    FAIL() << "missing game accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("Genshin Impact"),
              std::string::npos)
        << e.what();
  }
}

TEST(ModelBank, SaveDirLoadDirRoundTrip) {
  static const std::vector<game::GameSpec> suite = {game::make_contra(),
                                                    game::make_genshin()};
  ModelBank bank;
  for (const auto& g : suite) bank.add_trained(train_game(g, small_cfg()));

  const std::string dir = "test_model_bank_dir_tmp";
  const auto paths = bank.save_dir(dir);
  EXPECT_EQ(paths.size(), 2u);

  const ModelBank loaded = ModelBank::load_dir(dir);
  EXPECT_EQ(loaded.size(), 2u);
  ASSERT_TRUE(loaded.has("Genshin Impact"));  // sanitized filename, real key
  const auto models = loaded.instantiate_suite(suite);
  ASSERT_EQ(models.size(), 2u);
  expect_same_predictions(
      *bank.instantiate("Contra", &suite[0]).predictor,
      *models.at("Contra").predictor);
  std::filesystem::remove_all(dir);
}

TEST(ModelBank, LoadDirMissingThrows) {
  EXPECT_THROW(ModelBank::load_dir("no_such_dir_xyz"), std::runtime_error);
}

}  // namespace
}  // namespace cocg::core
