// Unit-level behaviour of the §V baseline schedulers, beyond the platform
// integration tests in test_schedulers.cpp.
#include <gtest/gtest.h>

#include "common/check.h"
#include "core/baselines.h"
#include "core/offline.h"
#include "game/library.h"
#include "platform/cloud_platform.h"

namespace cocg::core {
namespace {

const std::vector<game::GameSpec>& suite() {
  static const std::vector<game::GameSpec> s = game::paper_suite();
  return s;
}

std::map<std::string, TrainedGame> models(std::uint64_t seed = 71) {
  OfflineConfig cfg;
  cfg.profiling_runs = 8;
  cfg.corpus_runs = 20;
  cfg.seed = seed;
  return train_suite(suite(), cfg);
}

platform::PlatformConfig quiet(std::uint64_t seed) {
  platform::PlatformConfig cfg;
  cfg.seed = seed;
  cfg.session.spike_prob = 0.0;
  return cfg;
}

// --- VBP ---

TEST(VbpUnit, ReservationFractionConfigurable) {
  VbpConfig cfg;
  cfg.reserve_fraction = 0.5;
  auto m = models();
  const double peak = m.at("Contra").profile->peak_demand.gpu();
  platform::CloudPlatform cloud(
      quiet(1), std::make_unique<VbpScheduler>(std::move(m), cfg));
  cloud.add_server(hw::ServerSpec{});
  static const auto contra = game::make_contra();
  cloud.submit(&contra, 0, 1);
  cloud.run(10 * 1000);
  ASSERT_EQ(cloud.running_sessions(), 1u);
  EXPECT_NEAR(cloud.session_info(cloud.session_ids()[0]).allocation.gpu(),
              0.5 * peak, 1e-9);
}

TEST(VbpUnit, RejectsInvalidFraction) {
  VbpConfig bad;
  bad.reserve_fraction = 0.0;
  EXPECT_THROW(VbpScheduler(models(), bad), ContractError);
  bad.reserve_fraction = 1.5;
  EXPECT_THROW(VbpScheduler(models(), bad), ContractError);
}

TEST(VbpUnit, NeverReallocates) {
  platform::CloudPlatform cloud(quiet(2),
                                std::make_unique<VbpScheduler>(models()));
  cloud.add_server(hw::ServerSpec{});
  static const auto genshin = game::make_genshin();
  cloud.submit(&genshin, 0, 1);
  cloud.run(10 * 1000);
  ASSERT_EQ(cloud.running_sessions(), 1u);
  const SessionId sid = cloud.session_ids()[0];
  const double before = cloud.session_info(sid).allocation.gpu();
  cloud.run(3 * 60 * 1000);
  if (cloud.running_sessions() == 1u) {
    EXPECT_EQ(cloud.session_info(sid).allocation.gpu(), before);
  }
}

TEST(VbpUnit, PacksSecondGpuBeforeRejecting) {
  platform::CloudPlatform cloud(quiet(3),
                                std::make_unique<VbpScheduler>(models()));
  cloud.add_server(hw::ServerSpec{});  // 2 GPUs
  static const auto genshin = game::make_genshin();
  static const auto dmc = game::make_devil_may_cry();
  cloud.submit(&genshin, 0, 1);
  cloud.submit(&dmc, 0, 2);
  cloud.run(20 * 1000);
  // Won't share one GPU, but the second GPU hosts the second title
  // (CPU pool permitting).
  EXPECT_EQ(cloud.running_sessions(), 2u);
  std::set<int> gpus;
  for (SessionId sid : cloud.session_ids()) {
    gpus.insert(cloud.session_info(sid).gpu_index);
  }
  EXPECT_EQ(gpus.size(), 2u);
}

// --- GAugur ---

TEST(GaugurUnit, FixedLimitFormula) {
  GaugurConfig cfg;
  cfg.gap_share = 0.5;
  auto m = models();
  // Compute the expected value from the profile directly.
  const auto& profile = *m.at("Genshin Impact").profile;
  ResourceVector mean;
  int n = 0;
  for (const auto& st : profile.stage_types) {
    if (st.loading) continue;
    mean += st.mean_demand;
    ++n;
  }
  mean *= 1.0 / n;
  const double expect_gpu =
      mean.gpu() + 0.5 * (profile.peak_demand.gpu() - mean.gpu());
  GaugurScheduler g(std::move(m), cfg);
  EXPECT_NEAR(g.fixed_limit("Genshin Impact").gpu(), expect_gpu, 1e-9);
}

TEST(GaugurUnit, UnknownGameThrowsOnLimitLookup) {
  GaugurScheduler g(models());
  EXPECT_THROW(g.fixed_limit("Minecraft"), ContractError);
}

TEST(GaugurUnit, GapShareZeroMeansMeanAllocation) {
  GaugurConfig cfg;
  cfg.gap_share = 0.0;
  auto m = models();
  const auto& profile = *m.at("DOTA2").profile;
  GaugurScheduler g(std::move(m), cfg);
  // With gap_share 0 the limit is strictly below the peak.
  EXPECT_LT(g.fixed_limit("DOTA2").gpu(), profile.peak_demand.gpu());
}

TEST(GaugurUnit, FixedLimitNeverChangesAtRuntime) {
  platform::CloudPlatform cloud(
      quiet(4), std::make_unique<GaugurScheduler>(models()));
  cloud.add_server(hw::ServerSpec{});
  static const auto dota2 = game::make_dota2();
  cloud.submit(&dota2, 0, 1);
  cloud.run(10 * 1000);
  ASSERT_EQ(cloud.running_sessions(), 1u);
  const SessionId sid = cloud.session_ids()[0];
  const double before = cloud.session_info(sid).allocation.gpu();
  cloud.run(4 * 60 * 1000);
  if (cloud.running_sessions() == 1u) {
    EXPECT_EQ(cloud.session_info(sid).allocation.gpu(), before);
  }
}

// --- Improved (reactive) ---

TEST(ImprovedUnit, ConfigValidation) {
  ImprovedConfig bad;
  bad.headroom = 0.5;
  EXPECT_THROW(ImprovedScheduler(models(), bad), ContractError);
  bad.headroom = 1.1;
  bad.window = 0;
  EXPECT_THROW(ImprovedScheduler(models(), bad), ContractError);
}

TEST(ImprovedUnit, TracksUsageWithHeadroom) {
  ImprovedConfig cfg;
  cfg.headroom = 1.5;
  platform::CloudPlatform cloud(
      quiet(5), std::make_unique<ImprovedScheduler>(models(), cfg));
  cloud.add_server(hw::ServerSpec{});
  static const auto contra = game::make_contra();
  cloud.submit(&contra, 0, 1);
  cloud.run(60 * 1000);  // well inside the first level
  ASSERT_EQ(cloud.running_sessions(), 1u);
  const SessionId sid = cloud.session_ids()[0];
  const auto& samples = cloud.session_trace(sid).samples();
  ASSERT_FALSE(samples.empty());
  const double usage = samples.back().usage.gpu();
  const double alloc = cloud.session_info(sid).allocation.gpu();
  // Allocation ~ headroom × recent usage (within noise/lag tolerance).
  EXPECT_NEAR(alloc, 1.5 * usage, 0.5 * usage);
}

TEST(ImprovedUnit, ReactsLateToStageRise) {
  // The scheme's defining weakness: on a loading→execution transition the
  // allocation still reflects loading usage until the next control tick,
  // so the first execution seconds run under-provisioned.
  platform::CloudPlatform cloud(
      quiet(6), std::make_unique<ImprovedScheduler>(models()));
  cloud.add_server(hw::ServerSpec{});
  static const auto genshin = game::make_genshin();
  cloud.submit(&genshin, 0, 1);
  cloud.run(1000);  // admit
  ASSERT_EQ(cloud.running_sessions(), 1u);
  // Run until the session leaves its first loading stage.
  bool was_loading = false, squeezed_after_rise = false;
  for (int step = 0; step < 120 && cloud.running_sessions() == 1; ++step) {
    cloud.run(1000);
    const SessionId sid = cloud.session_ids()[0];
    const auto& truth = cloud.session_truth(sid);
    if (truth.stage_kind() == game::StageKind::kLoading) {
      was_loading = true;
    } else if (was_loading) {
      // First execution tick after loading: allocation was set from
      // loading-time usage (low GPU) — strictly below the stage demand.
      const double alloc = cloud.session_info(sid).allocation.gpu();
      if (alloc < 0.9 * truth.demand().gpu()) squeezed_after_rise = true;
      break;
    }
  }
  EXPECT_TRUE(was_loading);
  EXPECT_TRUE(squeezed_after_rise);
}

}  // namespace
}  // namespace cocg::core
