#include "core/distributor.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace cocg::core {
namespace {

const ResourceVector kCap{100, 100, 8192, 8192};

ResourceVector rv(double gpu, double cpu = 30) {
  return ResourceVector{cpu, gpu, 2000, 2000};
}

SessionOutlook hosted(double current_gpu, double expected_gpu,
                      bool loading = false, DurationMs remaining = 60000,
                      double cpu = 30) {
  SessionOutlook o;
  o.current_peak = rv(current_gpu, cpu);
  o.expected = rv(expected_gpu, cpu);
  o.in_loading = loading;
  o.expected_remaining_ms = remaining;
  return o;
}

CandidateOutlook candidate(double peak_gpu, double expected_gpu,
                           bool short_game = false,
                           double opening_cpu = 55) {
  CandidateOutlook c;
  c.opening = ResourceVector{opening_cpu, 7, 1500, 2000};
  c.peak = rv(peak_gpu);
  c.expected = rv(expected_gpu);
  c.short_game = short_game;
  c.expected_duration_ms = 600000;
  return c;
}

TEST(Distributor, EmptyServerAdmitsWhatFits) {
  Distributor d;
  EXPECT_TRUE(d.decide(kCap, {}, candidate(80, 50)).admit);
  EXPECT_FALSE(d.decide(kCap, {}, candidate(150, 50)).admit);
}

TEST(Distributor, ComplementaryExpectedFitAdmitted) {
  Distributor d;
  // Genshin-vs-DOTA2 shape: hosted expected 30, candidate expected 55.
  const auto dec = d.decide(kCap, {hosted(43, 30)}, candidate(80, 55));
  EXPECT_TRUE(dec.admit);
  EXPECT_EQ(dec.reason, "complementary fit");
}

TEST(Distributor, SustainedExpectedOverloadRejected) {
  Distributor d;
  // Two heavy titles whose expected demands sum past the limit.
  const auto dec = d.decide(kCap, {hosted(76, 60)}, candidate(80, 58));
  EXPECT_FALSE(dec.admit);
  EXPECT_EQ(dec.reason, "expected combined consumption exceeds limit");
}

TEST(Distributor, InstantaneousOverloadRejected) {
  Distributor d;
  // Hosted at a 90% GPU peak right now: even a cheap-opening candidate
  // must wait (its own loading GPU is tiny but the check includes it).
  CandidateOutlook c = candidate(50, 30);
  c.opening = ResourceVector{55, 10, 1500, 2000};
  const auto dec = d.decide(kCap, {hosted(90, 40)}, c);
  EXPECT_FALSE(dec.admit);
  EXPECT_EQ(dec.reason, "current combined consumption exceeds limit");
}

TEST(Distributor, LoadingCpuElasticityUnblocksAdmission) {
  Distributor d;
  // Hosted session is LOADING at 65% CPU; candidate opening is 55% CPU.
  // Raw sum (120%) would block, but loading CPU is elastic.
  SessionOutlook h = hosted(7, 30, /*loading=*/true);
  h.current_peak = ResourceVector{65, 7, 1500, 2000};
  const auto dec = d.decide(kCap, {h}, candidate(60, 40));
  EXPECT_TRUE(dec.admit);
}

TEST(Distributor, ShortGameGapInsertion) {
  Distributor d;
  // Long game is currently in a low stage (GPU 8, loading between rounds);
  // its long-run expected (60) + candidate expected (55) would fail the
  // expected rule, but the short game fits instantaneously with its whole
  // peak → §IV-C2 insertion.
  SessionOutlook h = hosted(8, 60, /*loading=*/true);
  const auto dec = d.decide(kCap, {h}, candidate(80, 55, /*short=*/true));
  EXPECT_TRUE(dec.admit);
  EXPECT_EQ(dec.reason, "short-game gap insertion");
}

TEST(Distributor, ShortGameNoRoomRejected) {
  Distributor d;
  // Hosted at its 62% round peak: 62+80 > 95 → no insertion window now.
  const auto dec = d.decide(kCap, {hosted(62, 60)},
                            candidate(80, 55, /*short=*/true));
  EXPECT_FALSE(dec.admit);
}

TEST(Distributor, ShortGameFastpathDisabled) {
  DistributorConfig cfg;
  cfg.short_game_fastpath = false;
  Distributor d(cfg);
  SessionOutlook h = hosted(8, 60, true);
  const auto dec = d.decide(kCap, {h}, candidate(80, 55, true));
  EXPECT_FALSE(dec.admit);  // falls through to the failing expected rule
}

TEST(Distributor, LongGameNeverUsesFastpath) {
  Distributor d;
  SessionOutlook h = hosted(8, 60, true);
  const auto dec = d.decide(kCap, {h}, candidate(80, 55, /*short=*/false));
  EXPECT_FALSE(dec.admit);
}

TEST(Distributor, MultipleHostedExpectedSummed) {
  Distributor d;
  const auto ok = d.decide(kCap, {hosted(30, 25), hosted(30, 25)},
                           candidate(40, 30));
  EXPECT_TRUE(ok.admit);  // 25+25+30 = 80 <= 90
  const auto no = d.decide(kCap, {hosted(30, 35), hosted(30, 35)},
                           candidate(40, 30));
  EXPECT_FALSE(no.admit);  // 35+35+30 = 100 > 90
}

TEST(Distributor, CapacityLimitApplied) {
  DistributorConfig cfg;
  cfg.capacity_limit = 0.5;
  Distributor d(cfg);
  const auto dec = d.decide(kCap, {hosted(30, 30)}, candidate(30, 25));
  EXPECT_FALSE(dec.admit);  // 55 expected > 50 under the tightened limit
}

TEST(Distributor, PaperPairDota2PlusDmc) {
  // Fig. 11's hard pair: expected ≈ 30 (DOTA2) + 58 (DMC) = 88 ≤ 95 —
  // CoCG admits although the peak sum (43 + 76) exceeds the server.
  Distributor d;
  const auto dec = d.decide(kCap, {hosted(43, 30, false, 60000, 40)},
                            candidate(76, 58));
  EXPECT_TRUE(dec.admit);
}

TEST(Distributor, PaperPairGenshinPlusDmcRejected) {
  // Two heavy always-on titles: expected 52 + 58 > 95 → reject.
  Distributor d;
  const auto dec = d.decide(kCap, {hosted(70, 58)}, candidate(78, 52));
  EXPECT_FALSE(dec.admit);
}

// Property: symmetric identical sessions are admitted exactly while
// 2 × expected ≤ the 90% admission limit.
class DistributorPairProp : public ::testing::TestWithParam<double> {};

TEST_P(DistributorPairProp, ExpectedSumThreshold) {
  const double g = GetParam();
  Distributor d;
  const auto dec = d.decide(kCap, {hosted(g, g)}, candidate(g, g));
  if (2 * g > 90.0) {
    EXPECT_FALSE(dec.admit) << g;
  } else {
    EXPECT_TRUE(dec.admit) << g;
  }
}

INSTANTIATE_TEST_SUITE_P(GpuLevels, DistributorPairProp,
                         ::testing::Values(30.0, 40.0, 44.0, 46.0, 60.0,
                                           80.0));

}  // namespace
}  // namespace cocg::core
