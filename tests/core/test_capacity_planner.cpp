#include "core/capacity_planner.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "game/library.h"
#include "platform/cloud_platform.h"
#include "core/cocg_scheduler.h"

namespace cocg::core {
namespace {

const std::vector<game::GameSpec>& suite() {
  static const std::vector<game::GameSpec> s = game::paper_suite();
  return s;
}

const std::map<std::string, TrainedGame>& models() {
  static const std::map<std::string, TrainedGame> m = [] {
    OfflineConfig cfg;
    cfg.profiling_runs = 10;
    cfg.corpus_runs = 20;
    cfg.seed = 101;
    return train_suite(suite(), cfg);
  }();
  return m;
}

TEST(CapacityPlanner, ExpectedDemandBetweenZeroAndPeak) {
  CapacityPlanner planner(&models());
  for (const auto& [name, tg] : models()) {
    const ResourceVector e = planner.expected_demand(name);
    EXPECT_TRUE(e.non_negative()) << name;
    EXPECT_TRUE(e.fits_within(tg.profile->peak_demand +
                              ResourceVector{65, 1, 1, 1}))
        << name;  // loading CPU may exceed execution peak CPU
  }
  EXPECT_THROW(planner.expected_demand("Minecraft"), ContractError);
}

TEST(CapacityPlanner, EmptyMixAlwaysFits) {
  CapacityPlanner planner(&models());
  EXPECT_TRUE(planner.mix_fits({}, hw::baseline_sku()));
}

TEST(CapacityPlanner, HeavyPairDoesNotFitLightPairDoes) {
  CapacityPlanner planner(&models());
  const auto sku = hw::baseline_sku();
  // Genshin + DMC: both heavy → no.
  EXPECT_FALSE(planner.mix_fits({"Genshin Impact", "Devil May Cry"}, sku));
  // Genshin + Contra: yes (the Fig. 11 light pair).
  EXPECT_TRUE(planner.mix_fits({"Genshin Impact", "Contra"}, sku));
  // DOTA2 + DMC: the hard pair CoCG co-locates.
  EXPECT_TRUE(planner.mix_fits({"DOTA2", "Devil May Cry"}, sku));
}

TEST(CapacityPlanner, MaxConcurrentMonotoneWithSku) {
  CapacityPlanner planner(&models());
  const int base = planner.max_concurrent("Contra", hw::baseline_sku());
  EXPECT_GE(base, 2);
  // A flagship SKU hosts at least as many (capacity same in %, but the
  // planner is SKU-capacity-driven; equal here).
  EXPECT_GE(planner.max_concurrent("Contra", hw::flagship_sku()), base);
  // One heavy title fits exactly once per view.
  EXPECT_EQ(planner.max_concurrent("Devil May Cry", hw::baseline_sku()), 1);
}

TEST(CapacityPlanner, MaximalMixesAreMaximalAndFit) {
  CapacityPlanner planner(&models());
  const auto sku = hw::baseline_sku();
  const auto mixes = planner.maximal_mixes(sku);
  ASSERT_FALSE(mixes.empty());
  std::vector<std::string> names;
  for (const auto& [name, tg] : models()) names.push_back(name);
  for (const auto& mix : mixes) {
    EXPECT_TRUE(planner.mix_fits(mix.games, sku));
    EXPECT_GE(mix.headroom, 0.0);
    // Maximality: adding any title breaks the fit (or hits the bound).
    for (const auto& extra : names) {
      auto bigger = mix.games;
      bigger.push_back(extra);
      EXPECT_FALSE(planner.mix_fits(bigger, sku))
          << "mix extensible by " << extra;
    }
  }
  // Sorted by headroom, descending.
  for (std::size_t i = 1; i < mixes.size(); ++i) {
    EXPECT_GE(mixes[i - 1].headroom, mixes[i].headroom);
  }
}

TEST(CapacityPlanner, PlannerAgreesWithOnlineDistributor) {
  // Cross-validation: a pair the planner approves is admitted by the live
  // CoCG scheduler on an empty server, and vice versa for a rejected one.
  CapacityPlanner planner(&models());
  const auto sku = [] {
    hw::ServerSpec s;
    s.num_gpus = 1;
    return s;
  }();

  auto run_pair = [&](const char* a_name, const char* b_name) {
    OfflineConfig cfg;
    cfg.profiling_runs = 10;
    cfg.corpus_runs = 20;
    cfg.seed = 101;
    platform::PlatformConfig pcfg;
    pcfg.seed = 9;
    pcfg.session.spike_prob = 0.0;
    platform::CloudPlatform cloud(
        pcfg,
        std::make_unique<CocgScheduler>(train_suite(suite(), cfg)));
    cloud.add_server(sku);
    const game::GameSpec* a = nullptr;
    const game::GameSpec* b = nullptr;
    for (const auto& g : suite()) {
      if (g.name == a_name) a = &g;
      if (g.name == b_name) b = &g;
    }
    cloud.submit(a, 0, 1);
    cloud.submit(b, 0, 2);
    cloud.run(30 * 1000);
    return cloud.running_sessions();
  };

  EXPECT_TRUE(planner.mix_fits({"Genshin Impact", "Contra"}, sku));
  EXPECT_EQ(run_pair("Genshin Impact", "Contra"), 2u);

  EXPECT_FALSE(planner.mix_fits({"Genshin Impact", "Devil May Cry"}, sku));
  EXPECT_EQ(run_pair("Genshin Impact", "Devil May Cry"), 1u);
}

TEST(CapacityPlanner, ConfigValidation) {
  EXPECT_THROW(CapacityPlanner(nullptr), ContractError);
  PlannerConfig bad;
  bad.capacity_limit = 0.0;
  EXPECT_THROW(CapacityPlanner(&models(), bad), ContractError);
}

}  // namespace
}  // namespace cocg::core
