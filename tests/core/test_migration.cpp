#include "core/migration.h"

#include <gtest/gtest.h>

#include "core/offline.h"

#include "common/check.h"
#include "core/frame_profiler.h"
#include "game/library.h"
#include "game/platform_scaling.h"
#include "game/tracegen.h"

namespace cocg::core {
namespace {

GameProfile profile_on(const game::GameSpec& spec, std::uint64_t seed) {
  std::vector<telemetry::Trace> traces;
  Rng rng(seed);
  for (int r = 0; r < 10; ++r) {
    const auto script = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(spec.scripts.size()) - 1));
    traces.push_back(game::profile_run(
        spec, script, static_cast<std::uint64_t>(r % 4 + 1),
        rng.next_u64()));
  }
  ProfilerConfig cfg;
  cfg.forced_k = spec.num_clusters();
  FrameProfiler profiler(cfg);
  return profiler.profile(spec.name, traces, rng).profile;
}

// --- platform scaling of game specs ---

TEST(PlatformScaling, UtilizationInverseToPerf) {
  const game::GameSpec base = game::make_genshin();
  const game::GameSpec weak = game::scale_for_platform(base, 0.5, 0.5);
  // Half the compute → double the utilization (clamped at 100).
  EXPECT_NEAR(weak.cluster(1).centroid.cpu(),
              std::min(100.0, base.cluster(1).centroid.cpu() * 2.0), 1e-9);
  EXPECT_NEAR(weak.cluster(2).centroid.gpu(), 100.0, 1e-9);  // 78*2 clamps
  // Memory dims unchanged: the assets are the same.
  EXPECT_EQ(weak.cluster(1).centroid.gpu_mem(),
            base.cluster(1).centroid.gpu_mem());
}

TEST(PlatformScaling, StageStructureUnchanged) {
  const game::GameSpec base = game::make_dota2();
  const game::GameSpec strong =
      game::scale_for_platform(base, hw::flagship_sku());
  EXPECT_EQ(strong.num_clusters(), base.num_clusters());
  EXPECT_EQ(strong.num_stage_types(), base.num_stage_types());
  for (int t = 0; t < base.num_stage_types(); ++t) {
    EXPECT_EQ(strong.stage_type(t).clusters, base.stage_type(t).clusters);
    EXPECT_EQ(strong.stage_type(t).min_dwell_ms,
              base.stage_type(t).min_dwell_ms);
  }
}

TEST(PlatformScaling, UncappedFpsScalesWithGpu) {
  const game::GameSpec dota2 = game::make_dota2();  // uncapped
  const game::GameSpec strong = game::scale_for_platform(dota2, 1.0, 2.0);
  EXPECT_NEAR(strong.cluster(1).fps_base, dota2.cluster(1).fps_base * 2.0,
              1e-9);
  const game::GameSpec genshin = game::make_genshin();  // locked 60
  const game::GameSpec strong2 = game::scale_for_platform(genshin, 1.0, 2.0);
  EXPECT_EQ(strong2.cluster(1).fps_base, genshin.cluster(1).fps_base);
}

TEST(PlatformScaling, Preconditions) {
  const game::GameSpec g = game::make_contra();
  EXPECT_THROW(game::scale_for_platform(g, 0.0, 1.0), ContractError);
  EXPECT_THROW(game::scale_for_platform(g, 1.0, -1.0), ContractError);
}

// --- profile migration ---

TEST(Migration, IdentityWhenSameSku) {
  const auto p = profile_on(game::make_contra(), 11);
  const auto m =
      migrate_profile(p, hw::baseline_sku(), hw::baseline_sku());
  EXPECT_LT(profile_centroid_error(p, m), 1e-12);
}

TEST(Migration, RoundTripRecoversProfile) {
  const auto p = profile_on(game::make_dota2(), 12);
  const auto there = migrate_profile(p, hw::baseline_sku(),
                                     hw::flagship_sku());
  const auto back =
      migrate_profile(there, hw::flagship_sku(), hw::baseline_sku());
  EXPECT_LT(profile_centroid_error(p, back), 1e-9);
}

TEST(Migration, CatalogPreserved) {
  const auto p = profile_on(game::make_genshin(), 13);
  const auto m = migrate_profile(p, hw::baseline_sku(), hw::budget_sku());
  ASSERT_EQ(m.num_stage_types(), p.num_stage_types());
  for (int t = 0; t < p.num_stage_types(); ++t) {
    EXPECT_EQ(m.stage_type(t).clusters, p.stage_type(t).clusters);
    EXPECT_EQ(m.stage_type(t).loading, p.stage_type(t).loading);
    EXPECT_EQ(m.stage_type(t).mean_duration_ms,
              p.stage_type(t).mean_duration_ms);
  }
  EXPECT_EQ(m.loading_stage_type, p.loading_stage_type);
}

TEST(Migration, MigratedMatchesFreshProfileOnTarget) {
  // The §IV-D claim end-to-end: profile on the baseline, migrate to the
  // budget SKU, and compare against a profile freshly measured from the
  // game's behaviour on that SKU — "obtained in a single experiment".
  const game::GameSpec base = game::make_genshin();
  const hw::ServerSpec target = hw::budget_sku();
  const auto base_profile = profile_on(base, 14);
  const auto migrated =
      migrate_profile(base_profile, hw::baseline_sku(), target);

  const game::GameSpec on_target = game::scale_for_platform(base, target);
  const auto fresh = profile_on(on_target, 15);

  ASSERT_EQ(migrated.num_clusters(), fresh.num_clusters());
  EXPECT_EQ(migrated.num_stage_types(), fresh.num_stage_types());
  // Centroids agree closely in normalized space (profiling noise only).
  EXPECT_LT(profile_centroid_error(migrated, fresh), 0.06);
}

TEST(Migration, CentroidErrorDetectsMismatch) {
  const auto p = profile_on(game::make_genshin(), 16);
  const auto wrong = migrate_profile(p, hw::baseline_sku(),
                                     hw::budget_sku());
  EXPECT_GT(profile_centroid_error(p, wrong), 0.05);
}

TEST(Migration, TrainedGameBundleMigrates) {
  static const game::GameSpec base = game::make_contra();
  static const game::GameSpec scaled =
      game::scale_for_platform(base, hw::flagship_sku());
  OfflineConfig cfg;
  cfg.profiling_runs = 6;
  cfg.corpus_runs = 12;
  TrainedGame tg = train_game(base, cfg);
  const int types_before = tg.profile->num_stage_types();
  const double base_peak_gpu = tg.profile->peak_demand.gpu();

  TrainedGame moved = migrate_trained_game(
      std::move(tg), hw::baseline_sku(), hw::flagship_sku(), &scaled);
  EXPECT_EQ(moved.spec, &scaled);
  EXPECT_EQ(moved.profile->num_stage_types(), types_before);
  // Flagship GPU is 1.9x: utilization shrinks accordingly.
  EXPECT_NEAR(moved.profile->peak_demand.gpu(), base_peak_gpu / 1.9, 1e-9);
  // The predictor still works and its redundancy now reads the migrated M.
  EXPECT_NO_THROW(moved.predictor->predict_next({}, 1, 0));
  EXPECT_NEAR(moved.predictor->redundancy().gpu(),
              (1.0 - moved.predictor->accuracy()) *
                  moved.profile->peak_demand.gpu(),
              1e-9);
}

TEST(Migration, RebindRejectsDifferentCatalog) {
  static const game::GameSpec base = game::make_contra();
  OfflineConfig cfg;
  cfg.profiling_runs = 6;
  cfg.corpus_runs = 12;
  TrainedGame tg = train_game(base, cfg);
  GameProfile wrong = *tg.profile;
  wrong.stage_types.push_back(wrong.stage_types.back());
  EXPECT_THROW(tg.predictor->rebind_profile(&wrong), ContractError);
  EXPECT_THROW(tg.predictor->rebind_profile(nullptr), ContractError);
}

TEST(Migration, Preconditions) {
  const auto p = profile_on(game::make_contra(), 17);
  hw::ServerSpec bad;
  bad.gpu_perf = 0.0;
  EXPECT_THROW(migrate_profile(p, hw::baseline_sku(), bad), ContractError);
  GameProfile other = p;
  other.clusters.pop_back();
  EXPECT_THROW(profile_centroid_error(p, other), ContractError);
}

}  // namespace
}  // namespace cocg::core
