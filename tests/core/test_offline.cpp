// Dedicated offline-pipeline tests (train_game / train_suite wiring).
#include <gtest/gtest.h>

#include "common/check.h"
#include "core/offline.h"
#include "game/library.h"

namespace cocg::core {
namespace {

TEST(OfflinePipeline, OperatorKUsesDesignedClusterCount) {
  OfflineConfig cfg;
  cfg.profiling_runs = 8;
  cfg.corpus_runs = 10;
  cfg.operator_k = true;
  const auto tg = train_game(game::make_devil_may_cry(), cfg);
  EXPECT_EQ(tg.chosen_k, 6);
  EXPECT_EQ(tg.profile->num_clusters(), 6);
}

TEST(OfflinePipeline, AutomaticElbowMode) {
  OfflineConfig cfg;
  cfg.profiling_runs = 8;
  cfg.corpus_runs = 10;
  cfg.operator_k = false;
  const auto tg = train_game(game::make_genshin(), cfg);
  // The Genshin elbow lands at its designed K (±1 depending on traces).
  EXPECT_GE(tg.chosen_k, 3);
  EXPECT_LE(tg.chosen_k, 5);
  EXPECT_FALSE(tg.sse_by_k.empty());
}

TEST(OfflinePipeline, ExplicitForcedKOverridesOperatorK) {
  OfflineConfig cfg;
  cfg.profiling_runs = 8;
  cfg.corpus_runs = 10;
  cfg.operator_k = true;
  cfg.profiler.forced_k = 3;  // explicit beats the convention
  const auto tg = train_game(game::make_devil_may_cry(), cfg);
  EXPECT_EQ(tg.chosen_k, 3);
}

TEST(OfflinePipeline, MeanRunDurationPlausible) {
  OfflineConfig cfg;
  cfg.profiling_runs = 8;
  cfg.corpus_runs = 0;
  const auto contra = train_game(game::make_contra(), cfg);
  const auto dota2 = train_game(game::make_dota2(), cfg);
  // Contra's runs are minutes; DOTA2's are tens of minutes.
  EXPECT_GT(contra.mean_run_duration_ms, 2 * 60 * 1000);
  EXPECT_LT(contra.mean_run_duration_ms, 20 * 60 * 1000);
  EXPECT_GT(dota2.mean_run_duration_ms, contra.mean_run_duration_ms);
}

TEST(OfflinePipeline, MoreCorpusNeverBreaksTraining) {
  for (int corpus : {0, 5, 40}) {
    OfflineConfig cfg;
    cfg.profiling_runs = 6;
    cfg.corpus_runs = corpus;
    cfg.seed = 200 + corpus;
    const auto tg = train_game(game::make_csgo(), cfg);
    EXPECT_TRUE(tg.predictor->trained()) << corpus;
    EXPECT_GE(tg.predictor->accuracy(), 0.0) << corpus;
  }
}

TEST(OfflinePipeline, SeedsChangeProfilesDeterministically) {
  OfflineConfig a;
  a.profiling_runs = 6;
  a.corpus_runs = 8;
  a.seed = 1;
  OfflineConfig b = a;
  b.seed = 2;
  const auto t1 = train_game(game::make_genshin(), a);
  const auto t2 = train_game(game::make_genshin(), a);
  const auto t3 = train_game(game::make_genshin(), b);
  // Same seed → identical profile; different seed → (almost surely)
  // different centroid noise.
  EXPECT_EQ(t1.profile->clusters[0].centroid,
            t2.profile->clusters[0].centroid);
  EXPECT_NE(t1.profile->clusters[0].centroid,
            t3.profile->clusters[0].centroid);
}

TEST(OfflinePipeline, ConfigValidation) {
  OfflineConfig bad;
  bad.profiling_runs = 0;
  EXPECT_THROW(train_game(game::make_contra(), bad), ContractError);
  bad.profiling_runs = 2;
  bad.players = 0;
  EXPECT_THROW(train_game(game::make_contra(), bad), ContractError);
}

TEST(OfflinePipeline, SuitePointersRemainValid) {
  // train_suite documents that spec pointers refer into the caller's
  // suite; verify the names line up after the map is built and moved.
  static const std::vector<game::GameSpec> suite = game::paper_suite();
  OfflineConfig cfg;
  cfg.profiling_runs = 5;
  cfg.corpus_runs = 5;
  auto models = train_suite(suite, cfg);
  auto moved = std::move(models);
  for (const auto& [name, tg] : moved) {
    ASSERT_NE(tg.spec, nullptr);
    EXPECT_EQ(tg.spec->name, name);
    EXPECT_EQ(tg.profile->game_name, name);
  }
}

}  // namespace
}  // namespace cocg::core
