#include "core/regulator.h"

#include <gtest/gtest.h>

namespace cocg::core {
namespace {

const ResourceVector kCap{100, 100, 8192, 8192};

SessionPressure pressure(std::uint64_t sid, double gpu_wanted,
                         bool loading = false, DurationMs stolen = 0) {
  SessionPressure p;
  p.sid = SessionId{sid};
  p.in_loading = loading;
  p.wanted = ResourceVector{30, gpu_wanted, 2000, 2000};
  p.loading_demand = ResourceVector{55, 8, 1500, 2000};
  p.stolen_ms = stolen;
  return p;
}

TEST(Regulator, NoPressureReleasesEverything) {
  Regulator r;
  const auto actions = r.resolve(kCap, {pressure(1, 40), pressure(2, 40)});
  ASSERT_EQ(actions.size(), 2u);
  for (const auto& a : actions) {
    EXPECT_FALSE(a.hold);
  }
  EXPECT_EQ(actions[0].allocation.gpu(), 40.0);
}

TEST(Regulator, StealsFromLoadingSession) {
  Regulator r;
  // Exec session wants 80, loading session pre-provisions 40 → 120 > 95.
  const auto actions =
      r.resolve(kCap, {pressure(1, 80), pressure(2, 40, /*loading=*/true)});
  EXPECT_FALSE(actions[0].hold);  // never cut a game at its peak
  EXPECT_TRUE(actions[1].hold);
  // Held session throttled to a fraction of the loading draw.
  EXPECT_LT(actions[1].allocation.cpu(), 55.0);
  EXPECT_EQ(actions[0].allocation.gpu(), 80.0);
}

TEST(Regulator, NeverHoldsExecutionSessions) {
  Regulator r;
  const auto actions = r.resolve(kCap, {pressure(1, 80), pressure(2, 80)});
  for (const auto& a : actions) EXPECT_FALSE(a.hold);
}

TEST(Regulator, StopsStealingOnceFits) {
  Regulator r;
  // Two loading sessions; stealing from the first suffices.
  const auto actions = r.resolve(
      kCap, {pressure(1, 60), pressure(2, 50, true), pressure(3, 30, true)});
  EXPECT_TRUE(actions[1].hold);
  EXPECT_FALSE(actions[2].hold);
}

TEST(Regulator, StealBudgetExhaustedExempts) {
  RegulatorConfig cfg;
  cfg.max_steal_ms = 30000;
  Regulator r(cfg);
  const auto actions = r.resolve(
      kCap,
      {pressure(1, 80), pressure(2, 40, true, /*stolen=*/30000)});
  // Budget gone: the loading session keeps its wanted allocation.
  EXPECT_FALSE(actions[1].hold);
  EXPECT_EQ(actions[1].allocation.gpu(), 40.0);
}

TEST(Regulator, HeldFractionConfigurable) {
  RegulatorConfig cfg;
  cfg.held_loading_frac = 0.5;
  Regulator r(cfg);
  const auto actions =
      r.resolve(kCap, {pressure(1, 80), pressure(2, 40, true)});
  ASSERT_TRUE(actions[1].hold);
  EXPECT_DOUBLE_EQ(actions[1].allocation.cpu(), 55.0 * 0.5);
}

TEST(Regulator, CapacityLimitConfigurable) {
  RegulatorConfig tight;
  tight.capacity_limit = 0.60;
  Regulator r(tight);
  // 40+30 = 70 > 60 → steal.
  const auto actions =
      r.resolve(kCap, {pressure(1, 40), pressure(2, 30, true)});
  EXPECT_TRUE(actions[1].hold);
}

TEST(Regulator, OutputOrderMatchesInput) {
  Regulator r;
  const auto actions =
      r.resolve(kCap, {pressure(9, 10), pressure(3, 10), pressure(7, 10)});
  EXPECT_EQ(actions[0].sid.value, 9u);
  EXPECT_EQ(actions[1].sid.value, 3u);
  EXPECT_EQ(actions[2].sid.value, 7u);
}

TEST(Regulator, EmptyInputOk) {
  Regulator r;
  EXPECT_TRUE(r.resolve(kCap, {}).empty());
}

TEST(Regulator, OverloadWithNoLoadingSessionsKeepsWanted) {
  Regulator r;
  // Nothing to steal from: allocations pass through; contention handles
  // the squeeze (§IV-D bounded degradation).
  const auto actions = r.resolve(kCap, {pressure(1, 70), pressure(2, 70)});
  EXPECT_EQ(actions[0].allocation.gpu(), 70.0);
  EXPECT_EQ(actions[1].allocation.gpu(), 70.0);
}

}  // namespace
}  // namespace cocg::core
