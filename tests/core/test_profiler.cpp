#include "core/frame_profiler.h"

#include <gtest/gtest.h>

#include <set>

#include "common/check.h"
#include "game/library.h"
#include "game/tracegen.h"

namespace cocg::core {
namespace {

std::vector<telemetry::Trace> lab_traces(const game::GameSpec& g, int n,
                                         std::uint64_t seed) {
  std::vector<telemetry::Trace> traces;
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    const auto script = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(g.scripts.size()) - 1));
    traces.push_back(game::profile_run(
        g, script, static_cast<std::uint64_t>(i % 4 + 1), rng.next_u64()));
  }
  return traces;
}

ProfilerOutput profile_game(const game::GameSpec& g, int runs = 10,
                            std::uint64_t seed = 1) {
  ProfilerConfig cfg;
  cfg.forced_k = g.num_clusters();  // operator K, as in the paper
  FrameProfiler profiler(cfg);
  Rng rng(seed);
  return profiler.profile(g.name, lab_traces(g, runs, seed), rng);
}

TEST(FrameProfiler, DiscoversDesignedClusterCount) {
  const auto out = profile_game(game::make_genshin());
  EXPECT_EQ(out.profile.num_clusters(), 4);
  EXPECT_EQ(out.chosen_k, 4);
}

TEST(FrameProfiler, ElbowModeWithoutForcedK) {
  const game::GameSpec g = game::make_genshin();
  ProfilerConfig cfg;  // automatic elbow
  FrameProfiler profiler(cfg);
  Rng rng(3);
  const auto out = profiler.profile(g.name, lab_traces(g, 10, 3), rng);
  // Fig. 14's Genshin inflection is at 4; the automatic elbow may land one
  // off depending on the sampled traces.
  EXPECT_GE(out.chosen_k, 3);
  EXPECT_LE(out.chosen_k, 5);
  EXPECT_FALSE(out.sse_by_k.empty());
  // SSE non-increasing.
  for (std::size_t i = 1; i < out.sse_by_k.size(); ++i) {
    EXPECT_LE(out.sse_by_k[i], out.sse_by_k[i - 1] + 1e-9);
  }
}

TEST(FrameProfiler, IdentifiesLoadingCluster) {
  const auto out = profile_game(game::make_dota2());
  int loading_clusters = 0;
  for (const auto& c : out.profile.clusters) {
    if (c.loading) {
      ++loading_clusters;
      EXPECT_LT(c.centroid.gpu(), 15.0);
      EXPECT_GT(c.centroid.cpu(), 20.0);
    }
  }
  EXPECT_EQ(loading_clusters, 1);
  EXPECT_GE(out.profile.loading_stage_type, 0);
  EXPECT_TRUE(
      out.profile.stage_type(out.profile.loading_stage_type).loading);
}

TEST(FrameProfiler, StageTypeCountMatchesDesign) {
  // Genshin: loading + run + battle + fly + domain = 5 (Table I).
  const auto out = profile_game(game::make_genshin(), 14);
  EXPECT_EQ(out.profile.num_stage_types(), 5);
}

TEST(FrameProfiler, StageTypesRespectEmpirical2NBound) {
  for (const auto& g : game::paper_suite()) {
    const auto out = profile_game(g, 12, 7);
    EXPECT_LE(out.profile.num_stage_types(), 2 * out.profile.num_clusters())
        << g.name;
  }
}

TEST(FrameProfiler, OccurrencesAlternateLoadingExecution) {
  const auto out = profile_game(game::make_contra());
  std::size_t prev_trace = SIZE_MAX;
  bool prev_loading = false;
  for (const auto& occ : out.occurrences) {
    EXPECT_LT(occ.start, occ.end);
    EXPECT_GE(occ.stage_type, 0);
    if (occ.trace_idx == prev_trace) {
      EXPECT_NE(occ.loading, prev_loading)
          << "consecutive occurrences must alternate kinds";
    }
    prev_trace = occ.trace_idx;
    prev_loading = occ.loading;
  }
}

TEST(FrameProfiler, DurationsAccumulated) {
  const auto out = profile_game(game::make_contra());
  for (const auto& st : out.profile.stage_types) {
    EXPECT_GT(st.occurrences, 0u);
    EXPECT_GT(st.mean_duration_ms, 0);
    EXPECT_GE(st.max_duration_ms, st.mean_duration_ms);
  }
}

TEST(FrameProfiler, PeakDemandExcludesLoading) {
  const auto out = profile_game(game::make_genshin(), 14);
  // Peak GPU tracks the battle cluster (≈78%), not the loading CPU.
  EXPECT_NEAR(out.profile.peak_demand.gpu(), 78.0, 6.0);
}

TEST(FrameProfiler, StageSequencesNonEmptyPerTrace) {
  const auto out = profile_game(game::make_dota2());
  ASSERT_EQ(out.stage_sequences.size(), 10u);
  for (const auto& seq : out.stage_sequences) {
    EXPECT_GE(seq.size(), 3u);  // loading + >=1 exec + loading
  }
}

TEST(FrameProfiler, RequiresTraces) {
  FrameProfiler profiler;
  Rng rng(1);
  EXPECT_THROW(profiler.profile("x", {}, rng), ContractError);
}

// --- GameProfile behaviour ---

TEST(GameProfile, MatchClusterNearest) {
  const auto out = profile_game(game::make_contra());
  const auto& p = out.profile;
  // The loading centroid itself matches the loading cluster.
  for (const auto& c : p.clusters) {
    EXPECT_EQ(p.match_cluster(c.centroid), c.id);
  }
}

TEST(GameProfile, MatchStageSignature) {
  const auto out = profile_game(game::make_genshin(), 14);
  const auto& p = out.profile;
  for (const auto& st : p.stage_types) {
    EXPECT_EQ(p.match_stage_signature(st.clusters), st.id);
  }
  EXPECT_EQ(p.match_stage_signature({99}), -1);
}

TEST(GameProfile, MatchExecutionStageForCluster) {
  const auto out = profile_game(game::make_genshin(), 14);
  const auto& p = out.profile;
  for (const auto& c : p.clusters) {
    const int st = p.match_execution_stage_for_cluster(c.id);
    if (c.loading) continue;  // loading clusters live in loading stages
    ASSERT_GE(st, 0);
    EXPECT_FALSE(p.stage_type(st).loading);
    // Most specific: the returned type contains the cluster.
    const auto& sig = p.stage_type(st).clusters;
    EXPECT_NE(std::find(sig.begin(), sig.end(), c.id), sig.end());
  }
}

TEST(GameProfile, StageDistanceZeroAtCentroid) {
  const auto out = profile_game(game::make_contra());
  const auto& p = out.profile;
  for (const auto& st : p.stage_types) {
    const auto& c = p.cluster(st.clusters[0]);
    EXPECT_NEAR(p.stage_distance(st.id, c.centroid), 0.0, 1e-12);
  }
}

// --- re-segmentation against a fixed profile ---

TEST(InferStageSequence, MatchesGroundTruthOnFreshRuns) {
  const game::GameSpec g = game::make_contra();
  const auto out = profile_game(g, 12);
  // A fresh run re-segmented with the profile yields alternating
  // loading/exec types of the right count.
  const auto trace = game::profile_run(g, 2, 9, 777);  // three levels
  const auto seq = infer_stage_sequence(out.profile, trace);
  // Contra 3 levels: L E L E L E L = 7 stages.
  EXPECT_EQ(seq.size(), 7u);
  for (std::size_t i = 0; i < seq.size(); ++i) {
    const bool loading =
        out.profile.stage_type(seq[i]).loading;
    EXPECT_EQ(loading, i % 2 == 0);
  }
}

TEST(InferStageSequence, GenshinTaskCountPreserved) {
  const game::GameSpec g = game::make_genshin();
  const auto out = profile_game(g, 14);
  const auto trace = game::profile_run(g, 0, 5, 888);
  const auto seq = infer_stage_sequence(out.profile, trace);
  int execs = 0;
  for (int st : seq) {
    if (!out.profile.stage_type(st).loading) ++execs;
  }
  EXPECT_EQ(execs, 4);  // run/battle/fly + domain
}

// Property: profiling is deterministic given the seed.
TEST(FrameProfiler, DeterministicGivenSeed) {
  const auto a = profile_game(game::make_dota2(), 8, 55);
  const auto b = profile_game(game::make_dota2(), 8, 55);
  EXPECT_EQ(a.profile.num_stage_types(), b.profile.num_stage_types());
  ASSERT_EQ(a.profile.clusters.size(), b.profile.clusters.size());
  for (std::size_t i = 0; i < a.profile.clusters.size(); ++i) {
    EXPECT_EQ(a.profile.clusters[i].centroid,
              b.profile.clusters[i].centroid);
  }
}

}  // namespace
}  // namespace cocg::core
