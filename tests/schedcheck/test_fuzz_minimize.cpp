// Fuzzer efficacy: the planted double-host fault (armed via
// schedcheck::set_fault) must be *found* by the schedule fuzzer within a
// bounded variant budget, *shrunk* by the ddmin minimizer to a handful of
// schedule points, and the minimized artifact must replay to the same
// failure deterministically.
#include <gtest/gtest.h>

#include "schedcheck/fault.h"
#include "schedcheck/fuzz.h"
#include "schedcheck/harness.h"
#include "schedcheck/minimize.h"

namespace cocg::schedcheck {
namespace {

/// Restores Fault::kNone even when an assertion fails out of the test.
struct FaultGuard {
  explicit FaultGuard(Fault f) { set_fault(f); }
  ~FaultGuard() { set_fault(Fault::kNone); }
};

Scenario small() {
  Scenario sc;
  sc.minutes = 3;
  return sc;
}

TEST(SchedFuzz, MutationsAreSeedDeterministic) {
  const Scenario sc = small();
  const RunOutcome rec = record_run(sc);
  ASSERT_FALSE(rec.aborted);
  Rng a(7), b(7), c(8);
  EXPECT_EQ(mutate_schedule(rec.recorded, a, 3),
            mutate_schedule(rec.recorded, b, 3));
  EXPECT_NE(mutate_schedule(rec.recorded, c, 3),
            mutate_schedule(rec.recorded, b, 3));
}

TEST(SchedFuzz, MutantsKeepSeqsStrictlyIncreasing) {
  const Scenario sc = small();
  const RunOutcome rec = record_run(sc);
  ASSERT_FALSE(rec.aborted);
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const Schedule m = mutate_schedule(rec.recorded, rng, 4);
    for (const auto& stream : m.streams) {
      for (std::size_t r = 1; r < stream.size(); ++r) {
        ASSERT_LT(stream[r - 1].seq, stream[r].seq);
      }
    }
    // Structural validity == serializable.
    ASSERT_NO_THROW(schedule_text(m));
  }
}

TEST(SchedFuzz, CleanScenarioSurvivesFuzzing) {
  // Without a planted fault, no legal interleaving may violate the
  // structural invariants — a failure here is a real scheduler bug.
  const Scenario sc = small();
  const RunOutcome rec = record_run(sc);
  ASSERT_FALSE(rec.aborted);
  FuzzOptions opts;
  opts.variants = 60;
  const FuzzResult result =
      fuzz(rec.recorded, opts, [&sc](const Schedule& variant) {
        return replay_run(sc, variant);
      });
  EXPECT_EQ(result.variants_run, 60);
  EXPECT_EQ(result.failures, 0) << describe(result.kept[0].violations);
}

TEST(SchedFuzz, FindsPlantedDoubleHostAndMinimizerShrinksIt) {
  const Scenario sc = small();
  // Record the base schedule with the fault *disarmed*: the natural
  // interleaving does not trip it.
  const RunOutcome rec = record_run(sc);
  ASSERT_FALSE(rec.aborted) << describe(rec.violations);

  FaultGuard guard(Fault::kDoubleHostWindow);

  // Bounded budget: the fuzzer must surface the bug within 200 variants.
  FuzzOptions opts;
  opts.variants = 200;
  opts.seed = 1;
  const FuzzResult result =
      fuzz(rec.recorded, opts, [&sc](const Schedule& variant) {
        return replay_run(sc, variant);
      });
  ASSERT_GT(result.failures, 0);
  ASSERT_FALSE(result.kept.empty());
  const FuzzFailure& failure = result.kept.front();
  ASSERT_FALSE(failure.violations.empty());
  EXPECT_EQ(failure.violations.front().invariant, "double_host");

  // The failing variant replays to the same failure deterministically.
  const RunOutcome again = replay_run(sc, failure.schedule);
  ASSERT_TRUE(again.aborted);
  EXPECT_EQ(again.violations.front().invariant, "double_host");

  // ddmin shrinks the reproducer to at most 10 schedule points.
  const MinimizeResult min = minimize(
      failure.schedule, [&sc](const Schedule& candidate) {
        const RunOutcome out = replay_run(sc, candidate);
        return out.aborted &&
               out.violations.front().invariant == "double_host";
      });
  EXPECT_LE(min.schedule.total_records(), 10u);
  EXPECT_LT(min.schedule.total_records(),
            failure.schedule.total_records());

  // The minimized artifact still reproduces — twice, identically.
  const RunOutcome a = replay_run(sc, min.schedule);
  const RunOutcome b = replay_run(sc, min.schedule);
  ASSERT_TRUE(a.aborted);
  ASSERT_TRUE(b.aborted);
  EXPECT_EQ(a.violations.front().invariant, "double_host");
  EXPECT_EQ(describe(a.violations), describe(b.violations));
}

TEST(SchedMinimize, RejectsScheduleThatDoesNotFail) {
  Schedule s;
  s.streams.resize(3);
  s.streams[0] = {{Point::kRouterChoice, 0, 0, 2, 1}};
  EXPECT_THROW(
      minimize(s, [](const Schedule&) { return false; }),
      std::invalid_argument);
}

TEST(SchedMinimize, SyntheticPredicateShrinksToTheCulpritRecord) {
  // Predicate: fails iff a specific record survives — ddmin must isolate
  // exactly that record.
  Schedule s;
  s.streams.resize(3);
  for (std::uint64_t i = 0; i < 16; ++i) {
    s.streams[1].push_back({Point::kAdmission, 0, i, 2, i == 11 ? 0u : 1u});
  }
  const MinimizeResult res = minimize(s, [](const Schedule& c) {
    for (const auto& r : c.streams[1]) {
      if (r.seq == 11 && r.choice == 0) return true;
    }
    return false;
  });
  ASSERT_EQ(res.schedule.total_records(), 1u);
  EXPECT_EQ(res.schedule.streams[1][0].seq, 11u);
  EXPECT_TRUE(res.minimal);
}

}  // namespace
}  // namespace cocg::schedcheck
