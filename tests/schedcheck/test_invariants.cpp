#include "schedcheck/invariants.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "schedcheck/fault.h"
#include "schedcheck/harness.h"

namespace cocg::schedcheck {
namespace {

TEST(SchedInvariants, CleanFleetHasNoViolations) {
  Scenario sc;
  sc.minutes = 3;
  const RunOutcome out = free_run(sc);
  EXPECT_FALSE(out.aborted) << describe(out.violations);
  EXPECT_TRUE(out.violations.empty());
}

TEST(SchedInvariants, PlantedDoubleHostAbortsAtTheBarrier) {
  // The fault shadow-places an admitted session on a second server when
  // any other session is in a loading hold. With sustained arrivals the
  // overlap occurs naturally, and the barrier audit must catch it before
  // the corrupted state crashes the tick path.
  set_fault(Fault::kDoubleHostWindow);
  Scenario sc;
  sc.minutes = 5;
  sc.arrivals_per_hour = 2400.0;  // dense arrivals: holds overlap admits
  const RunOutcome out = free_run(sc);
  set_fault(Fault::kNone);
  ASSERT_TRUE(out.aborted);
  ASSERT_FALSE(out.violations.empty());
  bool double_host = false;
  for (const auto& v : out.violations) {
    if (v.invariant == "double_host") double_host = true;
  }
  EXPECT_TRUE(double_host) << describe(out.violations);
}

TEST(SchedInvariants, DescribeIsOneLinePerViolation) {
  std::vector<Violation> vs;
  vs.push_back({"double_host", "session 5 on server 0 and 1", 20000, 1});
  vs.push_back({"conservation", "fleet ledger off by 1", 20000, -1});
  const std::string text = describe(vs);
  EXPECT_NE(text.find("double_host"), std::string::npos);
  EXPECT_NE(text.find("conservation"), std::string::npos);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
}

TEST(SchedInvariants, ErrorCarriesViolations) {
  std::vector<Violation> vs;
  vs.push_back({"capacity", "gpu 3 over ceiling", 1000, 0});
  const InvariantViolationError err(vs);
  ASSERT_EQ(err.violations().size(), 1u);
  EXPECT_EQ(err.violations()[0].invariant, "capacity");
  EXPECT_NE(std::string(err.what()).find("capacity"), std::string::npos);
}

}  // namespace
}  // namespace cocg::schedcheck
