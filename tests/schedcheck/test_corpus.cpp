// Seeded regression corpus: every .sched artifact under
// tests/schedcheck/corpus replays in-process and must reproduce the
// outcome its meta declares. Conventions (see corpus/README.md):
//   meta expect clean            — replay must finish without violations
//   meta expect <invariant>      — replay must abort on that invariant
//   meta fault double_host_window — arm the planted fault for this replay
// The corpus dir is baked in at compile time (COCG_SCHEDCHECK_CORPUS_DIR)
// and overridable via the environment variable of the same name, so CI
// can point the suite at freshly minimized fuzz artifacts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "schedcheck/fault.h"
#include "schedcheck/harness.h"
#include "schedcheck/schedule.h"

namespace cocg::schedcheck {
namespace {

std::string corpus_dir() {
  if (const char* env = std::getenv("COCG_SCHEDCHECK_CORPUS_DIR")) {
    return env;
  }
  return COCG_SCHEDCHECK_CORPUS_DIR;
}

TEST(SchedCorpus, EveryArtifactReproducesItsDeclaredOutcome) {
  namespace fs = std::filesystem;
  const std::string dir = corpus_dir();
  ASSERT_TRUE(fs::is_directory(dir)) << dir;
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".sched") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  ASSERT_FALSE(files.empty()) << "no .sched artifacts in " << dir;

  for (const auto& path : files) {
    SCOPED_TRACE(path.filename().string());
    const Schedule schedule = load_schedule(path.string());
    const std::string expect = schedule.meta_value("expect");
    ASSERT_FALSE(expect.empty()) << "corpus artifact lacks 'meta expect'";

    const std::string fault_name = schedule.meta_value("fault");
    if (fault_name == "double_host_window") {
      set_fault(Fault::kDoubleHostWindow);
    } else {
      ASSERT_TRUE(fault_name.empty()) << "unknown fault " << fault_name;
    }

    const Scenario sc = scenario_from_meta(schedule);
    const RunOutcome out = replay_run(sc, schedule);
    set_fault(Fault::kNone);

    if (expect == "clean") {
      EXPECT_FALSE(out.aborted) << describe(out.violations);
    } else {
      ASSERT_TRUE(out.aborted) << "expected invariant " << expect;
      ASSERT_FALSE(out.violations.empty());
      EXPECT_EQ(out.violations.front().invariant, expect)
          << describe(out.violations);
    }
  }
}

// Quiescence engine vs oracle on a pinned schedule: strict replay of the
// clean corpus artifacts must force every decision and produce the same
// fleet report whether the platform runs the incremental-resolve +
// macro-tick engine or the always-resolve per-tick oracle.
TEST(SchedCorpus, CleanArtifactsReplayIdenticallyUnderQuiescenceAndOracle) {
  namespace fs = std::filesystem;
  const std::string dir = corpus_dir();
  for (const char* name : {"lockstep_clean.sched", "steal_clean.sched"}) {
    SCOPED_TRACE(name);
    const fs::path path = fs::path(dir) / name;
    ASSERT_TRUE(fs::exists(path)) << path;
    const Schedule schedule = load_schedule(path.string());

    Scenario quiesce = scenario_from_meta(schedule);
    quiesce.quiescence = true;
    Scenario oracle = quiesce;
    oracle.quiescence = false;

    const RunOutcome fast = replay_run(quiesce, schedule, /*strict=*/true);
    const RunOutcome slow = replay_run(oracle, schedule, /*strict=*/true);
    ASSERT_FALSE(fast.aborted) << describe(fast.violations);
    ASSERT_FALSE(slow.aborted) << describe(slow.violations);
    EXPECT_EQ(fast.report, slow.report);
    EXPECT_EQ(fast.stats.forced, fast.stats.decisions);
    EXPECT_EQ(slow.stats.forced, slow.stats.decisions);
    EXPECT_EQ(fast.stats.divergences, 0u);
    EXPECT_EQ(slow.stats.divergences, 0u);
  }
}

}  // namespace
}  // namespace cocg::schedcheck
