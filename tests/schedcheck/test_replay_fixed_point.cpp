// The record→replay fixed point, end to end on a real fleet:
//  * strict replay of a recording reproduces the fleet report byte for
//    byte at 1, 2, and 8 worker threads, for both runners;
//  * re-recording the replay reproduces the schedule file byte for byte.
#include <gtest/gtest.h>

#include "schedcheck/harness.h"
#include "schedcheck/schedule.h"

namespace cocg::schedcheck {
namespace {

Scenario small(fleet::RunnerKind runner) {
  Scenario sc;
  sc.shards = 2;
  sc.threads = 2;
  sc.runner = runner;
  sc.minutes = 4;
  return sc;
}

class ReplayFixedPoint
    : public ::testing::TestWithParam<fleet::RunnerKind> {};

TEST_P(ReplayFixedPoint, StrictReplayIsByteIdenticalAcrossThreads) {
  const Scenario sc = small(GetParam());
  const RunOutcome rec = record_run(sc);
  ASSERT_FALSE(rec.aborted) << describe(rec.violations);
  ASSERT_GT(rec.recorded.total_records(), 0u);

  for (int threads : {1, 2, 8}) {
    Scenario rsc = sc;
    rsc.threads = threads;
    const RunOutcome rep =
        replay_run(rsc, rec.recorded, /*strict=*/true, /*rerecord=*/true);
    ASSERT_FALSE(rep.aborted) << describe(rep.violations);
    // Byte-identical fleet report from the schedule file alone.
    EXPECT_EQ(rep.report, rec.report) << "threads=" << threads;
    // Every decision was forced; nothing ran free, nothing was left over.
    EXPECT_EQ(rep.stats.forced, rep.stats.decisions);
    EXPECT_EQ(rep.stats.freerun, 0u);
    EXPECT_EQ(rep.stats.divergences, 0u);
    EXPECT_EQ(rep.stats.unconsumed, 0u);
    // Re-recording the replay reproduces the schedule byte for byte (the
    // meta echoes the replay's thread count — the one knob that may
    // legitimately differ — so pin it before comparing bytes).
    Schedule rerec = rep.recorded;
    rerec.set_meta("threads", std::to_string(sc.threads));
    EXPECT_EQ(schedule_text(rerec), schedule_text(rec.recorded))
        << "threads=" << threads;
  }
}

TEST_P(ReplayFixedPoint, RecordingItselfIsThreadCountInvariant) {
  // Not just replay: recording at different thread counts captures the
  // same decisions, because streams are per-decision-maker, not
  // per-thread.
  const Scenario base = small(GetParam());
  const RunOutcome rec2 = record_run(base);
  ASSERT_FALSE(rec2.aborted);
  for (int threads : {1, 8}) {
    Scenario sc = base;
    sc.threads = threads;
    const RunOutcome rec = record_run(sc);
    ASSERT_FALSE(rec.aborted);
    EXPECT_EQ(rec.report, rec2.report) << "threads=" << threads;
    Schedule s = rec.recorded;
    s.set_meta("threads", std::to_string(base.threads));
    EXPECT_EQ(schedule_text(s), schedule_text(rec2.recorded))
        << "threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Runners, ReplayFixedPoint,
                         ::testing::Values(fleet::RunnerKind::kLockstep,
                                           fleet::RunnerKind::kSteal),
                         [](const auto& info) {
                           return std::string(
                               fleet::runner_kind_name(info.param));
                         });

TEST(ReplayScenarioMeta, RoundTripsThroughScheduleMeta) {
  Scenario sc;
  sc.shards = 3;
  sc.threads = 4;
  sc.runner = fleet::RunnerKind::kSteal;
  sc.policy = fleet::RouterPolicy::kRegionAffinity;
  sc.servers = 7;
  sc.gpus = 3;
  sc.minutes = 11;
  sc.games = {"Contra"};
  sc.arrivals_per_hour = 123.5;
  sc.seed = 99;
  Schedule s;
  s.streams.resize(4);
  scenario_to_meta(sc, s);
  const Scenario back = scenario_from_meta(s);
  EXPECT_EQ(back.shards, sc.shards);
  EXPECT_EQ(back.threads, sc.threads);
  EXPECT_EQ(back.runner, sc.runner);
  EXPECT_EQ(back.policy, sc.policy);
  EXPECT_EQ(back.servers, sc.servers);
  EXPECT_EQ(back.gpus, sc.gpus);
  EXPECT_EQ(back.minutes, sc.minutes);
  EXPECT_EQ(back.games, sc.games);
  EXPECT_EQ(back.arrivals_per_hour, sc.arrivals_per_hour);
  EXPECT_EQ(back.seed, sc.seed);
}

TEST(ReplayScenarioMeta, MissingKeysThrow) {
  Schedule s;
  s.streams.resize(3);
  EXPECT_THROW(scenario_from_meta(s), std::runtime_error);
}

}  // namespace
}  // namespace cocg::schedcheck
