#include "schedcheck/session.h"

#include <gtest/gtest.h>

#include "schedcheck/schedule.h"

namespace cocg::schedcheck {
namespace {

TimeMs fixed_clock(const void* arg) {
  return *static_cast<const TimeMs*>(arg);
}

TEST(SchedSession, InactiveDecidePassesThrough) {
  ASSERT_FALSE(active());
  bool forced = true;
  EXPECT_EQ(decide(Point::kAdmission, 2, 1, &forced), 1);
  EXPECT_FALSE(forced);
  int evals = 0;
  EXPECT_EQ(decide_lazy(Point::kRouterChoice, 4,
                        [&] {
                          ++evals;
                          return 3;
                        }),
            3);
  EXPECT_EQ(evals, 1);
}

TEST(SchedSession, RecordCapturesDecisions) {
  Session session(1);
  session.start_record();
  TimeMs now = 1000;
  {
    ScopedStream ss(&session, Session::kCoordinatorStream, &fixed_clock,
                    &now);
    ASSERT_TRUE(active());
    EXPECT_EQ(decide(Point::kRouterChoice, 4, 2), 2);
    now = 2000;
    EXPECT_EQ(decide(Point::kRouterChoice, 4, 0), 0);
  }
  EXPECT_FALSE(active());
  const Schedule rec = session.recorded();
  ASSERT_EQ(rec.streams.size(), 2u);
  ASSERT_EQ(rec.streams[0].size(), 2u);
  EXPECT_EQ(rec.streams[0][0],
            (Record{Point::kRouterChoice, 1000, 0, 4, 2}));
  EXPECT_EQ(rec.streams[0][1],
            (Record{Point::kRouterChoice, 2000, 1, 4, 0}));
  EXPECT_TRUE(rec.streams[1].empty());
  EXPECT_EQ(session.finish().decisions, 2u);
}

TEST(SchedSession, ReplayForcesRecordedChoices) {
  Schedule s;
  s.streams.resize(2);
  s.streams[0] = {{Point::kRouterChoice, 0, 0, 4, 3},
                  {Point::kRouterChoice, 0, 1, 4, 1}};
  Session session(1);
  session.start_replay(s);
  {
    ScopedStream ss(&session, Session::kCoordinatorStream);
    bool forced = false;
    EXPECT_EQ(decide(Point::kRouterChoice, 4, 0, &forced), 3);
    EXPECT_TRUE(forced);
    EXPECT_EQ(decide(Point::kRouterChoice, 4, 0, &forced), 1);
    EXPECT_TRUE(forced);
    // Past the end of the stream: free-run.
    EXPECT_EQ(decide(Point::kRouterChoice, 4, 2, &forced), 2);
    EXPECT_FALSE(forced);
  }
  const ReplayStats st = session.finish();
  EXPECT_EQ(st.decisions, 3u);
  EXPECT_EQ(st.forced, 2u);
  EXPECT_EQ(st.freerun, 1u);
  EXPECT_EQ(st.divergences, 0u);
  EXPECT_EQ(st.unconsumed, 0u);
}

TEST(SchedSession, ReplayClampsOutOfRangeChoice) {
  // A mutated schedule may force a choice the narrower live arity cannot
  // express; replay clamps (mod) instead of crashing the run.
  Schedule s;
  s.streams.resize(2);
  s.streams[0] = {{Point::kRouterChoice, 0, 0, 8, 7}};
  Session session(1);
  session.start_replay(s);
  {
    ScopedStream ss(&session, Session::kCoordinatorStream);
    EXPECT_EQ(decide(Point::kRouterChoice, 3, 0), 7 % 3);
  }
  EXPECT_EQ(session.finish().clamped, 1u);
}

TEST(SchedSession, ReplaySkipsStaleRecords) {
  // Record seq 1 never comes up again once the stream is past it; replay
  // counts the skip as a divergence and keeps going.
  Schedule s;
  s.streams.resize(2);
  s.streams[1] = {{Point::kAdmission, 0, 1, 2, 0},
                  {Point::kAdmission, 0, 3, 2, 0}};
  Session session(1);
  session.start_replay(s);
  {
    ScopedStream ss(&session, 1);
    EXPECT_EQ(decide(Point::kAdmission, 2, 1), 1);  // seq 0: free-run
    EXPECT_EQ(decide(Point::kAdmission, 2, 1), 0);  // seq 1: forced
    EXPECT_EQ(decide(Point::kAdmission, 2, 1), 1);  // seq 2: free-run
    EXPECT_EQ(decide(Point::kAdmission, 2, 1), 0);  // seq 3: forced
  }
  const ReplayStats st = session.finish();
  EXPECT_EQ(st.forced, 2u);
  EXPECT_EQ(st.freerun, 2u);
  EXPECT_EQ(st.unconsumed, 0u);
}

TEST(SchedSession, StrictReplayThrowsOnPointMismatch) {
  Schedule s;
  s.streams.resize(2);
  s.streams[1] = {{Point::kRegulatorHold, 0, 0, 2, 1}};
  Session session(1);
  session.start_replay(s, /*strict=*/true);
  ScopedStream ss(&session, 1);
  EXPECT_THROW(decide(Point::kAdmission, 2, 1), ScheduleDivergenceError);
}

TEST(SchedSession, StrictReplayThrowsOnUnconsumedAtFinish) {
  Schedule s;
  s.streams.resize(2);
  s.streams[0] = {{Point::kRouterChoice, 0, 0, 2, 1}};
  Session session(1);
  session.start_replay(s, /*strict=*/true);
  EXPECT_THROW(session.finish(), ScheduleDivergenceError);
  // Non-strict replay reports the same situation as a count.
  session.start_replay(s, /*strict=*/false);
  EXPECT_EQ(session.finish().unconsumed, 1u);
}

TEST(SchedSession, RerecordCapturesTakenDecisions) {
  Schedule s;
  s.streams.resize(2);
  s.streams[0] = {{Point::kRouterChoice, 0, 0, 4, 3}};
  Session session(1);
  session.start_replay(s, /*strict=*/false, /*rerecord=*/true);
  {
    ScopedStream ss(&session, Session::kCoordinatorStream);
    decide(Point::kRouterChoice, 4, 0);  // forced to 3
    decide(Point::kRouterChoice, 4, 2);  // free-runs to 2
  }
  const Schedule rr = session.recorded();
  ASSERT_EQ(rr.streams[0].size(), 2u);
  EXPECT_EQ(rr.streams[0][0].choice, 3u);
  EXPECT_EQ(rr.streams[0][1].choice, 2u);
}

TEST(SchedSession, DecideLazySkipsNaturalWhenForced) {
  Schedule s;
  s.streams.resize(2);
  s.streams[0] = {{Point::kRouterChoice, 0, 0, 4, 3}};
  Session session(1);
  session.start_replay(s);
  {
    ScopedStream ss(&session, Session::kCoordinatorStream);
    int evals = 0;
    auto natural = [&] {
      ++evals;
      return 1;
    };
    EXPECT_EQ(decide_lazy(Point::kRouterChoice, 4, natural), 3);
    EXPECT_EQ(evals, 0);  // forced: the natural path must not run
    EXPECT_EQ(decide_lazy(Point::kRouterChoice, 4, natural), 1);
    EXPECT_EQ(evals, 1);  // free-run: natural path runs exactly once
  }
}

TEST(SchedSession, ScopedStreamNestsAndRestores) {
  Session session(1);
  session.start_record();
  ScopedStream outer(&session, Session::kCoordinatorStream);
  decide(Point::kRouterChoice, 2, 0);
  {
    // Inline shard job on the coordinator thread (threads=1 runners).
    ScopedStream inner(&session, 1);
    decide(Point::kAdmission, 2, 1);
  }
  decide(Point::kRouterChoice, 2, 1);
  const Schedule rec = session.recorded();
  EXPECT_EQ(rec.streams[0].size(), 2u);
  EXPECT_EQ(rec.streams[1].size(), 1u);
  EXPECT_EQ(rec.streams[0][1].seq, 1u);  // coordinator seq unaffected
}

TEST(SchedSession, NullSessionScopeIsANoOp) {
  ScopedStream ss(nullptr, 0);
  EXPECT_FALSE(active());
  EXPECT_EQ(decide(Point::kAdmission, 2, 1), 1);
}

TEST(SchedSession, WallPointsAggregate) {
  Session session(2);
  session.start_record();
  session.note_wall_points(3);
  session.note_wall_points(4);
  EXPECT_EQ(session.finish().wall_points, 7u);
}

TEST(SchedSession, ReplayRejectsShardCountMismatch) {
  Schedule s;
  s.streams.resize(4);
  Session session(1);  // expects 2 streams
  EXPECT_THROW(session.start_replay(s), std::runtime_error);
}

}  // namespace
}  // namespace cocg::schedcheck
