#include "schedcheck/schedule.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace cocg::schedcheck {
namespace {

Schedule sample() {
  Schedule s;
  s.meta = {{"scenario", "1"}, {"shards", "2"}};
  s.streams.resize(3);
  s.streams[0] = {
      {Point::kRouterChoice, 1000, 0, 4, 2},
      {Point::kExecutorSync, 5000, 1, 2, 1},
  };
  s.streams[1] = {
      {Point::kAdmission, 1500, 0, 2, 1},
      {Point::kRegulatorVictim, 2500, 1, 3, 0},
      {Point::kRegulatorHold, 2500, 2, 2, 1},
  };
  s.streams[2] = {
      {Point::kMigrationTrigger, 60000, 0, 2, 1},
  };
  return s;
}

TEST(ScheduleIo, TextRoundTrip) {
  const Schedule s = sample();
  const std::string text = schedule_text(s);
  std::istringstream is(text);
  const Schedule back = read_schedule(is);
  EXPECT_EQ(s, back);
  EXPECT_EQ(back.num_shards(), 2);
  EXPECT_EQ(back.total_records(), 6u);
  // Canonical form: serializing again yields the same bytes.
  EXPECT_EQ(schedule_text(back), text);
}

TEST(ScheduleIo, FileRoundTrip) {
  const Schedule s = sample();
  const std::string path =
      ::testing::TempDir() + "/schedcheck_roundtrip.sched";
  save_schedule(s, path);
  EXPECT_EQ(load_schedule(path), s);
  std::remove(path.c_str());
}

TEST(ScheduleIo, MetaHelpers) {
  Schedule s;
  EXPECT_EQ(s.meta_value("seed"), "");
  s.set_meta("seed", "42");
  s.set_meta("runner", "lockstep");
  EXPECT_EQ(s.meta_value("seed"), "42");
  s.set_meta("seed", "7");  // replaces, never duplicates
  EXPECT_EQ(s.meta_value("seed"), "7");
  EXPECT_EQ(s.meta.size(), 2u);
}

TEST(ScheduleIo, RejectsWrongMagic) {
  std::istringstream is("cocg-traffic-v1\n");
  EXPECT_THROW(read_schedule(is), std::runtime_error);
}

TEST(ScheduleIo, RejectsForeignPointTaxonomy) {
  // A schedule recorded by a build with different point names must fail
  // at parse time, not silently force the wrong decisions.
  std::string text = schedule_text(sample());
  const auto pos = text.find("router_choice");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, std::string("router_choice").size(), "router_pick__");
  std::istringstream is(text);
  EXPECT_THROW(read_schedule(is), std::runtime_error);
}

TEST(ScheduleIo, RejectsNonIncreasingSeq) {
  Schedule s = sample();
  s.streams[1][2].seq = 1;  // duplicates the previous record's seq
  EXPECT_THROW(schedule_text(s), std::runtime_error);
}

TEST(ScheduleIo, RejectsTruncatedFile) {
  std::string text = schedule_text(sample());
  text.resize(text.rfind("end"));
  std::istringstream is(text);
  EXPECT_THROW(read_schedule(is), std::runtime_error);
}

TEST(ScheduleIo, PointNamesRoundTrip) {
  for (std::size_t i = 0; i < kNumPoints; ++i) {
    const Point p = static_cast<Point>(i);
    const auto parsed = parse_point(point_name(p));
    ASSERT_TRUE(parsed.has_value()) << point_name(p);
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_FALSE(parse_point("bogus").has_value());
}

}  // namespace
}  // namespace cocg::schedcheck
