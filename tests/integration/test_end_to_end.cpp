// End-to-end integration: the full paper pipeline — offline training on
// synthetic lab runs, then scheduler-vs-scheduler co-location experiments
// on the simulated platform — exercised as a whole.
#include <gtest/gtest.h>

#include <cmath>

#include "core/baselines.h"
#include "core/cocg_scheduler.h"
#include "core/offline.h"
#include "game/library.h"
#include "platform/cloud_platform.h"

namespace cocg {
namespace {

const std::vector<game::GameSpec>& suite() {
  static const std::vector<game::GameSpec> s = game::paper_suite();
  return s;
}

std::map<std::string, core::TrainedGame> models(std::uint64_t seed) {
  core::OfflineConfig cfg;
  cfg.profiling_runs = 10;
  cfg.corpus_runs = 40;
  cfg.seed = seed;
  return core::train_suite(suite(), cfg);
}

platform::PlatformConfig pcfg(std::uint64_t seed) {
  platform::PlatformConfig cfg;
  cfg.seed = seed;
  return cfg;
}

const game::GameSpec* spec_of(const std::string& name) {
  for (const auto& g : suite()) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

double run_pair(std::unique_ptr<platform::Scheduler> sched,
                const std::string& a, const std::string& b,
                DurationMs duration, std::uint64_t seed,
                int short_game_concurrency = 2) {
  platform::CloudPlatform cloud(pcfg(seed), std::move(sched));
  hw::ServerSpec one_gpu;
  one_gpu.num_gpus = 1;
  cloud.add_server(one_gpu);
  const auto* ga = spec_of(a);
  const auto* gb = spec_of(b);
  cloud.add_source({ga, ga->short_game ? short_game_concurrency : 1, 8});
  cloud.add_source({gb, gb->short_game ? short_game_concurrency : 1, 8});
  cloud.run(duration);
  return cloud.throughput();
}

TEST(EndToEnd, FullPipelineTrainsAllFiveGames) {
  const auto m = models(77);
  ASSERT_EQ(m.size(), 5u);
  for (const auto& [name, tg] : m) {
    EXPECT_GT(tg.predictor->accuracy(), 0.6) << name;
    EXPECT_GE(tg.profile->loading_stage_type, 0) << name;
    EXPECT_GT(tg.mean_run_duration_ms, 0) << name;
  }
}

TEST(EndToEnd, SingleGameSavingVsPeakAllocation) {
  // §V-B1: stage-level allocation saves resources vs constant peak
  // allocation. Compute the integral of CoCG's allocation vs peak over a
  // solo Genshin run.
  auto m = models(78);
  const auto& tg = m.at("Genshin Impact");
  const double peak_gpu = tg.profile->peak_demand.gpu();

  platform::CloudPlatform cloud(
      pcfg(79), std::make_unique<core::CocgScheduler>(std::move(m)));
  cloud.add_server(hw::ServerSpec{});
  cloud.submit(spec_of("Genshin Impact"), 0, 1);

  double alloc_integral = 0.0;
  double peak_integral = 0.0;
  int seconds = 0;
  for (int step = 0; step < 200; ++step) {
    cloud.run(5 * 1000);
    if (cloud.running_sessions() == 0) break;
    const auto info = cloud.session_info(cloud.session_ids()[0]);
    alloc_integral += info.allocation.gpu() * 5.0;
    peak_integral += peak_gpu * 5.0;
    seconds += 5;
  }
  ASSERT_GT(seconds, 60);
  const double saving = 1.0 - alloc_integral / peak_integral;
  // The paper reports 27.3% for Genshin (17.5% average across games).
  EXPECT_GT(saving, 0.08);
  EXPECT_LT(saving, 0.60);
}

TEST(EndToEnd, CocgThroughputCompetitiveOnPaperPairs) {
  // Fig. 11's three pair workloads; CoCG must beat-or-match both
  // baselines in aggregate (paper: +23.7%).
  const DurationMs two_hours = 2LL * 60 * 60 * 1000;
  const std::vector<std::pair<std::string, std::string>> pairs = {
      {"DOTA2", "Devil May Cry"},
      {"CSGO", "Genshin Impact"},
      {"Genshin Impact", "Contra"}};
  double cocg_total = 0, vbp_total = 0, gaugur_total = 0;
  for (const auto& [a, b] : pairs) {
    cocg_total += run_pair(
        std::make_unique<core::CocgScheduler>(models(80)), a, b,
        two_hours / 4, 81);
    vbp_total += run_pair(std::make_unique<core::VbpScheduler>(models(80)),
                          a, b, two_hours / 4, 81);
    gaugur_total += run_pair(
        std::make_unique<core::GaugurScheduler>(models(80)), a, b,
        two_hours / 4, 81);
  }
  EXPECT_GE(cocg_total, vbp_total);
  EXPECT_GE(cocg_total, gaugur_total);
}

TEST(EndToEnd, DeterministicExperimentReplay) {
  auto once = [&] {
    return run_pair(std::make_unique<core::CocgScheduler>(models(82)),
                    "Genshin Impact", "DOTA2", 20 * 60 * 1000, 83);
  };
  const double a = once();
  const double b = once();
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(EndToEnd, QosUnderCoLocationAcceptable) {
  // §IV-D: operators tolerate degradation below ~5% of total time; verify
  // CoCG's QoS violations stay bounded on the light pair.
  auto m = models(84);
  platform::CloudPlatform cloud(
      pcfg(85), std::make_unique<core::CocgScheduler>(std::move(m)));
  hw::ServerSpec one_gpu;
  one_gpu.num_gpus = 1;
  cloud.add_server(one_gpu);
  cloud.add_source({spec_of("Genshin Impact"), 1, 8});
  cloud.add_source({spec_of("Contra"), 1, 8});
  cloud.run(45 * 60 * 1000);
  ASSERT_GE(cloud.completed_runs().size(), 2u);
  double violation_s = 0, total_s = 0;
  for (const auto& run : cloud.completed_runs()) {
    violation_s += ms_to_sec(run.qos_violation_ms);
    total_s += ms_to_sec(run.duration_ms);
  }
  EXPECT_LT(violation_s / total_s, 0.05);
}

TEST(EndToEnd, UtilizationStaysBelowLimitOnFig9Pair) {
  // Fig. 9: the co-location of Genshin Impact and DOTA2 keeps combined
  // utilization below the 95% upper bound almost always.
  auto m = models(86);
  platform::CloudPlatform cloud(
      pcfg(87), std::make_unique<core::CocgScheduler>(std::move(m)));
  hw::ServerSpec one_gpu;
  one_gpu.num_gpus = 1;
  cloud.add_server(one_gpu);
  cloud.enable_utilization_recording(true);
  cloud.add_source({spec_of("Genshin Impact"), 1, 8});
  cloud.add_source({spec_of("DOTA2"), 1, 8});
  cloud.run(30 * 60 * 1000);
  const auto& log = cloud.utilization_log();
  ASSERT_FALSE(log.empty());
  std::size_t over = 0;
  for (const auto& up : log) {
    if (up.max_dim_fraction > 0.95 + 1e-9) ++over;
    // Hard invariant: physical supply never exceeds the hardware.
    EXPECT_LE(up.max_dim_fraction, 1.0 + 1e-9);
  }
  // The regulator staggers most peak overlap; residual excursions above
  // the 95% target are bounded (the paper's Fig. 9 shows a representative
  // run that stays below it throughout).
  EXPECT_LT(static_cast<double>(over) / static_cast<double>(log.size()),
            0.25);
}

}  // namespace
}  // namespace cocg
