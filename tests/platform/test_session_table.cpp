#include "platform/session_table.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace cocg::platform {
namespace {

TEST(SessionTable, EmplaceFindErase) {
  SessionTable<int> t;
  EXPECT_TRUE(t.empty());
  t.emplace(SessionId{5}) = 50;
  t.emplace(SessionId{3}) = 30;
  EXPECT_EQ(t.size(), 2u);
  ASSERT_NE(t.find(SessionId{5}), nullptr);
  EXPECT_EQ(*t.find(SessionId{5}), 50);
  EXPECT_EQ(t.find(SessionId{4}), nullptr);
  EXPECT_TRUE(t.contains(SessionId{3}));
  EXPECT_TRUE(t.erase(SessionId{5}));
  EXPECT_FALSE(t.erase(SessionId{5}));
  EXPECT_EQ(t.find(SessionId{5}), nullptr);
  EXPECT_EQ(t.size(), 1u);
}

TEST(SessionTable, SlotsAreRecycled) {
  SessionTable<std::string> t;
  for (std::uint64_t i = 1; i <= 8; ++i) t.emplace(SessionId{i}) = "x";
  const std::size_t slots = t.slot_count();
  // Steady churn: every admission after a departure reuses a freed slot.
  for (std::uint64_t i = 9; i <= 200; ++i) {
    t.erase(SessionId{i - 8});
    t.emplace(SessionId{i}) = "y";
  }
  EXPECT_EQ(t.slot_count(), slots);
  EXPECT_EQ(t.size(), 8u);
}

TEST(SessionTable, SortedIdsRecoversMapOrder) {
  SessionTable<int> t;
  for (std::uint64_t v : {9, 2, 14, 5, 1}) t.emplace(SessionId{v});
  t.erase(SessionId{5});
  t.emplace(SessionId{4});  // recycles 5's slot out of id order
  const auto ids = t.sorted_ids();
  ASSERT_EQ(ids.size(), 5u);
  const std::vector<std::uint64_t> want{1, 2, 4, 9, 14};
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(ids[i].value, want[i]);
  }
}

TEST(SessionTable, ForEachVisitsOnlyLive) {
  SessionTable<int> t;
  for (std::uint64_t i = 1; i <= 5; ++i) t.emplace(SessionId{i}) = 1;
  t.erase(SessionId{2});
  t.erase(SessionId{4});
  int visited = 0;
  t.for_each([&](SessionId sid, int&) {
    EXPECT_TRUE(sid.value % 2 == 1);
    ++visited;
  });
  EXPECT_EQ(visited, 3);
}

TEST(SessionTable, ConsistencyAuditCleanAcrossLifecycle) {
  // consistency_error() is the schedcheck invariant suite's structural
  // audit; it must stay empty through every legal sequence of operations,
  // including slot recycling and interleaved erases.
  SessionTable<int> t;
  EXPECT_EQ(t.consistency_error(), "");
  for (std::uint64_t i = 1; i <= 8; ++i) t.emplace(SessionId{i}) = 1;
  EXPECT_EQ(t.consistency_error(), "");
  t.erase(SessionId{3});
  t.erase(SessionId{7});
  t.erase(SessionId{1});
  EXPECT_EQ(t.consistency_error(), "");
  t.emplace(SessionId{20});  // recycles a freed slot
  t.emplace(SessionId{21});
  EXPECT_EQ(t.consistency_error(), "");
  for (std::uint64_t i : {2, 4, 5, 6, 8, 20, 21}) t.erase(SessionId{i});
  EXPECT_EQ(t.consistency_error(), "");
  t.emplace(SessionId{100});
  EXPECT_EQ(t.consistency_error(), "");
}

TEST(SessionTable, EraseReleasesValueEagerly) {
  SessionTable<std::shared_ptr<int>> t;
  auto p = std::make_shared<int>(7);
  std::weak_ptr<int> w = p;
  t.emplace(SessionId{1}) = std::move(p);
  ASSERT_FALSE(w.expired());
  t.erase(SessionId{1});  // slot stays allocated, value must not
  EXPECT_TRUE(w.expired());
}

}  // namespace
}  // namespace cocg::platform
