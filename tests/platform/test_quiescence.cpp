// Quiescence engine vs the always-resolve oracle. incremental_resolve and
// macro_ticks are pure performance knobs: every observable output —
// completed runs, per-game stats, throughput, telemetry traces, the
// utilization log — must be byte-identical with both switches off. These
// tests run twin platforms through admission/finish churn, migration,
// regulator holds and recording modes, and compare hexfloat dumps. The
// suite name is load-bearing: CI's sanitizer job re-runs `Quiescence.*`
// explicitly.
#include <gtest/gtest.h>

#include <ios>
#include <memory>
#include <sstream>
#include <string>

#include "game/library.h"
#include "obs/obs.h"
#include "platform/cloud_platform.h"

namespace cocg::platform {
namespace {

/// Jitter-free two-stage game (6 s load, 90 s level): sessions are
/// quiescent between stage boundaries, and the closed-loop source restarts
/// them so admission/finish churn keeps perturbing the resolve caches.
game::GameSpec det_spec() {
  game::GameSpec g;
  g.id = GameId{903};
  g.name = "DetChurn";
  g.category = game::GameCategory::kWeb;

  game::FrameClusterSpec load;
  load.id = 0;
  load.name = "load";
  load.centroid = ResourceVector{30.0, 5.0, 600.0, 400.0};
  load.fps_base = 0.0;
  game::FrameClusterSpec play;
  play.id = 1;
  play.name = "play";
  play.centroid = ResourceVector{12.0, 24.0, 800.0, 440.0};
  play.fps_base = 60.0;
  g.clusters = {load, play};

  game::StageTypeSpec loading;
  loading.id = 0;
  loading.name = "loading";
  loading.kind = game::StageKind::kLoading;
  loading.clusters = {0};
  loading.min_dwell_ms = 6000;
  loading.max_dwell_ms = 6000;
  game::StageTypeSpec level;
  level.id = 1;
  level.name = "level";
  level.kind = game::StageKind::kExecution;
  level.clusters = {1};
  level.min_dwell_ms = 90000;
  level.max_dwell_ms = 90000;
  g.stage_types = {loading, level};
  g.loading_stage_type = 0;

  game::ScriptSpec script;
  script.name = "level";
  script.segments.push_back(game::ScriptSegment{1, 1, 1, 0.0});
  g.scripts = {script};
  return g;
}

class GreedyScheduler : public Scheduler {
 public:
  std::string name() const override { return "greedy"; }
  std::optional<Placement> admit(PlatformView& view,
                                 const GameRequest&) override {
    for (ServerId id : view.server_ids()) {
      const auto& srv = view.server(id);
      for (int g = 0; g < srv.spec().num_gpus; ++g) {
        if (alloc_.fits_within(srv.free_on_gpu(g))) {
          return Placement{id, g, alloc_};
        }
      }
    }
    return std::nullopt;
  }

 protected:
  ResourceVector alloc_{40, 45, 2000, 2000};
};

/// Exercises the two PlatformView mutation paths every control period:
/// re-allocates the lowest session id between two allocations (the
/// migration/epoch path) and toggles a loading hold on it (the regulator
/// path). Deterministic: decisions depend only on view state.
class MutatingScheduler final : public GreedyScheduler {
 public:
  std::string name() const override { return "mutating"; }
  void control(PlatformView& view) override {
    const auto ids = view.session_ids();
    if (ids.empty()) return;
    const SessionId victim = ids.front();
    ++calls_;
    const bool grow = (calls_ % 2) == 0;
    view.reallocate(victim, grow ? ResourceVector{44, 50, 2200, 2200}
                                 : ResourceVector{40, 45, 2000, 2000});
    view.hold_loading(victim, (calls_ % 3) == 0);
  }

 private:
  int calls_ = 0;
};

PlatformConfig det_config(bool quiescence) {
  PlatformConfig cfg;
  cfg.seed = 4242;
  cfg.measurement_noise_rel = 0.0;
  cfg.streaming.network_jitter_ms = 0.0;
  cfg.session.spike_prob = 0.0;
  cfg.incremental_resolve = quiescence;
  cfg.macro_ticks = quiescence;
  return cfg;
}

PlatformConfig noisy_config(bool quiescence) {
  PlatformConfig cfg;  // default noise, jitter and spikes all on
  cfg.seed = 4242;
  cfg.incremental_resolve = quiescence;
  cfg.macro_ticks = quiescence;
  return cfg;
}

/// Everything a completed run reports, doubles in hexfloat: equality of
/// dumps is bit-identity of results. Deliberately excludes the metrics
/// registry — event/tick counters legitimately differ across the engines.
std::string result_dump(const CloudPlatform& p) {
  std::ostringstream os;
  os << std::hexfloat;
  for (const auto& r : p.completed_runs()) {
    os << r.sid.value << '|' << r.game << '|' << r.script_idx << '|'
       << r.start << '|' << r.end << '|' << r.duration_ms << '|'
       << r.wait_ms << '|' << r.qos_violation_ms << '|'
       << r.loading_extension_ms << '|' << r.mean_fps_ratio << '|'
       << r.mean_fps << '|' << r.mean_latency_ms << '|' << r.max_latency_ms
       << '|' << r.latency_violation_ms << '\n';
  }
  for (const auto& [game, gs] : p.game_stats()) {
    os << game << '|' << gs.completed << '|' << gs.total_duration_s << '|'
       << gs.mean_fps_ratio << '|' << gs.qos_violation_s << '|'
       << gs.mean_wait_s << '\n';
  }
  os << "T=" << p.throughput() << " queued=" << p.queued_requests()
     << " running=" << p.running_sessions()
     << " admitted=" << p.sessions_admitted() << '\n';
  return os.str();
}

std::string trace_dump(const CloudPlatform& p) {
  std::ostringstream os;
  os << std::hexfloat;
  for (SessionId sid : p.session_ids()) {
    os << sid.value << ":\n";
    for (const auto& s : p.session_trace(sid).samples()) {
      os << s.t << '|' << s.fps << '|' << s.true_stage_type << '|'
         << s.true_loading << '|' << s.true_cluster;
      for (std::size_t d = 0; d < kNumDims; ++d) os << '|' << s.usage.at(d);
      os << '\n';
    }
  }
  return os.str();
}

std::string util_dump(const CloudPlatform& p) {
  std::ostringstream os;
  os << std::hexfloat;
  for (const auto& u : p.utilization_log()) {
    os << u.t << '|' << u.server.value << '|' << u.gpu_index << '|'
       << u.max_dim_fraction;
    for (std::size_t d = 0; d < kNumDims; ++d) {
      os << '|' << u.total_supplied.at(d);
    }
    os << '\n';
  }
  return os.str();
}

struct RunOptions {
  bool record_util = false;
  bool mutating_scheduler = false;
  DurationMs minutes = 12;
};

std::unique_ptr<CloudPlatform> make_churn_platform(
    const PlatformConfig& cfg, const game::GameSpec* spec,
    const RunOptions& opt) {
  std::unique_ptr<Scheduler> sched;
  if (opt.mutating_scheduler) {
    sched = std::make_unique<MutatingScheduler>();
  } else {
    sched = std::make_unique<GreedyScheduler>();
  }
  auto p = std::make_unique<CloudPlatform>(cfg, std::move(sched));
  p->add_server(hw::ServerSpec{});
  p->add_server(hw::ServerSpec{});
  p->enable_utilization_recording(opt.record_util);
  p->add_source(SourceConfig{spec, 3, 8});
  p->add_source(SourceConfig{spec, 2, 8});
  return p;
}

std::string run_and_dump(CloudPlatform& p, DurationMs minutes) {
  p.run(minutes * 60 * 1000);
  return result_dump(p);
}

TEST(Quiescence, OracleIdentityUnderChurn) {
  static const game::GameSpec spec = det_spec();
  const RunOptions opt;
  auto fast = make_churn_platform(det_config(true), &spec, opt);
  auto oracle = make_churn_platform(det_config(false), &spec, opt);
  const std::string a = run_and_dump(*fast, opt.minutes);
  const std::string b = run_and_dump(*oracle, opt.minutes);
  EXPECT_EQ(a, b);
  EXPECT_GT(fast->completed_runs().size(), 0u);

  // The engine actually engaged: caches hit between boundaries and whole
  // windows were absorbed. The oracle never touches either path.
  const QuiescenceStats& q = fast->quiescence_stats();
  EXPECT_GT(q.resolve_cache_hits, 0u);
  EXPECT_GT(q.resolve_cache_misses, 0u);
  EXPECT_GT(q.ticks_skipped, 0u);
  EXPECT_GT(q.fast_forward_windows, 0u);
  const QuiescenceStats& qo = oracle->quiescence_stats();
  EXPECT_EQ(qo.resolve_cache_hits, 0u);
  EXPECT_EQ(qo.ticks_skipped, 0u);
}

TEST(Quiescence, OracleIdentityWithNoiseAndSpikes) {
  // Full stochastic models: measurement noise pins the engine to real
  // ticks and demand jitter defeats the cache — the engine must degrade
  // to the oracle gracefully, not incorrectly.
  static const game::GameSpec contra = game::make_contra();
  const RunOptions opt;
  auto fast = make_churn_platform(noisy_config(true), &contra, opt);
  auto oracle = make_churn_platform(noisy_config(false), &contra, opt);
  const std::string a = run_and_dump(*fast, opt.minutes);
  const std::string b = run_and_dump(*oracle, opt.minutes);
  EXPECT_EQ(a, b);
  const QuiescenceStats& q = fast->quiescence_stats();
  EXPECT_EQ(q.fast_forward_windows, 0u);  // noise needs per-tick RNG
  EXPECT_GT(q.resolve_cache_misses, 0u);  // jitter redraws every tick
}

TEST(Quiescence, TelemetryTracesMaterializedAcrossWindows) {
  // Stop mid-run and compare the live sessions' telemetry traces: the
  // fast-forward path must materialize one sample per skipped tick, not
  // leave gaps.
  static const game::GameSpec spec = det_spec();
  const RunOptions opt;
  auto fast = make_churn_platform(det_config(true), &spec, opt);
  auto oracle = make_churn_platform(det_config(false), &spec, opt);
  const DurationMs horizon = 10 * 60 * 1000;
  const TimeMs mid = 4 * 60 * 1000 + 3000;  // mid-epoch, not a boundary
  fast->begin(horizon);
  oracle->begin(horizon);
  fast->advance_until(mid);
  oracle->advance_until(mid);
  EXPECT_GT(fast->quiescence_stats().ticks_skipped, 0u);
  EXPECT_EQ(trace_dump(*fast), trace_dump(*oracle));
  fast->advance_until(horizon);
  oracle->advance_until(horizon);
  fast->finish();
  oracle->finish();
  EXPECT_EQ(result_dump(*fast), result_dump(*oracle));
}

TEST(Quiescence, UtilizationRecordingPinsRealTicks) {
  // The util log needs a snapshot every tick, so recording must disengage
  // the fast-forward (but the resolve cache still works) — and the logs
  // must match the oracle point for point.
  static const game::GameSpec spec = det_spec();
  RunOptions opt;
  opt.record_util = true;
  opt.minutes = 6;
  auto fast = make_churn_platform(det_config(true), &spec, opt);
  auto oracle = make_churn_platform(det_config(false), &spec, opt);
  const std::string a = run_and_dump(*fast, opt.minutes);
  const std::string b = run_and_dump(*oracle, opt.minutes);
  EXPECT_EQ(a, b);
  EXPECT_EQ(util_dump(*fast), util_dump(*oracle));
  EXPECT_GT(fast->utilization_log().size(), 0u);
  const QuiescenceStats& q = fast->quiescence_stats();
  EXPECT_EQ(q.fast_forward_windows, 0u);
  EXPECT_GT(q.resolve_cache_hits, 0u);
}

TEST(Quiescence, MigrationAndRegulatorPathsInvalidate) {
  // A scheduler that reallocates and holds loading every control period
  // hits the two epoch-bump paths that do not go through place/remove.
  static const game::GameSpec spec = det_spec();
  RunOptions opt;
  opt.mutating_scheduler = true;
  auto fast = make_churn_platform(det_config(true), &spec, opt);
  auto oracle = make_churn_platform(det_config(false), &spec, opt);
  const std::string a = run_and_dump(*fast, opt.minutes);
  const std::string b = run_and_dump(*oracle, opt.minutes);
  EXPECT_EQ(a, b);
  EXPECT_GT(fast->completed_runs().size(), 0u);
  EXPECT_GT(fast->quiescence_stats().resolve_cache_hits, 0u);
}

TEST(Quiescence, IncrementalOnlyModeMatchesOracle) {
  // macro_ticks off, incremental_resolve on: the cache path alone.
  static const game::GameSpec spec = det_spec();
  PlatformConfig cfg = det_config(true);
  cfg.macro_ticks = false;
  const RunOptions opt;
  auto fast = make_churn_platform(cfg, &spec, opt);
  auto oracle = make_churn_platform(det_config(false), &spec, opt);
  const std::string a = run_and_dump(*fast, opt.minutes);
  const std::string b = run_and_dump(*oracle, opt.minutes);
  EXPECT_EQ(a, b);
  const QuiescenceStats& q = fast->quiescence_stats();
  EXPECT_GT(q.resolve_cache_hits, 0u);
  EXPECT_EQ(q.fast_forward_windows, 0u);
}

TEST(Quiescence, CountersExportedToMetricsRegistry) {
  static const game::GameSpec spec = det_spec();
  obs::reset();
  obs::set_enabled(true);
  const RunOptions opt;
  auto p = make_churn_platform(det_config(true), &spec, opt);
  p->run(opt.minutes * 60 * 1000);
  const QuiescenceStats& q = p->quiescence_stats();
  std::ostringstream os;
  obs::metrics().write_json(os);
  const std::string json = os.str();
  obs::set_enabled(false);
  EXPECT_NE(json.find("\"tick.skipped\":" + std::to_string(q.ticks_skipped)),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"tick.fast_forward_windows\":" +
                      std::to_string(q.fast_forward_windows)),
            std::string::npos);
  EXPECT_NE(json.find("\"resolve.cache_hits\":" +
                      std::to_string(q.resolve_cache_hits)),
            std::string::npos);
  EXPECT_NE(json.find("\"resolve.cache_misses\":" +
                      std::to_string(q.resolve_cache_misses)),
            std::string::npos);
  EXPECT_GT(q.ticks_skipped, 0u);
}

}  // namespace
}  // namespace cocg::platform
