// Open-loop Poisson arrival sources.
#include <gtest/gtest.h>

#include "common/check.h"
#include "core/baselines.h"
#include "core/offline.h"
#include "game/library.h"
#include "platform/cloud_platform.h"

namespace cocg::platform {
namespace {

std::unique_ptr<Scheduler> vbp() {
  static const std::vector<game::GameSpec> suite = {game::make_contra()};
  core::OfflineConfig cfg;
  cfg.profiling_runs = 6;
  cfg.corpus_runs = 10;
  return std::make_unique<core::VbpScheduler>(
      core::train_suite(suite, cfg));
}

PlatformConfig quiet(std::uint64_t seed) {
  PlatformConfig cfg;
  cfg.seed = seed;
  cfg.session.spike_prob = 0.0;
  return cfg;
}

TEST(OpenLoop, ArrivalRateApproximatelyRespected) {
  static const auto contra = game::make_contra();
  CloudPlatform cloud(quiet(1), vbp());
  cloud.add_server(hw::ServerSpec{});
  OpenLoopSource src;
  src.spec = &contra;
  src.arrivals_per_hour = 60.0;  // one per minute
  cloud.add_open_loop_source(src);
  cloud.run(2LL * 60 * 60 * 1000);  // 2 hours → ~120 arrivals
  EXPECT_NEAR(static_cast<double>(cloud.open_loop_arrivals()), 120.0, 35.0);
}

TEST(OpenLoop, QueueGrowsUnderOverload) {
  static const auto contra = game::make_contra();
  CloudPlatform cloud(quiet(2), vbp());
  hw::ServerSpec tiny;
  tiny.num_gpus = 1;
  cloud.add_server(tiny);
  OpenLoopSource src;
  src.spec = &contra;
  // Contra runs ~6 min and VBP hosts a handful at once; 300/h overwhelms.
  src.arrivals_per_hour = 300.0;
  cloud.add_open_loop_source(src);
  cloud.run(60 * 60 * 1000);
  EXPECT_GT(cloud.queued_requests(), 10u);
  EXPECT_GT(cloud.completed_runs().size(), 3u);  // service still progresses
}

TEST(OpenLoop, NoArrivalsAfterZeroSources) {
  static const auto contra = game::make_contra();
  CloudPlatform cloud(quiet(3), vbp());
  cloud.add_server(hw::ServerSpec{});
  cloud.run(10 * 60 * 1000);
  EXPECT_EQ(cloud.open_loop_arrivals(), 0u);
}

TEST(OpenLoop, SurvivesRepeatedRunCalls) {
  static const auto contra = game::make_contra();
  CloudPlatform cloud(quiet(4), vbp());
  cloud.add_server(hw::ServerSpec{});
  OpenLoopSource src;
  src.spec = &contra;
  src.arrivals_per_hour = 120.0;
  cloud.add_open_loop_source(src);
  for (int i = 0; i < 30; ++i) cloud.run(2 * 60 * 1000);  // 60 min total
  EXPECT_NEAR(static_cast<double>(cloud.open_loop_arrivals()), 120.0, 40.0);
}

TEST(OpenLoop, ConfigValidation) {
  CloudPlatform cloud(quiet(5), vbp());
  OpenLoopSource bad;
  bad.spec = nullptr;
  EXPECT_THROW(cloud.add_open_loop_source(bad), ContractError);
  static const auto contra = game::make_contra();
  bad.spec = &contra;
  bad.arrivals_per_hour = 0.0;
  EXPECT_THROW(cloud.add_open_loop_source(bad), ContractError);
}

}  // namespace
}  // namespace cocg::platform
