#include "platform/cloud_platform.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "game/library.h"

namespace cocg::platform {
namespace {

/// Greedy admit-everything scheduler used to exercise the platform itself.
class GreedyScheduler final : public Scheduler {
 public:
  explicit GreedyScheduler(ResourceVector alloc = {60, 90, 4000, 4000})
      : alloc_(alloc) {}

  std::string name() const override { return "greedy"; }

  std::optional<Placement> admit(PlatformView& view,
                                 const GameRequest& req) override {
    (void)req;
    ++admit_calls_;
    for (ServerId server : view.server_ids()) {
      const auto& srv = view.server(server);
      for (int g = 0; g < srv.spec().num_gpus; ++g) {
        if (alloc_.fits_within(srv.free_on_gpu(g))) {
          return Placement{server, g, alloc_};
        }
      }
    }
    return std::nullopt;
  }

  void on_session_start(PlatformView&, SessionId) override { ++starts_; }
  void on_session_end(PlatformView&, SessionId) override { ++ends_; }

  int admit_calls() const { return admit_calls_; }
  int starts() const { return starts_; }
  int ends() const { return ends_; }

 private:
  ResourceVector alloc_;
  int admit_calls_ = 0;
  int starts_ = 0;
  int ends_ = 0;
};

/// Scheduler that rejects everything.
class RejectingScheduler final : public Scheduler {
 public:
  std::string name() const override { return "reject"; }
  std::optional<Placement> admit(PlatformView&, const GameRequest&) override {
    return std::nullopt;
  }
};

PlatformConfig quiet_config(std::uint64_t seed = 1) {
  PlatformConfig cfg;
  cfg.seed = seed;
  cfg.session.spike_prob = 0.0;
  return cfg;
}

TEST(CloudPlatform, RunsClosedLoopSource) {
  static const auto contra = game::make_contra();
  CloudPlatform cloud(quiet_config(), std::make_unique<GreedyScheduler>());
  cloud.add_server(hw::ServerSpec{});
  cloud.add_source({&contra, 1, 4});
  cloud.run(40 * 60 * 1000);  // 40 min ≫ one Contra run
  EXPECT_GE(cloud.completed_runs().size(), 2u);
  for (const auto& run : cloud.completed_runs()) {
    EXPECT_EQ(run.game, "Contra");
    EXPECT_GT(run.duration_ms, 0);
  }
}

TEST(CloudPlatform, ThroughputSumsCompletedSeconds) {
  static const auto contra = game::make_contra();
  CloudPlatform cloud(quiet_config(2), std::make_unique<GreedyScheduler>());
  cloud.add_server(hw::ServerSpec{});
  cloud.add_source({&contra, 1, 4});
  cloud.run(30 * 60 * 1000);
  double expect = 0.0;
  for (const auto& run : cloud.completed_runs()) {
    expect += ms_to_sec(run.duration_ms);
  }
  EXPECT_DOUBLE_EQ(cloud.throughput(), expect);
}

TEST(CloudPlatform, GameStatsAggregate) {
  static const auto contra = game::make_contra();
  CloudPlatform cloud(quiet_config(3), std::make_unique<GreedyScheduler>());
  cloud.add_server(hw::ServerSpec{});
  cloud.add_source({&contra, 1, 4});
  cloud.run(30 * 60 * 1000);
  const auto stats = cloud.game_stats();
  ASSERT_TRUE(stats.count("Contra"));
  EXPECT_EQ(stats.at("Contra").completed,
            static_cast<int>(cloud.completed_runs().size()));
  EXPECT_GT(stats.at("Contra").mean_fps_ratio, 0.9);
}

TEST(CloudPlatform, RejectedRequestsStayQueued) {
  static const auto contra = game::make_contra();
  CloudPlatform cloud(quiet_config(4),
                      std::make_unique<RejectingScheduler>());
  cloud.add_server(hw::ServerSpec{});
  cloud.add_source({&contra, 2, 4});
  cloud.run(60 * 1000);
  EXPECT_EQ(cloud.completed_runs().size(), 0u);
  EXPECT_EQ(cloud.running_sessions(), 0u);
  EXPECT_EQ(cloud.queued_requests(), 2u);  // max_concurrent outstanding
}

TEST(CloudPlatform, SchedulerLifecycleCallbacks) {
  static const auto contra = game::make_contra();
  auto sched = std::make_unique<GreedyScheduler>();
  auto* sched_ptr = sched.get();
  CloudPlatform cloud(quiet_config(5), std::move(sched));
  cloud.add_server(hw::ServerSpec{});
  cloud.add_source({&contra, 1, 4});
  cloud.run(30 * 60 * 1000);
  EXPECT_GT(sched_ptr->starts(), 0);
  EXPECT_EQ(sched_ptr->ends(),
            static_cast<int>(cloud.completed_runs().size()));
}

TEST(CloudPlatform, SessionTraceRecordsSamples) {
  static const auto dota2 = game::make_dota2();
  CloudPlatform cloud(quiet_config(6), std::make_unique<GreedyScheduler>());
  cloud.add_server(hw::ServerSpec{});
  cloud.add_source({&dota2, 1, 4});
  cloud.run(60 * 1000);
  ASSERT_EQ(cloud.running_sessions(), 1u);
  const SessionId sid = cloud.session_ids()[0];
  const auto& trace = cloud.session_trace(sid);
  // One sample per second, minus the admission delay.
  EXPECT_GE(trace.size(), 50u);
  EXPECT_LE(trace.size(), 61u);
  const auto info = cloud.session_info(sid);
  EXPECT_EQ(info.spec, &dota2);
  EXPECT_GE(info.player_id, 1u);
}

TEST(CloudPlatform, ReallocateThroughView) {
  static const auto dota2 = game::make_dota2();
  CloudPlatform cloud(quiet_config(7), std::make_unique<GreedyScheduler>());
  cloud.add_server(hw::ServerSpec{});
  cloud.add_source({&dota2, 1, 4});
  cloud.run(10 * 1000);
  ASSERT_EQ(cloud.running_sessions(), 1u);
  const SessionId sid = cloud.session_ids()[0];
  EXPECT_TRUE(cloud.reallocate(sid, {50, 50, 3000, 3000}));
  EXPECT_EQ(cloud.session_info(sid).allocation.gpu(), 50.0);
  EXPECT_FALSE(cloud.reallocate(SessionId{999}, {1, 1, 1, 1}));
}

TEST(CloudPlatform, HoldLoadingExtendsSession) {
  static const auto contra = game::make_contra();
  CloudPlatform a(quiet_config(8), std::make_unique<GreedyScheduler>());
  a.add_server(hw::ServerSpec{});
  a.add_source({&contra, 1, 4});
  a.run(3 * 1000);  // Contra's init loading lasts >= 5 s
  ASSERT_EQ(a.running_sessions(), 1u);
  const SessionId sid = a.session_ids()[0];
  ASSERT_EQ(a.session_truth(sid).stage_kind(), game::StageKind::kLoading);
  a.hold_loading(sid, true);
  a.run(60 * 1000);
  // Still in (held) loading — ground truth confirms.
  EXPECT_EQ(a.session_truth(sid).stage_kind(), game::StageKind::kLoading);
}

TEST(CloudPlatform, MaxConcurrentHonoured) {
  static const auto contra = game::make_contra();
  CloudPlatform cloud(quiet_config(9), std::make_unique<GreedyScheduler>(
                                           ResourceVector{10, 10, 500, 500}));
  cloud.add_server(hw::ServerSpec{});
  cloud.add_source({&contra, 3, 6});
  cloud.run(30 * 1000);
  EXPECT_EQ(cloud.running_sessions(), 3u);
}

TEST(CloudPlatform, UtilizationRecordingProducesPoints) {
  static const auto contra = game::make_contra();
  CloudPlatform cloud(quiet_config(10), std::make_unique<GreedyScheduler>());
  cloud.add_server(hw::ServerSpec{});
  cloud.add_source({&contra, 1, 4});
  cloud.enable_utilization_recording(true);
  cloud.run(30 * 1000);
  const auto& log = cloud.utilization_log();
  ASSERT_FALSE(log.empty());
  // Two GPU views per tick.
  EXPECT_EQ(log.size() % 2, 0u);
  for (const auto& up : log) {
    EXPECT_GE(up.max_dim_fraction, 0.0);
    EXPECT_LE(up.max_dim_fraction, 1.0 + 1e-9);
  }
}

TEST(CloudPlatform, DeterministicAcrossRuns) {
  static const auto genshin = game::make_genshin();
  auto run_once = [&] {
    CloudPlatform cloud(quiet_config(11),
                        std::make_unique<GreedyScheduler>());
    cloud.add_server(hw::ServerSpec{});
    cloud.add_source({&genshin, 1, 4});
    cloud.run(25 * 60 * 1000);
    return std::make_pair(cloud.completed_runs().size(),
                          cloud.throughput());
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_DOUBLE_EQ(a.second, b.second);
}

TEST(CloudPlatform, WaitTimeAccounted) {
  static const auto contra = game::make_contra();
  // Rejecting scheduler first: requests age in the queue; then a greedy
  // platform admits instantly and waits are ~0.
  CloudPlatform cloud(quiet_config(20), std::make_unique<GreedyScheduler>());
  cloud.add_server(hw::ServerSpec{});
  cloud.add_source({&contra, 1, 4});
  cloud.run(25 * 60 * 1000);
  ASSERT_GE(cloud.completed_runs().size(), 1u);
  // First request admitted at t=0 (run start) → zero wait; replenished
  // requests are admitted at the next control tick → wait ≤ 5 s.
  for (const auto& run : cloud.completed_runs()) {
    EXPECT_GE(run.wait_ms, 0);
    EXPECT_LE(run.wait_ms, 5000);
  }
  const auto stats = cloud.game_stats();
  EXPECT_LT(stats.at("Contra").mean_wait_s, 5.1);
}

TEST(CloudPlatform, ConfigValidation) {
  PlatformConfig bad;
  bad.tick_ms = 0;
  EXPECT_THROW(
      CloudPlatform(bad, std::make_unique<GreedyScheduler>()),
      ContractError);
  EXPECT_THROW(CloudPlatform(quiet_config(), nullptr), ContractError);
}

TEST(CloudPlatform, TwoServersSpillOver) {
  static const auto dmc = game::make_devil_may_cry();
  // Allocation so large only one session fits per GPU view.
  CloudPlatform cloud(quiet_config(12),
                      std::make_unique<GreedyScheduler>(
                          ResourceVector{40, 90, 4000, 4000}));
  cloud.add_server(hw::ServerSpec{});
  cloud.add_server(hw::ServerSpec{});
  cloud.add_source({&dmc, 4, 8});
  cloud.run(60 * 1000);
  // CPU pool (100) limits each server to 2 such sessions: 2 + 2 across
  // servers.
  EXPECT_EQ(cloud.running_sessions(), 4u);
  std::set<std::uint64_t> servers;
  for (SessionId sid : cloud.session_ids()) {
    servers.insert(cloud.session_info(sid).server.value);
  }
  EXPECT_EQ(servers.size(), 2u);
}

}  // namespace
}  // namespace cocg::platform
