// Allocation-counting regression test for the simulation hot path.
//
// Replaces the global operator new/delete with counting wrappers and
// asserts that hardware_tick() performs zero heap allocation at steady
// state: dense SessionTable lookups, scratch-arena reuse, SeqSet event
// bookkeeping and pre-reserved telemetry buffers must keep the tick loop
// off the allocator entirely once warmed up.
//
// Sanitizer builds provide their own operator new and need the default
// one for poisoning/interception, so the hook (and the strict zero
// assertion) compiles out there; the test then only checks the scenario
// still runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>

#include "game/library.h"
#include "obs/obs.h"
#include "platform/cloud_platform.h"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define COCG_ALLOC_HOOK 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define COCG_ALLOC_HOOK 0
#else
#define COCG_ALLOC_HOOK 1
#endif
#else
#define COCG_ALLOC_HOOK 1
#endif

namespace {

std::uint64_t g_allocs = 0;   // bumped by every operator new while armed
bool g_counting = false;      // tests are single-threaded; plain bool is fine

std::uint64_t allocations_observed() { return g_allocs; }
void arm_alloc_counter() {
  g_allocs = 0;
  g_counting = true;
}
void disarm_alloc_counter() { g_counting = false; }

}  // namespace

#if COCG_ALLOC_HOOK

namespace {
void* counted_alloc(std::size_t n) {
  if (g_counting) ++g_allocs;
  void* p = std::malloc(n ? n : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#endif  // COCG_ALLOC_HOOK

namespace cocg::platform {
namespace {

/// A game whose single execution stage dwells for hours: after loading,
/// sessions sit in steady state with no stage transitions (transitions
/// append to the session's stage history, which is allowed to allocate).
game::GameSpec steady_spec() {
  game::GameSpec spec;
  spec.id = GameId{700};
  spec.name = "Steady";
  spec.category = game::GameCategory::kWeb;

  game::FrameClusterSpec load;
  load.id = 0;
  load.name = "load";
  load.centroid = {28, 6, 700, 420};
  load.jitter = {2, 1, 10, 5};
  spec.clusters.push_back(load);

  game::FrameClusterSpec play;
  play.id = 1;
  play.name = "play";
  play.centroid = {10, 20, 820, 450};
  play.jitter = {1, 2, 10, 5};
  spec.clusters.push_back(play);

  game::StageTypeSpec loading;
  loading.id = 0;
  loading.name = "loading";
  loading.kind = game::StageKind::kLoading;
  loading.clusters = {0};
  loading.min_dwell_ms = loading.max_dwell_ms = 5000;
  spec.stage_types.push_back(loading);

  game::StageTypeSpec exec;
  exec.id = 1;
  exec.name = "endless";
  exec.kind = game::StageKind::kExecution;
  exec.clusters = {1};
  exec.min_dwell_ms = exec.max_dwell_ms = 8L * 3600 * 1000;
  spec.stage_types.push_back(exec);

  spec.loading_stage_type = 0;
  game::ScriptSpec script;
  script.name = "steady";
  script.segments.push_back(game::ScriptSegment{1, 1, 1, 0.0});
  spec.scripts.push_back(script);
  return spec;
}

class PinScheduler final : public Scheduler {
 public:
  std::string name() const override { return "pin"; }
  std::optional<Placement> admit(PlatformView& view,
                                 const GameRequest& req) override {
    (void)req;
    const ResourceVector alloc{12.0, 24.0, 900.0, 500.0};
    for (ServerId server : view.server_ids()) {
      const auto& srv = view.server(server);
      for (int g = 0; g < srv.spec().num_gpus; ++g) {
        if (alloc.fits_within(srv.free_on_gpu(g))) {
          return Placement{server, g, alloc};
        }
      }
    }
    return std::nullopt;
  }
};

TEST(HotPathAlloc, SteadyStateTicksDoNotAllocate) {
  static const auto spec = steady_spec();
  PlatformConfig cfg;
  cfg.seed = 2024;
  cfg.session.spike_prob = 0.0;
  // Keep control ticks out of the measurement window: the window then
  // contains hardware ticks only.
  cfg.control_period_ms = 3600LL * 1000;
  CloudPlatform cloud(cfg, std::make_unique<PinScheduler>());
  cloud.add_server(hw::ServerSpec{});
  cloud.add_server(hw::ServerSpec{});
  for (int i = 0; i < 12; ++i) cloud.submit(&spec, 0, 100 + i);

  cloud.begin(2LL * 3600 * 1000);
  // Warm up past loading and through first-touch growth of every arena.
  cloud.advance_until(30 * 1000);
  ASSERT_EQ(cloud.running_sessions(), 12u);

  arm_alloc_counter();
  cloud.advance_until(230 * 1000);  // 200 steady-state hardware ticks
  disarm_alloc_counter();
  const std::uint64_t n = allocations_observed();
  cloud.finish();

  ASSERT_EQ(cloud.running_sessions(), 12u);
#if COCG_ALLOC_HOOK
  EXPECT_EQ(n, 0u) << "hardware_tick allocated on the steady-state path";
#else
  (void)n;
  GTEST_SKIP() << "allocation hook disabled under sanitizers";
#endif
}

/// The same guarantee with the full observability stack on: metrics
/// recording AND the stage profiler must stay off the allocator in the
/// tick loop (StageScope is two clock reads, never a heap touch).
TEST(HotPathAlloc, SteadyStateTicksDoNotAllocateWithProfilingEnabled) {
  static const auto spec = steady_spec();
  obs::reset();
  obs::set_enabled(true);
  obs::set_profiling_enabled(true);
  PlatformConfig cfg;
  cfg.seed = 2025;
  cfg.session.spike_prob = 0.0;
  cfg.control_period_ms = 3600LL * 1000;
  CloudPlatform cloud(cfg, std::make_unique<PinScheduler>());
  cloud.add_server(hw::ServerSpec{});
  cloud.add_server(hw::ServerSpec{});
  for (int i = 0; i < 12; ++i) cloud.submit(&spec, 0, 100 + i);

  cloud.begin(2LL * 3600 * 1000);
  cloud.advance_until(30 * 1000);
  ASSERT_EQ(cloud.running_sessions(), 12u);

  arm_alloc_counter();
  cloud.advance_until(230 * 1000);
  disarm_alloc_counter();
  const std::uint64_t n = allocations_observed();
  cloud.finish();

  // The profiler must actually have been measuring during the window.
  const auto prof = cloud.stage_profile();
  EXPECT_GT(prof[static_cast<std::size_t>(obs::Stage::kEventQueue)].calls,
            0u);
  EXPECT_GT(
      prof[static_cast<std::size_t>(obs::Stage::kResourceKernels)].calls,
      0u);
  obs::set_profiling_enabled(false);
  obs::set_enabled(false);
  obs::reset();

  ASSERT_EQ(cloud.running_sessions(), 12u);
#if COCG_ALLOC_HOOK
  EXPECT_EQ(n, 0u) << "profiling-enabled hardware_tick allocated on the"
                      " steady-state path";
#else
  (void)n;
  GTEST_SKIP() << "allocation hook disabled under sanitizers";
#endif
}

}  // namespace
}  // namespace cocg::platform
