// Observability integration tests at the platform layer: exact
// trace/util-log windowing drop accounting, per-class SLO attainment from
// completed runs, and the stage profiler feeding the metrics snapshot.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>

#include "game/library.h"
#include "obs/obs.h"
#include "platform/cloud_platform.h"

namespace cocg::platform {
namespace {

/// Mirror of the windowing rule shared by telemetry::Trace and the
/// platform utilization log: trim down to `cap` once the buffer exceeds
/// 1.5x cap, counting everything discarded.
std::uint64_t rule_dropped(std::uint64_t adds, std::uint64_t cap) {
  std::uint64_t size = 0, dropped = 0;
  for (std::uint64_t i = 0; i < adds; ++i) {
    ++size;
    if (size > cap + cap / 2) {
      dropped += size - cap;
      size = cap;
    }
  }
  return dropped;
}

/// One batched trim discards exactly cap/2 + 1 samples, so every valid
/// dropped count is a multiple of this.
std::uint64_t trim_batch(std::uint64_t cap) { return cap / 2 + 1; }

class GreedyScheduler final : public Scheduler {
 public:
  explicit GreedyScheduler(ResourceVector alloc = {60, 90, 4000, 4000})
      : alloc_(alloc) {}
  std::string name() const override { return "greedy"; }
  std::optional<Placement> admit(PlatformView& view,
                                 const GameRequest& req) override {
    (void)req;
    const ResourceVector alloc = alloc_;
    for (ServerId server : view.server_ids()) {
      const auto& srv = view.server(server);
      for (int g = 0; g < srv.spec().num_gpus; ++g) {
        if (alloc.fits_within(srv.free_on_gpu(g))) {
          return Placement{server, g, alloc};
        }
      }
    }
    return std::nullopt;
  }

 private:
  ResourceVector alloc_;
};

/// A single-script game whose execution stage outlives any test horizon:
/// sessions reach steady state and never finish, so their live traces can
/// be inspected mid-run via session_trace().
game::GameSpec steady_spec() {
  game::GameSpec spec;
  spec.id = GameId{701};
  spec.name = "SteadyObs";
  spec.category = game::GameCategory::kWeb;

  game::FrameClusterSpec play;
  play.id = 0;
  play.name = "play";
  play.centroid = {10, 20, 820, 450};
  play.jitter = {1, 2, 10, 5};
  spec.clusters.push_back(play);

  game::StageTypeSpec loading;
  loading.id = 0;
  loading.name = "loading";
  loading.kind = game::StageKind::kLoading;
  loading.clusters = {0};
  loading.min_dwell_ms = loading.max_dwell_ms = 5000;
  spec.stage_types.push_back(loading);

  game::StageTypeSpec exec;
  exec.id = 1;
  exec.name = "endless";
  exec.kind = game::StageKind::kExecution;
  exec.clusters = {0};
  exec.min_dwell_ms = exec.max_dwell_ms = 8L * 3600 * 1000;
  spec.stage_types.push_back(exec);

  spec.loading_stage_type = 0;
  game::ScriptSpec script;
  script.name = "steady";
  script.segments.push_back(game::ScriptSegment{1, 1, 1, 0.0});
  spec.scripts.push_back(script);
  return spec;
}

TEST(TraceWindowing, LiveSessionDropCountsFollowTheTrimRuleExactly) {
  static const auto spec = steady_spec();
  constexpr std::size_t kCap = 64;
  PlatformConfig cfg;
  cfg.seed = 11;
  cfg.trace_max_samples = kCap;
  // A small allocation so all four sessions fit on one server.
  CloudPlatform cloud(cfg, std::make_unique<GreedyScheduler>(
                               ResourceVector{12, 24, 900, 500}));
  cloud.add_server(hw::ServerSpec{});
  for (int i = 0; i < 4; ++i) cloud.submit(&spec, 0, 10 + i);

  cloud.begin(2LL * 3600 * 1000);
  cloud.advance_until(10 * 60 * 1000);  // ~600 samples per session
  const auto sids = cloud.session_ids();
  ASSERT_EQ(sids.size(), 4u);
  for (SessionId sid : sids) {
    const auto& trace = cloud.session_trace(sid);
    const std::uint64_t dropped = trace.dropped_samples();
    EXPECT_GT(dropped, 0u);
    // The windowed buffer never exceeds 1.5x its cap...
    EXPECT_LE(trace.size(), kCap + kCap / 2);
    // ...drops happen in whole trim batches...
    EXPECT_EQ(dropped % trim_batch(kCap), 0u);
    // ...and replaying the rule over the total add count reproduces the
    // observed drop count exactly.
    EXPECT_EQ(dropped, rule_dropped(trace.size() + dropped, kCap));
  }
  cloud.finish();
}

TEST(TraceWindowing, DropCountersSurfaceInMetricsSnapshot) {
  static const auto contra = game::make_contra();
  constexpr std::size_t kTraceCap = 64;
  constexpr std::size_t kUtilCap = 100;
  obs::reset();
  obs::set_enabled(true);
  PlatformConfig cfg;
  cfg.seed = 5;
  cfg.trace_max_samples = kTraceCap;
  cfg.util_log_max_points = kUtilCap;
  CloudPlatform cloud(cfg, std::make_unique<GreedyScheduler>());
  cloud.add_server(hw::ServerSpec{});
  cloud.enable_utilization_recording(true);
  cloud.add_source({&contra, 2, 4});
  cloud.run(60 * 60 * 1000);

  ASSERT_FALSE(cloud.completed_runs().empty());
  const std::uint64_t trace_dropped =
      obs::metrics().counter_value("platform.trace_samples_dropped");
  const std::uint64_t util_dropped =
      obs::metrics().counter_value("platform.util_log_points_dropped");
  // Session traces are long enough to trim (Contra runs are minutes at
  // one sample per tick), and every finished session folds its exact
  // per-trace drop count into the counter — whole batches only.
  EXPECT_GT(trace_dropped, 0u);
  EXPECT_EQ(trace_dropped % trim_batch(kTraceCap), 0u);
  // The util-log counter mirrors the platform's own ground-truth
  // accessor one for one.
  EXPECT_GT(util_dropped, 0u);
  EXPECT_EQ(util_dropped, cloud.utilization_log_dropped());
  EXPECT_EQ(util_dropped,
            rule_dropped(cloud.utilization_log().size() + util_dropped,
                         kUtilCap));
  EXPECT_LE(cloud.utilization_log().size(), kUtilCap + kUtilCap / 2);

  // Both surface in the exported snapshot with the same values.
  std::ostringstream os;
  obs::metrics().write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"platform.trace_samples_dropped\":" +
                      std::to_string(trace_dropped)),
            std::string::npos);
  EXPECT_NE(json.find("\"platform.util_log_points_dropped\":" +
                      std::to_string(util_dropped)),
            std::string::npos);
  obs::set_enabled(false);
  obs::reset();
}

TEST(PlatformSlo, DefaultClassesTrackCompletedRunsByCategory) {
  static const auto contra = game::make_contra();
  PlatformConfig cfg;
  cfg.seed = 21;
  CloudPlatform cloud(cfg, std::make_unique<GreedyScheduler>());
  cloud.add_server(hw::ServerSpec{});
  cloud.add_source({&contra, 2, 4});
  cloud.run(30 * 60 * 1000);
  ASSERT_FALSE(cloud.completed_runs().empty());

  const auto rows = cloud.slo_tracker().attainment();
  ASSERT_EQ(rows.size(), default_slo_classes().size());
  const auto cls = static_cast<std::size_t>(contra.category);
  ASSERT_LT(cls, rows.size());
  EXPECT_EQ(rows[cls].runs, cloud.completed_runs().size());
  EXPECT_GE(rows[cls].fps_attainment_pct, 0.0);
  EXPECT_LE(rows[cls].fps_attainment_pct, 100.0);
  // Untouched classes stay vacuously attained.
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i == cls) continue;
    EXPECT_EQ(rows[i].runs, 0u);
    EXPECT_DOUBLE_EQ(rows[i].fps_attainment_pct, 100.0);
  }
}

TEST(PlatformProfiler, PipelineStagesRecordAndExportToMetrics) {
  static const auto contra = game::make_contra();
  obs::reset();
  obs::set_enabled(true);
  obs::set_profiling_enabled(true);
  PlatformConfig cfg;
  cfg.seed = 31;
  CloudPlatform cloud(cfg, std::make_unique<GreedyScheduler>());
  cloud.add_server(hw::ServerSpec{});
  cloud.add_source({&contra, 2, 4});
  cloud.run(10 * 60 * 1000);

  const obs::StageProfile prof = cloud.stage_profile();
  using obs::Stage;
  auto calls = [&](Stage s) {
    return prof[static_cast<std::size_t>(s)].calls;
  };
  EXPECT_GT(calls(Stage::kEventQueue), 0u);
  EXPECT_GT(calls(Stage::kRngDraws), 0u);
  EXPECT_GT(calls(Stage::kResourceKernels), 0u);
  EXPECT_GT(calls(Stage::kContentionResolve), 0u);
  // Greedy has no predictor/distributor/regulator instrumentation.
  EXPECT_EQ(calls(Stage::kPredictorDecide), 0u);
  EXPECT_EQ(calls(Stage::kRouter), 0u);

  obs::profiler().export_counters(obs::metrics());
  EXPECT_EQ(obs::metrics().counter_value("profiler.event_queue.calls"),
            calls(Stage::kEventQueue));
  std::ostringstream os;
  obs::metrics().write_json(os);
  EXPECT_NE(os.str().find("\"profiler.resource_kernels.total_ns\""),
            std::string::npos);

  obs::set_profiling_enabled(false);
  obs::set_enabled(false);
  obs::reset();
}

TEST(PlatformProfiler, ProfilingOffLeavesStageTableZero) {
  static const auto contra = game::make_contra();
  obs::reset();
  ASSERT_FALSE(obs::profiling_enabled());
  PlatformConfig cfg;
  cfg.seed = 32;
  CloudPlatform cloud(cfg, std::make_unique<GreedyScheduler>());
  cloud.add_server(hw::ServerSpec{});
  cloud.add_source({&contra, 2, 4});
  cloud.run(5 * 60 * 1000);
  for (const auto& st : cloud.stage_profile()) {
    EXPECT_EQ(st.calls, 0u);
    EXPECT_EQ(st.total_ns, 0u);
  }
  obs::reset();
}

}  // namespace
}  // namespace cocg::platform
