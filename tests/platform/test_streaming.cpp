#include "platform/streaming.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "core/baselines.h"
#include "core/offline.h"
#include "game/library.h"
#include "platform/cloud_platform.h"

namespace cocg::platform {
namespace {

StreamingConfig no_jitter() {
  StreamingConfig cfg;
  cfg.network_jitter_ms = 0.0;
  return cfg;
}

TEST(StreamingModel, DeterministicComponentsSum) {
  StreamingModel m(no_jitter());
  Rng rng(1);
  // fps=100 → 10 ms frame time; full CPU: 6 + 1 + 10 + 5 + 4 = 26 ms.
  EXPECT_NEAR(m.latency_ms(100.0, 1.0, rng), 26.0, 1e-9);
}

TEST(StreamingModel, HigherFpsLowerLatency) {
  StreamingModel m(no_jitter());
  Rng rng(2);
  EXPECT_LT(m.latency_ms(120.0, 1.0, rng), m.latency_ms(30.0, 1.0, rng));
}

TEST(StreamingModel, CpuStarvationStretchesPipeline) {
  StreamingModel m(no_jitter());
  Rng rng(3);
  const double full = m.latency_ms(60.0, 1.0, rng);
  const double starved = m.latency_ms(60.0, 0.5, rng);
  // Input processing + encode double: +6 ms.
  EXPECT_NEAR(starved - full, 6.0, 1e-9);
}

TEST(StreamingModel, SatClampedAboveZero) {
  StreamingModel m(no_jitter());
  Rng rng(4);
  EXPECT_TRUE(std::isfinite(m.latency_ms(60.0, 0.0, rng)));
  EXPECT_TRUE(std::isfinite(m.latency_ms(60.0, -1.0, rng)));
}

TEST(StreamingModel, JitterNonNegative) {
  StreamingConfig cfg;
  cfg.network_jitter_ms = 5.0;
  StreamingModel m(cfg);
  Rng rng(5);
  const StreamingModel base(no_jitter());
  Rng rng2(5);
  const double floor = base.latency_ms(60.0, 1.0, rng2);
  for (int i = 0; i < 200; ++i) {
    EXPECT_GE(m.latency_ms(60.0, 1.0, rng), floor - 1e-9);
  }
}

TEST(StreamingModel, RequiresRenderingTick) {
  StreamingModel m(no_jitter());
  Rng rng(6);
  EXPECT_THROW(m.latency_ms(0.0, 1.0, rng), ContractError);
}

TEST(StreamingModel, ConfigValidation) {
  StreamingConfig bad;
  bad.latency_budget_ms = 0.0;
  EXPECT_THROW(StreamingModel{bad}, ContractError);
}

// --- integration with the platform ---

TEST(StreamingIntegration, CompletedRunsCarryLatency) {
  static const std::vector<game::GameSpec> suite = {game::make_contra()};
  core::OfflineConfig ocfg;
  ocfg.profiling_runs = 6;
  ocfg.corpus_runs = 10;
  auto models = core::train_suite(suite, ocfg);

  PlatformConfig pcfg;
  pcfg.seed = 7;
  pcfg.session.spike_prob = 0.0;
  CloudPlatform cloud(pcfg,
                      std::make_unique<core::VbpScheduler>(std::move(models)));
  cloud.add_server(hw::ServerSpec{});
  cloud.submit(&suite[0], 0, 1);
  cloud.run(20 * 60 * 1000);
  ASSERT_GE(cloud.completed_runs().size(), 1u);
  const auto& run = cloud.completed_runs()[0];
  // 60-FPS Contra at full supply: ~6+1+16.7+5+4 ≈ 33 ms (+jitter).
  EXPECT_GT(run.mean_latency_ms, 25.0);
  EXPECT_LT(run.mean_latency_ms, 60.0);
  EXPECT_GE(run.max_latency_ms, run.mean_latency_ms);
  EXPECT_EQ(run.latency_violation_ms, 0);  // far under the 100 ms budget
}

TEST(StreamingIntegration, TightBudgetFlagsViolations) {
  static const std::vector<game::GameSpec> suite = {game::make_contra()};
  core::OfflineConfig ocfg;
  ocfg.profiling_runs = 6;
  ocfg.corpus_runs = 10;
  auto models = core::train_suite(suite, ocfg);

  PlatformConfig pcfg;
  pcfg.seed = 8;
  pcfg.session.spike_prob = 0.0;
  pcfg.streaming.latency_budget_ms = 20.0;  // impossible for 60 FPS
  CloudPlatform cloud(pcfg,
                      std::make_unique<core::VbpScheduler>(std::move(models)));
  cloud.add_server(hw::ServerSpec{});
  cloud.submit(&suite[0], 0, 1);
  cloud.run(20 * 60 * 1000);
  ASSERT_GE(cloud.completed_runs().size(), 1u);
  EXPECT_GT(cloud.completed_runs()[0].latency_violation_ms, 0);
}

}  // namespace
}  // namespace cocg::platform
