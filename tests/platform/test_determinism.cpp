// Determinism regression tests for the zero-allocation hot path.
//
// The dense SessionTable, scratch arenas and batched RNG draws must not
// change a single bit of observable output: the same seed has to produce
// byte-identical reports and event logs whether the simulation runs in one
// shot, in split-phase chunks, or sharded across fleet worker threads.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>

#include "fleet/fleet.h"
#include "game/library.h"
#include "obs/obs.h"
#include "platform/cloud_platform.h"

namespace cocg::platform {
namespace {

class GreedyScheduler final : public Scheduler {
 public:
  explicit GreedyScheduler(ResourceVector alloc = {60, 90, 4000, 4000})
      : alloc_(alloc) {}

  std::string name() const override { return "greedy"; }

  std::optional<Placement> admit(PlatformView& view,
                                 const GameRequest& req) override {
    (void)req;
    for (ServerId server : view.server_ids()) {
      const auto& srv = view.server(server);
      for (int g = 0; g < srv.spec().num_gpus; ++g) {
        if (alloc_.fits_within(srv.free_on_gpu(g))) {
          return Placement{server, g, alloc_};
        }
      }
    }
    return std::nullopt;
  }

 private:
  ResourceVector alloc_;
};

PlatformConfig scenario_config(std::uint64_t seed) {
  PlatformConfig cfg;
  cfg.seed = seed;
  return cfg;  // spikes left on: exercises the session RNG path too
}

/// Canonical byte-exact dump of everything an experiment reports: every
/// CompletedRun field (doubles in hexfloat), per-game stats, throughput,
/// plus the obs metrics JSON and decision-event JSONL.
std::string run_report(const CloudPlatform& cloud) {
  std::ostringstream os;
  os << std::hexfloat;
  for (const auto& r : cloud.completed_runs()) {
    os << r.sid.value << ',' << r.game << ',' << r.script_idx << ','
       << r.start << ',' << r.end << ',' << r.duration_ms << ',' << r.wait_ms
       << ',' << r.qos_violation_ms << ',' << r.loading_extension_ms << ','
       << r.mean_fps_ratio << ',' << r.mean_fps << ',' << r.mean_latency_ms
       << ',' << r.max_latency_ms << ',' << r.latency_violation_ms << '\n';
  }
  for (const auto& [game, gs] : cloud.game_stats()) {
    os << game << ':' << gs.completed << ',' << gs.total_duration_s << ','
       << gs.mean_fps_ratio << ',' << gs.qos_violation_s << ','
       << gs.mean_wait_s << '\n';
  }
  os << "T=" << cloud.throughput() << '\n';
  obs::metrics().write_json(os);
  obs::events().write_jsonl(os);
  return os.str();
}

/// Run the standard scenario: two servers, two closed-loop sources, 30
/// simulated minutes. `chunk_ms` == 0 runs in one shot via run(); otherwise
/// the split-phase API advances in chunks of that size.
std::string run_scenario(std::uint64_t seed, DurationMs chunk_ms) {
  static const auto contra = game::make_contra();
  static const auto dota = game::make_dota2();
  obs::reset();
  obs::set_enabled(true);
  CloudPlatform cloud(scenario_config(seed),
                      std::make_unique<GreedyScheduler>());
  cloud.add_server(hw::ServerSpec{});
  cloud.add_server(hw::ServerSpec{});
  cloud.add_source({&contra, 2, 4});
  cloud.add_source({&dota, 1, 4});
  const DurationMs horizon = 30 * 60 * 1000;
  if (chunk_ms == 0) {
    cloud.run(horizon);
  } else {
    cloud.begin(horizon);
    TimeMs t = 0;
    while (t < cloud.horizon()) {
      t = std::min<TimeMs>(t + chunk_ms, cloud.horizon());
      cloud.advance_until(t);
    }
    cloud.finish();
  }
  std::string out = run_report(cloud);
  obs::set_enabled(false);
  return out;
}

TEST(Determinism, SameSeedSameBytes) {
  const std::string a = run_scenario(1234, 0);
  const std::string b = run_scenario(1234, 0);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(Determinism, DifferentSeedDiverges) {
  EXPECT_NE(run_scenario(1234, 0), run_scenario(4321, 0));
}

TEST(Determinism, SplitPhaseChunksMatchOneShot) {
  const std::string one_shot = run_scenario(77, 0);
  // Chunk sizes that land both on and off tick boundaries.
  EXPECT_EQ(one_shot, run_scenario(77, 5000));
  EXPECT_EQ(one_shot, run_scenario(77, 1700));
}

std::string run_fleet(int threads) {
  static const auto contra = game::make_contra();
  fleet::FleetConfig cfg;
  cfg.shards = 3;
  cfg.threads = threads;
  cfg.seed = 99;
  auto f = std::make_unique<fleet::Fleet>(
      cfg, [](int) { return std::make_unique<GreedyScheduler>(); });
  for (int s = 0; s < 6; ++s) f->add_server(hw::ServerSpec{});
  platform::OpenLoopSource src;
  src.spec = &contra;
  src.arrivals_per_hour = 240.0;
  src.player_pool = 16;
  f->add_global_source(src);
  f->run(20 * 60 * 1000);
  return fleet::report_json(f->report()) + f->merged_events_jsonl();
}

TEST(Determinism, FleetSplitPhaseIdenticalAcrossThreads) {
  const std::string one = run_fleet(1);
  const std::string two = run_fleet(2);
  ASSERT_FALSE(one.empty());
  EXPECT_EQ(one, two);
}

/// Same property with the stage profiler on: under the deterministic
/// clock, stage costs are a pure function of each profiler's scope
/// sequence, so the report (which embeds stage_costs) must stay
/// byte-identical for any thread count.
std::string run_fleet_profiled(int threads) {
  obs::reset();
  obs::set_enabled(true);
  obs::set_profiling_enabled(true);
  obs::set_profiler_clock_mode(obs::ProfilerClockMode::kDeterministic);
  std::string out = run_fleet(threads);
  obs::set_profiler_clock_mode(obs::ProfilerClockMode::kWall);
  obs::set_profiling_enabled(false);
  obs::set_enabled(false);
  obs::reset();
  return out;
}

TEST(Determinism, FleetProfiledReportIdenticalAcrossThreads) {
  const std::string one = run_fleet_profiled(1);
  const std::string two = run_fleet_profiled(2);
  ASSERT_FALSE(one.empty());
  EXPECT_EQ(one, two);
  // The profiled report actually carries non-zero stage costs.
  EXPECT_EQ(one.find("{\"stage\":\"event_queue\",\"calls\":0"),
            std::string::npos);
}

}  // namespace
}  // namespace cocg::platform
