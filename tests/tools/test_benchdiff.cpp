#include "benchdiff.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace cocg::tools {
namespace {

namespace fs = std::filesystem;

obs::JsonValue parse(const std::string& text) {
  obs::JsonValue v;
  EXPECT_TRUE(obs::json_parse(text, v)) << text;
  return v;
}

const char* kBaseline =
    "{\"experiment\":\"tick\",\"ticks_per_sec_s1\":1000.0,\"rows\":["
    "{\"servers\":1,\"obs\":\"off\",\"ticks_per_sec\":1000.0,\"wall_s\":1.0},"
    "{\"servers\":8,\"obs\":\"on\",\"ticks_per_sec\":500.0,\"wall_s\":2.0}]}";

std::string candidate_with(double s1, double s8) {
  std::ostringstream os;
  os << "{\"experiment\":\"tick\",\"ticks_per_sec_s1\":" << s1
     << ",\"rows\":[{\"servers\":1,\"obs\":\"off\",\"ticks_per_sec\":" << s1
     << ",\"wall_s\":1.0},{\"servers\":8,\"obs\":\"on\",\"ticks_per_sec\":"
     << s8 << ",\"wall_s\":2.0}]}";
  return os.str();
}

/// Unique scratch dir per test, removed on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(fs::temp_directory_path() /
              ("cocg_benchdiff_" + tag + "_" +
               std::to_string(::getpid()))) {
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string file(const std::string& name, const std::string& content) {
    const fs::path p = path_ / name;
    std::ofstream os(p);
    os << content;
    return p.string();
  }
  const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

TEST(BenchDiff, IdenticalFilesPass) {
  const auto base = parse(kBaseline);
  const BenchDiff d = diff_bench(base, base);
  EXPECT_FALSE(d.any_regression);
  EXPECT_TRUE(d.warnings.empty());
  for (const auto& m : d.metrics) EXPECT_DOUBLE_EQ(m.ratio, 1.0);
}

TEST(BenchDiff, GatedDropBeyondThresholdIsRegression) {
  const auto base = parse(kBaseline);
  const auto cand = parse(candidate_with(1000.0, 400.0));  // s8 -20%
  const BenchDiff d = diff_bench(base, cand);
  EXPECT_TRUE(d.any_regression);
  bool found = false;
  for (const auto& m : d.metrics) {
    if (m.where == "rows[1]" && m.key == "ticks_per_sec") {
      found = true;
      EXPECT_TRUE(m.gated);
      EXPECT_TRUE(m.regression);
      EXPECT_DOUBLE_EQ(m.ratio, 0.8);
    }
  }
  EXPECT_TRUE(found);
}

TEST(BenchDiff, DropWithinThresholdPasses) {
  const auto base = parse(kBaseline);
  const auto cand = parse(candidate_with(950.0, 480.0));  // -5% / -4%
  EXPECT_FALSE(diff_bench(base, cand).any_regression);
}

TEST(BenchDiff, UngatedMetricsNeverFail) {
  const auto base = parse(kBaseline);
  // wall_s doubles — not a gated key, informational only.
  const auto cand = parse(
      "{\"experiment\":\"tick\",\"ticks_per_sec_s1\":1000.0,\"rows\":["
      "{\"servers\":1,\"obs\":\"off\",\"ticks_per_sec\":1000.0,"
      "\"wall_s\":9.0},{\"servers\":8,\"obs\":\"on\","
      "\"ticks_per_sec\":500.0,\"wall_s\":9.0}]}");
  EXPECT_FALSE(diff_bench(base, cand).any_regression);
}

TEST(BenchDiff, CustomThresholdWidensTheGate) {
  const auto base = parse(kBaseline);
  const auto cand = parse(candidate_with(1000.0, 400.0));
  BenchDiffOptions opts;
  opts.threshold = 0.25;
  EXPECT_FALSE(diff_bench(base, cand, opts).any_regression);
}

TEST(BenchDiff, MismatchedRowLabelsSkippedWithWarning) {
  const auto base = parse(kBaseline);
  // Row 1 swapped obs label: must not be compared as the same config.
  const auto cand = parse(
      "{\"experiment\":\"tick\",\"ticks_per_sec_s1\":1000.0,\"rows\":["
      "{\"servers\":1,\"obs\":\"off\",\"ticks_per_sec\":1000.0,"
      "\"wall_s\":1.0},{\"servers\":8,\"obs\":\"off\","
      "\"ticks_per_sec\":1.0,\"wall_s\":2.0}]}");
  const BenchDiff d = diff_bench(base, cand);
  EXPECT_FALSE(d.any_regression);
  ASSERT_EQ(d.warnings.size(), 1u);
  EXPECT_NE(d.warnings[0].find("rows[1]"), std::string::npos);
}

TEST(BenchDiff, RowCountMismatchFallsBackToLabelMatching) {
  const auto base = parse(kBaseline);
  // Candidate gained a third configuration; positional pairing would
  // compare apples to oranges. Rows are matched by their string labels
  // instead, and the s8 regression must still be caught.
  const auto cand = parse(
      "{\"experiment\":\"tick\",\"ticks_per_sec_s1\":1000.0,\"rows\":["
      "{\"servers\":16,\"obs\":\"new\",\"ticks_per_sec\":9.0,\"wall_s\":9.0},"
      "{\"servers\":8,\"obs\":\"on\",\"ticks_per_sec\":400.0,\"wall_s\":2.0},"
      "{\"servers\":1,\"obs\":\"off\",\"ticks_per_sec\":1000.0,"
      "\"wall_s\":1.0}]}");
  const BenchDiff d = diff_bench(base, cand);
  EXPECT_TRUE(d.any_regression);
  bool found = false;
  for (const auto& m : d.metrics) {
    if (m.key == "ticks_per_sec" && m.baseline == 500.0) {
      found = true;
      EXPECT_TRUE(m.regression);
      EXPECT_DOUBLE_EQ(m.ratio, 0.8);
    }
  }
  EXPECT_TRUE(found);

  auto has_warning = [&](const std::string& needle) {
    for (const auto& w : d.warnings) {
      if (w.find(needle) != std::string::npos) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_warning("matching rows by labels"));
  EXPECT_TRUE(has_warning("matched 2 row(s) by labels"));
  // The candidate's new configuration is reported, not silently dropped.
  EXPECT_TRUE(has_warning("obs=new"));
  EXPECT_TRUE(has_warning("has no baseline row"));
}

TEST(BenchDiff, LabelFallbackReportsVanishedBaselineRows) {
  const auto base = parse(kBaseline);
  // Candidate lost the s8 row entirely.
  const auto cand = parse(
      "{\"experiment\":\"tick\",\"ticks_per_sec_s1\":1000.0,\"rows\":["
      "{\"servers\":1,\"obs\":\"off\",\"ticks_per_sec\":1000.0,"
      "\"wall_s\":1.0}]}");
  const BenchDiff d = diff_bench(base, cand);
  EXPECT_FALSE(d.any_regression);  // nothing comparable regressed
  bool missing_reported = false;
  for (const auto& w : d.warnings) {
    if (w.find("rows[1]") != std::string::npos &&
        w.find("has no candidate row") != std::string::npos) {
      missing_reported = true;
    }
  }
  EXPECT_TRUE(missing_reported);
}

TEST(BenchDiff, ResolveBaselinePicksMatchingExperimentInDir) {
  TempDir dir("resolve");
  dir.file("BENCH_other.json", "{\"experiment\":\"other\",\"rows\":[]}");
  const std::string tick = dir.file("BENCH_tick.json", kBaseline);
  EXPECT_EQ(resolve_baseline(dir.path().string(), "tick"), tick);
  EXPECT_EQ(resolve_baseline(dir.path().string(), "absent"), "");
  // A plain file resolves to itself regardless of experiment.
  EXPECT_EQ(resolve_baseline(tick, "whatever"), tick);
}

TEST(BenchDiffCli, ExitCodesCoverPassRegressionAndUsage) {
  TempDir dir("cli");
  const std::string base = dir.file("BENCH_base.json", kBaseline);
  const std::string good =
      dir.file("BENCH_good.json", candidate_with(990.0, 495.0));
  const std::string bad =
      dir.file("BENCH_bad.json", candidate_with(1000.0, 400.0));

  std::ostringstream out, err;
  EXPECT_EQ(run_benchdiff_cli({good, base}, out, err), 0);
  EXPECT_NE(out.str().find("PASS"), std::string::npos);

  out.str("");
  EXPECT_EQ(run_benchdiff_cli({bad, base}, out, err), 1);
  EXPECT_NE(out.str().find("FAIL"), std::string::npos);
  EXPECT_NE(out.str().find("REGRESSION"), std::string::npos);

  // Wider threshold turns the injected regression back into a pass.
  out.str("");
  EXPECT_EQ(run_benchdiff_cli({bad, base, "--threshold", "0.25"}, out, err),
            0);

  // Usage / parse errors exit 2.
  EXPECT_EQ(run_benchdiff_cli({}, out, err), 2);
  EXPECT_EQ(run_benchdiff_cli({"/no/such/file.json", base}, out, err), 2);
  EXPECT_EQ(run_benchdiff_cli({bad, base, "--threshold"}, out, err), 2);
  EXPECT_EQ(run_benchdiff_cli({bad, base, "--bogus"}, out, err), 2);
}

TEST(BenchDiffCli, DirectoryBaselineResolvedByExperiment) {
  // Candidates live outside the baseline dir so they can't resolve to
  // themselves.
  TempDir base_dir("clidir_base");
  TempDir cand_dir("clidir_cand");
  base_dir.file("BENCH_other.json", "{\"experiment\":\"other\",\"rows\":[]}");
  base_dir.file("BENCH_tick.json", kBaseline);
  const std::string bad =
      cand_dir.file("cand.json", candidate_with(1000.0, 400.0));
  std::ostringstream out, err;
  EXPECT_EQ(run_benchdiff_cli({bad, base_dir.path().string()}, out, err), 1);
  // Missing baseline for the experiment is a usage error, not a pass.
  const std::string orphan = cand_dir.file(
      "orphan.json", "{\"experiment\":\"nobaseline\",\"rows\":[]}");
  EXPECT_EQ(run_benchdiff_cli({orphan, base_dir.path().string()}, out, err),
            2);
}

TEST(BenchDiffCli, MissingBaselineHasDistinctMessageAndExit2) {
  // A baseline path that does not exist must fail with its own message —
  // "no baseline to gate against" — not a generic parse error, so CI
  // failures are immediately attributable to setup rather than perf.
  TempDir dir("missing_base");
  const std::string cand =
      dir.file("BENCH_cand.json", candidate_with(1000.0, 500.0));
  std::ostringstream out, err;
  EXPECT_EQ(run_benchdiff_cli(
                {cand, (dir.path() / "no_such_dir").string()}, out, err),
            2);
  EXPECT_NE(err.str().find("not found or unreadable"), std::string::npos);
  EXPECT_NE(err.str().find("no baseline to gate against"),
            std::string::npos);

  // An unreadable (malformed) baseline file names the baseline too.
  const std::string garbage = dir.file("BENCH_garbage.json", "not json {");
  err.str("");
  EXPECT_EQ(run_benchdiff_cli({cand, garbage}, out, err), 2);
  EXPECT_NE(err.str().find("baseline"), std::string::npos);
}

TEST(BenchDiffCli, GateFlagSelectsWhichKeysAreGated) {
  TempDir dir("gate");
  const std::string base = dir.file("BENCH_base.json", kBaseline);
  const std::string bad =
      dir.file("BENCH_bad.json", candidate_with(1000.0, 400.0));
  std::ostringstream out, err;
  // Gating only wall_s ignores the ticks_per_sec drop.
  EXPECT_EQ(run_benchdiff_cli({bad, base, "--gate", "wall_s"}, out, err), 0);
}

}  // namespace
}  // namespace cocg::tools
