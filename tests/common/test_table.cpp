#include "common/table.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/check.h"

namespace cocg {
namespace {

TEST(TablePrinter, RendersHeadersAndRows) {
  TablePrinter t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TablePrinter, ColumnsAligned) {
  TablePrinter t({"a", "b"});
  t.add_row({"looooong", "x"});
  const std::string out = t.to_string();
  // Every rendered line has the same width.
  std::istringstream is(out);
  std::string line;
  std::size_t width = 0;
  while (std::getline(is, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(TablePrinter, RejectsMismatchedRow) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractError);
}

TEST(TablePrinter, RejectsEmptyHeader) {
  EXPECT_THROW(TablePrinter({}), ContractError);
}

TEST(TablePrinter, FmtPrecision) {
  EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::fmt(3.14159, 0), "3");
  EXPECT_EQ(TablePrinter::fmt_pct(50.0, 1), "50.0%");
}

TEST(CsvEscape, PassThrough) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvEscape, QuotesSpecials) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriter, WritesRows) {
  const std::string path = "test_csv_writer_tmp.csv";
  {
    CsvWriter w(path);
    w.write_row({"h1", "h2"});
    w.write_row({"a,comma", "2"});
  }
  std::ifstream in(path);
  std::string l1, l2;
  std::getline(in, l1);
  std::getline(in, l2);
  EXPECT_EQ(l1, "h1,h2");
  EXPECT_EQ(l2, "\"a,comma\",2");
  std::remove(path.c_str());
}

TEST(CsvWriter, ThrowsOnBadPath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace cocg
