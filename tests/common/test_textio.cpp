// LineReader — the diagnostic substrate every text artifact format
// (profiles, models, traffic traces) builds on. The contract under test:
// malformed, truncated or garbage input always fails with the artifact
// name, a 1-based line number, and the field being parsed.
#include <gtest/gtest.h>

#include <functional>
#include <sstream>
#include <string>

#include "common/textio.h"

namespace cocg {
namespace {

std::string error_of(const std::function<void(LineReader&)>& body,
                     const std::string& text,
                     const std::string& what = "artifact") {
  std::istringstream is(text);
  LineReader r(is, what);
  try {
    body(r);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return "";
}

TEST(LineReader, ReadsLinesAndCountsFromOne) {
  std::istringstream is("alpha\nbeta\n");
  LineReader r(is, "artifact");
  EXPECT_EQ(r.line_no(), 0);
  EXPECT_EQ(r.line("first"), "alpha");
  EXPECT_EQ(r.line_no(), 1);
  EXPECT_EQ(r.line("second"), "beta");
  EXPECT_EQ(r.line_no(), 2);
}

TEST(LineReader, TruncatedStreamNamesTheMissingKey) {
  const std::string err = error_of(
      [](LineReader& r) {
        r.line("header");
        r.line("payload");
      },
      "header-only\n");
  EXPECT_EQ(err, "artifact line 2: truncated before 'payload'");
}

TEST(LineReader, EmptyStreamFailsOnLineOne) {
  const std::string err =
      error_of([](LineReader& r) { r.line("magic"); }, "");
  EXPECT_EQ(err, "artifact line 1: truncated before 'magic'");
}

TEST(LineReader, ExpectMismatchQuotesBothSides) {
  const std::string err = error_of(
      [](LineReader& r) { r.expect("servers "); }, "garbage here\n");
  EXPECT_EQ(err, "artifact line 1: expected 'servers ', got 'garbage here'");
}

TEST(LineReader, ExpectReturnsTheRemainder) {
  std::istringstream is("servers 4 extra\n");
  LineReader r(is, "artifact");
  auto ls = r.expect("servers ");
  EXPECT_EQ(r.field<int>(ls, "count"), 4);
  EXPECT_EQ(r.field<std::string>(ls, "tail"), "extra");
}

TEST(LineReader, BadFieldNamesFieldAndLine) {
  const std::string err = error_of(
      [](LineReader& r) {
        r.line("skip");
        auto ls = r.expect("rate ");
        r.field<double>(ls, "rate value");
      },
      "skip\nrate not-a-number\n");
  EXPECT_EQ(err, "artifact line 2: bad or missing field 'rate value'");
}

TEST(LineReader, MissingFieldFailsLikeGarbage) {
  const std::string err = error_of(
      [](LineReader& r) {
        auto ls = r.expect("pair ");
        r.field<int>(ls, "first");
        r.field<int>(ls, "second");
      },
      "pair 7\n");
  EXPECT_EQ(err, "artifact line 1: bad or missing field 'second'");
}

TEST(LineReader, ArtifactNamePrefixesEveryDiagnostic) {
  const std::string err = error_of(
      [](LineReader& r) { r.line("anything"); }, "", "trace");
  EXPECT_EQ(err, "trace line 1: truncated before 'anything'");
}

TEST(LineReader, FailThrowsWithCurrentLineNumber) {
  std::istringstream is("a\nb\n");
  LineReader r(is, "artifact");
  r.line("a");
  r.line("b");
  try {
    r.fail("custom complaint");
    FAIL() << "fail() returned";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "artifact line 2: custom complaint");
  }
}

TEST(FullPrecision, DoublesRoundTripExactly) {
  const double values[] = {1.0 / 3.0, 0.1, 6.0221409e23, -2.2250738585072014e-308};
  for (const double v : values) {
    std::ostringstream os;
    {
      FullPrecision guard(os);
      os << v;
    }
    std::istringstream is(os.str());
    double back = 0.0;
    ASSERT_TRUE(static_cast<bool>(is >> back)) << os.str();
    EXPECT_EQ(back, v) << os.str();
  }
}

TEST(FullPrecision, RestoresStreamPrecisionOnExit) {
  std::ostringstream os;
  const auto before = os.precision();
  {
    FullPrecision guard(os);
    EXPECT_NE(os.precision(), before);
  }
  EXPECT_EQ(os.precision(), before);
}

}  // namespace
}  // namespace cocg
