#include "common/log.h"

#include <gtest/gtest.h>

namespace cocg {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelRoundTrip) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST(Log, LevelNames) {
  EXPECT_STREQ(log_level_name(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(log_level_name(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(log_level_name(LogLevel::kWarn), "WARN");
  EXPECT_STREQ(log_level_name(LogLevel::kError), "ERROR");
  EXPECT_STREQ(log_level_name(LogLevel::kOff), "OFF");
}

TEST(Log, MacroSuppressedBelowThreshold) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return "payload";
  };
  COCG_DEBUG(expensive());
  COCG_ERROR(expensive());
  // Below threshold the stream expression must not be evaluated at all.
  EXPECT_EQ(evaluations, 0);
}

TEST(Log, MacroEvaluatesAtOrAboveThreshold) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  testing::internal::CaptureStderr();
  COCG_ERROR("boom " << 42);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[ERROR] boom 42"), std::string::npos);
}

TEST(Log, DirectEmission) {
  testing::internal::CaptureStderr();
  log_message(LogLevel::kInfo, "direct");
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[INFO] direct"), std::string::npos);
}

class LogClockGuard {
 public:
  ~LogClockGuard() { set_log_clock(nullptr); }
};

TEST(Log, ClockPrefixesSimTime) {
  LogClockGuard guard;
  TimeMs now = 125000;
  set_log_clock([&now] { return now; });
  testing::internal::CaptureStderr();
  log_message(LogLevel::kWarn, "tick");
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[WARN] [t=125.000s] tick"), std::string::npos);
}

TEST(Log, ClockTracksTheBoundSource) {
  LogClockGuard guard;
  TimeMs now = 500;
  set_log_clock([&now] { return now; });
  testing::internal::CaptureStderr();
  log_message(LogLevel::kError, "a");
  now = 1750;
  log_message(LogLevel::kError, "b");
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[t=0.500s] a"), std::string::npos);
  EXPECT_NE(err.find("[t=1.750s] b"), std::string::npos);
}

TEST(Log, NullClockRemovesPrefix) {
  LogClockGuard guard;
  set_log_clock([] { return TimeMs{1}; });
  set_log_clock(nullptr);
  testing::internal::CaptureStderr();
  log_message(LogLevel::kInfo, "plain");
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[INFO] plain"), std::string::npos);
  EXPECT_EQ(err.find("[t="), std::string::npos);
}

}  // namespace
}  // namespace cocg
