#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace cocg {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_THROW(s.min(), ContractError);
  EXPECT_THROW(s.max(), ContractError);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.sum(), 5.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of the classic sequence = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(1);
  RunningStats whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    whole.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(a.min(), whole.min());
  EXPECT_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);  // copies
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.mean(), 1.0);
}

TEST(MeanOf, Basics) {
  EXPECT_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
}

TEST(StddevOf, Basics) {
  EXPECT_EQ(stddev_of({}), 0.0);
  EXPECT_EQ(stddev_of({5.0}), 0.0);
  EXPECT_NEAR(stddev_of({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}),
              std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Percentile, Interpolation) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 1.75);
}

TEST(Percentile, UnsortedInput) {
  EXPECT_DOUBLE_EQ(percentile({4.0, 1.0, 3.0, 2.0}, 100.0), 4.0);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 33.0), 7.0);
}

TEST(Percentile, Preconditions) {
  EXPECT_THROW(percentile({}, 50.0), ContractError);
  EXPECT_THROW(percentile({1.0}, -1.0), ContractError);
  EXPECT_THROW(percentile({1.0}, 101.0), ContractError);
}

TEST(SseAboutMean, ZeroForConstant) {
  EXPECT_DOUBLE_EQ(sse_about_mean({3.0, 3.0, 3.0}), 0.0);
}

TEST(SseAboutMean, KnownValue) {
  // mean = 2; deviations -1, 0, 1 → SSE = 2.
  EXPECT_DOUBLE_EQ(sse_about_mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Ema, FirstValuePassesThrough) {
  Ema e(0.5);
  EXPECT_FALSE(e.initialized());
  EXPECT_DOUBLE_EQ(e.update(10.0), 10.0);
  EXPECT_TRUE(e.initialized());
}

TEST(Ema, Smooths) {
  Ema e(0.5);
  e.update(0.0);
  EXPECT_DOUBLE_EQ(e.update(10.0), 5.0);
  EXPECT_DOUBLE_EQ(e.update(10.0), 7.5);
}

TEST(Ema, AlphaOneTracksInput) {
  Ema e(1.0);
  e.update(1.0);
  EXPECT_DOUBLE_EQ(e.update(42.0), 42.0);
}

TEST(Ema, RejectsBadAlpha) {
  EXPECT_THROW(Ema(0.0), ContractError);
  EXPECT_THROW(Ema(1.5), ContractError);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.5);    // bin 9
  h.add(-5.0);   // clamps to bin 0
  h.add(100.0);  // clamps to bin 9
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_high(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_low(4), 8.0);
}

TEST(Histogram, Preconditions) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), ContractError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), ContractError);
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW(h.bin_count(2), ContractError);
}

// Property: percentile is monotone in p for any sample.
class PercentileProp : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PercentileProp, MonotoneInP) {
  Rng rng(GetParam());
  std::vector<double> xs;
  for (int i = 0; i < 50; ++i) xs.push_back(rng.uniform(-100, 100));
  double prev = percentile(xs, 0.0);
  for (double p = 5.0; p <= 100.0; p += 5.0) {
    const double cur = percentile(xs, p);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileProp,
                         ::testing::Values(1ULL, 2ULL, 3ULL, 4ULL));

}  // namespace
}  // namespace cocg
