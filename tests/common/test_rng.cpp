#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <numeric>
#include <set>
#include <vector>

namespace cocg {
namespace {

TEST(SplitMix64, KnownFirstValueNonZero) {
  SplitMix64 sm(0);
  // splitmix64(0) first output is a fixed, nonzero constant.
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  // All four values should appear.
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(10);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, UniformIntRejectsBadRange) {
  Rng rng(11);
  EXPECT_THROW(rng.uniform_int(5, 4), ContractError);
}

TEST(Rng, UniformIntApproxUniform) {
  Rng rng(12);
  std::array<int, 10> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<std::size_t>(rng.uniform_int(0, 9))];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 10 * 0.1);  // within 10% of expectation
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, NormalShifted) {
  Rng rng(14);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, NormalRejectsNegativeStddev) {
  Rng rng(15);
  EXPECT_THROW(rng.normal(0.0, -1.0), ContractError);
}

TEST(Rng, ExponentialMean) {
  Rng rng(16);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(4.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceFrequency) {
  Rng rng(18);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(19);
  std::array<int, 3> counts{};
  const int n = 90000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.weighted_index({1.0, 2.0, 6.0})];
  }
  EXPECT_NEAR(counts[0], n / 9.0, n * 0.01);
  EXPECT_NEAR(counts[1], 2 * n / 9.0, n * 0.01);
  EXPECT_NEAR(counts[2], 6 * n / 9.0, n * 0.015);
}

TEST(Rng, WeightedIndexZeroWeightNeverPicked) {
  Rng rng(20);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_NE(rng.weighted_index({1.0, 0.0, 1.0}), 1u);
  }
}

TEST(Rng, WeightedIndexRejectsBadInput) {
  Rng rng(21);
  EXPECT_THROW(rng.weighted_index({}), ContractError);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), ContractError);
  EXPECT_THROW(rng.weighted_index({1.0, -1.0}), ContractError);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(22);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto copy = v;
  rng.shuffle(v.begin(), v.end());
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(Rng, ShuffleChangesOrder) {
  Rng rng(23);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto orig = v;
  rng.shuffle(v.begin(), v.end());
  EXPECT_NE(v, orig);
}

TEST(Rng, ForkIndependentStreams) {
  Rng parent(24);
  Rng child = parent.fork();
  // Child is deterministic given the parent's state.
  Rng parent2(24);
  Rng child2 = parent2.fork();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(child.next_u64(), child2.next_u64());
}

// Property: every distribution stays in range across seeds.
class RngSeedProp : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedProp, BoundsHoldForAllSeeds) {
  Rng rng(GetParam());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(), 1.0);
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedProp,
                         ::testing::Values(0ULL, 1ULL, 42ULL,
                                           0xdeadbeefULL,
                                           ~0ULL));

}  // namespace
}  // namespace cocg
