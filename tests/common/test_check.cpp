#include "common/check.h"

#include <gtest/gtest.h>

namespace cocg {
namespace {

TEST(Check, PassingConditionsAreSilent) {
  EXPECT_NO_THROW(COCG_EXPECTS(1 + 1 == 2));
  EXPECT_NO_THROW(COCG_ENSURES(true));
  EXPECT_NO_THROW(COCG_CHECK(42));
}

TEST(Check, FailureThrowsContractError) {
  EXPECT_THROW(COCG_EXPECTS(false), ContractError);
  EXPECT_THROW(COCG_ENSURES(1 == 2), ContractError);
  EXPECT_THROW(COCG_CHECK(false), ContractError);
}

TEST(Check, MessageCarriesContext) {
  try {
    COCG_EXPECTS_MSG(false, "the answer must be 42");
    FAIL() << "should have thrown";
  } catch (const ContractError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("Precondition"), std::string::npos);
    EXPECT_NE(what.find("the answer must be 42"), std::string::npos);
    EXPECT_NE(what.find("test_check.cpp"), std::string::npos);
  }
}

TEST(Check, ExpressionTextIncluded) {
  try {
    COCG_CHECK(2 + 2 == 5);
    FAIL() << "should have thrown";
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("2 + 2 == 5"), std::string::npos);
  }
}

TEST(Check, ContractErrorIsLogicError) {
  // Callers may catch std::logic_error generically.
  EXPECT_THROW(COCG_CHECK(false), std::logic_error);
}

TEST(Check, ConditionEvaluatedOnce) {
  int calls = 0;
  auto f = [&] {
    ++calls;
    return true;
  };
  COCG_CHECK(f());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace cocg
