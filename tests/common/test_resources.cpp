#include "common/resources.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/check.h"

namespace cocg {
namespace {

TEST(ResourceVector, DefaultIsZero) {
  ResourceVector r;
  for (std::size_t i = 0; i < kNumDims; ++i) EXPECT_EQ(r.at(i), 0.0);
}

TEST(ResourceVector, NamedAccessors) {
  ResourceVector r{10.0, 20.0, 300.0, 400.0};
  EXPECT_EQ(r.cpu(), 10.0);
  EXPECT_EQ(r.gpu(), 20.0);
  EXPECT_EQ(r.gpu_mem(), 300.0);
  EXPECT_EQ(r.ram(), 400.0);
}

TEST(ResourceVector, DimIndexing) {
  ResourceVector r;
  r[Dim::kGpuPct] = 55.0;
  EXPECT_EQ(r.gpu(), 55.0);
  EXPECT_EQ(r[Dim::kGpuPct], 55.0);
}

TEST(ResourceVector, Arithmetic) {
  ResourceVector a{1, 2, 3, 4}, b{10, 20, 30, 40};
  const ResourceVector sum = a + b;
  EXPECT_EQ(sum, (ResourceVector{11, 22, 33, 44}));
  const ResourceVector diff = b - a;
  EXPECT_EQ(diff, (ResourceVector{9, 18, 27, 36}));
  const ResourceVector scaled = a * 2.0;
  EXPECT_EQ(scaled, (ResourceVector{2, 4, 6, 8}));
  EXPECT_EQ(2.0 * a, scaled);
}

TEST(ResourceVector, CompoundOps) {
  ResourceVector a{1, 1, 1, 1};
  a += ResourceVector{1, 2, 3, 4};
  EXPECT_EQ(a, (ResourceVector{2, 3, 4, 5}));
  a -= ResourceVector{1, 1, 1, 1};
  EXPECT_EQ(a, (ResourceVector{1, 2, 3, 4}));
  a *= 3.0;
  EXPECT_EQ(a, (ResourceVector{3, 6, 9, 12}));
}

TEST(ResourceVector, FitsWithin) {
  ResourceVector cap{100, 100, 8192, 8192};
  EXPECT_TRUE((ResourceVector{100, 100, 8192, 8192}).fits_within(cap));
  EXPECT_TRUE((ResourceVector{0, 0, 0, 0}).fits_within(cap));
  EXPECT_FALSE((ResourceVector{100.01, 0, 0, 0}).fits_within(cap));
  EXPECT_FALSE((ResourceVector{0, 0, 0, 9000}).fits_within(cap));
}

TEST(ResourceVector, NonNegative) {
  EXPECT_TRUE((ResourceVector{0, 0, 0, 0}).non_negative());
  EXPECT_TRUE((ResourceVector{1, 2, 3, 4}).non_negative());
  EXPECT_FALSE((ResourceVector{-0.001, 2, 3, 4}).non_negative());
}

TEST(ResourceVector, MaxMin) {
  ResourceVector a{1, 20, 3, 40}, b{10, 2, 30, 4};
  EXPECT_EQ(ResourceVector::max(a, b), (ResourceVector{10, 20, 30, 40}));
  EXPECT_EQ(ResourceVector::min(a, b), (ResourceVector{1, 2, 3, 4}));
}

TEST(ResourceVector, ClampedTo) {
  ResourceVector hi{10, 10, 10, 10};
  ResourceVector v{-5, 5, 15, 10};
  EXPECT_EQ(v.clamped_to(hi), (ResourceVector{0, 5, 10, 10}));
}

TEST(ResourceVector, DistanceNormalized) {
  const ResourceVector scale{100, 100, 100, 100};
  ResourceVector a{0, 0, 0, 0}, b{100, 0, 0, 0};
  EXPECT_DOUBLE_EQ(a.distance(b, scale), 1.0);
  EXPECT_DOUBLE_EQ(a.distance_sq(b, scale), 1.0);
  ResourceVector c{100, 100, 0, 0};
  EXPECT_DOUBLE_EQ(a.distance_sq(c, scale), 2.0);
}

TEST(ResourceVector, DistanceRequiresPositiveScale) {
  ResourceVector a, b;
  EXPECT_THROW(a.distance(b, ResourceVector{0, 1, 1, 1}), ContractError);
}

TEST(ResourceVector, SatisfactionFullSupply) {
  ResourceVector demand{50, 60, 1000, 2000};
  EXPECT_DOUBLE_EQ(demand.satisfaction_ratio(demand), 1.0);
  // Oversupply does not exceed 1.
  EXPECT_DOUBLE_EQ(demand.satisfaction_ratio(demand * 2.0), 1.0);
}

TEST(ResourceVector, SatisfactionBottleneckDim) {
  ResourceVector demand{50, 60, 1000, 2000};
  ResourceVector supplied{50, 30, 1000, 2000};  // GPU squeezed to half
  EXPECT_DOUBLE_EQ(demand.satisfaction_ratio(supplied), 0.5);
}

TEST(ResourceVector, SatisfactionIgnoresZeroDemandDims) {
  ResourceVector demand{50, 0, 0, 0};
  ResourceVector supplied{25, 0, 0, 0};
  EXPECT_DOUBLE_EQ(demand.satisfaction_ratio(supplied), 0.5);
}

TEST(ResourceVector, SatisfactionZeroDemandIsOne) {
  ResourceVector none;
  EXPECT_DOUBLE_EQ(none.satisfaction_ratio(ResourceVector{}), 1.0);
}

TEST(ResourceVector, SatisfactionClampsAtZero) {
  ResourceVector demand{50, 0, 0, 0};
  ResourceVector supplied{-1, 0, 0, 0};
  EXPECT_DOUBLE_EQ(demand.satisfaction_ratio(supplied), 0.0);
}

TEST(ResourceVector, StreamOutput) {
  std::ostringstream os;
  os << ResourceVector{1, 2, 3, 4};
  EXPECT_NE(os.str().find("cpu=1"), std::string::npos);
  EXPECT_NE(os.str().find("gpu=2"), std::string::npos);
}

TEST(ResourceVector, DefaultNormScaleMatchesTestbed) {
  const ResourceVector s = default_norm_scale();
  EXPECT_EQ(s.cpu(), 100.0);
  EXPECT_EQ(s.gpu(), 100.0);
  EXPECT_EQ(s.gpu_mem(), 8192.0);  // GTX-2080-class VRAM
  EXPECT_EQ(s.ram(), 8192.0);      // the paper's 8 GB testbed
}

// Property sweep: a + b - b == a across magnitudes.
class ResourceArithmeticProp : public ::testing::TestWithParam<double> {};

TEST_P(ResourceArithmeticProp, AddSubRoundTrip) {
  const double m = GetParam();
  ResourceVector a{m, m * 2, m * 3, m * 4};
  ResourceVector b{m * 0.5, m * 0.25, m, m * 2};
  const ResourceVector round = a + b - b;
  for (std::size_t i = 0; i < kNumDims; ++i) {
    EXPECT_NEAR(round.at(i), a.at(i), 1e-9 * (1.0 + std::abs(a.at(i))));
  }
}

TEST_P(ResourceArithmeticProp, MaxDominates) {
  const double m = GetParam();
  ResourceVector a{m, 0, m, 0}, b{0, m, 0, m};
  const ResourceVector mx = ResourceVector::max(a, b);
  EXPECT_TRUE(a.fits_within(mx));
  EXPECT_TRUE(b.fits_within(mx));
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, ResourceArithmeticProp,
                         ::testing::Values(0.0, 0.001, 1.0, 42.5, 1e6));

}  // namespace
}  // namespace cocg
