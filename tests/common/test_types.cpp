#include "common/types.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace cocg {
namespace {

TEST(TimeHelpers, Conversions) {
  EXPECT_DOUBLE_EQ(ms_to_sec(1500), 1.5);
  EXPECT_EQ(sec_to_ms(2.5), 2500);
  EXPECT_EQ(kFrameSliceMs, 5000);  // the paper's 5-second slice
}

TEST(Id, DefaultIsInvalid) {
  SessionId id;
  EXPECT_FALSE(id.valid());
}

TEST(Id, ExplicitIsValid) {
  SessionId id{7};
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value, 7u);
}

TEST(Id, Comparisons) {
  SessionId a{1}, b{2}, c{1};
  EXPECT_EQ(a, c);
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
}

TEST(Id, DistinctTagTypesDoNotMix) {
  // Compile-time property: SessionId and ServerId are different types.
  static_assert(!std::is_same_v<SessionId, ServerId>);
  static_assert(!std::is_same_v<GameId, RequestId>);
}

TEST(Id, Hashable) {
  std::unordered_set<SessionId> set;
  set.insert(SessionId{1});
  set.insert(SessionId{2});
  set.insert(SessionId{1});
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.count(SessionId{2}));
}

TEST(Id, InvalidSentinelDistinctFromZero) {
  EXPECT_TRUE(SessionId{0}.valid());
  EXPECT_NE(SessionId{0}, SessionId{});
}

}  // namespace
}  // namespace cocg
