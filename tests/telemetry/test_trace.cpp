#include "telemetry/trace.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/check.h"

namespace cocg::telemetry {
namespace {

MetricSample sample(TimeMs t, double cpu, double gpu, int stage = 0,
                    bool loading = false, int cluster = 0) {
  MetricSample s;
  s.t = t;
  s.usage = ResourceVector{cpu, gpu, 100, 100};
  s.fps = 60.0;
  s.true_stage_type = stage;
  s.true_loading = loading;
  s.true_cluster = cluster;
  return s;
}

TEST(Trace, AppendAndAccess) {
  Trace t("x");
  EXPECT_TRUE(t.empty());
  t.add(sample(0, 10, 20));
  t.add(sample(1000, 11, 21));
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0].t, 0);
  EXPECT_EQ(t.start_time(), 0);
  EXPECT_EQ(t.end_time(), 1000);
  EXPECT_EQ(t.label(), "x");
}

TEST(Trace, RejectsTimeRegression) {
  Trace t;
  t.add(sample(1000, 1, 1));
  EXPECT_THROW(t.add(sample(500, 1, 1)), ContractError);
  EXPECT_NO_THROW(t.add(sample(1000, 1, 1)));  // equal is allowed
}

TEST(Trace, EmptyAccessorsThrow) {
  Trace t;
  EXPECT_THROW(t.start_time(), ContractError);
  EXPECT_THROW(t.end_time(), ContractError);
}

TEST(Trace, FrameSlicesAggregateMeans) {
  Trace t;
  // 5 one-second samples → one 5 s slice with the mean usage.
  for (int i = 0; i < 5; ++i) {
    t.add(sample(i * 1000, 10.0 * (i + 1), 50));
  }
  const auto slices = t.to_frame_slices(5000);
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_DOUBLE_EQ(slices[0].mean_usage.cpu(), 30.0);  // mean of 10..50
  EXPECT_DOUBLE_EQ(slices[0].mean_usage.gpu(), 50.0);
  EXPECT_EQ(slices[0].start, 0);
  EXPECT_EQ(slices[0].end, 5000);
}

TEST(Trace, FrameSlicesPartialTailKept) {
  Trace t;
  for (int i = 0; i < 7; ++i) t.add(sample(i * 1000, 10, 10));
  const auto slices = t.to_frame_slices(5000);
  ASSERT_EQ(slices.size(), 2u);
}

TEST(Trace, FrameSlicesMajorityGroundTruth) {
  Trace t;
  t.add(sample(0, 1, 1, /*stage=*/2, /*loading=*/false, /*cluster=*/1));
  t.add(sample(1000, 1, 1, 2, false, 1));
  t.add(sample(2000, 1, 1, 2, false, 1));
  t.add(sample(3000, 1, 1, 0, true, 0));
  t.add(sample(4000, 1, 1, 0, true, 0));
  const auto slices = t.to_frame_slices(5000);
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_EQ(slices[0].true_stage_type, 2);
  EXPECT_EQ(slices[0].true_cluster, 1);
  EXPECT_FALSE(slices[0].true_loading);  // 2 of 5 < majority
}

TEST(Trace, FrameSlicesAlignToFirstSample) {
  Trace t;
  // Starting at t=2000: slices are [2000,7000), [7000,12000) ...
  for (int i = 0; i < 6; ++i) t.add(sample(2000 + i * 1000, 10, 10));
  const auto slices = t.to_frame_slices(5000);
  ASSERT_EQ(slices.size(), 2u);
  EXPECT_EQ(slices[0].start, 2000);
  EXPECT_EQ(slices[1].start, 7000);
}

TEST(Trace, FrameSlicesRejectBadSlice) {
  Trace t;
  t.add(sample(0, 1, 1));
  EXPECT_THROW(t.to_frame_slices(0), ContractError);
}

TEST(Trace, CsvRoundTrip) {
  Trace t("roundtrip");
  t.add(sample(0, 12.5, 34.5, 3, true, 2));
  t.add(sample(1000, 13.5, 35.5, 4, false, 1));
  const std::string path = "test_trace_roundtrip_tmp.csv";
  t.save_csv(path);
  const Trace back = Trace::load_csv(path);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].t, 0);
  EXPECT_NEAR(back[0].usage.cpu(), 12.5, 1e-9);
  EXPECT_NEAR(back[1].usage.gpu(), 35.5, 1e-9);
  EXPECT_EQ(back[0].true_stage_type, 3);
  EXPECT_TRUE(back[0].true_loading);
  EXPECT_FALSE(back[1].true_loading);
  EXPECT_EQ(back[1].true_cluster, 1);
  std::remove(path.c_str());
}

TEST(Trace, LoadCsvMissingFileThrows) {
  EXPECT_THROW(Trace::load_csv("no_such_file_xyz.csv"), std::runtime_error);
}

// Property: slicing any N-sample 1 Hz trace yields ceil(N/5) slices.
class SliceCountProp : public ::testing::TestWithParam<int> {};

TEST_P(SliceCountProp, CeilDivision) {
  const int n = GetParam();
  Trace t;
  for (int i = 0; i < n; ++i) t.add(sample(i * 1000, 1, 1));
  EXPECT_EQ(t.to_frame_slices(5000).size(),
            static_cast<std::size_t>((n + 4) / 5));
}

INSTANTIATE_TEST_SUITE_P(Sizes, SliceCountProp,
                         ::testing::Values(1, 4, 5, 6, 23, 100));

}  // namespace
}  // namespace cocg::telemetry
