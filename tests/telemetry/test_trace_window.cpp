// Trace growth controls: reserve + the max_samples window.
#include <gtest/gtest.h>

#include "telemetry/trace.h"

namespace cocg::telemetry {
namespace {

MetricSample sample_at(TimeMs t) {
  MetricSample s;
  s.t = t;
  s.usage = {1.0, 2.0, 3.0, 4.0};
  s.fps = 60.0;
  return s;
}

TEST(TraceWindow, ReserveAvoidsReallocation) {
  Trace tr("t");
  tr.reserve(1000);
  const std::size_t cap = tr.capacity();
  for (TimeMs t = 0; t < 1000; ++t) tr.add(sample_at(t));
  EXPECT_EQ(tr.capacity(), cap);
  EXPECT_EQ(tr.size(), 1000u);
}

TEST(TraceWindow, UnboundedByDefault) {
  Trace tr;
  for (TimeMs t = 0; t < 5000; ++t) tr.add(sample_at(t));
  EXPECT_EQ(tr.size(), 5000u);
  EXPECT_EQ(tr.dropped_samples(), 0u);
}

TEST(TraceWindow, WindowKeepsNewestSamples) {
  Trace tr;
  tr.set_max_samples(100);
  for (TimeMs t = 0; t < 1000; ++t) tr.add(sample_at(t));
  // Trimming is block-wise: never below the cap, never above 1.5x it.
  EXPECT_GE(tr.size(), 100u);
  EXPECT_LE(tr.size(), 150u);
  EXPECT_EQ(tr.dropped_samples() + tr.size(), 1000u);
  // The retained suffix is the newest run, contiguous and in order.
  EXPECT_EQ(tr.end_time(), 999);
  EXPECT_EQ(tr.start_time(), 1000 - static_cast<TimeMs>(tr.size()));
}

TEST(TraceWindow, SetMaxSamplesTrimsExistingBuffer) {
  Trace tr;
  for (TimeMs t = 0; t < 400; ++t) tr.add(sample_at(t));
  tr.set_max_samples(50);
  EXPECT_EQ(tr.size(), 50u);
  EXPECT_EQ(tr.dropped_samples(), 350u);
  EXPECT_EQ(tr.start_time(), 350);
  EXPECT_EQ(tr.end_time(), 399);
}

}  // namespace
}  // namespace cocg::telemetry
