#include "telemetry/window.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace cocg::telemetry {
namespace {

MetricSample sample(TimeMs t, double cpu, double fps = 60.0) {
  MetricSample s;
  s.t = t;
  s.usage = ResourceVector{cpu, 0, 0, 0};
  s.fps = fps;
  return s;
}

TEST(SlidingWindow, StartsEmpty) {
  SlidingWindow w(3);
  EXPECT_TRUE(w.empty());
  EXPECT_FALSE(w.full());
  EXPECT_EQ(w.capacity(), 3u);
  EXPECT_THROW(w.latest(), ContractError);
  EXPECT_THROW(w.mean_usage(), ContractError);
}

TEST(SlidingWindow, RejectsZeroCapacity) {
  EXPECT_THROW(SlidingWindow(0), ContractError);
}

TEST(SlidingWindow, EvictsOldest) {
  SlidingWindow w(3);
  for (int i = 1; i <= 5; ++i) w.add(sample(i, i));
  EXPECT_TRUE(w.full());
  EXPECT_EQ(w.size(), 3u);
  EXPECT_EQ(w.oldest().t, 3);
  EXPECT_EQ(w.latest().t, 5);
  EXPECT_EQ(w.at(0).t, 3);
  EXPECT_EQ(w.at(2).t, 5);
  EXPECT_THROW(w.at(3), ContractError);
}

TEST(SlidingWindow, MeanUsage) {
  SlidingWindow w(4);
  w.add(sample(0, 10));
  w.add(sample(1, 20));
  w.add(sample(2, 30));
  EXPECT_DOUBLE_EQ(w.mean_usage().cpu(), 20.0);
}

TEST(SlidingWindow, MeanUsageTail) {
  SlidingWindow w(5);
  for (int i = 1; i <= 5; ++i) w.add(sample(i, 10.0 * i));
  EXPECT_DOUBLE_EQ(w.mean_usage_tail(2).cpu(), 45.0);  // mean(40,50)
  EXPECT_DOUBLE_EQ(w.mean_usage_tail(100).cpu(), 30.0);  // clamped to all
}

TEST(SlidingWindow, MeanFps) {
  SlidingWindow w(3);
  w.add(sample(0, 1, 30));
  w.add(sample(1, 1, 60));
  EXPECT_DOUBLE_EQ(w.mean_fps(), 45.0);
}

TEST(SlidingWindow, ClearResets) {
  SlidingWindow w(2);
  w.add(sample(0, 1));
  w.clear();
  EXPECT_TRUE(w.empty());
}

TEST(SlidingWindow, CapacityOneTracksLatest) {
  SlidingWindow w(1);
  w.add(sample(1, 10));
  w.add(sample(2, 20));
  EXPECT_EQ(w.size(), 1u);
  EXPECT_DOUBLE_EQ(w.mean_usage().cpu(), 20.0);
}

}  // namespace
}  // namespace cocg::telemetry
