// Fleet-level quiescence identity: with the resolve cache and macro-tick
// fast-forward on, fleet reports and merged event logs must stay
// byte-identical to the always-resolve per-tick oracle — at 1/2/8 worker
// threads, under both runners, and through capture/replay. The quiescence
// counters themselves ride only in the extended report and the health
// heartbeat, never in the canonical encoding these comparisons use.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "fleet/fleet.h"
#include "game/library.h"
#include "obs/obs.h"
#include "traffic/trace.h"

namespace cocg::fleet {
namespace {

class GreedyScheduler final : public platform::Scheduler {
 public:
  std::string name() const override { return "greedy"; }
  std::optional<platform::Placement> admit(
      platform::PlatformView& view, const platform::GameRequest&) override {
    for (ServerId server : view.server_ids()) {
      const auto& srv = view.server(server);
      for (int g = 0; g < srv.spec().num_gpus; ++g) {
        if (alloc_.fits_within(srv.free_on_gpu(g))) {
          return platform::Placement{server, g, alloc_};
        }
      }
    }
    return std::nullopt;
  }

 private:
  ResourceVector alloc_{40, 45, 2000, 2000};
};

SchedulerFactory greedy_factory() {
  return [](int) { return std::make_unique<GreedyScheduler>(); };
}

/// Jitter-free finite game so fleet shards actually reach quiescent
/// windows between arrivals and stage boundaries.
const game::GameSpec& det_game() {
  static const game::GameSpec g = [] {
    game::GameSpec spec;
    spec.id = GameId{904};
    spec.name = "DetFleet";
    spec.category = game::GameCategory::kWeb;

    game::FrameClusterSpec load;
    load.id = 0;
    load.name = "load";
    load.centroid = ResourceVector{30.0, 5.0, 600.0, 400.0};
    load.fps_base = 0.0;
    game::FrameClusterSpec play;
    play.id = 1;
    play.name = "play";
    play.centroid = ResourceVector{12.0, 24.0, 800.0, 440.0};
    play.fps_base = 60.0;
    spec.clusters = {load, play};

    game::StageTypeSpec loading;
    loading.id = 0;
    loading.name = "loading";
    loading.kind = game::StageKind::kLoading;
    loading.clusters = {0};
    loading.min_dwell_ms = 6000;
    loading.max_dwell_ms = 6000;
    game::StageTypeSpec level;
    level.id = 1;
    level.name = "level";
    level.kind = game::StageKind::kExecution;
    level.clusters = {1};
    level.min_dwell_ms = 120000;
    level.max_dwell_ms = 120000;
    spec.stage_types = {loading, level};
    spec.loading_stage_type = 0;

    game::ScriptSpec script;
    script.name = "level";
    script.segments.push_back(game::ScriptSegment{1, 1, 1, 0.0});
    spec.scripts = {script};
    return spec;
  }();
  return g;
}

FleetConfig det_config(int shards, int threads, RunnerKind runner,
                       bool quiescence) {
  FleetConfig cfg;
  cfg.shards = shards;
  cfg.threads = threads;
  cfg.runner = runner;
  cfg.seed = 515;
  cfg.platform.measurement_noise_rel = 0.0;
  cfg.platform.streaming.network_jitter_ms = 0.0;
  cfg.platform.session.spike_prob = 0.0;
  cfg.platform.incremental_resolve = quiescence;
  cfg.platform.macro_ticks = quiescence;
  return cfg;
}

constexpr DurationMs kRunMs = 20 * 60 * 1000;

std::unique_ptr<Fleet> make_fleet(const FleetConfig& cfg) {
  auto f = std::make_unique<Fleet>(cfg, greedy_factory());
  for (int i = 0; i < 2 * cfg.shards; ++i) f->add_server(hw::ServerSpec{});
  f->add_global_source({&det_game(), 90.0, 8});
  return f;
}

struct RunResult {
  std::string report;  ///< canonical 2-arg encoding (no quiescence object)
  std::string events;
  platform::QuiescenceStats quiescence;
};

RunResult run_fleet(const FleetConfig& cfg) {
  auto f = make_fleet(cfg);
  f->run(kRunMs);
  const FleetReport rep = f->report();
  return {report_json(rep), f->merged_events_jsonl(), rep.quiescence};
}

TEST(FleetQuiescence, ReportIdenticalToOracleAcrossThreadsAndRunners) {
  const RunResult oracle =
      run_fleet(det_config(3, 1, RunnerKind::kLockstep, false));
  EXPECT_EQ(oracle.quiescence.resolve_cache_hits, 0u);
  EXPECT_EQ(oracle.quiescence.ticks_skipped, 0u);

  for (RunnerKind runner : {RunnerKind::kLockstep, RunnerKind::kSteal}) {
    for (int threads : {1, 2, 8}) {
      const RunResult fast =
          run_fleet(det_config(3, threads, runner, true));
      EXPECT_EQ(fast.report, oracle.report)
          << runner_kind_name(runner) << " threads=" << threads;
      EXPECT_EQ(fast.events, oracle.events)
          << runner_kind_name(runner) << " threads=" << threads;
      // The engine engaged for real on every shard aggregate.
      EXPECT_GT(fast.quiescence.resolve_cache_hits, 0u);
      EXPECT_GT(fast.quiescence.ticks_skipped, 0u);
      EXPECT_GT(fast.quiescence.fast_forward_windows, 0u);
    }
  }
}

TEST(FleetQuiescence, CapturedRunReplaysIdenticallyOnOracle) {
  // Capture under the quiescent engine, replay the identical arrival
  // stream (recorded routing) on the per-tick oracle: same report.
  auto fast = make_fleet(det_config(2, 2, RunnerKind::kLockstep, true));
  traffic::TraceRecorder recorder;
  fast->enable_capture(&recorder);
  fast->run(kRunMs);
  const std::string fast_report = report_json(fast->report());
  ASSERT_FALSE(recorder.trace().events.empty());
  EXPECT_GT(fast->report().quiescence.ticks_skipped, 0u);

  Fleet oracle(det_config(2, 1, RunnerKind::kLockstep, false),
               greedy_factory());
  for (int i = 0; i < 4; ++i) oracle.add_server(hw::ServerSpec{});
  oracle.add_trace_arrivals(recorder.trace(), {&det_game()},
                            /*use_recorded_routing=*/true);
  oracle.run(kRunMs);
  EXPECT_EQ(report_json(oracle.report()), fast_report);
}

TEST(FleetQuiescence, ExtendedReportAndHealthCarryCounters) {
  std::ostringstream health;
  auto f = make_fleet(det_config(2, 1, RunnerKind::kLockstep, true));
  f->enable_health_stream(&health, 5 * 60 * 1000);
  f->run(kRunMs);
  const FleetReport rep = f->report();
  EXPECT_GT(rep.quiescence.ticks_skipped, 0u);

  // Canonical encoding stays quiescence-free (oracle comparability)...
  const std::string canonical = report_json(rep);
  EXPECT_EQ(canonical.find("quiescence"), std::string::npos);
  // ...the extended operator-facing encoding carries the counters...
  std::ostringstream ext;
  write_report_json(rep, ext, f->executor_stats());
  EXPECT_NE(ext.str().find("\"quiescence\":{\"ticks_skipped\":"),
            std::string::npos)
      << ext.str();
  // ...and so does the health heartbeat.
  EXPECT_NE(health.str().find("\"quiescence\":{"), std::string::npos)
      << health.str();

  // An oracle run keeps the legacy health schema byte-compatible: no
  // quiescence object at all.
  std::ostringstream oracle_health;
  auto o = make_fleet(det_config(2, 1, RunnerKind::kLockstep, false));
  o->enable_health_stream(&oracle_health, 5 * 60 * 1000);
  o->run(kRunMs);
  EXPECT_EQ(oracle_health.str().find("quiescence"), std::string::npos);
}

}  // namespace
}  // namespace cocg::fleet
