// Fleet-level observability: merged SLO attainment and stage costs in the
// report (struct + canonical JSON), profiler counters in merged metrics,
// and the health snapshot stream.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "fleet/fleet.h"
#include "game/library.h"
#include "obs/json.h"
#include "obs/obs.h"

namespace cocg::fleet {
namespace {

class GreedyScheduler final : public platform::Scheduler {
 public:
  std::string name() const override { return "greedy"; }
  std::optional<platform::Placement> admit(
      platform::PlatformView& view,
      const platform::GameRequest& req) override {
    (void)req;
    const ResourceVector alloc{60, 90, 4000, 4000};
    for (ServerId server : view.server_ids()) {
      const auto& srv = view.server(server);
      for (int g = 0; g < srv.spec().num_gpus; ++g) {
        if (alloc.fits_within(srv.free_on_gpu(g))) {
          return platform::Placement{server, g, alloc};
        }
      }
    }
    return std::nullopt;
  }
};

std::unique_ptr<Fleet> make_fleet(int shards, int threads,
                                  std::uint64_t seed = 7) {
  static const auto contra = game::make_contra();
  FleetConfig cfg;
  cfg.shards = shards;
  cfg.threads = threads;
  cfg.seed = seed;
  auto f = std::make_unique<Fleet>(
      cfg, [](int) { return std::make_unique<GreedyScheduler>(); });
  for (int s = 0; s < 2 * shards; ++s) f->add_server(hw::ServerSpec{});
  platform::OpenLoopSource src;
  src.spec = &contra;
  src.arrivals_per_hour = 240.0;
  src.player_pool = 16;
  f->add_global_source(src);
  return f;
}

TEST(FleetObs, ReportCarriesMergedSloAttainment) {
  auto f = make_fleet(2, 1);
  f->run(30 * 60 * 1000);
  const FleetReport rep = f->report();
  ASSERT_GT(rep.completed, 0u);
  ASSERT_EQ(rep.slo.size(), platform::default_slo_classes().size());
  // Every completed run lands in exactly one class, and the merged rows
  // equal the sum of the shard trackers.
  std::uint64_t slo_runs = 0;
  for (const auto& row : rep.slo) slo_runs += row.runs;
  EXPECT_EQ(slo_runs, rep.completed);
  std::uint64_t shard_runs = 0;
  for (int i = 0; i < f->num_shards(); ++i) {
    for (const auto& row : f->shard(i).slo_tracker().attainment()) {
      shard_runs += row.runs;
    }
  }
  EXPECT_EQ(shard_runs, slo_runs);
}

TEST(FleetObs, ReportJsonCarriesSloAndStageCostSections) {
  auto f = make_fleet(2, 1);
  f->run(20 * 60 * 1000);
  const std::string json = report_json(f->report());
  EXPECT_NE(json.find("\"slo\":[{\"class\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"stage_costs\":[{\"stage\":\"rng_draws\""),
            std::string::npos)
      << json;
  // Profiling was off: the schema is stable, the costs are zero.
  EXPECT_NE(json.find("{\"stage\":\"router\",\"calls\":0,\"total_ns\":0}"),
            std::string::npos)
      << json;
}

TEST(FleetObs, ProfiledRunMergesCoordinatorAndShardStages) {
  obs::reset();
  obs::set_enabled(true);
  obs::set_profiling_enabled(true);
  auto f = make_fleet(2, 2);
  f->run(20 * 60 * 1000);
  const obs::StageProfile prof = f->merged_stage_profile();
  using obs::Stage;
  auto calls = [&](Stage s) {
    return prof[static_cast<std::size_t>(s)].calls;
  };
  // Coordinator-side stages: one router decision per arrival, one barrier
  // per epoch.
  EXPECT_EQ(calls(Stage::kRouter), f->arrivals_generated());
  EXPECT_GT(calls(Stage::kShardBarrier), 0u);
  // Shard-side stages flow in through the per-shard domain profilers.
  EXPECT_GT(calls(Stage::kEventQueue), 0u);
  EXPECT_GT(calls(Stage::kResourceKernels), 0u);

  // The same merged table rides the report and the merged metrics.
  const FleetReport rep = f->report();
  EXPECT_EQ(rep.stage_costs[static_cast<std::size_t>(Stage::kRouter)].calls,
            f->arrivals_generated());
  obs::MetricsRegistry merged;
  f->merge_metrics(merged);
  EXPECT_EQ(merged.counter_value("profiler.router.calls"),
            f->arrivals_generated());
  obs::set_profiling_enabled(false);
  obs::set_enabled(false);
  obs::reset();
}

TEST(FleetObs, HealthStreamEmitsParseableSnapshots) {
  auto f = make_fleet(3, 2);
  std::ostringstream health;
  // Period 0: one snapshot per epoch barrier.
  f->enable_health_stream(&health, 0);
  const DurationMs horizon = 10 * 60 * 1000;
  f->run(horizon);

  const DurationMs epoch = f->config().platform.control_period_ms;
  const std::size_t expected_lines =
      static_cast<std::size_t>((horizon + epoch - 1) / epoch);
  std::istringstream is(health.str());
  std::string line;
  std::size_t lines = 0;
  TimeMs last_t = -1;
  while (std::getline(is, line)) {
    ++lines;
    obs::JsonValue doc;
    ASSERT_TRUE(obs::json_parse(line, doc)) << line;
    const auto t = static_cast<TimeMs>(doc.get_number("t_ms"));
    EXPECT_GT(t, last_t);
    last_t = t;
    const obs::JsonValue* shards = doc.find("shards");
    ASSERT_NE(shards, nullptr);
    ASSERT_EQ(shards->array.size(), 3u);
    const obs::JsonValue* slo = doc.find("slo");
    ASSERT_NE(slo, nullptr);
    EXPECT_EQ(slo->array.size(), platform::default_slo_classes().size());
    const obs::JsonValue* stages = doc.find("stage_costs");
    ASSERT_NE(stages, nullptr);
    EXPECT_EQ(stages->array.size(), obs::kNumStages);
  }
  EXPECT_EQ(lines, expected_lines);
  EXPECT_EQ(last_t, horizon);
}

TEST(FleetObs, HealthStreamHonorsPeriod) {
  auto f = make_fleet(2, 1);
  std::ostringstream health;
  f->enable_health_stream(&health, 60 * 1000);  // one line per sim-minute
  f->run(10 * 60 * 1000);
  std::istringstream is(health.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(is, line)) ++lines;
  EXPECT_EQ(lines, 10u);
}

}  // namespace
}  // namespace cocg::fleet
