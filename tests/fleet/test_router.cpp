#include "fleet/router.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

namespace cocg::fleet {
namespace {

std::vector<ShardLoad> uniform_loads(int n, std::size_t views = 4) {
  std::vector<ShardLoad> loads(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    loads[static_cast<std::size_t>(i)].shard = i;
    loads[static_cast<std::size_t>(i)].gpu_views = views;
  }
  return loads;
}

TEST(RouterPolicyNames, RoundTripAndAliases) {
  for (auto p : {RouterPolicy::kRoundRobin, RouterPolicy::kLeastLoaded,
                 RouterPolicy::kPowerOfTwo}) {
    const auto parsed = parse_router_policy(router_policy_name(p));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_EQ(parse_router_policy("rr"), RouterPolicy::kRoundRobin);
  EXPECT_EQ(parse_router_policy("ll"), RouterPolicy::kLeastLoaded);
  EXPECT_EQ(parse_router_policy("p2c"), RouterPolicy::kPowerOfTwo);
  EXPECT_FALSE(parse_router_policy("bogus").has_value());
}

TEST(Router, RoundRobinCycles) {
  Router r(RouterPolicy::kRoundRobin, 1);
  auto loads = uniform_loads(3);
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(r.route(loads), i % 3);
  }
}

TEST(Router, LeastLoadedPicksFewestPerView) {
  Router r(RouterPolicy::kLeastLoaded, 1);
  auto loads = uniform_loads(3);
  loads[0].running = 8;
  loads[1].running = 2;
  loads[2].running = 5;
  EXPECT_EQ(r.route(loads), 1);
}

TEST(Router, LeastLoadedNormalizesByGpuViews) {
  Router r(RouterPolicy::kLeastLoaded, 1);
  // Shard 0 has more sessions but far more views: 10/16 < 4/2.
  auto loads = uniform_loads(2);
  loads[0].gpu_views = 16;
  loads[0].running = 10;
  loads[1].gpu_views = 2;
  loads[1].running = 4;
  EXPECT_EQ(r.route(loads), 0);
}

TEST(Router, LeastLoadedTieBreaksOnUtilization) {
  Router r(RouterPolicy::kLeastLoaded, 1);
  auto loads = uniform_loads(2);
  loads[0].mean_utilization = 0.9;
  loads[1].mean_utilization = 0.1;
  EXPECT_EQ(r.route(loads), 1);
}

TEST(Router, RouteSpreadsWithinEpoch) {
  // The snapshot is only refreshed at epoch barriers; route() accounts for
  // its own decisions so a burst does not herd onto the snapshot minimum.
  Router r(RouterPolicy::kLeastLoaded, 1);
  auto loads = uniform_loads(4, 1);
  std::map<int, int> picks;
  for (int i = 0; i < 8; ++i) ++picks[r.route(loads)];
  ASSERT_EQ(picks.size(), 4u);
  for (const auto& [shard, n] : picks) EXPECT_EQ(n, 2) << shard;
}

TEST(Router, PowerOfTwoPrefersCheaperOfSampledPair) {
  // With 2 shards the sampled pair is always {0, 1}; the pick must be the
  // lower forward cost (plus this request's own cost contribution).
  Router r(RouterPolicy::kPowerOfTwo, 7);
  auto loads = uniform_loads(2, 1000000);  // huge views: route() cost ~0
  loads[0].forward_cost = 5.0;
  loads[1].forward_cost = 1.0;
  for (int i = 0; i < 16; ++i) EXPECT_EQ(r.route(loads), 1);
  loads[0].forward_cost = 0.5;
  for (int i = 0; i < 16; ++i) EXPECT_EQ(r.route(loads), 0);
}

TEST(Router, PowerOfTwoIsSeedDeterministic) {
  auto run = [](std::uint64_t seed) {
    Router r(RouterPolicy::kPowerOfTwo, seed);
    auto loads = uniform_loads(8);
    std::vector<int> picks;
    for (int i = 0; i < 64; ++i) picks.push_back(r.route(loads));
    return picks;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(RouterPolicyNames, RegionAffinityTokens) {
  EXPECT_EQ(parse_router_policy("region_affinity"),
            RouterPolicy::kRegionAffinity);
  EXPECT_EQ(parse_router_policy("region"), RouterPolicy::kRegionAffinity);
  EXPECT_EQ(parse_router_policy("ra"), RouterPolicy::kRegionAffinity);
  EXPECT_STREQ(router_policy_name(RouterPolicy::kRegionAffinity),
               "region_affinity");
}

TEST(Router, RegionAffinityPinsToHomeShard) {
  Router r(RouterPolicy::kRegionAffinity, 1);
  auto loads = uniform_loads(4, 1000000);  // huge views: route() cost ~0
  // home = region % shards; stays home while costs are level.
  EXPECT_EQ(r.route(loads, 1), 1);
  EXPECT_EQ(r.route(loads, 2), 2);
  EXPECT_EQ(r.route(loads, 3), 3);
  EXPECT_EQ(r.route(loads, 5), 1);  // wraps
  EXPECT_EQ(r.route(loads, 2), 2);  // repeat arrivals keep their home
}

TEST(Router, RegionAffinitySpillsFromHotHome) {
  Router r(RouterPolicy::kRegionAffinity, 1);
  auto loads = uniform_loads(4, 1000000);
  loads[0].forward_cost = 0.9;
  loads[1].forward_cost = 0.8;
  loads[2].forward_cost = 1.5;  // home of region 2
  loads[3].forward_cost = 0.2;  // cheapest
  // 1.5 > 0.2 + 1.0: affinity yields to the hot spot, spill to cheapest.
  EXPECT_EQ(r.route(loads, 2), 3);
  // Exactly at the margin (cost == cheapest + 1.0) affinity wins.
  loads[2].forward_cost = 1.2;
  EXPECT_EQ(r.route(loads, 2), 2);
}

TEST(Router, RegionAffinityBalancesTheGlobalRegion) {
  Router r(RouterPolicy::kRegionAffinity, 1);
  auto loads = uniform_loads(3);
  loads[0].running = 8;
  loads[1].running = 2;
  loads[2].running = 5;
  // Region 0 ("global") has no home: falls back to least-loaded.
  EXPECT_EQ(r.route(loads, 0), 1);
}

TEST(Router, RegionlessRouteOverloadIsGlobal) {
  // route(loads) must behave exactly like route(loads, 0).
  auto loads_a = uniform_loads(3);
  auto loads_b = uniform_loads(3);
  Router a(RouterPolicy::kRegionAffinity, 1);
  Router b(RouterPolicy::kRegionAffinity, 1);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(a.route(loads_a), b.route(loads_b, 0));
  }
}

TEST(Router, RegionAffinityExactSpillBoundaryIsATie) {
  // The spill predicate is strict (`>`): when the home shard is *exactly*
  // one per-view unit above the cheapest — representable without rounding
  // here: 1.5 == 0.5 + 1.0 — affinity must still win. One ulp above the
  // boundary spills.
  Router r(RouterPolicy::kRegionAffinity, 1);
  auto loads = uniform_loads(4, 1000000);
  loads[0].forward_cost = 0.5;  // cheapest
  loads[1].forward_cost = 0.75;
  loads[2].forward_cost = 1.5;  // home of region 2: exactly cheapest + 1.0
  loads[3].forward_cost = 0.75;
  EXPECT_EQ(r.route(loads, 2), 2);
  loads[2].forward_cost = std::nextafter(1.5, 2.0);
  EXPECT_EQ(r.route(loads, 2), 0);
}

TEST(Router, RegionAffinitySingleShardDegenerate) {
  // K=1: home == cheapest == 0 for every region, including the global
  // region's least-loaded fallback; the spill predicate can never fire.
  Router r(RouterPolicy::kRegionAffinity, 9);
  auto loads = uniform_loads(1);
  loads[0].forward_cost = 123.0;  // arbitrarily hot: nowhere to spill
  for (std::uint32_t region : {0u, 1u, 2u, 1000000u}) {
    EXPECT_EQ(r.route(loads, region), 0) << region;
  }
  // Accounting still applies to the lone shard.
  EXPECT_EQ(loads[0].queued, 4u);
}

TEST(Router, SingleShardAlwaysZero) {
  for (auto p : {RouterPolicy::kRoundRobin, RouterPolicy::kLeastLoaded,
                 RouterPolicy::kPowerOfTwo}) {
    Router r(p, 9);
    auto loads = uniform_loads(1);
    for (int i = 0; i < 4; ++i) EXPECT_EQ(r.route(loads), 0);
  }
}

}  // namespace
}  // namespace cocg::fleet
