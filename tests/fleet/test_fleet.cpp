#include "fleet/fleet.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/model_bank.h"
#include "core/offline.h"
#include "core/scheduler_factory.h"
#include "game/library.h"
#include "obs/json.h"
#include "obs/obs.h"

namespace cocg::fleet {
namespace {

/// Greedy admit-everything scheduler: model-free, so fleet tests exercise
/// the sharding machinery without offline training cost.
class GreedyScheduler final : public platform::Scheduler {
 public:
  explicit GreedyScheduler(ResourceVector alloc = {60, 90, 4000, 4000})
      : alloc_(alloc) {}

  std::string name() const override { return "greedy"; }

  std::optional<platform::Placement> admit(
      platform::PlatformView& view, const platform::GameRequest& req) override {
    (void)req;
    for (ServerId server : view.server_ids()) {
      const auto& srv = view.server(server);
      for (int g = 0; g < srv.spec().num_gpus; ++g) {
        if (alloc_.fits_within(srv.free_on_gpu(g))) {
          return platform::Placement{server, g, alloc_};
        }
      }
    }
    return std::nullopt;
  }

 private:
  ResourceVector alloc_;
};

/// Flip the obs switches for one test and restore them after.
class ObsGuard {
 public:
  explicit ObsGuard(bool trace = false)
      : saved_(obs::enabled()), saved_trace_(obs::trace_enabled()) {
    obs::set_enabled(true);
    obs::set_trace_enabled(trace);
  }
  ~ObsGuard() {
    obs::set_enabled(saved_);
    obs::set_trace_enabled(saved_trace_);
  }

 private:
  bool saved_;
  bool saved_trace_;
};

const game::GameSpec& contra() {
  static const game::GameSpec g = game::make_contra();
  return g;
}
const game::GameSpec& csgo() {
  static const game::GameSpec g = game::make_csgo();
  return g;
}

SchedulerFactory greedy_factory() {
  return [](int) { return std::make_unique<GreedyScheduler>(); };
}

FleetConfig small_config(int shards, int threads,
                         RouterPolicy policy = RouterPolicy::kLeastLoaded) {
  FleetConfig cfg;
  cfg.shards = shards;
  cfg.threads = threads;
  cfg.policy = policy;
  cfg.seed = 99;
  return cfg;
}

/// Standard small fleet: `shards` shards, 2 servers each, two open-loop
/// game streams.
std::unique_ptr<Fleet> make_small_fleet(int shards, int threads,
                                        RouterPolicy policy =
                                            RouterPolicy::kLeastLoaded) {
  auto f = std::make_unique<Fleet>(small_config(shards, threads, policy),
                                   greedy_factory());
  for (int i = 0; i < 2 * shards; ++i) f->add_server(hw::ServerSpec{});
  f->add_global_source({&contra(), 60.0, 8});
  f->add_global_source({&csgo(), 40.0, 8});
  return f;
}

TEST(Fleet, ServersPartitionRoundRobin) {
  Fleet f(small_config(2, 1), greedy_factory());
  EXPECT_EQ(f.add_server(hw::ServerSpec{}), 0);
  EXPECT_EQ(f.add_server(hw::ServerSpec{}), 1);
  EXPECT_EQ(f.add_server(hw::ServerSpec{}), 0);
  EXPECT_EQ(f.loads()[0].servers, 2u);
  EXPECT_EQ(f.loads()[1].servers, 1u);
  EXPECT_EQ(f.loads()[0].gpu_views, 4u);
}

TEST(Fleet, OpenLoopArrivalsAreConserved) {
  auto f = make_small_fleet(3, 1);
  f->run(30 * 60 * 1000);
  const auto rep = f->report();
  EXPECT_GT(rep.arrivals, 10u);
  std::size_t routed = 0;
  for (int i = 0; i < f->num_shards(); ++i) routed += f->routed_to(i);
  EXPECT_EQ(routed, rep.arrivals);
  // Every routed request is still accounted for: finished, running, or
  // queued. Nothing lost, nothing duplicated.
  for (const auto& row : rep.shards) {
    EXPECT_EQ(row.routed,
              row.completed + row.running_end + row.queued_end)
        << "shard " << row.shard;
  }
  EXPECT_GT(rep.completed, 0u);
  EXPECT_GT(rep.throughput, 0.0);
}

// The determinism contract (docs/fleet.md): thread count affects wall
// clock only. Aggregated events, metrics, traces and results must be
// byte-identical between a serial and a parallel run.
TEST(Fleet, AggregateResultsIdenticalAcrossThreadCounts) {
  ObsGuard guard(/*trace=*/true);
  auto run_with = [](int threads) {
    auto f = make_small_fleet(4, threads);
    f->run(30 * 60 * 1000);
    struct Out {
      std::string events, metrics, trace;
      FleetReport rep;
      std::vector<std::size_t> routed;
    } out;
    out.events = f->merged_events_jsonl();
    obs::MetricsRegistry merged;
    f->merge_metrics(merged);
    out.metrics = merged.to_json();
    std::ostringstream tr;
    f->write_merged_trace(tr);
    out.trace = tr.str();
    out.rep = f->report();
    for (int i = 0; i < f->num_shards(); ++i) {
      out.routed.push_back(f->routed_to(i));
    }
    return out;
  };
  const auto serial = run_with(1);
  const auto parallel = run_with(4);
  EXPECT_EQ(serial.events, parallel.events);
  EXPECT_EQ(serial.metrics, parallel.metrics);
  EXPECT_EQ(serial.trace, parallel.trace);
  EXPECT_EQ(serial.routed, parallel.routed);
  EXPECT_DOUBLE_EQ(serial.rep.throughput, parallel.rep.throughput);
  EXPECT_EQ(serial.rep.completed, parallel.rep.completed);
  EXPECT_EQ(serial.rep.arrivals, parallel.rep.arrivals);
  ASSERT_FALSE(serial.events.empty());
  ASSERT_GT(serial.rep.completed, 0u);
}

TEST(Fleet, SameSeedReproducesDifferentSeedDiverges) {
  ObsGuard guard;
  auto run_with = [](std::uint64_t seed) {
    auto cfg = small_config(2, 2);
    cfg.seed = seed;
    Fleet f(cfg, greedy_factory());
    for (int i = 0; i < 4; ++i) f.add_server(hw::ServerSpec{});
    f.add_global_source({&contra(), 60.0, 8});
    f.run(20 * 60 * 1000);
    return f.merged_events_jsonl();
  };
  EXPECT_EQ(run_with(5), run_with(5));
  EXPECT_NE(run_with(5), run_with(6));
}

TEST(Fleet, MergedEventsCarryShardFieldTimeOrdered) {
  ObsGuard guard;
  auto f = make_small_fleet(2, 2);
  f->run(20 * 60 * 1000);
  std::istringstream is(f->merged_events_jsonl());
  std::string line;
  double prev_t = -1.0;
  std::size_t lines = 0;
  while (std::getline(is, line)) {
    ++lines;
    obs::JsonValue v;
    ASSERT_TRUE(obs::json_parse(line, v)) << line;
    const double shard = v.get_number("shard", -1.0);
    EXPECT_GE(shard, 0.0);
    EXPECT_LT(shard, 2.0);
    const double t = v.get_number("t", -1.0);
    EXPECT_GE(t, prev_t);
    prev_t = t;
  }
  EXPECT_GT(lines, 0u);
}

TEST(Fleet, MergedTraceRendersShardsAsProcessGroups) {
  ObsGuard guard(/*trace=*/true);
  auto f = make_small_fleet(2, 2);
  f->run(20 * 60 * 1000);
  std::ostringstream os;
  f->write_merged_trace(os);
  const std::string trace = os.str();
  obs::JsonValue v;
  ASSERT_TRUE(obs::json_parse(trace, v));
  EXPECT_NE(trace.find("shard0/"), std::string::npos);
  EXPECT_NE(trace.find("shard1/"), std::string::npos);
  // Shard 1's pids live in the second stride block (platform pids are
  // 1-based server ids).
  EXPECT_NE(trace.find("\"pid\":" + std::to_string(kShardPidStride + 1)),
            std::string::npos);
}

TEST(Fleet, MergedMetricsSumShardCounters) {
  ObsGuard guard;
  auto f = make_small_fleet(2, 1);
  f->run(20 * 60 * 1000);
  std::uint64_t per_shard_sum = 0;
  for (int i = 0; i < 2; ++i) {
    per_shard_sum += f->shard_domain(i).metrics.counter_value(
        "platform.requests_submitted");
  }
  obs::MetricsRegistry merged;
  f->merge_metrics(merged);
  EXPECT_EQ(merged.counter_value("platform.requests_submitted"),
            per_shard_sum);
  EXPECT_EQ(per_shard_sum, f->arrivals_generated());
  // The process-global registry saw none of the shard activity.
  EXPECT_EQ(obs::global_domain().metrics.counter_value(
                "platform.requests_submitted"),
            0u);
}

TEST(Fleet, ShardSourceBypassesRouter) {
  auto cfg = small_config(2, 1);
  Fleet f(cfg, greedy_factory());
  for (int i = 0; i < 4; ++i) f.add_server(hw::ServerSpec{});
  f.add_shard_source(0, {&contra(), 2, 4});
  f.run(40 * 60 * 1000);
  EXPECT_EQ(f.arrivals_generated(), 0u);
  EXPECT_EQ(f.routed_to(0), 0u);
  const auto rep = f.report();
  EXPECT_GT(rep.shards[0].completed, 0u);
  EXPECT_EQ(rep.shards[1].completed, 0u);
}

TEST(Fleet, RunIsOneShot) {
  auto f = make_small_fleet(1, 1);
  f->run(60 * 1000);
  EXPECT_THROW(f->run(60 * 1000), ContractError);
}

TEST(Fleet, ReportJsonIsCanonical) {
  auto f = make_small_fleet(2, 2);
  f->run(20 * 60 * 1000);
  const auto rep = f->report();
  const std::string json = report_json(rep);
  obs::JsonValue v;
  ASSERT_TRUE(obs::json_parse(json, v)) << json;
  EXPECT_EQ(v.get_number("completed", -1.0),
            static_cast<double>(rep.completed));
  std::ostringstream os;
  write_report_json(rep, os);
  EXPECT_EQ(os.str(), json);
}

// --- steal runner: lockstep is the bitwise oracle ---

/// Everything a run externalizes, for byte comparison across runners.
struct RunSurface {
  std::string report, events, metrics, trace;
};

RunSurface run_surface(Fleet& f, DurationMs horizon) {
  f.run(horizon);
  RunSurface out;
  out.report = report_json(f.report());
  out.events = f.merged_events_jsonl();
  obs::MetricsRegistry merged;
  f.merge_metrics(merged);
  out.metrics = merged.to_json();
  std::ostringstream tr;
  f.write_merged_trace(tr);
  out.trace = tr.str();
  return out;
}

std::unique_ptr<Fleet> make_runner_fleet(RunnerKind runner, int threads,
                                         RouterPolicy policy) {
  auto cfg = small_config(4, threads, policy);
  cfg.runner = runner;
  auto f = std::make_unique<Fleet>(cfg, greedy_factory());
  for (int i = 0; i < 8; ++i) f->add_server(hw::ServerSpec{});
  f->add_global_source({&contra(), 60.0, 8});
  f->add_global_source({&csgo(), 40.0, 8});
  return f;
}

// The tentpole contract: the steal runner must reproduce the lockstep
// runner's entire external surface byte-for-byte at any thread count,
// under both a loads-free policy (rr — full run-ahead, no syncs) and a
// load-based one (ll — sync every fresh-routed epoch).
TEST(FleetSteal, ByteIdenticalToLockstepAcrossThreadCounts) {
  ObsGuard guard(/*trace=*/true);
  constexpr DurationMs kHorizon = 30 * 60 * 1000;
  for (RouterPolicy policy :
       {RouterPolicy::kRoundRobin, RouterPolicy::kLeastLoaded}) {
    auto lockstep = make_runner_fleet(RunnerKind::kLockstep, 1, policy);
    const RunSurface base = run_surface(*lockstep, kHorizon);
    ASSERT_FALSE(base.events.empty());
    for (int threads : {1, 2, 8}) {
      auto steal = make_runner_fleet(RunnerKind::kSteal, threads, policy);
      const RunSurface got = run_surface(*steal, kHorizon);
      EXPECT_EQ(base.report, got.report) << threads;
      EXPECT_EQ(base.events, got.events) << threads;
      EXPECT_EQ(base.metrics, got.metrics) << threads;
      EXPECT_EQ(base.trace, got.trace) << threads;
    }
  }
}

TEST(FleetSteal, RoundRobinRunsAheadWithoutSyncs) {
  auto f = make_runner_fleet(RunnerKind::kSteal, 2, RouterPolicy::kRoundRobin);
  f->run(30 * 60 * 1000);
  const auto& es = f->executor_stats();
  EXPECT_GT(es.jobs_run, 0u);
  // rr never reads the load snapshots and no health stream is attached,
  // so the coordinator should never have had to drain mid-run.
  EXPECT_EQ(es.syncs, 0u);
}

TEST(FleetSteal, LoadBasedPolicySyncsButStaysIdentical) {
  auto f = make_runner_fleet(RunnerKind::kSteal, 2, RouterPolicy::kLeastLoaded);
  f->run(30 * 60 * 1000);
  const auto& es = f->executor_stats();
  // ll reads loads on every freshly routed epoch: syncs must happen.
  EXPECT_GT(es.syncs, 0u);
  EXPECT_GT(es.jobs_run, 0u);
}

TEST(FleetSteal, HealthSnapshotsIdenticalAcrossRunnersModuloExecutor) {
  // The steal runner appends an "executor" block (wall-clock steal/idle
  // telemetry that has no lockstep analogue) to each heartbeat; the
  // simulated-state portion must still match lockstep byte for byte.
  ObsGuard guard;
  auto run_with = [](RunnerKind runner) {
    auto f = make_runner_fleet(runner, 2, RouterPolicy::kRoundRobin);
    std::ostringstream health;
    f->enable_health_stream(&health, 60 * 1000);
    f->run(10 * 60 * 1000);
    return health.str();
  };
  auto strip_executor = [](const std::string& jsonl) {
    std::string out;
    std::istringstream is(jsonl);
    std::string line;
    while (std::getline(is, line)) {
      const auto pos = line.find(",\"executor\":{");
      if (pos != std::string::npos) {
        const auto end = line.find('}', pos);
        EXPECT_NE(end, std::string::npos);
        line.erase(pos, end - pos + 1);
      }
      out += line;
      out += '\n';
    }
    return out;
  };
  const std::string lockstep = run_with(RunnerKind::kLockstep);
  const std::string steal = run_with(RunnerKind::kSteal);
  ASSERT_FALSE(lockstep.empty());
  // Lockstep heartbeats carry no executor block at all...
  EXPECT_EQ(lockstep.find("\"executor\""), std::string::npos);
  // ...the steal runner's do...
  EXPECT_NE(steal.find("\"executor\""), std::string::npos);
  // ...and everything else is identical.
  EXPECT_EQ(lockstep, strip_executor(steal));
}

// Capture under one runner, replay under the other: recorded verdicts
// bypass the router entirely, so the steal replay runs fully ahead and
// must still reproduce the capture run's report byte-for-byte.
TEST(FleetSteal, CaptureReplayRoundTripsAcrossRunners) {
  ObsGuard guard;
  constexpr DurationMs kHorizon = 20 * 60 * 1000;
  traffic::TraceRecorder rec;
  auto captured = make_runner_fleet(RunnerKind::kLockstep, 1,
                                    RouterPolicy::kLeastLoaded);
  captured->enable_capture(&rec);
  const RunSurface base = run_surface(*captured, kHorizon);
  ASSERT_GT(rec.size(), 0u);

  const std::vector<const game::GameSpec*> specs = {&contra(), &csgo()};
  for (RunnerKind runner : {RunnerKind::kLockstep, RunnerKind::kSteal}) {
    for (int threads : {1, 8}) {
      auto cfg = small_config(4, threads, RouterPolicy::kLeastLoaded);
      cfg.runner = runner;
      Fleet replay(cfg, greedy_factory());
      for (int i = 0; i < 8; ++i) replay.add_server(hw::ServerSpec{});
      replay.add_trace_arrivals(rec.trace(), specs,
                                /*use_recorded_routing=*/true);
      const RunSurface got = run_surface(replay, kHorizon);
      EXPECT_EQ(base.report, got.report)
          << runner_kind_name(runner) << " x" << threads;
      EXPECT_EQ(base.events, got.events)
          << runner_kind_name(runner) << " x" << threads;
    }
  }
}

// --- train-once model sharing (core::ModelBank) across shards ---

/// Fleet run under the real CoCG scheduler; returns the canonical report
/// JSON plus the merged event stream, the full determinism surface.
struct CocgRunOut {
  std::string report, events;
};

CocgRunOut run_cocg_fleet(const core::ModelBank* bank,
                          const std::vector<game::GameSpec>& suite,
                          const core::OfflineConfig& ocfg, int threads) {
  ObsGuard guard;
  FleetConfig cfg;
  cfg.shards = 2;
  cfg.threads = threads;
  cfg.policy = RouterPolicy::kLeastLoaded;
  cfg.seed = 7;
  Fleet f(cfg, [&](int) {
    if (bank != nullptr) {
      return core::make_named_scheduler("cocg", *bank, suite);
    }
    return core::make_named_scheduler("cocg", core::train_suite(suite, ocfg));
  });
  for (int i = 0; i < 4; ++i) f.add_server(hw::ServerSpec{});
  for (const auto& g : suite) f.add_global_source({&g, 40.0, 8});
  f.run(15 * 60 * 1000);
  CocgRunOut out;
  out.report = report_json(f.report());
  out.events = f.merged_events_jsonl();
  return out;
}

TEST(FleetModelBank, SharedBankMatchesRetrainPerShard) {
  const std::vector<game::GameSpec> suite = {game::make_contra(),
                                             game::make_csgo()};
  core::OfflineConfig ocfg;
  ocfg.profiling_runs = 5;
  ocfg.corpus_runs = 8;
  ocfg.seed = 7;

  core::ModelBank bank;
  for (const auto& [name, tg] : core::train_suite(suite, ocfg)) {
    bank.add_trained(tg);
  }

  // One shared training pass vs. an independent retrain inside every
  // shard: byte-identical reports and event streams (the acceptance
  // criterion for the train-once path), at any thread count.
  const auto shared_1 = run_cocg_fleet(&bank, suite, ocfg, 1);
  const auto shared_2 = run_cocg_fleet(&bank, suite, ocfg, 2);
  const auto retrain = run_cocg_fleet(nullptr, suite, ocfg, 2);
  EXPECT_EQ(shared_1.report, shared_2.report);
  EXPECT_EQ(shared_1.events, shared_2.events);
  EXPECT_EQ(shared_1.report, retrain.report);
  EXPECT_EQ(shared_1.events, retrain.events);
  ASSERT_FALSE(shared_1.events.empty());
}

}  // namespace
}  // namespace cocg::fleet
