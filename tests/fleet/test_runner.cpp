#include "fleet/runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

namespace cocg::fleet {
namespace {

TEST(EpochPool, RunsEveryJobExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    EpochPool pool(threads);
    std::vector<std::atomic<int>> hits(13);
    std::vector<std::function<void()>> jobs;
    for (std::size_t i = 0; i < hits.size(); ++i) {
      jobs.push_back([&hits, i] { ++hits[i]; });
    }
    pool.run(jobs);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1) << threads;
  }
}

TEST(EpochPool, RunIsABarrierAcrossEpochs) {
  EpochPool pool(4);
  std::atomic<int> done{0};
  for (int epoch = 0; epoch < 50; ++epoch) {
    std::vector<std::function<void()>> jobs;
    for (int i = 0; i < 4; ++i) {
      jobs.push_back([&done, epoch] {
        // Every job of epoch N must observe all of epoch N-1 finished.
        EXPECT_EQ(done.load() / 4, epoch);
        ++done;
      });
    }
    pool.run(jobs);
    EXPECT_EQ(done.load(), (epoch + 1) * 4);
  }
}

TEST(EpochPool, SingleThreadRunsInline) {
  EpochPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(3);
  std::vector<std::function<void()>> jobs;
  std::vector<int> order;
  for (std::size_t i = 0; i < seen.size(); ++i) {
    jobs.push_back([&, i] {
      seen[i] = std::this_thread::get_id();
      order.push_back(static_cast<int>(i));
    });
  }
  pool.run(jobs);
  for (const auto& id : seen) EXPECT_EQ(id, caller);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EpochPool, RethrowsFirstExceptionByJobIndex) {
  EpochPool pool(2);
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> jobs = {
      [&] { ++ran; },
      [] { throw std::runtime_error("job one"); },
      [] { throw std::runtime_error("job two"); },
      [&] { ++ran; },
  };
  try {
    pool.run(jobs);
    FAIL() << "expected rethrow";
  } catch (const std::runtime_error& e) {
    // The failing job's index is part of the message, so a 64-shard run
    // names the shard that died instead of an anonymous "what()".
    EXPECT_STREQ(e.what(), "epoch job 1: job one");
  }
  // The pool survives a throwing epoch.
  std::vector<std::function<void()>> ok = {[&] { ++ran; }};
  pool.run(ok);
  EXPECT_EQ(ran.load(), 3);
}

TEST(EpochPool, ManyFailuresReportTheLowestJobIndex) {
  // Every job throws; whatever order the threads run them in, the
  // rethrown error must be job 0's, and every job must still have run.
  for (int threads : {1, 2, 4}) {
    EpochPool pool(threads);
    std::atomic<int> attempts{0};
    std::vector<std::function<void()>> jobs;
    for (int i = 0; i < 16; ++i) {
      jobs.push_back([&attempts, i] {
        ++attempts;
        throw std::runtime_error("boom " + std::to_string(i));
      });
    }
    try {
      pool.run(jobs);
      FAIL() << "expected rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "epoch job 0: boom 0") << threads;
    }
    EXPECT_EQ(attempts.load(), 16) << threads;
  }
}

TEST(EpochPool, NonStdExceptionIsWrappedWithItsIndex) {
  EpochPool pool(2);
  std::vector<std::function<void()>> jobs = {
      [] {},
      [] { throw 42; },
  };
  try {
    pool.run(jobs);
    FAIL() << "expected rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "epoch job 1: unknown exception");
  }
}

TEST(EpochPool, MoreJobsThanThreads) {
  EpochPool pool(3);
  std::atomic<int> sum{0};
  std::vector<std::function<void()>> jobs;
  for (int i = 1; i <= 100; ++i) {
    jobs.push_back([&sum, i] { sum += i; });
  }
  pool.run(jobs);
  EXPECT_EQ(sum.load(), 5050);
}

TEST(EpochPool, EmptyJobListIsANoOp) {
  EpochPool pool(2);
  pool.run({});
  pool.run({});
}

}  // namespace
}  // namespace cocg::fleet
