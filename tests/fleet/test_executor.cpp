#include "fleet/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace cocg::fleet {
namespace {

TEST(RunnerKind, NamesRoundTrip) {
  RunnerKind k = RunnerKind::kSteal;
  EXPECT_TRUE(parse_runner_kind("lockstep", k));
  EXPECT_EQ(k, RunnerKind::kLockstep);
  EXPECT_STREQ(runner_kind_name(k), "lockstep");
  EXPECT_TRUE(parse_runner_kind("steal", k));
  EXPECT_EQ(k, RunnerKind::kSteal);
  EXPECT_STREQ(runner_kind_name(k), "steal");
  EXPECT_FALSE(parse_runner_kind("barrier", k));
  EXPECT_FALSE(parse_runner_kind("", k));
}

TEST(ShardExecutor, RunsEveryJobExactlyOnce) {
  for (int threads : {1, 2, 4}) {
    ShardExecutor exec(threads, 3);
    std::vector<std::atomic<int>> hits(30);
    for (int i = 0; i < 30; ++i) {
      exec.submit(i % 3, [&hits, i] { ++hits[static_cast<std::size_t>(i)]; });
    }
    exec.drain();
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1) << threads;
    EXPECT_EQ(exec.jobs_run(), 30u) << threads;
  }
}

TEST(ShardExecutor, ShardJobsRunInSubmissionOrder) {
  // 8 threads fighting over 2 shards: each shard's jobs must still apply
  // strictly in submission order — the determinism contract's backbone.
  ShardExecutor exec(8, 2);
  std::vector<int> seen[2];
  std::mutex mu[2];
  for (int i = 0; i < 200; ++i) {
    const int shard = i % 2;
    const int seq = i / 2;
    exec.submit(shard, [&, shard, seq] {
      std::lock_guard<std::mutex> lk(mu[shard]);
      seen[shard].push_back(seq);
    });
  }
  exec.drain();
  for (int shard = 0; shard < 2; ++shard) {
    ASSERT_EQ(seen[shard].size(), 100u);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(seen[shard][i], i) << shard;
  }
}

TEST(ShardExecutor, ShardJobsNeverOverlap) {
  // One counter per shard incremented non-atomically at both ends of the
  // job; concurrent execution of one shard's jobs would race and trip the
  // equality check (and TSan in the sanitize job).
  ShardExecutor exec(4, 2);
  int counter[2] = {0, 0};
  std::atomic<bool> in_flight[2] = {false, false};
  for (int i = 0; i < 100; ++i) {
    const int shard = i % 2;
    exec.submit(shard, [&, shard] {
      EXPECT_FALSE(in_flight[shard].exchange(true));
      ++counter[shard];
      std::this_thread::yield();
      in_flight[shard].store(false);
    });
  }
  exec.drain();
  EXPECT_EQ(counter[0], 50);
  EXPECT_EQ(counter[1], 50);
}

TEST(ShardExecutor, IdleWorkersStealForeignShards) {
  // Shards 0 and 2 both have home worker 0 (shard % threads). Their jobs
  // rendezvous: neither can finish until both are running, so the
  // executor is forced to run them on distinct workers — and worker 1
  // executing either of them is, by definition, a steal. (A
  // sleep-until-stolen version of this test is flaky on one core, where
  // the home worker can re-acquire its shard before the idle worker ever
  // sees it runnable; the rendezvous makes the steal structural.)
  ShardExecutor exec(2, 4);
  std::mutex mu;
  std::condition_variable cv;
  int arrived = 0;
  const auto rendezvous = [&] {
    std::unique_lock<std::mutex> lk(mu);
    ++arrived;
    cv.notify_all();
    cv.wait(lk, [&] { return arrived == 2; });
  };
  exec.submit(0, rendezvous);
  exec.submit(2, rendezvous);
  exec.drain();
  EXPECT_EQ(exec.jobs_run(), 2u);
  EXPECT_GT(exec.steals(), 0u);
}

TEST(ShardExecutor, DrainIsRepeatableAndSubmitContinues) {
  ShardExecutor exec(2, 2);
  std::atomic<int> ran{0};
  exec.submit(0, [&] { ++ran; });
  exec.drain();
  EXPECT_EQ(ran.load(), 1);
  exec.drain();  // nothing pending: returns immediately
  exec.submit(1, [&] { ++ran; });
  exec.submit(0, [&] { ++ran; });
  exec.drain();
  EXPECT_EQ(ran.load(), 3);
}

TEST(ShardExecutor, DrainRethrowsFirstErrorBySubmissionIndex) {
  ShardExecutor exec(2, 3);
  std::atomic<int> ran{0};
  exec.submit(0, [&] { ++ran; });                             // idx 0
  exec.submit(1, [] { throw std::runtime_error("first"); });  // idx 1
  exec.submit(2, [] { throw std::runtime_error("later"); });  // idx 2
  exec.submit(0, [&] { ++ran; });                             // idx 3
  try {
    exec.drain();
    FAIL() << "expected rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "epoch job 1: first");
  }
  EXPECT_EQ(ran.load(), 2);  // every job still ran
  // The executor survives: a later submit + drain works.
  exec.submit(1, [&] { ++ran; });
  exec.drain();
  EXPECT_EQ(ran.load(), 3);
}

TEST(ShardExecutor, EveryFailureStillRunsLowestIndexWins) {
  for (int threads : {1, 4}) {
    ShardExecutor exec(threads, 4);
    std::atomic<int> attempts{0};
    for (int i = 0; i < 16; ++i) {
      exec.submit(i % 4, [&attempts, i] {
        ++attempts;
        throw std::runtime_error("boom " + std::to_string(i));
      });
    }
    try {
      exec.drain();
      FAIL() << "expected rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "epoch job 0: boom 0") << threads;
    }
    EXPECT_EQ(attempts.load(), 16) << threads;
  }
}

TEST(ShardExecutor, MoreThreadsThanShards) {
  ShardExecutor exec(8, 1);
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    exec.submit(0, [&order, i] { order.push_back(i); });
  }
  exec.drain();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ShardExecutor, DestructorDrainsOutstandingJobs) {
  std::atomic<int> ran{0};
  {
    ShardExecutor exec(2, 2);
    for (int i = 0; i < 20; ++i) {
      exec.submit(i % 2, [&ran] { ++ran; });
    }
    // No drain: the destructor must still let workers finish what was
    // submitted rather than dropping queued jobs.
  }
  EXPECT_EQ(ran.load(), 20);
}

}  // namespace
}  // namespace cocg::fleet
