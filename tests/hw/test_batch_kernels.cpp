#include "hw/batch_kernels.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"
#include "hw/contention.h"
#include "hw/server.h"

namespace cocg::hw {
namespace {

/// Bitwise comparison — the kernels' contract is bit-identity, not
/// closeness, so EXPECT_DOUBLE_EQ (4 ulps) would be too weak.
bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

std::vector<double> random_lanes(Rng& rng, std::size_t n, double lo,
                                 double hi, double zero_fraction = 0.0) {
  std::vector<double> v(n);
  for (auto& x : v) {
    x = rng.uniform(0.0, 1.0) < zero_fraction ? 0.0 : rng.uniform(lo, hi);
  }
  return v;
}

TEST(BatchKernels, ElementwiseKernelsMatchScalarBitForBit) {
  Rng rng(7);
  // Odd sizes on purpose: remainder lanes after the vector body.
  for (std::size_t n : {0u, 1u, 2u, 3u, 7u, 64u, 1001u}) {
    const auto a = random_lanes(rng, n, 0.0, 100.0);
    const auto b = random_lanes(rng, n, 0.0, 100.0);
    std::vector<double> vec(n), ref(n);

    batch::min_into(vec.data(), a.data(), b.data(), n);
    batch::min_into_scalar(ref.data(), a.data(), b.data(), n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_TRUE(bits_equal(vec[i], ref[i]));

    const double s = 0.37219;
    batch::scale_into(vec.data(), a.data(), s, n);
    batch::scale_into_scalar(ref.data(), a.data(), s, n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_TRUE(bits_equal(vec[i], ref[i]));

    batch::mul_into(vec.data(), a.data(), b.data(), n);
    batch::mul_into_scalar(ref.data(), a.data(), b.data(), n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_TRUE(bits_equal(vec[i], ref[i]));
  }
}

TEST(BatchKernels, SatisfactionLanesMatchScalarIncludingZeroDemand) {
  Rng rng(11);
  for (std::size_t n : {1u, 5u, 8u, 333u}) {
    // Half the lanes have zero demand in any given dimension; some lanes
    // have zero demand in EVERY dimension (must finalize to 1.0).
    std::vector<std::vector<double>> demand(kNumDims), supplied(kNumDims);
    for (std::size_t d = 0; d < kNumDims; ++d) {
      demand[d] = random_lanes(rng, n, 0.01, 50.0, /*zero_fraction=*/0.5);
      supplied[d] = random_lanes(rng, n, 0.0, 50.0);
    }
    for (std::size_t d = 0; d < kNumDims; ++d) demand[d][0] = 0.0;

    std::vector<double> sat_vec(n), any_vec(n), sat_ref(n), any_ref(n);
    batch::satisfaction_init(sat_vec.data(), any_vec.data(), n);
    batch::satisfaction_init(sat_ref.data(), any_ref.data(), n);
    for (std::size_t d = 0; d < kNumDims; ++d) {
      batch::satisfaction_apply_dim(sat_vec.data(), any_vec.data(),
                                    demand[d].data(), supplied[d].data(), n);
      batch::satisfaction_apply_dim_scalar(sat_ref.data(), any_ref.data(),
                                           demand[d].data(),
                                           supplied[d].data(), n);
    }
    batch::satisfaction_finalize(sat_vec.data(), any_vec.data(), n);
    batch::satisfaction_finalize(sat_ref.data(), any_ref.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(bits_equal(sat_vec[i], sat_ref[i])) << i;
    }
    EXPECT_TRUE(bits_equal(sat_vec[0], 1.0));  // no demand at all
  }
}

TEST(BatchKernels, SatisfactionMatchesResourceVectorRatio) {
  // One lane per random session: the lane pipeline must reproduce
  // ResourceVector::satisfaction_ratio exactly.
  Rng rng(23);
  const std::size_t n = 257;
  std::vector<std::vector<double>> demand(kNumDims), supplied(kNumDims);
  for (std::size_t d = 0; d < kNumDims; ++d) {
    demand[d] = random_lanes(rng, n, 0.01, 80.0, 0.3);
    supplied[d] = random_lanes(rng, n, 0.0, 80.0);
  }
  std::vector<double> sat(n), any(n);
  batch::satisfaction_init(sat.data(), any.data(), n);
  for (std::size_t d = 0; d < kNumDims; ++d) {
    batch::satisfaction_apply_dim(sat.data(), any.data(), demand[d].data(),
                                  supplied[d].data(), n);
  }
  batch::satisfaction_finalize(sat.data(), any.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    ResourceVector dem, sup;
    for (std::size_t d = 0; d < kNumDims; ++d) {
      dem.at(d) = demand[d][i];
      sup.at(d) = supplied[d][i];
    }
    EXPECT_TRUE(bits_equal(sat[i], dem.satisfaction_ratio(sup))) << i;
  }
}

TEST(BatchKernels, FusedSatisfactionMatchesPipelineAndScalar) {
  // satisfaction_into must reproduce the composable
  // init/apply_dim/finalize pipeline (and its own branchy scalar twin)
  // bit for bit, including all-zero-demand lanes.
  Rng rng(31);
  for (std::size_t n : {1u, 4u, 8u, 129u}) {
    std::vector<std::vector<double>> demand(kNumDims), supplied(kNumDims);
    for (std::size_t d = 0; d < kNumDims; ++d) {
      demand[d] = random_lanes(rng, n, 0.01, 50.0, /*zero_fraction=*/0.5);
      supplied[d] = random_lanes(rng, n, 0.0, 50.0);
    }
    for (std::size_t d = 0; d < kNumDims; ++d) demand[d][0] = 0.0;

    std::vector<double> pipe(n), any(n), fused(n), fused_ref(n);
    batch::satisfaction_init(pipe.data(), any.data(), n);
    for (std::size_t d = 0; d < kNumDims; ++d) {
      batch::satisfaction_apply_dim(pipe.data(), any.data(), demand[d].data(),
                                    supplied[d].data(), n);
    }
    batch::satisfaction_finalize(pipe.data(), any.data(), n);
    batch::satisfaction_into(fused.data(), demand[0].data(),
                             supplied[0].data(), demand[1].data(),
                             supplied[1].data(), demand[2].data(),
                             supplied[2].data(), demand[3].data(),
                             supplied[3].data(), n);
    batch::satisfaction_into_scalar(fused_ref.data(), demand[0].data(),
                                    supplied[0].data(), demand[1].data(),
                                    supplied[1].data(), demand[2].data(),
                                    supplied[2].data(), demand[3].data(),
                                    supplied[3].data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(bits_equal(fused[i], pipe[i])) << i;
      EXPECT_TRUE(bits_equal(fused[i], fused_ref[i])) << i;
    }
    EXPECT_TRUE(bits_equal(fused[0], 1.0));  // no demand at all
  }
}

TEST(BatchKernels, SumOrderedIsTheSequentialFold) {
  Rng rng(5);
  const auto a = random_lanes(rng, 1003, 0.0, 1e6);
  double expect = 0.0;
  for (const double x : a) expect += x;
  EXPECT_TRUE(bits_equal(batch::sum_ordered(a.data(), a.size()), expect));
  EXPECT_TRUE(bits_equal(batch::sum_ordered(a.data(), 0), 0.0));
}

// --- resolve_server: the SoA path against the kept AoS reference ---

TEST(ResolveServerSoA, BitIdenticalToReferenceRandomized) {
  Rng rng(99);
  ServerSpec spec;
  spec.num_gpus = 3;
  for (int iter = 0; iter < 50; ++iter) {
    const std::size_t n = 1 + static_cast<std::size_t>(
                                  rng.uniform(0.0, 40.0));
    std::vector<PinnedDraw> draws;
    draws.reserve(n);
    for (std::size_t s = 0; s < n; ++s) {
      PinnedDraw d;
      d.draw.sid = SessionId{s};
      for (std::size_t k = 0; k < kNumDims; ++k) {
        // Mix of saturating and idle load, with occasional zero demand.
        d.draw.demand.at(k) =
            rng.uniform(0.0, 1.0) < 0.2 ? 0.0 : rng.uniform(0.0, 90.0);
        d.draw.allocation.at(k) = rng.uniform(0.0, 90.0);
      }
      d.gpu_index = static_cast<int>(rng.uniform(0.0, 3.0));
      if (d.gpu_index >= spec.num_gpus) d.gpu_index = spec.num_gpus - 1;
      draws.push_back(d);
    }
    ServerResolveScratch soa, ref;
    const auto& got = resolve_server(spec, draws, soa);
    const auto& want = resolve_server_reference(spec, draws, ref);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t s = 0; s < n; ++s) {
      EXPECT_EQ(got[s].sid, want[s].sid);
      for (std::size_t k = 0; k < kNumDims; ++k) {
        EXPECT_TRUE(bits_equal(got[s].supplied.at(k), want[s].supplied.at(k)))
            << "iter " << iter << " session " << s << " dim " << k;
      }
      EXPECT_TRUE(bits_equal(got[s].satisfaction, want[s].satisfaction))
          << "iter " << iter << " session " << s;
    }
  }
}

TEST(ResolveServerSoA, EmptyDrawListResolvesEmpty) {
  ServerSpec spec;
  ServerResolveScratch scratch;
  EXPECT_TRUE(resolve_server(spec, {}, scratch).empty());
}

TEST(ResolveServerSoA, LanesExposeSuppliesForUtilAccumulation) {
  // hardware_tick reads scratch.lanes.supplied directly after resolve;
  // the lanes must match the transposed AoS output.
  ServerSpec spec;
  spec.num_gpus = 2;
  std::vector<PinnedDraw> draws;
  for (std::size_t s = 0; s < 9; ++s) {
    PinnedDraw d;
    d.draw.sid = SessionId{s};
    d.draw.demand = {30, 40, 1000, 1000};
    d.draw.allocation = {50, 50, 2000, 2000};
    d.gpu_index = static_cast<int>(s % 2);
    draws.push_back(d);
  }
  ServerResolveScratch scratch;
  const auto& out = resolve_server(spec, draws, scratch);
  for (std::size_t s = 0; s < draws.size(); ++s) {
    for (std::size_t k = 0; k < kNumDims; ++k) {
      EXPECT_TRUE(
          bits_equal(scratch.lanes.supplied[k][s], out[s].supplied.at(k)));
    }
  }
}

}  // namespace
}  // namespace cocg::hw
