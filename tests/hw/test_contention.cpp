#include "hw/contention.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "hw/server.h"

namespace cocg::hw {
namespace {

const ResourceVector kCap{100, 100, 8192, 8192};

SessionDraw draw(std::uint64_t sid, ResourceVector demand,
                 ResourceVector alloc) {
  return SessionDraw{SessionId{sid}, demand, alloc};
}

TEST(Contention, UnsaturatedFullySupplied) {
  const auto out = ContentionModel::resolve(
      kCap, {draw(1, {30, 40, 1000, 1000}, {50, 50, 2000, 2000}),
             draw(2, {20, 30, 1000, 1000}, {50, 50, 2000, 2000})});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].supplied, (ResourceVector{30, 40, 1000, 1000}));
  EXPECT_DOUBLE_EQ(out[0].satisfaction, 1.0);
  EXPECT_DOUBLE_EQ(out[1].satisfaction, 1.0);
}

TEST(Contention, AllocationCapsDemand) {
  const auto out = ContentionModel::resolve(
      kCap, {draw(1, {80, 80, 100, 100}, {40, 40, 100, 100})});
  EXPECT_EQ(out[0].supplied, (ResourceVector{40, 40, 100, 100}));
  EXPECT_DOUBLE_EQ(out[0].satisfaction, 0.5);
}

TEST(Contention, SaturatedPoolSplitsProportionally) {
  // Two sessions each want 80 GPU with generous allocations → pool (100)
  // splits 50/50.
  const auto out = ContentionModel::resolve(
      kCap, {draw(1, {10, 80, 100, 100}, {100, 100, 8192, 8192}),
             draw(2, {10, 80, 100, 100}, {100, 100, 8192, 8192})});
  EXPECT_DOUBLE_EQ(out[0].supplied.gpu(), 50.0);
  EXPECT_DOUBLE_EQ(out[1].supplied.gpu(), 50.0);
  EXPECT_NEAR(out[0].satisfaction, 50.0 / 80.0, 1e-12);
}

TEST(Contention, ProportionalNotEqual) {
  const auto out = ContentionModel::resolve(
      kCap, {draw(1, {10, 90, 100, 100}, {100, 100, 8192, 8192}),
             draw(2, {10, 30, 100, 100}, {100, 100, 8192, 8192})});
  // 120 desired into 100: scale 5/6.
  EXPECT_NEAR(out[0].supplied.gpu(), 75.0, 1e-9);
  EXPECT_NEAR(out[1].supplied.gpu(), 25.0, 1e-9);
}

TEST(Contention, PerDimensionIndependence) {
  // GPU saturated, CPU not: only GPU scales.
  const auto out = ContentionModel::resolve(
      kCap, {draw(1, {20, 80, 100, 100}, kCap),
             draw(2, {20, 80, 100, 100}, kCap)});
  EXPECT_DOUBLE_EQ(out[0].supplied.cpu(), 20.0);
  EXPECT_DOUBLE_EQ(out[0].supplied.gpu(), 50.0);
}

TEST(Contention, EmptyDrawsOk) {
  const auto out = ContentionModel::resolve(kCap, {});
  EXPECT_TRUE(out.empty());
}

TEST(Contention, OutputOrderMatchesInput) {
  const auto out = ContentionModel::resolve(
      kCap, {draw(7, {1, 1, 1, 1}, kCap), draw(3, {1, 1, 1, 1}, kCap)});
  EXPECT_EQ(out[0].sid.value, 7u);
  EXPECT_EQ(out[1].sid.value, 3u);
}

TEST(Contention, RejectsNonPositiveCapacity) {
  EXPECT_THROW(
      ContentionModel::resolve(ResourceVector{0, 100, 100, 100}, {}),
      ContractError);
}

// --- resolve_server: CPU/RAM pooled, GPU per device ---

TEST(ResolveServer, GpuIsolatedPerDevice) {
  ServerSpec spec;  // 2 GPUs
  std::vector<PinnedDraw> draws;
  draws.push_back({draw(1, {10, 80, 100, 100}, spec.per_gpu_capacity()), 0});
  draws.push_back({draw(2, {10, 80, 100, 100}, spec.per_gpu_capacity()), 1});
  const auto out = resolve_server(spec, draws);
  // Different devices: both fully supplied on GPU.
  EXPECT_DOUBLE_EQ(out[0].supplied.gpu(), 80.0);
  EXPECT_DOUBLE_EQ(out[1].supplied.gpu(), 80.0);
}

TEST(ResolveServer, GpuContendsWithinDevice) {
  ServerSpec spec;
  std::vector<PinnedDraw> draws;
  draws.push_back({draw(1, {10, 80, 100, 100}, spec.per_gpu_capacity()), 0});
  draws.push_back({draw(2, {10, 80, 100, 100}, spec.per_gpu_capacity()), 0});
  const auto out = resolve_server(spec, draws);
  EXPECT_DOUBLE_EQ(out[0].supplied.gpu(), 50.0);
  EXPECT_DOUBLE_EQ(out[1].supplied.gpu(), 50.0);
}

TEST(ResolveServer, CpuPooledAcrossDevices) {
  ServerSpec spec;
  std::vector<PinnedDraw> draws;
  draws.push_back({draw(1, {80, 10, 100, 100}, spec.per_gpu_capacity()), 0});
  draws.push_back({draw(2, {80, 10, 100, 100}, spec.per_gpu_capacity()), 1});
  const auto out = resolve_server(spec, draws);
  // 160 CPU desired into 100 → 50 each despite different GPUs.
  EXPECT_DOUBLE_EQ(out[0].supplied.cpu(), 50.0);
  EXPECT_DOUBLE_EQ(out[1].supplied.cpu(), 50.0);
  EXPECT_DOUBLE_EQ(out[0].supplied.gpu(), 10.0);
}

TEST(ResolveServer, ValidatesGpuIndex) {
  ServerSpec spec;
  std::vector<PinnedDraw> draws;
  draws.push_back({draw(1, {1, 1, 1, 1}, spec.per_gpu_capacity()), 5});
  EXPECT_THROW(resolve_server(spec, draws), ContractError);
}

// Property: total supplied never exceeds capacity on any pool.
class ResolveServerProp : public ::testing::TestWithParam<int> {};

TEST_P(ResolveServerProp, NeverExceedsCapacity) {
  const int n = GetParam();
  ServerSpec spec;
  std::vector<PinnedDraw> draws;
  for (int i = 0; i < n; ++i) {
    const double cpu = 20.0 + 13.0 * (i % 5);
    const double gpu = 30.0 + 17.0 * (i % 4);
    draws.push_back({draw(static_cast<std::uint64_t>(i),
                          {cpu, gpu, 1500, 1500}, spec.per_gpu_capacity()),
                     i % spec.num_gpus});
  }
  const auto out = resolve_server(spec, draws);
  double cpu_total = 0, ram_total = 0;
  std::vector<double> gpu_total(static_cast<std::size_t>(spec.num_gpus), 0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    cpu_total += out[i].supplied.cpu();
    ram_total += out[i].supplied.ram();
    gpu_total[static_cast<std::size_t>(draws[i].gpu_index)] +=
        out[i].supplied.gpu();
    EXPECT_GE(out[i].satisfaction, 0.0);
    EXPECT_LE(out[i].satisfaction, 1.0);
  }
  EXPECT_LE(cpu_total, spec.cpu_capacity_pct + 1e-9);
  EXPECT_LE(ram_total, spec.ram_mb + 1e-9);
  for (double g : gpu_total) EXPECT_LE(g, spec.gpu_capacity_pct + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Counts, ResolveServerProp,
                         ::testing::Values(1, 2, 3, 4, 6, 10));

}  // namespace
}  // namespace cocg::hw
