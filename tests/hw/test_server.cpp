#include "hw/server.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace cocg::hw {
namespace {

ServerSpec testbed() { return ServerSpec{}; }  // i7-7700 + 2x2080 defaults

TEST(ServerSpec, PaperTestbedDefaults) {
  const ServerSpec s = testbed();
  EXPECT_EQ(s.num_gpus, 2);
  EXPECT_EQ(s.ram_mb, 8192.0);
  const ResourceVector cap = s.per_gpu_capacity();
  EXPECT_EQ(cap.cpu(), 100.0);
  EXPECT_EQ(cap.gpu(), 100.0);
}

TEST(Server, PlaceAndLookup) {
  Server s(ServerId{0}, testbed());
  EXPECT_TRUE(s.place(SessionId{1}, 0, {10, 20, 1000, 1000}));
  EXPECT_TRUE(s.hosts(SessionId{1}));
  EXPECT_EQ(s.session_count(), 1u);
  EXPECT_EQ(s.placement(SessionId{1}).gpu_index, 0);
  EXPECT_FALSE(s.hosts(SessionId{2}));
  EXPECT_THROW(s.placement(SessionId{2}), ContractError);
}

TEST(Server, PlaceRejectsOverCapacity) {
  Server s(ServerId{0}, testbed());
  EXPECT_FALSE(s.place(SessionId{1}, 0, {101, 0, 0, 0}));
  EXPECT_FALSE(s.place(SessionId{1}, 0, {0, 0, 9000, 0}));
  EXPECT_EQ(s.session_count(), 0u);
}

TEST(Server, PlaceRejectsDuplicate) {
  Server s(ServerId{0}, testbed());
  ASSERT_TRUE(s.place(SessionId{1}, 0, {10, 10, 100, 100}));
  EXPECT_THROW(s.place(SessionId{1}, 1, {10, 10, 100, 100}), ContractError);
}

TEST(Server, PlaceValidatesGpuIndex) {
  Server s(ServerId{0}, testbed());
  EXPECT_THROW(s.place(SessionId{1}, 2, {1, 1, 1, 1}), ContractError);
  EXPECT_THROW(s.place(SessionId{1}, -1, {1, 1, 1, 1}), ContractError);
}

TEST(Server, GpuDimsIndependentPerDevice) {
  Server s(ServerId{0}, testbed());
  // 90% GPU on device 0 leaves device 1 fully free.
  ASSERT_TRUE(s.place(SessionId{1}, 0, {10, 90, 1000, 1000}));
  EXPECT_FALSE(s.place(SessionId{2}, 0, {10, 20, 100, 100}));
  EXPECT_TRUE(s.place(SessionId{3}, 1, {10, 90, 1000, 1000}));
}

TEST(Server, CpuSharedAcrossDevices) {
  Server s(ServerId{0}, testbed());
  ASSERT_TRUE(s.place(SessionId{1}, 0, {70, 10, 100, 100}));
  // Device 1 has GPU headroom but the CPU pool is nearly drained.
  EXPECT_FALSE(s.place(SessionId{2}, 1, {40, 10, 100, 100}));
  EXPECT_TRUE(s.place(SessionId{3}, 1, {30, 10, 100, 100}));
}

TEST(Server, AllocatedOnGpuAggregates) {
  Server s(ServerId{0}, testbed());
  ASSERT_TRUE(s.place(SessionId{1}, 0, {10, 30, 500, 600}));
  ASSERT_TRUE(s.place(SessionId{2}, 1, {20, 40, 700, 800}));
  const ResourceVector v0 = s.allocated_on_gpu(0);
  EXPECT_EQ(v0.cpu(), 30.0);   // CPU server-wide
  EXPECT_EQ(v0.gpu(), 30.0);   // only device-0 sessions
  EXPECT_EQ(v0.ram(), 1400.0); // RAM server-wide
  const ResourceVector v1 = s.allocated_on_gpu(1);
  EXPECT_EQ(v1.gpu(), 40.0);
  EXPECT_EQ(v1.gpu_mem(), 700.0);
}

TEST(Server, FreeOnGpuClamped) {
  Server s(ServerId{0}, testbed());
  ASSERT_TRUE(s.place(SessionId{1}, 0, {60, 50, 1000, 1000}));
  const ResourceVector free = s.free_on_gpu(0);
  EXPECT_EQ(free.cpu(), 40.0);
  EXPECT_EQ(free.gpu(), 50.0);
  EXPECT_TRUE(free.non_negative());
}

TEST(Server, UtilizationIsMaxDim) {
  Server s(ServerId{0}, testbed());
  ASSERT_TRUE(s.place(SessionId{1}, 0, {20, 80, 100, 100}));
  EXPECT_NEAR(s.utilization_on_gpu(0), 0.8, 1e-12);
  EXPECT_NEAR(s.utilization_on_gpu(1), 0.2, 1e-12);  // CPU leaks across
}

TEST(Server, ReallocateGrowWithinCapacity) {
  Server s(ServerId{0}, testbed());
  ASSERT_TRUE(s.place(SessionId{1}, 0, {10, 10, 100, 100}));
  EXPECT_TRUE(s.reallocate(SessionId{1}, {50, 60, 2000, 2000}));
  EXPECT_EQ(s.placement(SessionId{1}).allocation.gpu(), 60.0);
}

TEST(Server, ReallocateRejectsOvercommit) {
  Server s(ServerId{0}, testbed());
  ASSERT_TRUE(s.place(SessionId{1}, 0, {10, 90, 100, 100}));
  ASSERT_TRUE(s.place(SessionId{2}, 0, {10, 5, 100, 100}));
  EXPECT_FALSE(s.reallocate(SessionId{2}, {10, 20, 100, 100}));
  EXPECT_TRUE(s.reallocate(SessionId{2}, {10, 20, 100, 100},
                           /*allow_oversubscribe=*/true));
}

TEST(Server, ReallocateUnknownSession) {
  Server s(ServerId{0}, testbed());
  EXPECT_FALSE(s.reallocate(SessionId{9}, {1, 1, 1, 1}));
}

TEST(Server, RemoveFreesCapacity) {
  Server s(ServerId{0}, testbed());
  ASSERT_TRUE(s.place(SessionId{1}, 0, {10, 90, 100, 100}));
  EXPECT_TRUE(s.remove(SessionId{1}));
  EXPECT_FALSE(s.remove(SessionId{1}));
  EXPECT_TRUE(s.place(SessionId{2}, 0, {10, 90, 100, 100}));
}

TEST(Server, PlaceBestGpuPicksLeastLoaded) {
  Server s(ServerId{0}, testbed());
  ASSERT_TRUE(s.place(SessionId{1}, 0, {5, 60, 100, 100}));
  const auto gpu = s.place_best_gpu(SessionId{2}, {5, 30, 100, 100});
  ASSERT_TRUE(gpu.has_value());
  EXPECT_EQ(*gpu, 1);
}

TEST(Server, PlaceBestGpuNoneFits) {
  Server s(ServerId{0}, testbed());
  ASSERT_TRUE(s.place(SessionId{1}, 0, {5, 95, 100, 100}));
  ASSERT_TRUE(s.place(SessionId{2}, 1, {5, 95, 100, 100}));
  EXPECT_FALSE(s.place_best_gpu(SessionId{3}, {5, 10, 100, 100}).has_value());
}

TEST(Server, SessionIdsSorted) {
  Server s(ServerId{0}, testbed());
  ASSERT_TRUE(s.place(SessionId{5}, 0, {1, 1, 1, 1}));
  ASSERT_TRUE(s.place(SessionId{2}, 1, {1, 1, 1, 1}));
  ASSERT_TRUE(s.place(SessionId{9}, 0, {1, 1, 1, 1}));
  const auto ids = s.session_ids();
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0].value, 2u);
  EXPECT_EQ(ids[1].value, 5u);
  EXPECT_EQ(ids[2].value, 9u);
  const auto on0 = s.sessions_on_gpu(0);
  ASSERT_EQ(on0.size(), 2u);
  EXPECT_EQ(on0[0].value, 5u);
}

// The demand epoch is the platform resolve cache's invalidation key: every
// successful placement mutation must advance it, and failed mutations must
// not (a rejected place changes nothing a resolve could observe).
TEST(ServerEpoch, SuccessfulMutationsBump) {
  Server s(ServerId{0}, testbed());
  const std::uint64_t e0 = s.demand_epoch();
  ASSERT_TRUE(s.place(SessionId{1}, 0, {10, 20, 100, 100}));
  const std::uint64_t e1 = s.demand_epoch();
  EXPECT_GT(e1, e0);
  ASSERT_TRUE(s.reallocate(SessionId{1}, {20, 30, 200, 200}));
  const std::uint64_t e2 = s.demand_epoch();
  EXPECT_GT(e2, e1);
  ASSERT_TRUE(s.remove(SessionId{1}));
  EXPECT_GT(s.demand_epoch(), e2);
}

TEST(ServerEpoch, FailedMutationsDoNotBump) {
  Server s(ServerId{0}, testbed());
  ASSERT_TRUE(s.place(SessionId{1}, 0, {10, 90, 100, 100}));
  const std::uint64_t e = s.demand_epoch();
  EXPECT_FALSE(s.place(SessionId{2}, 0, {10, 20, 100, 100}));  // won't fit
  EXPECT_FALSE(s.reallocate(SessionId{1}, {10, 120, 100, 100}));
  EXPECT_FALSE(s.reallocate(SessionId{9}, {1, 1, 1, 1}));  // unknown sid
  EXPECT_FALSE(s.remove(SessionId{9}));
  EXPECT_EQ(s.demand_epoch(), e);
}

TEST(ServerEpoch, PlaceBestGpuBumpsExactlyOnSuccess) {
  Server s(ServerId{0}, testbed());
  const std::uint64_t e0 = s.demand_epoch();
  ASSERT_TRUE(s.place_best_gpu(SessionId{1}, {5, 95, 100, 100}).has_value());
  ASSERT_TRUE(s.place_best_gpu(SessionId{2}, {5, 95, 100, 100}).has_value());
  const std::uint64_t e2 = s.demand_epoch();
  EXPECT_EQ(e2, e0 + 2);
  EXPECT_FALSE(s.place_best_gpu(SessionId{3}, {5, 10, 100, 100}).has_value());
  EXPECT_EQ(s.demand_epoch(), e2);
}

TEST(ServerEpoch, ExternalBumpAvailableForPolicyInvalidation) {
  // hold_loading and similar regulator actions invalidate conservatively
  // through the public bump; it must be monotone and cheap.
  Server s(ServerId{0}, testbed());
  const std::uint64_t e = s.demand_epoch();
  s.bump_demand_epoch();
  EXPECT_EQ(s.demand_epoch(), e + 1);
}

TEST(Server, RejectsNegativeAllocation) {
  Server s(ServerId{0}, testbed());
  EXPECT_THROW(s.place(SessionId{1}, 0, {-1, 0, 0, 0}), ContractError);
}

TEST(Server, SpecValidation) {
  ServerSpec bad = testbed();
  bad.num_gpus = 0;
  EXPECT_THROW(Server(ServerId{0}, bad), ContractError);
}

// Property: filling a GPU view with k equal sessions succeeds exactly while
// the sum fits.
class ServerFillProp : public ::testing::TestWithParam<int> {};

TEST_P(ServerFillProp, AdmitsExactlyWhileFits) {
  const int k = GetParam();
  Server s(ServerId{0}, testbed());
  const double share = 100.0 / k;
  for (int i = 0; i < k; ++i) {
    EXPECT_TRUE(s.place(SessionId{static_cast<uint64_t>(i)}, 0,
                        {share / 2, share, 10, 10}))
        << "session " << i << " of " << k;
  }
  // One more GPU-heavy session cannot fit on device 0.
  EXPECT_FALSE(s.place(SessionId{999}, 0, {0.5, share, 10, 10}));
}

INSTANTIATE_TEST_SUITE_P(Counts, ServerFillProp,
                         ::testing::Values(1, 2, 4, 5, 10));

}  // namespace
}  // namespace cocg::hw
