// Session-level quiescence contract: quiescent_ticks() must count exactly
// the pure-repetition ticks to the next internal boundary, and
// fast_forward(w) must land bit-for-bit on the state w per-tick calls
// would reach — including every floating-point accumulator and the RNG
// stream (the session draws nothing across a quiescent window).
#include <gtest/gtest.h>

#include <ios>
#include <sstream>
#include <string>

#include "common/check.h"
#include "game/library.h"
#include "game/plan.h"
#include "game/session.h"

namespace cocg::game {
namespace {

SessionConfig quiet() {
  SessionConfig cfg;
  cfg.spike_prob = 0.0;
  return cfg;
}

/// Deterministic three-stage game: jitter-free clusters so demand is a
/// fixed point between stage boundaries. Loading 6 s, a single-cluster
/// 40 s level, then a two-cluster 30 s stage exercising rotation.
GameSpec det_spec() {
  GameSpec g;
  g.id = GameId{902};
  g.name = "DetGame";
  g.category = GameCategory::kWeb;

  FrameClusterSpec load;
  load.id = 0;
  load.name = "load";
  load.centroid = ResourceVector{30.0, 5.0, 600.0, 400.0};
  load.fps_base = 0.0;
  FrameClusterSpec play;
  play.id = 1;
  play.name = "play";
  play.centroid = ResourceVector{12.0, 24.0, 800.0, 440.0};
  play.fps_base = 60.0;
  FrameClusterSpec boss;
  boss.id = 2;
  boss.name = "boss";
  boss.centroid = ResourceVector{16.0, 30.0, 820.0, 460.0};
  boss.fps_base = 60.0;
  g.clusters = {load, play, boss};

  StageTypeSpec loading;
  loading.id = 0;
  loading.name = "loading";
  loading.kind = StageKind::kLoading;
  loading.clusters = {0};
  loading.min_dwell_ms = 6000;
  loading.max_dwell_ms = 6000;
  StageTypeSpec level;
  level.id = 1;
  level.name = "level";
  level.kind = StageKind::kExecution;
  level.clusters = {1};
  level.min_dwell_ms = 40000;
  level.max_dwell_ms = 40000;
  StageTypeSpec fights;
  fights.id = 2;
  fights.name = "fights";
  fights.kind = StageKind::kExecution;
  fights.clusters = {1, 2};
  fights.min_dwell_ms = 30000;
  fights.max_dwell_ms = 30000;
  fights.shuffle_clusters = false;
  g.stage_types = {loading, level, fights};
  g.loading_stage_type = 0;

  ScriptSpec script;
  script.name = "full";
  script.segments.push_back(ScriptSegment{1, 1, 1, 0.0});
  script.segments.push_back(ScriptSegment{2, 1, 1, 0.0});
  g.scripts = {script};
  return g;
}

GameSession make_session(const GameSpec& spec, std::uint64_t seed,
                         SessionConfig cfg = quiet()) {
  Rng rng(seed);
  auto plan = generate_plan(spec, 0, 1, rng);
  return GameSession(SessionId{1}, &spec, 0, std::move(plan), rng.fork(),
                     cfg);
}

/// Every observable accumulator, doubles in hexfloat: two dumps are equal
/// iff the states are bit-identical.
std::string dump(const GameSession& s) {
  std::ostringstream os;
  os << std::hexfloat;
  os << s.elapsed_ms() << '|' << s.execution_ms() << '|' << s.loading_ms()
     << '|' << s.qos_violation_ms() << '|' << s.loading_extension_ms()
     << '|' << s.last_fps() << '|' << s.mean_fps() << '|'
     << s.mean_fps_ratio() << '|' << s.demand_version() << '|'
     << s.stage_index() << '|' << s.finished();
  if (s.started() && !s.finished()) {
    const ResourceVector d = s.demand();
    for (std::size_t i = 0; i < kNumDims; ++i) os << '|' << d.at(i);
  }
  return os.str();
}

/// Advance to the first execution stage at full supply.
void reach_execution(GameSession& s, TimeMs& now) {
  while (!s.finished() && s.stage_kind() == StageKind::kLoading) {
    s.tick(now, s.demand());
    now += 1000;
  }
  ASSERT_EQ(s.stage_kind(), StageKind::kExecution);
}

TEST(SessionQuiescence, JitteredClusterIsNeverQuiescent) {
  static const GameSpec g = make_contra();  // jittered clusters
  GameSession s = make_session(g, 1);
  s.begin(0);
  EXPECT_EQ(s.quiescent_ticks(s.demand()), 0);
}

TEST(SessionQuiescence, LoadingCountsTicksToCompletion) {
  static const GameSpec g = det_spec();
  GameSession s = make_session(g, 2);
  s.begin(0);
  // Full supply: 6 s dwell at 1 s ticks → advance on tick 6 → 5 repeats.
  EXPECT_EQ(s.quiescent_ticks(s.demand()), 5);
  // Half CPU: per-tick progress 500 ms → advance on tick 12 → 11 repeats.
  ResourceVector half = s.demand();
  half[Dim::kCpuPct] *= 0.5;
  EXPECT_EQ(s.quiescent_ticks(half), 11);
  // The count stays consistent as progress accrues.
  s.tick(0, s.demand());
  EXPECT_EQ(s.quiescent_ticks(s.demand()), 4);
}

TEST(SessionQuiescence, HeldOrStarvedLoadingIsUnbounded) {
  static const GameSpec g = det_spec();
  GameSession s = make_session(g, 3);
  s.begin(0);
  s.set_loading_hold(true);
  EXPECT_EQ(s.quiescent_ticks(s.demand()),
            GameSession::kQuiescentUnbounded);
  s.set_loading_hold(false);
  EXPECT_EQ(s.quiescent_ticks(ResourceVector{}),  // zero CPU: no progress
            GameSession::kQuiescentUnbounded);
}

TEST(SessionQuiescence, SpikesDisqualifyExecution) {
  static const GameSpec g = det_spec();
  SessionConfig cfg;  // default spike_prob > 0
  GameSession s = make_session(g, 4, cfg);
  TimeMs now = 0;
  s.begin(now);
  reach_execution(s, now);
  EXPECT_EQ(s.quiescent_ticks(s.demand()), 0);
}

TEST(SessionQuiescence, ExecutionCountsToStageBoundary) {
  static const GameSpec g = det_spec();
  GameSession s = make_session(g, 5);
  TimeMs now = 0;
  s.begin(now);
  reach_execution(s, now);
  // 40 s single-cluster stage: advance on tick 40 → 39 repeats on entry.
  EXPECT_EQ(s.quiescent_ticks(s.demand()), 39);
  s.tick(now, s.demand());
  now += 1000;
  EXPECT_EQ(s.quiescent_ticks(s.demand()), 38);
}

TEST(SessionQuiescence, ExecutionStopsAtClusterRotation) {
  static const GameSpec g = det_spec();
  GameSession s = make_session(g, 6);
  TimeMs now = 0;
  s.begin(now);
  // Run through the 40 s level (and the interleaved loading stage the
  // plan inserts) into the two-cluster 30 s stage.
  while (s.stage_type() != 2) {
    s.tick(now, s.demand());
    now += 1000;
    ASSERT_FALSE(s.finished());
  }
  // Share = 15 s per cluster: the rotation tick (15) must run for real, so
  // only 14 repeats are quiescent at stage entry.
  EXPECT_EQ(s.quiescent_ticks(s.demand()), 14);
  const int before = s.current_cluster();
  for (int k = 0; k < 14; ++k) {
    s.tick(now, s.demand());
    now += 1000;
    EXPECT_EQ(s.current_cluster(), before);
  }
  s.tick(now, s.demand());  // the rotation tick
  now += 1000;
  EXPECT_NE(s.current_cluster(), before);
}

TEST(SessionQuiescence, DemandVersionBumpsOnlyOnValueChange) {
  static const GameSpec g = det_spec();
  GameSession s = make_session(g, 7);
  TimeMs now = 0;
  s.begin(now);
  const std::uint64_t v0 = s.demand_version();
  s.tick(now, s.demand());  // mid-loading: demand is a fixed point
  now += 1000;
  EXPECT_EQ(s.demand_version(), v0);
  reach_execution(s, now);  // stage entry changes the centroid
  EXPECT_GT(s.demand_version(), v0);
  const std::uint64_t v1 = s.demand_version();
  s.tick(now, s.demand());
  EXPECT_EQ(s.demand_version(), v1);
}

TEST(SessionQuiescence, FastForwardMatchesTickLoopInExecution) {
  static const GameSpec g = det_spec();
  GameSession a = make_session(g, 8);
  GameSession b = make_session(g, 8);
  TimeMs now_a = 0;
  TimeMs now_b = 0;
  a.begin(now_a);
  b.begin(now_b);
  reach_execution(a, now_a);
  reach_execution(b, now_b);
  ASSERT_EQ(dump(a), dump(b));

  // Starve the stage so the window accrues degraded FPS, a fractional
  // fps-ratio and QoS violation time — the accumulators that would drift
  // first if fast_forward reassociated the arithmetic.
  ResourceVector supplied = a.demand();
  supplied *= 0.5;  // realized ≈ 21 fps: below the 30-frame QoS floor
  const std::int64_t q = a.quiescent_ticks(supplied);
  ASSERT_GE(q, 2);
  a.fast_forward(q, supplied);
  for (std::int64_t k = 0; k < q; ++k) {
    b.tick(now_b, supplied);
    now_b += 1000;
  }
  now_a += 1000 * q;
  EXPECT_EQ(dump(a), dump(b));

  // The window is seamless: both sessions continue identically to the end.
  while (!a.finished()) {
    a.tick(now_a, a.demand());
    b.tick(now_b, b.demand());
    now_a += 1000;
    now_b += 1000;
  }
  EXPECT_TRUE(b.finished());
  EXPECT_EQ(dump(a), dump(b));
  EXPECT_EQ(a.end_time() - a.start_time(), b.end_time() - b.start_time());
}

TEST(SessionQuiescence, FastForwardMatchesTickLoopInLoading) {
  static const GameSpec g = det_spec();
  GameSession a = make_session(g, 9);
  GameSession b = make_session(g, 9);
  a.begin(0);
  b.begin(0);
  // 40% CPU: per-tick progress truncates to 400 ms — the case where
  // multiply-then-truncate would diverge from truncate-then-multiply.
  ResourceVector supplied = a.demand();
  supplied[Dim::kCpuPct] *= 0.4;
  const std::int64_t q = a.quiescent_ticks(supplied);
  ASSERT_GE(q, 2);
  a.fast_forward(q, supplied);
  TimeMs now = 0;
  for (std::int64_t k = 0; k < q; ++k) {
    b.tick(now, supplied);
    now += 1000;
  }
  EXPECT_EQ(dump(a), dump(b));
  EXPECT_EQ(a.stage_kind(), StageKind::kLoading);
  // One more tick at that supply crosses the boundary on both.
  a.tick(1000 * q, supplied);
  b.tick(now, supplied);
  EXPECT_EQ(dump(a), dump(b));
}

TEST(SessionQuiescence, FastForwardRefusesToCrossBoundary) {
  static const GameSpec g = det_spec();
  GameSession s = make_session(g, 10);
  TimeMs now = 0;
  s.begin(now);
  reach_execution(s, now);
  const ResourceVector supplied = s.demand();
  const std::int64_t q = s.quiescent_ticks(supplied);
  ASSERT_GE(q, 1);
  EXPECT_THROW(s.fast_forward(q + 1, supplied), ContractError);
}

}  // namespace
}  // namespace cocg::game
