#include "game/spec.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "game/library.h"

namespace cocg::game {
namespace {

TEST(GameSpec, ClusterLookupValidatesIds) {
  const GameSpec g = make_contra();
  EXPECT_EQ(g.cluster(0).id, 0);
  EXPECT_EQ(g.cluster(1).name, "running");
  EXPECT_THROW(g.cluster(2), ContractError);
  EXPECT_THROW(g.cluster(-1), ContractError);
}

TEST(GameSpec, StageTypeLookup) {
  const GameSpec g = make_genshin();
  EXPECT_EQ(g.stage_type(0).kind, StageKind::kLoading);
  EXPECT_EQ(g.stage_type(2).name, "Battle");
  EXPECT_THROW(g.stage_type(99), ContractError);
}

TEST(GameSpec, PeakDemandIsMaxOverExecutionClusters) {
  const GameSpec g = make_genshin();
  const ResourceVector peak = g.peak_demand();
  // Battle cluster dominates GPU at 78%.
  EXPECT_DOUBLE_EQ(peak.gpu(), 78.0);
  // Loading's 58% CPU must NOT be included (execution stages only).
  EXPECT_DOUBLE_EQ(peak.cpu(), 50.0);
}

TEST(GameSpec, MeanExecutionDemandBetweenMinAndPeak) {
  for (const auto& g : paper_suite()) {
    const ResourceVector mean = g.mean_execution_demand();
    const ResourceVector peak = g.peak_demand();
    EXPECT_TRUE(mean.fits_within(peak)) << g.name;
    EXPECT_TRUE(mean.non_negative()) << g.name;
  }
}

TEST(GameSpec, CategoryNames) {
  EXPECT_STREQ(category_name(GameCategory::kWeb), "web");
  EXPECT_STREQ(category_name(GameCategory::kMobile), "mobile");
  EXPECT_STREQ(category_name(GameCategory::kConsole), "console");
  EXPECT_STREQ(category_name(GameCategory::kMoba), "mmorpg/moba");
}

TEST(GameSpec, ScriptStageTypeCountValidatesIndex) {
  const GameSpec g = make_contra();
  EXPECT_THROW(g.script_stage_type_count(99), ContractError);
}

}  // namespace
}  // namespace cocg::game
