#include "game/library.h"

#include <gtest/gtest.h>

#include <set>

#include "common/check.h"

namespace cocg::game {
namespace {

TEST(Library, SuiteHasFivePaperGames) {
  const auto suite = paper_suite();
  ASSERT_EQ(suite.size(), 5u);
  std::set<std::string> names;
  for (const auto& g : suite) names.insert(g.name);
  EXPECT_TRUE(names.count("DOTA2"));
  EXPECT_TRUE(names.count("CSGO"));
  EXPECT_TRUE(names.count("Genshin Impact"));
  EXPECT_TRUE(names.count("Devil May Cry"));
  EXPECT_TRUE(names.count("Contra"));
}

TEST(Library, Fig14ClusterCounts) {
  EXPECT_EQ(make_contra().num_clusters(), 2);
  EXPECT_EQ(make_csgo().num_clusters(), 4);
  EXPECT_EQ(make_genshin().num_clusters(), 4);
  EXPECT_EQ(make_dota2().num_clusters(), 5);
  EXPECT_EQ(make_devil_may_cry().num_clusters(), 6);
}

TEST(Library, TableIStageTypeCounts) {
  // Table I's "# of stage type" column, script by script.
  const GameSpec dota2 = make_dota2();
  EXPECT_EQ(dota2.script_stage_type_count(0), 3);
  EXPECT_EQ(dota2.script_stage_type_count(1), 3);

  const GameSpec csgo = make_csgo();
  EXPECT_EQ(csgo.script_stage_type_count(0), 4);
  EXPECT_EQ(csgo.script_stage_type_count(1), 3);

  const GameSpec dmc = make_devil_may_cry();
  EXPECT_EQ(dmc.script_stage_type_count(0), 2);
  EXPECT_EQ(dmc.script_stage_type_count(1), 4);
  EXPECT_EQ(dmc.script_stage_type_count(2), 6);

  const GameSpec genshin = make_genshin();
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(genshin.script_stage_type_count(s), 5);
  }

  const GameSpec contra = make_contra();
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(contra.script_stage_type_count(s), 2);
  }
}

TEST(Library, Fig7CategoryQuadrants) {
  EXPECT_EQ(make_contra().category, GameCategory::kWeb);
  EXPECT_EQ(make_genshin().category, GameCategory::kMobile);
  EXPECT_EQ(make_devil_may_cry().category, GameCategory::kConsole);
  EXPECT_EQ(make_dota2().category, GameCategory::kMoba);
  EXPECT_EQ(make_csgo().category, GameCategory::kMoba);
}

TEST(Library, FpsCapsPerPaper) {
  // §V-C2: Genshin/DMC locked to 60; CSGO/DOTA2 uncapped.
  EXPECT_EQ(make_genshin().fps_cap, 60.0);
  EXPECT_EQ(make_devil_may_cry().fps_cap, 60.0);
  EXPECT_EQ(make_csgo().fps_cap, 0.0);
  EXPECT_EQ(make_dota2().fps_cap, 0.0);
}

TEST(Library, LoadingSignatureHighCpuLowGpu) {
  // Observation 3: loading stages burn CPU with a near-idle GPU.
  for (const auto& g : paper_suite()) {
    const auto& loading = g.stage_type(g.loading_stage_type);
    ASSERT_EQ(loading.kind, StageKind::kLoading) << g.name;
    ASSERT_EQ(loading.clusters.size(), 1u) << g.name;
    const auto& c = g.cluster(loading.clusters[0]);
    EXPECT_LT(c.centroid.gpu(), 15.0) << g.name;
    EXPECT_GT(c.centroid.cpu(), 20.0) << g.name;
  }
}

TEST(Library, LoadingDwellWithinPaperRange) {
  // §V-C1: loading stages run 5–30 s.
  for (const auto& g : paper_suite()) {
    const auto& loading = g.stage_type(g.loading_stage_type);
    EXPECT_GE(loading.min_dwell_ms, 5000) << g.name;
    EXPECT_LE(loading.max_dwell_ms, 30000) << g.name;
  }
}

TEST(Library, PeakGpuMatchesFig9) {
  // Fig. 9: Genshin peaks at ≈78% GPU, DOTA2 at ≈43%.
  EXPECT_DOUBLE_EQ(make_genshin().peak_demand().gpu(), 78.0);
  EXPECT_DOUBLE_EQ(make_dota2().peak_demand().gpu(), 43.0);
}

TEST(Library, HardPairExceedsOneServer) {
  // Fig. 11: DOTA2 + Devil May Cry peak sums exceed a server's GPU.
  const double sum = make_dota2().peak_demand().gpu() +
                     make_devil_may_cry().peak_demand().gpu();
  EXPECT_GT(sum, 100.0);
}

TEST(Library, ShortGameFlags) {
  // §IV-C2 "distinguish game length": Contra and Genshin runs are short.
  EXPECT_TRUE(make_contra().short_game);
  EXPECT_TRUE(make_genshin().short_game);
  EXPECT_FALSE(make_dota2().short_game);
  EXPECT_FALSE(make_csgo().short_game);
  EXPECT_FALSE(make_devil_may_cry().short_game);
}

TEST(Library, HonkaiOpenWorldModel) {
  // Fig. 2's game: three scenes + loading, long execution stages (§III's
  // open-world treatment).
  const GameSpec g = make_honkai();
  EXPECT_EQ(g.num_clusters(), 4);
  EXPECT_EQ(g.num_stage_types(), 4);
  const auto& loading = g.stage_type(g.loading_stage_type);
  EXPECT_EQ(loading.kind, StageKind::kLoading);
  // Open-world stages dwell far longer than the loading stages.
  for (const auto& st : g.stage_types) {
    if (st.kind != StageKind::kExecution) continue;
    EXPECT_GE(st.min_dwell_ms, 4 * loading.max_dwell_ms) << st.name;
  }
  // Fig. 2's peak scene is the instance fight.
  EXPECT_DOUBLE_EQ(g.peak_demand().gpu(), 74.0);
  // Not in the evaluation suite.
  for (const auto& s : paper_suite()) EXPECT_NE(s.name, g.name);
}

TEST(Library, LookupByName) {
  EXPECT_EQ(game_by_name("DOTA2").name, "DOTA2");
  EXPECT_THROW(game_by_name("Minecraft"), ContractError);
}

TEST(Library, AllSegmentsReferenceExecutionStages) {
  for (const auto& g : paper_suite()) {
    for (const auto& script : g.scripts) {
      for (const auto& seg : script.segments) {
        ASSERT_GE(seg.stage_type, 0) << g.name;
        ASSERT_LT(seg.stage_type, g.num_stage_types()) << g.name;
        EXPECT_EQ(g.stage_type(seg.stage_type).kind, StageKind::kExecution)
            << g.name << "/" << script.name;
        EXPECT_GE(seg.min_repeat, 1);
        EXPECT_GE(seg.max_repeat, seg.min_repeat);
        EXPECT_GE(seg.skip_prob, 0.0);
        EXPECT_LT(seg.skip_prob, 1.0);
      }
    }
  }
}

TEST(Library, StageTypeBoundTwoToTheN) {
  // §IV-A2: a game with N clusters has at most 2^N stage types; the suite's
  // designed catalogs respect the tighter empirical 2N bound.
  for (const auto& g : paper_suite()) {
    EXPECT_LE(g.num_stage_types(), 2 * g.num_clusters()) << g.name;
  }
}

}  // namespace
}  // namespace cocg::game
