#include "game/session.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/check.h"
#include "game/library.h"

namespace cocg::game {
namespace {

/// Session config without stochastic spikes, for determinism-sensitive
/// assertions.
SessionConfig quiet() {
  SessionConfig cfg;
  cfg.spike_prob = 0.0;
  return cfg;
}

GameSession make_session(const GameSpec& spec, std::size_t script,
                         std::uint64_t seed, SessionConfig cfg = quiet()) {
  Rng rng(seed);
  auto plan = generate_plan(spec, script, 1, rng);
  return GameSession(SessionId{1}, &spec, script, std::move(plan),
                     rng.fork(), cfg);
}

/// Run to completion at full supply; returns total elapsed ms.
DurationMs run_full_supply(GameSession& s) {
  TimeMs now = 0;
  s.begin(now);
  while (!s.finished()) {
    s.tick(now, s.demand());
    now += 1000;
  }
  return s.elapsed_ms();
}

TEST(Session, LifecycleBasics) {
  static const GameSpec g = make_contra();
  GameSession s = make_session(g, 0, 1);
  EXPECT_FALSE(s.started());
  s.begin(0);
  EXPECT_TRUE(s.started());
  EXPECT_FALSE(s.finished());
  EXPECT_EQ(s.stage_kind(), StageKind::kLoading);  // init loading
  EXPECT_THROW(s.begin(0), ContractError);         // double begin
}

TEST(Session, FullSupplyRunsNominalDuration) {
  static const GameSpec g = make_contra();
  GameSession s = make_session(g, 0, 2);
  const DurationMs nominal = plan_nominal_duration(s.plan());
  const DurationMs elapsed = run_full_supply(s);
  // At full supply loading never stretches: elapsed ≈ nominal (tick
  // rounding may add up to one tick per stage).
  EXPECT_GE(elapsed, nominal - 1000);
  EXPECT_LE(elapsed,
            nominal + 1000 * static_cast<DurationMs>(s.plan_size()));
  EXPECT_EQ(s.loading_extension_ms(), 0);
  EXPECT_TRUE(s.finished());
  EXPECT_EQ(s.end_time(), s.start_time() + elapsed);
}

TEST(Session, DemandMatchesActiveClusterCentroid) {
  static const GameSpec g = make_contra();
  GameSession s = make_session(g, 0, 3);
  s.begin(0);
  // During init loading the demand is near the loading centroid.
  const ResourceVector d = s.demand();
  const ResourceVector c = g.cluster(0).centroid;
  EXPECT_NEAR(d.cpu(), c.cpu(), 5 * g.cluster(0).jitter.cpu() + 1.0);
  EXPECT_LT(d.gpu(), 15.0);
}

TEST(Session, StarvedLoadingStretches) {
  static const GameSpec g = make_contra();
  GameSession full = make_session(g, 0, 4);
  GameSession starved = make_session(g, 0, 4);

  // Full-supply loading time.
  TimeMs now = 0;
  full.begin(now);
  while (!full.finished() && full.stage_kind() == StageKind::kLoading) {
    full.tick(now, full.demand());
    now += 1000;
  }
  const DurationMs t_full = full.loading_ms();

  // Half-CPU during every loading stage → loading takes about twice as
  // long over the whole run (extension is accounted at plan granularity).
  now = 0;
  starved.begin(now);
  DurationMs first_loading = 0;
  bool in_first = true;
  while (!starved.finished()) {
    ResourceVector supplied = starved.demand();
    if (starved.stage_kind() == StageKind::kLoading) {
      supplied[Dim::kCpuPct] *= 0.5;
      if (in_first) first_loading += 1000;
    } else {
      in_first = false;
    }
    starved.tick(now, supplied);
    now += 1000;
  }
  EXPECT_GE(first_loading, 2 * t_full - 2000);
  EXPECT_GT(starved.loading_extension_ms(), 0);
}

TEST(Session, LoadingHoldFreezesProgress) {
  static const GameSpec g = make_contra();
  GameSession s = make_session(g, 0, 5);
  TimeMs now = 0;
  s.begin(now);
  s.set_loading_hold(true);
  for (int i = 0; i < 60; ++i) {
    s.tick(now, s.demand());
    now += 1000;
  }
  // Still loading after 60 s of hold (nominal loading is 5–8 s).
  EXPECT_EQ(s.stage_kind(), StageKind::kLoading);
  s.set_loading_hold(false);
  while (s.stage_kind() == StageKind::kLoading && !s.finished()) {
    s.tick(now, s.demand());
    now += 1000;
  }
  EXPECT_EQ(s.stage_kind(), StageKind::kExecution);
}

TEST(Session, ExecutionAdvancesEvenWhenStarved) {
  static const GameSpec g = make_contra();
  GameSession a = make_session(g, 0, 6);
  GameSession b = make_session(g, 0, 6);
  // a at full supply, b starved during execution: same wall-clock length
  // apart from loading stretch (none here since loading fully supplied).
  auto run = [](GameSession& s, double exec_factor) {
    TimeMs now = 0;
    s.begin(now);
    while (!s.finished()) {
      ResourceVector supplied = s.demand();
      if (s.stage_kind() == StageKind::kExecution) supplied *= exec_factor;
      s.tick(now, supplied);
      now += 1000;
    }
    return s.elapsed_ms();
  };
  EXPECT_EQ(run(a, 1.0), run(b, 0.5));
}

TEST(Session, FpsZeroDuringLoading) {
  static const GameSpec g = make_genshin();
  GameSession s = make_session(g, 0, 7);
  TimeMs now = 0;
  s.begin(now);
  s.tick(now, s.demand());
  EXPECT_EQ(s.stage_kind() == StageKind::kLoading ? s.last_fps() : 0.0, 0.0);
}

TEST(Session, FpsCapRespected) {
  static const GameSpec g = make_genshin();  // capped at 60
  GameSession s = make_session(g, 0, 8);
  TimeMs now = 0;
  s.begin(now);
  while (!s.finished()) {
    s.tick(now, s.demand());
    if (s.last_fps() > 0.0) {
      EXPECT_LE(s.last_fps(), 60.0);
    }
    now += 1000;
  }
}

TEST(Session, FpsDegradesUnderStarvation) {
  static const GameSpec g = make_genshin();
  GameSession s = make_session(g, 0, 9);
  TimeMs now = 0;
  s.begin(now);
  // Reach the first execution stage at full supply.
  while (!s.finished() && s.stage_kind() == StageKind::kLoading) {
    s.tick(now, s.demand());
    now += 1000;
  }
  // Starve GPU to 50%.
  ResourceVector supplied = s.demand();
  supplied[Dim::kGpuPct] *= 0.5;
  s.tick(now, supplied);
  const double expected = s.achievable_fps() * std::pow(0.5, 1.5);
  EXPECT_NEAR(s.last_fps(), expected, expected * 0.25);
  EXPECT_LT(s.last_fps(), 30.0);  // 60 * 0.35 ≈ 21 → QoS violation
  EXPECT_GT(s.qos_violation_ms(), 0);
}

TEST(Session, MeanFpsRatioOneAtFullSupply) {
  static const GameSpec g = make_contra();
  GameSession s = make_session(g, 0, 10);
  run_full_supply(s);
  EXPECT_NEAR(s.mean_fps_ratio(), 1.0, 0.01);
  EXPECT_EQ(s.qos_violation_ms(), 0);
}

TEST(Session, StageHistoryMatchesPlan) {
  static const GameSpec g = make_contra();
  GameSession s = make_session(g, 1, 11);  // two levels
  run_full_supply(s);
  EXPECT_EQ(s.stage_history(), plan_stage_types(s.plan()));
}

TEST(Session, ExecutionAndLoadingTimesPartitionElapsed) {
  static const GameSpec g = make_genshin();
  GameSession s = make_session(g, 0, 12);
  const DurationMs elapsed = run_full_supply(s);
  EXPECT_EQ(s.execution_ms() + s.loading_ms(), elapsed);
}

TEST(Session, MultiClusterStageVisitsAllClusters) {
  static const GameSpec g = make_dota2();
  // Script 0 contains the two-cluster "Fights" stage.
  GameSession s = make_session(g, 0, 13);
  TimeMs now = 0;
  s.begin(now);
  std::set<int> seen;
  while (!s.finished()) {
    if (s.stage_type() == 2) seen.insert(s.current_cluster());
    s.tick(now, s.demand());
    now += 1000;
  }
  EXPECT_EQ(seen.size(), 2u);  // teamfight + push both visited
}

TEST(Session, DemandAfterFinishThrows) {
  static const GameSpec g = make_contra();
  GameSession s = make_session(g, 0, 14);
  run_full_supply(s);
  EXPECT_THROW(s.demand(), ContractError);
  EXPECT_EQ(s.stage_type(), -1);
}

TEST(Session, SpikesOccurWhenEnabled) {
  static const GameSpec g = make_genshin();
  SessionConfig cfg;
  cfg.spike_prob = 0.05;  // aggressive for the test
  cfg.spike_factor = 2.0;
  GameSession s = make_session(g, 0, 15, cfg);
  TimeMs now = 0;
  s.begin(now);
  double max_gpu = 0.0;
  while (!s.finished()) {
    if (s.stage_kind() == StageKind::kExecution) {
      max_gpu = std::max(max_gpu, s.demand().gpu());
    }
    s.tick(now, s.demand());
    now += 1000;
  }
  // A 2x spike pushes GPU demand well above the 78% battle centroid.
  EXPECT_GT(max_gpu, 100.0);
}

// Property: across all games/scripts, full-supply sessions terminate and
// deliver sane QoS accounting.
class SessionSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(SessionSweep, TerminatesWithCleanAccounting) {
  const auto [game_idx, seed] = GetParam();
  static const auto suite = paper_suite();
  const GameSpec& g = suite[static_cast<std::size_t>(game_idx)];
  for (std::size_t script = 0; script < g.scripts.size(); ++script) {
    GameSession s = make_session(g, script, seed);
    const DurationMs elapsed = run_full_supply(s);
    EXPECT_GT(elapsed, 0) << g.name;
    EXPECT_TRUE(s.finished());
    EXPECT_EQ(s.loading_extension_ms(), 0) << g.name;
    EXPECT_GE(s.mean_fps_ratio(), 0.99) << g.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGames, SessionSweep,
    ::testing::Combine(::testing::Range(0, 5),
                       ::testing::Values(21ULL, 22ULL)));

}  // namespace
}  // namespace cocg::game
