#include "game/plan.h"

#include <gtest/gtest.h>

#include <set>

#include "common/check.h"
#include "game/library.h"

namespace cocg::game {
namespace {

TEST(Plan, AlternatesLoadingAndExecution) {
  const GameSpec g = make_contra();
  Rng rng(1);
  const auto plan = generate_plan(g, 2, 1, rng);  // first three levels
  ASSERT_GE(plan.size(), 2u);
  // Structure: L, E, L, E, L, E, L (loading between and around stages).
  EXPECT_EQ(plan[0].stage_type, g.loading_stage_type);
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const bool expect_loading = (i % 2 == 0);
    EXPECT_EQ(g.stage_type(plan[i].stage_type).kind ==
                  StageKind::kLoading,
              expect_loading)
        << "at " << i;
  }
  // Three levels → 3 executions + 4 loadings.
  EXPECT_EQ(plan.size(), 7u);
}

TEST(Plan, DwellWithinSpecRange) {
  const GameSpec g = make_genshin();
  Rng rng(2);
  const auto plan = generate_plan(g, 0, 1, rng);
  for (const auto& ps : plan) {
    const auto& st = g.stage_type(ps.stage_type);
    EXPECT_GE(ps.planned_dwell_ms, st.min_dwell_ms);
    EXPECT_LE(ps.planned_dwell_ms, st.max_dwell_ms);
  }
}

TEST(Plan, ClusterOrderIsPermutationOfSpec) {
  const GameSpec g = make_dota2();
  Rng rng(3);
  const auto plan = generate_plan(g, 0, 1, rng);
  for (const auto& ps : plan) {
    const auto& st = g.stage_type(ps.stage_type);
    std::multiset<int> expect(st.clusters.begin(), st.clusters.end());
    std::multiset<int> got(ps.cluster_order.begin(), ps.cluster_order.end());
    EXPECT_EQ(expect, got);
  }
}

TEST(Plan, MobilePlayerOrderStablePerPlayer) {
  const GameSpec g = make_genshin();
  Rng rng1(4), rng2(5);
  const auto a = plan_stage_types(generate_plan(g, 0, 7, rng1));
  const auto b = plan_stage_types(generate_plan(g, 0, 7, rng2));
  // Same player, same script → same task order regardless of run RNG.
  EXPECT_EQ(a, b);
}

TEST(Plan, MobileDifferentPlayersUsuallyDiffer) {
  const GameSpec g = make_genshin();
  int diffs = 0;
  for (std::uint64_t p = 1; p <= 8; ++p) {
    Rng rng(6);
    Rng rng_ref(6);
    const auto mine = plan_stage_types(generate_plan(g, 0, p, rng));
    const auto ref = plan_stage_types(generate_plan(g, 0, 1, rng_ref));
    if (mine != ref) ++diffs;
  }
  EXPECT_GE(diffs, 3);  // most of 8 players deviate from player 1's order
}

TEST(Plan, MobaRepeatsVaryAcrossRuns) {
  const GameSpec g = make_csgo();  // rounds repeat 6–10 times
  std::set<std::size_t> lengths;
  for (int i = 0; i < 20; ++i) {
    Rng rng(100 + i);
    lengths.insert(generate_plan(g, 0, 1, rng).size());
  }
  EXPECT_GE(lengths.size(), 3u);  // user influence → varying plan length
}

TEST(Plan, SkippableSegmentsSometimesSkipped) {
  const GameSpec g = make_devil_may_cry();  // script 3 has skip_probs
  int with_menu = 0, without_menu = 0;
  for (int i = 0; i < 40; ++i) {
    Rng rng(200 + i);
    const auto types = plan_stage_types(generate_plan(g, 2, 1, rng));
    const bool has_menu =
        std::find(types.begin(), types.end(), 6) != types.end();
    (has_menu ? with_menu : without_menu)++;
  }
  EXPECT_GT(with_menu, 0);
  EXPECT_GT(without_menu, 0);
}

TEST(Plan, RepeatsRespectBounds) {
  const GameSpec g = make_csgo();
  for (int i = 0; i < 10; ++i) {
    Rng rng(300 + i);
    const auto types = plan_stage_types(generate_plan(g, 0, 1, rng));
    const auto rounds = std::count(types.begin(), types.end(), 2);
    EXPECT_GE(rounds, 6);
    EXPECT_LE(rounds, 10);
  }
}

TEST(Plan, NominalDurationSumsDwells) {
  const GameSpec g = make_contra();
  Rng rng(7);
  const auto plan = generate_plan(g, 0, 1, rng);
  DurationMs total = 0;
  for (const auto& ps : plan) total += ps.planned_dwell_ms;
  EXPECT_EQ(plan_nominal_duration(plan), total);
  EXPECT_GT(total, 0);
}

TEST(Plan, InvalidScriptIndexThrows) {
  const GameSpec g = make_contra();
  Rng rng(8);
  EXPECT_THROW(generate_plan(g, 99, 1, rng), ContractError);
}

// Property: for every game and script, plans start and end with loading.
class PlanShapeProp
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PlanShapeProp, BoundedByLoading) {
  const auto [game_idx, seed] = GetParam();
  const auto suite = paper_suite();
  const GameSpec& g = suite[static_cast<std::size_t>(game_idx)];
  for (std::size_t script = 0; script < g.scripts.size(); ++script) {
    Rng rng(static_cast<std::uint64_t>(seed));
    const auto plan = generate_plan(g, script, 3, rng);
    ASSERT_FALSE(plan.empty());
    EXPECT_EQ(plan.front().stage_type, g.loading_stage_type);
    EXPECT_EQ(plan.back().stage_type, g.loading_stage_type);
    // No two consecutive identical-kind stages.
    for (std::size_t i = 1; i < plan.size(); ++i) {
      EXPECT_NE(g.stage_type(plan[i].stage_type).kind,
                g.stage_type(plan[i - 1].stage_type).kind);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    GamesAndSeeds, PlanShapeProp,
    ::testing::Combine(::testing::Range(0, 5), ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace cocg::game
