#include "game/tracegen.h"

#include <gtest/gtest.h>

#include <set>

#include "common/check.h"
#include "game/library.h"
#include "game/plan.h"

namespace cocg::game {
namespace {

TEST(TraceGen, ProducesOneSamplePerSecond) {
  const GameSpec g = make_contra();
  const auto trace = profile_run(g, 0, 1, 42);
  ASSERT_FALSE(trace.empty());
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].t - trace[i - 1].t, 1000);
  }
}

TEST(TraceGen, GroundTruthCoversPlanStages) {
  const GameSpec g = make_contra();
  const auto trace = profile_run(g, 1, 1, 43);  // two levels
  std::set<int> stages;
  bool any_loading = false, any_exec = false;
  for (const auto& s : trace.samples()) {
    stages.insert(s.true_stage_type);
    (s.true_loading ? any_loading : any_exec) = true;
  }
  EXPECT_TRUE(any_loading);
  EXPECT_TRUE(any_exec);
  EXPECT_EQ(stages.size(), 2u);  // Contra: loading + level
}

TEST(TraceGen, UsageTracksClusterCentroids) {
  const GameSpec g = make_genshin();
  const auto trace = profile_run(g, 0, 1, 44);
  for (const auto& s : trace.samples()) {
    if (s.true_loading) {
      EXPECT_LT(s.usage.gpu(), 20.0);
      EXPECT_GT(s.usage.cpu(), 40.0);
    }
  }
}

TEST(TraceGen, MeasurementNoiseApplied) {
  const GameSpec g = make_contra();
  TraceGenConfig cfg;
  cfg.measurement_noise_rel = 0.0;
  const auto clean = profile_run(g, 0, 1, 45, cfg);
  cfg.measurement_noise_rel = 0.2;
  const auto noisy = profile_run(g, 0, 1, 45, cfg);
  // Identical seeds: session behaviour matches, only probe noise differs.
  ASSERT_EQ(clean.size(), noisy.size());
  int differing = 0;
  for (std::size_t i = 0; i < clean.size(); ++i) {
    if (std::abs(clean[i].usage.cpu() - noisy[i].usage.cpu()) > 1e-9) {
      ++differing;
    }
  }
  EXPECT_GT(differing, static_cast<int>(clean.size()) / 2);
}

TEST(TraceGen, DeterministicGivenSeed) {
  const GameSpec g = make_dota2();
  const auto a = profile_run(g, 0, 1, 46);
  const auto b = profile_run(g, 0, 1, 46);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].usage.cpu(), b[i].usage.cpu());
    EXPECT_EQ(a[i].true_stage_type, b[i].true_stage_type);
  }
}

TEST(TraceGen, FpsRecordedDuringExecution) {
  const GameSpec g = make_contra();
  const auto trace = profile_run(g, 0, 1, 47);
  bool exec_fps_seen = false;
  for (const auto& s : trace.samples()) {
    if (!s.true_loading && s.fps > 0.0) exec_fps_seen = true;
    if (s.true_loading) {
      EXPECT_EQ(s.fps, 0.0);
    }
  }
  EXPECT_TRUE(exec_fps_seen);
}

TEST(TraceGen, InvalidScriptThrows) {
  const GameSpec g = make_contra();
  EXPECT_THROW(profile_run(g, 9, 1, 48), ContractError);
}

TEST(Corpus, GeneratesRequestedRuns) {
  const GameSpec g = make_genshin();
  const auto corpus = generate_corpus(g, 25, 6, 49);
  ASSERT_EQ(corpus.size(), 25u);
  std::set<std::size_t> scripts;
  std::set<std::uint64_t> players;
  for (const auto& rec : corpus) {
    EXPECT_LT(rec.script_idx, g.scripts.size());
    EXPECT_GE(rec.player_id, 1u);
    EXPECT_LE(rec.player_id, 6u);
    EXPECT_FALSE(rec.stage_seq.empty());
    scripts.insert(rec.script_idx);
    players.insert(rec.player_id);
  }
  EXPECT_GE(scripts.size(), 2u);  // random script selection exercised
  EXPECT_GE(players.size(), 3u);
}

TEST(Corpus, SequencesAreValidStageTypes) {
  const GameSpec g = make_devil_may_cry();
  const auto corpus = generate_corpus(g, 10, 4, 50);
  for (const auto& rec : corpus) {
    for (int st : rec.stage_seq) {
      EXPECT_GE(st, 0);
      EXPECT_LT(st, g.num_stage_types());
    }
  }
}

TEST(Corpus, Preconditions) {
  const GameSpec g = make_contra();
  EXPECT_THROW(generate_corpus(g, 0, 1, 51), ContractError);
  EXPECT_THROW(generate_corpus(g, 1, 0, 51), ContractError);
}

}  // namespace
}  // namespace cocg::game
