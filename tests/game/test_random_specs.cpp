// Generative sweep: random (but valid) game specs pushed through the whole
// pipeline — plan generation, session simulation, profiling, catalog
// construction. The invariants that must hold for ANY title, not just the
// five paper games.
#include <gtest/gtest.h>

#include <set>

#include "core/frame_profiler.h"
#include "game/plan.h"
#include "game/session.h"
#include "game/tracegen.h"

namespace cocg::game {
namespace {

/// A random valid GameSpec: 2-6 clusters (one loading), 2-6 stage types,
/// 1-3 scripts with random segments.
GameSpec random_spec(Rng& rng) {
  GameSpec g;
  g.id = GameId{100 + rng.next_u64() % 1000};
  g.name = "fuzz-" + std::to_string(g.id.value);
  g.category = static_cast<GameCategory>(rng.uniform_int(0, 3));
  g.fps_cap = rng.chance(0.5) ? 60.0 : 0.0;
  g.short_game = rng.chance(0.4);

  const int n_clusters = static_cast<int>(rng.uniform_int(2, 6));
  for (int c = 0; c < n_clusters; ++c) {
    FrameClusterSpec fc;
    fc.id = c;
    fc.name = "c" + std::to_string(c);
    if (c == 0) {
      // Loading signature.
      fc.centroid = ResourceVector{rng.uniform(40, 70), rng.uniform(3, 9),
                                   rng.uniform(500, 2500),
                                   rng.uniform(800, 3000)};
      fc.fps_base = 0.0;
    } else {
      fc.centroid = ResourceVector{rng.uniform(15, 55), rng.uniform(20, 85),
                                   rng.uniform(500, 3500),
                                   rng.uniform(800, 4000)};
      fc.fps_base = rng.uniform(40, 200);
    }
    fc.jitter = fc.centroid * 0.05;
    for (std::size_t d = 0; d < kNumDims; ++d) {
      fc.jitter.at(d) = std::max(fc.jitter.at(d), 0.5);
    }
    g.clusters.push_back(fc);
  }

  // Loading stage type + 1..5 execution types over random cluster subsets.
  StageTypeSpec loading;
  loading.id = 0;
  loading.name = "Loading";
  loading.kind = StageKind::kLoading;
  loading.clusters = {0};
  loading.min_dwell_ms = sec_to_ms(rng.uniform(5, 10));
  loading.max_dwell_ms = loading.min_dwell_ms + sec_to_ms(rng.uniform(1, 15));
  loading.shuffle_clusters = false;
  g.stage_types.push_back(loading);
  g.loading_stage_type = 0;

  const int n_types = static_cast<int>(rng.uniform_int(1, 5));
  for (int t = 1; t <= n_types; ++t) {
    StageTypeSpec st;
    st.id = t;
    st.name = "T" + std::to_string(t);
    st.kind = StageKind::kExecution;
    std::set<int> members;
    const int n_members =
        static_cast<int>(rng.uniform_int(1, std::min(2, n_clusters - 1)));
    while (static_cast<int>(members.size()) < n_members) {
      members.insert(static_cast<int>(rng.uniform_int(1, n_clusters - 1)));
    }
    st.clusters.assign(members.begin(), members.end());
    st.min_dwell_ms = sec_to_ms(rng.uniform(30, 120));
    st.max_dwell_ms = st.min_dwell_ms + sec_to_ms(rng.uniform(10, 120));
    g.stage_types.push_back(st);
  }

  const int n_scripts = static_cast<int>(rng.uniform_int(1, 3));
  for (int s = 0; s < n_scripts; ++s) {
    ScriptSpec sc;
    sc.name = "s" + std::to_string(s);
    sc.description = "fuzz script";
    const int n_segments = static_cast<int>(rng.uniform_int(1, 4));
    for (int i = 0; i < n_segments; ++i) {
      ScriptSegment seg;
      seg.stage_type = static_cast<int>(rng.uniform_int(1, n_types));
      seg.min_repeat = 1;
      seg.max_repeat = static_cast<int>(rng.uniform_int(1, 3));
      seg.skip_prob = rng.chance(0.3) ? rng.uniform(0.0, 0.4) : 0.0;
      sc.segments.push_back(seg);
    }
    sc.player_order = rng.chance(0.3);
    g.scripts.push_back(sc);
  }
  return g;
}

class RandomSpecPipeline : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomSpecPipeline, PlanInvariantsHold) {
  Rng rng(GetParam());
  const GameSpec g = random_spec(rng);
  for (std::size_t script = 0; script < g.scripts.size(); ++script) {
    for (int rep = 0; rep < 3; ++rep) {
      const auto plan = generate_plan(g, script, rep + 1, rng);
      ASSERT_FALSE(plan.empty());
      EXPECT_EQ(plan.front().stage_type, g.loading_stage_type);
      EXPECT_EQ(plan.back().stage_type, g.loading_stage_type);
      for (std::size_t i = 1; i < plan.size(); ++i) {
        EXPECT_NE(g.stage_type(plan[i].stage_type).kind,
                  g.stage_type(plan[i - 1].stage_type).kind);
      }
      for (const auto& ps : plan) {
        const auto& st = g.stage_type(ps.stage_type);
        EXPECT_GE(ps.planned_dwell_ms, st.min_dwell_ms);
        EXPECT_LE(ps.planned_dwell_ms, st.max_dwell_ms);
      }
    }
  }
}

TEST_P(RandomSpecPipeline, SessionsTerminateWithSaneAccounting) {
  Rng rng(GetParam() ^ 0xabcd);
  const GameSpec g = random_spec(rng);
  auto plan = generate_plan(g, 0, 1, rng);
  const DurationMs nominal = plan_nominal_duration(plan);
  SessionConfig cfg;
  cfg.spike_prob = 0.0;
  GameSession s(SessionId{1}, &g, 0, std::move(plan), rng.fork(), cfg);
  TimeMs now = 0;
  s.begin(now);
  // Hard bound: at full supply a session never exceeds nominal + one tick
  // per stage.
  const DurationMs bound =
      nominal + 1000 * static_cast<DurationMs>(s.plan_size()) + 1000;
  while (!s.finished()) {
    ASSERT_LE(s.elapsed_ms(), bound) << g.name;
    s.tick(now, s.demand());
    now += 1000;
  }
  EXPECT_EQ(s.execution_ms() + s.loading_ms(), s.elapsed_ms());
  EXPECT_EQ(s.loading_extension_ms(), 0);
  EXPECT_GE(s.mean_fps_ratio(), 0.99);
}

TEST_P(RandomSpecPipeline, ProfilerHandlesArbitraryTitles) {
  Rng rng(GetParam() ^ 0x1234);
  const GameSpec g = random_spec(rng);
  std::vector<telemetry::Trace> traces;
  for (int r = 0; r < 5; ++r) {
    const auto script = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(g.scripts.size()) - 1));
    traces.push_back(profile_run(
        g, script, static_cast<std::uint64_t>(r + 1), rng.next_u64()));
  }
  core::ProfilerConfig cfg;
  cfg.forced_k = g.num_clusters();
  core::FrameProfiler profiler(cfg);
  const auto out = profiler.profile(g.name, traces, rng);
  EXPECT_GE(out.profile.num_stage_types(), 1);
  EXPECT_LE(out.profile.num_stage_types(),
            1 << out.profile.num_clusters());  // hard 2^N bound (§IV-A2)
  // Every stage type's signature references real clusters.
  for (const auto& st : out.profile.stage_types) {
    for (int c : st.clusters) {
      EXPECT_GE(c, 0);
      EXPECT_LT(c, out.profile.num_clusters());
    }
  }
  // Sequences re-derived against the profile stay within the catalog.
  for (const auto& trace : traces) {
    for (int st : core::infer_stage_sequence(out.profile, trace)) {
      EXPECT_GE(st, 0);
      EXPECT_LT(st, out.profile.num_stage_types());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSpecPipeline,
                         ::testing::Values(11ULL, 22ULL, 33ULL, 44ULL,
                                           55ULL, 66ULL, 77ULL, 88ULL));

}  // namespace
}  // namespace cocg::game
