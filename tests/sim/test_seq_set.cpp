#include "sim/seq_set.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_set>

#include "common/rng.h"

namespace cocg::sim {
namespace {

TEST(SeqSet, InsertContainsErase) {
  SeqSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.insert(7));
  EXPECT_FALSE(s.insert(7));  // duplicate
  EXPECT_TRUE(s.contains(7));
  EXPECT_FALSE(s.contains(8));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.erase(7));
  EXPECT_FALSE(s.erase(7));
  EXPECT_TRUE(s.empty());
}

TEST(SeqSet, GrowsPastInitialCapacity) {
  SeqSet s;
  for (std::uint64_t i = 1; i <= 10000; ++i) EXPECT_TRUE(s.insert(i));
  EXPECT_EQ(s.size(), 10000u);
  for (std::uint64_t i = 1; i <= 10000; ++i) EXPECT_TRUE(s.contains(i));
  EXPECT_FALSE(s.contains(10001));
}

TEST(SeqSet, BackwardShiftDeletionKeepsProbeChainsIntact) {
  // Dense consecutive seqs maximize probe-chain overlap; deleting from the
  // middle must not orphan later entries (the classic tombstone-free
  // open-addressing pitfall).
  SeqSet s;
  for (std::uint64_t i = 1; i <= 64; ++i) s.insert(i);
  for (std::uint64_t i = 2; i <= 64; i += 2) EXPECT_TRUE(s.erase(i));
  for (std::uint64_t i = 1; i <= 64; ++i) {
    EXPECT_EQ(s.contains(i), i % 2 == 1) << "seq " << i;
  }
}

TEST(SeqSet, ClearResets) {
  SeqSet s;
  for (std::uint64_t i = 1; i <= 100; ++i) s.insert(i);
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.contains(50));
  EXPECT_TRUE(s.insert(50));
}

TEST(SeqSet, SteadyChurnDoesNotGrowCapacity) {
  // The event queue's schedule/pop cycle keeps the live set near-constant;
  // capacity must stabilize instead of creeping up.
  SeqSet s;
  std::uint64_t next = 1;
  for (int i = 0; i < 32; ++i) s.insert(next++);
  for (int warm = 0; warm < 1000; ++warm) {
    s.insert(next);
    s.erase(next - 32);
    ++next;
  }
  const std::size_t cap = s.capacity();
  for (int round = 0; round < 100000; ++round) {
    s.insert(next);
    s.erase(next - 32);
    ++next;
  }
  EXPECT_EQ(s.capacity(), cap);
  EXPECT_EQ(s.size(), 32u);
}

TEST(SeqSet, MatchesUnorderedSetUnderRandomChurn) {
  SeqSet s;
  std::unordered_set<std::uint64_t> ref;
  Rng rng(99);
  for (int op = 0; op < 20000; ++op) {
    const auto v = static_cast<std::uint64_t>(rng.uniform_int(1, 500));
    if (rng.chance(0.5)) {
      EXPECT_EQ(s.insert(v), ref.insert(v).second);
    } else {
      EXPECT_EQ(s.erase(v), ref.erase(v) > 0);
    }
  }
  EXPECT_EQ(s.size(), ref.size());
  for (std::uint64_t v = 1; v <= 500; ++v) {
    EXPECT_EQ(s.contains(v), ref.count(v) > 0) << "seq " << v;
  }
}

}  // namespace
}  // namespace cocg::sim
