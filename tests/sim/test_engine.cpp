#include "sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"

namespace cocg::sim {
namespace {

TEST(Engine, ClockStartsAtZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0);
}

TEST(Engine, ScheduleInAdvancesClock) {
  Engine e;
  TimeMs seen = -1;
  e.schedule_in(100, [&] { seen = e.now(); });
  e.run_all();
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(e.now(), 100);
}

TEST(Engine, ScheduleAtAbsolute) {
  Engine e;
  e.schedule_at(50, [] {});
  EXPECT_EQ(e.run_all(), 50);
}

TEST(Engine, RejectsPastAndNegative) {
  Engine e;
  e.schedule_in(100, [] {});
  e.run_all();
  EXPECT_THROW(e.schedule_at(50, [] {}), ContractError);
  EXPECT_THROW(e.schedule_in(-1, [] {}), ContractError);
}

TEST(Engine, RunUntilStopsAtHorizonInclusive) {
  Engine e;
  std::vector<TimeMs> fired;
  for (TimeMs t : {10, 20, 30, 40}) {
    e.schedule_at(t, [&fired, t] { fired.push_back(t); });
  }
  e.run_until(30);
  EXPECT_EQ(fired, (std::vector<TimeMs>{10, 20, 30}));
  EXPECT_EQ(e.now(), 30);
  EXPECT_EQ(e.pending_events(), 1u);
}

TEST(Engine, RunUntilAdvancesClockWhenIdle) {
  Engine e;
  e.run_until(500);
  EXPECT_EQ(e.now(), 500);
}

TEST(Engine, StopRequestHaltsLoop) {
  Engine e;
  int count = 0;
  e.schedule_in(1, [&] {
    ++count;
    e.stop();
  });
  e.schedule_in(2, [&] { ++count; });
  e.run_all();
  EXPECT_EQ(count, 1);
  EXPECT_EQ(e.pending_events(), 1u);
}

TEST(Engine, PeriodicFiresAtPeriod) {
  Engine e;
  std::vector<TimeMs> fired;
  e.schedule_periodic(10, 10, [&](TimeMs t) {
    fired.push_back(t);
    return fired.size() < 3;
  });
  e.run_all();
  EXPECT_EQ(fired, (std::vector<TimeMs>{10, 20, 30}));
}

TEST(Engine, PeriodicStopHandle) {
  Engine e;
  int count = 0;
  auto task = e.schedule_periodic(5, 5, [&](TimeMs) {
    ++count;
    return true;
  });
  e.run_until(20);
  EXPECT_EQ(count, 4);
  EXPECT_TRUE(task.active());
  task.stop();
  EXPECT_FALSE(task.active());
  e.run_until(100);
  EXPECT_EQ(count, 4);  // no further firings
}

TEST(Engine, PeriodicStopIdempotent) {
  Engine e;
  auto task = e.schedule_periodic(5, 5, [](TimeMs) { return true; });
  task.stop();
  EXPECT_NO_THROW(task.stop());
  PeriodicTask empty;
  EXPECT_NO_THROW(empty.stop());
  EXPECT_FALSE(empty.active());
}

TEST(Engine, PeriodicReturningFalseDeactivates) {
  Engine e;
  auto task = e.schedule_periodic(1, 1, [](TimeMs) { return false; });
  e.run_all();
  EXPECT_FALSE(task.active());
}

TEST(Engine, PeriodicFirstDelayZero) {
  Engine e;
  std::vector<TimeMs> fired;
  e.schedule_periodic(0, 7, [&](TimeMs t) {
    fired.push_back(t);
    return fired.size() < 2;
  });
  e.run_all();
  EXPECT_EQ(fired, (std::vector<TimeMs>{0, 7}));
}

TEST(Engine, CancelOneShot) {
  Engine e;
  bool ran = false;
  auto h = e.schedule_in(10, [&] { ran = true; });
  EXPECT_TRUE(e.cancel(h));
  e.run_until(100);
  EXPECT_FALSE(ran);
}

TEST(Engine, EventsProcessedCounter) {
  Engine e;
  for (int i = 0; i < 5; ++i) e.schedule_in(i, [] {});
  e.run_all();
  EXPECT_EQ(e.events_processed(), 5u);
}

TEST(Engine, InterleavedPeriodicsDeterministic) {
  Engine e;
  std::vector<std::pair<TimeMs, char>> log;
  e.schedule_periodic(2, 2, [&](TimeMs t) {
    log.push_back({t, 'a'});
    return t < 8;
  });
  e.schedule_periodic(3, 3, [&](TimeMs t) {
    log.push_back({t, 'b'});
    return t < 9;
  });
  e.run_all();
  // At t=6 both fire; 'b' re-armed earlier (at t=3 vs t=4) so FIFO places
  // it first.
  const std::vector<std::pair<TimeMs, char>> expect{
      {2, 'a'}, {3, 'b'}, {4, 'a'}, {6, 'b'}, {6, 'a'},
      {8, 'a'}, {9, 'b'}};
  EXPECT_EQ(log, expect);
}

TEST(Engine, DynPeriodicVariableDelays) {
  Engine e;
  std::vector<TimeMs> fired;
  // Stretch the period each firing: 10, then +20, then +40, then stop.
  e.schedule_periodic_dyn(10, [&](TimeMs t) -> DurationMs {
    fired.push_back(t);
    if (fired.size() == 1) return 20;
    if (fired.size() == 2) return 40;
    return 0;
  });
  e.run_all();
  EXPECT_EQ(fired, (std::vector<TimeMs>{10, 30, 70}));
}

TEST(Engine, DynPeriodicStopHandle) {
  Engine e;
  int count = 0;
  auto task = e.schedule_periodic_dyn(5, [&](TimeMs) -> DurationMs {
    ++count;
    return 5;
  });
  e.run_until(20);
  EXPECT_EQ(count, 4);
  EXPECT_TRUE(task.active());
  task.stop();
  EXPECT_FALSE(task.active());
  e.run_until(100);
  EXPECT_EQ(count, 4);
}

TEST(Engine, DynPeriodicCountsAsPeriodicFires) {
  Engine e;
  e.schedule_periodic_dyn(1, [&](TimeMs t) -> DurationMs {
    return t < 3 ? 1 : 0;
  });
  e.run_all();
  EXPECT_EQ(e.periodic_fires(), 3u);
}

TEST(Engine, DynPeriodicKeepsFifoOrderAgainstFixedTask) {
  // A dyn task that re-arms onto the same timestamps as schedule_periodic
  // must preserve the re-arm-order FIFO tie-break the fixed tasks get —
  // the platform relies on this for its ctl-before-hw coincidence order.
  Engine e;
  std::vector<std::pair<TimeMs, char>> log;
  e.schedule_periodic(2, 2, [&](TimeMs t) {
    log.push_back({t, 'a'});
    return t < 8;
  });
  e.schedule_periodic_dyn(3, [&](TimeMs t) -> DurationMs {
    log.push_back({t, 'b'});
    return t < 9 ? 3 : 0;
  });
  e.run_all();
  const std::vector<std::pair<TimeMs, char>> expect{
      {2, 'a'}, {3, 'b'}, {4, 'a'}, {6, 'b'}, {6, 'a'},
      {8, 'a'}, {9, 'b'}};
  EXPECT_EQ(log, expect);
}

TEST(Engine, NextEventTimeTracksQueue) {
  Engine e;
  EXPECT_EQ(e.next_event_time(), kTimeNever);
  e.schedule_at(40, [] {});
  e.schedule_at(25, [] {});
  EXPECT_EQ(e.next_event_time(), 25);
  e.run_all();
  EXPECT_EQ(e.next_event_time(), kTimeNever);
}

TEST(Engine, RunLimitVisibleOnlyDuringRunUntil) {
  Engine e;
  EXPECT_EQ(e.run_limit(), kTimeNever);
  TimeMs seen = 0;
  e.schedule_at(10, [&] { seen = e.run_limit(); });
  e.run_until(500);
  EXPECT_EQ(seen, 500);
  EXPECT_EQ(e.run_limit(), kTimeNever);  // cleared on return
  // run_all leaves the limit unset.
  e.schedule_at(600, [&] { seen = e.run_limit(); });
  e.run_all();
  EXPECT_EQ(seen, kTimeNever);
}

TEST(Engine, NextInterestingTimeIsMinOfEventAndLimit) {
  Engine e;
  std::vector<TimeMs> seen;
  e.schedule_at(10, [&] { seen.push_back(e.next_interesting_time()); });
  e.schedule_at(30, [&] { seen.push_back(e.next_interesting_time()); });
  e.run_until(100);
  // At t=10 the next event (30) is nearer than the limit; at t=30 the
  // queue is empty so the limit (100) bounds.
  EXPECT_EQ(seen, (std::vector<TimeMs>{30, 100}));
}

}  // namespace
}  // namespace cocg::sim
