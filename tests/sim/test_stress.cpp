// Stress and interplay properties for the discrete-event engine: large
// random schedules with interleaved cancellations must preserve ordering,
// liveness accounting, and determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "sim/engine.h"

namespace cocg::sim {
namespace {

TEST(SimStress, RandomScheduleCancelStorm) {
  Rng rng(123);
  EventQueue q;
  std::vector<EventHandle> handles;
  std::vector<TimeMs> fired;
  constexpr int kEvents = 5000;
  for (int i = 0; i < kEvents; ++i) {
    const TimeMs t = rng.uniform_int(0, 10000);
    handles.push_back(q.schedule(t, [&fired, t] { fired.push_back(t); }));
  }
  // Cancel a random half.
  rng.shuffle(handles.begin(), handles.end());
  std::size_t cancelled = 0;
  for (std::size_t i = 0; i < handles.size() / 2; ++i) {
    if (q.cancel(handles[i])) ++cancelled;
  }
  EXPECT_EQ(cancelled, handles.size() / 2);
  EXPECT_EQ(q.size(), kEvents - cancelled);
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(fired.size(), kEvents - cancelled);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
  // Cancelling after the fact fails for every handle.
  for (const auto& h : handles) EXPECT_FALSE(q.cancel(h));
}

TEST(SimStress, SelfRescheduleChainDepth) {
  Engine e;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 10000) e.schedule_in(1, chain);
  };
  e.schedule_in(1, chain);
  e.run_all();
  EXPECT_EQ(count, 10000);
  EXPECT_EQ(e.now(), 10000);
}

TEST(SimStress, ManyPeriodicsCoexist) {
  Engine e;
  std::vector<int> counts(50, 0);
  std::vector<PeriodicTask> tasks;
  for (int i = 0; i < 50; ++i) {
    tasks.push_back(e.schedule_periodic(
        i + 1, i + 1, [&counts, i](TimeMs) {
          ++counts[static_cast<std::size_t>(i)];
          return true;
        }));
  }
  e.run_until(1000);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(counts[static_cast<std::size_t>(i)], 1000 / (i + 1)) << i;
  }
  for (auto& t : tasks) t.stop();
  e.run_until(2000);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(counts[static_cast<std::size_t>(i)], 1000 / (i + 1)) << i;
  }
}

TEST(SimStress, DeterministicAcrossIdenticalRuns) {
  auto run_once = [] {
    Rng rng(77);
    Engine e;
    std::vector<std::pair<TimeMs, int>> log;
    for (int i = 0; i < 500; ++i) {
      const TimeMs t = rng.uniform_int(0, 5000);
      e.schedule_at(t, [&log, t, i] { log.push_back({t, i}); });
    }
    e.run_all();
    return log;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(SimStress, CancelInsideEventCallback) {
  Engine e;
  bool second_ran = false;
  EventHandle h2;
  e.schedule_in(1, [&] { e.cancel(h2); });
  h2 = e.schedule_in(2, [&] { second_ran = true; });
  e.run_all();
  EXPECT_FALSE(second_ran);
}

TEST(SimStress, PeriodicStopFromWithinCallback) {
  Engine e;
  int count = 0;
  PeriodicTask task;
  task = e.schedule_periodic(1, 1, [&](TimeMs) {
    ++count;
    return count < 3;  // self-terminate via return value
  });
  e.run_until(100);
  EXPECT_EQ(count, 3);
  EXPECT_FALSE(task.active());
}

}  // namespace
}  // namespace cocg::sim
