// Stress and interplay properties for the discrete-event engine: large
// random schedules with interleaved cancellations must preserve ordering,
// liveness accounting, and determinism — plus multi-shard fleet stress
// (skewed load, router rebalance, arrival conservation).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "fleet/fleet.h"
#include "game/library.h"
#include "sim/engine.h"

namespace cocg::sim {
namespace {

TEST(SimStress, RandomScheduleCancelStorm) {
  Rng rng(123);
  EventQueue q;
  std::vector<EventHandle> handles;
  std::vector<TimeMs> fired;
  constexpr int kEvents = 5000;
  for (int i = 0; i < kEvents; ++i) {
    const TimeMs t = rng.uniform_int(0, 10000);
    handles.push_back(q.schedule(t, [&fired, t] { fired.push_back(t); }));
  }
  // Cancel a random half.
  rng.shuffle(handles.begin(), handles.end());
  std::size_t cancelled = 0;
  for (std::size_t i = 0; i < handles.size() / 2; ++i) {
    if (q.cancel(handles[i])) ++cancelled;
  }
  EXPECT_EQ(cancelled, handles.size() / 2);
  EXPECT_EQ(q.size(), kEvents - cancelled);
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(fired.size(), kEvents - cancelled);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
  // Cancelling after the fact fails for every handle.
  for (const auto& h : handles) EXPECT_FALSE(q.cancel(h));
}

TEST(SimStress, SelfRescheduleChainDepth) {
  Engine e;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 10000) e.schedule_in(1, chain);
  };
  e.schedule_in(1, chain);
  e.run_all();
  EXPECT_EQ(count, 10000);
  EXPECT_EQ(e.now(), 10000);
}

TEST(SimStress, ManyPeriodicsCoexist) {
  Engine e;
  std::vector<int> counts(50, 0);
  std::vector<PeriodicTask> tasks;
  for (int i = 0; i < 50; ++i) {
    tasks.push_back(e.schedule_periodic(
        i + 1, i + 1, [&counts, i](TimeMs) {
          ++counts[static_cast<std::size_t>(i)];
          return true;
        }));
  }
  e.run_until(1000);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(counts[static_cast<std::size_t>(i)], 1000 / (i + 1)) << i;
  }
  for (auto& t : tasks) t.stop();
  e.run_until(2000);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(counts[static_cast<std::size_t>(i)], 1000 / (i + 1)) << i;
  }
}

TEST(SimStress, DeterministicAcrossIdenticalRuns) {
  auto run_once = [] {
    Rng rng(77);
    Engine e;
    std::vector<std::pair<TimeMs, int>> log;
    for (int i = 0; i < 500; ++i) {
      const TimeMs t = rng.uniform_int(0, 5000);
      e.schedule_at(t, [&log, t, i] { log.push_back({t, i}); });
    }
    e.run_all();
    return log;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(SimStress, CancelInsideEventCallback) {
  Engine e;
  bool second_ran = false;
  EventHandle h2;
  e.schedule_in(1, [&] { e.cancel(h2); });
  h2 = e.schedule_in(2, [&] { second_ran = true; });
  e.run_all();
  EXPECT_FALSE(second_ran);
}

TEST(SimStress, PeriodicStopFromWithinCallback) {
  Engine e;
  int count = 0;
  PeriodicTask task;
  task = e.schedule_periodic(1, 1, [&](TimeMs) {
    ++count;
    return count < 3;  // self-terminate via return value
  });
  e.run_until(100);
  EXPECT_EQ(count, 3);
  EXPECT_FALSE(task.active());
}

}  // namespace
}  // namespace cocg::sim

namespace cocg::fleet {
namespace {

/// Model-free admit-if-it-fits scheduler (no offline training) — the
/// stress runs exercise routing and sharding, not admission policy.
class GreedyScheduler final : public platform::Scheduler {
 public:
  std::string name() const override { return "greedy"; }
  std::optional<platform::Placement> admit(
      platform::PlatformView& view, const platform::GameRequest& req) override {
    (void)req;
    // CPU 40% × 2 GPUs = 80% of the server: two concurrent sessions per
    // server, one per GPU view.
    const ResourceVector alloc{40, 90, 3500, 3500};
    for (ServerId server : view.server_ids()) {
      const auto& srv = view.server(server);
      for (int g = 0; g < srv.spec().num_gpus; ++g) {
        if (alloc.fits_within(srv.free_on_gpu(g))) {
          return platform::Placement{server, g, alloc};
        }
      }
    }
    return std::nullopt;
  }
};

struct SkewOutcome {
  std::size_t arrivals = 0;
  std::vector<std::size_t> routed;
  FleetReport report;
};

/// 4 shards x 1 server; shard 0 is pre-saturated by a closed-loop DOTA2
/// source (long game — no run finishes inside the horizon) while a global
/// open-loop Contra stream hits the router.
SkewOutcome run_skewed(RouterPolicy policy, int threads) {
  static const game::GameSpec dota = game::make_dota2();
  static const game::GameSpec contra = game::make_contra();
  constexpr int kShards = 4;
  constexpr int kSkewSessions = 2;  // fills shard 0's two GPU views

  FleetConfig cfg;
  cfg.shards = kShards;
  cfg.threads = threads;
  cfg.policy = policy;
  cfg.seed = 7;
  Fleet f(cfg, [](int) { return std::make_unique<GreedyScheduler>(); });
  for (int i = 0; i < kShards; ++i) f.add_server(hw::ServerSpec{});
  f.add_shard_source(0, {&dota, kSkewSessions, 4});
  // Light enough that the three healthy shards keep draining: a load-aware
  // router has no reason to touch the saturated shard.
  f.add_global_source({&contra, 60.0, 16});
  f.run(20 * 60 * 1000);

  SkewOutcome out;
  out.arrivals = f.arrivals_generated();
  for (int i = 0; i < kShards; ++i) out.routed.push_back(f.routed_to(i));
  out.report = f.report();
  // No arrival lost or duplicated: shards 1..3 see only routed requests.
  // Shard 0 additionally carries the closed-loop skew: exactly
  // kSkewSessions outstanding at all times (each completion re-issues),
  // plus one completed run per finished skew session.
  for (int i = 1; i < kShards; ++i) {
    const auto& row = out.report.shards[static_cast<std::size_t>(i)];
    EXPECT_EQ(row.routed, row.completed + row.running_end + row.queued_end)
        << router_policy_name(policy) << " shard " << i;
  }
  const auto it = out.report.per_game.find("DOTA2");
  const std::size_t skew_completed =
      it != out.report.per_game.end()
          ? static_cast<std::size_t>(it->second.completed)
          : 0u;
  const auto& s0 = out.report.shards[0];
  EXPECT_EQ(s0.routed + kSkewSessions + skew_completed,
            s0.completed + s0.running_end + s0.queued_end)
      << router_policy_name(policy);
  std::size_t total_routed = 0;
  for (auto r : out.routed) total_routed += r;
  EXPECT_EQ(total_routed, out.arrivals);
  return out;
}

TEST(FleetStress, LoadAwarePoliciesRebalanceAwayFromSkewedShard) {
  const auto rr = run_skewed(RouterPolicy::kRoundRobin, 2);
  const auto ll = run_skewed(RouterPolicy::kLeastLoaded, 2);
  const auto p2c = run_skewed(RouterPolicy::kPowerOfTwo, 2);

  // All three policies saw the identical arrival stream (same fleet seed;
  // routing does not consume the arrival RNG).
  ASSERT_EQ(rr.arrivals, ll.arrivals);
  ASSERT_EQ(rr.arrivals, p2c.arrivals);
  ASSERT_GT(rr.arrivals, 20u);

  // Round-robin is load-blind: the saturated shard keeps receiving its
  // even share and a backlog piles up behind the skew sessions.
  EXPECT_GE(rr.routed[0] * 5, rr.arrivals);  // >= 20% of the stream
  EXPECT_GT(rr.report.shards[0].queued_end, 0u);

  // The load-aware policies divert most of the skewed shard's share to
  // the idle shards.
  EXPECT_LT(ll.routed[0] * 2, rr.routed[0]);
  EXPECT_LT(p2c.routed[0], rr.routed[0]);
  EXPECT_LE(ll.report.shards[0].queued_end,
            rr.report.shards[0].queued_end);
  // Diverted work actually lands elsewhere, it does not evaporate.
  EXPECT_GT(ll.routed[1] + ll.routed[2] + ll.routed[3],
            rr.routed[1] + rr.routed[2] + rr.routed[3]);
  EXPECT_GE(ll.report.completed, rr.report.completed);
}

TEST(FleetStress, SkewedFleetDeterministicAcrossThreadCounts) {
  const auto serial = run_skewed(RouterPolicy::kLeastLoaded, 1);
  const auto parallel = run_skewed(RouterPolicy::kLeastLoaded, 4);
  EXPECT_EQ(serial.arrivals, parallel.arrivals);
  EXPECT_EQ(serial.routed, parallel.routed);
  EXPECT_EQ(serial.report.completed, parallel.report.completed);
  EXPECT_DOUBLE_EQ(serial.report.throughput, parallel.report.throughput);
}

}  // namespace
}  // namespace cocg::fleet
