#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"

namespace cocg::sim {
namespace {

TEST(EventQueue, EmptyByDefault) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_THROW(q.next_time(), ContractError);
  EXPECT_THROW(q.pop_and_run(), ContractError);
}

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesRunFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop_and_run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, PopReturnsTimestamp) {
  EventQueue q;
  q.schedule(123, [] {});
  EXPECT_EQ(q.next_time(), 123);
  EXPECT_EQ(q.pop_and_run(), 123);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  auto h = q.schedule(10, [&] { ran = true; });
  EXPECT_TRUE(q.cancel(h));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  auto h = q.schedule(10, [] {});
  EXPECT_TRUE(q.cancel(h));
  EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueue, CancelAfterFireFails) {
  EventQueue q;
  auto h = q.schedule(10, [] {});
  q.pop_and_run();
  EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueue, CancelInvalidHandleFails) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventHandle{}));
}

TEST(EventQueue, CancelledHeadSkipped) {
  EventQueue q;
  std::vector<int> order;
  auto h1 = q.schedule(1, [&] { order.push_back(1); });
  q.schedule(2, [&] { order.push_back(2); });
  q.cancel(h1);
  EXPECT_EQ(q.next_time(), 2);
  q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST(EventQueue, EventsMayScheduleEvents) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1, [&] {
    order.push_back(1);
    q.schedule(2, [&] { order.push_back(2); });
  });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, RejectsEmptyFunction) {
  EventQueue q;
  EXPECT_THROW(q.schedule(1, EventFn{}), ContractError);
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  auto h1 = q.schedule(1, [] {});
  q.schedule(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(h1);
  EXPECT_EQ(q.size(), 1u);
  q.pop_and_run();
  EXPECT_EQ(q.size(), 0u);
}

// Property: N events with random times always drain fully and in order.
class EventQueueProp : public ::testing::TestWithParam<int> {};

TEST_P(EventQueueProp, DrainsSortedForAnyCount) {
  const int n = GetParam();
  EventQueue q;
  std::vector<TimeMs> fired;
  // Insertion times descending to stress the heap.
  for (int i = n; i >= 1; --i) {
    const TimeMs t = (i * 7919) % 1000;  // pseudo-scattered
    q.schedule(t, [&fired, t] { fired.push_back(t); });
  }
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(fired.size(), static_cast<std::size_t>(n));
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, EventQueueProp,
                         ::testing::Values(1, 2, 10, 100, 1000));

}  // namespace
}  // namespace cocg::sim
