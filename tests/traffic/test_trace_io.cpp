// Trace text format: exact round trip and "trace line N" diagnostics on
// every malformed-input path.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "traffic/trace.h"

namespace cocg::traffic {
namespace {

Trace sample_trace() {
  Trace t;
  t.meta["generator"] = "test";
  t.meta["note"] = "free form value with spaces";
  t.regions = {"global", "eu", "us-east"};
  t.games.push_back({"DOTA2", game::GameCategory::kMoba});
  t.games.push_back({"Devil May Cry", game::GameCategory::kConsole});
  t.events.push_back({0, 1, 0, 7, PlayerProfile::kCasual, 600000, 2, -1});
  t.events.push_back({1500, 2, 1, 42, PlayerProfile::kHardcore, 3600000,
                      0, 3});
  t.events.push_back({1500, 0, 0, 8, PlayerProfile::kRegular, 0, 1, -1});
  return t;
}

std::string encode(const Trace& t) {
  std::ostringstream os;
  write_trace(t, os);
  return os.str();
}

Trace decode(const std::string& text) {
  std::istringstream is(text);
  return read_trace(is);
}

/// The diagnostic thrown for `text`, or "" when it parses cleanly.
std::string error_for(const std::string& text) {
  try {
    decode(text);
    return "";
  } catch (const std::runtime_error& e) {
    return e.what();
  }
}

TEST(TraceIo, RoundTripIsExact) {
  const Trace t = sample_trace();
  const std::string text = encode(t);
  const Trace back = decode(text);
  EXPECT_EQ(back, t);
  // Byte-exactness, not just structural equality: re-encoding the parse
  // reproduces the file verbatim (the CI round-trip job compares bytes).
  EXPECT_EQ(encode(back), text);
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  Trace t;
  t.regions = {"global"};
  EXPECT_EQ(decode(encode(t)), t);
}

TEST(TraceIo, GameNamesWithSpacesSurvive) {
  const Trace back = decode(encode(sample_trace()));
  EXPECT_EQ(back.games[1].name, "Devil May Cry");
  EXPECT_EQ(back.regions[2], "us-east");
  EXPECT_EQ(back.meta.at("note"), "free form value with spaces");
}

TEST(TraceIo, WriteRejectsInvalidTraces) {
  Trace bad_region = sample_trace();
  bad_region.events[0].region = 99;
  EXPECT_THROW(encode(bad_region), std::runtime_error);

  Trace bad_game = sample_trace();
  bad_game.events[0].game = 99;
  EXPECT_THROW(encode(bad_game), std::runtime_error);

  Trace decreasing = sample_trace();
  decreasing.events[1].t = 0;
  decreasing.events[2].t = 1;
  decreasing.events[0].t = 2;
  EXPECT_THROW(encode(decreasing), std::runtime_error);

  Trace newline_name = sample_trace();
  newline_name.games[0].name = "bad\nname";
  EXPECT_THROW(encode(newline_name), std::runtime_error);

  Trace spaced_key = sample_trace();
  spaced_key.meta["two words"] = "x";
  EXPECT_THROW(encode(spaced_key), std::runtime_error);
}

TEST(TraceIo, BadMagicNamesLineOne) {
  const std::string err = error_for("not-a-trace\n");
  EXPECT_NE(err.find("trace line 1"), std::string::npos) << err;
  EXPECT_NE(err.find("bad magic"), std::string::npos) << err;
}

TEST(TraceIo, FutureVersionGetsSkewDiagnostic) {
  const std::string err = error_for("cocg-traffic-v9\n");
  EXPECT_NE(err.find("unsupported trace format version"), std::string::npos)
      << err;
}

TEST(TraceIo, TruncationNamesTheLastLine) {
  const std::string text = encode(sample_trace());
  // Drop the end-traffic terminator (and trailing newline).
  const std::string truncated =
      text.substr(0, text.size() - std::string("end-traffic\n").size());
  const std::string err = error_for(truncated);
  EXPECT_NE(err.find("truncated"), std::string::npos) << err;
  EXPECT_NE(err.find("end-traffic"), std::string::npos) << err;
}

TEST(TraceIo, GarbageEventLineNamesLineAndField) {
  std::string text = encode(sample_trace());
  // First event line: "e 0 1 0 7 0 600000 2 -1" — corrupt the player id.
  const std::size_t pos = text.find("e 0 1 0 7");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 9, "e 0 1 0 x");
  const std::string err = error_for(text);
  EXPECT_NE(err.find("trace line"), std::string::npos) << err;
  EXPECT_NE(err.find("event player"), std::string::npos) << err;
}

TEST(TraceIo, OutOfRangeIndicesNameTheLine) {
  {
    std::string text = encode(sample_trace());
    const std::size_t pos = text.find("e 0 1 0");
    ASSERT_NE(pos, std::string::npos);
    std::string t2 = text;
    t2.replace(pos, 7, "e 0 9 0");
    const std::string err = error_for(t2);
    EXPECT_NE(err.find("event region 9 out of range"), std::string::npos)
        << err;
    EXPECT_NE(err.find("trace line"), std::string::npos) << err;
  }
  {
    std::string text = encode(sample_trace());
    const std::size_t pos = text.find("e 0 1 0");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 7, "e 0 1 9");
    const std::string err = error_for(text);
    EXPECT_NE(err.find("event game 9 out of range"), std::string::npos)
        << err;
  }
}

TEST(TraceIo, ProfileOutOfRangeRejected) {
  std::string text = encode(sample_trace());
  const std::size_t pos = text.find("e 0 1 0 7 0");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 11, "e 0 1 0 7 5");
  const std::string err = error_for(text);
  EXPECT_NE(err.find("profile 5 out of range"), std::string::npos) << err;
}

TEST(TraceIo, DecreasingTimestampsRejectedOnRead) {
  // Hand-build a trace whose second event goes back in time.
  const std::string text =
      "cocg-traffic-v1\n"
      "regions 1\n"
      "region 0 global\n"
      "games 1\n"
      "game 0 web Contra\n"
      "events 2\n"
      "e 100 0 0 1 1 0 0 -1\n"
      "e 50 0 0 2 1 0 0 -1\n"
      "end-traffic\n";
  const std::string err = error_for(text);
  EXPECT_NE(err.find("non-decreasing"), std::string::npos) << err;
  EXPECT_NE(err.find("trace line 8"), std::string::npos) << err;
}

TEST(TraceIo, OutOfOrderTableIndicesRejected) {
  const std::string text =
      "cocg-traffic-v1\n"
      "regions 2\n"
      "region 1 eu\n"
      "region 0 global\n"
      "games 0\n"
      "events 0\n"
      "end-traffic\n";
  const std::string err = error_for(text);
  EXPECT_NE(err.find("region index 1 out of order"), std::string::npos)
      << err;
  EXPECT_NE(err.find("trace line 3"), std::string::npos) << err;
}

TEST(TraceIo, UnknownCategoryRejected) {
  const std::string text =
      "cocg-traffic-v1\n"
      "regions 1\n"
      "region 0 global\n"
      "games 1\n"
      "game 0 arcade Contra\n"
      "events 0\n"
      "end-traffic\n";
  const std::string err = error_for(text);
  EXPECT_NE(err.find("unknown game category 'arcade'"), std::string::npos)
      << err;
}

TEST(TraceIo, MalformedMetaRejected) {
  const std::string err = error_for("cocg-traffic-v1\nmeta keyonly\n");
  EXPECT_NE(err.find("malformed meta line"), std::string::npos) << err;
  EXPECT_NE(err.find("trace line 2"), std::string::npos) << err;
}

TEST(TraceIo, MissingTerminatorRejected) {
  const std::string text =
      "cocg-traffic-v1\n"
      "regions 1\n"
      "region 0 global\n"
      "games 0\n"
      "events 0\n"
      "not-the-end\n";
  const std::string err = error_for(text);
  EXPECT_NE(err.find("expected 'end-traffic'"), std::string::npos) << err;
}

TEST(TraceIo, ProfileNamesRoundTrip) {
  EXPECT_EQ(parse_profile("casual"), PlayerProfile::kCasual);
  EXPECT_EQ(parse_profile("regular"), PlayerProfile::kRegular);
  EXPECT_EQ(parse_profile("hardcore"), PlayerProfile::kHardcore);
  EXPECT_STREQ(profile_name(PlayerProfile::kHardcore), "hardcore");
  EXPECT_THROW(parse_profile("pro"), std::runtime_error);
}

TEST(TraceIo, RegionTableInternsAndFinds) {
  RegionTable regions;
  EXPECT_EQ(regions.size(), 1u);  // "global" is always index 0
  EXPECT_EQ(regions.name(0), "global");
  EXPECT_EQ(regions.intern("eu"), 1u);
  EXPECT_EQ(regions.intern("eu"), 1u);  // idempotent
  EXPECT_EQ(regions.find("eu"), 1u);
  EXPECT_EQ(regions.find("mars"), RegionTable::npos);
  EXPECT_THROW(regions.name(9), std::runtime_error);
}

TEST(TraceIo, LoadTraceMissingFileFails) {
  EXPECT_THROW(load_trace("/nonexistent/path/x.trace"), std::runtime_error);
}

}  // namespace
}  // namespace cocg::traffic
