// Workload generator: determinism, rate accuracy, and the shape of each
// recipe (diurnal cycle, flash crowd, regional failover).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "game/library.h"
#include "traffic/generator.h"
#include "traffic/trace.h"

namespace cocg::traffic {
namespace {

const std::vector<game::GameSpec>& suite() {
  static const std::vector<game::GameSpec> s = game::paper_suite();
  return s;
}

GeneratorConfig base_config() {
  GeneratorConfig cfg;
  cfg.duration_ms = 60 * 60 * 1000;
  cfg.arrivals_per_hour = 2000.0;
  cfg.seed = 1234;
  for (const auto& g : suite()) cfg.games.push_back(&g);
  return cfg;
}

std::string encode(const Trace& t) {
  std::ostringstream os;
  write_trace(t, os);
  return os.str();
}

TEST(TrafficGenerator, SameSeedSameConfigIsByteIdentical) {
  const GeneratorConfig cfg = base_config();
  const Trace a = generate_trace(cfg);
  const Trace b = generate_trace(cfg);
  EXPECT_EQ(a, b);
  EXPECT_EQ(encode(a), encode(b));
}

TEST(TrafficGenerator, DifferentSeedDiffers) {
  GeneratorConfig cfg = base_config();
  const Trace a = generate_trace(cfg);
  cfg.seed += 1;
  const Trace b = generate_trace(cfg);
  EXPECT_NE(a, b);
}

TEST(TrafficGenerator, PoissonRateIsApproximatelyHonored) {
  const GeneratorConfig cfg = base_config();  // 2000/h for one hour
  const Trace t = generate_trace(cfg);
  const double n = static_cast<double>(t.events.size());
  // Poisson(2000): 6 sigma ≈ 268. Anything outside ±15% is a real bug.
  EXPECT_GT(n, 2000.0 * 0.85);
  EXPECT_LT(n, 2000.0 * 1.15);
}

TEST(TrafficGenerator, EventsAreTimeOrderedAndInRange) {
  GeneratorConfig cfg = base_config();
  cfg.regions = {"eu", "us"};
  const Trace t = generate_trace(cfg);
  ASSERT_FALSE(t.events.empty());
  TimeMs prev = 0;
  for (const auto& e : t.events) {
    EXPECT_GE(e.t, prev);
    prev = e.t;
    EXPECT_LT(e.t, cfg.duration_ms);
    EXPECT_LT(e.game, t.games.size());
    EXPECT_LT(e.region, t.regions.size());
    EXPECT_GE(e.player_id, 1u);
    EXPECT_LE(e.player_id, static_cast<std::uint64_t>(cfg.player_pool));
    EXPECT_GT(e.expected_session_ms, 0);
    EXPECT_EQ(e.shard, -1);  // generated, never captured
    EXPECT_LT(e.script_idx, cfg.games[e.game]->scripts.size());
  }
}

TEST(TrafficGenerator, MetaRecordsRecipeAndSeed) {
  GeneratorConfig cfg = base_config();
  cfg.pattern = Pattern::kDiurnal;
  const Trace t = generate_trace(cfg);
  EXPECT_EQ(t.meta.at("generator"), "diurnal");
  EXPECT_EQ(t.meta.at("seed"), "1234");
}

TEST(TrafficGenerator, DiurnalPeakBeatsTrough) {
  GeneratorConfig cfg = base_config();
  cfg.pattern = Pattern::kDiurnal;
  cfg.arrivals_per_hour = 20000.0;
  cfg.diurnal_amplitude = 0.8;
  cfg.diurnal_period_ms = cfg.duration_ms;  // one full cycle in the trace
  const Trace t = generate_trace(cfg);
  // sin > 0 over the first half period, < 0 over the second: with A=0.8
  // the first-half mass should dominate by far more than noise.
  std::size_t first = 0;
  for (const auto& e : t.events) {
    if (e.t < cfg.duration_ms / 2) ++first;
  }
  const std::size_t second = t.events.size() - first;
  EXPECT_GT(static_cast<double>(first),
            1.5 * static_cast<double>(second))
      << "first half " << first << " vs second half " << second;
}

TEST(TrafficGenerator, FlashCrowdSpikesTheTargetGame) {
  GeneratorConfig cfg = base_config();
  cfg.pattern = Pattern::kFlashCrowd;
  cfg.arrivals_per_hour = 20000.0;
  cfg.flash_game = 2;
  cfg.flash_start_ms = 10 * 60 * 1000;
  cfg.flash_ramp_ms = 5 * 60 * 1000;
  cfg.flash_hold_ms = 20 * 60 * 1000;
  cfg.flash_multiplier = 8.0;
  const Trace t = generate_trace(cfg);

  const TimeMs hold_begin = cfg.flash_start_ms + cfg.flash_ramp_ms;
  const TimeMs hold_end = hold_begin + cfg.flash_hold_ms;
  std::size_t in_flash = 0, in_total = 0, out_flash = 0, out_total = 0;
  for (const auto& e : t.events) {
    const bool holding = e.t >= hold_begin && e.t < hold_end;
    (holding ? in_total : out_total) += 1;
    if (e.game == cfg.flash_game) (holding ? in_flash : out_flash) += 1;
  }
  ASSERT_GT(in_total, 0u);
  ASSERT_GT(out_total, 0u);
  const double share_in =
      static_cast<double>(in_flash) / static_cast<double>(in_total);
  const double share_out =
      static_cast<double>(out_flash) / static_cast<double>(out_total);
  // 5 games, uniform: base share 1/5; held share 8/12 = 2/3.
  EXPECT_GT(share_in, 2.0 * share_out)
      << "flash share " << share_in << " vs baseline " << share_out;
  // Flash crowds are additional players: total rate rises with the spike.
  const double hold_rate = static_cast<double>(in_total) /
                           static_cast<double>(cfg.flash_hold_ms);
  const double out_rate =
      static_cast<double>(out_total) /
      static_cast<double>(cfg.duration_ms - cfg.flash_hold_ms);
  EXPECT_GT(hold_rate, 1.5 * out_rate);
}

TEST(TrafficGenerator, FailoverDrainsTheEvacuatedRegion) {
  GeneratorConfig cfg = base_config();
  cfg.pattern = Pattern::kRegionalFailover;
  cfg.arrivals_per_hour = 20000.0;
  cfg.regions = {"eu", "us", "apac"};
  cfg.failover_from = 0;
  cfg.failover_to = 1;
  cfg.failover_at_ms = 30 * 60 * 1000;
  cfg.failover_ramp_ms = 5 * 60 * 1000;
  const Trace t = generate_trace(cfg);

  const TimeMs done = cfg.failover_at_ms + cfg.failover_ramp_ms;
  std::size_t before_from = 0, before_all = 0;
  std::size_t after_from = 0, after_to = 0, after_all = 0;
  for (const auto& e : t.events) {
    if (e.t < cfg.failover_at_ms) {
      ++before_all;
      if (e.region == 0) ++before_from;
    } else if (e.t >= done) {
      ++after_all;
      if (e.region == 0) ++after_from;
      if (e.region == 1) ++after_to;
    }
  }
  ASSERT_GT(before_all, 0u);
  ASSERT_GT(after_all, 0u);
  // Before: eu ≈ 1/3 of traffic. After the ramp: eu exactly 0, us ≈ 2/3.
  EXPECT_GT(static_cast<double>(before_from),
            0.2 * static_cast<double>(before_all));
  EXPECT_EQ(after_from, 0u);
  EXPECT_GT(static_cast<double>(after_to),
            0.5 * static_cast<double>(after_all));
}

TEST(TrafficGenerator, ValidatesConfig) {
  {
    GeneratorConfig cfg = base_config();
    cfg.games.clear();
    EXPECT_THROW(generate_trace(cfg), std::runtime_error);
  }
  {
    GeneratorConfig cfg = base_config();
    cfg.diurnal_amplitude = 1.5;
    EXPECT_THROW(generate_trace(cfg), std::runtime_error);
  }
  {
    GeneratorConfig cfg = base_config();
    cfg.pattern = Pattern::kFlashCrowd;
    cfg.flash_game = cfg.games.size();  // out of range
    EXPECT_THROW(generate_trace(cfg), std::runtime_error);
  }
  {
    GeneratorConfig cfg = base_config();
    cfg.pattern = Pattern::kRegionalFailover;
    cfg.regions = {"only-one"};
    EXPECT_THROW(generate_trace(cfg), std::runtime_error);
  }
  {
    GeneratorConfig cfg = base_config();
    cfg.game_weights = {1.0};  // wrong length
    EXPECT_THROW(generate_trace(cfg), std::runtime_error);
  }
}

TEST(TrafficGenerator, PatternNamesRoundTrip) {
  EXPECT_EQ(parse_pattern("poisson"), Pattern::kPoisson);
  EXPECT_EQ(parse_pattern("diurnal"), Pattern::kDiurnal);
  EXPECT_EQ(parse_pattern("flash"), Pattern::kFlashCrowd);
  EXPECT_EQ(parse_pattern("failover"), Pattern::kRegionalFailover);
  EXPECT_STREQ(pattern_name(Pattern::kFlashCrowd), "flash");
  EXPECT_THROW(parse_pattern("tsunami"), std::runtime_error);
}

TEST(TrafficGenerator, GeneratedTraceRoundTripsThroughText) {
  GeneratorConfig cfg = base_config();
  cfg.regions = {"eu", "us"};
  cfg.region_weights = {2.0, 1.0};
  const Trace t = generate_trace(cfg);
  std::istringstream is(encode(t));
  EXPECT_EQ(read_trace(is), t);
}

}  // namespace
}  // namespace cocg::traffic
