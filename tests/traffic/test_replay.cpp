// Capture/replay determinism — the traffic subsystem's contract:
// a captured fleet run, replayed via add_trace_arrivals with recorded
// routing, reproduces the original report byte-for-byte at any thread
// count.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "fleet/fleet.h"
#include "game/library.h"
#include "traffic/generator.h"
#include "traffic/source.h"
#include "traffic/trace.h"

namespace cocg::fleet {
namespace {

class GreedyScheduler final : public platform::Scheduler {
 public:
  explicit GreedyScheduler(ResourceVector alloc = {60, 90, 4000, 4000})
      : alloc_(alloc) {}

  std::string name() const override { return "greedy"; }

  std::optional<platform::Placement> admit(
      platform::PlatformView& view, const platform::GameRequest& req) override {
    (void)req;
    for (ServerId server : view.server_ids()) {
      const auto& srv = view.server(server);
      for (int g = 0; g < srv.spec().num_gpus; ++g) {
        if (alloc_.fits_within(srv.free_on_gpu(g))) {
          return platform::Placement{server, g, alloc_};
        }
      }
    }
    return std::nullopt;
  }

 private:
  ResourceVector alloc_;
};

SchedulerFactory greedy_factory() {
  return [](int) { return std::make_unique<GreedyScheduler>(); };
}

const game::GameSpec& contra() {
  static const game::GameSpec g = game::make_contra();
  return g;
}
const game::GameSpec& csgo() {
  static const game::GameSpec g = game::make_csgo();
  return g;
}

std::vector<const game::GameSpec*> specs() { return {&contra(), &csgo()}; }

FleetConfig fleet_config(int shards, int threads,
                         RouterPolicy policy = RouterPolicy::kLeastLoaded) {
  FleetConfig cfg;
  cfg.shards = shards;
  cfg.threads = threads;
  cfg.policy = policy;
  cfg.seed = 99;
  return cfg;
}

constexpr DurationMs kRunMs = 20 * 60 * 1000;

/// A live Poisson-driven fleet run with capture on. Returns the report
/// JSON and the captured trace.
struct Captured {
  std::string report;
  traffic::Trace trace;
};

Captured run_and_capture(int shards, int threads) {
  Fleet f(fleet_config(shards, threads), greedy_factory());
  for (int i = 0; i < 2 * shards; ++i) f.add_server(hw::ServerSpec{});
  f.add_global_source({&contra(), 60.0, 8}, "eu");
  f.add_global_source({&csgo(), 40.0, 8}, "us");
  traffic::TraceRecorder recorder;
  f.enable_capture(&recorder);
  f.run(kRunMs);
  return {report_json(f.report()), recorder.trace()};
}

/// Replay `trace` into a fresh fleet of the same shape. When `capture` is
/// non-null the replayed stream is re-captured into it.
std::string replay(const traffic::Trace& trace, int shards, int threads,
                   bool use_recorded_routing,
                   RouterPolicy policy = RouterPolicy::kLeastLoaded,
                   traffic::TraceRecorder* capture = nullptr) {
  Fleet f(fleet_config(shards, threads, policy), greedy_factory());
  for (int i = 0; i < 2 * shards; ++i) f.add_server(hw::ServerSpec{});
  const std::size_t added =
      f.add_trace_arrivals(trace, specs(), use_recorded_routing);
  EXPECT_EQ(added, trace.events.size());
  if (capture != nullptr) f.enable_capture(capture);
  f.run(kRunMs);
  return report_json(f.report());
}

// THE acceptance test: capture a live run, replay the capture, and the
// fleet report is byte-identical — at one thread and at four.
TEST(TraceReplay, CapturedRunReplaysByteIdentical) {
  const Captured cap = run_and_capture(/*shards=*/3, /*threads=*/2);
  ASSERT_FALSE(cap.trace.events.empty());

  const std::string replay_1t =
      replay(cap.trace, 3, /*threads=*/1, /*use_recorded_routing=*/true);
  const std::string replay_4t =
      replay(cap.trace, 3, /*threads=*/4, /*use_recorded_routing=*/true);
  EXPECT_EQ(replay_1t, cap.report);
  EXPECT_EQ(replay_4t, cap.report);
}

// Capture → replay → re-capture is a fixed point: the second capture is
// the same trace (same region table order, same verdicts, same events).
TEST(TraceReplay, RecaptureOfReplayIsAFixedPoint) {
  const Captured cap = run_and_capture(2, 1);
  traffic::TraceRecorder second;
  replay(cap.trace, 2, 1, /*use_recorded_routing=*/true,
         RouterPolicy::kLeastLoaded, &second);
  EXPECT_EQ(second.trace().regions, cap.trace.regions);
  EXPECT_EQ(second.trace().games, cap.trace.games);
  EXPECT_EQ(second.trace().events, cap.trace.events);
}

// The captured trace survives the text format unchanged, so file-based
// replay (cocg_fleet --trace-in) sees the identical stream.
TEST(TraceReplay, CapturedTraceRoundTripsThroughText) {
  const Captured cap = run_and_capture(2, 1);
  std::ostringstream os;
  traffic::write_trace(cap.trace, os);
  std::istringstream is(os.str());
  const traffic::Trace reread = traffic::read_trace(is);
  EXPECT_EQ(reread, cap.trace);
  EXPECT_EQ(replay(reread, 2, 1, true), cap.report);
}

// Re-routing the same stream under a different policy still serves every
// arrival — the policy-comparison mode (--replay-reroute).
TEST(TraceReplay, RerouteServesSameArrivalsUnderAnotherPolicy) {
  const Captured cap = run_and_capture(3, 1);
  Fleet f(fleet_config(3, 1, RouterPolicy::kRoundRobin), greedy_factory());
  for (int i = 0; i < 6; ++i) f.add_server(hw::ServerSpec{});
  f.add_trace_arrivals(cap.trace, specs(), /*use_recorded_routing=*/false);
  f.run(kRunMs);
  const auto rep = f.report();
  EXPECT_EQ(rep.arrivals, cap.trace.events.size());
  std::size_t routed = 0;
  for (const auto& row : rep.shards) routed += row.routed;
  EXPECT_EQ(routed, cap.trace.events.size());
}

// Generated traces (not just captured ones) drive the fleet, and the
// per-region report rows account for every routed arrival.
TEST(TraceReplay, GeneratedTraceDrivesFleetWithRegionAccounting) {
  traffic::GeneratorConfig gcfg;
  gcfg.duration_ms = kRunMs;
  gcfg.arrivals_per_hour = 300.0;
  gcfg.seed = 11;
  gcfg.games = specs();
  gcfg.regions = {"eu", "us"};
  const traffic::Trace trace = traffic::generate_trace(gcfg);
  ASSERT_FALSE(trace.events.empty());

  Fleet f(fleet_config(2, 2), greedy_factory());
  for (int i = 0; i < 4; ++i) f.add_server(hw::ServerSpec{});
  f.add_trace_arrivals(trace, specs(), /*use_recorded_routing=*/true);
  f.run(kRunMs);
  const auto rep = f.report();
  EXPECT_EQ(rep.arrivals, trace.events.size());

  // RegionTable order: "global" first, then the trace's regions.
  ASSERT_EQ(rep.regions.size(), 3u);
  EXPECT_EQ(rep.regions[0].region, "global");
  EXPECT_EQ(rep.regions[1].region, "eu");
  EXPECT_EQ(rep.regions[2].region, "us");
  std::size_t routed = 0;
  for (const auto& row : rep.regions) routed += row.routed;
  EXPECT_EQ(routed, rep.arrivals);
  EXPECT_GT(rep.regions[1].routed + rep.regions[2].routed, 0u);
}

TEST(TraceReplay, BindRejectsUnknownGameAndBadScript) {
  traffic::Trace trace;
  trace.regions = {"global"};
  trace.games.push_back({"No Such Game", game::GameCategory::kWeb});
  trace.events.push_back({0, 0, 0, 1, traffic::PlayerProfile::kRegular,
                          1000, 0, -1});
  traffic::RegionTable regions;
  EXPECT_THROW(traffic::bind_trace(trace, specs(), regions),
               traffic::BindError);

  traffic::Trace bad_script;
  bad_script.regions = {"global"};
  bad_script.games.push_back({contra().name, contra().category});
  bad_script.events.push_back({0, 0, 0, 1, traffic::PlayerProfile::kRegular,
                               1000, 10'000, -1});
  EXPECT_THROW(traffic::bind_trace(bad_script, specs(), regions),
               traffic::BindError);
}

TEST(TraceReplay, ReplaySourceHonorsEpochWindows) {
  std::vector<traffic::Arrival> arrivals;
  for (TimeMs t : {TimeMs{0}, TimeMs{5}, TimeMs{5}, TimeMs{10}, TimeMs{12}}) {
    traffic::Arrival a;
    a.at = t;
    a.spec = &contra();
    arrivals.push_back(a);
  }
  traffic::TraceReplaySource src(&arrivals, /*use_recorded_shard=*/true);
  std::vector<traffic::Arrival> out;
  src.generate(0, 5, out);  // first window owns t == 0
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].at, 0);
  EXPECT_EQ(out[2].at, 5);
  out.clear();
  src.generate(5, 10, out);  // (5, 10]
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].at, 10);
  out.clear();
  src.generate(10, 20, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].at, 12);
}

}  // namespace
}  // namespace cocg::fleet
