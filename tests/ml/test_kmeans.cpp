#include "ml/kmeans.h"

#include <gtest/gtest.h>

#include <set>

#include "common/check.h"

namespace cocg::ml {
namespace {

/// Three well-separated 2-D blobs.
std::vector<Point> blobs(Rng& rng, int per_blob = 30) {
  const std::vector<Point> centers{{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  std::vector<Point> pts;
  for (const auto& c : centers) {
    for (int i = 0; i < per_blob; ++i) {
      pts.push_back({c[0] + rng.normal(0, 0.3), c[1] + rng.normal(0, 0.3)});
    }
  }
  return pts;
}

TEST(KMeans, DistSq) {
  EXPECT_DOUBLE_EQ(KMeans::dist_sq({0, 0}, {3, 4}), 25.0);
  EXPECT_DOUBLE_EQ(KMeans::dist_sq({1}, {1}), 0.0);
  EXPECT_THROW(KMeans::dist_sq({1}, {1, 2}), ContractError);
}

TEST(KMeans, RecoversSeparatedBlobs) {
  Rng rng(5);
  const auto pts = blobs(rng);
  KMeansConfig cfg;
  cfg.k = 3;
  const auto res = KMeans::fit(pts, cfg, rng);
  EXPECT_EQ(res.centroids.size(), 3u);
  EXPECT_TRUE(res.converged);
  // Each blob's 30 points share one label, and labels differ across blobs.
  std::set<int> blob_labels;
  for (int b = 0; b < 3; ++b) {
    const int label = res.assignment[static_cast<std::size_t>(b * 30)];
    for (int i = 0; i < 30; ++i) {
      EXPECT_EQ(res.assignment[static_cast<std::size_t>(b * 30 + i)], label);
    }
    blob_labels.insert(label);
  }
  EXPECT_EQ(blob_labels.size(), 3u);
}

TEST(KMeans, SseDecreasesWithK) {
  Rng rng(6);
  const auto pts = blobs(rng);
  const auto curve = sse_curve(pts, 5, rng);
  ASSERT_EQ(curve.size(), 5u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i], curve[i - 1] + 1e-9);
  }
}

TEST(KMeans, ElbowFindsTrueK) {
  Rng rng(7);
  const auto pts = blobs(rng);
  const auto curve = sse_curve(pts, 6, rng);
  EXPECT_EQ(pick_elbow(curve, 0.3), 3);
}

TEST(KMeans, KOneSingleCentroid) {
  Rng rng(8);
  std::vector<Point> pts{{0, 0}, {2, 2}, {4, 4}};
  KMeansConfig cfg;
  cfg.k = 1;
  const auto res = KMeans::fit(pts, cfg, rng);
  ASSERT_EQ(res.centroids.size(), 1u);
  EXPECT_NEAR(res.centroids[0][0], 2.0, 1e-9);
  EXPECT_NEAR(res.centroids[0][1], 2.0, 1e-9);
}

TEST(KMeans, KEqualsNPerfectFit) {
  Rng rng(9);
  std::vector<Point> pts{{0, 0}, {5, 5}, {9, 1}};
  KMeansConfig cfg;
  cfg.k = 3;
  const auto res = KMeans::fit(pts, cfg, rng);
  EXPECT_NEAR(res.sse, 0.0, 1e-12);
}

TEST(KMeans, DuplicatePointsHandled) {
  Rng rng(10);
  std::vector<Point> pts(10, Point{1.0, 1.0});
  KMeansConfig cfg;
  cfg.k = 3;
  const auto res = KMeans::fit(pts, cfg, rng);
  EXPECT_NEAR(res.sse, 0.0, 1e-12);
}

TEST(KMeans, Preconditions) {
  Rng rng(11);
  std::vector<Point> pts{{1, 1}};
  KMeansConfig cfg;
  cfg.k = 2;
  EXPECT_THROW(KMeans::fit(pts, cfg, rng), ContractError);  // k > n
  cfg.k = 0;
  EXPECT_THROW(KMeans::fit(pts, cfg, rng), ContractError);
  std::vector<Point> ragged{{1, 1}, {1}};
  cfg.k = 1;
  EXPECT_THROW(KMeans::fit(ragged, cfg, rng), ContractError);
}

TEST(KMeans, PredictNearestCentroid) {
  const std::vector<Point> centroids{{0, 0}, {10, 10}};
  EXPECT_EQ(KMeans::predict(centroids, {1, 1}), 0);
  EXPECT_EQ(KMeans::predict(centroids, {9, 9}), 1);
}

TEST(PickElbow, HandlesPerfectFit) {
  // SSE hits zero: elbow stops there.
  EXPECT_EQ(pick_elbow({10.0, 0.0, 0.0}, 0.1), 2);
}

TEST(PickElbow, AllBigGainsPicksLast) {
  EXPECT_EQ(pick_elbow({100.0, 50.0, 25.0}, 0.1), 3);
}

TEST(PickElbow, Preconditions) {
  EXPECT_THROW(pick_elbow({}, 0.1), ContractError);
  EXPECT_THROW(pick_elbow({1.0}, 0.0), ContractError);
}

// Property: restarts never worsen the best SSE.
class KMeansRestartProp : public ::testing::TestWithParam<int> {};

TEST_P(KMeansRestartProp, MoreRestartsNoWorse) {
  Rng rng1(42), rng2(42);
  const auto pts = blobs(rng1, 20);
  KMeansConfig one;
  one.k = 3;
  one.restarts = 1;
  KMeansConfig many = one;
  many.restarts = GetParam();
  const double sse_one = KMeans::fit(pts, one, rng1).sse;
  Rng rng3(42);
  const auto pts2 = blobs(rng3, 20);
  const double sse_many = KMeans::fit(pts2, many, rng3).sse;
  EXPECT_LE(sse_many, sse_one + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Restarts, KMeansRestartProp,
                         ::testing::Values(2, 4, 8));

}  // namespace
}  // namespace cocg::ml
