#include "ml/random_forest.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "ml/metrics.h"

namespace cocg::ml {
namespace {

Dataset blobs(Rng& rng, int n_per = 50) {
  Dataset d({"x", "y"});
  const double centers[3][2] = {{0, 0}, {8, 0}, {0, 8}};
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < n_per; ++i) {
      d.add({centers[c][0] + rng.normal(0, 0.8),
             centers[c][1] + rng.normal(0, 0.8)},
            c);
    }
  }
  return d;
}

TEST(RandomForest, LearnsBlobs) {
  Rng rng(1);
  const Dataset d = blobs(rng);
  RandomForestClassifier rf;
  Rng fit(2);
  rf.fit(d, fit);
  EXPECT_TRUE(rf.trained());
  EXPECT_EQ(rf.tree_count(), 25u);
  EXPECT_EQ(rf.num_classes(), 3);
  const auto pred = rf.predict_all(d.features());
  EXPECT_GE(accuracy(d.labels(), pred), 0.97);
}

TEST(RandomForest, SingleTreeWorks) {
  Rng rng(3);
  const Dataset d = blobs(rng, 20);
  RandomForestConfig cfg;
  cfg.n_trees = 1;
  RandomForestClassifier rf(cfg);
  Rng fit(4);
  rf.fit(d, fit);
  EXPECT_EQ(rf.tree_count(), 1u);
  EXPECT_GE(accuracy(d.labels(), rf.predict_all(d.features())), 0.9);
}

TEST(RandomForest, ProbaAveragesTrees) {
  Rng rng(5);
  const Dataset d = blobs(rng);
  RandomForestClassifier rf;
  Rng fit(6);
  rf.fit(d, fit);
  const auto p = rf.predict_proba({0.0, 0.0});
  ASSERT_EQ(p.size(), 3u);
  double total = 0.0;
  for (double v : p) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(p[0], 0.8);
}

TEST(RandomForest, DeterministicGivenSeed) {
  Rng rng(7);
  const Dataset d = blobs(rng, 20);
  RandomForestClassifier a, b;
  Rng fit1(99), fit2(99);
  a.fit(d, fit1);
  b.fit(d, fit2);
  for (double x = -2.0; x < 10.0; x += 0.7) {
    EXPECT_EQ(a.predict({x, x}), b.predict({x, x}));
  }
}

TEST(RandomForest, PredictBeforeFitThrows) {
  RandomForestClassifier rf;
  EXPECT_THROW(rf.predict({1.0, 2.0}), ContractError);
  EXPECT_THROW(rf.predict_proba({1.0, 2.0}), ContractError);
}

TEST(RandomForest, ConfigValidation) {
  Rng rng(8);
  const Dataset d = blobs(rng, 10);
  RandomForestConfig bad;
  bad.n_trees = 0;
  RandomForestClassifier rf(bad);
  Rng fit(9);
  EXPECT_THROW(rf.fit(d, fit), ContractError);
  bad.n_trees = 1;
  bad.bootstrap_fraction = 0.0;
  RandomForestClassifier rf2(bad);
  EXPECT_THROW(rf2.fit(d, fit), ContractError);
}

TEST(RandomForest, BootstrapFractionReducesTreeData) {
  Rng rng(10);
  const Dataset d = blobs(rng, 40);
  RandomForestConfig cfg;
  cfg.bootstrap_fraction = 0.3;
  RandomForestClassifier rf(cfg);
  Rng fit(11);
  rf.fit(d, fit);
  // Still learns the easy problem.
  EXPECT_GE(accuracy(d.labels(), rf.predict_all(d.features())), 0.9);
}

// Property: more trees → training accuracy does not collapse.
class ForestSizeProp : public ::testing::TestWithParam<int> {};

TEST_P(ForestSizeProp, StableAcrossSizes) {
  Rng rng(12);
  const Dataset d = blobs(rng, 30);
  RandomForestConfig cfg;
  cfg.n_trees = GetParam();
  RandomForestClassifier rf(cfg);
  Rng fit(13);
  rf.fit(d, fit);
  EXPECT_GE(accuracy(d.labels(), rf.predict_all(d.features())), 0.95);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ForestSizeProp,
                         ::testing::Values(3, 10, 40));

}  // namespace
}  // namespace cocg::ml
