#include "ml/tree.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "ml/metrics.h"

namespace cocg::ml {
namespace {

/// XOR-ish dataset a depth-2 tree solves exactly.
Dataset xor_data() {
  Dataset d({"x", "y"});
  for (double x : {0.0, 1.0}) {
    for (double y : {0.0, 1.0}) {
      for (int rep = 0; rep < 5; ++rep) {
        d.add({x, y}, (x != y) ? 1 : 0);
      }
    }
  }
  return d;
}

Dataset three_class_blobs(Rng& rng, int n_per = 40) {
  Dataset d({"x", "y"});
  const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < n_per; ++i) {
      d.add({centers[c][0] + rng.normal(0, 0.5),
             centers[c][1] + rng.normal(0, 0.5)},
            c);
    }
  }
  return d;
}

TEST(DecisionTree, FitsXorExactly) {
  DecisionTreeClassifier tree;
  tree.fit(xor_data());
  EXPECT_TRUE(tree.trained());
  EXPECT_EQ(tree.predict({0, 0}), 0);
  EXPECT_EQ(tree.predict({1, 1}), 0);
  EXPECT_EQ(tree.predict({0, 1}), 1);
  EXPECT_EQ(tree.predict({1, 0}), 1);
}

TEST(DecisionTree, SeparatesBlobs) {
  Rng rng(1);
  const Dataset d = three_class_blobs(rng);
  DecisionTreeClassifier tree;
  tree.fit(d);
  const auto pred = tree.predict_all(d.features());
  EXPECT_GE(accuracy(d.labels(), pred), 0.99);
}

TEST(DecisionTree, PureDatasetSingleLeaf) {
  Dataset d({"x"});
  for (int i = 0; i < 10; ++i) d.add({double(i)}, 2);
  DecisionTreeClassifier tree;
  tree.fit(d);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.depth(), 1);
  EXPECT_EQ(tree.predict({100.0}), 2);
}

TEST(DecisionTree, MaxDepthRespected) {
  Rng rng(2);
  const Dataset d = three_class_blobs(rng);
  TreeConfig cfg;
  cfg.max_depth = 2;
  DecisionTreeClassifier tree(cfg);
  tree.fit(d);
  EXPECT_LE(tree.depth(), 3);  // root at depth 1 + 2 split levels
}

TEST(DecisionTree, MinSamplesLeafRespected) {
  Dataset d({"x"});
  // 4 samples, alternating labels: a leaf of 1 would be needed for purity.
  d.add({1.0}, 0);
  d.add({2.0}, 1);
  d.add({3.0}, 0);
  d.add({4.0}, 1);
  TreeConfig cfg;
  cfg.min_samples_leaf = 2;
  DecisionTreeClassifier tree(cfg);
  tree.fit(d);
  // Tree exists and predicts a valid class.
  const int p = tree.predict({2.5});
  EXPECT_TRUE(p == 0 || p == 1);
}

TEST(DecisionTree, PredictBeforeFitThrows) {
  DecisionTreeClassifier tree;
  EXPECT_THROW(tree.predict({1.0}), ContractError);
}

TEST(DecisionTree, FitEmptyThrows) {
  DecisionTreeClassifier tree;
  EXPECT_THROW(tree.fit(Dataset{}), ContractError);
}

TEST(DecisionTree, ProbaSumsToOne) {
  Rng rng(3);
  const Dataset d = three_class_blobs(rng);
  DecisionTreeClassifier tree;
  tree.fit(d);
  const auto p = tree.predict_proba({0.0, 0.0});
  ASSERT_EQ(p.size(), 3u);
  double total = 0.0;
  for (double v : p) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(p[0], 0.9);  // near blob 0
}

TEST(DecisionTree, TiedFeatureValuesNoSplit) {
  Dataset d({"x"});
  d.add({1.0}, 0);
  d.add({1.0}, 1);  // inseparable
  DecisionTreeClassifier tree;
  tree.fit(d);
  EXPECT_EQ(tree.node_count(), 1u);
}

TEST(DecisionTree, FeatureSubsamplingStillLearns) {
  Rng rng(4);
  const Dataset d = three_class_blobs(rng);
  TreeConfig cfg;
  cfg.max_features = 1;
  DecisionTreeClassifier tree(cfg);
  Rng fit_rng(5);
  tree.fit(d, fit_rng);
  const auto pred = tree.predict_all(d.features());
  EXPECT_GE(accuracy(d.labels(), pred), 0.9);
}

// --- RegressionTree ---

TEST(RegressionTree, FitsStepFunction) {
  std::vector<FeatureRow> x;
  std::vector<double> y;
  for (int i = 0; i < 20; ++i) {
    x.push_back({double(i)});
    y.push_back(i < 10 ? 1.0 : 5.0);
  }
  RegressionTree tree;
  tree.fit(x, y);
  EXPECT_NEAR(tree.predict({3.0}), 1.0, 1e-9);
  EXPECT_NEAR(tree.predict({15.0}), 5.0, 1e-9);
}

TEST(RegressionTree, ConstantTargetSingleLeaf) {
  std::vector<FeatureRow> x{{1}, {2}, {3}};
  std::vector<double> y{7.0, 7.0, 7.0};
  RegressionTree tree;
  tree.fit(x, y);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict({42.0}), 7.0);
}

TEST(RegressionTree, ApproximatesLinear) {
  std::vector<FeatureRow> x;
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) {
    x.push_back({double(i)});
    y.push_back(2.0 * i);
  }
  TreeConfig cfg;
  cfg.max_depth = 8;
  RegressionTree tree(cfg);
  tree.fit(x, y);
  // Piecewise-constant approximation should be close at interior points.
  EXPECT_NEAR(tree.predict({50.0}), 100.0, 5.0);
}

TEST(RegressionTree, Preconditions) {
  RegressionTree tree;
  EXPECT_THROW(tree.predict({1.0}), ContractError);
  EXPECT_THROW(tree.fit({}, {}), ContractError);
  EXPECT_THROW(tree.fit({{1.0}}, {1.0, 2.0}), ContractError);
}

// Property: deeper trees never reduce training accuracy on the blobs.
class TreeDepthProp : public ::testing::TestWithParam<int> {};

TEST_P(TreeDepthProp, TrainAccuracyMonotoneEnough) {
  Rng rng(6);
  const Dataset d = three_class_blobs(rng);
  TreeConfig shallow;
  shallow.max_depth = 1;
  TreeConfig deep;
  deep.max_depth = GetParam();
  DecisionTreeClassifier t1(shallow), t2(deep);
  t1.fit(d);
  t2.fit(d);
  const double a1 = accuracy(d.labels(), t1.predict_all(d.features()));
  const double a2 = accuracy(d.labels(), t2.predict_all(d.features()));
  EXPECT_GE(a2 + 1e-12, a1);
}

INSTANTIATE_TEST_SUITE_P(Depths, TreeDepthProp, ::testing::Values(2, 4, 8));

}  // namespace
}  // namespace cocg::ml
