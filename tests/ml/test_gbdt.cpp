#include "ml/gbdt.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "ml/classifier.h"
#include "ml/metrics.h"

namespace cocg::ml {
namespace {

Dataset blobs(Rng& rng, int n_per = 50) {
  Dataset d({"x", "y"});
  const double centers[3][2] = {{0, 0}, {8, 0}, {0, 8}};
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < n_per; ++i) {
      d.add({centers[c][0] + rng.normal(0, 0.8),
             centers[c][1] + rng.normal(0, 0.8)},
            c);
    }
  }
  return d;
}

/// Non-axis-aligned pattern where boosting shines.
Dataset diagonal(Rng& rng, int n = 200) {
  Dataset d({"x", "y"});
  for (int i = 0; i < n; ++i) {
    const double x = rng.uniform(0, 10), y = rng.uniform(0, 10);
    d.add({x, y}, x + y > 10.0 ? 1 : 0);
  }
  return d;
}

TEST(Gbdt, LearnsBlobs) {
  Rng rng(1);
  const Dataset d = blobs(rng);
  GbdtClassifier g;
  Rng fit(2);
  g.fit(d, fit);
  EXPECT_TRUE(g.trained());
  EXPECT_EQ(g.num_classes(), 3);
  EXPECT_EQ(g.rounds_trained(), 40);
  EXPECT_GE(accuracy(d.labels(), g.predict_all(d.features())), 0.97);
}

TEST(Gbdt, LearnsDiagonal) {
  Rng rng(3);
  const Dataset d = diagonal(rng);
  GbdtClassifier g;
  Rng fit(4);
  g.fit(d, fit);
  EXPECT_GE(accuracy(d.labels(), g.predict_all(d.features())), 0.95);
}

TEST(Gbdt, ProbaIsSoftmax) {
  Rng rng(5);
  const Dataset d = blobs(rng);
  GbdtClassifier g;
  Rng fit(6);
  g.fit(d, fit);
  const auto p = g.predict_proba({0.0, 0.0});
  ASSERT_EQ(p.size(), 3u);
  double total = 0.0;
  for (double v : p) {
    EXPECT_GE(v, 0.0);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(p[0], 0.7);
}

TEST(Gbdt, BinaryProblemWorks) {
  Dataset d({"x"});
  for (int i = 0; i < 30; ++i) d.add({double(i)}, i < 15 ? 0 : 1);
  GbdtClassifier g;
  Rng fit(7);
  g.fit(d, fit);
  EXPECT_EQ(g.predict({3.0}), 0);
  EXPECT_EQ(g.predict({25.0}), 1);
}

TEST(Gbdt, MoreRoundsImproveTrainFit) {
  Rng rng(8);
  const Dataset d = diagonal(rng, 300);
  GbdtConfig few;
  few.n_rounds = 2;
  GbdtConfig many;
  many.n_rounds = 60;
  GbdtClassifier g1(few), g2(many);
  Rng f1(9), f2(9);
  g1.fit(d, f1);
  g2.fit(d, f2);
  const double a1 = accuracy(d.labels(), g1.predict_all(d.features()));
  const double a2 = accuracy(d.labels(), g2.predict_all(d.features()));
  EXPECT_GE(a2 + 1e-12, a1);
}

TEST(Gbdt, SubsamplingStillLearns) {
  Rng rng(10);
  const Dataset d = blobs(rng);
  GbdtConfig cfg;
  cfg.subsample = 0.5;
  GbdtClassifier g(cfg);
  Rng fit(11);
  g.fit(d, fit);
  EXPECT_GE(accuracy(d.labels(), g.predict_all(d.features())), 0.95);
}

TEST(Gbdt, PredictBeforeFitThrows) {
  GbdtClassifier g;
  EXPECT_THROW(g.predict({1.0}), ContractError);
}

TEST(Gbdt, ConfigValidation) {
  Dataset d({"x"});
  d.add({1.0}, 0);
  Rng fit(12);
  GbdtConfig bad;
  bad.learning_rate = 0.0;
  GbdtClassifier g(bad);
  EXPECT_THROW(g.fit(d, fit), ContractError);
  bad.learning_rate = 0.1;
  bad.n_rounds = 0;
  GbdtClassifier g2(bad);
  EXPECT_THROW(g2.fit(d, fit), ContractError);
}

// --- Classifier facade ---

TEST(ClassifierFacade, FactoryProducesAllKinds) {
  for (ModelKind kind :
       {ModelKind::kDtc, ModelKind::kRf, ModelKind::kGbdt}) {
    auto c = make_classifier(kind);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->kind(), kind);
    EXPECT_FALSE(c->trained());
  }
}

TEST(ClassifierFacade, KindNames) {
  EXPECT_STREQ(model_kind_name(ModelKind::kDtc), "DTC");
  EXPECT_STREQ(model_kind_name(ModelKind::kRf), "RF");
  EXPECT_STREQ(model_kind_name(ModelKind::kGbdt), "GBDT");
}

class FacadeProp : public ::testing::TestWithParam<ModelKind> {};

TEST_P(FacadeProp, AllKindsLearnBlobs) {
  Rng rng(13);
  const Dataset d = blobs(rng, 40);
  auto c = make_classifier(GetParam());
  Rng fit(14);
  c->fit(d, fit);
  EXPECT_TRUE(c->trained());
  EXPECT_GE(accuracy(d.labels(), c->predict_all(d.features())), 0.95);
  const auto p = c->predict_proba({0.0, 0.0});
  double total = 0.0;
  for (double v : p) total += v;
  EXPECT_NEAR(total, 1.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Kinds, FacadeProp,
                         ::testing::Values(ModelKind::kDtc, ModelKind::kRf,
                                           ModelKind::kGbdt));

}  // namespace
}  // namespace cocg::ml
