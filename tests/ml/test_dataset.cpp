#include "ml/dataset.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace cocg::ml {
namespace {

Dataset small() {
  Dataset d({"f0", "f1"});
  d.add({1.0, 2.0}, 0);
  d.add({3.0, 4.0}, 1);
  d.add({5.0, 6.0}, 2);
  d.add({7.0, 8.0}, 1);
  return d;
}

TEST(Dataset, AddAndAccess) {
  const Dataset d = small();
  EXPECT_EQ(d.size(), 4u);
  EXPECT_EQ(d.num_features(), 2u);
  EXPECT_EQ(d.x(1)[0], 3.0);
  EXPECT_EQ(d.y(2), 2);
  EXPECT_EQ(d.feature_names()[1], "f1");
}

TEST(Dataset, NumClasses) {
  EXPECT_EQ(small().num_classes(), 3);
  Dataset empty;
  EXPECT_EQ(empty.num_classes(), 0);
}

TEST(Dataset, RejectsBadRows) {
  Dataset d;
  d.add({1.0, 2.0}, 0);
  EXPECT_THROW(d.add({1.0}, 0), ContractError);        // width mismatch
  EXPECT_THROW(d.add({1.0, 2.0}, -1), ContractError);  // negative label
}

TEST(Dataset, SplitPartitionsAllRows) {
  Dataset d;
  for (int i = 0; i < 100; ++i) d.add({double(i)}, i % 3);
  Rng rng(1);
  auto [train, test] = d.split(0.75, rng);
  EXPECT_EQ(train.size(), 75u);
  EXPECT_EQ(test.size(), 25u);
  // Every original row appears exactly once across the two parts.
  std::vector<int> seen(100, 0);
  for (std::size_t i = 0; i < train.size(); ++i) {
    ++seen[static_cast<std::size_t>(train.x(i)[0])];
  }
  for (std::size_t i = 0; i < test.size(); ++i) {
    ++seen[static_cast<std::size_t>(test.x(i)[0])];
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(Dataset, SplitIsShuffled) {
  Dataset d;
  for (int i = 0; i < 100; ++i) d.add({double(i)}, 0);
  Rng rng(2);
  auto [train, test] = d.split(0.5, rng);
  // The first half of `train` should not be simply 0..49.
  bool any_high = false;
  for (std::size_t i = 0; i < train.size(); ++i) {
    if (train.x(i)[0] >= 50.0) any_high = true;
  }
  EXPECT_TRUE(any_high);
}

TEST(Dataset, SplitExtremes) {
  Dataset d = small();
  Rng rng(3);
  auto [all, none] = d.split(1.0, rng);
  EXPECT_EQ(all.size(), 4u);
  EXPECT_EQ(none.size(), 0u);
  EXPECT_THROW(d.split(1.5, rng), ContractError);
}

TEST(Dataset, SubsetWithRepeats) {
  const Dataset d = small();
  const Dataset sub = d.subset({0, 0, 3});
  EXPECT_EQ(sub.size(), 3u);
  EXPECT_EQ(sub.x(0)[0], 1.0);
  EXPECT_EQ(sub.x(1)[0], 1.0);
  EXPECT_EQ(sub.y(2), 1);
}

TEST(Dataset, SubsetValidatesIndices) {
  const Dataset d = small();
  EXPECT_THROW(d.subset({99}), ContractError);
}

TEST(Dataset, Append) {
  Dataset a = small();
  const Dataset b = small();
  a.append(b);
  EXPECT_EQ(a.size(), 8u);
  Dataset wrong({"only"});
  wrong.add({1.0}, 0);
  EXPECT_THROW(a.append(wrong), ContractError);
}

}  // namespace
}  // namespace cocg::ml
