// Parity tests for CompiledForest: compiled inference — scalar and
// batched — must be bit-identical to the legacy tree walks of all three
// learners, and the validating constructor must reject every corrupt
// Data variant a broken serializer could produce.
#include "ml/compiled.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/check.h"
#include "ml/gbdt.h"
#include "ml/random_forest.h"
#include "ml/tree.h"

namespace cocg::ml {
namespace {

Dataset blobs(Rng& rng, int classes = 4, int n_per = 60) {
  Dataset d({"x", "y", "z"});
  for (int c = 0; c < classes; ++c) {
    const double cx = 5.0 * (c % 2), cy = 5.0 * (c / 2);
    for (int i = 0; i < n_per; ++i) {
      d.add({cx + rng.normal(0, 1.2), cy + rng.normal(0, 1.2),
             rng.uniform(0.0, 1.0)},
            c);
    }
  }
  return d;
}

std::vector<FeatureRow> probe_rows(Rng& rng, std::size_t n = 200) {
  std::vector<FeatureRow> rows;
  for (std::size_t i = 0; i < n; ++i) {
    rows.push_back({rng.uniform(-2.0, 7.0), rng.uniform(-2.0, 7.0),
                    rng.uniform(0.0, 1.0)});
  }
  return rows;
}

/// EXPECT_EQ on doubles on purpose: the contract is bit-identity, not
/// tolerance.
template <typename Legacy>
void expect_bit_identical(const Legacy& legacy, const CompiledForest& c,
                          const std::vector<FeatureRow>& rows) {
  const auto k = static_cast<std::size_t>(c.num_classes());
  const FeatureMatrix m = FeatureMatrix::from_rows(rows);
  std::vector<int> batch_labels(rows.size());
  std::vector<double> batch_proba(rows.size() * k);
  c.predict_batch(m, batch_labels);
  c.predict_proba_batch(m, batch_proba);
  std::vector<int> simd_labels(rows.size());
  std::vector<double> simd_proba(rows.size() * k);
  c.predict_batch_simd(m, simd_labels);
  c.predict_proba_batch_simd(m, simd_proba);
  std::vector<double> scalar(k, 0.0);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto want_proba = legacy.predict_proba(rows[i]);
    const int want_label = legacy.predict(rows[i]);
    EXPECT_EQ(c.predict(rows[i]), want_label) << "row " << i;
    EXPECT_EQ(batch_labels[i], want_label) << "row " << i;
    EXPECT_EQ(simd_labels[i], want_label) << "row " << i;
    const auto got = c.predict_proba(rows[i]);
    ASSERT_EQ(got.size(), want_proba.size());
    c.predict_proba_into(m.row(i), scalar);
    for (std::size_t cl = 0; cl < k; ++cl) {
      EXPECT_EQ(got[cl], want_proba[cl]) << "row " << i << " class " << cl;
      EXPECT_EQ(scalar[cl], want_proba[cl]) << "row " << i << " class " << cl;
      EXPECT_EQ(batch_proba[i * k + cl], want_proba[cl])
          << "row " << i << " class " << cl;
      EXPECT_EQ(simd_proba[i * k + cl], want_proba[cl])
          << "row " << i << " class " << cl;
    }
  }
}

class CompiledParity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CompiledParity, DtcBitIdentical) {
  Rng rng(GetParam());
  const Dataset d = blobs(rng);
  DecisionTreeClassifier dtc(TreeConfig{/*max_depth=*/8});
  Rng fit(GetParam() + 1);
  dtc.fit(d, fit);
  const CompiledForest c = CompiledForest::compile(dtc);
  EXPECT_EQ(c.kind(), ModelKind::kDtc);
  EXPECT_EQ(c.num_trees(), 1u);
  expect_bit_identical(dtc, c, probe_rows(rng));
}

TEST_P(CompiledParity, RfBitIdentical) {
  Rng rng(GetParam());
  const Dataset d = blobs(rng);
  RandomForestClassifier rf;
  Rng fit(GetParam() + 1);
  rf.fit(d, fit);
  const CompiledForest c = CompiledForest::compile(rf);
  EXPECT_EQ(c.kind(), ModelKind::kRf);
  EXPECT_EQ(c.num_trees(), 25u);
  expect_bit_identical(rf, c, probe_rows(rng));
}

TEST_P(CompiledParity, GbdtBitIdentical) {
  Rng rng(GetParam());
  const Dataset d = blobs(rng);
  GbdtClassifier gbdt;
  Rng fit(GetParam() + 1);
  gbdt.fit(d, fit);
  const CompiledForest c = CompiledForest::compile(gbdt);
  EXPECT_EQ(c.kind(), ModelKind::kGbdt);
  expect_bit_identical(gbdt, c, probe_rows(rng));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompiledParity,
                         ::testing::Values(11u, 222u, 3333u, 44444u));

// The lane-blocked walk must handle every remainder shape: fewer rows
// than a lane block, one row, and counts straddling block boundaries.
TEST(CompiledSimd, RemainderLanesMatchSerialBatch) {
  Rng rng(321);
  const Dataset d = blobs(rng);
  RandomForestClassifier rf;
  Rng fit(322);
  rf.fit(d, fit);
  const CompiledForest c = CompiledForest::compile(rf);
  const auto k = static_cast<std::size_t>(c.num_classes());
  for (std::size_t n :
       {std::size_t{1}, std::size_t{3}, CompiledForest::kLaneWidth - 1,
        CompiledForest::kLaneWidth, CompiledForest::kLaneWidth + 1,
        std::size_t{41}}) {
    const FeatureMatrix m = FeatureMatrix::from_rows(probe_rows(rng, n));
    std::vector<int> want(n), got(n);
    c.predict_batch(m, want);
    c.predict_batch_simd(m, got);
    EXPECT_EQ(want, got) << n;
    std::vector<double> want_p(n * k), got_p(n * k);
    c.predict_proba_batch(m, want_p);
    c.predict_proba_batch_simd(m, got_p);
    for (std::size_t i = 0; i < n * k; ++i) {
      EXPECT_EQ(want_p[i], got_p[i]) << "n " << n << " slot " << i;
    }
  }
}

TEST(FeatureMatrix, RowsAreContiguousViews) {
  FeatureMatrix m(3, 2);
  for (std::size_t i = 0; i < 3; ++i) {
    m.row(i)[0] = static_cast<double>(i);
    m.row(i)[1] = 10.0 + static_cast<double>(i);
  }
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m.row(2)[1], 12.0);
  // Adjacent rows are adjacent in memory.
  EXPECT_EQ(m.row(0).data() + 2, m.row(1).data());
}

TEST(FeatureMatrix, FromRowsCopiesAndChecksWidth) {
  const std::vector<FeatureRow> rows = {{1, 2}, {3, 4}, {5, 6}};
  const FeatureMatrix m = FeatureMatrix::from_rows(rows);
  ASSERT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.row(1)[0], 3.0);
  const std::vector<FeatureRow> ragged = {{1, 2}, {3}};
  EXPECT_THROW(FeatureMatrix::from_rows(ragged), ContractError);
}

TEST(FeatureMatrix, EmptyIsFine) {
  const FeatureMatrix m = FeatureMatrix::from_rows({});
  EXPECT_EQ(m.rows(), 0u);
}

CompiledForest::Data tiny_valid() {
  // One tree: root splits f0 <= 0.5, two leaves with 2-class probas.
  CompiledForest::Data d;
  d.kind = ModelKind::kDtc;
  d.num_classes = 2;
  d.num_features = 1;
  d.leaf_width = 2;
  d.tree_first = {0, 3};
  d.feature = {0, -1, -1};
  d.threshold = {0.5, 0.0, 0.0};
  d.left = {1, 0, 1};  // leaves index the leaf table
  d.right = {2, 0, 0};
  d.leaf_label = {0, 1};
  d.leaf_data = {1.0, 0.0, 0.0, 1.0};
  return d;
}

TEST(CompiledForestValidation, AcceptsWellFormed) {
  const CompiledForest c(tiny_valid());
  EXPECT_TRUE(c.trained());
  EXPECT_EQ(c.predict(std::vector<double>{0.0}), 0);
  EXPECT_EQ(c.predict(std::vector<double>{1.0}), 1);
}

TEST(CompiledForestValidation, RejectsCorruptData) {
  {
    auto d = tiny_valid();
    d.feature = {0, -1};  // array length disagreement
    EXPECT_THROW(CompiledForest{d}, std::runtime_error);
  }
  {
    auto d = tiny_valid();
    d.left[0] = 0;  // child not strictly after parent → cycle
    EXPECT_THROW(CompiledForest{d}, std::runtime_error);
  }
  {
    auto d = tiny_valid();
    d.right[0] = 7;  // child beyond the tree
    EXPECT_THROW(CompiledForest{d}, std::runtime_error);
  }
  {
    auto d = tiny_valid();
    d.feature[0] = 3;  // split feature out of range
    EXPECT_THROW(CompiledForest{d}, std::runtime_error);
  }
  {
    auto d = tiny_valid();
    d.left[1] = 9;  // leaf index beyond the leaf table
    EXPECT_THROW(CompiledForest{d}, std::runtime_error);
  }
  {
    auto d = tiny_valid();
    d.leaf_label[0] = 5;  // label outside [0, num_classes)
    EXPECT_THROW(CompiledForest{d}, std::runtime_error);
  }
  {
    auto d = tiny_valid();
    d.tree_first = {0, 2, 3};  // DTC must be a single tree
    EXPECT_THROW(CompiledForest{d}, std::runtime_error);
  }
  {
    auto d = tiny_valid();
    d.leaf_data.pop_back();  // not a multiple of leaf_width
    EXPECT_THROW(CompiledForest{d}, std::runtime_error);
  }
  {
    auto d = tiny_valid();
    d.kind = ModelKind::kGbdt;  // GBDT needs lr/base_score/1-wide leaves
    EXPECT_THROW(CompiledForest{d}, std::runtime_error);
  }
}

TEST(ModelKindNames, RoundTrip) {
  for (ModelKind k : {ModelKind::kDtc, ModelKind::kRf, ModelKind::kGbdt}) {
    ModelKind back{};
    ASSERT_TRUE(parse_model_kind(model_kind_name(k), back));
    EXPECT_EQ(back, k);
  }
  ModelKind out{};
  EXPECT_FALSE(parse_model_kind("svm", out));
}

}  // namespace
}  // namespace cocg::ml
