#include "ml/graph_cluster.h"

#include <gtest/gtest.h>

#include <set>

#include "common/check.h"
#include "common/rng.h"

namespace cocg::ml {
namespace {

std::vector<Point> blobs(Rng& rng, int per_blob, double spread) {
  const std::vector<Point> centers{{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  std::vector<Point> pts;
  for (const auto& c : centers) {
    for (int i = 0; i < per_blob; ++i) {
      pts.push_back(
          {c[0] + rng.normal(0, spread), c[1] + rng.normal(0, spread)});
    }
  }
  return pts;
}

TEST(GraphCluster, SeparatedBlobsFound) {
  Rng rng(1);
  const auto pts = blobs(rng, 30, 0.3);
  GraphClusterConfig cfg;
  cfg.epsilon = 2.0;  // blob spread ~0.3, separation 10
  const auto res = graph_cluster(pts, cfg);
  EXPECT_EQ(res.num_clusters, 3);
  // Each blob uniform.
  for (int b = 0; b < 3; ++b) {
    const int label = res.assignment[static_cast<std::size_t>(b * 30)];
    for (int i = 0; i < 30; ++i) {
      EXPECT_EQ(res.assignment[static_cast<std::size_t>(b * 30 + i)], label);
    }
  }
}

TEST(GraphCluster, FixedEpsilonRespected) {
  std::vector<Point> pts{{0, 0}, {1, 0}, {10, 0}, {11, 0}};
  GraphClusterConfig cfg;
  cfg.epsilon = 2.0;
  cfg.min_cluster_size = 1;
  const auto res = graph_cluster(pts, cfg);
  EXPECT_EQ(res.num_clusters, 2);
  EXPECT_EQ(res.assignment[0], res.assignment[1]);
  EXPECT_EQ(res.assignment[2], res.assignment[3]);
  EXPECT_NE(res.assignment[0], res.assignment[2]);
  EXPECT_DOUBLE_EQ(res.epsilon_used, 2.0);
}

TEST(GraphCluster, ChainMergesClusters) {
  // The known failure mode vs K-means: a bridge of points chains two
  // blobs into one component.
  std::vector<Point> pts;
  for (int i = 0; i < 10; ++i) pts.push_back({i * 1.0, 0.0});  // bridge
  GraphClusterConfig cfg;
  cfg.epsilon = 1.5;
  cfg.min_cluster_size = 1;
  const auto res = graph_cluster(pts, cfg);
  EXPECT_EQ(res.num_clusters, 1);
}

TEST(GraphCluster, TinyComponentsMerged) {
  Rng rng(2);
  auto pts = blobs(rng, 20, 0.2);
  pts.push_back({5.0, 5.0});  // lone outlier
  GraphClusterConfig cfg;
  cfg.epsilon = 1.0;
  cfg.min_cluster_size = 3;
  const auto res = graph_cluster(pts, cfg);
  EXPECT_EQ(res.num_clusters, 3);  // outlier absorbed
}

TEST(GraphCluster, CentroidsAreComponentMeans) {
  std::vector<Point> pts{{0, 0}, {2, 0}, {100, 0}, {102, 0}};
  GraphClusterConfig cfg;
  cfg.epsilon = 5.0;
  cfg.min_cluster_size = 1;
  const auto res = graph_cluster(pts, cfg);
  ASSERT_EQ(res.num_clusters, 2);
  std::set<double> xs;
  for (const auto& c : res.centroids) xs.insert(c[0]);
  EXPECT_TRUE(xs.count(1.0));
  EXPECT_TRUE(xs.count(101.0));
}

TEST(GraphCluster, SinglePoint) {
  const auto res = graph_cluster({{1.0, 2.0}});
  EXPECT_EQ(res.num_clusters, 1);
  EXPECT_EQ(res.assignment[0], 0);
}

TEST(GraphCluster, Preconditions) {
  EXPECT_THROW(graph_cluster({}), ContractError);
  EXPECT_THROW(graph_cluster({{1.0}, {1.0, 2.0}}), ContractError);
}

// --- Adjusted Rand Index ---

TEST(AdjustedRand, IdenticalPartitionsOne) {
  EXPECT_DOUBLE_EQ(adjusted_rand_index({0, 0, 1, 1}, {0, 0, 1, 1}), 1.0);
  // Label permutation does not matter.
  EXPECT_DOUBLE_EQ(adjusted_rand_index({0, 0, 1, 1}, {5, 5, 2, 2}), 1.0);
}

TEST(AdjustedRand, DisagreementLowers) {
  const double ari = adjusted_rand_index({0, 0, 1, 1}, {0, 1, 0, 1});
  EXPECT_LT(ari, 0.1);
}

TEST(AdjustedRand, TrivialPartitions) {
  EXPECT_DOUBLE_EQ(adjusted_rand_index({0, 0, 0}, {0, 0, 0}), 1.0);
}

TEST(AdjustedRand, Preconditions) {
  EXPECT_THROW(adjusted_rand_index({}, {}), ContractError);
  EXPECT_THROW(adjusted_rand_index({1}, {1, 2}), ContractError);
}

TEST(AdjustedRand, KMeansBeatsGraphOnNoisyBlobs) {
  // The §V-D1 claim in miniature: with noisy, slightly-bridged blobs,
  // K-means (given K) tracks ground truth better than graph partitioning.
  Rng rng(3);
  std::vector<Point> pts;
  std::vector<int> truth;
  // Blobs close enough that threshold-connectivity chains them.
  const std::vector<Point> centers{{0, 0}, {3, 0}, {0, 3}};
  for (int b = 0; b < 3; ++b) {
    for (int i = 0; i < 60; ++i) {
      pts.push_back({centers[static_cast<std::size_t>(b)][0] +
                         rng.normal(0, 0.9),
                     centers[static_cast<std::size_t>(b)][1] +
                         rng.normal(0, 0.9)});
      truth.push_back(b);
    }
  }
  KMeansConfig kcfg;
  kcfg.k = 3;
  const auto km = KMeans::fit(pts, kcfg, rng);
  const auto gc = graph_cluster(pts);
  const double ari_km = adjusted_rand_index(truth, km.assignment);
  const double ari_gc = adjusted_rand_index(truth, gc.assignment);
  EXPECT_GT(ari_km, ari_gc);
  EXPECT_GT(ari_km, 0.7);
}

}  // namespace
}  // namespace cocg::ml
