#include "ml/metrics.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace cocg::ml {
namespace {

TEST(Accuracy, Basics) {
  EXPECT_DOUBLE_EQ(accuracy({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(accuracy({1, 2, 3}, {0, 0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(accuracy({1, 2, 3, 4}, {1, 2, 0, 0}), 0.5);
}

TEST(Accuracy, Preconditions) {
  EXPECT_THROW(accuracy({}, {}), ContractError);
  EXPECT_THROW(accuracy({1}, {1, 2}), ContractError);
}

TEST(ConfusionMatrix, Counts) {
  ConfusionMatrix cm({0, 0, 1, 1, 2}, {0, 1, 1, 1, 0});
  EXPECT_EQ(cm.num_classes(), 3);
  EXPECT_EQ(cm.total(), 5u);
  EXPECT_EQ(cm.count(0, 0), 1u);
  EXPECT_EQ(cm.count(0, 1), 1u);
  EXPECT_EQ(cm.count(1, 1), 2u);
  EXPECT_EQ(cm.count(2, 0), 1u);
  EXPECT_EQ(cm.count(2, 2), 0u);
}

TEST(ConfusionMatrix, AccuracyMatchesFreeFunction) {
  const std::vector<int> t{0, 1, 2, 1, 0}, p{0, 1, 1, 1, 2};
  ConfusionMatrix cm(t, p);
  EXPECT_DOUBLE_EQ(cm.accuracy(), accuracy(t, p));
}

TEST(ConfusionMatrix, PrecisionRecall) {
  // class 1: predicted 3 times, correct twice → precision 2/3;
  // occurs twice, hit twice → recall 1.
  ConfusionMatrix cm({0, 1, 1, 0}, {1, 1, 1, 0});
  EXPECT_NEAR(cm.precision(1), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(cm.recall(1), 1.0);
  EXPECT_DOUBLE_EQ(cm.precision(0), 1.0);
  EXPECT_DOUBLE_EQ(cm.recall(0), 0.5);
}

TEST(ConfusionMatrix, F1AndMacro) {
  ConfusionMatrix cm({0, 1}, {0, 1});
  EXPECT_DOUBLE_EQ(cm.f1(0), 1.0);
  EXPECT_DOUBLE_EQ(cm.macro_f1(), 1.0);
}

TEST(ConfusionMatrix, UnpredictedClassZeroes) {
  ConfusionMatrix cm({0, 1, 2}, {0, 1, 0});
  EXPECT_DOUBLE_EQ(cm.precision(2), 0.0);
  EXPECT_DOUBLE_EQ(cm.f1(2), 0.0);
}

TEST(ConfusionMatrix, ClassCountFromPredictions) {
  // Predictions may name classes truth never contains.
  ConfusionMatrix cm({0, 0}, {0, 5});
  EXPECT_EQ(cm.num_classes(), 6);
}

TEST(ConfusionMatrix, StrRenders) {
  ConfusionMatrix cm({0, 1}, {1, 1});
  const std::string s = cm.str();
  EXPECT_NE(s.find("confusion"), std::string::npos);
}

TEST(ConfusionMatrix, RejectsNegativeLabels) {
  EXPECT_THROW(ConfusionMatrix({-1}, {0}), ContractError);
}

}  // namespace
}  // namespace cocg::ml
