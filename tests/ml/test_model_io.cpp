// Serialization tests for ml/model_io: golden round trips per model kind
// (bit-identical predictions AND byte-identical re-serialization), plus
// the error paths — truncated, corrupt, and version-skewed inputs must
// throw std::runtime_error carrying a line/field diagnostic.
#include "ml/model_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "ml/gbdt.h"
#include "ml/random_forest.h"
#include "ml/tree.h"

namespace cocg::ml {
namespace {

Dataset blobs(Rng& rng, int classes = 3, int n_per = 50) {
  Dataset d({"a", "b"});
  for (int c = 0; c < classes; ++c) {
    for (int i = 0; i < n_per; ++i) {
      d.add({4.0 * c + rng.normal(0, 1.0), rng.normal(0, 1.0)}, c);
    }
  }
  return d;
}

CompiledForest sample_model(ModelKind kind) {
  Rng rng(77);
  const Dataset d = blobs(rng);
  Rng fit(78);
  switch (kind) {
    case ModelKind::kDtc: {
      DecisionTreeClassifier m(TreeConfig{/*max_depth=*/6});
      m.fit(d, fit);
      return CompiledForest::compile(m);
    }
    case ModelKind::kRf: {
      RandomForestConfig cfg;
      cfg.n_trees = 7;
      RandomForestClassifier m(cfg);
      m.fit(d, fit);
      return CompiledForest::compile(m);
    }
    case ModelKind::kGbdt: {
      GbdtConfig cfg;
      cfg.n_rounds = 10;
      GbdtClassifier m(cfg);
      m.fit(d, fit);
      return CompiledForest::compile(m);
    }
  }
  throw std::logic_error("unreachable");
}

class ModelIoGolden : public ::testing::TestWithParam<ModelKind> {};

TEST_P(ModelIoGolden, RoundTripIsExact) {
  const CompiledForest model = sample_model(GetParam());
  std::stringstream ss;
  write_model(model, ss);
  const std::string text = ss.str();
  const CompiledForest back = read_model(ss);

  EXPECT_EQ(back.kind(), model.kind());
  EXPECT_EQ(back.num_classes(), model.num_classes());
  EXPECT_EQ(back.num_trees(), model.num_trees());
  EXPECT_EQ(back.node_count(), model.node_count());

  // Predictions are bit-identical on a probe grid.
  Rng rng(79);
  for (int i = 0; i < 150; ++i) {
    const std::vector<double> x = {rng.uniform(-3.0, 12.0),
                                   rng.uniform(-4.0, 4.0)};
    EXPECT_EQ(back.predict(x), model.predict(x));
    EXPECT_EQ(back.predict_proba(x), model.predict_proba(x));
  }

  // Re-serialization is byte-identical: the golden-file property.
  std::stringstream ss2;
  write_model(back, ss2);
  EXPECT_EQ(ss2.str(), text);
}

INSTANTIATE_TEST_SUITE_P(Kinds, ModelIoGolden,
                         ::testing::Values(ModelKind::kDtc, ModelKind::kRf,
                                           ModelKind::kGbdt));

TEST(ModelIo, FileRoundTrip) {
  const CompiledForest model = sample_model(ModelKind::kRf);
  const std::string path = "test_model_io_tmp.cocgm";
  save_model(model, path);
  const CompiledForest back = load_model(path);
  EXPECT_EQ(back.num_trees(), model.num_trees());
  EXPECT_EQ(back.predict(std::vector<double>{4.0, 0.0}),
            model.predict(std::vector<double>{4.0, 0.0}));
  std::remove(path.c_str());
}

TEST(ModelIo, UntrainedModelRefusesToSerialize) {
  std::stringstream ss;
  EXPECT_THROW(write_model(CompiledForest{}, ss), std::runtime_error);
}

TEST(ModelIo, MissingFileThrows) {
  EXPECT_THROW(load_model("no_such_model_xyz.cocgm"), std::runtime_error);
}

TEST(ModelIo, BadMagicRejected) {
  std::stringstream ss("hello-world\n");
  EXPECT_THROW(read_model(ss), std::runtime_error);
}

TEST(ModelIo, VersionSkewNamesTheVersion) {
  const CompiledForest model = sample_model(ModelKind::kDtc);
  std::stringstream ss;
  write_model(model, ss);
  std::string text = ss.str();
  text.replace(text.find("cocg-model-v1"), 13, "cocg-model-v2");
  std::stringstream skewed(text);
  try {
    read_model(skewed);
    FAIL() << "version skew accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
        << e.what();
  }
}

TEST(ModelIo, TruncationRejectedAnywhere) {
  const CompiledForest model = sample_model(ModelKind::kRf);
  std::stringstream ss;
  write_model(model, ss);
  const std::string full = ss.str();
  for (double frac : {0.1, 0.5, 0.9, 0.99}) {
    std::stringstream cut(
        full.substr(0, static_cast<std::size_t>(full.size() * frac)));
    EXPECT_THROW(read_model(cut), std::runtime_error) << "frac " << frac;
  }
}

TEST(ModelIo, CorruptFieldDiagnosticNamesTheLine) {
  const CompiledForest model = sample_model(ModelKind::kDtc);
  std::stringstream ss;
  write_model(model, ss);
  std::string text = ss.str();
  // Make the class count unparsable.
  const auto pos = text.find("classes ");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, text.find('\n', pos) - pos, "classes banana");
  std::stringstream corrupt(text);
  try {
    read_model(corrupt);
    FAIL() << "corrupt field accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line"), std::string::npos)
        << e.what();
  }
}

TEST(ModelIo, OutOfRangeChildRejected) {
  const CompiledForest model = sample_model(ModelKind::kDtc);
  std::stringstream ss;
  write_model(model, ss);
  std::string text = ss.str();
  // First internal node line: "node <f> <thr> <l> <r>" — point its left
  // child far out of bounds. The re-validation in the reader must catch it.
  const auto pos = text.find("\nnode ");
  ASSERT_NE(pos, std::string::npos);
  const auto line_end = text.find('\n', pos + 1);
  std::istringstream fields(text.substr(pos + 1, line_end - pos - 1));
  std::string tag, f, thr;
  fields >> tag >> f >> thr;
  text.replace(pos + 1, line_end - pos - 1,
               tag + " " + f + " " + thr + " 99999 99999");
  std::stringstream corrupt(text);
  EXPECT_THROW(read_model(corrupt), std::runtime_error);
}

TEST(ModelIo, UnknownKindRejected) {
  const CompiledForest model = sample_model(ModelKind::kDtc);
  std::stringstream ss;
  write_model(model, ss);
  std::string text = ss.str();
  const auto pos = text.find("kind ");
  text.replace(pos, text.find('\n', pos) - pos, "kind svm");
  std::stringstream corrupt(text);
  EXPECT_THROW(read_model(corrupt), std::runtime_error);
}

}  // namespace
}  // namespace cocg::ml
