#include "obs/health.h"

#include <gtest/gtest.h>

#include <sstream>

#include "obs/json.h"

namespace cocg::obs {
namespace {

HealthSnapshot sample_snapshot() {
  HealthSnapshot snap;
  snap.t = 30'000;
  snap.arrivals = 12;
  snap.router_decisions_per_s = 0.4;
  HealthShard row;
  row.shard = 0;
  row.servers = 2;
  row.running = 5;
  row.queued = 1;
  row.pending_events = 42;
  row.routed = 12;
  row.mean_gpu_util = 0.625;
  snap.shards.push_back(row);
  SloAttainment slo;
  slo.slo_class = "moba";
  slo.runs = 3;
  slo.fps_attainment_pct = 100.0;
  slo.latency_attainment_pct = 2.0 / 3.0 * 100.0;
  snap.slo.push_back(slo);
  snap.stage_costs[static_cast<std::size_t>(Stage::kRouter)] =
      StageStats{12, 1200};
  return snap;
}

TEST(Health, SnapshotIsOneJsonlLine) {
  std::ostringstream os;
  write_health_snapshot(sample_snapshot(), os);
  const std::string line = os.str();
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');
  // Exactly one line: no interior newlines.
  EXPECT_EQ(line.find('\n'), line.size() - 1);
}

TEST(Health, SnapshotParsesAndCarriesEveryField) {
  std::ostringstream os;
  write_health_snapshot(sample_snapshot(), os);
  JsonValue doc;
  ASSERT_TRUE(json_parse(os.str(), doc)) << os.str();
  EXPECT_EQ(doc.get_number("t_ms"), 30'000.0);
  EXPECT_EQ(doc.get_number("arrivals"), 12.0);
  EXPECT_DOUBLE_EQ(doc.get_number("router_decisions_per_s"), 0.4);

  const JsonValue* shards = doc.find("shards");
  ASSERT_NE(shards, nullptr);
  ASSERT_TRUE(shards->is_array());
  ASSERT_EQ(shards->array.size(), 1u);
  const JsonValue& row = shards->array[0];
  EXPECT_EQ(row.get_number("shard"), 0.0);
  EXPECT_EQ(row.get_number("servers"), 2.0);
  EXPECT_EQ(row.get_number("running"), 5.0);
  EXPECT_EQ(row.get_number("queued"), 1.0);
  EXPECT_EQ(row.get_number("pending_events"), 42.0);
  EXPECT_EQ(row.get_number("routed"), 12.0);
  EXPECT_DOUBLE_EQ(row.get_number("mean_gpu_util"), 0.625);

  const JsonValue* slo = doc.find("slo");
  ASSERT_NE(slo, nullptr);
  ASSERT_TRUE(slo->is_array());
  ASSERT_EQ(slo->array.size(), 1u);
  EXPECT_EQ(slo->array[0].get_string("class"), "moba");
  EXPECT_EQ(slo->array[0].get_number("runs"), 3.0);

  const JsonValue* stages = doc.find("stage_costs");
  ASSERT_NE(stages, nullptr);
  ASSERT_TRUE(stages->is_array());
  ASSERT_EQ(stages->array.size(), kNumStages);
  const JsonValue& router =
      stages->array[static_cast<std::size_t>(Stage::kRouter)];
  EXPECT_EQ(router.get_string("stage"), "router");
  EXPECT_EQ(router.get_number("calls"), 12.0);
  EXPECT_EQ(router.get_number("total_ns"), 1200.0);
}

}  // namespace
}  // namespace cocg::obs
