#include "obs/trace_export.h"

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/metrics.h"

namespace cocg::obs {
namespace {

class ObsGuard {
 public:
  explicit ObsGuard(bool on, bool trace_on = false)
      : saved_(enabled()), saved_trace_(false) {
    set_enabled(on);
    set_trace_enabled(trace_on);
  }
  ~ObsGuard() {
    set_enabled(saved_);
    set_trace_enabled(saved_trace_);
  }

 private:
  bool saved_;
  bool saved_trace_;
};

TEST(TraceExport, EnableRequiresBothSwitches) {
  ObsGuard guard(false, false);
  EXPECT_FALSE(trace_enabled());
  set_trace_enabled(true);
  EXPECT_FALSE(trace_enabled());  // master switch still off
  set_enabled(true);
  EXPECT_TRUE(trace_enabled());
  set_trace_enabled(false);
  EXPECT_FALSE(trace_enabled());
}

TEST(TraceExport, GoldenChromeTraceJson) {
  TraceBuilder b;
  b.set_process_name(1, "server0");
  b.set_thread_name(1, 2, "DOTA2#2");
  b.add_complete(1, 2, "exec:1", "stage", 1000, 5000);
  b.add_counter(1, "gpu0 util", 1000, {{"gpu_pct", 55.5}});
  b.add_instant(1, 2, "hold", "regulator", 2000, {{"why", "over limit"}});

  const std::string expected =
      "{\"traceEvents\":["
      "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
      "\"args\":{\"name\":\"server0\"}},\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":2,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"DOTA2#2\"}},\n"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":2,\"ts\":1000000,\"dur\":5000000,"
      "\"name\":\"exec:1\",\"cat\":\"stage\"},\n"
      "{\"ph\":\"C\",\"pid\":1,\"ts\":1000000,\"name\":\"gpu0 util\","
      "\"args\":{\"gpu_pct\":55.5}},\n"
      "{\"ph\":\"i\",\"pid\":1,\"tid\":2,\"ts\":2000000,\"name\":\"hold\","
      "\"cat\":\"regulator\",\"s\":\"t\","
      "\"args\":{\"why\":\"over limit\"}}"
      "],\"displayTimeUnit\":\"ms\"}";
  EXPECT_EQ(b.to_json(), expected);
}

TEST(TraceExport, OutputIsValidJsonWithRequiredStructure) {
  TraceBuilder b;
  b.set_process_name(3, "server2");
  b.add_complete(3, 1, "loading", "stage", 0, 12000);
  b.add_counter(3, "gpu0 util", 5000,
                {{"gpu_pct", 80.0}, {"cpu_pct", 40.0}});

  JsonValue v;
  ASSERT_TRUE(json_parse(b.to_json(), v));
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.get_string("displayTimeUnit"), "ms");
  const JsonValue* evs = v.find("traceEvents");
  ASSERT_NE(evs, nullptr);
  ASSERT_TRUE(evs->is_array());
  ASSERT_EQ(evs->array.size(), 3u);  // 1 metadata + 2 payload
  for (const auto& e : evs->array) {
    ASSERT_TRUE(e.is_object());
    EXPECT_NE(e.find("ph"), nullptr);
    EXPECT_NE(e.find("pid"), nullptr);
    EXPECT_NE(e.find("name"), nullptr);
  }
  // Metadata first; sim ms scaled to trace microseconds.
  EXPECT_EQ(evs->array[0].get_string("ph"), "M");
  EXPECT_EQ(evs->array[1].get_string("ph"), "X");
  EXPECT_EQ(evs->array[1].get_number("ts"), 0.0);
  EXPECT_EQ(evs->array[1].get_number("dur"), 12000000.0);
  EXPECT_EQ(evs->array[2].get_number("ts"), 5000000.0);
  const JsonValue* args = evs->array[2].find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->get_number("gpu_pct"), 80.0);
  EXPECT_EQ(args->get_number("cpu_pct"), 40.0);
}

TEST(TraceExport, EmptyBuilderStillProducesValidJson) {
  TraceBuilder b;
  JsonValue v;
  ASSERT_TRUE(json_parse(b.to_json(), v));
  const JsonValue* evs = v.find("traceEvents");
  ASSERT_NE(evs, nullptr);
  EXPECT_TRUE(evs->is_array());
  EXPECT_TRUE(evs->array.empty());
}

TEST(TraceExport, ClearDropsEventsAndNames) {
  TraceBuilder b;
  b.set_process_name(1, "p");
  b.add_complete(1, 1, "x", "c", 0, 1);
  EXPECT_EQ(b.size(), 1u);
  b.clear();
  EXPECT_EQ(b.size(), 0u);
  JsonValue v;
  ASSERT_TRUE(json_parse(b.to_json(), v));
  EXPECT_TRUE(v.find("traceEvents")->array.empty());
}

}  // namespace
}  // namespace cocg::obs
