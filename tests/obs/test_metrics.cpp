#include "obs/metrics.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "obs/json.h"

namespace cocg::obs {
namespace {

/// Flip the global switch for one test and restore it after.
class ObsGuard {
 public:
  explicit ObsGuard(bool on) : saved_(enabled()) { set_enabled(on); }
  ~ObsGuard() { set_enabled(saved_); }

 private:
  bool saved_;
};

TEST(Metrics, DisabledByDefault) { EXPECT_FALSE(enabled()); }

TEST(Metrics, CounterMonotonicity) {
  ObsGuard guard(true);
  MetricsRegistry reg;
  Counter c = reg.counter("test.count");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
  c.add(0);
  EXPECT_EQ(c.value(), 5u);
}

TEST(Metrics, RecordingGatedByGlobalSwitch) {
  ObsGuard guard(false);
  MetricsRegistry reg;
  Counter c = reg.counter("test.gated");
  Gauge g = reg.gauge("test.gated_gauge");
  Histogram h = reg.histogram("test.gated_hist", {1.0, 2.0});
  c.add();
  g.set(3.0);
  h.record(1.5);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);

  set_enabled(true);
  c.add();
  g.set(3.0);
  h.record(1.5);
  EXPECT_EQ(c.value(), 1u);
  EXPECT_EQ(g.value(), 3.0);
  EXPECT_EQ(h.count(), 1u);
}

TEST(Metrics, DefaultConstructedHandlesAreInertAndSafe) {
  ObsGuard guard(true);
  Counter c;
  Gauge g;
  Histogram h;
  EXPECT_FALSE(c.valid());
  c.add();      // must not crash
  g.set(1.0);   // must not crash
  h.record(1);  // must not crash
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.num_buckets(), 0u);
}

TEST(Metrics, HandleReuseSameCell) {
  ObsGuard guard(true);
  MetricsRegistry reg;
  Counter a = reg.counter("shared.name");
  Counter b = reg.counter("shared.name");
  a.add(2);
  b.add(3);
  // Both handles aggregate into the one cell (per-game metrics resolved by
  // independent monitors rely on this).
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(b.value(), 5u);
  EXPECT_EQ(reg.counter_value("shared.name"), 5u);
}

TEST(Metrics, HistogramBucketEdges) {
  ObsGuard guard(true);
  MetricsRegistry reg;
  // Buckets: [-inf,10), [10,20), [20,+inf) overflow.
  Histogram h = reg.histogram("test.hist", {10.0, 20.0});
  ASSERT_EQ(h.num_buckets(), 3u);
  h.record(0.0);    // bucket 0
  h.record(9.999);  // bucket 0
  h.record(10.0);   // bucket 1 (edges are upper bounds, half-open)
  h.record(19.0);   // bucket 1
  h.record(20.0);   // overflow
  h.record(500.0);  // overflow
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0 + 9.999 + 10.0 + 19.0 + 20.0 + 500.0);
}

TEST(Metrics, HistogramFirstRegistrationLayoutWins) {
  ObsGuard guard(true);
  MetricsRegistry reg;
  Histogram a = reg.histogram("test.layout", {1.0, 2.0, 3.0});
  Histogram b = reg.histogram("test.layout", {100.0});
  EXPECT_EQ(a.num_buckets(), 4u);
  EXPECT_EQ(b.num_buckets(), 4u);
  b.record(2.5);
  EXPECT_EQ(a.bucket(2), 1u);
}

TEST(Metrics, ResetKeepsHandlesValid) {
  ObsGuard guard(true);
  MetricsRegistry reg;
  Counter c = reg.counter("test.reset");
  Gauge g = reg.gauge("test.reset_gauge");
  Histogram h = reg.histogram("test.reset_hist", {5.0});
  c.add(7);
  g.set(2.5);
  h.record(1.0);
  reg.reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket(0), 0u);
  // The zeroed cells are still live — recording resumes on old handles.
  c.add();
  h.record(1.0);
  EXPECT_EQ(c.value(), 1u);
  EXPECT_EQ(reg.counter_value("test.reset"), 1u);
  EXPECT_EQ(h.count(), 1u);
}

TEST(Metrics, JsonExportParsesAndCarriesValues) {
  ObsGuard guard(true);
  MetricsRegistry reg;
  reg.counter("c.one").add(3);
  reg.gauge("g.one").set(1.5);
  Histogram h = reg.histogram("h.one", {10.0, 20.0});
  h.record(5.0);
  h.record(15.0);

  JsonValue v;
  ASSERT_TRUE(json_parse(reg.to_json(), v));
  ASSERT_TRUE(v.is_object());
  const JsonValue* counters = v.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->get_number("c.one"), 3.0);
  const JsonValue* gauges = v.find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->get_number("g.one"), 1.5);
  const JsonValue* hists = v.find("histograms");
  ASSERT_NE(hists, nullptr);
  const JsonValue* hist = hists->find("h.one");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->get_number("count"), 2.0);
  EXPECT_EQ(hist->get_number("sum"), 20.0);
  const JsonValue* buckets = hist->find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_TRUE(buckets->is_array());
  ASSERT_EQ(buckets->array.size(), 3u);
  EXPECT_EQ(buckets->array[0].number, 1.0);
  EXPECT_EQ(buckets->array[1].number, 1.0);
  EXPECT_EQ(buckets->array[2].number, 0.0);
}

TEST(MetricsMerge, CountersSumAcrossRegistries) {
  ObsGuard guard(true);
  MetricsRegistry a, b;
  a.counter("shared").add(3);
  b.counter("shared").add(4);
  b.counter("only_b").add(7);
  a.merge_from(b);
  EXPECT_EQ(a.counter_value("shared"), 7u);
  EXPECT_EQ(a.counter_value("only_b"), 7u);
  // Source is untouched.
  EXPECT_EQ(b.counter_value("shared"), 4u);
}

TEST(MetricsMerge, GaugeLastWriteWins) {
  ObsGuard guard(true);
  MetricsRegistry a, b, c;
  a.gauge("g").set(1.0);
  b.gauge("g").set(2.0);
  a.merge_from(b);
  EXPECT_EQ(a.gauge("g").value(), 2.0);
  // A registry that never wrote the gauge must not clobber the value.
  c.gauge("g");
  a.merge_from(c);
  EXPECT_EQ(a.gauge("g").value(), 2.0);
}

TEST(MetricsMerge, HistogramsSumBucketwise) {
  ObsGuard guard(true);
  MetricsRegistry a, b;
  Histogram ha = a.histogram("h", {10.0, 20.0});
  Histogram hb = b.histogram("h", {10.0, 20.0});
  ha.record(5.0);
  hb.record(15.0);
  hb.record(25.0);
  a.merge_from(b);
  Histogram merged = a.histogram("h", {10.0, 20.0});
  EXPECT_EQ(merged.bucket(0), 1u);
  EXPECT_EQ(merged.bucket(1), 1u);
  EXPECT_EQ(merged.bucket(2), 1u);
  EXPECT_EQ(merged.count(), 3u);
  EXPECT_DOUBLE_EQ(merged.sum(), 45.0);
}

TEST(MetricsMerge, HistogramLayoutMismatchNamesTheInstrument) {
  ObsGuard guard(true);
  MetricsRegistry a, b;
  a.histogram("fleet.latency", {10.0, 20.0});
  b.histogram("fleet.latency", {5.0, 20.0});
  try {
    a.merge_from(b);
    FAIL() << "merge_from accepted mismatched bucket layouts";
  } catch (const ContractError& e) {
    // The diagnostic must point at the offending instrument by name.
    EXPECT_NE(std::string(e.what()).find("fleet.latency"), std::string::npos)
        << e.what();
  }
}

TEST(MetricsMerge, MergeIntoEmptyCopiesEverything) {
  ObsGuard guard(true);
  MetricsRegistry src, dst;
  src.counter("c").add(2);
  src.gauge("g").set(9.0);
  src.histogram("h", {1.0}).record(0.5);
  dst.merge_from(src);
  EXPECT_EQ(dst.counter_value("c"), 2u);
  EXPECT_EQ(dst.gauge("g").value(), 9.0);
  EXPECT_EQ(dst.histogram("h", {1.0}).count(), 1u);
  // Merging is additive and repeatable (shard-order folds rely on this).
  dst.merge_from(src);
  EXPECT_EQ(dst.counter_value("c"), 4u);
}

TEST(Metrics, SnapshotAccessors) {
  ObsGuard guard(true);
  MetricsRegistry reg;
  reg.counter("x");
  reg.gauge("y");
  reg.histogram("z", {1.0});
  EXPECT_TRUE(reg.has_counter("x"));
  EXPECT_FALSE(reg.has_counter("y"));
  EXPECT_TRUE(reg.has_gauge("y"));
  EXPECT_TRUE(reg.has_histogram("z"));
  const auto names = reg.counter_names();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "x");
}

}  // namespace
}  // namespace cocg::obs
