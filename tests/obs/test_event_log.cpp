#include "obs/event_log.h"

#include <gtest/gtest.h>

#include <sstream>

#include "obs/json.h"
#include "obs/metrics.h"

namespace cocg::obs {
namespace {

class ObsGuard {
 public:
  explicit ObsGuard(bool on) : saved_(enabled()) { set_enabled(on); }
  ~ObsGuard() { set_enabled(saved_); }

 private:
  bool saved_;
};

void fill_sample_log(EventLog& log) {
  log.record(1000, AdmissionEvent{7, "DOTA2", true, "empty server", 2, 1,
                                  250});
  log.record(1500, AdmissionEvent{8, "CSGO", false,
                                  "expected combined consumption exceeds "
                                  "limit",
                                  0, -1, 0});
  log.record(2000, MonitorRecord{3, "DOTA2", "entered_execution", 4});
  log.record(2500,
             PredictionOutcome{3, "DOTA2", 4, 4, true, "dtc", 12.5});
  log.record(3000, RegulatorIntervention{5, "CSGO", true, 5000});
  log.record(3500, MigrationEvent{"Contra", "baseline", "flagship"});
  log.record(4000, SessionEvent{3, "DOTA2", true, 2, 1});
}

TEST(EventLog, RecordGatedByGlobalSwitch) {
  ObsGuard guard(false);
  EventLog log;
  log.record(1, MigrationEvent{"g", "a", "b"});
  EXPECT_EQ(log.size(), 0u);
  set_enabled(true);
  log.record(1, MigrationEvent{"g", "a", "b"});
  EXPECT_EQ(log.size(), 1u);
}

TEST(EventLog, KindNames) {
  EXPECT_STREQ(event_kind_name(AdmissionEvent{}), "admission");
  EXPECT_STREQ(event_kind_name(MonitorRecord{}), "monitor");
  EXPECT_STREQ(event_kind_name(PredictionOutcome{}), "prediction");
  EXPECT_STREQ(event_kind_name(RegulatorIntervention{}), "regulator");
  EXPECT_STREQ(event_kind_name(MigrationEvent{}), "migration");
  EXPECT_STREQ(event_kind_name(SessionEvent{}), "session");
}

TEST(EventLog, EveryLineIsValidJson) {
  ObsGuard guard(true);
  EventLog log;
  fill_sample_log(log);
  std::istringstream is(log.to_jsonl());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(is, line)) {
    JsonValue v;
    EXPECT_TRUE(json_parse(line, v)) << "bad line: " << line;
    EXPECT_TRUE(v.is_object());
    EXPECT_NE(v.find("t"), nullptr);
    EXPECT_NE(v.find("kind"), nullptr);
    ++lines;
  }
  EXPECT_EQ(lines, log.size());
}

TEST(EventLog, JsonlRoundTrip) {
  ObsGuard guard(true);
  EventLog log;
  fill_sample_log(log);
  const std::string first = log.to_jsonl();

  std::istringstream is(first);
  std::vector<Event> parsed;
  ASSERT_TRUE(read_jsonl(is, parsed));
  ASSERT_EQ(parsed.size(), log.size());

  // Re-serialize the parsed events: byte-identical means every field
  // survived the trip.
  std::ostringstream os;
  for (const auto& e : parsed) os << event_to_json(e) << '\n';
  EXPECT_EQ(os.str(), first);

  // Spot-check typed contents.
  const auto* adm = std::get_if<AdmissionEvent>(&parsed[0].payload);
  ASSERT_NE(adm, nullptr);
  EXPECT_EQ(parsed[0].t, 1000);
  EXPECT_EQ(adm->request, 7u);
  EXPECT_TRUE(adm->admitted);
  EXPECT_EQ(adm->server, 2u);
  EXPECT_EQ(adm->gpu, 1);
  EXPECT_EQ(adm->waited_ms, 250);
  const auto* rej = std::get_if<AdmissionEvent>(&parsed[1].payload);
  ASSERT_NE(rej, nullptr);
  EXPECT_FALSE(rej->admitted);
  const auto* pred = std::get_if<PredictionOutcome>(&parsed[3].payload);
  ASSERT_NE(pred, nullptr);
  EXPECT_EQ(pred->model, "dtc");
  EXPECT_DOUBLE_EQ(pred->redundancy_gpu, 12.5);
}

TEST(EventLog, ReasonStringsAreEscaped) {
  ObsGuard guard(true);
  EventLog log;
  log.record(1, AdmissionEvent{1, "we\"ird\ngame", false, "a\\b", 0, -1, 0});
  std::istringstream is(log.to_jsonl());
  std::vector<Event> parsed;
  ASSERT_TRUE(read_jsonl(is, parsed));
  ASSERT_EQ(parsed.size(), 1u);
  const auto* a = std::get_if<AdmissionEvent>(&parsed[0].payload);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->game, "we\"ird\ngame");
  EXPECT_EQ(a->reason, "a\\b");
}

TEST(EventLog, ReadRejectsMalformedAndUnknownKind) {
  std::vector<Event> out;
  std::istringstream bad_json("{not json\n");
  EXPECT_FALSE(read_jsonl(bad_json, out));
  std::istringstream bad_kind("{\"t\":1,\"kind\":\"martian\"}\n");
  EXPECT_FALSE(read_jsonl(bad_kind, out));
  std::istringstream blank_ok("\n\n");
  EXPECT_TRUE(read_jsonl(blank_ok, out));
  EXPECT_TRUE(out.empty());
}

TEST(EventLog, ClearEmptiesTheLog) {
  ObsGuard guard(true);
  EventLog log;
  fill_sample_log(log);
  EXPECT_GT(log.size(), 0u);
  log.clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.to_jsonl(), "");
}

}  // namespace
}  // namespace cocg::obs
