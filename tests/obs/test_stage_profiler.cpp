#include "obs/profiler.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

#include "obs/domain.h"
#include "obs/json.h"

namespace cocg::obs {
namespace {

/// Save/restore the profiling switch and clock mode around one test.
class ProfilingGuard {
 public:
  ProfilingGuard(bool on, ProfilerClockMode mode)
      : saved_on_(profiling_enabled()), saved_mode_(profiler_clock_mode()) {
    set_profiling_enabled(on);
    set_profiler_clock_mode(mode);
  }
  ~ProfilingGuard() {
    set_profiling_enabled(saved_on_);
    set_profiler_clock_mode(saved_mode_);
  }

 private:
  bool saved_on_;
  ProfilerClockMode saved_mode_;
};

TEST(StageProfiler, StageNamesStableAndDistinct) {
  EXPECT_STREQ(stage_name(Stage::kRngDraws), "rng_draws");
  EXPECT_STREQ(stage_name(Stage::kResourceKernels), "resource_kernels");
  EXPECT_STREQ(stage_name(Stage::kContentionResolve), "contention_resolve");
  EXPECT_STREQ(stage_name(Stage::kEventQueue), "event_queue");
  EXPECT_STREQ(stage_name(Stage::kPredictorDecide), "predictor_decide");
  EXPECT_STREQ(stage_name(Stage::kDistributorDecide), "distributor_decide");
  EXPECT_STREQ(stage_name(Stage::kRegulator), "regulator");
  EXPECT_STREQ(stage_name(Stage::kRouter), "router");
  EXPECT_STREQ(stage_name(Stage::kShardBarrier), "shard_barrier");
  std::set<std::string> names;
  for (std::size_t i = 0; i < kNumStages; ++i) names.insert(stage_name(i));
  EXPECT_EQ(names.size(), kNumStages);
}

TEST(StageProfiler, DisabledScopesRecordNothing) {
  ProfilingGuard guard(false, ProfilerClockMode::kDeterministic);
  StageProfiler prof;
  const StageTimer timer(prof, Stage::kRouter);
  { StageScope scope(timer); }
  EXPECT_EQ(prof.stats(Stage::kRouter).calls, 0u);
  EXPECT_EQ(prof.total_calls(), 0u);
}

TEST(StageProfiler, DeterministicClockCountsTransitions) {
  ProfilingGuard guard(true, ProfilerClockMode::kDeterministic);
  StageProfiler prof;
  const StageTimer timer(prof, Stage::kEventQueue);
  for (int i = 0; i < 3; ++i) {
    StageScope scope(timer);
  }
  // Each scope draws two consecutive sequence numbers: cost 1 per call.
  EXPECT_EQ(prof.stats(Stage::kEventQueue).calls, 3u);
  EXPECT_EQ(prof.stats(Stage::kEventQueue).total_ns, 3u);
  EXPECT_EQ(prof.total_calls(), 3u);
  EXPECT_EQ(prof.total_ns(), 3u);
}

TEST(StageProfiler, WallClockAdvancesMonotonically) {
  ProfilingGuard guard(true, ProfilerClockMode::kWall);
  StageProfiler prof;
  const StageTimer timer(prof, Stage::kRegulator);
  { StageScope scope(timer); }
  EXPECT_EQ(prof.stats(Stage::kRegulator).calls, 1u);
}

TEST(StageProfiler, UnresolvedTimerIsInert) {
  ProfilingGuard guard(true, ProfilerClockMode::kDeterministic);
  const StageTimer timer;  // never resolved
  EXPECT_FALSE(timer.valid());
  { StageScope scope(timer); }  // must not crash or record anywhere
}

TEST(StageProfiler, MergeSumsSlotsAndSnapshots) {
  ProfilingGuard guard(true, ProfilerClockMode::kDeterministic);
  StageProfiler a, b;
  const StageTimer ta(a, Stage::kRouter);
  const StageTimer tb(b, Stage::kRouter);
  const StageTimer tb2(b, Stage::kShardBarrier);
  { StageScope s(ta); }
  { StageScope s(tb); }
  { StageScope s(tb2); }
  a.merge_from(b);
  EXPECT_EQ(a.stats(Stage::kRouter).calls, 2u);
  EXPECT_EQ(a.stats(Stage::kShardBarrier).calls, 1u);
  // Snapshot merge behaves identically.
  StageProfiler c;
  c.merge_from(b.profile());
  EXPECT_EQ(c.stats(Stage::kRouter).calls, 1u);
  EXPECT_EQ(c.stats(Stage::kShardBarrier).calls, 1u);
}

TEST(StageProfiler, ResetZeroesEverySlot) {
  ProfilingGuard guard(true, ProfilerClockMode::kDeterministic);
  StageProfiler prof;
  const StageTimer timer(prof, Stage::kRngDraws);
  { StageScope scope(timer); }
  ASSERT_GT(prof.total_calls(), 0u);
  prof.reset();
  EXPECT_EQ(prof.total_calls(), 0u);
  EXPECT_EQ(prof.total_ns(), 0u);
}

TEST(StageProfiler, ExportCountersWritesCallsAndNanos) {
  ProfilingGuard guard(true, ProfilerClockMode::kDeterministic);
  const bool was_enabled = enabled();
  set_enabled(true);
  StageProfiler prof;
  const StageTimer timer(prof, Stage::kDistributorDecide);
  { StageScope scope(timer); }
  { StageScope scope(timer); }
  MetricsRegistry reg;
  prof.export_counters(reg);
  EXPECT_EQ(reg.counter_value("profiler.distributor_decide.calls"), 2u);
  EXPECT_EQ(reg.counter_value("profiler.distributor_decide.total_ns"), 2u);
  EXPECT_TRUE(reg.has_counter("profiler.shard_barrier.calls"));
  set_enabled(was_enabled);
}

TEST(StageProfiler, DomainScopingIsolatesProfilers) {
  ProfilingGuard guard(true, ProfilerClockMode::kDeterministic);
  const std::uint64_t global_before = profiler().total_calls();
  Domain d;
  {
    ScopedDomain sd(d);
    const StageTimer timer = stage_timer(Stage::kEventQueue);
    { StageScope scope(timer); }
  }
  EXPECT_EQ(d.profiler.stats(Stage::kEventQueue).calls, 1u);
  EXPECT_EQ(profiler().total_calls(), global_before);
}

TEST(StageProfiler, StageCostsJsonEmitsAllStagesAndParses) {
  StageProfile p{};
  p[static_cast<std::size_t>(Stage::kRouter)] = StageStats{4, 400};
  std::ostringstream os;
  write_stage_costs_json(p, os);
  JsonValue doc;
  ASSERT_TRUE(json_parse(os.str(), doc)) << os.str();
  ASSERT_TRUE(doc.is_array());
  ASSERT_EQ(doc.array.size(), kNumStages);
  // Rows come in enum order; zero rows are kept for schema stability.
  EXPECT_EQ(doc.array[0].get_string("stage"), "rng_draws");
  EXPECT_EQ(doc.array[0].get_number("calls"), 0.0);
  const auto& router = doc.array[static_cast<std::size_t>(Stage::kRouter)];
  EXPECT_EQ(router.get_string("stage"), "router");
  EXPECT_EQ(router.get_number("calls"), 4.0);
  EXPECT_EQ(router.get_number("total_ns"), 400.0);
}

}  // namespace
}  // namespace cocg::obs
