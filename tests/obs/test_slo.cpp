#include "obs/slo.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/check.h"
#include "obs/domain.h"

namespace cocg::obs {
namespace {

std::vector<SloClassConfig> one_class() {
  return {{"moba", 0.95, 80.0}};
}

TEST(Slo, UnconfiguredTrackerIsEmpty) {
  SloTracker t;
  EXPECT_FALSE(t.configured());
  EXPECT_EQ(t.num_classes(), 0u);
  EXPECT_TRUE(t.attainment().empty());
}

TEST(Slo, VacuousAttainmentWhenNoRuns) {
  Domain d;
  ScopedDomain sd(d);
  SloTracker t;
  t.configure(one_class());
  const auto rows = t.attainment();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].slo_class, "moba");
  EXPECT_EQ(rows[0].runs, 0u);
  EXPECT_DOUBLE_EQ(rows[0].fps_attainment_pct, 100.0);
  EXPECT_DOUBLE_EQ(rows[0].latency_attainment_pct, 100.0);
}

TEST(Slo, FpsBoundaryInclusiveLatencyBoundaryExclusive) {
  Domain d;
  ScopedDomain sd(d);
  SloTracker t;
  t.configure(one_class());
  // Exactly at both targets: FPS attained (>=), latency NOT attained (<).
  t.record(0, 0.95, 80.0);
  const auto rows = t.attainment();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].runs, 1u);
  EXPECT_DOUBLE_EQ(rows[0].fps_attainment_pct, 100.0);
  EXPECT_DOUBLE_EQ(rows[0].latency_attainment_pct, 0.0);
}

TEST(Slo, AttainmentCountsPerRun) {
  Domain d;
  ScopedDomain sd(d);
  SloTracker t;
  t.configure(one_class());
  t.record(0, 0.99, 20.0);   // both attained
  t.record(0, 0.80, 200.0);  // both missed
  t.record(0, 0.96, 79.9);   // both attained
  t.record(0, 0.50, 120.0);  // both missed
  const auto rows = t.attainment();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].runs, 4u);
  EXPECT_DOUBLE_EQ(rows[0].fps_attainment_pct, 50.0);
  EXPECT_DOUBLE_EQ(rows[0].latency_attainment_pct, 50.0);
}

TEST(Slo, ZeroLatencyMeansNoFramesAndCountsAttained) {
  Domain d;
  ScopedDomain sd(d);
  SloTracker t;
  t.configure(one_class());
  t.record(0, 1.0, 0.0);
  t.record(0, 1.0, -5.0);
  const auto rows = t.attainment();
  EXPECT_EQ(rows[0].runs, 2u);
  EXPECT_DOUBLE_EQ(rows[0].latency_attainment_pct, 100.0);
}

TEST(Slo, OutOfRangeClassIndexDropped) {
  Domain d;
  ScopedDomain sd(d);
  SloTracker t;
  t.configure(one_class());
  t.record(7, 1.0, 10.0);
  EXPECT_EQ(t.attainment()[0].runs, 0u);
}

TEST(Slo, RecordingIsIndependentOfObsSwitch) {
  Domain d;
  ScopedDomain sd(d);
  ASSERT_FALSE(enabled());  // tests run with the switch off by default
  SloTracker t;
  t.configure(one_class());
  t.record(0, 0.99, 10.0);
  EXPECT_EQ(t.attainment()[0].runs, 1u);
  // The registry mirror, in contrast, is gated like every handle.
  EXPECT_EQ(d.metrics.histogram("slo.moba.fps_ratio", {}).count(), 0u);
}

TEST(Slo, MirrorsFeedRegistryWhenEnabled) {
  Domain d;
  ScopedDomain sd(d);
  set_enabled(true);
  SloTracker t;
  t.configure(one_class());
  t.record(0, 0.99, 10.0);
  set_enabled(false);
  EXPECT_TRUE(d.metrics.has_histogram("slo.moba.fps_ratio"));
  EXPECT_TRUE(d.metrics.has_histogram("slo.moba.latency_ms"));
}

TEST(Slo, MergeSumsBuckets) {
  Domain d;
  ScopedDomain sd(d);
  SloTracker a, b;
  a.configure(one_class());
  b.configure(one_class());
  a.record(0, 0.99, 10.0);
  b.record(0, 0.50, 200.0);
  b.record(0, 0.97, 20.0);
  a.merge_from(b);
  const auto rows = a.attainment();
  EXPECT_EQ(rows[0].runs, 3u);
  EXPECT_NEAR(rows[0].fps_attainment_pct, 200.0 / 3.0, 1e-9);
}

TEST(Slo, MergeRejectsMismatchedClassTables) {
  Domain d;
  ScopedDomain sd(d);
  SloTracker a, b;
  a.configure(one_class());
  b.configure({{"web", 0.80, 150.0}});
  EXPECT_THROW(a.merge_from(b), ContractError);
}

TEST(Slo, ConfigureIsOneShot) {
  Domain d;
  ScopedDomain sd(d);
  SloTracker t;
  t.configure(one_class());
  EXPECT_THROW(t.configure(one_class()), ContractError);
}

TEST(Slo, ClassConfigsRoundTrip) {
  Domain d;
  ScopedDomain sd(d);
  SloTracker a;
  a.configure({{"web", 0.80, 150.0}, {"moba", 0.95, 80.0}});
  SloTracker b;
  b.configure(a.class_configs());
  a.record(0, 0.9, 10.0);
  b.merge_from(a);  // identical tables → merge accepted
  EXPECT_EQ(b.attainment()[0].runs, 1u);
}

TEST(Slo, ResetValuesKeepsClassesDropsCounts) {
  Domain d;
  ScopedDomain sd(d);
  SloTracker t;
  t.configure(one_class());
  t.record(0, 0.99, 10.0);
  t.reset_values();
  EXPECT_TRUE(t.configured());
  EXPECT_EQ(t.attainment()[0].runs, 0u);
}

TEST(Slo, AttainmentJsonIsCanonical) {
  std::vector<SloAttainment> rows;
  rows.push_back(SloAttainment{"moba", 2, 50.0, 100.0});
  std::ostringstream os;
  SloTracker::write_attainment_json(rows, os);
  EXPECT_EQ(os.str(),
            "[{\"class\":\"moba\",\"runs\":2,\"fps_attainment_pct\":50,"
            "\"latency_attainment_pct\":100}]");
}

}  // namespace
}  // namespace cocg::obs
