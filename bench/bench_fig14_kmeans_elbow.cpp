// Fig. 14 — "Clustering result with different K value."
//
// For each of the four figure games (the paper plots CSGO, DOTA2, Genshin
// Impact, Devil May Cry; Contra's trivial 2-cluster curve is included for
// completeness), run K-means over the profiled 5-second frames for
// K = 1..8 and print the SSE series plus the elbow-chosen K.
//
// Paper reference points: SSEs change little beyond the inflection; chosen
// K values are Contra 2, CSGO 4, Genshin Impact 4, DOTA2 5, DMC 6.
#include <iostream>

#include "bench_util.h"
#include "common/rng.h"
#include "core/frame_profiler.h"
#include "game/tracegen.h"
#include "ml/kmeans.h"

using namespace cocg;

int main() {
  bench::banner("Fig. 14", "K-means SSE vs K, per game");

  TablePrinter table({"game", "K=1", "K=2", "K=3", "K=4", "K=5", "K=6",
                      "K=7", "K=8", "elbow K", "paper K"});
  std::vector<std::vector<std::string>> csv;
  csv.push_back({"game", "k", "sse"});

  const std::map<std::string, int> paper_k = {{"Contra", 2},
                                              {"CSGO", 4},
                                              {"Genshin Impact", 4},
                                              {"DOTA2", 5},
                                              {"Devil May Cry", 6}};

  for (const auto& spec : game::paper_suite()) {
    Rng rng(1234 ^ spec.id.value);
    // Profiling traces (lab runs across scripts/players).
    std::vector<telemetry::Trace> traces;
    for (int r = 0; r < 12; ++r) {
      const auto script = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(spec.scripts.size()) - 1));
      traces.push_back(game::profile_run(
          spec, script, static_cast<std::uint64_t>(r % 6 + 1),
          rng.next_u64()));
    }
    // Frame points in normalized space.
    std::vector<ml::Point> points;
    const ResourceVector scale = default_norm_scale();
    for (const auto& t : traces) {
      for (const auto& fs : t.to_frame_slices()) {
        ml::Point p(kNumDims);
        for (std::size_t i = 0; i < kNumDims; ++i) {
          p[i] = fs.mean_usage.at(i) / scale.at(i);
        }
        points.push_back(std::move(p));
      }
    }
    const auto sse = ml::sse_curve(points, 8, rng, 6);
    core::ProfilerConfig pc;
    const int elbow = ml::pick_elbow(sse, pc.elbow_min_gain);

    std::vector<std::string> row{spec.name};
    for (std::size_t k = 0; k < 8; ++k) {
      row.push_back(k < sse.size() ? TablePrinter::fmt(sse[k], 3) : "-");
      if (k < sse.size()) {
        csv.push_back({spec.name, std::to_string(k + 1),
                       TablePrinter::fmt(sse[k], 6)});
      }
    }
    row.push_back(std::to_string(elbow));
    row.push_back(std::to_string(paper_k.at(spec.name)));
    table.add_row(row);
  }

  table.print(std::cout);
  bench::write_csv("fig14_kmeans_elbow", csv);
  std::cout << "\nExpected shape: sharp SSE drops up to the game's paper K,"
               " little change beyond (the Fig. 14 inflection points).\n";
  return 0;
}
