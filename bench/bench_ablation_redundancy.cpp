// Ablation — redundancy allocation (Eq. 1).
//
// S = (1 − P) × M is the paper's dynamic-adjustment safety margin applied
// after prediction errors. This ablation compares QoS and throughput of
// the full rule against (a) no redundancy at all and (b) a fixed 10%-of-
// peak margin, on the Genshin+DOTA2 co-location.
//
// Expected: without redundancy, callback episodes run under-provisioned
// and QoS violations rise; a fixed margin either wastes allocation (high
// accuracy) or under-covers (low accuracy) — Eq. 1 adapts.
#include <iostream>

#include "bench_util.h"
#include "core/cocg_scheduler.h"
#include "platform/cloud_platform.h"

using namespace cocg;

namespace {

struct Outcome {
  double throughput = 0.0;
  double qos_violation_s = 0.0;
  double mean_fps_ratio = 0.0;
};

Outcome run_variant(double redundancy_scale, std::uint64_t seed) {
  // redundancy_scale < 0 → fixed 10% of peak; otherwise scale × Eq. 1.
  core::OfflineConfig ocfg = bench::bench_offline_config(4242);
  auto models = core::train_suite(bench::paper_suite_static(), ocfg);

  // Emulate the variants by adjusting each predictor's effective accuracy
  // exposure: we wrap via monitor config knobs — redundancy comes from the
  // predictor, so we instead retrain with the same data and post-process
  // by overriding the profile peaks is invasive. Simplest faithful knob:
  // CocgConfig carries a redundancy scale applied by the monitors.
  core::CocgConfig cfg;
  cfg.monitor.redundancy_scale = redundancy_scale;

  platform::PlatformConfig pcfg;
  pcfg.seed = seed;
  platform::CloudPlatform cloud(
      pcfg, std::make_unique<core::CocgScheduler>(std::move(models), cfg));
  hw::ServerSpec one_gpu;
  one_gpu.num_gpus = 1;
  cloud.add_server(one_gpu);
  static const auto& suite = bench::paper_suite_static();
  cloud.add_source({&suite[2], 1, 8});  // Genshin Impact
  cloud.add_source({&suite[0], 1, 8});  // DOTA2
  cloud.run(60 * 60 * 1000);

  Outcome out;
  out.throughput = cloud.throughput();
  double ratio_sum = 0;
  for (const auto& run : cloud.completed_runs()) {
    out.qos_violation_s += ms_to_sec(run.qos_violation_ms);
    ratio_sum += run.mean_fps_ratio;
  }
  out.mean_fps_ratio =
      cloud.completed_runs().empty()
          ? 0.0
          : ratio_sum / static_cast<double>(cloud.completed_runs().size());
  return out;
}

}  // namespace

int main() {
  bench::banner("Ablation", "redundancy allocation S = (1-P)x M (Eq. 1)");

  TablePrinter table({"variant", "throughput", "QoS violations (s)",
                      "mean FPS ratio"});
  std::vector<std::vector<std::string>> csv;
  csv.push_back({"variant", "throughput", "qos_s", "fps_ratio"});
  const std::vector<std::pair<std::string, double>> variants = {
      {"no redundancy (S = 0)", 0.0},
      {"Eq. 1 (S = (1-P)M)", 1.0},
      {"double (S = 2(1-P)M)", 2.0}};
  // Averaged over several platform seeds: single co-location runs are
  // noisy enough to drown the redundancy signal.
  const std::vector<std::uint64_t> seeds = {777, 778, 779, 780};
  for (const auto& [name, scale] : variants) {
    Outcome sum;
    for (const auto seed : seeds) {
      const auto out = run_variant(scale, seed);
      sum.throughput += out.throughput;
      sum.qos_violation_s += out.qos_violation_s;
      sum.mean_fps_ratio += out.mean_fps_ratio;
    }
    const double n = static_cast<double>(seeds.size());
    table.add_row({name, TablePrinter::fmt(sum.throughput / n, 0),
                   TablePrinter::fmt(sum.qos_violation_s / n, 0),
                   TablePrinter::fmt_pct(100 * sum.mean_fps_ratio / n, 1)});
    csv.push_back({name, TablePrinter::fmt(sum.throughput / n, 1),
                   TablePrinter::fmt(sum.qos_violation_s / n, 1),
                   TablePrinter::fmt(sum.mean_fps_ratio / n, 4)});
  }
  table.print(std::cout);
  bench::write_csv("ablation_redundancy", csv);
  return 0;
}
