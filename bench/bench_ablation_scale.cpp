// Ablation — scaling to larger servers and more co-located games (§IV-D).
//
// "When considering scales for larger servers with more CPUs, GPUs, and
// also more games that are co-located, our work is more expansive than the
// previous work." Sweep the server size (GPUs per server × CPU capacity)
// under a proportional five-game closed-loop mix and report per-GPU
// throughput for CoCG vs VBP — fine-grained co-location should keep its
// edge (or grow it) as the packing problem gets bigger.
#include <iostream>

#include "bench_util.h"
#include "core/baselines.h"
#include "core/cocg_scheduler.h"
#include "platform/cloud_platform.h"

using namespace cocg;

namespace {

double run_scale(std::unique_ptr<platform::Scheduler> sched, int gpus,
                 std::uint64_t seed) {
  platform::PlatformConfig pcfg;
  pcfg.seed = seed;
  platform::CloudPlatform cloud(pcfg, std::move(sched));
  hw::ServerSpec big;
  big.num_gpus = gpus;
  // CPU grows with the SKU but never below the baseline's full 4-core
  // pool — a 1-GPU box still has a whole CPU.
  big.cpu_capacity_pct = std::max(100.0, 100.0 * gpus / 2.0);
  big.ram_mb = std::max(8192.0, 8192.0 * gpus / 2.0);
  cloud.add_server(big);
  for (const auto& g : bench::paper_suite_static()) {
    cloud.add_source({&g, g.short_game ? gpus : std::max(1, gpus / 2), 16});
  }
  cloud.run(60 * 60 * 1000);
  return cloud.throughput() / gpus;  // per-GPU delivered game-seconds
}

}  // namespace

int main() {
  bench::banner("Ablation (§IV-D)", "scaling: per-GPU throughput vs size");

  auto fresh = [] {
    return core::train_suite(bench::paper_suite_static(),
                             bench::bench_offline_config(4646));
  };

  TablePrinter table({"GPUs per server", "VBP T/GPU", "CoCG T/GPU",
                      "CoCG advantage"});
  std::vector<std::vector<std::string>> csv;
  csv.push_back({"gpus", "vbp_per_gpu", "cocg_per_gpu", "advantage"});
  for (int gpus : {1, 2, 4, 8}) {
    const double vbp =
        run_scale(std::make_unique<core::VbpScheduler>(fresh()), gpus, 4600);
    const double cocg = run_scale(
        std::make_unique<core::CocgScheduler>(fresh()), gpus, 4600);
    const double adv = vbp > 0 ? 100.0 * (cocg / vbp - 1.0) : 0.0;
    table.add_row({std::to_string(gpus), TablePrinter::fmt(vbp, 0),
                   TablePrinter::fmt(cocg, 0),
                   (adv >= 0 ? "+" : "") + TablePrinter::fmt(adv, 1) + "%"});
    csv.push_back({std::to_string(gpus), TablePrinter::fmt(vbp, 1),
                   TablePrinter::fmt(cocg, 1), TablePrinter::fmt(adv, 2)});
  }
  table.print(std::cout);
  bench::write_csv("ablation_scale", csv);
  std::cout << "\nExpected: CoCG's per-GPU throughput advantage holds or"
               " grows with server size — more co-residents mean more"
               " complementary-placement opportunities (§IV-D).\n";
  return 0;
}
