// bench_tick — simulation hot-loop tick throughput.
//
// The fleet layer parallelizes across shards; this bench tracks how fast a
// *single* shard's inner loop runs. It pins a fixed population of
// long-running sessions (a synthetic "marathon" game whose one execution
// stage outlasts the measured window, so there is no admission/reap churn)
// and times CloudPlatform::advance_until over a steady-state window at
// 1 / 8 / 32 servers.
//
// Two workload flavours per server count:
//  - "noisy": the default stochastic models (measurement noise, demand
//    jitter, network jitter). Reported for context; dominated by the
//    Box–Muller transcendentals, whose draw values are pinned bit-exactly
//    by the determinism contract and therefore cannot be optimized away.
//  - "det": all noise sources zeroed. This isolates the simulation
//    machinery (event queue, session table, resolver, telemetry) that the
//    hot-path work targets, and exercises the noise-off fast paths.
//
// The noisy rows run the production-default quiescence engine (incremental
// resolve + macro ticks); noise defeats both fast paths, so they measure
// the engine's bookkeeping overhead on the per-tick path. The det row pins
// the engine off (always-resolve oracle) so its number stays comparable to
// the recorded pre-optimization baseline. Two extra steady-state rows at
// 32 servers — spikes zeroed, control period stretched to 60 s — compare
// the engine against its always-resolve twin on the same workload; the
// bench exits non-zero unless the quiescent row is at least
// --min-quiesce-speedup (default 3.0) times the always-resolve row
// (docs/performance.md).
//
// Emits BENCH_tick.json. With --baseline <json> the bench also gates
// itself: it exits non-zero unless ticks_per_sec_s32_det is at least
// --min-speedup (default 2.0) times the baseline's recorded value. CI runs
// the gate against bench/baselines/BENCH_tick_baseline.json, recorded at
// the commit before the hot-path rewrite (see docs/performance.md).
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "bench_util.h"
#include "platform/cloud_platform.h"

using namespace cocg;

namespace {

/// One loading stage, then a single execution stage that dwells for days:
/// the session population is constant over any realistic window.
game::GameSpec marathon_spec(bool det) {
  game::GameSpec g;
  g.id = GameId{901};
  g.name = "Marathon";
  g.category = game::GameCategory::kMoba;

  game::FrameClusterSpec load;
  load.id = 0;
  load.name = "load";
  load.centroid = ResourceVector{28.0, 6.0, 700.0, 420.0};
  load.jitter = ResourceVector{2.0, 0.8, 12.0, 6.0};
  load.fps_base = 0.0;

  game::FrameClusterSpec play;
  play.id = 1;
  play.name = "play";
  play.centroid = ResourceVector{10.0, 20.0, 820.0, 450.0};
  play.jitter = ResourceVector{1.2, 1.6, 10.0, 5.0};
  play.fps_base = 60.0;
  if (det) {
    load.jitter = ResourceVector{};
    play.jitter = ResourceVector{};
  }
  g.clusters = {load, play};

  game::StageTypeSpec loading;
  loading.id = 0;
  loading.name = "loading";
  loading.kind = game::StageKind::kLoading;
  loading.clusters = {0};
  loading.min_dwell_ms = 5000;
  loading.max_dwell_ms = 5000;

  game::StageTypeSpec exec;
  exec.id = 1;
  exec.name = "endless";
  exec.kind = game::StageKind::kExecution;
  exec.clusters = {1};
  exec.min_dwell_ms = 48LL * 3600 * 1000;
  exec.max_dwell_ms = 48LL * 3600 * 1000;
  g.stage_types = {loading, exec};
  g.loading_stage_type = 0;

  game::ScriptSpec script;
  script.name = "endless";
  script.segments.push_back(game::ScriptSegment{1, 1, 1, 0.0});
  g.scripts = {script};
  return g;
}

/// Fills every server with a fixed number of sessions and then refuses all
/// further work: pure hot-loop measurement, no admission/control cost.
class PinScheduler final : public platform::Scheduler {
 public:
  PinScheduler(int per_server, ResourceVector alloc)
      : per_server_(per_server), alloc_(alloc) {}

  std::string name() const override { return "pin"; }

  std::optional<platform::Placement> admit(
      platform::PlatformView& view, const platform::GameRequest&) override {
    for (ServerId id : view.server_ids()) {
      const auto& srv = view.server(id);
      if (static_cast<int>(srv.session_count()) >= per_server_) continue;
      // Choose the least-utilized GPU view the allocation fits on.
      int best = -1;
      double best_util = 2.0;
      for (int gq = 0; gq < srv.spec().num_gpus; ++gq) {
        const double u = srv.utilization_on_gpu(gq);
        if (alloc_.fits_within(srv.free_on_gpu(gq)) && u < best_util) {
          best = gq;
          best_util = u;
        }
      }
      if (best >= 0) return platform::Placement{id, best, alloc_};
    }
    return std::nullopt;
  }

 private:
  int per_server_;
  ResourceVector alloc_;
};

struct TickResult {
  int servers = 0;
  std::size_t sessions = 0;
  double wall_s = 0.0;
  double ticks_per_sec = 0.0;          ///< hardware ticks / wall second
  double session_ticks_per_sec = 0.0;  ///< sessions advanced / wall second
};

struct Config {
  int servers;
  DurationMs ticks;
  bool obs;
  bool det;
  /// Quiescence engine (incremental resolve + macro ticks) on/off.
  bool quiesce;
  /// Steady-state rows: spikes zeroed and a 60 s control period, so
  /// macro-tick windows actually form between control ticks.
  bool steady;
  std::string key;  ///< top-level ticks_per_sec key ("" = row only)
};

TickResult run_config(const Config& c, int sessions_per_server) {
  obs::reset();
  obs::set_enabled(c.obs);

  platform::PlatformConfig cfg;
  cfg.seed = 7001;
  cfg.incremental_resolve = c.quiesce;
  cfg.macro_ticks = c.quiesce;
  if (c.det) {
    cfg.measurement_noise_rel = 0.0;
    cfg.streaming.network_jitter_ms = 0.0;
  }
  if (c.steady) {
    cfg.session.spike_prob = 0.0;
    cfg.control_period_ms = 60000;
  }
  const game::GameSpec spec = marathon_spec(c.det);
  // 8 sessions per 2-GPU server: CPU 8x11 = 88 of 100, GPU 4x22 = 88 per
  // device. Allocations leave headroom so contention stays unsaturated.
  const ResourceVector alloc{11.0, 22.0, 900.0, 500.0};
  auto sched = std::make_unique<PinScheduler>(sessions_per_server, alloc);
  platform::CloudPlatform cloud(cfg, std::move(sched));

  hw::ServerSpec sku;  // default 2-GPU baseline SKU
  for (int s = 0; s < c.servers; ++s) cloud.add_server(sku);
  const int want = c.servers * sessions_per_server;
  for (int i = 0; i < want; ++i) {
    cloud.submit(&spec, 0, static_cast<std::uint64_t>(i + 1));
  }

  // Warm past the loading stage into the endless execution stage. The
  // horizon must exceed warm + measure or advance_until would silently
  // stop ticking at the experiment end and inflate ticks/s.
  const DurationMs warm_ms = 20 * cfg.tick_ms;
  cloud.begin(warm_ms + (c.ticks + 20) * cfg.tick_ms);
  cloud.advance_until(warm_ms);
  if (cloud.running_sessions() != static_cast<std::size_t>(want)) {
    std::cerr << "bench_tick: expected " << want << " pinned sessions, have "
              << cloud.running_sessions() << "\n";
    std::exit(2);
  }

  const TimeMs t0 = warm_ms;
  const TimeMs t1 = t0 + c.ticks * cfg.tick_ms;
  const auto wall0 = std::chrono::steady_clock::now();
  cloud.advance_until(t1);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  cloud.finish();

  TickResult r;
  r.servers = c.servers;
  r.sessions = cloud.running_sessions();
  r.wall_s = wall_s;
  r.ticks_per_sec = static_cast<double>(c.ticks) / wall_s;
  r.session_ticks_per_sec =
      static_cast<double>(c.ticks) *
      static_cast<double>(r.sessions) / wall_s;
  obs::set_enabled(false);
  return r;
}

/// Minimal extraction of a top-level numeric field from a BenchJson file.
double json_field(const std::string& path, const std::string& key) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "bench_tick: cannot open baseline " << path << "\n";
    std::exit(2);
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  const std::string needle = "\"" + key + "\":";
  const auto pos = text.find(needle);
  if (pos == std::string::npos) {
    std::cerr << "bench_tick: baseline " << path << " lacks key " << key
              << "\n";
    std::exit(2);
  }
  return std::strtod(text.c_str() + pos + needle.size(), nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  double min_speedup = 2.0;
  double min_quiesce_speedup = 3.0;
  int repeats = 5;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--min-speedup" && i + 1 < argc) {
      min_speedup = std::strtod(argv[++i], nullptr);
    } else if (arg == "--min-quiesce-speedup" && i + 1 < argc) {
      min_quiesce_speedup = std::strtod(argv[++i], nullptr);
    } else if (arg == "--repeats" && i + 1 < argc) {
      repeats = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
      if (repeats < 1) repeats = 1;
    } else {
      std::cerr << "usage: bench_tick [--baseline BENCH_tick.json]"
                   " [--min-speedup X] [--min-quiesce-speedup X]"
                   " [--repeats N]\n";
      return 2;
    }
  }

  bench::banner("tick", "hot-loop tick throughput at steady state");
  constexpr int kPerServer = 8;

  bench::BenchJson json("tick");
  json.set("sessions_per_server", static_cast<double>(kPerServer));

  TablePrinter table({"servers", "sessions", "noise", "obs", "engine",
                      "measured ticks", "wall s", "ticks/s",
                      "session-ticks/s"});
  std::vector<std::vector<std::string>> csv;
  csv.push_back({"servers", "sessions", "noise", "obs", "engine", "wall_s",
                 "ticks_per_sec", "session_ticks_per_sec"});

  // Noisy rows: production default (engine on, defeated by noise — pure
  // overhead measurement). The det row pins the always-resolve oracle so
  // ticks_per_sec_s32_det stays comparable to the recorded baseline. The
  // two steady rows are the quiescence comparison on one workload.
  const std::vector<Config> configs = {
      {1, 60000, false, false, true, false, "ticks_per_sec_s1"},
      {8, 12000, false, false, true, false, "ticks_per_sec_s8"},
      {32, 4000, false, false, true, false, "ticks_per_sec_s32"},
      {32, 4000, true, false, true, false, ""},
      {32, 4000, false, true, false, false, "ticks_per_sec_s32_det"},
      {32, 4000, false, true, false, true, "ticks_per_sec_s32_always"},
      {32, 40000, false, true, true, true, "ticks_per_sec_s32_quiesce"}};

  double s32_det = 0.0;
  double s32_always = 0.0;
  double s32_quiesce = 0.0;
  for (const auto& c : configs) {
    // Best of N trials: each trial is a deterministic replay of the same
    // simulation, so the fastest one is the least-perturbed measurement of
    // the code (shared machines easily add ±20% of scheduler noise).
    TickResult r = run_config(c, kPerServer);
    for (int rep = 1; rep < repeats; ++rep) {
      const TickResult t = run_config(c, kPerServer);
      if (t.ticks_per_sec > r.ticks_per_sec) r = t;
    }
    if (c.key == "ticks_per_sec_s32_det") s32_det = r.ticks_per_sec;
    if (c.key == "ticks_per_sec_s32_always") s32_always = r.ticks_per_sec;
    if (c.key == "ticks_per_sec_s32_quiesce") s32_quiesce = r.ticks_per_sec;
    const std::string obs_label = c.obs ? "on" : "off";
    const std::string noise_label = c.det ? "off" : "on";
    const std::string engine_label = c.quiesce ? "quiesce" : "always";
    table.add_row({std::to_string(r.servers), std::to_string(r.sessions),
                   noise_label, obs_label, engine_label,
                   std::to_string(c.ticks), TablePrinter::fmt(r.wall_s, 3),
                   TablePrinter::fmt(r.ticks_per_sec, 0),
                   TablePrinter::fmt(r.session_ticks_per_sec, 0)});
    csv.push_back({std::to_string(r.servers), std::to_string(r.sessions),
                   noise_label, obs_label, engine_label,
                   TablePrinter::fmt(r.wall_s, 4),
                   TablePrinter::fmt(r.ticks_per_sec, 1),
                   TablePrinter::fmt(r.session_ticks_per_sec, 1)});
    json.row()
        .set("servers", static_cast<double>(r.servers))
        .set("sessions", static_cast<double>(r.sessions))
        .set("noise", noise_label)
        .set("obs", obs_label)
        .set("engine", engine_label)
        .set("measured_ticks", static_cast<double>(c.ticks))
        .set("wall_s", r.wall_s)
        .set("ticks_per_sec", r.ticks_per_sec)
        .set("session_ticks_per_sec", r.session_ticks_per_sec);
    if (!c.key.empty()) json.set(c.key, r.ticks_per_sec);
  }
  const double quiesce_speedup =
      s32_always > 0.0 ? s32_quiesce / s32_always : 0.0;
  json.set("quiesce_speedup_s32", quiesce_speedup);
  table.print(std::cout);
  json.write();
  bench::write_csv("tick", csv);

  // Self-gate: the quiescence engine must pay for itself on the steady
  // workload it is built for, on this machine, in this run.
  std::cout << "\nquiescence at 32 servers (steady): "
            << TablePrinter::fmt(s32_quiesce, 0) << " vs always-resolve "
            << TablePrinter::fmt(s32_always, 0) << " — "
            << TablePrinter::fmt(quiesce_speedup, 2) << "x (gate >= "
            << TablePrinter::fmt(min_quiesce_speedup, 2) << "x)\n";
  if (quiesce_speedup < min_quiesce_speedup) {
    std::cout << "bench_tick: FAIL — quiescence speedup below the gate\n";
    return 1;
  }

  if (!baseline_path.empty()) {
    const double base = json_field(baseline_path, "ticks_per_sec_s32_det");
    const double speedup = base > 0.0 ? s32_det / base : 0.0;
    std::cout << "\nticks/s at 32 servers (det): "
              << TablePrinter::fmt(s32_det, 0) << " vs baseline "
              << TablePrinter::fmt(base, 0) << " — "
              << TablePrinter::fmt(speedup, 2) << "x (gate >= "
              << TablePrinter::fmt(min_speedup, 2) << "x)\n";
    if (speedup < min_speedup) {
      std::cout << "bench_tick: FAIL — below the gate\n";
      return 1;
    }
    std::cout << "bench_tick: PASS\n";
  }
  return 0;
}
