// Fig. 13 — "FPS of Co-location Games."
//
// QoS under co-location: the fraction of each game's best-achievable FPS
// it retains while co-located, CoCG vs GAugur. Paper reference points:
// CoCG reaches 78% of best FPS vs GAugur's 43%; the frame-locked titles
// (Genshin, DMC) stay above the 30-FPS floor under CoCG; the uncapped
// titles (CSGO, DOTA2) exceed 60 FPS.
#include <iostream>

#include "bench_util.h"
#include "core/baselines.h"
#include "core/cocg_scheduler.h"
#include "platform/cloud_platform.h"

using namespace cocg;

namespace {

const std::vector<game::GameSpec>& suite() {
  static const std::vector<game::GameSpec> s = game::paper_suite();
  return s;
}

const game::GameSpec* spec_of(const std::string& name) {
  for (const auto& g : suite()) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

struct FpsStats {
  double mean_ratio = 0.0;  ///< realized / achievable FPS
  double mean_fps = 0.0;
  int runs = 0;
};

/// Run the four figure games co-located (two per GPU view on a 2-GPU
/// server) and collect per-game FPS statistics.
std::map<std::string, FpsStats> run_colocation(
    std::unique_ptr<platform::Scheduler> sched, std::uint64_t seed) {
  platform::PlatformConfig cfg;
  cfg.seed = seed;
  platform::CloudPlatform cloud(cfg, std::move(sched));
  cloud.add_server(hw::ServerSpec{});  // 2 GPUs: two co-location views
  for (const char* name :
       {"Genshin Impact", "DOTA2", "CSGO", "Devil May Cry"}) {
    cloud.add_source({spec_of(name), 1, 8});
  }
  cloud.run(60 * 60 * 1000);

  std::map<std::string, FpsStats> out;
  std::map<std::string, double> ratio_sum, fps_sum;
  for (const auto& run : cloud.completed_runs()) {
    auto& st = out[run.game];
    ++st.runs;
    ratio_sum[run.game] += run.mean_fps_ratio;
    fps_sum[run.game] += run.mean_fps;
  }
  // Include still-running sessions so slow baselines still report data.
  for (SessionId sid : cloud.session_ids()) {
    const auto& truth = cloud.session_truth(sid);
    auto& st = out[truth.spec().name];
    ++st.runs;
    ratio_sum[truth.spec().name] += truth.mean_fps_ratio();
    fps_sum[truth.spec().name] += truth.mean_fps();
  }
  for (auto& [name, st] : out) {
    st.mean_ratio = ratio_sum[name] / std::max(1, st.runs);
    st.mean_fps = fps_sum[name] / std::max(1, st.runs);
  }
  return out;
}

}  // namespace

int main() {
  bench::banner("Fig. 13", "FPS of co-located games, CoCG vs GAugur");

  auto fresh_models = [] {
    return core::train_suite(suite(), bench::bench_offline_config(1313));
  };
  const auto cocg = run_colocation(
      std::make_unique<core::CocgScheduler>(fresh_models()), 1300);
  // GAugur as published admits only pairs whose fixed limits fit — it
  // protects FPS by refusing co-location (the throughput cost shows in
  // Fig. 11). The paper's 43%-of-best figure reflects its interference
  // mispredictions placing games onto limits far below their peaks; the
  // "aggressive" variant reproduces that regime.
  const auto gaugur = run_colocation(
      std::make_unique<core::GaugurScheduler>(fresh_models()), 1300);
  core::GaugurConfig aggressive;
  aggressive.gap_share = 0.15;
  aggressive.capacity_limit = 1.25;
  const auto gaugur_aggr = run_colocation(
      std::make_unique<core::GaugurScheduler>(fresh_models(), aggressive),
      1300);

  TablePrinter table({"game", "CoCG % of best", "CoCG FPS",
                      "GAugur % of best", "GAugur-aggr % of best",
                      "GAugur-aggr FPS"});
  std::vector<std::vector<std::string>> csv;
  csv.push_back({"game", "cocg_ratio", "cocg_fps", "gaugur_ratio",
                 "gaugur_aggr_ratio", "gaugur_aggr_fps"});

  double cocg_sum = 0, gaugur_sum = 0, aggr_sum = 0;
  int n = 0;
  for (const char* name :
       {"Genshin Impact", "DOTA2", "CSGO", "Devil May Cry"}) {
    const auto ci = cocg.count(name) ? cocg.at(name) : FpsStats{};
    const auto gi = gaugur.count(name) ? gaugur.at(name) : FpsStats{};
    const auto ai = gaugur_aggr.count(name) ? gaugur_aggr.at(name)
                                            : FpsStats{};
    table.add_row({name, TablePrinter::fmt_pct(100 * ci.mean_ratio, 1),
                   TablePrinter::fmt(ci.mean_fps, 1),
                   gi.runs ? TablePrinter::fmt_pct(100 * gi.mean_ratio, 1)
                           : "n/a",
                   ai.runs ? TablePrinter::fmt_pct(100 * ai.mean_ratio, 1)
                           : "n/a",
                   ai.runs ? TablePrinter::fmt(ai.mean_fps, 1) : "-"});
    csv.push_back({name, TablePrinter::fmt(ci.mean_ratio, 4),
                   TablePrinter::fmt(ci.mean_fps, 2),
                   TablePrinter::fmt(gi.mean_ratio, 4),
                   TablePrinter::fmt(ai.mean_ratio, 4),
                   TablePrinter::fmt(ai.mean_fps, 2)});
    cocg_sum += ci.mean_ratio;
    if (gi.runs) gaugur_sum += gi.mean_ratio;
    if (ai.runs) aggr_sum += ai.mean_ratio;
    ++n;
  }
  table.add_row({"MEAN", TablePrinter::fmt_pct(100 * cocg_sum / n, 1), "-",
                 TablePrinter::fmt_pct(100 * gaugur_sum / n, 1),
                 TablePrinter::fmt_pct(100 * aggr_sum / n, 1), "-"});
  table.print(std::cout);
  bench::write_csv("fig13_fps_qos", csv);
  std::cout << "\nPaper: CoCG sustains 78% of best-case FPS vs 43% for"
               " GAugur; locked titles stay above 30 FPS, uncapped titles"
               " above 60 FPS.\n";
  return 0;
}
