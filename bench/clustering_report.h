// Shared helper: cluster a game's frames and print the Fig. 5/6-style
// cluster + stage-type report.
#pragma once

#include <iostream>
#include <string>

#include "bench_util.h"
#include "core/frame_profiler.h"
#include "game/tracegen.h"

namespace cocg::bench {


inline void report_game_clustering(const game::GameSpec& spec, int forced_k,
                            const std::string& csv_name) {
  std::vector<telemetry::Trace> traces;
  Rng rng(3100 + spec.id.value);
  for (int r = 0; r < 12; ++r) {
    const auto script = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(spec.scripts.size()) - 1));
    traces.push_back(game::profile_run(
        spec, script, static_cast<std::uint64_t>(r % 5 + 1),
        rng.next_u64()));
  }
  core::ProfilerConfig cfg;
  cfg.forced_k = forced_k;
  core::FrameProfiler profiler(cfg);
  const auto out = profiler.profile(spec.name, traces, rng);

  std::cout << "clusters (K=" << out.chosen_k << "):\n";
  TablePrinter clusters({"cluster", "CPU%", "GPU%", "VRAM MB", "frames",
                         "loading?"});
  for (const auto& c : out.profile.clusters) {
    clusters.add_row({std::to_string(c.id),
                      TablePrinter::fmt(c.centroid.cpu(), 1),
                      TablePrinter::fmt(c.centroid.gpu(), 1),
                      TablePrinter::fmt(c.centroid.gpu_mem(), 0),
                      std::to_string(c.frames), c.loading ? "yes" : "no"});
  }
  clusters.print(std::cout);

  std::cout << "stage types (cluster combinations):\n";
  TablePrinter stages({"type", "clusters", "kind", "peak GPU%",
                       "mean dwell (s)", "occurrences"});
  std::vector<std::vector<std::string>> csv;
  csv.push_back({"type", "clusters", "kind", "peak_gpu", "mean_dwell_s",
                 "occurrences"});
  for (const auto& st : out.profile.stage_types) {
    std::string sig;
    for (std::size_t i = 0; i < st.clusters.size(); ++i) {
      sig += (i ? "+" : "") + std::to_string(st.clusters[i]);
    }
    stages.add_row({std::to_string(st.id), sig,
                    st.loading ? "loading" : "execution",
                    TablePrinter::fmt(st.peak_demand.gpu(), 1),
                    TablePrinter::fmt(ms_to_sec(st.mean_duration_ms), 0),
                    std::to_string(st.occurrences)});
    csv.push_back({std::to_string(st.id), sig,
                   st.loading ? "loading" : "execution",
                   TablePrinter::fmt(st.peak_demand.gpu(), 2),
                   TablePrinter::fmt(ms_to_sec(st.mean_duration_ms), 1),
                   std::to_string(st.occurrences)});
  }
  stages.print(std::cout);
  bench::write_csv(csv_name, csv);
  std::cout << "stage types: " << out.profile.num_stage_types() << " (2N = "
            << 2 * out.profile.num_clusters()
            << ", 2^N = " << (1 << out.profile.num_clusters()) << ")\n";
}


}  // namespace cocg::bench
