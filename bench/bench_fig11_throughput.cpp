// Fig. 11 — "Throughput of games co-location."
//
// The paper's main result: two-hour co-location runs of three game pairs
// (DOTA2+Devil May Cry, CSGO+Genshin Impact, Genshin Impact+Contra) under
// VBP, GAugur and CoCG; throughput T = Σ N_i·S_i (Eq. 2). Paper reference
// points: CoCG is the only scheme that co-locates the heavy DOTA2+DMC
// pair; short Genshin runs slot between CSGO peaks; all three schemes do
// well on the light pair; CoCG's aggregate throughput is +23.7%.
#include <functional>
#include <iostream>

#include "bench_util.h"
#include "core/baselines.h"
#include "core/cocg_scheduler.h"
#include "platform/cloud_platform.h"

using namespace cocg;

namespace {

const std::vector<game::GameSpec>& suite() {
  static const std::vector<game::GameSpec> s = game::paper_suite();
  return s;
}

const game::GameSpec* spec_of(const std::string& name) {
  for (const auto& g : suite()) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

struct PairResult {
  double throughput = 0.0;
  int runs_a = 0;
  int runs_b = 0;
  double qos_violation_s = 0.0;
  double qos_loss_frac = 0.0;  ///< violation time / delivered game-time
};

PairResult run_pair(std::unique_ptr<platform::Scheduler> sched,
                    const std::string& a, const std::string& b,
                    DurationMs duration, std::uint64_t seed) {
  platform::PlatformConfig cfg;
  cfg.seed = seed;
  platform::CloudPlatform cloud(cfg, std::move(sched));
  hw::ServerSpec one_gpu;
  one_gpu.num_gpus = 1;
  cloud.add_server(one_gpu);
  const auto* ga = spec_of(a);
  const auto* gb = spec_of(b);
  cloud.add_source({ga, ga->short_game ? 2 : 1, 8});
  cloud.add_source({gb, gb->short_game ? 2 : 1, 8});
  cloud.run(duration);

  PairResult res;
  res.throughput = cloud.throughput();
  for (const auto& run : cloud.completed_runs()) {
    if (run.game == a) ++res.runs_a;
    if (run.game == b) ++res.runs_b;
    res.qos_violation_s += ms_to_sec(run.qos_violation_ms);
  }
  res.qos_loss_frac =
      res.throughput > 0 ? res.qos_violation_s / res.throughput : 0.0;
  return res;
}

}  // namespace

int main() {
  bench::banner("Fig. 11", "co-location throughput, 3 pairs x 3 schedulers");

  const DurationMs two_hours = 2LL * 60 * 60 * 1000;
  const std::vector<std::pair<std::string, std::string>> pairs = {
      {"DOTA2", "Devil May Cry"},
      {"CSGO", "Genshin Impact"},
      {"Genshin Impact", "Contra"}};

  using Maker = std::function<std::unique_ptr<platform::Scheduler>()>;
  auto fresh_models = [] {
    return core::train_suite(suite(), bench::bench_offline_config(1111));
  };
  // §V-A's three measurement schemes plus VBP: the "modest way" (GAugur-
  // style fixed allocation), the stage-aware-but-reactive "improved
  // version", and CoCG's predictive scheme.
  const std::vector<std::pair<std::string, Maker>> schemes = {
      {"VBP",
       [&] { return std::make_unique<core::VbpScheduler>(fresh_models()); }},
      {"GAugur",
       [&] {
         return std::make_unique<core::GaugurScheduler>(fresh_models());
       }},
      {"Improved",
       [&] {
         return std::make_unique<core::ImprovedScheduler>(fresh_models());
       }},
      {"CoCG",
       [&] {
         return std::make_unique<core::CocgScheduler>(fresh_models());
       }}};

  TablePrinter table({"pair", "scheduler", "T (game-seconds)", "runs A",
                      "runs B", "QoS loss"});
  std::vector<std::vector<std::string>> csv;
  csv.push_back({"pair", "scheduler", "throughput", "runs_a", "runs_b",
                 "qos_violation_s", "qos_loss_frac"});
  bench::BenchJson json("fig11_throughput");
  json.set("simulated_hours", 2.0);

  std::map<std::string, double> totals, worst_loss;
  for (const auto& [a, b] : pairs) {
    for (const auto& [name, make] : schemes) {
      const auto res = run_pair(make(), a, b, two_hours, 1200);
      totals[name] += res.throughput;
      worst_loss[name] = std::max(worst_loss[name], res.qos_loss_frac);
      table.add_row({a + " + " + b, name,
                     TablePrinter::fmt(res.throughput, 0),
                     std::to_string(res.runs_a), std::to_string(res.runs_b),
                     TablePrinter::fmt_pct(100 * res.qos_loss_frac, 1)});
      csv.push_back({a + "+" + b, name,
                     TablePrinter::fmt(res.throughput, 1),
                     std::to_string(res.runs_a), std::to_string(res.runs_b),
                     TablePrinter::fmt(res.qos_violation_s, 1),
                     TablePrinter::fmt(res.qos_loss_frac, 4)});
      json.row()
          .set("pair", a + "+" + b)
          .set("scheduler", name)
          .set("throughput_game_seconds", res.throughput)
          .set("runs_a", static_cast<double>(res.runs_a))
          .set("runs_b", static_cast<double>(res.runs_b))
          .set("qos_violation_s", res.qos_violation_s)
          .set("qos_loss_frac", res.qos_loss_frac);
    }
  }
  table.print(std::cout);

  // Headline comparison against baselines that respect the §IV-D budget
  // (performance degradation under ~5% of the time). The reactive
  // "Improved" scheme buys throughput with 20-40% degraded time — the
  // paper's argument for prediction.
  double best_baseline = 0.0;
  for (const auto& [name, make] : schemes) {
    if (name == "CoCG") continue;
    if (worst_loss[name] <= 0.08) {
      best_baseline = std::max(best_baseline, totals[name]);
    }
  }
  const double improvement =
      best_baseline > 0 ? 100.0 * (totals["CoCG"] / best_baseline - 1.0)
                        : 0.0;
  TablePrinter summary({"scheduler", "total T", "worst QoS loss",
                        "vs best QoS-compliant baseline"});
  for (const auto& [name, make] : schemes) {
    summary.add_row({name, TablePrinter::fmt(totals[name], 0),
                     TablePrinter::fmt_pct(100 * worst_loss[name], 1),
                     name == "CoCG"
                         ? "+" + TablePrinter::fmt(improvement, 1) + "%"
                         : (worst_loss[name] <= 0.08 ? "-" : "excluded")});
  }
  summary.print(std::cout);
  for (const auto& [name, make] : schemes) {
    (void)make;
    json.set("total_throughput_" + name, totals[name]);
    json.set("worst_qos_loss_frac_" + name, worst_loss[name]);
  }
  json.set("cocg_improvement_pct", improvement);
  bench::write_csv("fig11_throughput", csv);
  json.write();
  std::cout << "\nPaper: CoCG's throughput is 23.7% higher than the"
               " baselines; only CoCG co-locates DOTA2 + Devil May Cry.\n";
  return 0;
}
