// Ablation — predictor feature set and history length.
//
// The stage predictor encodes the last H execution stages plus position,
// game mode and hashed player identity (§IV-B). This ablation sweeps H and
// toggles the mode/player features, reporting held-out accuracy per game.
//
// Expected: H = 1 suffices for chain-like games (Contra, DOTA2); the
// mobile title needs player identity; mode resolves opening-stage
// ambiguity everywhere.
#include <iostream>

#include "bench_util.h"
#include "core/offline.h"

using namespace cocg;

namespace {

double accuracy_with(const game::GameSpec& spec, core::EncoderConfig enc,
                     std::uint64_t seed) {
  core::OfflineConfig cfg = bench::bench_offline_config(seed);
  cfg.corpus_runs = 90;
  cfg.encoder = enc;
  const auto tg = core::train_game(spec, cfg);
  return tg.predictor->accuracy();
}

}  // namespace

int main() {
  bench::banner("Ablation", "predictor history length and feature set");

  TablePrinter table({"game", "H=1", "H=3 (default)", "H=5", "no mode",
                      "no player"});
  std::vector<std::vector<std::string>> csv;
  csv.push_back({"game", "h1", "h3", "h5", "no_mode", "no_player"});

  for (const auto& spec : bench::paper_suite_static()) {
    core::EncoderConfig h1;
    h1.history_len = 1;
    core::EncoderConfig h3;  // default
    core::EncoderConfig h5;
    h5.history_len = 5;
    core::EncoderConfig no_mode;
    no_mode.mode_feature = false;
    core::EncoderConfig no_player;
    no_player.player_features = false;

    const double a1 = accuracy_with(spec, h1, 51);
    const double a3 = accuracy_with(spec, h3, 51);
    const double a5 = accuracy_with(spec, h5, 51);
    const double am = accuracy_with(spec, no_mode, 51);
    const double ap = accuracy_with(spec, no_player, 51);
    table.add_row({spec.name, TablePrinter::fmt_pct(100 * a1, 1),
                   TablePrinter::fmt_pct(100 * a3, 1),
                   TablePrinter::fmt_pct(100 * a5, 1),
                   TablePrinter::fmt_pct(100 * am, 1),
                   TablePrinter::fmt_pct(100 * ap, 1)});
    csv.push_back({spec.name, TablePrinter::fmt(a1, 4),
                   TablePrinter::fmt(a3, 4), TablePrinter::fmt(a5, 4),
                   TablePrinter::fmt(am, 4), TablePrinter::fmt(ap, 4)});
  }
  table.print(std::cout);
  bench::write_csv("ablation_history", csv);
  return 0;
}
