// Table I — "Evaluated Workloads": the five games, their automated scripts,
// and the number of stage types each script exercises.
//
// Two counts are printed: the designed count (from the workload model, the
// analogue of the paper's game knowledge) and the count CoCG's profiler
// actually discovers from traces of that script alone — these should agree.
#include <iostream>
#include <set>

#include "bench_util.h"
#include "core/frame_profiler.h"
#include "game/plan.h"
#include "game/tracegen.h"

using namespace cocg;

int main() {
  bench::banner("Table I", "evaluated workloads and stage-type counts");

  TablePrinter table({"game", "script", "description", "# stage types",
                      "# discovered", "paper"});
  std::vector<std::vector<std::string>> csv;
  csv.push_back({"game", "script", "designed", "discovered", "paper"});

  // Paper's Table I counts, keyed by (game, script index).
  const std::map<std::pair<std::string, std::size_t>, int> paper = {
      {{"DOTA2", 0}, 3},         {{"DOTA2", 1}, 3},
      {{"CSGO", 0}, 4},          {{"CSGO", 1}, 3},
      {{"Devil May Cry", 0}, 2}, {{"Devil May Cry", 1}, 4},
      {{"Devil May Cry", 2}, 6}, {{"Genshin Impact", 0}, 5},
      {{"Genshin Impact", 1}, 5},{{"Genshin Impact", 2}, 5},
      {{"Contra", 0}, 2},        {{"Contra", 1}, 2},
      {{"Contra", 2}, 2}};

  for (const auto& spec : game::paper_suite()) {
    // Global profile over all scripts (the paper clusters per game, then
    // counts which types each script exercises).
    Rng rng(900 + spec.id.value);
    std::vector<telemetry::Trace> all_traces;
    for (int r = 0; r < 12; ++r) {
      const auto script = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(spec.scripts.size()) - 1));
      all_traces.push_back(game::profile_run(
          spec, script, static_cast<std::uint64_t>(r % 4 + 1),
          rng.next_u64()));
    }
    core::ProfilerConfig pcfg;
    pcfg.forced_k = spec.num_clusters();
    core::FrameProfiler profiler(pcfg);
    const auto out = profiler.profile(spec.name, all_traces, rng);

    for (std::size_t s = 0; s < spec.scripts.size(); ++s) {
      const int designed = spec.script_stage_type_count(s);

      // Count the distinct catalog types this script's runs visit.
      std::set<int> visited;
      for (int r = 0; r < 8; ++r) {
        const auto trace = game::profile_run(
            spec, s, static_cast<std::uint64_t>(r % 4 + 1), rng.next_u64());
        for (int st : core::infer_stage_sequence(out.profile, trace)) {
          visited.insert(st);
        }
      }
      const int discovered = static_cast<int>(visited.size());

      const int pk = paper.at({spec.name, s});
      table.add_row({spec.name, spec.scripts[s].name,
                     spec.scripts[s].description, std::to_string(designed),
                     std::to_string(discovered), std::to_string(pk)});
      csv.push_back({spec.name, spec.scripts[s].name,
                     std::to_string(designed), std::to_string(discovered),
                     std::to_string(pk)});
    }
  }
  table.print(std::cout);
  bench::write_csv("table1_workloads", csv);
  return 0;
}
