// Fig. 10 — "Genshin Impact prediction allocation."
//
// A solo Genshin Impact run under CoCG: the predictor-driven allocation is
// plotted against the actual consumption. Paper reference points: the
// allocation covers the consumption nearly everywhere; vs always-peak
// allocation (the paper quotes a 65% constant), 27.3% of resources are
// saved on Genshin and 17.5% on average across the five games; transient
// fluctuations cause brief allocation jumps that the rehearsal callback
// reverts (the paper's 300–500 s episode).
#include <iostream>

#include "bench_util.h"
#include "core/cocg_scheduler.h"
#include "platform/cloud_platform.h"

using namespace cocg;

namespace {

struct SavingResult {
  double saving = 0.0;      ///< 1 − alloc_integral / peak_integral
  double covered = 0.0;     ///< fraction of ticks with alloc ≥ usage (GPU)
  int callbacks = 0;
};

SavingResult measure_game(const std::string& name,
                          std::vector<std::vector<std::string>>* csv) {
  auto models = core::train_suite(bench::paper_suite_static(),
                                  bench::bench_offline_config(1010));
  const ResourceVector peak = models.at(name).profile->peak_demand;
  auto sched = std::make_unique<core::CocgScheduler>(std::move(models));
  auto* sched_ptr = sched.get();

  platform::PlatformConfig pcfg;
  pcfg.seed = 1234;
  platform::CloudPlatform cloud(pcfg, std::move(sched));
  cloud.add_server(hw::ServerSpec{});
  static const auto suite = game::paper_suite();
  const game::GameSpec* spec = nullptr;
  for (const auto& g : suite) {
    if (g.name == name) spec = &g;
  }
  cloud.submit(spec, 0, 1);

  SavingResult res;
  double alloc_int = 0, peak_int = 0;
  std::size_t covered = 0, ticks = 0;
  for (int step = 0; step < 400; ++step) {
    cloud.run(5 * 1000);
    if (cloud.running_sessions() == 0) break;
    const SessionId sid = cloud.session_ids()[0];
    const auto info = cloud.session_info(sid);
    const auto& samples = cloud.session_trace(sid).samples();
    const double usage_gpu = samples.empty() ? 0.0 : samples.back().usage.gpu();
    const double alloc_gpu = std::min(info.allocation.gpu(), 100.0);
    alloc_int += alloc_gpu;
    peak_int += peak.gpu();
    if (alloc_gpu + 1.0 >= usage_gpu) ++covered;
    ++ticks;
    if (csv != nullptr) {
      csv->push_back({name, std::to_string(step * 5),
                      TablePrinter::fmt(alloc_gpu, 2),
                      TablePrinter::fmt(usage_gpu, 2),
                      TablePrinter::fmt(peak.gpu(), 2)});
    }
  }
  res.saving = peak_int > 0 ? 1.0 - alloc_int / peak_int : 0.0;
  res.covered =
      ticks > 0 ? static_cast<double>(covered) / static_cast<double>(ticks)
                : 0.0;
  res.callbacks = sched_ptr->total_callbacks();
  return res;
}

}  // namespace

int main() {
  bench::banner("Fig. 10", "prediction-driven allocation vs actual usage");

  std::vector<std::vector<std::string>> csv;
  csv.push_back({"game", "t_s", "alloc_gpu", "usage_gpu", "peak_gpu"});

  TablePrinter table({"game", "saving vs peak-alloc", "coverage", "paper"});
  double saving_sum = 0.0;
  const std::vector<std::pair<std::string, std::string>> rows = {
      {"Genshin Impact", "27.3%"}, {"DOTA2", "-"},      {"CSGO", "-"},
      {"Devil May Cry", "-"},      {"Contra", "-"}};
  for (const auto& [name, paper] : rows) {
    const auto res =
        measure_game(name, name == "Genshin Impact" ? &csv : nullptr);
    saving_sum += res.saving;
    table.add_row({name, TablePrinter::fmt_pct(100 * res.saving, 1),
                   TablePrinter::fmt_pct(100 * res.covered, 1), paper});
  }
  table.add_row({"AVERAGE",
                 TablePrinter::fmt_pct(100 * saving_sum / rows.size(), 1),
                 "-", "17.5%"});
  table.print(std::cout);
  bench::write_csv("fig10_prediction_allocation", csv);
  std::cout << "\nExpected shape: allocation tracks the stage structure,"
               " covering actual usage while saving a double-digit share"
               " vs constant peak allocation.\n";
  return 0;
}
