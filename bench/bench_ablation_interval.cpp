// Ablation — detection interval.
//
// The paper samples at 5-second intervals because "all loading stage times
// were higher than this, so a 5-second detection can definitely identify
// the loading stage" (§IV-B). This ablation runs the co-location with
// 2 s / 5 s / 10 s / 20 s control periods.
//
// Expected: very short intervals judge on noisy single samples (more
// callbacks); beyond ~10 s, short loading stages (Contra's 5-8 s) fit
// between detections and transitions are missed, degrading prediction
// scoring and allocation timeliness.
#include <iostream>

#include "bench_util.h"
#include "core/cocg_scheduler.h"
#include "platform/cloud_platform.h"

using namespace cocg;

namespace {

struct Outcome {
  double throughput = 0.0;
  double qos_violation_s = 0.0;
  int callbacks = 0;
};

Outcome run_variant(DurationMs period, std::uint64_t seed) {
  auto models = core::train_suite(bench::paper_suite_static(),
                                  bench::bench_offline_config(4444));
  core::CocgConfig cfg;
  cfg.detection_window = static_cast<std::size_t>(period / 1000);

  platform::PlatformConfig pcfg;
  pcfg.seed = seed;
  pcfg.control_period_ms = period;
  platform::CloudPlatform cloud(
      pcfg, std::make_unique<core::CocgScheduler>(std::move(models), cfg));
  hw::ServerSpec one_gpu;
  one_gpu.num_gpus = 1;
  cloud.add_server(one_gpu);
  static const auto& suite = bench::paper_suite_static();
  cloud.add_source({&suite[2], 1, 8});  // Genshin Impact
  cloud.add_source({&suite[4], 1, 8});  // Contra (short loadings)
  cloud.run(45 * 60 * 1000);

  Outcome out;
  out.throughput = cloud.throughput();
  for (const auto& run : cloud.completed_runs()) {
    out.qos_violation_s += ms_to_sec(run.qos_violation_ms);
  }
  out.callbacks = static_cast<int>(
      dynamic_cast<core::CocgScheduler&>(cloud.scheduler())
          .total_callbacks());
  return out;
}

}  // namespace

int main() {
  bench::banner("Ablation", "detection interval (paper: 5 s)");

  TablePrinter table({"interval", "throughput", "QoS violations (s)",
                      "active callbacks"});
  std::vector<std::vector<std::string>> csv;
  csv.push_back({"interval_s", "throughput", "qos_s", "callbacks"});
  for (DurationMs period : {2000, 5000, 10000, 20000}) {
    const auto out = run_variant(period, 999);
    table.add_row({TablePrinter::fmt(ms_to_sec(period), 0) + "s",
                   TablePrinter::fmt(out.throughput, 0),
                   TablePrinter::fmt(out.qos_violation_s, 0),
                   std::to_string(out.callbacks)});
    csv.push_back({TablePrinter::fmt(ms_to_sec(period), 0),
                   TablePrinter::fmt(out.throughput, 1),
                   TablePrinter::fmt(out.qos_violation_s, 1),
                   std::to_string(out.callbacks)});
  }
  table.print(std::cout);
  bench::write_csv("ablation_interval", csv);
  return 0;
}
