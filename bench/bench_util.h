// Shared helpers for the experiment-regeneration binaries.
//
// Each bench binary regenerates one table or figure from the paper's
// evaluation section: it runs the experiment on the simulated platform and
// prints the same rows/series the paper reports, plus a CSV next to the
// binary for plotting.
#pragma once

#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/table.h"
#include "core/offline.h"
#include "game/library.h"
#include "obs/json.h"

namespace cocg::bench {

/// Print a standard experiment banner.
inline void banner(const std::string& experiment, const std::string& what) {
  std::cout << "==================================================\n"
            << experiment << " — " << what << "\n"
            << "==================================================\n";
}

/// The five paper games with static storage — TrainedGame::spec points
/// into this, so benches must train against it, never a temporary.
inline const std::vector<game::GameSpec>& paper_suite_static() {
  static const std::vector<game::GameSpec> s = game::paper_suite();
  return s;
}

/// Offline training configuration shared by the benches (heavier than the
/// unit tests: more runs → tighter profiles).
inline core::OfflineConfig bench_offline_config(std::uint64_t seed = 2024) {
  core::OfflineConfig cfg;
  cfg.profiling_runs = 14;
  cfg.corpus_runs = 80;
  cfg.players = 12;
  cfg.seed = seed;
  return cfg;
}

/// Machine-readable experiment results: top-level scalar metrics plus an
/// array of per-configuration rows, written as BENCH_<experiment>.json
/// beside the binary. The perf trajectory tracks these files across PRs,
/// so keys should stay stable (wall-clock and throughput numbers
/// especially).
class BenchJson {
 public:
  explicit BenchJson(std::string experiment)
      : experiment_(std::move(experiment)) {}

  void set(const std::string& key, double v) {
    top_.emplace_back(key, obs::json_number(v));
  }
  void set(const std::string& key, const std::string& v) {
    top_.emplace_back(key, "\"" + obs::json_escape(v) + "\"");
  }

  class Row {
   public:
    Row& set(const std::string& key, double v) {
      fields_.emplace_back(key, obs::json_number(v));
      return *this;
    }
    Row& set(const std::string& key, const std::string& v) {
      fields_.emplace_back(key, "\"" + obs::json_escape(v) + "\"");
      return *this;
    }

   private:
    friend class BenchJson;
    std::vector<std::pair<std::string, std::string>> fields_;
  };

  Row& row() { return rows_.emplace_back(); }

  /// Write BENCH_<experiment>.json; returns the path written.
  std::string write() const {
    const std::string path = "BENCH_" + experiment_ + ".json";
    std::ofstream os(path);
    os << "{\"experiment\":\"" << obs::json_escape(experiment_) << "\"";
    for (const auto& [k, v] : top_) {
      os << ",\"" << obs::json_escape(k) << "\":" << v;
    }
    os << ",\"rows\":[";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (i != 0) os << ',';
      os << '{';
      for (std::size_t j = 0; j < rows_[i].fields_.size(); ++j) {
        if (j != 0) os << ',';
        os << '"' << obs::json_escape(rows_[i].fields_[j].first)
           << "\":" << rows_[i].fields_[j].second;
      }
      os << '}';
    }
    os << "]}\n";
    std::cout << "[json] " << path << "\n";
    return path;
  }

 private:
  std::string experiment_;
  std::vector<std::pair<std::string, std::string>> top_;
  std::vector<Row> rows_;
};

/// Write a CSV beside the binary; returns the path written.
inline std::string write_csv(const std::string& name,
                             const std::vector<std::vector<std::string>>& rows) {
  const std::string path = name + ".csv";
  CsvWriter w(path);
  for (const auto& r : rows) w.write_row(r);
  std::cout << "[csv] " << path << "\n";
  return path;
}

}  // namespace cocg::bench
