// Shared helpers for the experiment-regeneration binaries.
//
// Each bench binary regenerates one table or figure from the paper's
// evaluation section: it runs the experiment on the simulated platform and
// prints the same rows/series the paper reports, plus a CSV next to the
// binary for plotting.
#pragma once

#include <iostream>
#include <map>
#include <string>

#include "common/table.h"
#include "core/offline.h"
#include "game/library.h"

namespace cocg::bench {

/// Print a standard experiment banner.
inline void banner(const std::string& experiment, const std::string& what) {
  std::cout << "==================================================\n"
            << experiment << " — " << what << "\n"
            << "==================================================\n";
}

/// The five paper games with static storage — TrainedGame::spec points
/// into this, so benches must train against it, never a temporary.
inline const std::vector<game::GameSpec>& paper_suite_static() {
  static const std::vector<game::GameSpec> s = game::paper_suite();
  return s;
}

/// Offline training configuration shared by the benches (heavier than the
/// unit tests: more runs → tighter profiles).
inline core::OfflineConfig bench_offline_config(std::uint64_t seed = 2024) {
  core::OfflineConfig cfg;
  cfg.profiling_runs = 14;
  cfg.corpus_runs = 80;
  cfg.players = 12;
  cfg.seed = seed;
  return cfg;
}

/// Write a CSV beside the binary; returns the path written.
inline std::string write_csv(const std::string& name,
                             const std::vector<std::vector<std::string>>& rows) {
  const std::string path = name + ".csv";
  CsvWriter w(path);
  for (const auto& r : rows) w.write_row(r);
  std::cout << "[csv] " << path << "\n";
  return path;
}

}  // namespace cocg::bench
