// Ablation — clustering method (§V-D1).
//
// "We used the K-means method... K-means demonstrated significantly higher
// accuracy compared to other clustering methods like Graph Partitioning,
// which does not require the number of clusters."
//
// For each game: cluster the profiled frames with K-means (operator K)
// and with graph partitioning (no K), and score both against the
// ground-truth cluster labels using the Adjusted Rand Index.
#include <iostream>

#include "bench_util.h"
#include "game/tracegen.h"
#include "ml/graph_cluster.h"
#include "ml/kmeans.h"

using namespace cocg;

int main() {
  bench::banner("Ablation (§V-D1)", "K-means vs graph partitioning");

  TablePrinter table({"game", "true K", "K-means ARI", "graph ARI",
                      "graph #clusters"});
  std::vector<std::vector<std::string>> csv;
  csv.push_back({"game", "true_k", "kmeans_ari", "graph_ari", "graph_k"});

  for (const auto& spec : bench::paper_suite_static()) {
    Rng rng(6100 + spec.id.value);
    std::vector<ml::Point> points;
    std::vector<int> truth;
    const ResourceVector scale = default_norm_scale();
    for (int r = 0; r < 10; ++r) {
      const auto script = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(spec.scripts.size()) - 1));
      const auto trace = game::profile_run(
          spec, script, static_cast<std::uint64_t>(r % 4 + 1),
          rng.next_u64());
      for (const auto& fs : trace.to_frame_slices()) {
        ml::Point p(kNumDims);
        for (std::size_t d = 0; d < kNumDims; ++d) {
          p[d] = fs.mean_usage.at(d) / scale.at(d);
        }
        points.push_back(std::move(p));
        truth.push_back(fs.true_cluster);
      }
    }

    ml::KMeansConfig kcfg;
    kcfg.k = spec.num_clusters();
    kcfg.restarts = 6;
    const auto km = ml::KMeans::fit(points, kcfg, rng);
    const auto gc = ml::graph_cluster(points);

    const double ari_km = ml::adjusted_rand_index(truth, km.assignment);
    const double ari_gc = ml::adjusted_rand_index(truth, gc.assignment);
    table.add_row({spec.name, std::to_string(spec.num_clusters()),
                   TablePrinter::fmt(ari_km, 3),
                   TablePrinter::fmt(ari_gc, 3),
                   std::to_string(gc.num_clusters)});
    csv.push_back({spec.name, std::to_string(spec.num_clusters()),
                   TablePrinter::fmt(ari_km, 4),
                   TablePrinter::fmt(ari_gc, 4),
                   std::to_string(gc.num_clusters)});
  }
  table.print(std::cout);
  bench::write_csv("ablation_clustering", csv);
  std::cout << "\nExpected: K-means tracks the ground-truth frame clusters"
               " more closely (higher ARI) than threshold-graph"
               " partitioning, which over- or under-merges.\n";
  return 0;
}
