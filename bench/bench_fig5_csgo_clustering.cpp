// Fig. 5 — "Stage types of CSGO game by clustering."
//
// Cluster CSGO's 5-second frames (K = 4, the Fig. 14 choice), then print
// the cluster centroids and the stage types that emerge as cluster
// combinations (§IV-A2). Paper reference: CSGO's scripts exercise 4 stage
// types (match) and 3 (training map); combinations stay well below 2^N.
#include "clustering_report.h"
#include "game/library.h"

using namespace cocg;

int main() {
  bench::banner("Fig. 5", "CSGO frame clustering and stage types");
  bench::report_game_clustering(game::make_csgo(), 4,
                                "fig5_csgo_clustering");
  return 0;
}
