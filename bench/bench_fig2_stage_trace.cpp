// Fig. 2 — "The resource utilization of different game stages."
//
// The paper shows a Honkai: Star Rail trace with eight stages: main-world
// walking, instance fighting and NPC interaction separated by loading
// stages whose signature is high CPU + near-idle GPU (Observations 1-3).
// We regenerate the series from the Honkai workload model: per-5-second
// CPU/GPU utilization plus the ground-truth stage boundaries.
#include <iostream>

#include "bench_util.h"
#include "game/tracegen.h"

using namespace cocg;

int main() {
  bench::banner("Fig. 2", "per-stage resource utilization of one run");

  const auto spec = game::make_honkai();
  const auto trace = game::profile_run(spec, 0, 1, 20240);
  const auto slices = trace.to_frame_slices();

  std::vector<std::vector<std::string>> csv;
  csv.push_back({"t_s", "cpu_pct", "gpu_pct", "stage_type", "loading"});

  // Console rendering: one row per stage with its mean utilization.
  TablePrinter table(
      {"stage #", "kind", "start (s)", "end (s)", "mean CPU%", "mean GPU%"});
  int stage_no = 0;
  std::size_t i = 0;
  while (i < slices.size()) {
    const int st = slices[i].true_stage_type;
    ResourceVector acc;
    std::size_t n = 0;
    const TimeMs start = slices[i].start;
    bool loading = slices[i].true_loading;
    while (i < slices.size() && slices[i].true_stage_type == st) {
      acc += slices[i].mean_usage;
      csv.push_back({TablePrinter::fmt(ms_to_sec(slices[i].start), 0),
                     TablePrinter::fmt(slices[i].mean_usage.cpu()),
                     TablePrinter::fmt(slices[i].mean_usage.gpu()),
                     std::to_string(st),
                     slices[i].true_loading ? "1" : "0"});
      ++n;
      ++i;
    }
    acc *= 1.0 / static_cast<double>(n);
    table.add_row({std::to_string(++stage_no),
                   loading ? "loading" : "execution",
                   TablePrinter::fmt(ms_to_sec(start), 0),
                   TablePrinter::fmt(ms_to_sec(slices[i - 1].end), 0),
                   TablePrinter::fmt(acc.cpu(), 1),
                   TablePrinter::fmt(acc.gpu(), 1)});
  }
  table.print(std::cout);
  bench::write_csv("fig2_stage_trace", csv);
  std::cout << "\nExpected shape (Observations 1-3): loading stages show the"
               " highest CPU with near-idle GPU; execution stages differ"
               " clearly from each other in CPU/GPU draw.\n";
  return 0;
}
