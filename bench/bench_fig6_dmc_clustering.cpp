// Fig. 6 — "Stage types of Devil May Cry game by clustering."
//
// Same analysis as Fig. 5 for the console title: K = 6 clusters (Fig. 14),
// stage types from script 1 (2 types) through script 3 (6 types).
#include "clustering_report.h"
#include "game/library.h"

using namespace cocg;

int main() {
  bench::banner("Fig. 6", "Devil May Cry frame clustering and stage types");
  bench::report_game_clustering(game::make_devil_may_cry(), 6,
                                "fig6_dmc_clustering");
  return 0;
}
