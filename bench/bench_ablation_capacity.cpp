// Ablation — sustainable arrival rate under open-loop load.
//
// The operator's question behind Fig. 11: how many players per hour can
// one server absorb before the queue diverges? Sweep a Poisson arrival
// rate of mixed Genshin/Contra sessions on one 2-GPU server and report
// served fraction and end-of-run queue length, CoCG vs VBP. CoCG's
// fine-grained packing shifts the saturation knee to the right.
#include <iostream>

#include "bench_util.h"
#include "core/baselines.h"
#include "core/cocg_scheduler.h"
#include "platform/cloud_platform.h"

using namespace cocg;

namespace {

struct LoadResult {
  std::size_t arrivals = 0;
  std::size_t served = 0;
  std::size_t queued = 0;
};

LoadResult run_load(std::unique_ptr<platform::Scheduler> sched,
                    double per_hour, std::uint64_t seed) {
  platform::PlatformConfig pcfg;
  pcfg.seed = seed;
  platform::CloudPlatform cloud(pcfg, std::move(sched));
  cloud.add_server(hw::ServerSpec{});
  static const auto& suite = bench::paper_suite_static();
  platform::OpenLoopSource genshin;
  genshin.spec = &suite[2];
  genshin.arrivals_per_hour = per_hour * 0.5;
  platform::OpenLoopSource contra;
  contra.spec = &suite[4];
  contra.arrivals_per_hour = per_hour * 0.5;
  cloud.add_open_loop_source(genshin);
  cloud.add_open_loop_source(contra);
  cloud.run(2LL * 60 * 60 * 1000);

  LoadResult res;
  res.arrivals = cloud.open_loop_arrivals();
  res.served = cloud.completed_runs().size();
  res.queued = cloud.queued_requests();
  return res;
}

}  // namespace

int main() {
  bench::banner("Ablation", "sustainable open-loop arrival rate");

  auto fresh = [] {
    return core::train_suite(bench::paper_suite_static(),
                             bench::bench_offline_config(4747));
  };

  TablePrinter table({"arrivals/hour", "VBP served", "VBP queue@end",
                      "CoCG served", "CoCG queue@end"});
  std::vector<std::vector<std::string>> csv;
  csv.push_back({"rate", "vbp_served", "vbp_arrivals", "vbp_queue",
                 "cocg_served", "cocg_arrivals", "cocg_queue"});
  for (double rate : {6.0, 12.0, 18.0, 24.0, 36.0}) {
    const auto vbp = run_load(
        std::make_unique<core::VbpScheduler>(fresh()), rate, 4700);
    const auto cocg = run_load(
        std::make_unique<core::CocgScheduler>(fresh()), rate, 4700);
    table.add_row(
        {TablePrinter::fmt(rate, 0),
         std::to_string(vbp.served) + "/" + std::to_string(vbp.arrivals),
         std::to_string(vbp.queued),
         std::to_string(cocg.served) + "/" + std::to_string(cocg.arrivals),
         std::to_string(cocg.queued)});
    csv.push_back({TablePrinter::fmt(rate, 1), std::to_string(vbp.served),
                   std::to_string(vbp.arrivals), std::to_string(vbp.queued),
                   std::to_string(cocg.served),
                   std::to_string(cocg.arrivals),
                   std::to_string(cocg.queued)});
  }
  table.print(std::cout);
  bench::write_csv("ablation_capacity", csv);
  std::cout << "\nExpected: at low rates both serve everything; as load"
               " grows VBP's queue diverges first — CoCG's saturation knee"
               " sits at a higher arrival rate.\n";
  return 0;
}
