// Fig. 9 — "Co-location of Genshin Impact and DOTA2."
//
// Reproduces the paper's representative co-location run: both games on one
// GPU under the CoCG scheduler, per-tick combined utilization recorded.
// Paper reference points: Genshin peaks ≈78% GPU, DOTA2 ≈43%, combined
// consumption stays below the 95% upper limit, and the regulator stretches
// a loading stage (≈15 s in the paper's fourth period) to stagger peaks.
#include <iostream>

#include "bench_util.h"
#include "core/cocg_scheduler.h"
#include "platform/cloud_platform.h"

using namespace cocg;

int main() {
  bench::banner("Fig. 9", "Genshin Impact + DOTA2 co-location timeline");

  auto models = core::train_suite(bench::paper_suite_static(),
                                  bench::bench_offline_config(909));
  const double genshin_peak =
      models.at("Genshin Impact").profile->peak_demand.gpu();
  const double dota2_peak = models.at("DOTA2").profile->peak_demand.gpu();

  platform::PlatformConfig pcfg;
  pcfg.seed = 99;
  platform::CloudPlatform cloud(
      pcfg, std::make_unique<core::CocgScheduler>(std::move(models)));
  hw::ServerSpec one_gpu;
  one_gpu.num_gpus = 1;
  cloud.add_server(one_gpu);
  cloud.enable_utilization_recording(true);

  static const auto genshin = game::make_genshin();
  static const auto dota2 = game::make_dota2();
  cloud.add_source({&genshin, 1, 8});
  cloud.add_source({&dota2, 1, 8});
  cloud.run(30 * 60 * 1000);

  // Per-session GPU draw + combined, summarized per 30 s for the console
  // and per tick in the CSV.
  std::vector<std::vector<std::string>> csv;
  csv.push_back({"t_s", "combined_gpu_frac"});
  double max_combined = 0.0;
  std::size_t over_limit = 0;
  for (const auto& up : cloud.utilization_log()) {
    const double frac = up.total_supplied.gpu() / 100.0;
    csv.push_back({TablePrinter::fmt(ms_to_sec(up.t), 0),
                   TablePrinter::fmt(frac, 4)});
    max_combined = std::max(max_combined, frac);
    if (up.max_dim_fraction > 0.95) ++over_limit;
  }
  bench::write_csv("fig9_colocation_timeline", csv);

  double total_ext_s = 0;
  for (const auto& run : cloud.completed_runs()) {
    total_ext_s += ms_to_sec(run.loading_extension_ms);
  }

  TablePrinter table({"metric", "measured", "paper"});
  table.add_row({"Genshin peak GPU%", TablePrinter::fmt(genshin_peak, 1),
                 "78"});
  table.add_row({"DOTA2 peak GPU%", TablePrinter::fmt(dota2_peak, 1), "43"});
  table.add_row({"max combined GPU fraction",
                 TablePrinter::fmt(max_combined * 100, 1) + "%",
                 "<= 95%"});
  table.add_row(
      {"ticks above 95% limit (any dim)",
       TablePrinter::fmt(100.0 * static_cast<double>(over_limit) /
                             static_cast<double>(
                                 cloud.utilization_log().size()),
                         1) +
           "%",
       "~0% (representative run)"});
  table.add_row({"loading time stolen (completed runs)",
                 TablePrinter::fmt(total_ext_s, 0) + "s",
                 "~15s per staggered peak"});
  table.add_row({"completed runs",
                 std::to_string(cloud.completed_runs().size()), "-"});
  table.print(std::cout);
  return 0;
}
