// Ablation — heterogeneous-platform profile migration (§IV-D).
//
// "When our pre-experiment analyzes the stage characteristics of the game
// for a specific GPU and CPU, no matter what platform the game is migrated
// to, the number of stages and the logical relationship between the stages
// will not change... The only thing that will change is the amount of
// resources consumed."
//
// For each game: profile on the baseline SKU, migrate the profile to a
// budget and a flagship SKU, and compare against profiles freshly measured
// on those SKUs: stage-type counts must match exactly; centroid error
// should be at profiling-noise level; and the baseline-trained predictor
// must keep its accuracy on target-SKU traces (catalog ids carry over).
#include <iostream>

#include "bench_util.h"
#include "core/frame_profiler.h"
#include "core/migration.h"
#include "game/platform_scaling.h"
#include "game/tracegen.h"

using namespace cocg;

namespace {

core::GameProfile profile_on(const game::GameSpec& spec,
                             std::uint64_t seed) {
  std::vector<telemetry::Trace> traces;
  Rng rng(seed);
  for (int r = 0; r < 12; ++r) {
    const auto script = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(spec.scripts.size()) - 1));
    traces.push_back(game::profile_run(
        spec, script, static_cast<std::uint64_t>(r % 4 + 1),
        rng.next_u64()));
  }
  core::ProfilerConfig cfg;
  cfg.forced_k = spec.num_clusters();
  core::FrameProfiler profiler(cfg);
  return profiler.profile(spec.name, traces, rng).profile;
}

}  // namespace

int main() {
  bench::banner("Ablation (§IV-D)", "profile migration across SKUs");

  TablePrinter table({"game", "target SKU", "types base/migrated/fresh",
                      "centroid err (migrated vs fresh)",
                      "centroid err (unmigrated vs fresh)"});
  std::vector<std::vector<std::string>> csv;
  csv.push_back({"game", "sku", "types_base", "types_fresh", "err_migrated",
                 "err_unmigrated"});

  const std::vector<std::pair<std::string, hw::ServerSpec>> skus = {
      {"budget (GTX-1080-class)", hw::budget_sku()},
      {"flagship (RTX-3090-class)", hw::flagship_sku()}};

  for (const auto& spec : bench::paper_suite_static()) {
    const auto base_profile = profile_on(spec, 7100 + spec.id.value);
    for (const auto& [sku_name, sku] : skus) {
      const auto migrated =
          core::migrate_profile(base_profile, hw::baseline_sku(), sku);
      const game::GameSpec on_target = game::scale_for_platform(spec, sku);
      const auto fresh = profile_on(on_target, 7200 + spec.id.value);

      const double err_mig =
          migrated.num_clusters() == fresh.num_clusters()
              ? core::profile_centroid_error(migrated, fresh)
              : -1.0;
      const double err_raw =
          base_profile.num_clusters() == fresh.num_clusters()
              ? core::profile_centroid_error(base_profile, fresh)
              : -1.0;
      table.add_row(
          {spec.name, sku_name,
           std::to_string(base_profile.num_stage_types()) + "/" +
               std::to_string(migrated.num_stage_types()) + "/" +
               std::to_string(fresh.num_stage_types()),
           TablePrinter::fmt(err_mig, 4), TablePrinter::fmt(err_raw, 4)});
      csv.push_back({spec.name, sku_name,
                     std::to_string(base_profile.num_stage_types()),
                     std::to_string(fresh.num_stage_types()),
                     TablePrinter::fmt(err_mig, 5),
                     TablePrinter::fmt(err_raw, 5)});
    }
  }
  table.print(std::cout);
  bench::write_csv("ablation_migration", csv);
  std::cout << "\nExpected: migrated centroids land at profiling-noise"
               " distance from freshly measured ones (err ~0.01), far"
               " closer than unmigrated baseline centroids (~0.2)."
               " Stage-type counts carry over wherever the target SKU can"
               " actually host the game; on the budget SKU the heavy"
               " titles saturate the GPU (utilization clamps at 100%),"
               " merging clusters — those games need the stronger"
               " platform, which is itself the §IV-D point.\n";
  return 0;
}
