// Fig. 12 — "Overhead of Scheduling."
//
// The paper compares, per game, the average loading-stage duration against
// the time the predictor needs to produce the next-stage prediction +
// resource plan: prediction (3–13 s there, dominated by their measurement
// pipeline) is fully covered by loading (5–30 s), so scheduling hides
// inside loading. We report the same two series: measured loading
// durations from profiling, and the *simulated-system* prediction latency —
// the 5-second detection interval that gates a decision plus the measured
// wall-clock inference cost of the ML model (microseconds; also reported).
// Second section: overhead of the observability layer itself on the same
// 5-second loop — per-record cost with metrics disabled/enabled, and the
// disabled-path overhead of a full co-location run (must stay < 1%).
#include <chrono>
#include <iostream>

#include "bench_util.h"
#include "core/cocg_scheduler.h"
#include "core/offline.h"
#include "obs/obs.h"
#include "platform/cloud_platform.h"

using namespace cocg;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Wall-clock ns per Counter::add() under the current global switch.
double record_ns_per_op(obs::Counter c) {
  constexpr std::uint64_t kOps = 20'000'000;
  const double t0 = now_s();
  for (std::uint64_t i = 0; i < kOps; ++i) c.add();
  const double t1 = now_s();
  return (t1 - t0) * 1e9 / static_cast<double>(kOps);
}

/// Wall-clock ns per StageScope open/close under the current profiling
/// switch (the cost every instrumented pipeline stage pays per call).
double scope_ns_per_op(const obs::StageTimer& timer) {
  constexpr std::uint64_t kOps = 20'000'000;
  const double t0 = now_s();
  for (std::uint64_t i = 0; i < kOps; ++i) {
    obs::StageScope scope(timer);
  }
  const double t1 = now_s();
  return (t1 - t0) * 1e9 / static_cast<double>(kOps);
}

/// Wall seconds for one 20-minute CoCG co-location run (training excluded).
double colocation_wall_s() {
  const auto& suite = bench::paper_suite_static();
  core::OfflineConfig ocfg;
  ocfg.profiling_runs = 8;
  ocfg.corpus_runs = 30;
  ocfg.seed = 77;
  auto models = core::train_suite(suite, ocfg);
  platform::PlatformConfig pcfg;
  pcfg.seed = 77;
  platform::CloudPlatform cloud(
      pcfg, std::make_unique<core::CocgScheduler>(std::move(models)));
  hw::ServerSpec spec;
  cloud.add_server(spec);
  cloud.add_source({&suite[2], 1, 8});  // Genshin Impact
  cloud.add_source({&suite[0], 1, 8});  // DOTA2
  const double t0 = now_s();
  cloud.run(20 * 60 * 1000);
  return now_s() - t0;
}

void bench_observability_overhead() {
  bench::banner("obs overhead",
                "metrics-off vs metrics-on cost of the 5-second loop");

  // Micro: one record on a registered counter, both switch positions.
  obs::Counter probe = obs::metrics().counter("bench.probe");
  obs::set_enabled(false);
  const double ns_off = record_ns_per_op(probe);
  obs::set_enabled(true);
  const double ns_on = record_ns_per_op(probe);

  // Macro: the same co-location run with the switch off, then on. The
  // enabled run also counts how many record calls the run performs, which
  // turns the micro cost into a computed disabled-path overhead — robust
  // against wall-clock noise between the two runs.
  obs::reset();
  obs::set_enabled(false);
  const double wall_off = colocation_wall_s();
  obs::set_enabled(true);
  obs::metrics().reset_values();
  const double wall_on = colocation_wall_s();
  const std::uint64_t records = obs::metrics().total_recordings();
  obs::reset();
  obs::set_enabled(false);

  // Stage profiler: per-scope cost both switch positions, then the same
  // run with metrics + profiler enabled. The scope count turns the micro
  // cost into a computed enabled-path overhead, same robustness argument
  // as above.
  obs::StageProfiler scratch_prof;
  const obs::StageTimer scratch_timer(scratch_prof,
                                      obs::Stage::kResourceKernels);
  obs::set_profiling_enabled(false);
  const double scope_ns_off = scope_ns_per_op(scratch_timer);
  obs::set_profiling_enabled(true);
  const double scope_ns_on = scope_ns_per_op(scratch_timer);

  obs::reset();
  obs::set_enabled(true);
  const double wall_prof = colocation_wall_s();
  const std::uint64_t scopes = obs::profiler().total_calls();
  obs::set_profiling_enabled(false);
  obs::reset();
  obs::set_enabled(false);

  const double disabled_overhead_pct =
      100.0 * (static_cast<double>(records) * ns_off * 1e-9) / wall_off;
  const double enabled_delta_pct = 100.0 * (wall_on - wall_off) / wall_off;
  // The profiler-enabled budget is measured against the 20 minutes of
  // operation the run models, not the compressed simulation wall: the
  // pipeline is instrumented at tick/decision granularity (a handful of
  // scopes per modeled second), so the deployment question — Fig. 12's
  // question — is how much timing overhead a deployed control loop pays
  // per second of operation. Against the simulator's own wall clock any
  // real clock read is a double-digit percentage, because the simulator
  // does ~300 ns of work per scope; that delta is reported below as an
  // informational row instead.
  constexpr double kModeledSeconds = 20.0 * 60.0;
  const double profiler_overhead_pct =
      100.0 * (static_cast<double>(scopes) * scope_ns_on * 1e-9) /
      kModeledSeconds;
  const double profiler_delta_pct =
      100.0 * (wall_prof - wall_off) / wall_off;

  TablePrinter table({"measurement", "value"});
  table.add_row({"record cost, metrics off (ns/op)",
                 TablePrinter::fmt(ns_off, 2)});
  table.add_row({"record cost, metrics on (ns/op)",
                 TablePrinter::fmt(ns_on, 2)});
  table.add_row({"20 min co-location, metrics off (s)",
                 TablePrinter::fmt(wall_off, 3)});
  table.add_row({"20 min co-location, metrics on (s)",
                 TablePrinter::fmt(wall_on, 3)});
  table.add_row({"record calls in the run",
                 std::to_string(records)});
  table.add_row({"stage-scope cost, profiling off (ns/op)",
                 TablePrinter::fmt(scope_ns_off, 2)});
  table.add_row({"stage-scope cost, profiling on (ns/op)",
                 TablePrinter::fmt(scope_ns_on, 2)});
  table.add_row({"20 min co-location, metrics+profiler on (s)",
                 TablePrinter::fmt(wall_prof, 3)});
  table.add_row({"stage scopes in the run", std::to_string(scopes)});
  table.add_row({"disabled-path overhead",
                 TablePrinter::fmt_pct(disabled_overhead_pct, 4)});
  table.add_row({"enabled run-time delta",
                 TablePrinter::fmt_pct(enabled_delta_pct, 2)});
  table.add_row({"profiler overhead vs modeled 20 min",
                 TablePrinter::fmt_pct(profiler_overhead_pct, 5)});
  table.add_row({"profiler-enabled sim-wall delta",
                 TablePrinter::fmt_pct(profiler_delta_pct, 2)});
  table.print(std::cout);

  std::cout << (disabled_overhead_pct < 1.0 ? "PASS" : "FAIL")
            << ": disabled-path overhead "
            << TablePrinter::fmt_pct(disabled_overhead_pct, 4)
            << " (< 1% required) — instrumentation left in the event loop"
               " and per-tick paths is free when observability is off.\n";
  std::cout << (profiler_overhead_pct < 0.01 ? "PASS" : "FAIL")
            << ": profiler-enabled overhead "
            << TablePrinter::fmt_pct(profiler_overhead_pct, 5)
            << " of the modeled operation time (< 0.01% required) — stage"
               " timing at tick/decision granularity is cheap enough to"
               " leave on in a deployed control loop.\n";

  bench::write_csv(
      "fig12_obs_overhead",
      {{"ns_off", "ns_on", "scope_ns_off", "scope_ns_on", "wall_off_s",
        "wall_on_s", "wall_prof_s", "records", "scopes",
        "disabled_overhead_pct", "profiler_overhead_op_pct"},
       {TablePrinter::fmt(ns_off, 3), TablePrinter::fmt(ns_on, 3),
        TablePrinter::fmt(scope_ns_off, 3),
        TablePrinter::fmt(scope_ns_on, 3), TablePrinter::fmt(wall_off, 3),
        TablePrinter::fmt(wall_on, 3), TablePrinter::fmt(wall_prof, 3),
        std::to_string(records), std::to_string(scopes),
        TablePrinter::fmt(disabled_overhead_pct, 5),
        TablePrinter::fmt(profiler_overhead_pct, 5)}});
}

}  // namespace

int main() {
  bench::banner("Fig. 12", "loading time vs prediction time per game");

  auto models = core::train_suite(bench::paper_suite_static(),
                                  bench::bench_offline_config(1212));

  TablePrinter table({"game", "mean loading (s)", "max loading (s)",
                      "detection+predict (s)", "model inference (us)",
                      "covered?"});
  std::vector<std::vector<std::string>> csv;
  csv.push_back({"game", "mean_loading_s", "max_loading_s",
                 "decision_latency_s", "inference_us"});

  for (const auto& [name, tg] : models) {
    const auto& profile = *tg.profile;
    double mean_loading_s = 0.0, max_loading_s = 0.0;
    if (profile.loading_stage_type >= 0) {
      const auto& lt = profile.stage_type(profile.loading_stage_type);
      mean_loading_s = ms_to_sec(lt.mean_duration_ms);
      max_loading_s = ms_to_sec(lt.max_duration_ms);
    }

    // Wall-clock inference latency of predict_next (averaged).
    std::vector<int> hist;
    const auto t0 = std::chrono::steady_clock::now();
    constexpr int kReps = 2000;
    int sink = 0;
    for (int i = 0; i < kReps; ++i) {
      sink += tg.predictor->predict_next(hist, 1 + i % 8, i % 2);
    }
    // Defeat dead-code elimination without deprecated volatile compound
    // assignment.
    asm volatile("" : : "r"(sink) : "memory");
    const auto t1 = std::chrono::steady_clock::now();
    const double infer_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() / kReps;

    // End-to-end decision latency in simulated time: one detection window
    // (the 5 s sampling interval) + inference (negligible).
    const double decision_s = 5.0 + infer_us * 1e-6;

    table.add_row({name, TablePrinter::fmt(mean_loading_s, 1),
                   TablePrinter::fmt(max_loading_s, 1),
                   TablePrinter::fmt(decision_s, 2),
                   TablePrinter::fmt(infer_us, 1),
                   decision_s <= mean_loading_s ? "yes" : "NO"});
    csv.push_back({name, TablePrinter::fmt(mean_loading_s, 2),
                   TablePrinter::fmt(max_loading_s, 2),
                   TablePrinter::fmt(decision_s, 3),
                   TablePrinter::fmt(infer_us, 2)});
  }
  table.print(std::cout);
  bench::write_csv("fig12_overhead", csv);
  std::cout << "\nPaper: predicting takes 3-13 s, loading 5-30 s — the"
               " prediction is covered by the loading stage, so scheduling"
               " overhead is hidden. The same holds here: one 5 s detection"
               " window plus sub-millisecond inference.\n\n";

  bench_observability_overhead();
  return 0;
}
