// Fig. 12 — "Overhead of Scheduling."
//
// The paper compares, per game, the average loading-stage duration against
// the time the predictor needs to produce the next-stage prediction +
// resource plan: prediction (3–13 s there, dominated by their measurement
// pipeline) is fully covered by loading (5–30 s), so scheduling hides
// inside loading. We report the same two series: measured loading
// durations from profiling, and the *simulated-system* prediction latency —
// the 5-second detection interval that gates a decision plus the measured
// wall-clock inference cost of the ML model (microseconds; also reported).
#include <chrono>
#include <iostream>

#include "bench_util.h"
#include "core/offline.h"

using namespace cocg;

int main() {
  bench::banner("Fig. 12", "loading time vs prediction time per game");

  auto models = core::train_suite(bench::paper_suite_static(),
                                  bench::bench_offline_config(1212));

  TablePrinter table({"game", "mean loading (s)", "max loading (s)",
                      "detection+predict (s)", "model inference (us)",
                      "covered?"});
  std::vector<std::vector<std::string>> csv;
  csv.push_back({"game", "mean_loading_s", "max_loading_s",
                 "decision_latency_s", "inference_us"});

  for (const auto& [name, tg] : models) {
    const auto& profile = *tg.profile;
    double mean_loading_s = 0.0, max_loading_s = 0.0;
    if (profile.loading_stage_type >= 0) {
      const auto& lt = profile.stage_type(profile.loading_stage_type);
      mean_loading_s = ms_to_sec(lt.mean_duration_ms);
      max_loading_s = ms_to_sec(lt.max_duration_ms);
    }

    // Wall-clock inference latency of predict_next (averaged).
    std::vector<int> hist;
    const auto t0 = std::chrono::steady_clock::now();
    constexpr int kReps = 2000;
    int sink = 0;
    for (int i = 0; i < kReps; ++i) {
      sink += tg.predictor->predict_next(hist, 1 + i % 8, i % 2);
    }
    // Defeat dead-code elimination without deprecated volatile compound
    // assignment.
    asm volatile("" : : "r"(sink) : "memory");
    const auto t1 = std::chrono::steady_clock::now();
    const double infer_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() / kReps;

    // End-to-end decision latency in simulated time: one detection window
    // (the 5 s sampling interval) + inference (negligible).
    const double decision_s = 5.0 + infer_us * 1e-6;

    table.add_row({name, TablePrinter::fmt(mean_loading_s, 1),
                   TablePrinter::fmt(max_loading_s, 1),
                   TablePrinter::fmt(decision_s, 2),
                   TablePrinter::fmt(infer_us, 1),
                   decision_s <= mean_loading_s ? "yes" : "NO"});
    csv.push_back({name, TablePrinter::fmt(mean_loading_s, 2),
                   TablePrinter::fmt(max_loading_s, 2),
                   TablePrinter::fmt(decision_s, 3),
                   TablePrinter::fmt(infer_us, 2)});
  }
  table.print(std::cout);
  bench::write_csv("fig12_overhead", csv);
  std::cout << "\nPaper: predicting takes 3-13 s, loading 5-30 s — the"
               " prediction is covered by the loading stage, so scheduling"
               " overhead is hidden. The same holds here: one 5 s detection"
               " window plus sub-millisecond inference.\n";
  return 0;
}
