// bench_fleet_scale — fleet sharding scalability.
//
// Runs the same open-loop workload (fixed total server count, fixed
// per-game Poisson arrival stream) on K ∈ {1, 2, 4, 8} shards with
// threads = K and compares wall-clock simulation speed. Sharding wins
// twice: shard event loops run concurrently on the EpochPool, and each
// shard's CoCG admission pass scans a K× smaller cluster against a K×
// smaller queue (the distributor's per-request cost is O(servers ×
// hosted sessions), so splitting the cluster shrinks total scheduler
// work even on one core).
//
// A second sweep holds K = 4 fixed and compares router policies.
//
// Emits BENCH_fleet_scale.json (per-row wall seconds, simulated-seconds
// per wall-second, speedup vs. the 1-shard baseline, and fleet results)
// for the perf trajectory. Acceptance target: ≥ 2.5× simulated-time
// throughput speedup at 4 shards / 4 threads vs. 1 shard.
#include <chrono>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "core/cocg_scheduler.h"
#include "core/offline.h"
#include "fleet/fleet.h"
#include "game/library.h"

using namespace cocg;

namespace {

constexpr int kTotalServers = 8;
constexpr int kGpusPerServer = 2;
constexpr int kMinutes = 15;
constexpr double kArrivalsPerHourPerGame = 150.0;
constexpr std::uint64_t kSeed = 2024;

struct RunResult {
  double wall_s = 0.0;
  double sim_per_wall = 0.0;
  fleet::FleetReport report;
};

RunResult run_config(int shards, int threads, fleet::RouterPolicy policy) {
  // Each shard trains its own scheduler (TrainedGame is move-only); the
  // training cost is setup and excluded from the timed window.
  core::OfflineConfig ocfg;
  ocfg.profiling_runs = 6;
  ocfg.corpus_runs = 30;
  ocfg.seed = kSeed;

  fleet::FleetConfig fcfg;
  fcfg.shards = shards;
  fcfg.threads = threads;
  fcfg.policy = policy;
  fcfg.seed = kSeed;
  fleet::Fleet sim(fcfg, [&](int) {
    return std::make_unique<core::CocgScheduler>(
        core::train_suite(bench::paper_suite_static(), ocfg));
  });

  hw::ServerSpec spec;
  spec.num_gpus = kGpusPerServer;
  for (int i = 0; i < kTotalServers; ++i) sim.add_server(spec);
  for (const auto& g : bench::paper_suite_static()) {
    sim.add_global_source({&g, kArrivalsPerHourPerGame, 16});
  }

  const DurationMs horizon = static_cast<DurationMs>(kMinutes) * 60 * 1000;
  const auto wall0 = std::chrono::steady_clock::now();
  sim.run(horizon);
  RunResult r;
  r.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           wall0)
                 .count();
  r.sim_per_wall = ms_to_sec(horizon) / r.wall_s;
  r.report = sim.report();
  return r;
}

}  // namespace

int main() {
  bench::banner("fleet_scale",
                "sharded fleet scalability (fixed total servers)");
  std::cout << kTotalServers << " servers x " << kGpusPerServer
            << " GPUs, " << kMinutes << " simulated minutes, "
            << kArrivalsPerHourPerGame
            << " arrivals/hour per game (open loop, 5 games)\n\n";

  bench::BenchJson json("fleet_scale");
  json.set("total_servers", static_cast<double>(kTotalServers));
  json.set("gpus_per_server", static_cast<double>(kGpusPerServer));
  json.set("simulated_minutes", static_cast<double>(kMinutes));
  json.set("arrivals_per_hour_per_game", kArrivalsPerHourPerGame);

  TablePrinter table({"shards", "threads", "policy", "wall s",
                      "sim-s/wall-s", "speedup", "arrivals", "completed",
                      "T (game-s)", "queue@end"});
  std::vector<std::vector<std::string>> csv;
  csv.push_back({"shards", "threads", "policy", "wall_s", "sim_per_wall",
                 "speedup", "arrivals", "completed", "throughput"});

  double baseline_sim_per_wall = 0.0;
  double speedup_4shards = 0.0;

  struct Config {
    int shards;
    fleet::RouterPolicy policy;
  };
  std::vector<Config> configs;
  for (int k : {1, 2, 4, 8}) {
    configs.push_back({k, fleet::RouterPolicy::kLeastLoaded});
  }
  configs.push_back({4, fleet::RouterPolicy::kRoundRobin});
  configs.push_back({4, fleet::RouterPolicy::kPowerOfTwo});

  for (const auto& c : configs) {
    const RunResult r = run_config(c.shards, c.shards, c.policy);
    if (c.shards == 1) baseline_sim_per_wall = r.sim_per_wall;
    const double speedup =
        baseline_sim_per_wall > 0.0 ? r.sim_per_wall / baseline_sim_per_wall
                                    : 1.0;
    if (c.shards == 4 && c.policy == fleet::RouterPolicy::kLeastLoaded) {
      speedup_4shards = speedup;
    }
    std::size_t queued_end = 0;
    for (const auto& row : r.report.shards) queued_end += row.queued_end;
    const std::string policy = fleet::router_policy_name(c.policy);
    table.add_row({std::to_string(c.shards), std::to_string(c.shards),
                   policy, TablePrinter::fmt(r.wall_s, 2),
                   TablePrinter::fmt(r.sim_per_wall, 0),
                   TablePrinter::fmt(speedup, 2) + "x",
                   std::to_string(r.report.arrivals),
                   std::to_string(r.report.completed),
                   TablePrinter::fmt(r.report.throughput, 0),
                   std::to_string(queued_end)});
    csv.push_back({std::to_string(c.shards), std::to_string(c.shards),
                   policy, TablePrinter::fmt(r.wall_s, 4),
                   TablePrinter::fmt(r.sim_per_wall, 1),
                   TablePrinter::fmt(speedup, 3),
                   std::to_string(r.report.arrivals),
                   std::to_string(r.report.completed),
                   TablePrinter::fmt(r.report.throughput, 1)});
    json.row()
        .set("shards", static_cast<double>(c.shards))
        .set("threads", static_cast<double>(c.shards))
        .set("policy", policy)
        .set("wall_s", r.wall_s)
        .set("sim_seconds_per_wall_second", r.sim_per_wall)
        .set("speedup_vs_1_shard", speedup)
        .set("arrivals", static_cast<double>(r.report.arrivals))
        .set("completed", static_cast<double>(r.report.completed))
        .set("throughput_game_seconds", r.report.throughput)
        .set("qos_violation_s", r.report.qos_violation_s)
        .set("mean_wait_s", r.report.mean_wait_s)
        .set("queued_end", static_cast<double>(queued_end));
  }
  table.print(std::cout);

  std::cout << "\nspeedup at 4 shards / 4 threads vs 1 shard: "
            << TablePrinter::fmt(speedup_4shards, 2)
            << "x (target >= 2.50x)\n";
  json.set("speedup_4_shards_4_threads", speedup_4shards);
  json.set("speedup_target", 2.5);

  bench::write_csv("fleet_scale", csv);
  json.write();
  return speedup_4shards >= 2.5 ? 0 : 1;
}
