// bench_fleet_scale — fleet sharding scalability.
//
// Runs the same open-loop workload (fixed total server count, fixed
// per-game Poisson arrival stream) on K ∈ {1, 2, 4, 8} shards with
// threads = K and compares wall-clock simulation speed. Sharding wins
// twice: shard event loops run concurrently on the EpochPool, and each
// shard's CoCG admission pass scans a K× smaller cluster against a K×
// smaller queue (the distributor's per-request cost is O(servers ×
// hosted sessions), so splitting the cluster shrinks total scheduler
// work even on one core).
//
// A second sweep holds K = 4 fixed and compares router policies.
//
// Emits BENCH_fleet_scale.json (per-row wall seconds, simulated-seconds
// per wall-second, speedup vs. the 1-shard baseline, and fleet results)
// for the perf trajectory. Acceptance target: ≥ 2.5× simulated-time
// throughput speedup at 4 shards / 4 threads vs. 1 shard.
// A second section compares execution runners (lockstep barriers vs the
// work-stealing ShardExecutor) on a rotating-skew workload: a synthetic
// trace with recorded router verdicts sends each burst of arrivals to a
// different shard, so every epoch has one hot shard and the hot shard
// keeps moving. Lockstep pays sum-over-epochs of the *slowest* shard
// (the barrier waits for the laggard every epoch); the steal runner
// routes the whole horizon ahead (recorded verdicts need no load
// snapshots) and overlaps different shards' epoch chains, paying only
// the longest per-shard chain. Reports must stay byte-identical; the
// ticks/s ratio is the gated speedup (target >= 1.5x on a machine with
// enough cores to express the overlap — below that the ratio is
// reported but not enforced, since with one core both runners execute
// the same total work serially).
#include <chrono>
#include <cstring>
#include <thread>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "core/cocg_scheduler.h"
#include "core/model_bank.h"
#include "core/offline.h"
#include "fleet/fleet.h"
#include "game/library.h"
#include "obs/metrics.h"
#include "traffic/trace.h"

using namespace cocg;

namespace {

constexpr int kTotalServers = 8;
constexpr int kGpusPerServer = 2;
constexpr int kMinutes = 15;
constexpr double kArrivalsPerHourPerGame = 150.0;
constexpr std::uint64_t kSeed = 2024;

// Skewed-runner section defaults (override with --skew-minutes).
constexpr int kSkewShards = 4;
constexpr int kSkewThreads = 4;
constexpr int kSkewMinutes = 96;
constexpr int kPhaseMinutes = 8;     ///< how long each shard stays hot
constexpr int kPhaseArrivals = 16;   ///< burst size routed to the hot shard
constexpr double kRunnerSpeedupTarget = 1.5;

struct RunResult {
  double wall_s = 0.0;
  double sim_per_wall = 0.0;
  fleet::FleetReport report;
};

RunResult run_config(int shards, int threads, fleet::RouterPolicy policy,
                     int minutes) {
  // Each shard trains its own scheduler (TrainedGame is move-only); the
  // training cost is setup and excluded from the timed window.
  core::OfflineConfig ocfg;
  ocfg.profiling_runs = 6;
  ocfg.corpus_runs = 30;
  ocfg.seed = kSeed;

  fleet::FleetConfig fcfg;
  fcfg.shards = shards;
  fcfg.threads = threads;
  fcfg.policy = policy;
  fcfg.seed = kSeed;
  fleet::Fleet sim(fcfg, [&](int) {
    return std::make_unique<core::CocgScheduler>(
        core::train_suite(bench::paper_suite_static(), ocfg));
  });

  hw::ServerSpec spec;
  spec.num_gpus = kGpusPerServer;
  for (int i = 0; i < kTotalServers; ++i) sim.add_server(spec);
  for (const auto& g : bench::paper_suite_static()) {
    sim.add_global_source({&g, kArrivalsPerHourPerGame, 16});
  }

  const DurationMs horizon = static_cast<DurationMs>(minutes) * 60 * 1000;
  const auto wall0 = std::chrono::steady_clock::now();
  sim.run(horizon);
  RunResult r;
  r.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           wall0)
                 .count();
  r.sim_per_wall = ms_to_sec(horizon) / r.wall_s;
  r.report = sim.report();
  return r;
}

// --- runner comparison on a skewed fleet ---------------------------------

struct RunnerResult {
  double wall_s = 0.0;
  double ticks_per_sec = 0.0;          ///< hardware ticks (all shards) / wall s
  double session_ticks_per_sec = 0.0;  ///< sessions advanced / wall s
  fleet::Fleet::ExecutorStats stats;
  std::string report;  ///< canonical report_json — the parity evidence
};

/// Synthetic rotating-skew trace: every kPhaseMinutes, a burst of
/// kPhaseArrivals sessions lands on the next shard (recorded verdicts —
/// replayed, not re-routed), so the hot shard cycles 0, 1, ..., K-1, 0...
traffic::Trace make_rotating_trace(int minutes) {
  const auto& suite = bench::paper_suite_static();
  traffic::Trace trace;
  trace.meta["generator"] = "bench_fleet_scale rotating skew";
  trace.regions = {"global"};
  for (const auto& g : suite) {
    trace.games.push_back({g.name, g.category});
  }
  Rng rng(kSeed);
  const int phases = minutes / kPhaseMinutes;
  for (int p = 0; p < phases; ++p) {
    const TimeMs phase_start =
        static_cast<TimeMs>(p) * kPhaseMinutes * 60 * 1000;
    for (int i = 0; i < kPhaseArrivals; ++i) {
      traffic::TraceEvent e;
      // Burst into the first half of the phase, time-ordered.
      e.t = phase_start + static_cast<TimeMs>(i) *
                              (kPhaseMinutes * 30 * 1000 / kPhaseArrivals);
      e.region = 0;
      e.game = static_cast<std::uint32_t>((p + i) % trace.games.size());
      e.player_id = static_cast<std::uint64_t>(rng.uniform_int(1, 64));
      e.profile = traffic::PlayerProfile::kRegular;
      e.expected_session_ms =
          static_cast<DurationMs>(kPhaseMinutes) * 60 * 1000;
      e.script_idx = static_cast<std::uint32_t>(
          i % suite[e.game].scripts.size());
      e.shard = p % kSkewShards;  // the recorded verdict IS the rotation
      trace.events.push_back(e);
    }
  }
  return trace;
}

RunnerResult run_runner(const core::ModelBank& bank,
                        const traffic::Trace& trace, fleet::RunnerKind runner,
                        int minutes) {
  const auto& suite = bench::paper_suite_static();
  fleet::FleetConfig fcfg;
  fcfg.shards = kSkewShards;
  fcfg.threads = kSkewThreads;
  // Replayed verdicts need no load snapshots, so the steal coordinator
  // routes the entire horizon ahead of execution (zero forced syncs).
  fcfg.policy = fleet::RouterPolicy::kRoundRobin;
  fcfg.runner = runner;
  fcfg.seed = kSeed;
  // One-second epochs: per-epoch coordination is exactly what this row
  // measures.
  fcfg.platform.control_period_ms = 1000;
  fleet::Fleet sim(fcfg, [&](int) {
    return std::make_unique<core::CocgScheduler>(bank.instantiate_suite(suite));
  });

  hw::ServerSpec spec;
  spec.num_gpus = kGpusPerServer;
  for (int s = 0; s < kSkewShards; ++s) sim.add_server_to_shard(s, spec);
  std::vector<const game::GameSpec*> specs;
  for (const auto& g : suite) specs.push_back(&g);
  sim.add_trace_arrivals(trace, specs, /*use_recorded_routing=*/true);

  const DurationMs horizon = static_cast<DurationMs>(minutes) * 60 * 1000;
  const auto wall0 = std::chrono::steady_clock::now();
  sim.run(horizon);
  RunnerResult r;
  r.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           wall0)
                 .count();
  obs::MetricsRegistry reg;
  sim.merge_metrics(reg);
  r.ticks_per_sec =
      static_cast<double>(reg.counter("platform.hardware_ticks").value()) /
      r.wall_s;
  r.session_ticks_per_sec =
      static_cast<double>(reg.counter("platform.session_ticks").value()) /
      r.wall_s;
  r.stats = sim.executor_stats();
  r.report = fleet::report_json(sim.report());
  return r;
}

/// Lockstep vs steal on the skewed fleet; returns true when the gated
/// criteria hold (byte-identical reports, steal >= target x ticks/s).
bool run_runner_section(bench::BenchJson& json, int minutes) {
  std::cout << "\n--- runner comparison: lockstep vs steal ("
            << kSkewShards << " shards, " << kSkewThreads
            << " threads, rotating skew, " << minutes
            << " simulated minutes) ---\n";

  // Train once, share across shards and both runs (the comparison is
  // about execution, not training).
  core::OfflineConfig ocfg;
  ocfg.profiling_runs = 6;
  ocfg.corpus_runs = 30;
  ocfg.seed = kSeed;
  core::ModelBank bank;
  for (const auto& [name, tg] :
       core::train_suite(bench::paper_suite_static(), ocfg)) {
    bank.add_trained(tg);
  }
  const traffic::Trace trace = make_rotating_trace(minutes);

  // Tick counters only record with the obs switch on; both runs pay the
  // same (sub-1%) overhead, so the ratio is untouched.
  obs::set_enabled(true);
  const RunnerResult lockstep =
      run_runner(bank, trace, fleet::RunnerKind::kLockstep, minutes);
  const RunnerResult steal =
      run_runner(bank, trace, fleet::RunnerKind::kSteal, minutes);
  obs::set_enabled(false);
  const bool parity = lockstep.report == steal.report;
  const double ratio = lockstep.ticks_per_sec > 0.0
                           ? steal.ticks_per_sec / lockstep.ticks_per_sec
                           : 0.0;
  // The overlap the steal runner exploits needs real cores: with fewer
  // than kSkewThreads hardware threads both runners serialize the same
  // total work and the ratio pins to ~1x, so the speedup target is
  // reported but only enforced on machines that can express it.
  const unsigned cores = std::thread::hardware_concurrency();
  const bool gate_speedup = cores >= static_cast<unsigned>(kSkewThreads);

  TablePrinter table({"runner", "wall s", "ticks/s", "session-ticks/s",
                      "steals", "syncs", "report"});
  const auto add = [&](const char* name, const RunnerResult& r) {
    table.add_row({name, TablePrinter::fmt(r.wall_s, 2),
                   TablePrinter::fmt(r.ticks_per_sec, 0),
                   TablePrinter::fmt(r.session_ticks_per_sec, 0),
                   std::to_string(r.stats.steals),
                   std::to_string(r.stats.syncs),
                   parity ? "identical" : "MISMATCH"});
    json.row()
        .set("runner", name)
        .set("skew_shards", static_cast<double>(kSkewShards))
        .set("skew_threads", static_cast<double>(kSkewThreads))
        .set("skew_minutes", static_cast<double>(minutes))
        .set("wall_s", r.wall_s)
        .set("ticks_per_sec", r.ticks_per_sec)
        .set("session_ticks_per_sec", r.session_ticks_per_sec)
        .set("executor_steals", static_cast<double>(r.stats.steals))
        .set("executor_syncs", static_cast<double>(r.stats.syncs))
        .set("report_parity", parity ? 1.0 : 0.0);
  };
  add("lockstep", lockstep);
  add("steal", steal);
  table.print(std::cout);

  json.set("ticks_per_sec_ratio_steal_vs_lockstep", ratio);
  json.set("runner_speedup_target", kRunnerSpeedupTarget);
  json.set("runner_report_parity", parity ? 1.0 : 0.0);
  json.set("runner_gate_enforced", gate_speedup ? 1.0 : 0.0);
  json.set("hardware_threads", static_cast<double>(cores));
  std::cout << "steal vs lockstep: " << TablePrinter::fmt(ratio, 2)
            << "x ticks/s (target >= "
            << TablePrinter::fmt(kRunnerSpeedupTarget, 2) << "x, "
            << (gate_speedup
                    ? "enforced"
                    : "reported only: " + std::to_string(cores) +
                          " hardware thread(s) cannot overlap shard chains")
            << "), reports " << (parity ? "byte-identical" : "DIVERGED")
            << "\n";
  return parity && (!gate_speedup || ratio >= kRunnerSpeedupTarget);
}

}  // namespace

int main(int argc, char** argv) {
  int minutes = kMinutes;
  int skew_minutes = kSkewMinutes;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--minutes") == 0 && i + 1 < argc) {
      minutes = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--skew-minutes") == 0 && i + 1 < argc) {
      skew_minutes = std::atoi(argv[++i]);
    } else {
      std::cerr << "usage: bench_fleet_scale [--minutes N] [--skew-minutes N]\n";
      return 2;
    }
  }
  if (minutes <= 0 || skew_minutes <= 0) {
    std::cerr << "error: minutes must be positive\n";
    return 2;
  }
  bench::banner("fleet_scale",
                "sharded fleet scalability (fixed total servers)");
  std::cout << kTotalServers << " servers x " << kGpusPerServer
            << " GPUs, " << minutes << " simulated minutes, "
            << kArrivalsPerHourPerGame
            << " arrivals/hour per game (open loop, 5 games)\n\n";

  bench::BenchJson json("fleet_scale");
  json.set("total_servers", static_cast<double>(kTotalServers));
  json.set("gpus_per_server", static_cast<double>(kGpusPerServer));
  json.set("simulated_minutes", static_cast<double>(minutes));
  json.set("arrivals_per_hour_per_game", kArrivalsPerHourPerGame);

  TablePrinter table({"shards", "threads", "policy", "wall s",
                      "sim-s/wall-s", "speedup", "arrivals", "completed",
                      "T (game-s)", "queue@end"});
  std::vector<std::vector<std::string>> csv;
  csv.push_back({"shards", "threads", "policy", "wall_s", "sim_per_wall",
                 "speedup", "arrivals", "completed", "throughput"});

  double baseline_sim_per_wall = 0.0;
  double speedup_4shards = 0.0;

  struct Config {
    int shards;
    fleet::RouterPolicy policy;
  };
  std::vector<Config> configs;
  for (int k : {1, 2, 4, 8}) {
    configs.push_back({k, fleet::RouterPolicy::kLeastLoaded});
  }
  configs.push_back({4, fleet::RouterPolicy::kRoundRobin});
  configs.push_back({4, fleet::RouterPolicy::kPowerOfTwo});

  for (const auto& c : configs) {
    const RunResult r = run_config(c.shards, c.shards, c.policy, minutes);
    if (c.shards == 1) baseline_sim_per_wall = r.sim_per_wall;
    const double speedup =
        baseline_sim_per_wall > 0.0 ? r.sim_per_wall / baseline_sim_per_wall
                                    : 1.0;
    if (c.shards == 4 && c.policy == fleet::RouterPolicy::kLeastLoaded) {
      speedup_4shards = speedup;
    }
    std::size_t queued_end = 0;
    for (const auto& row : r.report.shards) queued_end += row.queued_end;
    const std::string policy = fleet::router_policy_name(c.policy);
    table.add_row({std::to_string(c.shards), std::to_string(c.shards),
                   policy, TablePrinter::fmt(r.wall_s, 2),
                   TablePrinter::fmt(r.sim_per_wall, 0),
                   TablePrinter::fmt(speedup, 2) + "x",
                   std::to_string(r.report.arrivals),
                   std::to_string(r.report.completed),
                   TablePrinter::fmt(r.report.throughput, 0),
                   std::to_string(queued_end)});
    csv.push_back({std::to_string(c.shards), std::to_string(c.shards),
                   policy, TablePrinter::fmt(r.wall_s, 4),
                   TablePrinter::fmt(r.sim_per_wall, 1),
                   TablePrinter::fmt(speedup, 3),
                   std::to_string(r.report.arrivals),
                   std::to_string(r.report.completed),
                   TablePrinter::fmt(r.report.throughput, 1)});
    json.row()
        .set("shards", static_cast<double>(c.shards))
        .set("threads", static_cast<double>(c.shards))
        .set("policy", policy)
        .set("wall_s", r.wall_s)
        .set("sim_seconds_per_wall_second", r.sim_per_wall)
        .set("speedup_vs_1_shard", speedup)
        .set("arrivals", static_cast<double>(r.report.arrivals))
        .set("completed", static_cast<double>(r.report.completed))
        .set("throughput_game_seconds", r.report.throughput)
        .set("qos_violation_s", r.report.qos_violation_s)
        .set("mean_wait_s", r.report.mean_wait_s)
        .set("queued_end", static_cast<double>(queued_end));
  }
  table.print(std::cout);

  std::cout << "\nspeedup at 4 shards / 4 threads vs 1 shard: "
            << TablePrinter::fmt(speedup_4shards, 2)
            << "x (target >= 2.50x)\n";
  json.set("speedup_4_shards_4_threads", speedup_4shards);
  json.set("speedup_target", 2.5);

  const bool runner_ok = run_runner_section(json, skew_minutes);

  bench::write_csv("fleet_scale", csv);
  json.write();
  return (speedup_4shards >= 2.5 && runner_ok) ? 0 : 1;
}
