// Micro-benchmarks (google-benchmark) for the hot paths of the simulator
// and the ML substrate: event-queue churn, whole-server contention
// resolution, session ticking, K-means fitting, tree training and the
// stage predictor's online inference.
//
// After the google-benchmark suite, main() runs two hand-timed harnesses:
//  - a SoA batch-kernel harness (vectorized hw/batch_kernels vs their
//    *_scalar twins) writing BENCH_micro_kernels.json, gated on the
//    elementwise kernels (min_into / scale_into / mul_into) reaching
//    >= 1.5x over scalar;
//  - a compiled-inference harness (legacy tree walk vs CompiledForest,
//    scalar vs batch vs lane-blocked SIMD batch) writing
//    BENCH_micro_inference.json, gated on >= 2x for batched inference
//    over the legacy per-row tree walk on the RF-25 model.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/table.h"
#include "hw/batch_kernels.h"
#include "core/offline.h"
#include "game/library.h"
#include "game/plan.h"
#include "game/session.h"
#include "hw/contention.h"
#include "hw/server.h"
#include "ml/compiled.h"
#include "ml/gbdt.h"
#include "ml/kmeans.h"
#include "ml/random_forest.h"
#include "ml/tree.h"
#include "sim/engine.h"

namespace cocg {
namespace {

void BM_EventQueueChurn(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < n; ++i) {
      q.schedule((i * 7919) % 1000, [] {});
    }
    while (!q.empty()) q.pop_and_run();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueChurn)->Arg(100)->Arg(1000)->Arg(10000);

void BM_ResolveServer(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  hw::ServerSpec spec;
  std::vector<hw::PinnedDraw> draws;
  for (int i = 0; i < n; ++i) {
    hw::PinnedDraw d;
    d.draw.sid = SessionId{static_cast<std::uint64_t>(i)};
    d.draw.demand = ResourceVector{30, 40, 2000, 2000};
    d.draw.allocation = spec.per_gpu_capacity();
    d.gpu_index = i % spec.num_gpus;
    draws.push_back(d);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(hw::resolve_server(spec, draws));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ResolveServer)->Arg(2)->Arg(8)->Arg(32);

void BM_SessionFullRun(benchmark::State& state) {
  static const game::GameSpec spec = game::make_genshin();
  for (auto _ : state) {
    Rng rng(42);
    auto plan = game::generate_plan(spec, 0, 1, rng);
    game::GameSession s(SessionId{1}, &spec, 0, std::move(plan), rng.fork());
    TimeMs now = 0;
    s.begin(now);
    while (!s.finished()) {
      s.tick(now, s.demand());
      now += 1000;
    }
    benchmark::DoNotOptimize(s.mean_fps());
  }
}
BENCHMARK(BM_SessionFullRun);

void BM_KMeansFit(benchmark::State& state) {
  Rng rng(7);
  std::vector<ml::Point> pts;
  for (int b = 0; b < 5; ++b) {
    for (int i = 0; i < 200; ++i) {
      pts.push_back({b * 3.0 + rng.normal(0, 0.2),
                     b * 2.0 + rng.normal(0, 0.2), rng.normal(0, 0.2),
                     rng.normal(0, 0.2)});
    }
  }
  ml::KMeansConfig cfg;
  cfg.k = 5;
  for (auto _ : state) {
    Rng fit(13);
    benchmark::DoNotOptimize(ml::KMeans::fit(pts, cfg, fit));
  }
  state.SetItemsProcessed(state.iterations() * pts.size());
}
BENCHMARK(BM_KMeansFit);

void BM_TreeFit(benchmark::State& state) {
  Rng rng(9);
  ml::Dataset d({"a", "b", "c"});
  for (int i = 0; i < 1000; ++i) {
    const double a = rng.uniform(0, 10), b = rng.uniform(0, 10),
                 c = rng.uniform(0, 10);
    d.add({a, b, c}, (a + b > 10.0 ? 1 : 0) + (c > 5.0 ? 1 : 0));
  }
  for (auto _ : state) {
    ml::DecisionTreeClassifier tree;
    tree.fit(d);
    benchmark::DoNotOptimize(tree.node_count());
  }
  state.SetItemsProcessed(state.iterations() * d.size());
}
BENCHMARK(BM_TreeFit);

void BM_PredictorInference(benchmark::State& state) {
  static const std::vector<game::GameSpec> suite = {game::make_dota2()};
  static const core::TrainedGame tg = [] {
    core::OfflineConfig cfg;
    cfg.profiling_runs = 8;
    cfg.corpus_runs = 30;
    return core::train_game(suite[0], cfg);
  }();
  std::vector<int> hist{1, 2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tg.predictor->predict_next(hist, 3, 0));
  }
}
BENCHMARK(BM_PredictorInference);

void BM_OfflineTrainGame(benchmark::State& state) {
  static const game::GameSpec spec = game::make_contra();
  for (auto _ : state) {
    core::OfflineConfig cfg;
    cfg.profiling_runs = 6;
    cfg.corpus_runs = 12;
    benchmark::DoNotOptimize(core::train_game(spec, cfg));
  }
}
BENCHMARK(BM_OfflineTrainGame);

// ---------------------------------------------------------------------------
// SoA batch-kernel harness (hand-timed; emits BENCH_micro_kernels.json)
// ---------------------------------------------------------------------------

/// One kernel measured both ways. `lanes_per_s` counts one lane-visit per
/// element per pass, best of `reps` timed passes (each pass repeats the
/// kernel `inner` times so the measured interval is well above timer
/// granularity).
struct KernelResult {
  std::string kernel;
  double vector_lanes_per_s = 0.0;
  double scalar_lanes_per_s = 0.0;
  bool parity = true;  ///< vectorized output bit-identical to scalar
  bool gated = false;  ///< participates in the >= 1.5x exit gate
  double speedup() const { return vector_lanes_per_s / scalar_lanes_per_s; }
};

template <typename F>
double best_lanes_per_s(std::size_t n, int reps, int inner, F&& body) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    double checksum = 0.0;
    for (int i = 0; i < inner; ++i) checksum += body();
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    benchmark::DoNotOptimize(checksum);
    best = std::max(best, static_cast<double>(n) * inner / s);
  }
  return best;
}

int run_batch_kernel_harness() {
  bench::banner("micro_kernels",
                "SoA batch kernels: auto-vectorized vs scalar reference");
  // L1-resident lane count: resolve_server runs these kernels at
  // n = sessions-per-server (8..128 at paper density), never at
  // cache-spilling sizes. 1024 lanes keeps even the 3-stream mul_into
  // working set (24 KB) inside L1, so the gate measures the kernels'
  // compute speedup rather than L2 bandwidth.
  constexpr std::size_t kLanes = 1024;
  constexpr int kReps = 9;
  constexpr int kInner = 8000;

  // Resource-shaped inputs: positive draws with a sprinkling of exact
  // zeros in the demand lanes (idle dimensions), supplies <= demand —
  // the same value population resolve_server feeds these kernels.
  Rng rng(20240808);
  std::vector<double> a(kLanes), b(kLanes), demand(kLanes), supplied(kLanes);
  for (std::size_t i = 0; i < kLanes; ++i) {
    a[i] = rng.uniform(0.0, 100.0);
    b[i] = rng.uniform(0.0, 100.0);
    demand[i] = (i % 16 == 0) ? 0.0 : rng.uniform(1.0, 100.0);
    supplied[i] = demand[i] * rng.uniform(0.25, 1.0);
  }
  std::vector<double> dst(kLanes), dst_ref(kLanes);
  std::vector<double> sat(kLanes), any(kLanes), sat_ref(kLanes),
      any_ref(kLanes);

  std::vector<KernelResult> results;

  const auto elementwise = [&](const std::string& name, auto&& vec,
                               auto&& scal) {
    KernelResult r;
    r.kernel = name;
    r.gated = true;
    vec(dst.data());
    scal(dst_ref.data());
    r.parity = dst == dst_ref;
    r.vector_lanes_per_s =
        best_lanes_per_s(kLanes, kReps, kInner, [&] {
          vec(dst.data());
          return dst[0];
        });
    r.scalar_lanes_per_s =
        best_lanes_per_s(kLanes, kReps, kInner, [&] {
          scal(dst_ref.data());
          return dst_ref[0];
        });
    results.push_back(r);
  };

  namespace bk = hw::batch;
  elementwise(
      "min_into",
      [&](double* d) { bk::min_into(d, a.data(), b.data(), kLanes); },
      [&](double* d) { bk::min_into_scalar(d, a.data(), b.data(), kLanes); });
  elementwise(
      "scale_into",
      [&](double* d) { bk::scale_into(d, a.data(), 0.8125, kLanes); },
      [&](double* d) { bk::scale_into_scalar(d, a.data(), 0.8125, kLanes); });
  elementwise(
      "mul_into",
      [&](double* d) { bk::mul_into(d, a.data(), b.data(), kLanes); },
      [&](double* d) { bk::mul_into_scalar(d, a.data(), b.data(), kLanes); });

  // satisfaction_apply_dim: reported, not gated. The vectorized form
  // must divide every lane and blend (branchless masking), while the
  // scalar form skips the divide on zero-demand lanes; with SSE2's
  // 2-wide divpd the packed divides roughly break even with the skipped
  // scalar ones, so this kernel hovers near 1x and only pulls ahead on
  // wider vector units. It stays SoA for bit-identity and uniformity,
  // not for throughput.
  {
    KernelResult r;
    r.kernel = "satisfaction_apply_dim";
    r.gated = false;
    bk::satisfaction_init(sat.data(), any.data(), kLanes);
    bk::satisfaction_apply_dim(sat.data(), any.data(), demand.data(),
                               supplied.data(), kLanes);
    bk::satisfaction_init(sat_ref.data(), any_ref.data(), kLanes);
    bk::satisfaction_apply_dim_scalar(sat_ref.data(), any_ref.data(),
                                      demand.data(), supplied.data(), kLanes);
    r.parity = sat == sat_ref && any == any_ref;
    r.vector_lanes_per_s = best_lanes_per_s(kLanes, kReps, kInner, [&] {
      bk::satisfaction_init(sat.data(), any.data(), kLanes);
      bk::satisfaction_apply_dim(sat.data(), any.data(), demand.data(),
                                 supplied.data(), kLanes);
      return sat[0];
    });
    r.scalar_lanes_per_s = best_lanes_per_s(kLanes, kReps, kInner, [&] {
      bk::satisfaction_init(sat_ref.data(), any_ref.data(), kLanes);
      bk::satisfaction_apply_dim_scalar(sat_ref.data(), any_ref.data(),
                                        demand.data(), supplied.data(),
                                        kLanes);
      return sat_ref[0];
    });
    results.push_back(r);
  }

  // satisfaction_into: the fused four-dim kernel resolve_server actually
  // calls. Also reported, not gated — it inherits apply_dim's masked
  // divides, the fusion only removes the inter-dimension memory passes.
  {
    std::vector<std::vector<double>> dd(4), ss(4);
    Rng drng(7);
    for (int d = 0; d < 4; ++d) {
      dd[d].resize(kLanes);
      ss[d].resize(kLanes);
      for (std::size_t i = 0; i < kLanes; ++i) {
        dd[d][i] = (i % (13 + d) == 0) ? 0.0 : drng.uniform(1.0, 100.0);
        ss[d][i] = dd[d][i] * drng.uniform(0.25, 1.0);
      }
    }
    KernelResult r;
    r.kernel = "satisfaction_into (fused)";
    r.gated = false;
    bk::satisfaction_into(sat.data(), dd[0].data(), ss[0].data(),
                          dd[1].data(), ss[1].data(), dd[2].data(),
                          ss[2].data(), dd[3].data(), ss[3].data(), kLanes);
    bk::satisfaction_into_scalar(sat_ref.data(), dd[0].data(), ss[0].data(),
                                 dd[1].data(), ss[1].data(), dd[2].data(),
                                 ss[2].data(), dd[3].data(), ss[3].data(),
                                 kLanes);
    r.parity = sat == sat_ref;
    r.vector_lanes_per_s = best_lanes_per_s(kLanes, kReps, kInner, [&] {
      bk::satisfaction_into(sat.data(), dd[0].data(), ss[0].data(),
                            dd[1].data(), ss[1].data(), dd[2].data(),
                            ss[2].data(), dd[3].data(), ss[3].data(), kLanes);
      return sat[0];
    });
    r.scalar_lanes_per_s = best_lanes_per_s(kLanes, kReps, kInner, [&] {
      bk::satisfaction_into_scalar(sat_ref.data(), dd[0].data(), ss[0].data(),
                                   dd[1].data(), ss[1].data(), dd[2].data(),
                                   ss[2].data(), dd[3].data(), ss[3].data(),
                                   kLanes);
      return sat_ref[0];
    });
    results.push_back(r);
  }

  bench::BenchJson json("micro_kernels");
  json.set("lanes", static_cast<double>(kLanes));

  TablePrinter table({"kernel", "vector lanes/s", "scalar lanes/s", "speedup",
                      "gated", "parity"});
  bool all_parity = true;
  double min_gated_speedup = 1e300;
  for (const auto& r : results) {
    all_parity = all_parity && r.parity;
    if (r.gated) min_gated_speedup = std::min(min_gated_speedup, r.speedup());
    table.add_row({r.kernel, TablePrinter::fmt(r.vector_lanes_per_s, 0),
                   TablePrinter::fmt(r.scalar_lanes_per_s, 0),
                   TablePrinter::fmt(r.speedup(), 2) + "x",
                   r.gated ? "yes" : "no", r.parity ? "exact" : "MISMATCH"});
    json.row()
        .set("kernel", r.kernel)
        .set("vector_lanes_per_s", r.vector_lanes_per_s)
        .set("scalar_lanes_per_s", r.scalar_lanes_per_s)
        .set("speedup_vector_vs_scalar", r.speedup())
        .set("gated", r.gated ? 1.0 : 0.0)
        .set("parity", r.parity ? 1.0 : 0.0);
  }
  table.print(std::cout);

  json.set("min_gated_speedup", min_gated_speedup);
  json.set("parity_all_kernels", all_parity ? 1.0 : 0.0);
  json.write();

  const bool pass = all_parity && min_gated_speedup >= 1.5;
  std::cout << (pass ? "PASS" : "FAIL")
            << ": slowest gated elementwise kernel is "
            << TablePrinter::fmt(min_gated_speedup, 2)
            << "x its scalar twin (gate: >= 1.5x, parity "
            << (all_parity ? "exact" : "BROKEN") << ")\n";
  return pass ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Compiled-inference harness (hand-timed; emits BENCH_micro_inference.json)
// ---------------------------------------------------------------------------

/// Synthetic multiclass stage-prediction-shaped dataset: a few threshold
/// rules over 8 features plus label noise, so trees of realistic depth
/// emerge.
ml::Dataset synth_dataset(std::size_t rows, int classes, Rng& rng) {
  ml::Dataset d({"f0", "f1", "f2", "f3", "f4", "f5", "f6", "f7"});
  for (std::size_t i = 0; i < rows; ++i) {
    ml::FeatureRow x(8);
    for (auto& v : x) v = rng.uniform(0.0, 10.0);
    int label = (x[0] + x[1] > 10.0 ? 1 : 0) + (x[2] > 5.0 ? 2 : 0) +
                (x[3] + x[4] > 9.0 ? 1 : 0) + (x[5] > 7.0 ? 1 : 0);
    if (rng.uniform(0.0, 1.0) < 0.08) {
      label = static_cast<int>(rng.uniform_int(0, classes - 1));
    }
    d.add(x, label % classes);
  }
  return d;
}

/// Best-of-`reps` throughput of `body` over `rows` rows; `body` returns a
/// checksum that is fed to DoNotOptimize so nothing is dead-code-eliminated.
template <typename F>
double best_rows_per_s(std::size_t rows, int reps, F&& body) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    double checksum = body();
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    benchmark::DoNotOptimize(checksum);
    best = std::max(best, static_cast<double>(rows) / s);
  }
  return best;
}

struct InferenceResult {
  std::string model;
  std::size_t trees = 0;
  double treewalk_rows_per_s = 0.0;        ///< legacy per-row predict_proba
  double compiled_scalar_rows_per_s = 0.0; ///< predict_proba_into per row
  double compiled_batch_rows_per_s = 0.0;  ///< predict_proba_batch
  double batch_predict_rows_per_s = 0.0;   ///< predict_batch (labels only)
  double simd_proba_rows_per_s = 0.0;      ///< predict_proba_batch_simd
  double simd_predict_rows_per_s = 0.0;    ///< predict_batch_simd
  bool parity = true;  ///< compiled == legacy, bit for bit, on every row
};

template <typename Legacy>
InferenceResult run_inference_bench(const std::string& name,
                                    const Legacy& legacy,
                                    const ml::CompiledForest& compiled,
                                    const std::vector<ml::FeatureRow>& rows,
                                    int reps) {
  InferenceResult res;
  res.model = name;
  res.trees = compiled.num_trees();
  const std::size_t n = rows.size();
  const auto k = static_cast<std::size_t>(compiled.num_classes());
  const ml::FeatureMatrix m = ml::FeatureMatrix::from_rows(rows);

  for (const auto& x : rows) {
    const auto want = legacy.predict_proba(x);
    if (want != compiled.predict_proba(x)) res.parity = false;
  }
  std::vector<double> batch(n * k, 0.0);
  compiled.predict_proba_batch(m, batch);
  for (std::size_t i = 0; i < n && res.parity; ++i) {
    const auto want = legacy.predict_proba(rows[i]);
    for (std::size_t c = 0; c < k; ++c) {
      if (batch[i * k + c] != want[c]) res.parity = false;
    }
  }
  // The lane-blocked SIMD walk must reproduce the serial batch bit for
  // bit (and, transitively, the legacy walk).
  std::vector<double> simd_proba(n * k, 0.0);
  compiled.predict_proba_batch_simd(m, simd_proba);
  if (simd_proba != batch) res.parity = false;
  std::vector<int> simd_labels(n, 0), serial_labels(n, 0);
  compiled.predict_batch(m, serial_labels);
  compiled.predict_batch_simd(m, simd_labels);
  if (simd_labels != serial_labels) res.parity = false;

  res.treewalk_rows_per_s = best_rows_per_s(n, reps, [&] {
    double sum = 0.0;
    for (const auto& x : rows) sum += legacy.predict_proba(x)[0];
    return sum;
  });
  std::vector<double> scratch(k, 0.0);
  res.compiled_scalar_rows_per_s = best_rows_per_s(n, reps, [&] {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      compiled.predict_proba_into(m.row(i), scratch);
      sum += scratch[0];
    }
    return sum;
  });
  res.compiled_batch_rows_per_s = best_rows_per_s(n, reps, [&] {
    compiled.predict_proba_batch(m, batch);
    return batch[0];
  });
  std::vector<int> labels(n, 0);
  res.batch_predict_rows_per_s = best_rows_per_s(n, reps, [&] {
    compiled.predict_batch(m, labels);
    return static_cast<double>(labels[0]);
  });
  res.simd_proba_rows_per_s = best_rows_per_s(n, reps, [&] {
    compiled.predict_proba_batch_simd(m, simd_proba);
    return simd_proba[0];
  });
  res.simd_predict_rows_per_s = best_rows_per_s(n, reps, [&] {
    compiled.predict_batch_simd(m, simd_labels);
    return static_cast<double>(simd_labels[0]);
  });
  return res;
}

int run_compiled_inference_harness() {
  bench::banner("micro_inference",
                "compiled vs tree-walk, batch vs scalar inference");
  constexpr std::size_t kTrainRows = 1500;
  constexpr std::size_t kEvalRows = 4000;
  constexpr int kClasses = 6;
  constexpr int kReps = 9;

  Rng rng(20240806);
  const ml::Dataset train = synth_dataset(kTrainRows, kClasses, rng);
  std::vector<ml::FeatureRow> eval_rows;
  eval_rows.reserve(kEvalRows);
  {
    const ml::Dataset held = synth_dataset(kEvalRows, kClasses, rng);
    for (std::size_t i = 0; i < held.size(); ++i) {
      eval_rows.push_back(held.x(i));
    }
  }

  ml::TreeConfig dtc_cfg;
  dtc_cfg.max_depth = 8;
  ml::DecisionTreeClassifier dtc(dtc_cfg);
  Rng fit_rng(1);
  dtc.fit(train, fit_rng);
  // Default RandomForestConfig is the paper-default 25-tree forest: the
  // acceptance criterion's "RF-25".
  ml::RandomForestClassifier rf;
  rf.fit(train, fit_rng);
  ml::GbdtClassifier gbdt;
  gbdt.fit(train, fit_rng);

  std::vector<InferenceResult> results;
  results.push_back(run_inference_bench(
      "DTC", dtc, ml::CompiledForest::compile(dtc), eval_rows, kReps));
  results.push_back(run_inference_bench(
      "RF-25", rf, ml::CompiledForest::compile(rf), eval_rows, kReps));
  results.push_back(run_inference_bench(
      "GBDT", gbdt, ml::CompiledForest::compile(gbdt), eval_rows, kReps));

  bench::BenchJson json("micro_inference");
  json.set("train_rows", static_cast<double>(kTrainRows));
  json.set("eval_rows", static_cast<double>(kEvalRows));
  json.set("classes", static_cast<double>(kClasses));

  TablePrinter table({"model", "trees", "tree-walk rows/s",
                      "compiled scalar rows/s", "compiled batch rows/s",
                      "simd batch rows/s", "batch vs walk", "simd vs batch",
                      "parity"});
  bool all_parity = true;
  for (const auto& r : results) {
    all_parity = all_parity && r.parity;
    const double speedup_batch =
        r.compiled_batch_rows_per_s / r.treewalk_rows_per_s;
    const double speedup_simd =
        r.simd_proba_rows_per_s / r.compiled_batch_rows_per_s;
    table.add_row({r.model, std::to_string(r.trees),
                   TablePrinter::fmt(r.treewalk_rows_per_s, 0),
                   TablePrinter::fmt(r.compiled_scalar_rows_per_s, 0),
                   TablePrinter::fmt(r.compiled_batch_rows_per_s, 0),
                   TablePrinter::fmt(r.simd_proba_rows_per_s, 0),
                   TablePrinter::fmt(speedup_batch, 2) + "x",
                   TablePrinter::fmt(speedup_simd, 2) + "x",
                   r.parity ? "exact" : "MISMATCH"});
    json.row()
        .set("model", r.model)
        .set("trees", static_cast<double>(r.trees))
        .set("treewalk_proba_rows_per_s", r.treewalk_rows_per_s)
        .set("compiled_scalar_proba_rows_per_s", r.compiled_scalar_rows_per_s)
        .set("compiled_batch_proba_rows_per_s", r.compiled_batch_rows_per_s)
        .set("compiled_batch_predict_rows_per_s", r.batch_predict_rows_per_s)
        .set("simd_batch_proba_rows_per_s", r.simd_proba_rows_per_s)
        .set("simd_batch_predict_rows_per_s", r.simd_predict_rows_per_s)
        .set("speedup_batch_vs_treewalk", speedup_batch)
        .set("speedup_scalar_vs_treewalk",
             r.compiled_scalar_rows_per_s / r.treewalk_rows_per_s)
        .set("speedup_batch_vs_scalar",
             r.compiled_batch_rows_per_s / r.compiled_scalar_rows_per_s)
        .set("speedup_simd_vs_batch_proba", speedup_simd)
        .set("speedup_simd_vs_batch_predict",
             r.simd_predict_rows_per_s / r.batch_predict_rows_per_s)
        .set("parity", r.parity ? 1.0 : 0.0);
  }
  table.print(std::cout);

  // The acceptance gate: batched predict_batch throughput vs the legacy
  // per-row predict_proba tree walk, on the default 25-tree forest.
  const auto& rf_res = results[1];
  const double rf_speedup =
      rf_res.batch_predict_rows_per_s / rf_res.treewalk_rows_per_s;
  json.set("rf25_treewalk_proba_rows_per_s", rf_res.treewalk_rows_per_s);
  json.set("rf25_compiled_scalar_proba_rows_per_s",
           rf_res.compiled_scalar_rows_per_s);
  json.set("rf25_compiled_batch_proba_rows_per_s",
           rf_res.compiled_batch_rows_per_s);
  json.set("rf25_compiled_batch_predict_rows_per_s",
           rf_res.batch_predict_rows_per_s);
  json.set("rf25_speedup_batch_vs_treewalk", rf_speedup);
  json.set("parity_all_models", all_parity ? 1.0 : 0.0);
  json.write();

  const bool pass = all_parity && rf_speedup >= 2.0;
  std::cout << (pass ? "PASS" : "FAIL")
            << ": RF-25 batched predict_batch is "
            << TablePrinter::fmt(rf_speedup, 2)
            << "x the legacy per-row predict_proba tree walk (gate: >= 2x,"
               " parity "
            << (all_parity ? "exact" : "BROKEN") << ")\n";
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace cocg

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const int kernels_rc = cocg::run_batch_kernel_harness();
  const int inference_rc = cocg::run_compiled_inference_harness();
  return kernels_rc != 0 ? kernels_rc : inference_rc;
}
