// Micro-benchmarks (google-benchmark) for the hot paths of the simulator
// and the ML substrate: event-queue churn, whole-server contention
// resolution, session ticking, K-means fitting, tree training and the
// stage predictor's online inference.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/offline.h"
#include "game/library.h"
#include "game/plan.h"
#include "game/session.h"
#include "hw/contention.h"
#include "hw/server.h"
#include "ml/kmeans.h"
#include "ml/tree.h"
#include "sim/engine.h"

namespace cocg {
namespace {

void BM_EventQueueChurn(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < n; ++i) {
      q.schedule((i * 7919) % 1000, [] {});
    }
    while (!q.empty()) q.pop_and_run();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueChurn)->Arg(100)->Arg(1000)->Arg(10000);

void BM_ResolveServer(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  hw::ServerSpec spec;
  std::vector<hw::PinnedDraw> draws;
  for (int i = 0; i < n; ++i) {
    hw::PinnedDraw d;
    d.draw.sid = SessionId{static_cast<std::uint64_t>(i)};
    d.draw.demand = ResourceVector{30, 40, 2000, 2000};
    d.draw.allocation = spec.per_gpu_capacity();
    d.gpu_index = i % spec.num_gpus;
    draws.push_back(d);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(hw::resolve_server(spec, draws));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ResolveServer)->Arg(2)->Arg(8)->Arg(32);

void BM_SessionFullRun(benchmark::State& state) {
  static const game::GameSpec spec = game::make_genshin();
  for (auto _ : state) {
    Rng rng(42);
    auto plan = game::generate_plan(spec, 0, 1, rng);
    game::GameSession s(SessionId{1}, &spec, 0, std::move(plan), rng.fork());
    TimeMs now = 0;
    s.begin(now);
    while (!s.finished()) {
      s.tick(now, s.demand());
      now += 1000;
    }
    benchmark::DoNotOptimize(s.mean_fps());
  }
}
BENCHMARK(BM_SessionFullRun);

void BM_KMeansFit(benchmark::State& state) {
  Rng rng(7);
  std::vector<ml::Point> pts;
  for (int b = 0; b < 5; ++b) {
    for (int i = 0; i < 200; ++i) {
      pts.push_back({b * 3.0 + rng.normal(0, 0.2),
                     b * 2.0 + rng.normal(0, 0.2), rng.normal(0, 0.2),
                     rng.normal(0, 0.2)});
    }
  }
  ml::KMeansConfig cfg;
  cfg.k = 5;
  for (auto _ : state) {
    Rng fit(13);
    benchmark::DoNotOptimize(ml::KMeans::fit(pts, cfg, fit));
  }
  state.SetItemsProcessed(state.iterations() * pts.size());
}
BENCHMARK(BM_KMeansFit);

void BM_TreeFit(benchmark::State& state) {
  Rng rng(9);
  ml::Dataset d({"a", "b", "c"});
  for (int i = 0; i < 1000; ++i) {
    const double a = rng.uniform(0, 10), b = rng.uniform(0, 10),
                 c = rng.uniform(0, 10);
    d.add({a, b, c}, (a + b > 10.0 ? 1 : 0) + (c > 5.0 ? 1 : 0));
  }
  for (auto _ : state) {
    ml::DecisionTreeClassifier tree;
    tree.fit(d);
    benchmark::DoNotOptimize(tree.node_count());
  }
  state.SetItemsProcessed(state.iterations() * d.size());
}
BENCHMARK(BM_TreeFit);

void BM_PredictorInference(benchmark::State& state) {
  static const std::vector<game::GameSpec> suite = {game::make_dota2()};
  static const core::TrainedGame tg = [] {
    core::OfflineConfig cfg;
    cfg.profiling_runs = 8;
    cfg.corpus_runs = 30;
    return core::train_game(suite[0], cfg);
  }();
  std::vector<int> hist{1, 2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tg.predictor->predict_next(hist, 3, 0));
  }
}
BENCHMARK(BM_PredictorInference);

void BM_OfflineTrainGame(benchmark::State& state) {
  static const game::GameSpec spec = game::make_contra();
  for (auto _ : state) {
    core::OfflineConfig cfg;
    cfg.profiling_runs = 6;
    cfg.corpus_runs = 12;
    benchmark::DoNotOptimize(core::train_game(spec, cfg));
  }
}
BENCHMARK(BM_OfflineTrainGame);

}  // namespace
}  // namespace cocg

BENCHMARK_MAIN();
