// Fig. 15 — "Prediction Accuracy."
//
// Next-stage prediction accuracy of the three ML algorithms (DTC, RF,
// GBDT) per game, on a 75/25 train/test split of the stage-sequence
// corpus (§V-D2). Paper reference points: DTC exceeds 92% on most games;
// Genshin Impact is harder for DTC and RF while GBDT holds up (its complex
// environment "requires more in-depth iteration").
#include <iostream>

#include "bench_util.h"
#include "core/offline.h"

using namespace cocg;

int main() {
  bench::banner("Fig. 15", "next-stage prediction accuracy, DTC/RF/GBDT");

  core::OfflineConfig cfg = bench::bench_offline_config(1515);
  cfg.corpus_runs = 120;  // a richer corpus for the accuracy study
  auto models = core::train_suite(bench::paper_suite_static(), cfg);

  TablePrinter table({"game", "category", "DTC", "RF", "GBDT"});
  std::vector<std::vector<std::string>> csv;
  csv.push_back({"game", "category", "dtc", "rf", "gbdt"});
  bench::BenchJson json("fig15_prediction_accuracy");

  Rng rng(151515);
  double dtc_sum = 0, rf_sum = 0, gbdt_sum = 0;
  int games = 0;
  for (const auto& name :
       {"DOTA2", "CSGO", "Genshin Impact", "Devil May Cry", "Contra"}) {
    const auto& tg = models.at(name);
    const double dtc = tg.predictor->evaluate_model(ml::ModelKind::kDtc, rng);
    const double rf = tg.predictor->evaluate_model(ml::ModelKind::kRf, rng);
    const double gbdt =
        tg.predictor->evaluate_model(ml::ModelKind::kGbdt, rng);
    dtc_sum += dtc;
    rf_sum += rf;
    gbdt_sum += gbdt;
    ++games;
    table.add_row({name, game::category_name(tg.spec->category),
                   TablePrinter::fmt_pct(100 * dtc, 1),
                   TablePrinter::fmt_pct(100 * rf, 1),
                   TablePrinter::fmt_pct(100 * gbdt, 1)});
    csv.push_back({name, game::category_name(tg.spec->category),
                   TablePrinter::fmt(dtc, 4), TablePrinter::fmt(rf, 4),
                   TablePrinter::fmt(gbdt, 4)});
    json.row()
        .set("game", name)
        .set("category", game::category_name(tg.spec->category))
        .set("dtc_accuracy", dtc)
        .set("rf_accuracy", rf)
        .set("gbdt_accuracy", gbdt);
  }
  table.print(std::cout);
  json.set("mean_dtc_accuracy", dtc_sum / games);
  json.set("mean_rf_accuracy", rf_sum / games);
  json.set("mean_gbdt_accuracy", gbdt_sum / games);
  json.write();
  bench::write_csv("fig15_prediction_accuracy", csv);
  std::cout << "\nPaper: DTC > 92% on most games; Genshin Impact is harder"
               " for DTC/RF while GBDT remains high.\n";
  return 0;
}
