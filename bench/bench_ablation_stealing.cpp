// Ablation — loading-time stealing (the regulator, §IV-C2).
//
// "Extend loading time" is CoCG's peak-staggering mechanism. This ablation
// runs the Genshin+DOTA2 co-location with the regulator's stealing
// enabled, disabled (max_steal_ms = 0) and unbounded, and reports the
// fraction of ticks over the 95% limit, QoS violations, and throughput.
//
// Expected: disabling stealing raises over-limit time and FPS loss;
// unbounded stealing trades loading-time extension for execution QoS.
#include <iostream>

#include "bench_util.h"
#include "core/cocg_scheduler.h"
#include "platform/cloud_platform.h"

using namespace cocg;

namespace {

struct Outcome {
  double throughput = 0.0;
  double over_limit_frac = 0.0;
  double qos_violation_s = 0.0;
  double loading_extension_s = 0.0;
};

Outcome run_variant(DurationMs max_steal, std::uint64_t seed) {
  auto models = core::train_suite(bench::paper_suite_static(),
                                  bench::bench_offline_config(4343));
  core::CocgConfig cfg;
  cfg.regulator.max_steal_ms = max_steal;

  platform::PlatformConfig pcfg;
  pcfg.seed = seed;
  platform::CloudPlatform cloud(
      pcfg, std::make_unique<core::CocgScheduler>(std::move(models), cfg));
  hw::ServerSpec one_gpu;
  one_gpu.num_gpus = 1;
  cloud.add_server(one_gpu);
  cloud.enable_utilization_recording(true);
  static const auto& suite = bench::paper_suite_static();
  cloud.add_source({&suite[2], 1, 8});  // Genshin Impact
  cloud.add_source({&suite[0], 1, 8});  // DOTA2
  cloud.run(60 * 60 * 1000);

  Outcome out;
  out.throughput = cloud.throughput();
  std::size_t over = 0;
  for (const auto& up : cloud.utilization_log()) {
    if (up.max_dim_fraction > 0.95) ++over;
  }
  out.over_limit_frac =
      cloud.utilization_log().empty()
          ? 0.0
          : static_cast<double>(over) /
                static_cast<double>(cloud.utilization_log().size());
  for (const auto& run : cloud.completed_runs()) {
    out.qos_violation_s += ms_to_sec(run.qos_violation_ms);
    out.loading_extension_s += ms_to_sec(run.loading_extension_ms);
  }
  return out;
}

}  // namespace

int main() {
  bench::banner("Ablation", "loading-time stealing (regulator)");

  TablePrinter table({"variant", "throughput", "over-95% ticks",
                      "QoS violations (s)", "loading stolen (s)"});
  std::vector<std::vector<std::string>> csv;
  csv.push_back(
      {"variant", "throughput", "over_frac", "qos_s", "stolen_s"});
  const std::vector<std::pair<std::string, DurationMs>> variants = {
      {"stealing off", 0},
      {"bounded 30s (paper-like)", 30000},
      {"unbounded", 10LL * 60 * 1000}};
  const std::vector<std::uint64_t> seeds = {888, 889, 890, 891};
  for (const auto& [name, steal] : variants) {
    Outcome sum;
    for (const auto seed : seeds) {
      const auto out = run_variant(steal, seed);
      sum.throughput += out.throughput;
      sum.over_limit_frac += out.over_limit_frac;
      sum.qos_violation_s += out.qos_violation_s;
      sum.loading_extension_s += out.loading_extension_s;
    }
    const double n = static_cast<double>(seeds.size());
    table.add_row({name, TablePrinter::fmt(sum.throughput / n, 0),
                   TablePrinter::fmt_pct(100 * sum.over_limit_frac / n, 1),
                   TablePrinter::fmt(sum.qos_violation_s / n, 0),
                   TablePrinter::fmt(sum.loading_extension_s / n, 0)});
    csv.push_back({name, TablePrinter::fmt(sum.throughput / n, 1),
                   TablePrinter::fmt(sum.over_limit_frac / n, 4),
                   TablePrinter::fmt(sum.qos_violation_s / n, 1),
                   TablePrinter::fmt(sum.loading_extension_s / n, 1)});
  }
  table.print(std::cout);
  bench::write_csv("ablation_stealing", csv);
  return 0;
}
