// bench_trace_replay — traffic-subsystem throughput at fleet scale.
//
// Pushes one million session arrivals (override with --arrivals N; CI
// uses a smaller count) through every stage of the trace pipeline and
// reports each stage's arrival rate:
//
//   generate — diurnal workload generator (Lewis–Shedler thinning);
//   write    — serialize to the versioned text format;
//   read     — parse + validate back (asserts exact round trip);
//   bind     — resolve game names / scripts / regions against the suite;
//   serve    — route every arrival across 8 shards (least-loaded) and
//              retire it after its expected session length — the
//              coordinator-side cost of serving the stream, with the
//              per-shard simulations factored out (bench_fleet_scale
//              prices those).
//
// The "serve N session-arrivals" row is the headline: it bounds how fast
// any fleet run can consume a trace, independent of shard count. A full
// end-to-end replay determinism check lives in tests/traffic; this bench
// is about rates, not correctness.
#include <cassert>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <queue>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "fleet/router.h"
#include "traffic/generator.h"
#include "traffic/source.h"
#include "traffic/trace.h"

using namespace cocg;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

constexpr int kShards = 8;
constexpr std::size_t kGpuViewsPerShard = 4;

/// Route + retire the whole stream: a min-heap of session end times
/// releases shard load as simulated time advances past each arrival.
std::size_t serve_stream(const std::vector<traffic::Arrival>& arrivals,
                         fleet::Router& router,
                         std::vector<fleet::ShardLoad>& loads) {
  using End = std::pair<TimeMs, int>;  // session end, shard
  std::priority_queue<End, std::vector<End>, std::greater<End>> active;
  std::size_t served = 0;
  for (const auto& a : arrivals) {
    while (!active.empty() && active.top().first <= a.at) {
      auto& l = loads[static_cast<std::size_t>(active.top().second)];
      --l.running;
      l.forward_cost = static_cast<double>(l.running + l.queued) /
                       static_cast<double>(l.gpu_views);
      active.pop();
    }
    const int shard = router.route(loads, a.region);
    auto& l = loads[static_cast<std::size_t>(shard)];
    --l.queued;  // route() queued it; serving admits it immediately
    ++l.running;
    active.emplace(a.at + std::max<DurationMs>(1, a.expected_session_ms),
                   shard);
    ++served;
  }
  return served;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t target = 1'000'000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--arrivals") == 0 && i + 1 < argc) {
      target = static_cast<std::size_t>(
          std::max(1LL, std::atoll(argv[++i])));
    } else {
      std::cerr << "usage: bench_trace_replay [--arrivals N]\n";
      return 2;
    }
  }

  bench::banner("trace_replay",
                "traffic pipeline throughput (generate/io/bind/serve)");
  std::cout << target << " session arrivals, diurnal recipe, "
            << kShards << "-shard serve\n\n";

  bench::BenchJson json("trace_replay");
  json.set("target_arrivals", static_cast<double>(target));
  json.set("shards", static_cast<double>(kShards));

  // --- generate --------------------------------------------------------
  traffic::GeneratorConfig cfg;
  cfg.pattern = traffic::Pattern::kDiurnal;
  cfg.duration_ms = 60 * 60 * 1000;
  // 5% headroom over the target, then trim: the Poisson draw's spread is
  // ~sqrt(N), far below 5% at any interesting N.
  cfg.arrivals_per_hour = static_cast<double>(target) * 1.05;
  cfg.seed = 7;
  for (const auto& g : bench::paper_suite_static()) cfg.games.push_back(&g);
  cfg.regions = {"eu", "us", "apac"};
  cfg.region_weights = {3.0, 4.0, 3.0};

  auto t0 = std::chrono::steady_clock::now();
  traffic::Trace trace = traffic::generate_trace(cfg);
  const double gen_s = seconds_since(t0);
  if (trace.events.size() > target) trace.events.resize(target);
  const auto n = trace.events.size();
  const auto dn = static_cast<double>(n);
  if (n < target) {
    std::cerr << "generator undershot: " << n << " < " << target << "\n";
    return 1;
  }

  // --- write / read round trip ----------------------------------------
  t0 = std::chrono::steady_clock::now();
  std::ostringstream encoded;
  traffic::write_trace(trace, encoded);
  const double write_s = seconds_since(t0);
  const std::string text = encoded.str();

  t0 = std::chrono::steady_clock::now();
  std::istringstream decoded(text);
  const traffic::Trace reread = traffic::read_trace(decoded);
  const double read_s = seconds_since(t0);
  if (!(reread == trace)) {
    std::cerr << "round trip mismatch\n";
    return 1;
  }

  // --- bind ------------------------------------------------------------
  std::vector<const game::GameSpec*> specs;
  for (const auto& g : bench::paper_suite_static()) specs.push_back(&g);
  traffic::RegionTable regions;
  t0 = std::chrono::steady_clock::now();
  const std::vector<traffic::Arrival> arrivals =
      traffic::bind_trace(reread, specs, regions);
  const double bind_s = seconds_since(t0);

  // --- serve -----------------------------------------------------------
  fleet::Router router(fleet::RouterPolicy::kLeastLoaded, 99);
  std::vector<fleet::ShardLoad> loads(kShards);
  for (int i = 0; i < kShards; ++i) {
    loads[static_cast<std::size_t>(i)].shard = i;
    loads[static_cast<std::size_t>(i)].servers = 2;
    loads[static_cast<std::size_t>(i)].gpu_views = kGpuViewsPerShard;
  }
  t0 = std::chrono::steady_clock::now();
  const std::size_t served = serve_stream(arrivals, router, loads);
  const double serve_s = seconds_since(t0);
  if (served != n) {
    std::cerr << "served " << served << " != " << n << "\n";
    return 1;
  }

  // --- report ----------------------------------------------------------
  struct Stage {
    std::string label;
    double wall_s;
  };
  const std::vector<Stage> stages = {
      {"generate " + std::to_string(n) + " session-arrivals", gen_s},
      {"write " + std::to_string(n) + " session-arrivals", write_s},
      {"read " + std::to_string(n) + " session-arrivals", read_s},
      {"bind " + std::to_string(n) + " session-arrivals", bind_s},
      {"serve " + std::to_string(n) + " session-arrivals", serve_s},
  };
  TablePrinter table({"stage", "wall s", "arrivals/s"});
  for (const auto& s : stages) {
    table.add_row({s.label, TablePrinter::fmt(s.wall_s, 3),
                   TablePrinter::fmt(s.wall_s > 0 ? dn / s.wall_s : 0, 0)});
    json.row()
        .set("label", s.label)
        .set("arrivals", dn)
        .set("wall_s", s.wall_s)
        .set("arrivals_per_sec", s.wall_s > 0 ? dn / s.wall_s : 0.0);
  }
  table.print(std::cout);
  std::cout << "trace text size: " << text.size() / (1024 * 1024)
            << " MiB\n";
  json.set("trace_bytes", static_cast<double>(text.size()));
  json.write();
  return 0;
}
