// Ablation — best-effort harvesting headroom (§V-B1).
//
// "These flexible resources can be allocated to tasks with low
// latency-critical tasks such as machine learning and graph computing,
// thereby improving the resource utilization of the entire cloud
// platform." The headroom a best-effort co-runner can harvest is the
// capacity NOT allocated to games. VBP pins 90% of peak for every game's
// lifetime; CoCG allocates per stage — the difference is the harvestable
// pool.
#include <iostream>

#include "bench_util.h"
#include "core/baselines.h"
#include "core/cocg_scheduler.h"
#include "platform/cloud_platform.h"

using namespace cocg;

namespace {

struct Harvest {
  double gpu_s = 0.0;
  double cpu_s = 0.0;
  double throughput = 0.0;
};

// One Genshin session at a time on one GPU: every scheduler serves the
// same workload, so the headroom differences are purely allocation policy
// (comparing schedulers under their own admission would confuse idle
// capacity from refused games with true headroom).
Harvest run_variant(std::unique_ptr<platform::Scheduler> sched,
                    std::uint64_t seed) {
  platform::PlatformConfig pcfg;
  pcfg.seed = seed;
  platform::CloudPlatform cloud(pcfg, std::move(sched));
  hw::ServerSpec one_gpu;
  one_gpu.num_gpus = 1;
  cloud.add_server(one_gpu);
  cloud.enable_harvest_accounting(true);
  static const auto& suite = bench::paper_suite_static();
  cloud.add_source({&suite[2], 1, 8});  // Genshin Impact, solo
  cloud.run(60 * 60 * 1000);
  return Harvest{cloud.harvested_gpu_seconds(),
                 cloud.harvested_cpu_seconds(), cloud.throughput()};
}

}  // namespace

int main() {
  bench::banner("Ablation (§V-B1)", "best-effort harvestable headroom");

  auto fresh = [] {
    return core::train_suite(bench::paper_suite_static(),
                             bench::bench_offline_config(4545));
  };

  TablePrinter table({"scheduler", "harvestable GPU-seconds",
                      "harvestable CPU-seconds", "game throughput"});
  std::vector<std::vector<std::string>> csv;
  csv.push_back({"scheduler", "gpu_s", "cpu_s", "throughput"});

  {
    core::VbpConfig peak_cfg;
    peak_cfg.reserve_fraction = 1.0;
    const auto peak = run_variant(
        std::make_unique<core::VbpScheduler>(fresh(), peak_cfg), 4500);
    const auto vbp =
        run_variant(std::make_unique<core::VbpScheduler>(fresh()), 4500);
    const auto gaugur =
        run_variant(std::make_unique<core::GaugurScheduler>(fresh()), 4500);
    const auto cocg =
        run_variant(std::make_unique<core::CocgScheduler>(fresh()), 4500);
    for (const auto& [name, h] :
         std::vector<std::pair<std::string, Harvest>>{
             {"peak reservation (paper's comparator)", peak},
             {"VBP (0.9 peak)", vbp},
             {"GAugur (fixed limit)", gaugur},
             {"CoCG (per stage)", cocg}}) {
      table.add_row({name, TablePrinter::fmt(h.gpu_s, 0),
                     TablePrinter::fmt(h.cpu_s, 0),
                     TablePrinter::fmt(h.throughput, 0)});
      csv.push_back({name, TablePrinter::fmt(h.gpu_s, 1),
                     TablePrinter::fmt(h.cpu_s, 1),
                     TablePrinter::fmt(h.throughput, 1)});
    }
  }
  table.print(std::cout);
  bench::write_csv("ablation_harvest", csv);
  std::cout << "\nExpected: for the SAME served workload, CoCG's"
               " per-stage allocation leaves the most harvestable GPU"
               " headroom — the §V-B1 'flexible resources' that can host"
               " ML/graph best-effort work — with throughput unchanged.\n";
  return 0;
}
