#include "hw/batch_kernels.h"

// This TU is compiled with vectorization forced on (see src/hw/CMakeLists:
// -O3 -fno-trapping-math for this file only). -fno-trapping-math lets GCC
// if-convert the masked satisfaction division; it does not change any
// computed value, it only permits speculating FP ops whose exception
// flags nobody reads.

#if defined(__GNUC__) && !defined(__clang__)
#define COCG_NO_VECTORIZE __attribute__((optimize("no-tree-vectorize")))
#else
#define COCG_NO_VECTORIZE
#endif

namespace cocg::hw::batch {

void min_into(double* dst, const double* a, const double* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = b[i] < a[i] ? b[i] : a[i];
  }
}

void scale_into(double* dst, const double* src, double s, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = src[i] * s;
  }
}

void mul_into(double* dst, const double* a, const double* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = a[i] * b[i];
  }
}

void satisfaction_init(double* sat, double* any, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    sat[i] = 1.0;
    any[i] = 0.0;
  }
}

void satisfaction_apply_dim(double* sat, double* any, const double* demand,
                            const double* supplied, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    // Full-width division against a safe denominator so the loop
    // if-converts; demanded lanes divide by the real demand, undemanded
    // lanes' quotient is discarded by the select. Bit-identical to the
    // branchy scalar form for every kept lane. The predicate is repeated
    // inline on purpose: hoisting it into a bool defeats GCC's
    // if-conversion ("control flow in loop") and the loop stays scalar.
    const double denom = demand[i] > 0.0 ? demand[i] : 1.0;
    const double r = supplied[i] / denom;
    const double folded = r < sat[i] ? r : sat[i];
    sat[i] = demand[i] > 0.0 ? folded : sat[i];
    any[i] = demand[i] > 0.0 ? 1.0 : any[i];
  }
}

void satisfaction_finalize(double* sat, const double* any, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double clamped = sat[i] > 0.0 ? sat[i] : 0.0;
    sat[i] = any[i] != 0.0 ? clamped : 1.0;
  }
}

void satisfaction_into(double* sat, const double* d0, const double* s0,
                       const double* d1, const double* s1, const double* d2,
                       const double* s2, const double* d3, const double* s3,
                       std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    // Same select-based form as satisfaction_apply_dim, dimension by
    // dimension in fixed order, with the fold state in registers. Each
    // step repeats the demand predicate inline (hoisting it defeats
    // if-conversion, exactly as in apply_dim).
    double s = 1.0;
    double anyv = 0.0;
    double denom = d0[i] > 0.0 ? d0[i] : 1.0;
    double r = s0[i] / denom;
    double folded = r < s ? r : s;
    s = d0[i] > 0.0 ? folded : s;
    anyv = d0[i] > 0.0 ? 1.0 : anyv;
    denom = d1[i] > 0.0 ? d1[i] : 1.0;
    r = s1[i] / denom;
    folded = r < s ? r : s;
    s = d1[i] > 0.0 ? folded : s;
    anyv = d1[i] > 0.0 ? 1.0 : anyv;
    denom = d2[i] > 0.0 ? d2[i] : 1.0;
    r = s2[i] / denom;
    folded = r < s ? r : s;
    s = d2[i] > 0.0 ? folded : s;
    anyv = d2[i] > 0.0 ? 1.0 : anyv;
    denom = d3[i] > 0.0 ? d3[i] : 1.0;
    r = s3[i] / denom;
    folded = r < s ? r : s;
    s = d3[i] > 0.0 ? folded : s;
    anyv = d3[i] > 0.0 ? 1.0 : anyv;
    const double clamped = s > 0.0 ? s : 0.0;
    sat[i] = anyv != 0.0 ? clamped : 1.0;
  }
}

double sum_ordered(const double* a, std::size_t n) {
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) total += a[i];
  return total;
}

COCG_NO_VECTORIZE
void min_into_scalar(double* dst, const double* a, const double* b,
                     std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = b[i] < a[i] ? b[i] : a[i];
  }
}

COCG_NO_VECTORIZE
void scale_into_scalar(double* dst, const double* src, double s,
                       std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = src[i] * s;
  }
}

COCG_NO_VECTORIZE
void mul_into_scalar(double* dst, const double* a, const double* b,
                     std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = a[i] * b[i];
  }
}

COCG_NO_VECTORIZE
void satisfaction_apply_dim_scalar(double* sat, double* any,
                                   const double* demand,
                                   const double* supplied, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (demand[i] > 0.0) {
      const double r = supplied[i] / demand[i];
      if (r < sat[i]) sat[i] = r;
      any[i] = 1.0;
    }
  }
}

COCG_NO_VECTORIZE
void satisfaction_into_scalar(double* sat, const double* d0, const double* s0,
                              const double* d1, const double* s1,
                              const double* d2, const double* s2,
                              const double* d3, const double* s3,
                              std::size_t n) {
  // Branchy per-lane form: skips the divide on undemanded dims, like
  // ResourceVector::satisfaction_ratio does.
  const double* dims[4][2] = {{d0, s0}, {d1, s1}, {d2, s2}, {d3, s3}};
  for (std::size_t i = 0; i < n; ++i) {
    double s = 1.0;
    bool anyv = false;
    for (const auto& ds : dims) {
      if (ds[0][i] > 0.0) {
        const double r = ds[1][i] / ds[0][i];
        if (r < s) s = r;
        anyv = true;
      }
    }
    sat[i] = anyv ? (s > 0.0 ? s : 0.0) : 1.0;
  }
}

}  // namespace cocg::hw::batch
