#include "hw/contention.h"

#include <algorithm>

#include "common/check.h"
#include "hw/server.h"

namespace cocg::hw {

std::vector<SessionSupply> ContentionModel::resolve(
    const ResourceVector& capacity, const std::vector<SessionDraw>& draws) {
  for (std::size_t i = 0; i < kNumDims; ++i) {
    COCG_EXPECTS_MSG(capacity.at(i) > 0.0, "capacity must be positive");
  }

  std::vector<SessionSupply> out;
  out.reserve(draws.size());

  // Desired draw per session and per-dimension totals.
  std::vector<ResourceVector> desired(draws.size());
  ResourceVector total;
  for (std::size_t s = 0; s < draws.size(); ++s) {
    COCG_EXPECTS(draws[s].demand.non_negative());
    COCG_EXPECTS(draws[s].allocation.non_negative());
    desired[s] = ResourceVector::min(draws[s].demand, draws[s].allocation);
    total += desired[s];
  }

  // Per-dimension scale factor: 1 when the pool is not saturated, else
  // capacity/total so the pool divides proportionally.
  ResourceVector scale{1.0, 1.0, 1.0, 1.0};
  for (std::size_t i = 0; i < kNumDims; ++i) {
    if (total.at(i) > capacity.at(i)) {
      scale.at(i) = capacity.at(i) / total.at(i);
    }
  }

  for (std::size_t s = 0; s < draws.size(); ++s) {
    SessionSupply sup;
    sup.sid = draws[s].sid;
    for (std::size_t i = 0; i < kNumDims; ++i) {
      sup.supplied.at(i) = desired[s].at(i) * scale.at(i);
    }
    sup.satisfaction = draws[s].demand.satisfaction_ratio(sup.supplied);
    out.push_back(sup);
  }
  return out;
}

const std::vector<SessionSupply>& resolve_server(
    const ServerSpec& spec, const std::vector<PinnedDraw>& draws,
    ServerResolveScratch& scratch) {
  obs::StageScope profile_scope(scratch.prof);
  // Desired draw per session; per-pool totals. Per-device totals accumulate
  // in draw order within each bucket, matching the original map-based
  // implementation bit-for-bit.
  scratch.desired.clear();
  scratch.desired.resize(draws.size());
  auto& desired = scratch.desired;
  double cpu_total = 0.0, ram_total = 0.0;
  const std::size_t ngpus = static_cast<std::size_t>(spec.num_gpus);
  scratch.gpu_total.assign(ngpus, 0.0);
  scratch.vram_total.assign(ngpus, 0.0);
  for (std::size_t s = 0; s < draws.size(); ++s) {
    const auto& d = draws[s];
    COCG_EXPECTS(d.gpu_index >= 0 && d.gpu_index < spec.num_gpus);
    COCG_EXPECTS(d.draw.demand.non_negative());
    COCG_EXPECTS(d.draw.allocation.non_negative());
    desired[s] = ResourceVector::min(d.draw.demand, d.draw.allocation);
    cpu_total += desired[s][Dim::kCpuPct];
    ram_total += desired[s][Dim::kRamMb];
    scratch.gpu_total[d.gpu_index] += desired[s][Dim::kGpuPct];
    scratch.vram_total[d.gpu_index] += desired[s][Dim::kGpuMemMb];
  }

  const double cpu_scale =
      cpu_total > spec.cpu_capacity_pct ? spec.cpu_capacity_pct / cpu_total
                                        : 1.0;
  const double ram_scale =
      ram_total > spec.ram_mb ? spec.ram_mb / ram_total : 1.0;
  auto device_scale = [](const std::vector<double>& totals, int g,
                         double cap) {
    const double total = totals[static_cast<std::size_t>(g)];
    if (total <= cap) return 1.0;
    return cap / total;
  };

  scratch.out.clear();
  scratch.out.reserve(draws.size());
  for (std::size_t s = 0; s < draws.size(); ++s) {
    const auto& d = draws[s];
    SessionSupply sup;
    sup.sid = d.draw.sid;
    sup.supplied[Dim::kCpuPct] = desired[s][Dim::kCpuPct] * cpu_scale;
    sup.supplied[Dim::kRamMb] = desired[s][Dim::kRamMb] * ram_scale;
    sup.supplied[Dim::kGpuPct] =
        desired[s][Dim::kGpuPct] *
        device_scale(scratch.gpu_total, d.gpu_index, spec.gpu_capacity_pct);
    sup.supplied[Dim::kGpuMemMb] =
        desired[s][Dim::kGpuMemMb] *
        device_scale(scratch.vram_total, d.gpu_index, spec.gpu_mem_mb);
    sup.satisfaction = d.draw.demand.satisfaction_ratio(sup.supplied);
    scratch.out.push_back(sup);
  }
  return scratch.out;
}

std::vector<SessionSupply> resolve_server(const ServerSpec& spec,
                                          const std::vector<PinnedDraw>& draws) {
  ServerResolveScratch scratch;
  return resolve_server(spec, draws, scratch);  // copies scratch.out
}

}  // namespace cocg::hw
