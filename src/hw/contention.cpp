#include "hw/contention.h"

#include <algorithm>

#include "common/check.h"
#include "hw/batch_kernels.h"
#include "hw/server.h"

namespace cocg::hw {

std::vector<SessionSupply> ContentionModel::resolve(
    const ResourceVector& capacity, const std::vector<SessionDraw>& draws) {
  for (std::size_t i = 0; i < kNumDims; ++i) {
    COCG_EXPECTS_MSG(capacity.at(i) > 0.0, "capacity must be positive");
  }

  std::vector<SessionSupply> out;
  out.reserve(draws.size());

  // Desired draw per session and per-dimension totals.
  std::vector<ResourceVector> desired(draws.size());
  ResourceVector total;
  for (std::size_t s = 0; s < draws.size(); ++s) {
    COCG_EXPECTS(draws[s].demand.non_negative());
    COCG_EXPECTS(draws[s].allocation.non_negative());
    desired[s] = ResourceVector::min(draws[s].demand, draws[s].allocation);
    total += desired[s];
  }

  // Per-dimension scale factor: 1 when the pool is not saturated, else
  // capacity/total so the pool divides proportionally.
  ResourceVector scale{1.0, 1.0, 1.0, 1.0};
  for (std::size_t i = 0; i < kNumDims; ++i) {
    if (total.at(i) > capacity.at(i)) {
      scale.at(i) = capacity.at(i) / total.at(i);
    }
  }

  for (std::size_t s = 0; s < draws.size(); ++s) {
    SessionSupply sup;
    sup.sid = draws[s].sid;
    for (std::size_t i = 0; i < kNumDims; ++i) {
      sup.supplied.at(i) = desired[s].at(i) * scale.at(i);
    }
    sup.satisfaction = draws[s].demand.satisfaction_ratio(sup.supplied);
    out.push_back(sup);
  }
  return out;
}

void ResolveLanes::resize(std::size_t n) {
  for (std::size_t d = 0; d < kNumDims; ++d) {
    demand[d].resize(n);
    alloc[d].resize(n);
    desired[d].resize(n);
    supplied[d].resize(n);
  }
  gpu_scale.resize(n);
  vram_scale.resize(n);
  satisfaction.resize(n);
}

const std::vector<SessionSupply>& resolve_server(
    const ServerSpec& spec, const std::vector<PinnedDraw>& draws,
    ServerResolveScratch& scratch) {
  obs::StageScope profile_scope(scratch.prof);
  const std::size_t n = draws.size();
  ResolveLanes& lanes = scratch.lanes;
  lanes.resize(n);

  // Transpose AoS draws into per-dimension lanes (and validate, exactly
  // like the reference path).
  const std::size_t ngpus = static_cast<std::size_t>(spec.num_gpus);
  for (std::size_t s = 0; s < n; ++s) {
    const auto& d = draws[s];
    COCG_EXPECTS(d.gpu_index >= 0 && d.gpu_index < spec.num_gpus);
    COCG_EXPECTS(d.draw.demand.non_negative());
    COCG_EXPECTS(d.draw.allocation.non_negative());
    for (std::size_t k = 0; k < kNumDims; ++k) {
      lanes.demand[k][s] = d.draw.demand.at(k);
      lanes.alloc[k][s] = d.draw.allocation.at(k);
    }
  }

  // Desired draw per dimension: elementwise min — the vector kernel.
  for (std::size_t k = 0; k < kNumDims; ++k) {
    batch::min_into(lanes.desired[k].data(), lanes.demand[k].data(),
                    lanes.alloc[k].data(), n);
  }

  // Pool totals. Whole-server sums stay strictly ordered (scalar) and the
  // per-device sums bucket in draw order — bit-identical to the reference
  // accumulation.
  constexpr auto kCpu = static_cast<std::size_t>(Dim::kCpuPct);
  constexpr auto kGpu = static_cast<std::size_t>(Dim::kGpuPct);
  constexpr auto kVram = static_cast<std::size_t>(Dim::kGpuMemMb);
  constexpr auto kRam = static_cast<std::size_t>(Dim::kRamMb);
  const double cpu_total = batch::sum_ordered(lanes.desired[kCpu].data(), n);
  const double ram_total = batch::sum_ordered(lanes.desired[kRam].data(), n);
  scratch.gpu_total.assign(ngpus, 0.0);
  scratch.vram_total.assign(ngpus, 0.0);
  for (std::size_t s = 0; s < n; ++s) {
    const auto g = static_cast<std::size_t>(draws[s].gpu_index);
    scratch.gpu_total[g] += lanes.desired[kGpu][s];
    scratch.vram_total[g] += lanes.desired[kVram][s];
  }

  const double cpu_scale =
      cpu_total > spec.cpu_capacity_pct ? spec.cpu_capacity_pct / cpu_total
                                        : 1.0;
  const double ram_scale =
      ram_total > spec.ram_mb ? spec.ram_mb / ram_total : 1.0;
  // Per-device scales computed once per device (the divides are the
  // expensive part — one per GPU, not one per draw), then gathered into
  // per-draw lanes so the GPU-dim supply multiply is a straight
  // elementwise kernel. The totals buffers are rewritten in place with
  // the scales; they are not read again this call.
  for (std::size_t g = 0; g < ngpus; ++g) {
    const double gt = scratch.gpu_total[g];
    const double vt = scratch.vram_total[g];
    scratch.gpu_total[g] =
        gt > spec.gpu_capacity_pct ? spec.gpu_capacity_pct / gt : 1.0;
    scratch.vram_total[g] = vt > spec.gpu_mem_mb ? spec.gpu_mem_mb / vt : 1.0;
  }
  for (std::size_t s = 0; s < n; ++s) {
    const auto g = static_cast<std::size_t>(draws[s].gpu_index);
    lanes.gpu_scale[s] = scratch.gpu_total[g];
    lanes.vram_scale[s] = scratch.vram_total[g];
  }

  batch::scale_into(lanes.supplied[kCpu].data(), lanes.desired[kCpu].data(),
                    cpu_scale, n);
  batch::scale_into(lanes.supplied[kRam].data(), lanes.desired[kRam].data(),
                    ram_scale, n);
  batch::mul_into(lanes.supplied[kGpu].data(), lanes.desired[kGpu].data(),
                  lanes.gpu_scale.data(), n);
  batch::mul_into(lanes.supplied[kVram].data(), lanes.desired[kVram].data(),
                  lanes.vram_scale.data(), n);

  // Satisfaction per lane over the ORIGINAL demand (not the capped
  // desired), all four dimensions fused into one pass — bit-identical
  // to the composable init/apply_dim/finalize pipeline (min is exact,
  // the fold order is fixed) but without five extra trips through the
  // lane arrays.
  static_assert(kNumDims == 4, "satisfaction_into folds exactly four dims");
  batch::satisfaction_into(
      lanes.satisfaction.data(), lanes.demand[0].data(),
      lanes.supplied[0].data(), lanes.demand[1].data(),
      lanes.supplied[1].data(), lanes.demand[2].data(),
      lanes.supplied[2].data(), lanes.demand[3].data(),
      lanes.supplied[3].data(), n);

  // Transpose back to the AoS result the callers consume.
  scratch.out.clear();
  scratch.out.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    SessionSupply sup;
    sup.sid = draws[s].draw.sid;
    for (std::size_t k = 0; k < kNumDims; ++k) {
      sup.supplied.at(k) = lanes.supplied[k][s];
    }
    sup.satisfaction = lanes.satisfaction[s];
    scratch.out.push_back(sup);
  }
  return scratch.out;
}

const std::vector<SessionSupply>& resolve_server_reference(
    const ServerSpec& spec, const std::vector<PinnedDraw>& draws,
    ServerResolveScratch& scratch) {
  obs::StageScope profile_scope(scratch.prof);
  // Desired draw per session; per-pool totals. Per-device totals accumulate
  // in draw order within each bucket, matching the original map-based
  // implementation bit-for-bit.
  scratch.desired.clear();
  scratch.desired.resize(draws.size());
  auto& desired = scratch.desired;
  double cpu_total = 0.0, ram_total = 0.0;
  const std::size_t ngpus = static_cast<std::size_t>(spec.num_gpus);
  scratch.gpu_total.assign(ngpus, 0.0);
  scratch.vram_total.assign(ngpus, 0.0);
  for (std::size_t s = 0; s < draws.size(); ++s) {
    const auto& d = draws[s];
    COCG_EXPECTS(d.gpu_index >= 0 && d.gpu_index < spec.num_gpus);
    COCG_EXPECTS(d.draw.demand.non_negative());
    COCG_EXPECTS(d.draw.allocation.non_negative());
    desired[s] = ResourceVector::min(d.draw.demand, d.draw.allocation);
    cpu_total += desired[s][Dim::kCpuPct];
    ram_total += desired[s][Dim::kRamMb];
    scratch.gpu_total[d.gpu_index] += desired[s][Dim::kGpuPct];
    scratch.vram_total[d.gpu_index] += desired[s][Dim::kGpuMemMb];
  }

  const double cpu_scale =
      cpu_total > spec.cpu_capacity_pct ? spec.cpu_capacity_pct / cpu_total
                                        : 1.0;
  const double ram_scale =
      ram_total > spec.ram_mb ? spec.ram_mb / ram_total : 1.0;
  auto device_scale = [](const std::vector<double>& totals, int g,
                         double cap) {
    const double total = totals[static_cast<std::size_t>(g)];
    if (total <= cap) return 1.0;
    return cap / total;
  };

  scratch.out.clear();
  scratch.out.reserve(draws.size());
  for (std::size_t s = 0; s < draws.size(); ++s) {
    const auto& d = draws[s];
    SessionSupply sup;
    sup.sid = d.draw.sid;
    sup.supplied[Dim::kCpuPct] = desired[s][Dim::kCpuPct] * cpu_scale;
    sup.supplied[Dim::kRamMb] = desired[s][Dim::kRamMb] * ram_scale;
    sup.supplied[Dim::kGpuPct] =
        desired[s][Dim::kGpuPct] *
        device_scale(scratch.gpu_total, d.gpu_index, spec.gpu_capacity_pct);
    sup.supplied[Dim::kGpuMemMb] =
        desired[s][Dim::kGpuMemMb] *
        device_scale(scratch.vram_total, d.gpu_index, spec.gpu_mem_mb);
    sup.satisfaction = d.draw.demand.satisfaction_ratio(sup.supplied);
    scratch.out.push_back(sup);
  }
  return scratch.out;
}

std::vector<SessionSupply> resolve_server(const ServerSpec& spec,
                                          const std::vector<PinnedDraw>& draws) {
  ServerResolveScratch scratch;
  return resolve_server(spec, draws, scratch);  // copies scratch.out
}

}  // namespace cocg::hw
