// Heterogeneous game-server model.
//
// Mirrors the paper's testbed (§V-A): a multi-core CPU, system RAM, and one
// or more discrete GPUs. CPU% and RAM are server-wide pools; GPU utilization
// and GPU memory are per-device, because a cloud-game session is pinned to a
// single GPU ("each game is deployed on a single GPU device", §IV-C).
//
// Allocations are cgroup-style caps: a session never receives more than its
// allocation in any dimension; the ContentionModel resolves what it actually
// receives when allocations oversubscribe the hardware.
//
// Storage: hosted sessions live in a dense vector sorted by session id.
// Placement changes (place/remove/reallocate) are control-plane rare;
// the simulation hot loop reads `hosted()` every tick, so reads are
// contiguous and allocation-free while mutations pay an O(n) insert/erase
// on a vector of at most a few dozen entries.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/resources.h"
#include "common/types.h"

namespace cocg::hw {

/// Static description of a server SKU.
struct ServerSpec {
  std::string name = "i7-7700-2x2080";
  double cpu_capacity_pct = 100.0;  ///< whole-machine CPU, 100% = all cores
  double ram_mb = 8192.0;
  int num_gpus = 2;                  ///< paper testbed: 2× GTX 2080
  double gpu_capacity_pct = 100.0;   ///< per device
  double gpu_mem_mb = 8192.0;        ///< per device
  /// Relative compute capability vs the paper's baseline testbed (1.0 =
  /// i7-7700 / GTX 2080). A game drawing u% on the baseline draws
  /// u × (baseline_perf / this_perf) % here — the §IV-D migration rule:
  /// "the only thing that will change is the amount of resources
  /// consumed".
  double cpu_perf = 1.0;
  double gpu_perf = 1.0;

  /// Capacity vector as seen by a session pinned to one GPU.
  ResourceVector per_gpu_capacity() const {
    return ResourceVector{cpu_capacity_pct, gpu_capacity_pct, gpu_mem_mb,
                          ram_mb};
  }
};

/// Preset SKUs for heterogeneous-platform experiments.
ServerSpec baseline_sku();  ///< the paper's i7-7700 + 2× GTX 2080
ServerSpec budget_sku();    ///< older half: GTX-1080-class, slower CPU
ServerSpec flagship_sku();  ///< RTX-3090-class, faster CPU, more VRAM

/// One session's standing on a server.
struct SessionPlacement {
  int gpu_index = 0;
  ResourceVector allocation;  ///< cgroup-style cap
};

/// A hosted session as stored in the server's dense table.
struct HostedSession {
  SessionId sid;
  SessionPlacement placement;
};

/// Mutable server state: which sessions it hosts and their allocations.
class Server {
 public:
  Server(ServerId id, ServerSpec spec);

  ServerId id() const { return id_; }
  const ServerSpec& spec() const { return spec_; }

  /// Try to place a session with the given allocation on the given GPU.
  /// Fails (returns false, no change) if any dimension would exceed
  /// capacity. gpu_index must be in [0, num_gpus).
  bool place(SessionId sid, int gpu_index, const ResourceVector& allocation);

  /// Pick the GPU with the most free utilization headroom and place there.
  /// Returns the chosen GPU index, or nullopt if no GPU fits.
  std::optional<int> place_best_gpu(SessionId sid,
                                    const ResourceVector& allocation);

  /// Change a hosted session's allocation cap. The new cap may exceed
  /// remaining capacity only if `allow_oversubscribe` — CoCG's regulator
  /// intentionally never does, baselines may. Returns false if the session
  /// is not hosted or (when !allow_oversubscribe) the cap does not fit.
  bool reallocate(SessionId sid, const ResourceVector& allocation,
                  bool allow_oversubscribe = false);

  /// Remove a session. Returns false if not hosted.
  bool remove(SessionId sid);

  bool hosts(SessionId sid) const;
  const SessionPlacement& placement(SessionId sid) const;  ///< requires hosts()
  std::size_t session_count() const { return sessions_.size(); }

  /// Hosted sessions in ascending session-id order — the hot-loop view.
  /// Contiguous, allocation-free; invalidated by place/remove.
  const std::vector<HostedSession>& hosted() const { return sessions_; }

  /// Demand epoch: a monotone counter that advances whenever the resolve
  /// inputs this server presents to the contention model may have changed —
  /// every successful place/remove/reallocate bumps it internally, and the
  /// platform bumps it explicitly when a hosted session's stated demand
  /// changes (stage transition, jitter redraw, spike, regulator hold).
  /// Equal epochs ⇒ identical hosted set, allocations and demands, so a
  /// cached resolve_server result is still bit-exact (docs/performance.md,
  /// "Quiescence-aware tick engine").
  std::uint64_t demand_epoch() const { return demand_epoch_; }
  void bump_demand_epoch() { ++demand_epoch_; }

  std::vector<SessionId> session_ids() const;  ///< sorted for determinism
  std::vector<SessionId> sessions_on_gpu(int gpu_index) const;  ///< sorted

  /// Sum of allocations charged against one GPU's capacity view
  /// (CPU/RAM server-wide + that device's GPU dims).
  ResourceVector allocated_on_gpu(int gpu_index) const;

  /// Remaining capacity in the per-GPU view for the given device.
  ResourceVector free_on_gpu(int gpu_index) const;

  /// Fraction of the binding dimension in use on the given device's view,
  /// in [0, 1+]: max over dims of allocated/capacity.
  double utilization_on_gpu(int gpu_index) const;

 private:
  bool fits_after(SessionId sid, int gpu_index,
                  const ResourceVector& allocation) const;
  /// Iterator to the session's slot, or end() if not hosted.
  std::vector<HostedSession>::const_iterator find(SessionId sid) const;
  std::vector<HostedSession>::iterator find(SessionId sid);

  ServerId id_;
  ServerSpec spec_;
  std::vector<HostedSession> sessions_;  ///< sorted by sid
  std::uint64_t demand_epoch_ = 0;
};

}  // namespace cocg::hw
