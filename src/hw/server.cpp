#include "hw/server.h"

#include <algorithm>

#include "common/check.h"

namespace cocg::hw {

namespace {

/// Sorted-insert position for `sid` in a sid-ascending table.
inline bool sid_less(const HostedSession& h, SessionId sid) {
  return h.sid < sid;
}

}  // namespace

Server::Server(ServerId id, ServerSpec spec) : id_(id), spec_(std::move(spec)) {
  COCG_EXPECTS(spec_.num_gpus > 0);
  COCG_EXPECTS(spec_.cpu_capacity_pct > 0.0);
  COCG_EXPECTS(spec_.gpu_capacity_pct > 0.0);
  COCG_EXPECTS(spec_.gpu_mem_mb > 0.0);
  COCG_EXPECTS(spec_.ram_mb > 0.0);
}

std::vector<HostedSession>::const_iterator Server::find(SessionId sid) const {
  auto it = std::lower_bound(sessions_.begin(), sessions_.end(), sid, sid_less);
  if (it != sessions_.end() && it->sid == sid) return it;
  return sessions_.end();
}

std::vector<HostedSession>::iterator Server::find(SessionId sid) {
  auto it = std::lower_bound(sessions_.begin(), sessions_.end(), sid, sid_less);
  if (it != sessions_.end() && it->sid == sid) return it;
  return sessions_.end();
}

ResourceVector Server::allocated_on_gpu(int gpu_index) const {
  COCG_EXPECTS(gpu_index >= 0 && gpu_index < spec_.num_gpus);
  ResourceVector total;
  for (const auto& h : sessions_) {
    // CPU and RAM are server-wide pools: every session counts.
    total[Dim::kCpuPct] += h.placement.allocation[Dim::kCpuPct];
    total[Dim::kRamMb] += h.placement.allocation[Dim::kRamMb];
    if (h.placement.gpu_index == gpu_index) {
      total[Dim::kGpuPct] += h.placement.allocation[Dim::kGpuPct];
      total[Dim::kGpuMemMb] += h.placement.allocation[Dim::kGpuMemMb];
    }
  }
  return total;
}

ResourceVector Server::free_on_gpu(int gpu_index) const {
  const ResourceVector cap = spec_.per_gpu_capacity();
  ResourceVector used = allocated_on_gpu(gpu_index);
  ResourceVector free = cap - used;
  // Oversubscribed dims report 0 free rather than negative.
  return free.clamped_to(cap);
}

double Server::utilization_on_gpu(int gpu_index) const {
  const ResourceVector cap = spec_.per_gpu_capacity();
  const ResourceVector used = allocated_on_gpu(gpu_index);
  double u = 0.0;
  for (std::size_t i = 0; i < kNumDims; ++i) {
    u = std::max(u, used.at(i) / cap.at(i));
  }
  return u;
}

bool Server::fits_after(SessionId sid, int gpu_index,
                        const ResourceVector& allocation) const {
  const ResourceVector cap = spec_.per_gpu_capacity();
  ResourceVector used = allocated_on_gpu(gpu_index);
  // If the session is already hosted, subtract its current contribution to
  // this view before adding the new allocation.
  auto it = find(sid);
  if (it != sessions_.end()) {
    const auto& pl = it->placement;
    used[Dim::kCpuPct] -= pl.allocation[Dim::kCpuPct];
    used[Dim::kRamMb] -= pl.allocation[Dim::kRamMb];
    if (pl.gpu_index == gpu_index) {
      used[Dim::kGpuPct] -= pl.allocation[Dim::kGpuPct];
      used[Dim::kGpuMemMb] -= pl.allocation[Dim::kGpuMemMb];
    }
  }
  return (used + allocation).fits_within(cap);
}

bool Server::place(SessionId sid, int gpu_index,
                   const ResourceVector& allocation) {
  COCG_EXPECTS(gpu_index >= 0 && gpu_index < spec_.num_gpus);
  COCG_EXPECTS_MSG(allocation.non_negative(),
                   "allocation must be non-negative");
  COCG_EXPECTS_MSG(find(sid) == sessions_.cend(),
                   "session already placed; use reallocate()");
  if (!fits_after(sid, gpu_index, allocation)) return false;
  // Sids are admitted in increasing order, so this is usually a push_back.
  auto pos =
      std::lower_bound(sessions_.begin(), sessions_.end(), sid, sid_less);
  sessions_.insert(pos, HostedSession{sid, {gpu_index, allocation}});
  bump_demand_epoch();
  return true;
}

std::optional<int> Server::place_best_gpu(SessionId sid,
                                          const ResourceVector& allocation) {
  int best = -1;
  double best_util = 2.0;
  for (int g = 0; g < spec_.num_gpus; ++g) {
    if (!fits_after(sid, g, allocation)) continue;
    const double u = utilization_on_gpu(g);
    if (u < best_util) {
      best_util = u;
      best = g;
    }
  }
  if (best < 0) return std::nullopt;
  const bool ok = place(sid, best, allocation);
  COCG_ENSURES(ok);
  return best;
}

bool Server::reallocate(SessionId sid, const ResourceVector& allocation,
                        bool allow_oversubscribe) {
  COCG_EXPECTS(allocation.non_negative());
  auto it = find(sid);
  if (it == sessions_.end()) return false;
  if (!allow_oversubscribe &&
      !fits_after(sid, it->placement.gpu_index, allocation)) {
    return false;
  }
  it->placement.allocation = allocation;
  bump_demand_epoch();
  return true;
}

bool Server::remove(SessionId sid) {
  auto it = find(sid);
  if (it == sessions_.end()) return false;
  sessions_.erase(it);
  bump_demand_epoch();
  return true;
}

bool Server::hosts(SessionId sid) const { return find(sid) != sessions_.end(); }

const SessionPlacement& Server::placement(SessionId sid) const {
  auto it = find(sid);
  COCG_EXPECTS_MSG(it != sessions_.end(), "session not hosted here");
  return it->placement;
}

std::vector<SessionId> Server::session_ids() const {
  std::vector<SessionId> ids;
  ids.reserve(sessions_.size());
  for (const auto& h : sessions_) ids.push_back(h.sid);
  return ids;  // already sorted: the table is sid-ascending
}

std::vector<SessionId> Server::sessions_on_gpu(int gpu_index) const {
  COCG_EXPECTS(gpu_index >= 0 && gpu_index < spec_.num_gpus);
  std::vector<SessionId> ids;
  for (const auto& h : sessions_) {
    if (h.placement.gpu_index == gpu_index) ids.push_back(h.sid);
  }
  return ids;  // already sorted
}

ServerSpec baseline_sku() { return ServerSpec{}; }

ServerSpec budget_sku() {
  ServerSpec s;
  s.name = "i5-7400-2x1080";
  s.cpu_perf = 0.7;
  s.gpu_perf = 0.55;
  s.gpu_mem_mb = 8192.0;
  return s;
}

ServerSpec flagship_sku() {
  ServerSpec s;
  s.name = "i9-12900-2x3090";
  s.cpu_perf = 1.8;
  s.gpu_perf = 1.9;
  s.gpu_mem_mb = 24576.0;
  s.ram_mb = 16384.0;
  return s;
}

}  // namespace cocg::hw
