// Contention resolution: what each session actually receives.
//
// Allocations are caps, so a session's *desired* draw is
// min(demand, allocation) per dimension. When the sum of desired draws on a
// shared pool exceeds hardware capacity (possible when a baseline scheduler
// oversubscribes, or when demand spikes before the regulator reacts), the
// pool is divided proportionally to desired draw — the behaviour of CFS-like
// CPU shares and GPU time-slicing under saturation.
#pragma once

#include <vector>

#include "common/resources.h"
#include "common/types.h"
#include "obs/profiler.h"

namespace cocg::hw {

struct SessionDraw {
  SessionId sid;
  ResourceVector demand;      ///< what the game wants this instant
  ResourceVector allocation;  ///< its cgroup-style cap
};

struct SessionSupply {
  SessionId sid;
  ResourceVector supplied;  ///< what it actually receives
  /// min over demanded dims of supplied/demand, in [0, 1]. 1 == no squeeze.
  double satisfaction = 1.0;
};

class ContentionModel {
 public:
  /// Resolve one shared capacity view (a single GPU's view of the server:
  /// server-wide CPU/RAM + that device's GPU dims are all in `capacity`).
  ///
  /// Every element of `draws` must belong to the same capacity view.
  /// Deterministic: output order matches input order.
  static std::vector<SessionSupply> resolve(const ResourceVector& capacity,
                                            const std::vector<SessionDraw>& draws);
};

/// A draw tagged with the GPU device the session is pinned to.
struct PinnedDraw {
  SessionDraw draw;
  int gpu_index = 0;
};

struct ServerSpec;  // fwd decl (server.h)

/// Reusable buffers for resolve_server. Hot loops keep one per server so
/// steady-state resolution performs zero heap allocation: every vector is
/// cleared (capacity retained) and refilled on each call.
struct ServerResolveScratch {
  std::vector<ResourceVector> desired;  ///< per draw
  std::vector<double> gpu_total;        ///< per device, indexed by gpu
  std::vector<double> vram_total;       ///< per device, indexed by gpu
  std::vector<SessionSupply> out;       ///< result, order matches input
  /// Stage-profiler handle, bound to the obs domain active when the
  /// scratch is constructed (the owning platform's shard domain).
  obs::StageTimer prof =
      obs::stage_timer(obs::Stage::kContentionResolve);
};

/// Whole-server resolution: CPU% and RAM are divided across ALL sessions on
/// the server; GPU utilization and GPU memory are divided per device.
/// Output order matches input order.
std::vector<SessionSupply> resolve_server(const struct ServerSpec& spec,
                                          const std::vector<PinnedDraw>& draws);

/// Allocation-free variant: results land in (and are valid until the next
/// call with) `scratch.out`.
const std::vector<SessionSupply>& resolve_server(
    const struct ServerSpec& spec, const std::vector<PinnedDraw>& draws,
    ServerResolveScratch& scratch);

}  // namespace cocg::hw
