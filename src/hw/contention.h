// Contention resolution: what each session actually receives.
//
// Allocations are caps, so a session's *desired* draw is
// min(demand, allocation) per dimension. When the sum of desired draws on a
// shared pool exceeds hardware capacity (possible when a baseline scheduler
// oversubscribes, or when demand spikes before the regulator reacts), the
// pool is divided proportionally to desired draw — the behaviour of CFS-like
// CPU shares and GPU time-slicing under saturation.
#pragma once

#include <array>
#include <vector>

#include "common/resources.h"
#include "common/types.h"
#include "obs/profiler.h"

namespace cocg::hw {

struct SessionDraw {
  SessionId sid;
  ResourceVector demand;      ///< what the game wants this instant
  ResourceVector allocation;  ///< its cgroup-style cap
};

struct SessionSupply {
  SessionId sid;
  ResourceVector supplied;  ///< what it actually receives
  /// min over demanded dims of supplied/demand, in [0, 1]. 1 == no squeeze.
  double satisfaction = 1.0;
};

class ContentionModel {
 public:
  /// Resolve one shared capacity view (a single GPU's view of the server:
  /// server-wide CPU/RAM + that device's GPU dims are all in `capacity`).
  ///
  /// Every element of `draws` must belong to the same capacity view.
  /// Deterministic: output order matches input order.
  static std::vector<SessionSupply> resolve(const ResourceVector& capacity,
                                            const std::vector<SessionDraw>& draws);
};

/// A draw tagged with the GPU device the session is pinned to.
struct PinnedDraw {
  SessionDraw draw;
  int gpu_index = 0;
};

struct ServerSpec;  // fwd decl (server.h)

/// Per-dimension SoA lanes of one resolve batch: lane i of every array
/// belongs to draw i. resolve_server transposes the AoS draws in, runs
/// the batch kernels (hw/batch_kernels.h) over the lanes, and transposes
/// the supplies back out; hardware_tick reads `supplied` directly for the
/// utilization sums so the accumulation pass is SoA too.
struct ResolveLanes {
  std::array<std::vector<double>, kNumDims> demand;
  std::array<std::vector<double>, kNumDims> alloc;
  std::array<std::vector<double>, kNumDims> desired;
  std::array<std::vector<double>, kNumDims> supplied;
  std::vector<double> gpu_scale;   ///< per-draw gathered device scale
  std::vector<double> vram_scale;  ///< per-draw gathered device scale
  std::vector<double> satisfaction;

  void resize(std::size_t n);
};

/// Reusable buffers for resolve_server. Hot loops keep one per server so
/// steady-state resolution performs zero heap allocation: every vector is
/// cleared (capacity retained) and refilled on each call.
struct ServerResolveScratch {
  std::vector<ResourceVector> desired;  ///< per draw (reference path)
  std::vector<double> gpu_total;        ///< per device, indexed by gpu
  std::vector<double> vram_total;       ///< per device, indexed by gpu
  ResolveLanes lanes;                   ///< SoA lanes (batch path)
  std::vector<SessionSupply> out;       ///< result, order matches input
  /// Stage-profiler handle, bound to the obs domain active when the
  /// scratch is constructed (the owning platform's shard domain).
  obs::StageTimer prof =
      obs::stage_timer(obs::Stage::kContentionResolve);
};

/// Whole-server resolution: CPU% and RAM are divided across ALL sessions on
/// the server; GPU utilization and GPU memory are divided per device.
/// Output order matches input order.
std::vector<SessionSupply> resolve_server(const struct ServerSpec& spec,
                                          const std::vector<PinnedDraw>& draws);

/// Allocation-free variant: results land in (and are valid until the next
/// call with) `scratch.out`. Internally runs the SoA batch kernels over
/// `scratch.lanes`; outputs are bit-identical to resolve_server_reference
/// (tests/hw enforces it).
const std::vector<SessionSupply>& resolve_server(
    const struct ServerSpec& spec, const std::vector<PinnedDraw>& draws,
    ServerResolveScratch& scratch);

/// The pre-SoA scalar AoS implementation, kept verbatim as the
/// bit-identity oracle for the batch path and the bench_micro comparator.
const std::vector<SessionSupply>& resolve_server_reference(
    const struct ServerSpec& spec, const std::vector<PinnedDraw>& draws,
    ServerResolveScratch& scratch);

}  // namespace cocg::hw
