// SoA batch kernels for the tick pipeline's per-session resource math.
//
// The contention resolve and utilization accumulation used to walk AoS
// ResourceVectors one session at a time; these kernels run the same
// arithmetic as tight elementwise loops over contiguous per-dimension
// lane arrays (one double per session), which GCC auto-vectorizes — CI
// compiles this TU with -fopt-info-vec and fails if the loops stop
// vectorizing (tools/check_vectorize.sh).
//
// Bit-identity contract: every kernel performs exactly the scalar
// expression per lane (no reassociation, no FMA contraction beyond what
// the scalar build already does), so outputs are bit-identical to the
// *_scalar reference variants below and to the pre-SoA AoS code
// (tests/hw/test_batch_kernels.cpp enforces both). Reductions that feed
// results (sum_ordered) stay scalar on purpose: vectorizing a float sum
// reorders the additions, and the repo's determinism contract forbids
// that.
//
// The *_scalar variants are the portable scalar fallback and the
// bench_micro comparator: same code with vectorization suppressed (GCC);
// on other compilers they may still vectorize, which only narrows the
// measured speedup, never changes results.
#pragma once

#include <cstddef>

namespace cocg::hw::batch {

/// dst[i] = min(a[i], b[i]) — desired draw per dimension.
void min_into(double* dst, const double* a, const double* b, std::size_t n);
/// dst[i] = src[i] * s — broadcast pool scale (CPU / RAM dims).
void scale_into(double* dst, const double* src, double s, std::size_t n);
/// dst[i] = a[i] * b[i] — per-lane gathered device scale (GPU dims).
void mul_into(double* dst, const double* a, const double* b, std::size_t n);

/// Satisfaction lanes, bit-identical to ResourceVector::satisfaction_ratio
/// applied per session: init sets sat = 1.0 / any = 0.0 (the
/// demanded mask is a double lane — 0.0 or 1.0 — so every loop stays
/// uniformly double-typed and vectorizes); apply_dim folds one
/// dimension (sat = min(sat, supplied/demand) where demand > 0, and marks
/// the lane demanded); finalize clamps to [0, ..] and rewrites undemanded
/// lanes to 1.0. Call apply_dim once per resource dimension, any order —
/// min is exact, so the result does not depend on dimension order.
void satisfaction_init(double* sat, double* any, std::size_t n);
void satisfaction_apply_dim(double* sat, double* any, const double* demand,
                            const double* supplied, std::size_t n);
void satisfaction_finalize(double* sat, const double* any, std::size_t n);

/// Fused satisfaction over all four resource dimensions in one pass:
/// per lane, exactly the init → apply_dim(d0..d3) → finalize sequence
/// above with the running state kept in registers instead of re-read
/// from memory between dimensions. Bit-identical to the composable
/// pipeline (and to ResourceVector::satisfaction_ratio); ~6x fewer
/// memory passes, which is what the per-server resolve (n of a few
/// dozen lanes) actually pays for. Still a single if-converted
/// vectorizable loop.
void satisfaction_into(double* sat, const double* d0, const double* s0,
                       const double* d1, const double* s1, const double* d2,
                       const double* s2, const double* d3, const double* s3,
                       std::size_t n);

/// Strictly-ordered sum (lane 0 first). The addition order is part of
/// the determinism contract; GCC may lower this as an in-order fold-left
/// reduction (vector loads, sequential adds), which keeps it exactly.
double sum_ordered(const double* a, std::size_t n);

// --- portable scalar references (bit-identity oracle + bench baseline) ---
void min_into_scalar(double* dst, const double* a, const double* b,
                     std::size_t n);
void scale_into_scalar(double* dst, const double* src, double s,
                       std::size_t n);
void mul_into_scalar(double* dst, const double* a, const double* b,
                     std::size_t n);
void satisfaction_apply_dim_scalar(double* sat, double* any,
                                   const double* demand,
                                   const double* supplied, std::size_t n);
void satisfaction_into_scalar(double* sat, const double* d0, const double* s0,
                              const double* d1, const double* s1,
                              const double* d2, const double* s2,
                              const double* d3, const double* s3,
                              std::size_t n);

}  // namespace cocg::hw::batch
