// Telemetry sample types.
//
// A MetricSample is one observation of a running session: the resource draw
// the monitoring agent reads (cgroup CPU stats + GPU-Z-style GPU counters in
// the paper; the simulated server here) plus the instantaneous FPS. Ground
// truth about the game's internal stage is carried alongside for evaluation
// only — CoCG's online path never reads it.
#pragma once

#include "common/resources.h"
#include "common/types.h"

namespace cocg::telemetry {

struct MetricSample {
  TimeMs t = 0;
  ResourceVector usage;  ///< observed resource consumption
  double fps = 0.0;      ///< observed frames-per-second

  // ---- evaluation-only ground truth (hidden from the online system) ----
  int true_stage_type = -1;    ///< index into the game's stage-type catalog
  bool true_loading = false;   ///< whether the game was in a loading stage
  int true_cluster = -1;       ///< frame-cluster id the game was emitting
};

/// One 5-second frame slice: the mean usage over the slice (the unit the
/// paper clusters, §IV-A2 "each frame cluster represents the amount of
/// resources consumed in a certain 5-second slice").
struct FrameSlice {
  TimeMs start = 0;
  TimeMs end = 0;
  ResourceVector mean_usage;
  double mean_fps = 0.0;
  int true_stage_type = -1;
  bool true_loading = false;
  int true_cluster = -1;
};

}  // namespace cocg::telemetry
