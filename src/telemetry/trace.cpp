#include "telemetry/trace.h"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "common/check.h"
#include "common/table.h"

namespace cocg::telemetry {

void Trace::set_max_samples(std::size_t cap) {
  max_samples_ = cap;
  if (max_samples_ > 0 && samples_.size() > max_samples_) trim_to_window();
}

void Trace::trim_to_window() {
  const std::size_t drop = samples_.size() - max_samples_;
  samples_.erase(samples_.begin(),
                 samples_.begin() + static_cast<std::ptrdiff_t>(drop));
  dropped_ += drop;
}

TimeMs Trace::start_time() const {
  COCG_EXPECTS(!empty());
  return samples_.front().t;
}

TimeMs Trace::end_time() const {
  COCG_EXPECTS(!empty());
  return samples_.back().t;
}

std::vector<FrameSlice> Trace::to_frame_slices(DurationMs slice_ms) const {
  COCG_EXPECTS(slice_ms > 0);
  std::vector<FrameSlice> out;
  if (empty()) return out;

  const TimeMs t0 = start_time();
  std::size_t i = 0;
  while (i < samples_.size()) {
    const TimeMs slice_start =
        t0 + ((samples_[i].t - t0) / slice_ms) * slice_ms;
    const TimeMs slice_end = slice_start + slice_ms;

    ResourceVector acc;
    double fps_acc = 0.0;
    std::size_t n = 0;
    std::map<int, int> stage_votes, cluster_votes;
    int loading_votes = 0;
    while (i < samples_.size() && samples_[i].t < slice_end) {
      acc += samples_[i].usage;
      fps_acc += samples_[i].fps;
      ++stage_votes[samples_[i].true_stage_type];
      ++cluster_votes[samples_[i].true_cluster];
      if (samples_[i].true_loading) ++loading_votes;
      ++n;
      ++i;
    }
    COCG_CHECK(n > 0);

    FrameSlice fs;
    fs.start = slice_start;
    fs.end = slice_end;
    fs.mean_usage = acc * (1.0 / static_cast<double>(n));
    fs.mean_fps = fps_acc / static_cast<double>(n);
    auto majority = [](const std::map<int, int>& votes) {
      int best = -1, best_n = -1;
      for (const auto& [k, v] : votes) {
        if (v > best_n) {
          best = k;
          best_n = v;
        }
      }
      return best;
    };
    fs.true_stage_type = majority(stage_votes);
    fs.true_cluster = majority(cluster_votes);
    fs.true_loading = loading_votes * 2 > static_cast<int>(n);
    out.push_back(fs);
  }
  return out;
}

void Trace::save_csv(const std::string& path) const {
  CsvWriter w(path);
  w.write_row({"t_ms", "cpu_pct", "gpu_pct", "gpu_mem_mb", "ram_mb", "fps",
               "true_stage_type", "true_loading", "true_cluster"});
  for (const auto& s : samples_) {
    w.write_row({std::to_string(s.t), std::to_string(s.usage.cpu()),
                 std::to_string(s.usage.gpu()), std::to_string(s.usage.gpu_mem()),
                 std::to_string(s.usage.ram()), std::to_string(s.fps),
                 std::to_string(s.true_stage_type),
                 s.true_loading ? "1" : "0", std::to_string(s.true_cluster)});
  }
}

Trace Trace::load_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("Trace::load_csv: cannot open " + path);
  Trace trace(path);
  std::string line;
  bool header = true;
  while (std::getline(in, line)) {
    if (header) {
      header = false;
      continue;
    }
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string cell;
    std::vector<std::string> cells;
    while (std::getline(ls, cell, ',')) cells.push_back(cell);
    if (cells.size() != 9) {
      throw std::runtime_error("Trace::load_csv: malformed row: " + line);
    }
    MetricSample s;
    s.t = std::stoll(cells[0]);
    s.usage = ResourceVector{std::stod(cells[1]), std::stod(cells[2]),
                             std::stod(cells[3]), std::stod(cells[4])};
    s.fps = std::stod(cells[5]);
    s.true_stage_type = std::stoi(cells[6]);
    s.true_loading = cells[7] == "1";
    s.true_cluster = std::stoi(cells[8]);
    trace.add(s);
  }
  return trace;
}

}  // namespace cocg::telemetry
