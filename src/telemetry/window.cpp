#include "telemetry/window.h"

#include <algorithm>

#include "common/check.h"

namespace cocg::telemetry {

SlidingWindow::SlidingWindow(std::size_t capacity) : capacity_(capacity) {
  COCG_EXPECTS(capacity >= 1);
}

void SlidingWindow::add(const MetricSample& s) {
  if (buf_.size() == capacity_) buf_.pop_front();
  buf_.push_back(s);
}

void SlidingWindow::clear() { buf_.clear(); }

const MetricSample& SlidingWindow::latest() const {
  COCG_EXPECTS(!empty());
  return buf_.back();
}

const MetricSample& SlidingWindow::oldest() const {
  COCG_EXPECTS(!empty());
  return buf_.front();
}

const MetricSample& SlidingWindow::at(std::size_t i) const {
  COCG_EXPECTS(i < buf_.size());
  return buf_[i];
}

ResourceVector SlidingWindow::mean_usage() const {
  COCG_EXPECTS(!empty());
  ResourceVector acc;
  for (const auto& s : buf_) acc += s.usage;
  return acc * (1.0 / static_cast<double>(buf_.size()));
}

ResourceVector SlidingWindow::mean_usage_tail(std::size_t n) const {
  COCG_EXPECTS(!empty());
  n = std::min(n, buf_.size());
  COCG_EXPECTS(n >= 1);
  ResourceVector acc;
  for (std::size_t i = buf_.size() - n; i < buf_.size(); ++i) {
    acc += buf_[i].usage;
  }
  return acc * (1.0 / static_cast<double>(n));
}

double SlidingWindow::mean_fps() const {
  COCG_EXPECTS(!empty());
  double acc = 0.0;
  for (const auto& s : buf_) acc += s.fps;
  return acc / static_cast<double>(buf_.size());
}

}  // namespace cocg::telemetry
