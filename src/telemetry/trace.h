// Traces: ordered sequences of metric samples, with CSV round-tripping and
// frame-slice aggregation (the profiler's input).
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "telemetry/sample.h"

namespace cocg::telemetry {

class Trace {
 public:
  Trace() = default;
  explicit Trace(std::string label) : label_(std::move(label)) {}

  const std::string& label() const { return label_; }
  void set_label(std::string l) { label_ = std::move(l); }

  /// Append a sample; timestamps must be non-decreasing.
  void add(const MetricSample& s);

  bool empty() const { return samples_.empty(); }
  std::size_t size() const { return samples_.size(); }
  const MetricSample& operator[](std::size_t i) const { return samples_[i]; }
  const std::vector<MetricSample>& samples() const { return samples_; }

  TimeMs start_time() const;  ///< requires !empty()
  TimeMs end_time() const;    ///< requires !empty()

  /// Aggregate into consecutive slices of `slice_ms` (default: the paper's
  /// 5-second frames). A slice's ground-truth fields take the majority value
  /// of its samples. Partial trailing slices are kept.
  std::vector<FrameSlice> to_frame_slices(
      DurationMs slice_ms = kFrameSliceMs) const;

  /// CSV persistence (header row + one row per sample).
  void save_csv(const std::string& path) const;
  static Trace load_csv(const std::string& path);

 private:
  std::string label_;
  std::vector<MetricSample> samples_;
};

}  // namespace cocg::telemetry
