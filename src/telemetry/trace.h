// Traces: ordered sequences of metric samples, with CSV round-tripping and
// frame-slice aggregation (the profiler's input).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "telemetry/sample.h"

namespace cocg::telemetry {

class Trace {
 public:
  Trace() = default;
  explicit Trace(std::string label) : label_(std::move(label)) {}

  const std::string& label() const { return label_; }
  void set_label(std::string l) { label_ = std::move(l); }

  /// Append a sample; timestamps must be non-decreasing. Inline: this runs
  /// once per session per simulated tick, and with a reserved buffer it
  /// must compile down to a bounds check and a store.
  void add(const MetricSample& s) {
    COCG_EXPECTS_MSG(samples_.empty() || s.t >= samples_.back().t,
                     "trace timestamps must be non-decreasing");
    samples_.push_back(s);
    if (max_samples_ > 0 &&
        samples_.size() > max_samples_ + max_samples_ / 2) {
      trim_to_window();
    }
  }

  /// Pre-size the sample buffer (e.g. from a session's expected tick count)
  /// so steady-state add() never reallocates.
  void reserve(std::size_t n) { samples_.reserve(n); }
  std::size_t capacity() const { return samples_.capacity(); }

  /// Bound growth: keep at most `cap` newest samples (0 = unbounded, the
  /// default). Trimming happens in blocks once the buffer exceeds 1.5× cap,
  /// so add() stays amortized O(1).
  void set_max_samples(std::size_t cap);
  std::size_t max_samples() const { return max_samples_; }
  /// Samples discarded so far by the max_samples window.
  std::uint64_t dropped_samples() const { return dropped_; }

  bool empty() const { return samples_.empty(); }
  std::size_t size() const { return samples_.size(); }
  const MetricSample& operator[](std::size_t i) const { return samples_[i]; }
  const std::vector<MetricSample>& samples() const { return samples_; }

  TimeMs start_time() const;  ///< requires !empty()
  TimeMs end_time() const;    ///< requires !empty()

  /// Aggregate into consecutive slices of `slice_ms` (default: the paper's
  /// 5-second frames). A slice's ground-truth fields take the majority value
  /// of its samples. Partial trailing slices are kept.
  std::vector<FrameSlice> to_frame_slices(
      DurationMs slice_ms = kFrameSliceMs) const;

  /// CSV persistence (header row + one row per sample).
  void save_csv(const std::string& path) const;
  static Trace load_csv(const std::string& path);

 private:
  void trim_to_window();

  std::string label_;
  std::vector<MetricSample> samples_;
  std::size_t max_samples_ = 0;  ///< 0 = unbounded
  std::uint64_t dropped_ = 0;
};

}  // namespace cocg::telemetry
