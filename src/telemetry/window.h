// Sliding observation window over recent samples.
//
// The online monitor keeps the last W samples per session to judge the
// current stage (compare against catalog centroids) and to detect the sharp
// usage transitions that mark loading-stage entry.
#pragma once

#include <deque>

#include "common/resources.h"
#include "telemetry/sample.h"

namespace cocg::telemetry {

class SlidingWindow {
 public:
  /// Keep at most `capacity` most-recent samples (capacity >= 1).
  explicit SlidingWindow(std::size_t capacity);

  void add(const MetricSample& s);
  void clear();

  bool empty() const { return buf_.empty(); }
  bool full() const { return buf_.size() == capacity_; }
  std::size_t size() const { return buf_.size(); }
  std::size_t capacity() const { return capacity_; }

  const MetricSample& latest() const;  ///< requires !empty()
  const MetricSample& oldest() const;  ///< requires !empty()
  const MetricSample& at(std::size_t i) const;  ///< 0 == oldest

  /// Mean usage over the window. Requires !empty().
  ResourceVector mean_usage() const;

  /// Mean usage over only the newest `n` samples (n clamped to size).
  ResourceVector mean_usage_tail(std::size_t n) const;

  /// Mean fps over the window. Requires !empty().
  double mean_fps() const;

 private:
  std::size_t capacity_;
  std::deque<MetricSample> buf_;
};

}  // namespace cocg::telemetry
