// Platform scaling of game workloads (§IV-D).
//
// The same game on different hardware keeps its stage structure — only its
// resource draw changes: utilization scales inversely with the SKU's
// compute capability (a GTX-1080-class GPU runs the same scene at ~1.8×
// the utilization of a 2080), while working-set sizes (VRAM/RAM) stay
// fixed. scale_for_platform() produces the GameSpec describing how a title
// behaves on a different SKU, used to validate profile migration.
#pragma once

#include "game/spec.h"
#include "hw/server.h"

namespace cocg::game {

/// Rescale `spec`'s resource draws for a platform with the given relative
/// compute capabilities (1.0 = the baseline testbed). CPU% and GPU% divide
/// by the respective perf factor (clamped to 100%); memory dims are
/// unchanged; uncapped titles render faster on stronger GPUs (fps_base
/// scales with gpu_perf).
GameSpec scale_for_platform(const GameSpec& spec, double cpu_perf,
                            double gpu_perf);

/// Convenience overload reading the factors from a ServerSpec.
GameSpec scale_for_platform(const GameSpec& spec, const hw::ServerSpec& sku);

}  // namespace cocg::game
