// Play-through plan generation: script + user influence → concrete stage
// sequence.
//
// The user-influence model implements Fig. 7's quadrants:
//  * web      — the script is played verbatim;
//  * mobile   — players complete the same tasks in a per-player preferred
//               order (stable for a given player id);
//  * console  — optional segments (cutscenes/menus) are sometimes skipped;
//  * MMORPG/MOBA — segment repeat counts (rounds, fights) vary per run.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "game/spec.h"

namespace cocg::game {

/// One concrete stage occurrence in a run.
struct PlannedStage {
  int stage_type = -1;
  DurationMs planned_dwell_ms = 0;  ///< loading: nominal at full supply
  std::vector<int> cluster_order;   ///< concrete visit order within the stage
};

/// Expand a script into the concrete stage sequence one run will follow:
/// initialization loading, then each surviving segment followed by a
/// runtime loading stage; the final loading doubles as shutdown (§IV-A1).
///
/// `player_id` seeds the per-player task order for mobile games; `rng`
/// supplies all other randomness (dwell draws, repeats, skips, shuffles).
std::vector<PlannedStage> generate_plan(const GameSpec& spec,
                                        std::size_t script_idx,
                                        std::uint64_t player_id, Rng& rng);

/// Total nominal duration of a plan (sum of planned dwells).
DurationMs plan_nominal_duration(const std::vector<PlannedStage>& plan);

/// Stage-type sequence of a plan (for predictor training corpora).
std::vector<int> plan_stage_types(const std::vector<PlannedStage>& plan);

}  // namespace cocg::game
