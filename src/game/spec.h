// Static description of a cloud game: frame clusters, stage types, scripts.
//
// Terminology follows §IV-A of the paper exactly:
//  * frame cluster — a point in resource space; "the amount of resources
//    consumed in a certain 5-second slice";
//  * stage — a contiguous period of gameplay; *loading* stages separate
//    *execution* stages;
//  * stage type — a combination of frame clusters (most stages are one
//    cluster; complex stages mix several, e.g. a three-boss secret realm);
//  * script — an automated play-through (Table I) that fixes which stages a
//    run visits, modulated by user influence.
#pragma once

#include <string>
#include <vector>

#include "common/check.h"
#include "common/resources.h"
#include "common/types.h"

namespace cocg::game {

/// Fig. 7's quadrants: user influence (vertical) x stage complexity
/// (horizontal). Drives training-set selection in the predictor.
enum class GameCategory {
  kWeb,      ///< simple stages, low user influence (Contra)
  kMobile,   ///< simple stages, high user influence (Genshin Impact)
  kConsole,  ///< complex stages, low user influence (Devil May Cry)
  kMoba,     ///< complex stages, high user influence (DOTA2, CSGO)
};

const char* category_name(GameCategory c);

enum class StageKind { kLoading, kExecution };

/// One frame cluster: nominal resource draw and rendering capability.
struct FrameClusterSpec {
  int id = -1;
  std::string name;
  ResourceVector centroid;  ///< mean demand while emitting this cluster
  ResourceVector jitter;    ///< per-dimension stddev of tick-level noise
  double fps_base = 60.0;   ///< FPS achieved at full resource supply
};

/// One stage type: a combination of clusters plus dwell behaviour.
struct StageTypeSpec {
  int id = -1;
  std::string name;
  StageKind kind = StageKind::kExecution;
  /// Cluster ids visited within the stage. Loading stages have exactly one.
  /// Multi-cluster execution stages visit each cluster once; the order is
  /// user-influenced (the paper's three-boss example).
  std::vector<int> clusters;
  /// Nominal total dwell range (ms). For loading stages this is the time at
  /// FULL resource supply; starving the loading stage stretches it.
  DurationMs min_dwell_ms = 5000;
  DurationMs max_dwell_ms = 10000;
  /// Shuffle multi-cluster visit order per run (user influence).
  bool shuffle_clusters = true;
};

/// One segment of a script: an execution stage type, possibly repeated a
/// user-influenced number of times (MOBA rounds/fights).
struct ScriptSegment {
  int stage_type = -1;
  int min_repeat = 1;
  int max_repeat = 1;
  /// Probability the player skips this segment entirely (console players
  /// skipping cutscenes / optional menus).
  double skip_prob = 0.0;
};

/// An automated play-through (Table I).
struct ScriptSpec {
  std::string name;
  std::string description;
  std::vector<ScriptSegment> segments;
  /// Mobile-game user influence: players complete the same tasks in their
  /// own preferred order (§IV-B1 "the order in which tasks are completed
  /// may vary greatly among different players").
  bool player_order = false;
};

/// A full game description.
struct GameSpec {
  GameId id;
  std::string name;
  GameCategory category = GameCategory::kWeb;
  std::vector<FrameClusterSpec> clusters;
  std::vector<StageTypeSpec> stage_types;
  int loading_stage_type = 0;  ///< id of the canonical loading stage type
  std::vector<ScriptSpec> scripts;
  double fps_cap = 60.0;  ///< 0 == uncapped (CSGO, DOTA2)
  /// Whether operators advertise this as a short game (the regulator's
  /// "distinguish game length" strategy, §IV-C2).
  bool short_game = false;

  // Inline: resolved several times per session per simulated tick.
  const FrameClusterSpec& cluster(int id) const {
    COCG_EXPECTS(id >= 0 && id < num_clusters());
    COCG_EXPECTS_MSG(clusters[static_cast<std::size_t>(id)].id == id,
                     "cluster ids must equal their index");
    return clusters[static_cast<std::size_t>(id)];
  }
  const StageTypeSpec& stage_type(int id) const {
    COCG_EXPECTS(id >= 0 && id < num_stage_types());
    COCG_EXPECTS_MSG(stage_types[static_cast<std::size_t>(id)].id == id,
                     "stage-type ids must equal their index");
    return stage_types[static_cast<std::size_t>(id)];
  }
  int num_clusters() const { return static_cast<int>(clusters.size()); }
  int num_stage_types() const { return static_cast<int>(stage_types.size()); }

  /// Peak demand M over all execution clusters (used by redundancy
  /// allocation S = (1-P)·M and by the VBP baseline's reservation).
  ResourceVector peak_demand() const;

  /// Mean demand over execution clusters (rough "typical" draw).
  ResourceVector mean_execution_demand() const;

  /// Count of distinct stage types a script's expansion can visit.
  int script_stage_type_count(std::size_t script_idx) const;
};

}  // namespace cocg::game
