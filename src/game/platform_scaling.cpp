#include "game/platform_scaling.h"

#include <algorithm>

#include "common/check.h"

namespace cocg::game {

GameSpec scale_for_platform(const GameSpec& spec, double cpu_perf,
                            double gpu_perf) {
  COCG_EXPECTS(cpu_perf > 0.0);
  COCG_EXPECTS(gpu_perf > 0.0);
  GameSpec out = spec;
  for (auto& c : out.clusters) {
    c.centroid[Dim::kCpuPct] =
        std::min(100.0, c.centroid[Dim::kCpuPct] / cpu_perf);
    c.centroid[Dim::kGpuPct] =
        std::min(100.0, c.centroid[Dim::kGpuPct] / gpu_perf);
    c.jitter[Dim::kCpuPct] /= cpu_perf;
    c.jitter[Dim::kGpuPct] /= gpu_perf;
    // Uncapped titles render as fast as the GPU allows.
    if (spec.fps_cap <= 0.0) c.fps_base *= gpu_perf;
  }
  return out;
}

GameSpec scale_for_platform(const GameSpec& spec,
                            const hw::ServerSpec& sku) {
  return scale_for_platform(spec, sku.cpu_perf, sku.gpu_perf);
}

}  // namespace cocg::game
