// GameSession: the runtime stage machine of one running cloud game.
//
// Driven at a 1-second tick by the platform. Each tick the session states a
// demand; the hardware (via the ContentionModel) states what it supplied;
// the session then advances:
//  * execution stages progress in wall time regardless of supply — players
//    keep playing, they just see a degraded frame rate;
//  * loading stages progress in *work* terms: starving the loading stage
//    stretches it (Observation 4 / the regulator's time-stealing knob).
//
// FPS model: realized = achievable × satisfaction^fps_exponent, where
// achievable = min(fps_cap, cluster.fps_base). QoS accounting tracks ticks
// with realized FPS below the 30-frame floor (§V-C2).
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/resources.h"
#include "common/rng.h"
#include "common/types.h"
#include "game/plan.h"
#include "game/spec.h"

namespace cocg::game {

struct SessionConfig {
  DurationMs tick_ms = 1000;
  double fps_exponent = 1.5;
  double qos_fps_floor = 30.0;
  /// Per-tick probability of a transient demand fluctuation (the "sudden
  /// event" Fig. 9/10 discuss); the spike lasts spike_min..max ticks and
  /// multiplies demand by spike_factor.
  double spike_prob = 0.002;
  int spike_min_ticks = 3;
  int spike_max_ticks = 8;
  double spike_factor = 1.35;
};

class GameSession {
 public:
  /// `spec` must outlive the session.
  GameSession(SessionId id, const GameSpec* spec, std::size_t script_idx,
              std::vector<PlannedStage> plan, Rng rng,
              SessionConfig cfg = {});

  SessionId id() const { return id_; }
  const GameSpec& spec() const { return *spec_; }
  std::size_t script_index() const { return script_idx_; }

  /// Start the run at simulated time `now`.
  void begin(TimeMs now);

  bool started() const { return started_; }
  bool finished() const { return finished_; }

  // The per-tick state accessors below are defined inline: the platform
  // reads each of them for every session on every simulated tick.

  /// Demand for the upcoming tick. Requires started() && !finished().
  ResourceVector demand() const {
    COCG_EXPECTS(started_ && !finished_);
    return pending_demand_;
  }

  /// Advance one tick given what the hardware supplied.
  void tick(TimeMs now, const ResourceVector& supplied);

  // --- quiescence (the macro-tick fast-forward contract) ---

  /// Sentinel for "no internal boundary under this supply" (a held or
  /// fully-starved loading stage). Half of max so callers can add safely.
  static constexpr std::int64_t kQuiescentUnbounded =
      std::numeric_limits<std::int64_t>::max() / 2;

  /// Version counter of pending_demand_: bumped exactly when the demanded
  /// vector changes value (stage entry, cluster rotation, jitter redraw,
  /// spike start/end). Equal versions ⇒ bit-identical demand, which is what
  /// the platform's per-server resolve cache keys on.
  std::uint64_t demand_version() const { return demand_version_; }

  /// How many ADDITIONAL tick(now, supplied) calls after the current state
  /// are guaranteed to be pure repetition under the same `supplied`: no
  /// stage advance or finish, no cluster rotation, no demand change, no RNG
  /// draw. 0 when the session is not quiescent at all (demand jitter on,
  /// spikes possible/active); kQuiescentUnbounded when no boundary can
  /// arrive (loading held, or loading fully starved of CPU).
  std::int64_t quiescent_ticks(const ResourceVector& supplied) const;

  /// Bulk-advance `w` ticks (1 <= w <= quiescent_ticks(supplied)) with the
  /// identical end state the per-tick path would reach: integer accumulators
  /// advance by exact multiples, floating-point accumulators by w strictly
  /// sequential adds (w*x would reassociate and break bit-identity), and the
  /// RNG is untouched (the quiescence preconditions guarantee the per-tick
  /// path draws nothing either).
  void fast_forward(std::int64_t w, const ResourceVector& supplied);

  // --- current state (requires started()) ---
  StageKind stage_kind() const {
    COCG_EXPECTS(started_);
    if (finished_) return StageKind::kLoading;  // post-shutdown
    return spec_->stage_type(plan_[stage_idx_].stage_type).kind;
  }
  int stage_type() const {  ///< -1 once finished
    COCG_EXPECTS(started_);
    if (finished_) return -1;
    return plan_[stage_idx_].stage_type;
  }
  int current_cluster() const {  ///< -1 during/after the final stage end
    COCG_EXPECTS(started_);
    if (finished_) return -1;
    return active_cluster().id;
  }
  std::size_t stage_index() const { return stage_idx_; }
  std::size_t plan_size() const { return plan_.size(); }
  const std::vector<PlannedStage>& plan() const { return plan_; }
  double last_fps() const { return last_fps_; }
  /// Achievable FPS of the current cluster under full supply.
  double achievable_fps() const {
    COCG_EXPECTS(started_ && !finished_);
    const double base = active_cluster().fps_base;
    if (spec_->fps_cap > 0.0) return std::min(base, spec_->fps_cap);
    return base;
  }

  /// Stage types realized so far (completed stages + current).
  const std::vector<int>& stage_history() const { return stage_history_; }

  // --- regulator hooks ---
  /// Freeze loading progress: while held, the loading stage consumes its
  /// demand but makes no progress (the regulator "extends loading time").
  /// No effect during execution stages.
  void set_loading_hold(bool hold) { loading_hold_ = hold; }
  bool loading_hold() const { return loading_hold_; }

  // --- lifetime & QoS accounting ---
  TimeMs start_time() const { return start_time_; }
  TimeMs end_time() const { return end_time_; }  ///< valid when finished()
  DurationMs elapsed_ms() const { return elapsed_ms_; }
  DurationMs execution_ms() const { return execution_ms_; }
  DurationMs loading_ms() const { return loading_ms_; }
  /// Loading time beyond the plan's nominal loading total (stretch).
  DurationMs loading_extension_ms() const;
  /// Execution ticks with realized FPS below the QoS floor.
  DurationMs qos_violation_ms() const { return qos_violation_ms_; }
  /// Mean of realized/achievable FPS over execution ticks (Fig. 13 metric).
  double mean_fps_ratio() const;
  double mean_fps() const;

 private:
  void enter_stage(std::size_t idx);
  const FrameClusterSpec& active_cluster() const {
    const PlannedStage& ps = plan_[stage_idx_];
    const StageTypeSpec& st = spec_->stage_type(ps.stage_type);
    if (st.kind == StageKind::kLoading || ps.cluster_order.size() == 1) {
      return spec_->cluster(ps.cluster_order[0]);
    }
    // Multi-cluster execution stage: each cluster owns an equal slice of
    // the planned dwell, visited in the plan's concrete order.
    const DurationMs share = std::max<DurationMs>(
        1, ps.planned_dwell_ms / static_cast<DurationMs>(
                                     ps.cluster_order.size()));
    auto pos = static_cast<std::size_t>(stage_elapsed_ms_ / share);
    pos = std::min(pos, ps.cluster_order.size() - 1);
    return spec_->cluster(ps.cluster_order[pos]);
  }
  ResourceVector noisy_demand(const FrameClusterSpec& c) const;
  /// Assign pending_demand_, bumping demand_version_ iff the value changed.
  void update_pending_demand(const ResourceVector& d);

  SessionId id_;
  const GameSpec* spec_;
  std::size_t script_idx_;
  std::vector<PlannedStage> plan_;
  mutable Rng rng_;
  SessionConfig cfg_;

  bool started_ = false;
  bool finished_ = false;
  TimeMs start_time_ = 0;
  TimeMs end_time_ = 0;

  std::size_t stage_idx_ = 0;
  DurationMs stage_elapsed_ms_ = 0;   ///< wall time in current stage
  DurationMs loading_progress_ms_ = 0;
  std::vector<int> stage_history_;
  ResourceVector pending_demand_;  ///< demand quoted for the next tick
  std::uint64_t demand_version_ = 0;
  bool loading_hold_ = false;

  int spike_ticks_left_ = 0;

  double last_fps_ = 0.0;
  DurationMs elapsed_ms_ = 0;
  DurationMs execution_ms_ = 0;
  DurationMs loading_ms_ = 0;
  DurationMs nominal_loading_ms_ = 0;
  DurationMs qos_violation_ms_ = 0;
  double fps_ratio_sum_ = 0.0;
  double fps_sum_ = 0.0;
  std::size_t fps_samples_ = 0;
};

}  // namespace cocg::game
