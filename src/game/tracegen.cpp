#include "game/tracegen.h"

#include <algorithm>

#include "common/check.h"
#include "game/plan.h"
#include "game/session.h"

namespace cocg::game {

telemetry::Trace profile_run(const GameSpec& spec, std::size_t script_idx,
                             std::uint64_t player_id, std::uint64_t seed,
                             const TraceGenConfig& cfg) {
  COCG_EXPECTS(script_idx < spec.scripts.size());
  COCG_EXPECTS(cfg.sample_period_ms > 0);
  Rng rng(seed);
  auto plan = generate_plan(spec, script_idx, player_id, rng);
  GameSession session(SessionId{player_id}, &spec, script_idx,
                      std::move(plan), rng.fork());
  Rng noise = rng.fork();

  telemetry::Trace trace(spec.name + "/" + spec.scripts[script_idx].name);
  TimeMs now = 0;
  session.begin(now);
  while (!session.finished()) {
    const ResourceVector demand = session.demand();

    telemetry::MetricSample s;
    s.t = now;
    // Full supply: consumption equals demand, plus probe measurement noise.
    s.usage = demand;
    for (std::size_t i = 0; i < kNumDims; ++i) {
      s.usage.at(i) = std::max(
          0.0, s.usage.at(i) *
                   (1.0 + noise.normal(0.0, cfg.measurement_noise_rel)));
    }
    s.true_stage_type = session.stage_type();
    s.true_loading = session.stage_kind() == StageKind::kLoading;
    s.true_cluster = session.current_cluster();

    session.tick(now, demand);
    s.fps = session.last_fps();
    trace.add(s);
    now += cfg.sample_period_ms;
  }
  return trace;
}

std::vector<RunRecord> generate_corpus(const GameSpec& spec, int n_runs,
                                       int n_players, std::uint64_t seed) {
  COCG_EXPECTS(n_runs > 0);
  COCG_EXPECTS(n_players > 0);
  COCG_EXPECTS(!spec.scripts.empty());
  Rng rng(seed);
  std::vector<RunRecord> out;
  out.reserve(static_cast<std::size_t>(n_runs));
  for (int r = 0; r < n_runs; ++r) {
    RunRecord rec;
    rec.script_idx = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(spec.scripts.size()) - 1));
    rec.player_id = static_cast<std::uint64_t>(
        rng.uniform_int(1, n_players));
    auto plan = generate_plan(spec, rec.script_idx, rec.player_id, rng);
    rec.stage_seq = plan_stage_types(plan);
    out.push_back(std::move(rec));
  }
  return out;
}

}  // namespace cocg::game
