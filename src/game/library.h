// The paper's evaluated workload suite (§V-A, Table I): DOTA2, CSGO,
// Genshin Impact, Devil May Cry, Contra — as parametric game models.
//
// Parameters are chosen to match the paper's published characteristics:
//  * per-game cluster counts from the Fig. 14 elbow analysis
//    (Contra 2, CSGO 4, Genshin 4, DOTA2 5, Devil May Cry 6);
//  * per-script stage-type counts from Table I;
//  * peak utilizations from Fig. 9/10 (Genshin ≈78% GPU peak, DOTA2 ≈43%);
//  * loading stages 5–30 s with the high-CPU/low-GPU signature
//    (Observation 3);
//  * frame caps: Genshin/DMC locked to 60, CSGO/DOTA2 uncapped (§V-C2).
#pragma once

#include <vector>

#include "game/spec.h"

namespace cocg::game {

GameSpec make_contra();
/// Honkai: Star Rail — the Fig. 2 trace's game. Modeled per §III's
/// open-world discussion: "open-world games are treated as phased games
/// with particular longer running stages" — few, long execution stages
/// (main world / instance zones / NPC interaction) with pronounced
/// loading transitions.
GameSpec make_honkai();
GameSpec make_csgo();
GameSpec make_dota2();
GameSpec make_genshin();
GameSpec make_devil_may_cry();

/// All five evaluated games, in a stable order: DOTA2, CSGO, Genshin,
/// DMC, Contra. (Honkai appears in Fig. 2 only and is not part of the
/// evaluation suite.)
std::vector<GameSpec> paper_suite();

/// Lookup by name ("DOTA2", "CSGO", "Genshin Impact", "Devil May Cry",
/// "Contra"); throws ContractError for unknown names.
GameSpec game_by_name(const std::string& name);

}  // namespace cocg::game
