#include "game/session.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace cocg::game {

GameSession::GameSession(SessionId id, const GameSpec* spec,
                         std::size_t script_idx,
                         std::vector<PlannedStage> plan, Rng rng,
                         SessionConfig cfg)
    : id_(id),
      spec_(spec),
      script_idx_(script_idx),
      plan_(std::move(plan)),
      rng_(rng),
      cfg_(cfg) {
  COCG_EXPECTS(spec != nullptr);
  COCG_EXPECTS(script_idx < spec->scripts.size());
  COCG_EXPECTS_MSG(!plan_.empty(), "plan must contain at least one stage");
  COCG_EXPECTS(cfg_.tick_ms > 0);
  for (const auto& ps : plan_) {
    COCG_EXPECTS(ps.stage_type >= 0 &&
                 ps.stage_type < spec->num_stage_types());
    COCG_EXPECTS(!ps.cluster_order.empty());
    if (spec->stage_type(ps.stage_type).kind == StageKind::kLoading) {
      // Tick-quantized nominal: a fully-supplied loading stage completes on
      // the ceil(dwell/tick)-th tick, which must not count as "extension".
      const DurationMs ticks =
          (ps.planned_dwell_ms + cfg_.tick_ms - 1) / cfg_.tick_ms;
      nominal_loading_ms_ += ticks * cfg_.tick_ms;
    }
  }
}

void GameSession::begin(TimeMs now) {
  COCG_EXPECTS_MSG(!started_, "session already started");
  started_ = true;
  start_time_ = now;
  enter_stage(0);
}

void GameSession::enter_stage(std::size_t idx) {
  COCG_CHECK(idx < plan_.size());
  stage_idx_ = idx;
  stage_elapsed_ms_ = 0;
  loading_progress_ms_ = 0;
  stage_history_.push_back(plan_[idx].stage_type);
  update_pending_demand(noisy_demand(active_cluster()));
}

void GameSession::update_pending_demand(const ResourceVector& d) {
  // Value comparison, not assignment-count: a redraw that lands on the same
  // vector (jitter off, no spike) keeps the version stable, which is what
  // lets the platform's resolve cache stay hot between stage boundaries.
  if (!(d == pending_demand_)) {
    pending_demand_ = d;
    ++demand_version_;
  }
}

ResourceVector GameSession::noisy_demand(const FrameClusterSpec& c) const {
  ResourceVector d = c.centroid;
  // One batched draw of standard normals, scaled per dimension. Same draw
  // sequence and arithmetic as the former per-dim normal(0, jitter) calls
  // (normal(0, s) == s * standard normal), so demand is bit-identical.
  // Jitter-free clusters skip the draws: the centroid needs no perturbing
  // and the Box–Muller transcendentals dominate the per-tick cost.
  if (!c.jitter.is_zero()) {
    double z[kNumDims];
    rng_.fill_normal(z, kNumDims, 0.0, 1.0);
    for (std::size_t i = 0; i < kNumDims; ++i) {
      d.at(i) = std::max(0.0, d.at(i) + c.jitter.at(i) * z[i]);
    }
  }
  if (spike_ticks_left_ > 0) d *= cfg_.spike_factor;
  return d;
}

void GameSession::tick(TimeMs now, const ResourceVector& supplied) {
  COCG_EXPECTS(started_ && !finished_);
  const DurationMs dt = cfg_.tick_ms;
  const PlannedStage& ps = plan_[stage_idx_];
  const StageTypeSpec& st = spec_->stage_type(ps.stage_type);

  const double sat =
      std::clamp(pending_demand_.satisfaction_ratio(supplied), 0.0, 1.0);

  elapsed_ms_ += dt;
  stage_elapsed_ms_ += dt;

  bool advance = false;
  if (st.kind == StageKind::kLoading) {
    loading_ms_ += dt;
    last_fps_ = 0.0;  // black screen while loading
    if (!loading_hold_) {
      // Loading is CPU/IO-bound: progress rate follows the CPU dimension.
      const double cpu_need = pending_demand_[Dim::kCpuPct];
      const double cpu_got = supplied[Dim::kCpuPct];
      const double rate =
          cpu_need <= 0.0 ? 1.0 : std::clamp(cpu_got / cpu_need, 0.0, 1.0);
      loading_progress_ms_ += static_cast<DurationMs>(
          rate * static_cast<double>(dt));
      if (loading_progress_ms_ >= ps.planned_dwell_ms) advance = true;
    }
  } else {
    execution_ms_ += dt;
    const double achievable = achievable_fps();
    const double realized =
        achievable * std::pow(sat, cfg_.fps_exponent);
    last_fps_ = realized;
    fps_sum_ += realized;
    fps_ratio_sum_ += achievable > 0.0 ? realized / achievable : 1.0;
    ++fps_samples_;
    if (realized < cfg_.qos_fps_floor) qos_violation_ms_ += dt;
    // Execution advances in wall time: user influence fixed the dwell.
    if (stage_elapsed_ms_ >= ps.planned_dwell_ms) advance = true;

    // Transient demand fluctuation bookkeeping.
    if (spike_ticks_left_ > 0) {
      --spike_ticks_left_;
    } else if (cfg_.spike_prob > 0.0 && rng_.chance(cfg_.spike_prob)) {
      // The guard is not just an optimization: chance() consumes a draw even
      // at p=0, and spike-free configs must leave the RNG untouched so the
      // macro-tick fast-forward (which draws nothing) stays bit-identical.
      spike_ticks_left_ = static_cast<int>(
          rng_.uniform_int(cfg_.spike_min_ticks, cfg_.spike_max_ticks));
    }
  }

  if (advance) {
    if (stage_idx_ + 1 >= plan_.size()) {
      finished_ = true;
      end_time_ = now + dt;
      return;
    }
    enter_stage(stage_idx_ + 1);
  } else {
    update_pending_demand(noisy_demand(active_cluster()));
  }
}

std::int64_t GameSession::quiescent_ticks(
    const ResourceVector& supplied) const {
  if (!started_ || finished_) return 0;
  const DurationMs dt = cfg_.tick_ms;
  const PlannedStage& ps = plan_[stage_idx_];
  const StageTypeSpec& st = spec_->stage_type(ps.stage_type);
  if (!active_cluster().jitter.is_zero()) return 0;  // per-tick redraw
  if (st.kind == StageKind::kLoading) {
    // spike_ticks_left_ is frozen during loading (the bookkeeping lives in
    // the execution branch), so an active spike just scales demand by a
    // constant — still quiescent.
    if (loading_hold_) return kQuiescentUnbounded;
    const double cpu_need = pending_demand_[Dim::kCpuPct];
    const double cpu_got = supplied[Dim::kCpuPct];
    const double rate =
        cpu_need <= 0.0 ? 1.0 : std::clamp(cpu_got / cpu_need, 0.0, 1.0);
    const auto per_tick =
        static_cast<DurationMs>(rate * static_cast<double>(dt));
    if (per_tick <= 0) return kQuiescentUnbounded;  // starved: no progress
    const DurationMs remaining = ps.planned_dwell_ms - loading_progress_ms_;
    const DurationMs to_advance = (remaining + per_tick - 1) / per_tick;
    return std::max<std::int64_t>(
        0, static_cast<std::int64_t>(to_advance) - 1);
  }
  // Execution: when spikes are possible, every tick draws chance(); when one
  // is active, its countdown mutates demand at an RNG-decided boundary.
  if (cfg_.spike_prob > 0.0 || spike_ticks_left_ > 0) return 0;
  const DurationMs remaining = ps.planned_dwell_ms - stage_elapsed_ms_;
  DurationMs to_boundary = (remaining + dt - 1) / dt;  // stage advance
  if (ps.cluster_order.size() > 1) {
    // Cluster rotation changes achievable_fps and the demand centroid; the
    // rotation tick must run for real.
    const auto n = static_cast<DurationMs>(ps.cluster_order.size());
    const DurationMs share = std::max<DurationMs>(1, ps.planned_dwell_ms / n);
    const auto pos = std::min<DurationMs>(stage_elapsed_ms_ / share, n - 1);
    if (pos < n - 1) {
      const DurationMs rot_remaining = (pos + 1) * share - stage_elapsed_ms_;
      to_boundary = std::min(to_boundary, (rot_remaining + dt - 1) / dt);
    }
  }
  return std::max<std::int64_t>(
      0, static_cast<std::int64_t>(to_boundary) - 1);
}

void GameSession::fast_forward(std::int64_t w, const ResourceVector& supplied) {
  COCG_EXPECTS(started_ && !finished_);
  COCG_EXPECTS(w >= 1);
  COCG_EXPECTS_MSG(w <= quiescent_ticks(supplied),
                   "fast_forward window crosses a session boundary");
  const DurationMs dt = cfg_.tick_ms;
  const DurationMs wdt = static_cast<DurationMs>(w) * dt;
  const PlannedStage& ps = plan_[stage_idx_];
  const StageTypeSpec& st = spec_->stage_type(ps.stage_type);
  const double sat =
      std::clamp(pending_demand_.satisfaction_ratio(supplied), 0.0, 1.0);

  elapsed_ms_ += wdt;
  stage_elapsed_ms_ += wdt;

  if (st.kind == StageKind::kLoading) {
    loading_ms_ += wdt;
    last_fps_ = 0.0;  // black screen while loading
    if (!loading_hold_) {
      const double cpu_need = pending_demand_[Dim::kCpuPct];
      const double cpu_got = supplied[Dim::kCpuPct];
      const double rate =
          cpu_need <= 0.0 ? 1.0 : std::clamp(cpu_got / cpu_need, 0.0, 1.0);
      // The per-tick path truncates once per tick; truncate first, then
      // multiply by the exact integer w.
      const auto per_tick =
          static_cast<DurationMs>(rate * static_cast<double>(dt));
      loading_progress_ms_ += static_cast<DurationMs>(w) * per_tick;
      COCG_ENSURES(loading_progress_ms_ < ps.planned_dwell_ms);
    }
  } else {
    execution_ms_ += wdt;
    const double achievable = achievable_fps();
    const double realized = achievable * std::pow(sat, cfg_.fps_exponent);
    last_fps_ = realized;
    const double ratio = achievable > 0.0 ? realized / achievable : 1.0;
    // Strictly sequential adds: w * realized would reassociate the
    // accumulation and drift from the per-tick path's bits.
    for (std::int64_t k = 0; k < w; ++k) {
      fps_sum_ += realized;
      fps_ratio_sum_ += ratio;
    }
    fps_samples_ += static_cast<std::size_t>(w);
    if (realized < cfg_.qos_fps_floor) qos_violation_ms_ += wdt;
    COCG_ENSURES(stage_elapsed_ms_ < ps.planned_dwell_ms);
  }
  // pending_demand_ is a fixed point here (jitter off, spike state frozen),
  // so the per-tick reassignment would be a value no-op: skip it and leave
  // demand_version_ untouched.
}

DurationMs GameSession::loading_extension_ms() const {
  return std::max<DurationMs>(0, loading_ms_ - nominal_loading_ms_);
}

double GameSession::mean_fps_ratio() const {
  if (fps_samples_ == 0) return 1.0;
  return fps_ratio_sum_ / static_cast<double>(fps_samples_);
}

double GameSession::mean_fps() const {
  if (fps_samples_ == 0) return 0.0;
  return fps_sum_ / static_cast<double>(fps_samples_);
}

}  // namespace cocg::game
