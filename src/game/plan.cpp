#include "game/plan.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace cocg::game {

namespace {

PlannedStage instantiate_stage(const GameSpec& spec, int stage_type,
                               Rng& rng) {
  const StageTypeSpec& st = spec.stage_type(stage_type);
  PlannedStage ps;
  ps.stage_type = stage_type;
  ps.planned_dwell_ms = rng.uniform_int(st.min_dwell_ms, st.max_dwell_ms);
  ps.cluster_order = st.clusters;
  if (st.shuffle_clusters && ps.cluster_order.size() > 1) {
    rng.shuffle(ps.cluster_order.begin(), ps.cluster_order.end());
  }
  return ps;
}

}  // namespace

std::vector<PlannedStage> generate_plan(const GameSpec& spec,
                                        std::size_t script_idx,
                                        std::uint64_t player_id, Rng& rng) {
  COCG_EXPECTS(script_idx < spec.scripts.size());
  const ScriptSpec& script = spec.scripts[script_idx];

  // Decide segment order: mobile players reorder tasks by a stable personal
  // preference derived from their player id.
  std::vector<std::size_t> order(script.segments.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  if (script.player_order && spec.category == GameCategory::kMobile) {
    Rng pref(player_id ^ (spec.id.value * 0x9e3779b97f4a7c15ULL));
    pref.shuffle(order.begin(), order.end());
  }

  std::vector<PlannedStage> plan;
  // Initialization loading.
  plan.push_back(instantiate_stage(spec, spec.loading_stage_type, rng));

  for (std::size_t oi : order) {
    const ScriptSegment& seg = script.segments[oi];
    COCG_EXPECTS(seg.stage_type >= 0 &&
                 seg.stage_type < spec.num_stage_types());
    COCG_EXPECTS(spec.stage_type(seg.stage_type).kind ==
                 StageKind::kExecution);
    if (seg.skip_prob > 0.0 && rng.chance(seg.skip_prob)) continue;
    COCG_EXPECTS(seg.min_repeat >= 1 && seg.max_repeat >= seg.min_repeat);
    const auto repeats =
        static_cast<int>(rng.uniform_int(seg.min_repeat, seg.max_repeat));
    for (int r = 0; r < repeats; ++r) {
      plan.push_back(instantiate_stage(spec, seg.stage_type, rng));
      // Runtime loading between stages; the last one doubles as shutdown.
      plan.push_back(instantiate_stage(spec, spec.loading_stage_type, rng));
    }
  }
  COCG_ENSURES(plan.size() >= 1);
  return plan;
}

DurationMs plan_nominal_duration(const std::vector<PlannedStage>& plan) {
  DurationMs total = 0;
  for (const auto& ps : plan) total += ps.planned_dwell_ms;
  return total;
}

std::vector<int> plan_stage_types(const std::vector<PlannedStage>& plan) {
  std::vector<int> out;
  out.reserve(plan.size());
  for (const auto& ps : plan) out.push_back(ps.stage_type);
  return out;
}

}  // namespace cocg::game
