#include "game/library.h"

#include "common/check.h"

namespace cocg::game {

namespace {

// Jitter proportional to the centroid keeps noise realistic across clusters.
ResourceVector jitter_for(const ResourceVector& centroid, double rel = 0.05) {
  ResourceVector j = centroid * rel;
  // Floors so even tiny clusters wiggle visibly.
  j[Dim::kCpuPct] = std::max(j[Dim::kCpuPct], 0.5);
  j[Dim::kGpuPct] = std::max(j[Dim::kGpuPct], 0.5);
  j[Dim::kGpuMemMb] = std::max(j[Dim::kGpuMemMb], 10.0);
  j[Dim::kRamMb] = std::max(j[Dim::kRamMb], 10.0);
  return j;
}

FrameClusterSpec cluster(int id, std::string name, ResourceVector centroid,
                         double fps_base) {
  FrameClusterSpec c;
  c.id = id;
  c.name = std::move(name);
  c.centroid = centroid;
  c.jitter = jitter_for(centroid);
  c.fps_base = fps_base;
  return c;
}

StageTypeSpec loading_stage(int id, double nominal_lo_s, double nominal_hi_s,
                            int cluster_id) {
  StageTypeSpec st;
  st.id = id;
  st.name = "Loading";
  st.kind = StageKind::kLoading;
  st.clusters = {cluster_id};
  st.min_dwell_ms = sec_to_ms(nominal_lo_s);
  st.max_dwell_ms = sec_to_ms(nominal_hi_s);
  st.shuffle_clusters = false;
  return st;
}

StageTypeSpec exec_stage(int id, std::string name, std::vector<int> clusters,
                         double lo_s, double hi_s, bool shuffle = true) {
  StageTypeSpec st;
  st.id = id;
  st.name = std::move(name);
  st.kind = StageKind::kExecution;
  st.clusters = std::move(clusters);
  st.min_dwell_ms = sec_to_ms(lo_s);
  st.max_dwell_ms = sec_to_ms(hi_s);
  st.shuffle_clusters = shuffle;
  return st;
}

}  // namespace

GameSpec make_contra() {
  GameSpec g;
  g.id = GameId{4};
  g.name = "Contra";
  g.category = GameCategory::kWeb;
  g.fps_cap = 60.0;
  g.short_game = true;

  // Fig. 14: 2 clusters — "the loading and the running".
  g.clusters = {
      cluster(0, "loading", {35, 3, 300, 800}, 0.0),
      cluster(1, "running", {18, 22, 500, 900}, 60.0),
  };
  g.stage_types = {
      loading_stage(0, 5, 8, 0),
      exec_stage(1, "Level", {1}, 110, 180, false),
  };
  g.loading_stage_type = 0;

  // Table I: three scripts — first level / first two / first three.
  for (int levels = 1; levels <= 3; ++levels) {
    ScriptSpec s;
    s.name = "script " + std::to_string(levels);
    s.description = "first " + std::to_string(levels) +
                    (levels == 1 ? " level" : " levels");
    for (int l = 0; l < levels; ++l) {
      s.segments.push_back(ScriptSegment{1, 1, 1, 0.0});
    }
    g.scripts.push_back(std::move(s));
  }
  return g;
}

GameSpec make_csgo() {
  GameSpec g;
  g.id = GameId{1};
  g.name = "CSGO";
  g.category = GameCategory::kMoba;  // complex stages + high user influence
  g.fps_cap = 0.0;                   // uncapped (§V-C2)
  g.short_game = false;

  // Fig. 14: 4 clusters.
  g.clusters = {
      cluster(0, "loading", {60, 8, 1500, 2500}, 0.0),
      cluster(1, "buy/warmup", {33, 38, 2200, 3000}, 200.0),
      cluster(2, "combat", {46, 62, 2400, 3000}, 160.0),
      cluster(3, "training-map", {24, 50, 1500, 2200}, 220.0),
  };
  g.stage_types = {
      loading_stage(0, 8, 16, 0),
      exec_stage(1, "BuyPhase", {1}, 20, 40),
      exec_stage(2, "RoundCombat", {2}, 90, 150),
      exec_stage(3, "Training", {3}, 420, 560),
      exec_stage(4, "Overtime", {2, 3}, 120, 200),
  };
  g.loading_stage_type = 0;

  {
    // Table I script 1: a match with 9 bots → 4 stage types
    // (loading, buy, combat, overtime).
    ScriptSpec s;
    s.name = "script 1";
    s.description = "conducting a match with 9 bots";
    s.segments = {
        ScriptSegment{1, 1, 1, 0.0},
        ScriptSegment{2, 6, 10, 0.0},  // user-influenced round count
        ScriptSegment{4, 1, 1, 0.2},   // overtime happens for most runs
    };
    g.scripts.push_back(std::move(s));
  }
  {
    // Table I script 2: moving in the training map without shooting
    // → 3 stage types (loading, buy, training).
    ScriptSpec s;
    s.name = "script 2";
    s.description = "moving in the training map without shooting";
    s.segments = {
        ScriptSegment{1, 1, 1, 0.0},
        ScriptSegment{3, 1, 1, 0.0},
    };
    g.scripts.push_back(std::move(s));
  }
  return g;
}

GameSpec make_dota2() {
  GameSpec g;
  g.id = GameId{0};
  g.name = "DOTA2";
  g.category = GameCategory::kMoba;
  g.fps_cap = 0.0;  // uncapped
  g.short_game = false;

  // Fig. 14: 5 clusters. GPU peak ≈43% (Fig. 9).
  g.clusters = {
      cluster(0, "loading", {65, 7, 1800, 2600}, 0.0),
      cluster(1, "laning", {34, 18, 2200, 2900}, 150.0),
      cluster(2, "teamfight", {50, 43, 2700, 3400}, 120.0),
      cluster(3, "push", {41, 30, 3200, 2700}, 130.0),
      cluster(4, "arcade-td", {27, 14, 1500, 2200}, 160.0),
  };
  g.stage_types = {
      loading_stage(0, 12, 25, 0),
      exec_stage(1, "Laning", {1}, 300, 480),
      exec_stage(2, "Fights", {2, 3}, 500, 900),
      exec_stage(3, "TowerDefense", {4}, 400, 650),
      exec_stage(4, "TDFinale", {4, 2}, 150, 260),
  };
  g.loading_stage_type = 0;

  {
    // Table I script 1: match with 9 bots → 3 stage types.
    ScriptSpec s;
    s.name = "script 1";
    s.description = "conducting a match with 9 bots";
    s.segments = {
        ScriptSegment{1, 1, 1, 0.0},
        ScriptSegment{2, 2, 3, 0.0},
    };
    g.scripts.push_back(std::move(s));
  }
  {
    // Table I script 2: tower-defense arcade game → 3 stage types.
    ScriptSpec s;
    s.name = "script 2";
    s.description = "playing a tower defense game in the arcade";
    s.segments = {
        ScriptSegment{3, 1, 1, 0.0},
        ScriptSegment{4, 1, 1, 0.0},
    };
    g.scripts.push_back(std::move(s));
  }
  return g;
}

GameSpec make_genshin() {
  GameSpec g;
  g.id = GameId{2};
  g.name = "Genshin Impact";
  g.category = GameCategory::kMobile;
  g.fps_cap = 60.0;  // manufacturer-locked (§V-C2)
  g.short_game = true;

  // Fig. 14: 4 clusters. Battle peak ≈78% GPU (Fig. 9), allocation study
  // Fig. 10 reports ≈65% max overall demand.
  g.clusters = {
      cluster(0, "loading", {58, 6, 2000, 2800}, 0.0),
      cluster(1, "run/explore", {35, 48, 2600, 3200}, 60.0),
      cluster(2, "battle", {50, 78, 3000, 3400}, 60.0),
      cluster(3, "fly", {30, 40, 2500, 3100}, 60.0),
  };
  g.stage_types = {
      loading_stage(0, 10, 22, 0),
      exec_stage(1, "Run", {1}, 150, 260),
      exec_stage(2, "Battle", {2}, 120, 220),
      exec_stage(3, "Fly", {3}, 90, 170),
      exec_stage(4, "Domain", {2, 1}, 140, 240),
  };
  g.loading_stage_type = 0;

  // Table I: three scripts = the same three tasks in different orders,
  // 5 stage types each. Daily-task players additionally reorder by their
  // own preference (player_order).
  const std::vector<std::vector<int>> orders = {
      {1, 2, 3}, {3, 2, 1}, {2, 1, 3}};
  const std::vector<std::string> descs = {
      "run + battle + fly", "fly + battle + run", "battle + run + fly"};
  for (std::size_t i = 0; i < orders.size(); ++i) {
    ScriptSpec s;
    s.name = "script " + std::to_string(i + 1);
    s.description = descs[i];
    for (int st : orders[i]) {
      s.segments.push_back(ScriptSegment{st, 1, 1, 0.0});
    }
    s.segments.push_back(ScriptSegment{4, 1, 1, 0.0});  // daily domain
    s.player_order = true;
    g.scripts.push_back(std::move(s));
  }
  return g;
}

GameSpec make_devil_may_cry() {
  GameSpec g;
  g.id = GameId{3};
  g.name = "Devil May Cry";
  g.category = GameCategory::kConsole;
  g.fps_cap = 60.0;  // manufacturer-locked (§V-C2)
  g.short_game = false;

  // Fig. 14: 6 clusters. Heavy console title: big peaks so DOTA2+DMC peak
  // sums exceed one server (Fig. 11's hard pair).
  g.clusters = {
      cluster(0, "loading", {62, 8, 2400, 3000}, 0.0),
      cluster(1, "explore", {38, 52, 2800, 3300}, 60.0),
      cluster(2, "combat", {52, 70, 3000, 3400}, 60.0),
      cluster(3, "cutscene", {24, 34, 2400, 3000}, 60.0),
      cluster(4, "boss", {60, 76, 3800, 4100}, 60.0),
      cluster(5, "menu", {15, 12, 1200, 2400}, 60.0),
  };
  g.stage_types = {
      loading_stage(0, 15, 30, 0),
      exec_stage(1, "Level1Mix", {1, 2}, 500, 800),
      exec_stage(2, "Explore", {1}, 240, 420),
      exec_stage(3, "Combat", {2}, 200, 360),
      exec_stage(4, "Cutscene", {3}, 60, 120, false),
      exec_stage(5, "BossFight", {4, 2}, 180, 320),
      exec_stage(6, "Menu", {5}, 40, 90, false),
  };
  g.loading_stage_type = 0;

  {
    // Table I script 1: first level, simple mode → 2 stage types.
    ScriptSpec s;
    s.name = "script 1";
    s.description = "first level in simple mode";
    s.segments = {ScriptSegment{1, 1, 1, 0.0}};
    g.scripts.push_back(std::move(s));
  }
  {
    // Table I script 2: second level → 4 stage types.
    ScriptSpec s;
    s.name = "script 2";
    s.description = "second level in simple mode";
    s.segments = {
        ScriptSegment{2, 1, 1, 0.0},
        ScriptSegment{3, 1, 2, 0.0},
        ScriptSegment{4, 1, 1, 0.3},  // some players skip the cutscene
    };
    g.scripts.push_back(std::move(s));
  }
  {
    // Table I script 3: third level → 6 stage types.
    ScriptSpec s;
    s.name = "script 3";
    s.description = "third level in simple mode";
    s.segments = {
        ScriptSegment{2, 1, 1, 0.0},
        ScriptSegment{3, 1, 2, 0.0},
        ScriptSegment{4, 1, 1, 0.3},
        ScriptSegment{5, 1, 1, 0.0},
        ScriptSegment{6, 1, 1, 0.4},
    };
    g.scripts.push_back(std::move(s));
  }
  return g;
}

GameSpec make_honkai() {
  GameSpec g;
  g.id = GameId{5};
  g.name = "Honkai: Star Rail";
  g.category = GameCategory::kMobile;
  g.fps_cap = 60.0;
  g.short_game = false;

  // Fig. 2's three main scenes: walking the main world (mid GPU),
  // fighting in instance zones (peak GPU), interacting with NPCs (low
  // GPU), plus the loading interface (high CPU, black screen).
  g.clusters = {
      cluster(0, "loading", {60, 6, 2200, 2900}, 0.0),
      cluster(1, "main-world", {38, 52, 2800, 3300}, 60.0),
      cluster(2, "instance-fight", {52, 74, 3200, 3600}, 60.0),
      cluster(3, "npc-dialogue", {22, 28, 2400, 3000}, 60.0),
  };
  // Open-world: long execution stages (§III) with loading between.
  g.stage_types = {
      loading_stage(0, 12, 25, 0),
      exec_stage(1, "MainWorld", {1}, 360, 600),
      exec_stage(2, "InstanceZone", {2}, 240, 420),
      exec_stage(3, "NpcInteraction", {3}, 120, 240, false),
  };
  g.loading_stage_type = 0;

  {
    // The Fig. 2 play-through: world → fight → NPC, long dwells.
    ScriptSpec s;
    s.name = "script 1";
    s.description = "main world + instance zone + NPC interaction";
    s.segments = {
        ScriptSegment{1, 1, 1, 0.0},
        ScriptSegment{2, 1, 1, 0.0},
        ScriptSegment{3, 1, 1, 0.0},
    };
    s.player_order = true;  // daily players order tasks their own way
    g.scripts.push_back(std::move(s));
  }
  {
    ScriptSpec s;
    s.name = "script 2";
    s.description = "two instance zones back to back";
    s.segments = {
        ScriptSegment{2, 2, 2, 0.0},
        ScriptSegment{3, 1, 1, 0.3},
    };
    g.scripts.push_back(std::move(s));
  }
  return g;
}

std::vector<GameSpec> paper_suite() {
  return {make_dota2(), make_csgo(), make_genshin(), make_devil_may_cry(),
          make_contra()};
}

GameSpec game_by_name(const std::string& name) {
  for (auto& g : paper_suite()) {
    if (g.name == name) return g;
  }
  COCG_CHECK_MSG(false, "unknown game: " + name);
  return {};  // unreachable
}

}  // namespace cocg::game
