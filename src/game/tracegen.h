// Offline profiling-run generation.
//
// The paper trains CoCG on (a) traces collected from repeated laboratory
// runs and (b) Alibaba-cloud player logs (§V-D2). We reproduce both as
// synthetic generators: full-supply solo runs recorded as telemetry traces
// (the profiler's clustering input) and bulk stage-sequence corpora (the
// predictor's training input).
#pragma once

#include <cstdint>
#include <vector>

#include "game/spec.h"
#include "telemetry/trace.h"

namespace cocg::game {

struct TraceGenConfig {
  DurationMs sample_period_ms = 1000;
  /// Relative stddev of measurement noise added by the (simulated) probe.
  double measurement_noise_rel = 0.02;
};

/// Run one scripted play-through standalone on an idle server (demand fully
/// supplied) and record its telemetry trace.
telemetry::Trace profile_run(const GameSpec& spec, std::size_t script_idx,
                             std::uint64_t player_id, std::uint64_t seed,
                             const TraceGenConfig& cfg = {});

/// One realized play-through's stage-type sequence.
struct RunRecord {
  std::size_t script_idx = 0;
  std::uint64_t player_id = 0;
  std::vector<int> stage_seq;
};

/// Generate `n_runs` play-throughs across `n_players` players with scripts
/// chosen uniformly ("when a game is assigned, it randomly selects one from
/// the scripts", §V-B2).
std::vector<RunRecord> generate_corpus(const GameSpec& spec, int n_runs,
                                       int n_players, std::uint64_t seed);

}  // namespace cocg::game
