#include "game/spec.h"

#include <set>

#include "common/check.h"

namespace cocg::game {

const char* category_name(GameCategory c) {
  switch (c) {
    case GameCategory::kWeb: return "web";
    case GameCategory::kMobile: return "mobile";
    case GameCategory::kConsole: return "console";
    case GameCategory::kMoba: return "mmorpg/moba";
  }
  return "?";
}

ResourceVector GameSpec::peak_demand() const {
  ResourceVector peak;
  for (const auto& st : stage_types) {
    if (st.kind != StageKind::kExecution) continue;
    for (int c : st.clusters) {
      peak = ResourceVector::max(peak, cluster(c).centroid);
    }
  }
  return peak;
}

ResourceVector GameSpec::mean_execution_demand() const {
  ResourceVector acc;
  int n = 0;
  for (const auto& st : stage_types) {
    if (st.kind != StageKind::kExecution) continue;
    for (int c : st.clusters) {
      acc += cluster(c).centroid;
      ++n;
    }
  }
  if (n == 0) return acc;
  return acc * (1.0 / n);
}

int GameSpec::script_stage_type_count(std::size_t script_idx) const {
  COCG_EXPECTS(script_idx < scripts.size());
  std::set<int> types;
  types.insert(loading_stage_type);
  for (const auto& seg : scripts[script_idx].segments) {
    types.insert(seg.stage_type);
  }
  return static_cast<int>(types.size());
}

}  // namespace cocg::game
