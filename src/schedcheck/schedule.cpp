#include "schedcheck/schedule.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/textio.h"

namespace cocg::schedcheck {

namespace {

constexpr const char* kMagic = "cocg-sched-v1";

const char* kPointNames[kNumPoints] = {
    "router_choice",     "admission",      "migration_trigger",
    "regulator_victim",  "regulator_hold", "executor_sync",
    "executor_steal",
};

void require_single_token(const std::string& s, const char* what) {
  if (s.empty() || s.find(' ') != std::string::npos ||
      s.find('\n') != std::string::npos ||
      s.find('\r') != std::string::npos) {
    throw std::runtime_error(std::string("write_schedule: ") + what +
                             " must be one non-empty token, got '" + s + "'");
  }
}

void require_single_line(const std::string& s, const char* what) {
  if (s.find('\n') != std::string::npos ||
      s.find('\r') != std::string::npos) {
    throw std::runtime_error(std::string("write_schedule: ") + what +
                             " contains a line break: '" + s + "'");
  }
}

}  // namespace

const char* point_name(Point p) {
  const auto idx = static_cast<std::size_t>(p);
  if (idx >= kNumPoints) {
    throw std::runtime_error("invalid schedule point id " +
                             std::to_string(idx));
  }
  return kPointNames[idx];
}

std::optional<Point> parse_point(const std::string& name) {
  for (std::size_t i = 0; i < kNumPoints; ++i) {
    if (name == kPointNames[i]) return static_cast<Point>(i);
  }
  return std::nullopt;
}

bool operator==(const Record& a, const Record& b) {
  return a.point == b.point && a.t == b.t && a.seq == b.seq &&
         a.nchoices == b.nchoices && a.choice == b.choice;
}

std::size_t Schedule::total_records() const {
  std::size_t n = 0;
  for (const auto& s : streams) n += s.size();
  return n;
}

std::string Schedule::meta_value(const std::string& key) const {
  for (const auto& [k, v] : meta) {
    if (k == key) return v;
  }
  return {};
}

void Schedule::set_meta(const std::string& key, const std::string& value) {
  for (auto& [k, v] : meta) {
    if (k == key) {
      v = value;
      return;
    }
  }
  meta.emplace_back(key, value);
}

bool operator==(const Schedule& a, const Schedule& b) {
  return a.meta == b.meta && a.streams == b.streams;
}

void write_schedule(const Schedule& s, std::ostream& os) {
  if (s.streams.empty()) {
    throw std::runtime_error(
        "write_schedule: a schedule needs at least the coordinator stream");
  }
  os << kMagic << '\n';
  for (const auto& [k, v] : s.meta) {
    require_single_token(k, "meta key");
    require_single_line(v, "meta value");
    os << "meta " << k << ' ' << v << '\n';
  }
  os << "points " << kNumPoints << '\n';
  for (std::size_t i = 0; i < kNumPoints; ++i) {
    os << "point " << i << ' ' << kPointNames[i] << '\n';
  }
  os << "streams " << s.streams.size() << '\n';
  for (std::size_t si = 0; si < s.streams.size(); ++si) {
    const auto& recs = s.streams[si];
    os << "stream " << si << ' ' << recs.size() << '\n';
    std::uint64_t prev_seq = 0;
    bool first = true;
    for (const auto& r : recs) {
      const auto pid = static_cast<std::size_t>(r.point);
      if (pid >= kNumPoints) {
        throw std::runtime_error("write_schedule: invalid point id " +
                                 std::to_string(pid));
      }
      if (!first && r.seq <= prev_seq) {
        throw std::runtime_error(
            "write_schedule: stream " + std::to_string(si) +
            " record seqs must be strictly increasing (seq " +
            std::to_string(r.seq) + " after " + std::to_string(prev_seq) +
            ")");
      }
      first = false;
      prev_seq = r.seq;
      os << "r " << pid << ' ' << r.t << ' ' << r.seq << ' ' << r.nchoices
         << ' ' << r.choice << '\n';
    }
  }
  os << "end\n";
}

std::string schedule_text(const Schedule& s) {
  std::ostringstream os;
  write_schedule(s, os);
  return os.str();
}

Schedule read_schedule(std::istream& is) {
  LineReader r(is, "schedule");
  const std::string magic = r.line("magic");
  if (magic != kMagic) {
    r.fail("expected magic '" + std::string(kMagic) + "', got '" + magic +
           "'");
  }

  Schedule sched;
  std::string l = r.line("meta or points");
  while (l.rfind("meta ", 0) == 0) {
    std::istringstream ls(l.substr(5));
    std::string key;
    if (!(ls >> key)) r.fail("meta line missing key");
    std::string value;
    std::getline(ls, value);
    if (!value.empty() && value[0] == ' ') value = value.substr(1);
    sched.meta.emplace_back(key, value);
    l = r.line("meta or points");
  }

  {
    if (l.rfind("points ", 0) != 0) {
      r.fail("expected 'points', got '" + l + "'");
    }
    std::istringstream ls(l.substr(7));
    const auto n = r.field<std::size_t>(ls, "point count");
    if (n != kNumPoints) {
      r.fail("schedule declares " + std::to_string(n) +
             " points, this build has " + std::to_string(kNumPoints) +
             " — incompatible schedule version");
    }
    for (std::size_t i = 0; i < n; ++i) {
      std::istringstream pl = r.expect("point ");
      const auto idx = r.field<std::size_t>(pl, "point id");
      const auto name = r.field<std::string>(pl, "point name");
      if (idx != i) r.fail("point ids must be dense and in order");
      if (name != kPointNames[i]) {
        r.fail("point " + std::to_string(i) + " is named '" + name +
               "' in the schedule but '" + kPointNames[i] +
               "' in this build — incompatible schedule version");
      }
    }
  }

  {
    std::istringstream ls = r.expect("streams ");
    const auto n = r.field<std::size_t>(ls, "stream count");
    if (n == 0) r.fail("a schedule needs at least the coordinator stream");
    if (n > 100000) r.fail("implausible stream count");
    sched.streams.resize(n);
    for (std::size_t si = 0; si < n; ++si) {
      std::istringstream sl = r.expect("stream ");
      const auto idx = r.field<std::size_t>(sl, "stream index");
      const auto count = r.field<std::size_t>(sl, "record count");
      if (idx != si) r.fail("stream indices must be dense and in order");
      auto& recs = sched.streams[si];
      recs.reserve(count);
      std::uint64_t prev_seq = 0;
      for (std::size_t ri = 0; ri < count; ++ri) {
        std::istringstream rl = r.expect("r ");
        Record rec;
        const auto pid = r.field<std::size_t>(rl, "point id");
        if (pid >= kNumPoints) {
          r.fail("point id " + std::to_string(pid) + " out of range");
        }
        rec.point = static_cast<Point>(pid);
        rec.t = r.field<TimeMs>(rl, "time");
        rec.seq = r.field<std::uint64_t>(rl, "seq");
        rec.nchoices = r.field<std::uint32_t>(rl, "nchoices");
        rec.choice = r.field<std::uint32_t>(rl, "choice");
        if (rec.nchoices == 0) r.fail("nchoices must be positive");
        if (ri > 0 && rec.seq <= prev_seq) {
          r.fail("record seqs must be strictly increasing within a stream");
        }
        prev_seq = rec.seq;
        recs.push_back(rec);
      }
    }
  }

  {
    const std::string end = r.line("end");
    if (end != "end") r.fail("expected 'end', got '" + end + "'");
  }
  return sched;
}

Schedule load_schedule(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("cannot open schedule file '" + path + "'");
  }
  return read_schedule(is);
}

void save_schedule(const Schedule& s, const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("cannot open schedule file '" + path +
                             "' for writing");
  }
  write_schedule(s, os);
  os.flush();
  if (!os) {
    throw std::runtime_error("failed writing schedule file '" + path + "'");
  }
}

}  // namespace cocg::schedcheck
