#include "schedcheck/minimize.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "common/check.h"

namespace cocg::schedcheck {

namespace {

/// Flattened handle on one record of the original schedule.
struct Item {
  std::size_t stream = 0;
  std::size_t idx = 0;
};

std::vector<Item> flatten(const Schedule& s) {
  std::vector<Item> out;
  for (std::size_t si = 0; si < s.streams.size(); ++si) {
    for (std::size_t ri = 0; ri < s.streams[si].size(); ++ri) {
      out.push_back(Item{si, ri});
    }
  }
  return out;
}

/// Rebuild a schedule keeping only `keep` (indices into the original
/// per-stream vectors, so relative order — and therefore seq order — is
/// preserved automatically).
Schedule subset(const Schedule& base, const std::vector<Item>& keep) {
  Schedule out;
  out.meta = base.meta;
  out.streams.resize(base.streams.size());
  for (const Item& it : keep) {
    out.streams[it.stream].push_back(base.streams[it.stream][it.idx]);
  }
  return out;
}

}  // namespace

MinimizeResult minimize(const Schedule& failing, const FailsFn& fails,
                        const MinimizeOptions& opts) {
  COCG_EXPECTS(fails != nullptr);
  COCG_EXPECTS(opts.max_runs >= 1);

  MinimizeResult res;
  res.schedule = failing;

  std::vector<Item> items = flatten(failing);
  if (items.empty()) {
    res.minimal = true;
    return res;
  }
  if (!fails(failing)) {
    throw std::invalid_argument(
        "minimize: the input schedule does not reproduce the failure");
  }
  ++res.runs;

  // Classic ddmin: try removing chunks, refining granularity on failure
  // to make progress. `items` always denotes a failing configuration.
  std::size_t granularity = 2;
  while (items.size() >= 2 && res.runs < opts.max_runs) {
    const std::size_t n = items.size();
    granularity = std::min(granularity, n);
    const std::size_t chunk = (n + granularity - 1) / granularity;
    bool reduced = false;
    for (std::size_t start = 0; start < n && res.runs < opts.max_runs;
         start += chunk) {
      const std::size_t stop = std::min(start + chunk, n);
      // Complement: everything except [start, stop).
      std::vector<Item> candidate;
      candidate.reserve(n - (stop - start));
      candidate.insert(candidate.end(), items.begin(),
                       items.begin() + static_cast<std::ptrdiff_t>(start));
      candidate.insert(candidate.end(),
                       items.begin() + static_cast<std::ptrdiff_t>(stop),
                       items.end());
      if (candidate.empty()) continue;
      ++res.runs;
      if (fails(subset(failing, candidate))) {
        items = std::move(candidate);
        granularity = std::max<std::size_t>(2, granularity - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (granularity >= items.size()) {
        // Every single-record removal was tried and none reproduces:
        // the set is 1-minimal.
        res.minimal = true;
        break;
      }
      granularity = std::min(items.size(), granularity * 2);
    }
  }
  if (items.size() == 1) res.minimal = res.runs < opts.max_runs;

  res.schedule = subset(failing, items);
  return res;
}

}  // namespace cocg::schedcheck
