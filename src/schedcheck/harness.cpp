#include "schedcheck/harness.h"

#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/textio.h"
#include "core/model_bank.h"
#include "core/offline.h"
#include "core/scheduler_factory.h"
#include "fleet/fleet.h"
#include "game/library.h"

namespace cocg::schedcheck {

namespace {

/// Train-once cache: fuzzing runs thousands of fleets in one process, all
/// sharing one immutable compiled-model bank per training seed.
const core::ModelBank& bank_for_seed(std::uint64_t seed) {
  static std::mutex mu;
  static std::map<std::uint64_t, std::unique_ptr<core::ModelBank>> banks;
  std::lock_guard<std::mutex> lk(mu);
  auto it = banks.find(seed);
  if (it == banks.end()) {
    core::OfflineConfig ocfg;
    ocfg.profiling_runs = 8;
    ocfg.corpus_runs = 40;
    ocfg.seed = seed;
    auto bank = std::make_unique<core::ModelBank>();
    for (const auto& [name, tg] :
         core::train_suite(game::paper_suite(), ocfg)) {
      bank->add_trained(tg);
    }
    it = banks.emplace(seed, std::move(bank)).first;
  }
  return *it->second;
}

std::string join_csv(const std::vector<std::string>& items) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += ',';
    out += items[i];
  }
  return out;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::string cur;
  std::istringstream is(csv);
  while (std::getline(is, cur, ',')) {
    if (!cur.empty()) out.push_back(cur);
  }
  return out;
}

std::string require_meta(const Schedule& s, const std::string& key) {
  const std::string v = s.meta_value(key);
  if (v.empty()) {
    throw std::runtime_error("schedule meta is missing '" + key +
                             "' — not a schedcheck scenario artifact");
  }
  return v;
}

/// The shared body of record/replay/free runs.
RunOutcome run_scenario(const Scenario& sc, Session* session) {
  static const std::vector<game::GameSpec> suite = game::paper_suite();
  std::vector<const game::GameSpec*> games;
  for (const auto& name : sc.games) {
    const game::GameSpec* found = nullptr;
    for (const auto& g : suite) {
      if (g.name == name) found = &g;
    }
    if (found == nullptr) {
      throw std::runtime_error("unknown game in scenario: '" + name + "'");
    }
    games.push_back(found);
  }
  if (games.empty()) throw std::runtime_error("scenario has no games");

  const core::ModelBank& bank = bank_for_seed(sc.seed);
  fleet::FleetConfig fcfg;
  fcfg.shards = sc.shards;
  fcfg.threads = sc.threads;
  fcfg.runner = sc.runner;
  fcfg.policy = sc.policy;
  fcfg.seed = sc.seed;
  fcfg.platform.incremental_resolve = sc.quiescence;
  fcfg.platform.macro_ticks = sc.quiescence;
  fleet::Fleet sim(fcfg, [&](int) {
    return core::make_named_scheduler("cocg", bank, suite);
  });
  hw::ServerSpec spec;
  spec.num_gpus = sc.gpus;
  for (int i = 0; i < sc.servers; ++i) sim.add_server(spec);
  for (const auto* g : games) {
    sim.add_global_source({g, sc.arrivals_per_hour, 16});
  }

  sim.set_schedule_session(session);
  sim.set_barrier_hook([&sim](TimeMs t) {
    auto v = check_fleet(sim, t);
    if (!v.empty()) throw InvariantViolationError(std::move(v));
  });

  RunOutcome out;
  try {
    sim.run(static_cast<DurationMs>(sc.minutes) * 60 * 1000);
    out.report = fleet::report_json(sim.report());
  } catch (const InvariantViolationError& e) {
    out.aborted = true;
    out.violations = e.violations();
  }
  if (session != nullptr) {
    // finish() enforces full consumption under strict replay; an aborted
    // run legitimately leaves records unconsumed, so only snapshot there.
    out.stats = out.aborted ? session->stats() : session->finish();
    out.recorded = session->recorded();
    scenario_to_meta(sc, out.recorded);
  }
  return out;
}

}  // namespace

void scenario_to_meta(const Scenario& sc, Schedule& schedule) {
  schedule.set_meta("scenario", "1");
  schedule.set_meta("shards", std::to_string(sc.shards));
  schedule.set_meta("threads", std::to_string(sc.threads));
  schedule.set_meta("runner", fleet::runner_kind_name(sc.runner));
  schedule.set_meta("policy", fleet::router_policy_name(sc.policy));
  schedule.set_meta("servers", std::to_string(sc.servers));
  schedule.set_meta("gpus", std::to_string(sc.gpus));
  schedule.set_meta("minutes", std::to_string(sc.minutes));
  schedule.set_meta("games", join_csv(sc.games));
  std::ostringstream rate;
  {
    FullPrecision fp(rate);
    rate << sc.arrivals_per_hour;
  }
  schedule.set_meta("rate", rate.str());
  schedule.set_meta("seed", std::to_string(sc.seed));
  schedule.set_meta("quiescence", sc.quiescence ? "1" : "0");
}

Scenario scenario_from_meta(const Schedule& schedule) {
  Scenario sc;
  sc.shards = std::stoi(require_meta(schedule, "shards"));
  sc.threads = std::stoi(require_meta(schedule, "threads"));
  if (!fleet::parse_runner_kind(require_meta(schedule, "runner"),
                                sc.runner)) {
    throw std::runtime_error("schedule meta: unknown runner '" +
                             schedule.meta_value("runner") + "'");
  }
  const auto policy =
      fleet::parse_router_policy(require_meta(schedule, "policy"));
  if (!policy) {
    throw std::runtime_error("schedule meta: unknown policy '" +
                             schedule.meta_value("policy") + "'");
  }
  sc.policy = *policy;
  sc.servers = std::stoi(require_meta(schedule, "servers"));
  sc.gpus = std::stoi(require_meta(schedule, "gpus"));
  sc.minutes = std::stoi(require_meta(schedule, "minutes"));
  sc.games = split_csv(require_meta(schedule, "games"));
  sc.arrivals_per_hour = std::stod(require_meta(schedule, "rate"));
  sc.seed = std::stoull(require_meta(schedule, "seed"));
  // Optional: artifacts recorded before the quiescence engine carry no key
  // and replay under the (default-on) engine.
  const std::string q = schedule.meta_value("quiescence");
  if (!q.empty()) sc.quiescence = q != "0";
  return sc;
}

RunOutcome record_run(const Scenario& sc) {
  Session session(sc.shards);
  session.start_record();
  return run_scenario(sc, &session);
}

RunOutcome replay_run(const Scenario& sc, const Schedule& schedule,
                      bool strict, bool rerecord) {
  Session session(sc.shards);
  session.start_replay(schedule, strict, rerecord);
  return run_scenario(sc, &session);
}

RunOutcome free_run(const Scenario& sc) { return run_scenario(sc, nullptr); }

}  // namespace cocg::schedcheck
