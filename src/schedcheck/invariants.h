// Always-on invariant checkers the schedule fuzzer drives runs against.
//
// Checks run at fleet epoch barriers (every shard quiescent, load
// snapshots fresh) via Fleet::set_barrier_hook — the only points where a
// cross-shard structural audit is well-defined. They are structural, not
// behavioral: any schedule, however contorted, must keep them true; a
// violation is a real bug (or a planted fault), never an artifact of an
// unusual-but-legal interleaving.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.h"

namespace cocg::fleet {
class Fleet;
}
namespace cocg::platform {
class CloudPlatform;
}

namespace cocg::schedcheck {

struct Violation {
  std::string invariant;  ///< "double_host", "lost_session", ...
  std::string detail;
  TimeMs t = 0;
  int shard = -1;  ///< -1 for fleet-level checks
};

/// Carried out of an aborted run by the barrier hook; holds every
/// violation found at the failing barrier.
class InvariantViolationError : public std::runtime_error {
 public:
  explicit InvariantViolationError(std::vector<Violation> violations);
  const std::vector<Violation>& violations() const { return violations_; }

 private:
  std::vector<Violation> violations_;
};

/// Audit one shard platform at a quiescent point:
///  * double_host           — a session hosted on more than one server;
///  * placement_mismatch    — hosting disagrees with the session record;
///  * lost_session          — a tabled session hosted nowhere;
///  * conservation          — submitted != queued + running + completed
///                            (and admitted != running + completed);
///  * capacity              — negative allocation sums, out-of-range GPU
///                            index, or allocations beyond the legal
///                            oversubscription ceiling;
///  * table                 — SessionTable structural audit failed.
std::vector<Violation> check_platform(const platform::CloudPlatform& p,
                                      int shard, TimeMs t);

/// All shards plus the fleet-level router ledger
/// (arrivals_generated == Σ routed).
std::vector<Violation> check_fleet(const fleet::Fleet& fleet, TimeMs t);

/// One line per violation — diagnostics for logs and CLI output.
std::string describe(const std::vector<Violation>& violations);

}  // namespace cocg::schedcheck
