// Scenario runner — builds a real fleet (train-once ModelBank, CoCG
// scheduler, global Poisson sources) for record / replay / fuzz runs, with
// the invariant suite installed as the epoch-barrier hook. The scenario is
// round-tripped through schedule meta, so a failing schedule artifact is
// self-contained: `cocg_schedfuzz replay failing.sched` rebuilds the exact
// run from the file alone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "fleet/executor.h"
#include "fleet/router.h"
#include "schedcheck/invariants.h"
#include "schedcheck/schedule.h"
#include "schedcheck/session.h"

namespace cocg::schedcheck {

struct Scenario {
  int shards = 2;
  int threads = 2;
  fleet::RunnerKind runner = fleet::RunnerKind::kLockstep;
  fleet::RouterPolicy policy = fleet::RouterPolicy::kPowerOfTwo;
  int servers = 4;  ///< total, round-robin across shards
  int gpus = 2;     ///< per server
  int minutes = 10; ///< simulated
  std::vector<std::string> games = {"Contra", "CSGO"};
  double arrivals_per_hour = 600.0;  ///< per game stream
  std::uint64_t seed = 42;
  /// Platform quiescence engine (incremental resolve + macro ticks). On by
  /// default, matching PlatformConfig; off selects the always-resolve
  /// per-tick oracle. Replaying one schedule under both settings must
  /// produce byte-identical reports (tests/schedcheck enforces it). Old
  /// artifacts without the meta key load as `true`.
  bool quiescence = true;
};

/// Scenario ⇄ schedule meta (self-contained artifacts). from_meta throws
/// std::runtime_error when required keys are missing or malformed.
void scenario_to_meta(const Scenario& sc, Schedule& schedule);
Scenario scenario_from_meta(const Schedule& schedule);

struct RunOutcome {
  /// Canonical fleet report (fleet::report_json); empty when aborted.
  std::string report;
  ReplayStats stats;
  std::vector<Violation> violations;
  bool aborted = false;  ///< an invariant violation stopped the run
  /// What the session captured: the recording (record mode) or the
  /// re-recording (replay with rerecord). Meta carries the scenario.
  Schedule recorded;
};

/// Record every decision of a natural run. Never aborts on invariants
/// unless the natural run itself is broken (which is a finding).
RunOutcome record_run(const Scenario& sc);

/// Replay `schedule` against the scenario. Non-strict replay free-runs
/// unmatched decisions (fuzz variants); strict replay throws
/// ScheduleDivergenceError on any divergence (fixed-point checks).
RunOutcome replay_run(const Scenario& sc, const Schedule& schedule,
                      bool strict = false, bool rerecord = false);

/// Uninstrumented run with the invariant hook only (baseline checks).
RunOutcome free_run(const Scenario& sc);

}  // namespace cocg::schedcheck
