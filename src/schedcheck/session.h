// Record/replay engine for schedule points.
//
// A Session owns one decision stream per logical decision maker (stream 0
// = fleet coordinator, stream i+1 = shard i). Threads bind a stream via
// the RAII ScopedStream, which installs a thread-local StreamCtx pointer;
// the instrumentation macroless API (`decide` / `decide_lazy`) consults
// that pointer and is a single null check when no session is attached —
// the zero-overhead-when-disabled contract.
//
// Replay is seq-anchored: each stream counts its decisions; a decision is
// forced only when the front of the stream's record list matches the
// current decision index. Records the replay skips past (seq already
// behind — the variant diverged) and records left unconsumed at finish()
// are counted, and optionally fatal under strict replay. With `rerecord`
// set, a replay also re-captures the decisions it actually took, which is
// how the record→replay→re-record fixed-point test closes the loop.
//
// Thread-safety: each stream is driven by at most one thread at a time
// (the runners guarantee this — shard jobs are thread-confined and the
// coordinator is single-threaded), so StreamCtx needs no locks. The only
// cross-thread member is the wall-class point counter, which is atomic.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "schedcheck/schedule.h"

namespace cocg::schedcheck {

enum class Mode : std::uint8_t { kOff = 0, kRecord, kReplay };

/// Thrown by strict replay when the run diverges from the schedule (a
/// decision the schedule expected never happened, happened with a
/// different point, or records were left unconsumed).
class ScheduleDivergenceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Aggregated over all streams by Session::finish().
struct ReplayStats {
  std::uint64_t decisions = 0;    ///< decision points hit
  std::uint64_t forced = 0;       ///< forced to a recorded choice
  std::uint64_t freerun = 0;      ///< replay decisions with no matching record
  std::uint64_t divergences = 0;  ///< skipped records / point mismatches
  std::uint64_t clamped = 0;      ///< forced choice was out of range
  std::uint64_t unconsumed = 0;   ///< records left at finish()
  std::uint64_t wall_points = 0;  ///< wall-class events (executor steals)
};

class Session;

namespace detail {

/// Per-stream decision state. Owned by the Session, bound to a thread via
/// ScopedStream while that thread drives the stream.
struct StreamCtx {
  Session* owner = nullptr;
  int stream = 0;
  Mode mode = Mode::kOff;
  bool strict = false;
  bool rerecord = false;

  std::uint64_t next_seq = 0;
  std::vector<Record> rec;       ///< record / re-record sink
  const std::vector<Record>* src = nullptr;  ///< replay source
  std::size_t cursor = 0;

  // Clock for stamping records: a raw function pointer so binding a
  // stream never allocates (std::function would).
  TimeMs (*clock_fn)(const void*) = nullptr;
  const void* clock_arg = nullptr;

  std::uint64_t decisions = 0;
  std::uint64_t forced = 0;
  std::uint64_t freerun = 0;
  std::uint64_t divergences = 0;
  std::uint64_t clamped = 0;

  TimeMs now() const { return clock_fn ? clock_fn(clock_arg) : 0; }
};

StreamCtx*& tls_stream();

int decide_slow(StreamCtx& ctx, Point p, int nchoices, int natural,
                bool* forced_out);

}  // namespace detail

class Session {
 public:
  static constexpr int kCoordinatorStream = 0;

  /// One coordinator stream plus one stream per shard.
  explicit Session(int num_shards) {
    COCG_EXPECTS(num_shards >= 1);
    streams_.resize(static_cast<std::size_t>(num_shards) + 1);
    for (std::size_t i = 0; i < streams_.size(); ++i) {
      streams_[i].owner = this;
      streams_[i].stream = static_cast<int>(i);
    }
  }

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  int num_streams() const { return static_cast<int>(streams_.size()); }

  void start_record() {
    reset_streams();
    for (auto& s : streams_) s.mode = Mode::kRecord;
  }

  /// `strict` turns divergences and unconsumed records into
  /// ScheduleDivergenceError; `rerecord` re-captures the decisions taken
  /// during replay (Session::recorded() then holds the re-recording).
  void start_replay(const Schedule& schedule, bool strict = false,
                    bool rerecord = false) {
    if (static_cast<int>(schedule.streams.size()) != num_streams()) {
      throw std::runtime_error(
          "schedule has " + std::to_string(schedule.streams.size()) +
          " streams but the session expects " +
          std::to_string(num_streams()) +
          " (coordinator + one per shard) — shard count mismatch");
    }
    replay_src_ = schedule.streams;
    reset_streams();
    for (std::size_t i = 0; i < streams_.size(); ++i) {
      streams_[i].mode = Mode::kReplay;
      streams_[i].strict = strict;
      streams_[i].rerecord = rerecord;
      streams_[i].src = &replay_src_[i];
    }
  }

  /// The schedule captured so far (record mode, or replay+rerecord).
  Schedule recorded() const {
    Schedule s;
    s.streams.reserve(streams_.size());
    for (const auto& st : streams_) s.streams.push_back(st.rec);
    return s;
  }

  /// Aggregate stats and — under strict replay — verify full consumption.
  ReplayStats finish() {
    ReplayStats out = stats();
    for (const auto& st : streams_) {
      if (st.src != nullptr) {
        out.unconsumed += st.src->size() - st.cursor;
      }
    }
    if (out.unconsumed > 0) {
      for (const auto& st : streams_) {
        if (st.strict && st.src != nullptr && st.cursor < st.src->size()) {
          const Record& r = (*st.src)[st.cursor];
          throw ScheduleDivergenceError(
              "strict replay: stream " + std::to_string(st.stream) + " has " +
              std::to_string(st.src->size() - st.cursor) +
              " unconsumed records (next: " + point_name(r.point) + " seq " +
              std::to_string(r.seq) + ")");
        }
      }
    }
    return out;
  }

  /// Snapshot without the unconsumed check.
  ReplayStats stats() const {
    ReplayStats out;
    for (const auto& st : streams_) {
      out.decisions += st.decisions;
      out.forced += st.forced;
      out.freerun += st.freerun;
      out.divergences += st.divergences;
      out.clamped += st.clamped;
    }
    out.wall_points = wall_points_.load(std::memory_order_relaxed);
    return out;
  }

  /// Wall-class points (executor steals): counted post-hoc, never forced —
  /// thread confinement makes the steal victim irrelevant to results.
  void note_wall_points(std::uint64_t n) {
    wall_points_.fetch_add(n, std::memory_order_relaxed);
  }

  detail::StreamCtx& stream(int idx) {
    COCG_EXPECTS(idx >= 0 && idx < num_streams());
    return streams_[static_cast<std::size_t>(idx)];
  }

 private:
  void reset_streams() {
    for (auto& s : streams_) {
      s.mode = Mode::kOff;
      s.strict = false;
      s.rerecord = false;
      s.next_seq = 0;
      s.rec.clear();
      s.src = nullptr;
      s.cursor = 0;
      s.decisions = 0;
      s.forced = 0;
      s.freerun = 0;
      s.divergences = 0;
      s.clamped = 0;
    }
    wall_points_.store(0, std::memory_order_relaxed);
  }

  std::vector<detail::StreamCtx> streams_;
  std::vector<std::vector<Record>> replay_src_;
  std::atomic<std::uint64_t> wall_points_{0};
};

/// Binds `session`'s stream `stream` to the current thread for the scope.
/// Null session → no-op (the disabled fast path). Nests: the previous
/// binding is restored on destruction, so inline job execution on the
/// coordinator thread (threads=1) works unchanged.
class ScopedStream {
 public:
  ScopedStream(Session* session, int stream,
               TimeMs (*clock_fn)(const void*) = nullptr,
               const void* clock_arg = nullptr)
      : prev_(detail::tls_stream()) {
    if (session != nullptr) {
      detail::StreamCtx& ctx = session->stream(stream);
      ctx.clock_fn = clock_fn;
      ctx.clock_arg = clock_arg;
      detail::tls_stream() = &ctx;
    }
  }
  ~ScopedStream() { detail::tls_stream() = prev_; }
  ScopedStream(const ScopedStream&) = delete;
  ScopedStream& operator=(const ScopedStream&) = delete;

 private:
  detail::StreamCtx* prev_;
};

/// True when the current thread is inside a bound stream — i.e. a
/// record/replay session is driving this code path.
inline bool active() { return detail::tls_stream() != nullptr; }

/// Report a decision with `nchoices` alternatives whose natural outcome is
/// `natural`. Off the instrumented path this is one TLS load and a branch.
/// Returns the (possibly forced) choice; `forced_out`, when non-null, is
/// set to whether replay overrode the natural choice — callers that
/// normally compute side effects while choosing use this to apply the
/// side effects of a forced choice explicitly.
inline int decide(Point p, int nchoices, int natural,
                  bool* forced_out = nullptr) {
  detail::StreamCtx* ctx = detail::tls_stream();
  if (ctx == nullptr) {
    if (forced_out != nullptr) *forced_out = false;
    return natural;
  }
  return detail::decide_slow(*ctx, p, nchoices, natural, forced_out);
}

/// Like decide(), but the natural choice is computed lazily — skipped
/// entirely when replay forces the decision. Use when computing the
/// natural choice has side effects (RNG draws, router accounting) that a
/// forced decision must not incur.
template <typename F>
inline int decide_lazy(Point p, int nchoices, F&& natural,
                       bool* forced_out = nullptr) {
  detail::StreamCtx* ctx = detail::tls_stream();
  if (ctx == nullptr) {
    if (forced_out != nullptr) *forced_out = false;
    return natural();
  }
  // Peek: only evaluate the natural choice if this decision is not forced.
  const std::uint64_t seq = ctx->next_seq;
  bool will_force = false;
  if (ctx->mode == Mode::kReplay && ctx->src != nullptr) {
    std::size_t c = ctx->cursor;
    const auto& src = *ctx->src;
    while (c < src.size() && src[c].seq < seq) ++c;
    will_force = c < src.size() && src[c].seq == seq &&
                 src[c].point == p;
  }
  const int nat = will_force ? 0 : natural();
  return detail::decide_slow(*ctx, p, nchoices, nat, forced_out);
}

}  // namespace cocg::schedcheck
