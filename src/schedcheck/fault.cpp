#include "schedcheck/fault.h"

#include <atomic>

namespace cocg::schedcheck {

namespace {
std::atomic<Fault> g_fault{Fault::kNone};
}  // namespace

void set_fault(Fault f) { g_fault.store(f, std::memory_order_relaxed); }

Fault fault() { return g_fault.load(std::memory_order_relaxed); }

}  // namespace cocg::schedcheck
