// Schedule fuzzer — perturbs a recorded schedule under a seeded RNG and
// replays each variant (non-strict: unmatched decisions free-run) against
// the invariant suite. The mutation menu targets the decision classes the
// instrumentation exposes: router tie-break flips, delayed/early regulator
// holds, victim reordering, admission deferral, migration suppression,
// executor sync flips (shard epoch skew), record deletion, and seq shifts.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "schedcheck/harness.h"
#include "schedcheck/schedule.h"

namespace cocg::schedcheck {

struct FuzzOptions {
  int variants = 200;       ///< schedule variants to generate and run
  std::uint64_t seed = 1;   ///< mutation RNG seed (fully deterministic)
  int max_mutations = 4;    ///< 1..max mutations per variant
  int keep_failures = 8;    ///< failing schedules retained in the result
};

struct FuzzFailure {
  int variant = 0;          ///< 0-based variant index (re-derivable by seed)
  Schedule schedule;        ///< the failing variant, meta included
  std::vector<Violation> violations;
};

struct FuzzResult {
  int variants_run = 0;
  int failures = 0;         ///< total failing variants (≥ kept)
  std::uint64_t mutations_applied = 0;
  std::vector<FuzzFailure> kept;  ///< first keep_failures failures
};

/// Runs a schedule variant and reports the outcome — normally
/// `replay_run(scenario, variant)` bound by the caller; injected so tests
/// can fuzz against synthetic run functions.
using RunScheduleFn = std::function<RunOutcome(const Schedule&)>;

/// Apply `count` random mutations to a copy of `base`. Exposed for tests;
/// the result is always a structurally valid schedule (per-stream seqs
/// strictly increasing).
Schedule mutate_schedule(const Schedule& base, Rng& rng, int count);

FuzzResult fuzz(const Schedule& base, const FuzzOptions& opts,
                const RunScheduleFn& run);

}  // namespace cocg::schedcheck
