// Delta-debugging schedule minimizer (ddmin). Given a failing schedule
// and a predicate that replays a candidate and reports whether the same
// failure reproduces, shrinks the schedule to a locally 1-minimal record
// set: removing any single remaining record makes the failure disappear.
// Meta is preserved, per-stream seq order is maintained (subsets keep the
// original record order, and seqs are never rewritten — sparse replay is
// seq-anchored, so surviving records still bind to the same decisions).
#pragma once

#include <cstdint>
#include <functional>

#include "schedcheck/schedule.h"

namespace cocg::schedcheck {

struct MinimizeOptions {
  int max_runs = 500;  ///< replay budget; minimization stops when exhausted
};

struct MinimizeResult {
  Schedule schedule;     ///< smallest failing schedule found
  int runs = 0;          ///< replays spent
  bool minimal = false;  ///< true when 1-minimality was fully verified
};

/// Returns true when the candidate still reproduces the failure of
/// interest — typically "replay aborts with the same invariant name".
using FailsFn = std::function<bool(const Schedule&)>;

/// ddmin over the flattened record list of `failing`. `fails(failing)`
/// must be true; throws std::invalid_argument otherwise.
MinimizeResult minimize(const Schedule& failing, const FailsFn& fails,
                        const MinimizeOptions& opts = {});

}  // namespace cocg::schedcheck
