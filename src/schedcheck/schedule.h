// Schedule artifacts — the versioned text format of recorded scheduler
// decisions (`cocg-sched-v1`).
//
// A schedule captures every *named decision point* the fleet hit during a
// run, grouped into one stream per logical decision maker: stream 0 is
// the fleet coordinator (router choice, executor sync), stream i+1 is
// shard i (admission, migration trigger, regulator victim/hold). Each
// stream is only ever driven by one thread at a time — the coordinator is
// single-threaded and shard epoch jobs are thread-confined — so the
// recorded bytes are identical for any thread count and either runner.
//
// Every record carries the per-stream decision index `seq` (how many
// decisions that stream had made when this one was taken). Replay anchors
// on seq: when a stream's next decision index matches the next record, the
// decision is forced to the recorded choice; otherwise the decision runs
// free. A full recording therefore forces every decision (byte-identical
// reports), while a schedule stripped down to a handful of records — a
// fuzzed variant or a minimized reproducer — forces exactly those and lets
// the simulation fill in the rest deterministically.
//
// The file embeds the point-name taxonomy so a schedule recorded against a
// different build (renamed or renumbered points) fails loudly at parse
// time instead of silently forcing the wrong decisions. All parse errors
// throw std::runtime_error with a 1-based line number (common/textio.h).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace cocg::schedcheck {

/// The decision-point taxonomy. Order is the wire id — append only.
enum class Point : std::uint8_t {
  kRouterChoice = 0,   ///< coordinator: which shard hosts an arrival
  kAdmission,          ///< shard: commit (1) or defer (0) a found placement
  kMigrationTrigger,   ///< shard: fire (1) or skip (0) a model replacement
  kRegulatorVictim,    ///< shard: which eligible loading session to steal from
  kRegulatorHold,      ///< shard: hold (1) or release (0) the chosen victim
  kExecutorSync,       ///< coordinator: drain + refresh loads this epoch
  kExecutorSteal,      ///< wall-class: counted only, never recorded or forced
};
inline constexpr std::size_t kNumPoints = 7;

const char* point_name(Point p);
std::optional<Point> parse_point(const std::string& name);

/// One recorded decision. `seq` is the stream's decision counter at the
/// time of the decision — the replay anchor; `t` is simulated time, kept
/// for humans reading minimized reproducers.
struct Record {
  Point point = Point::kRouterChoice;
  TimeMs t = 0;
  std::uint64_t seq = 0;
  std::uint32_t nchoices = 1;  ///< decision arity at the call site
  std::uint32_t choice = 0;    ///< the taken (or forced) alternative
};

bool operator==(const Record& a, const Record& b);
inline bool operator!=(const Record& a, const Record& b) { return !(a == b); }

struct Schedule {
  /// Free-form provenance (scenario echo); replayed tools rebuild the run
  /// configuration from these, making failing schedules self-contained.
  std::vector<std::pair<std::string, std::string>> meta;
  /// streams[0] = coordinator, streams[i + 1] = shard i.
  std::vector<std::vector<Record>> streams;

  int num_shards() const { return static_cast<int>(streams.size()) - 1; }
  std::size_t total_records() const;
  /// First value for `key`, or "" when absent.
  std::string meta_value(const std::string& key) const;
  /// Replace the first `key` entry (append when absent).
  void set_meta(const std::string& key, const std::string& value);
};

bool operator==(const Schedule& a, const Schedule& b);
inline bool operator!=(const Schedule& a, const Schedule& b) {
  return !(a == b);
}

void write_schedule(const Schedule& s, std::ostream& os);
std::string schedule_text(const Schedule& s);
/// Parse a `cocg-sched-v1` stream; throws std::runtime_error on malformed
/// input or a point taxonomy that disagrees with this build.
Schedule read_schedule(std::istream& is);
Schedule load_schedule(const std::string& path);
void save_schedule(const Schedule& s, const std::string& path);

}  // namespace cocg::schedcheck
