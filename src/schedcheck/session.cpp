#include "schedcheck/session.h"

namespace cocg::schedcheck::detail {

StreamCtx*& tls_stream() {
  thread_local StreamCtx* ctx = nullptr;
  return ctx;
}

namespace {

[[noreturn]] void throw_divergence(const StreamCtx& ctx, const Record& rec,
                                   Point got, std::uint64_t seq) {
  throw ScheduleDivergenceError(
      "strict replay: stream " + std::to_string(ctx.stream) +
      " expected point " + point_name(rec.point) + " at seq " +
      std::to_string(rec.seq) + ", run is at " + point_name(got) + " seq " +
      std::to_string(seq));
}

}  // namespace

int decide_slow(StreamCtx& ctx, Point p, int nchoices, int natural,
                bool* forced_out) {
  COCG_EXPECTS(nchoices >= 1);
  if (forced_out != nullptr) *forced_out = false;
  const std::uint64_t seq = ctx.next_seq++;
  ++ctx.decisions;

  if (ctx.mode == Mode::kRecord) {
    ctx.rec.push_back(Record{p, ctx.now(), seq,
                             static_cast<std::uint32_t>(nchoices),
                             static_cast<std::uint32_t>(natural)});
    return natural;
  }

  // Replay. Skip records the run has already moved past — a mutated or
  // minimized schedule can reference decisions that no longer happen.
  const auto& src = *ctx.src;
  while (ctx.cursor < src.size() && src[ctx.cursor].seq < seq) {
    ++ctx.divergences;
    if (ctx.strict) throw_divergence(ctx, src[ctx.cursor], p, seq);
    ++ctx.cursor;
  }

  if (ctx.cursor < src.size() && src[ctx.cursor].seq == seq) {
    const Record& rec = src[ctx.cursor];
    if (rec.point != p) {
      // Same decision index, different point: the schedule no longer
      // describes this run — count it and fall through to free-run.
      ++ctx.divergences;
      if (ctx.strict) throw_divergence(ctx, rec, p, seq);
    } else {
      ++ctx.cursor;
      ++ctx.forced;
      int choice = static_cast<int>(rec.choice);
      if (choice >= nchoices) {
        // The call site's arity shrank (e.g. fewer eligible victims than
        // when recorded); clamp into range rather than crash the run.
        ++ctx.clamped;
        choice = choice % nchoices;
      }
      if (forced_out != nullptr) *forced_out = true;
      if (ctx.rerecord) {
        ctx.rec.push_back(Record{p, ctx.now(), seq,
                                 static_cast<std::uint32_t>(nchoices),
                                 static_cast<std::uint32_t>(choice)});
      }
      return choice;
    }
  }

  // No matching record: run free.
  ++ctx.freerun;
  if (ctx.rerecord) {
    ctx.rec.push_back(Record{p, ctx.now(), seq,
                             static_cast<std::uint32_t>(nchoices),
                             static_cast<std::uint32_t>(natural)});
  }
  return natural;
}

}  // namespace cocg::schedcheck::detail
