// Test-only fault injection for the fuzzer efficacy tests.
//
// Faults are intentionally planted bugs, armed globally by the harness and
// checked at specific platform code sites. They exist so the fuzz pipeline
// can be validated end to end: a fault that only misbehaves under an
// unusual decision interleaving (e.g. a regulator hold overlapping an
// admission) must be *found* by the schedule fuzzer and *shrunk* by the
// minimizer. Production runs never arm a fault; the armed check is one
// relaxed atomic load.
#pragma once

namespace cocg::schedcheck {

enum class Fault {
  kNone = 0,
  /// When any active session is in a loading hold at admission time, the
  /// newly admitted session is also placed (with a zero allocation) on the
  /// next server — a cross-server double-host that only a hold/admission
  /// overlap can trigger.
  kDoubleHostWindow,
};

void set_fault(Fault f);
Fault fault();

}  // namespace cocg::schedcheck
