#include "schedcheck/fuzz.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace cocg::schedcheck {

namespace {

/// A record position inside a schedule.
struct Pos {
  std::size_t stream = 0;
  std::size_t idx = 0;
};

std::vector<Pos> positions_of(const Schedule& s,
                              bool (*pred)(const Record&)) {
  std::vector<Pos> out;
  for (std::size_t si = 0; si < s.streams.size(); ++si) {
    for (std::size_t ri = 0; ri < s.streams[si].size(); ++ri) {
      if (pred(s.streams[si][ri])) out.push_back(Pos{si, ri});
    }
  }
  return out;
}

Record& at(Schedule& s, Pos p) { return s.streams[p.stream][p.idx]; }

Pos pick(const std::vector<Pos>& candidates, Rng& rng) {
  return candidates[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(candidates.size()) - 1))];
}

/// Restore the per-stream strictly-increasing-seq invariant after a seq
/// shift: sort by seq, then drop all but the first record of any seq.
void normalize_stream(std::vector<Record>& recs) {
  std::stable_sort(recs.begin(), recs.end(),
                   [](const Record& a, const Record& b) {
                     return a.seq < b.seq;
                   });
  recs.erase(std::unique(recs.begin(), recs.end(),
                         [](const Record& a, const Record& b) {
                           return a.seq == b.seq;
                         }),
             recs.end());
}

/// One mutation kind per entry; each reports whether it could apply.
enum class MutationKind {
  kRouterRotate = 0,    ///< router choice +k mod shards (tie-break flip)
  kHoldFlip,            ///< regulator hold <-> release (delayed holds)
  kVictimReindex,       ///< regulator steal-victim reorder
  kSyncFlip,            ///< executor sync <-> run-ahead (epoch skew)
  kAdmissionFlip,       ///< admission commit <-> defer
  kMigrationFlip,       ///< migration fire <-> skip
  kDelete,              ///< drop a record (decision free-runs)
  kSeqShift,            ///< move a decision to a later decision index
};
constexpr int kNumMutationKinds = 8;

bool is_router(const Record& r) { return r.point == Point::kRouterChoice; }
bool is_hold(const Record& r) { return r.point == Point::kRegulatorHold; }
bool is_victim(const Record& r) {
  return r.point == Point::kRegulatorVictim && r.nchoices > 1;
}
bool is_sync(const Record& r) { return r.point == Point::kExecutorSync; }
bool is_admission(const Record& r) { return r.point == Point::kAdmission; }
bool is_migration(const Record& r) {
  return r.point == Point::kMigrationTrigger;
}
bool is_any(const Record&) { return true; }

/// Applies one mutation of the given kind; returns false when the
/// schedule has no applicable record.
bool apply_mutation(Schedule& s, MutationKind kind, Rng& rng) {
  switch (kind) {
    case MutationKind::kRouterRotate: {
      const auto c = positions_of(s, &is_router);
      if (c.empty()) return false;
      Record& r = at(s, pick(c, rng));
      if (r.nchoices < 2) return false;
      const auto step = static_cast<std::uint32_t>(
          rng.uniform_int(1, static_cast<std::int64_t>(r.nchoices) - 1));
      r.choice = (r.choice + step) % r.nchoices;
      return true;
    }
    case MutationKind::kHoldFlip: {
      const auto c = positions_of(s, &is_hold);
      if (c.empty()) return false;
      Record& r = at(s, pick(c, rng));
      r.choice = 1 - (r.choice & 1u);
      return true;
    }
    case MutationKind::kVictimReindex: {
      const auto c = positions_of(s, &is_victim);
      if (c.empty()) return false;
      Record& r = at(s, pick(c, rng));
      r.choice = static_cast<std::uint32_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(r.nchoices) - 1));
      return true;
    }
    case MutationKind::kSyncFlip: {
      const auto c = positions_of(s, &is_sync);
      if (c.empty()) return false;
      Record& r = at(s, pick(c, rng));
      r.choice = 1 - (r.choice & 1u);
      return true;
    }
    case MutationKind::kAdmissionFlip: {
      const auto c = positions_of(s, &is_admission);
      if (c.empty()) return false;
      Record& r = at(s, pick(c, rng));
      r.choice = 1 - (r.choice & 1u);
      return true;
    }
    case MutationKind::kMigrationFlip: {
      const auto c = positions_of(s, &is_migration);
      if (c.empty()) return false;
      Record& r = at(s, pick(c, rng));
      r.choice = 1 - (r.choice & 1u);
      return true;
    }
    case MutationKind::kDelete: {
      const auto c = positions_of(s, &is_any);
      if (c.empty()) return false;
      const Pos p = pick(c, rng);
      auto& recs = s.streams[p.stream];
      recs.erase(recs.begin() + static_cast<std::ptrdiff_t>(p.idx));
      return true;
    }
    case MutationKind::kSeqShift: {
      const auto c = positions_of(s, &is_any);
      if (c.empty()) return false;
      const Pos p = pick(c, rng);
      auto& recs = s.streams[p.stream];
      recs[p.idx].seq += static_cast<std::uint64_t>(rng.uniform_int(1, 3));
      normalize_stream(recs);
      return true;
    }
  }
  return false;
}

}  // namespace

Schedule mutate_schedule(const Schedule& base, Rng& rng, int count) {
  COCG_EXPECTS(count >= 1);
  Schedule s = base;
  int applied = 0;
  // A sparse schedule may lack records of the drawn kind; retry with a
  // fresh draw, bounded so an (almost) empty schedule cannot spin.
  int attempts = 0;
  while (applied < count && attempts < count * 16) {
    ++attempts;
    const auto kind = static_cast<MutationKind>(
        rng.uniform_int(0, kNumMutationKinds - 1));
    if (apply_mutation(s, kind, rng)) ++applied;
  }
  return s;
}

FuzzResult fuzz(const Schedule& base, const FuzzOptions& opts,
                const RunScheduleFn& run) {
  COCG_EXPECTS(opts.variants >= 1);
  COCG_EXPECTS(opts.max_mutations >= 1);
  COCG_EXPECTS(run != nullptr);
  FuzzResult result;
  Rng rng(opts.seed);
  for (int v = 0; v < opts.variants; ++v) {
    const int count =
        static_cast<int>(rng.uniform_int(1, opts.max_mutations));
    Schedule variant = mutate_schedule(base, rng, count);
    result.mutations_applied += static_cast<std::uint64_t>(count);
    RunOutcome outcome = run(variant);
    ++result.variants_run;
    if (outcome.aborted) {
      ++result.failures;
      if (static_cast<int>(result.kept.size()) < opts.keep_failures) {
        result.kept.push_back(FuzzFailure{v, std::move(variant),
                                          std::move(outcome.violations)});
      }
    }
  }
  return result;
}

}  // namespace cocg::schedcheck
