#include "schedcheck/invariants.h"

#include <algorithm>
#include <unordered_map>

#include "common/resources.h"
#include "fleet/fleet.h"
#include "platform/cloud_platform.h"

namespace cocg::schedcheck {

namespace {

/// The regulator may legally oversubscribe a view (reallocate with
/// allow_oversubscribe); 2x capacity is far beyond anything the control
/// loops produce and catches runaway accounting without false positives.
constexpr double kOversubscribeCeiling = 2.0;

void add(std::vector<Violation>& out, std::string invariant,
         std::string detail, TimeMs t, int shard) {
  out.push_back(Violation{std::move(invariant), std::move(detail), t, shard});
}

}  // namespace

InvariantViolationError::InvariantViolationError(
    std::vector<Violation> violations)
    : std::runtime_error("schedule invariant violated: " +
                         (violations.empty() ? std::string("(none?)")
                                             : violations.front().invariant +
                                                   ": " +
                                                   violations.front().detail)),
      violations_(std::move(violations)) {}

std::vector<Violation> check_platform(const platform::CloudPlatform& p,
                                      int shard, TimeMs t) {
  std::vector<Violation> out;

  // Pass 1: hosting census. Every hosted sid must appear exactly once
  // across all servers and be present in the session table.
  std::unordered_map<std::uint64_t, ServerId> host_of;
  for (std::size_t s = 0; s < p.num_servers(); ++s) {
    const ServerId sv{s};
    for (const auto& h : p.server(sv).hosted()) {
      auto [it, inserted] = host_of.emplace(h.sid.value, sv);
      if (!inserted) {
        add(out, "double_host",
            "session " + std::to_string(h.sid.value) + " hosted on server " +
                std::to_string(it->second.value) + " and server " +
                std::to_string(s),
            t, shard);
      }
      const auto& alloc = h.placement.allocation;
      for (std::size_t d = 0; d < kNumDims; ++d) {
        if (alloc.at(d) < 0.0) {
          add(out, "capacity",
              "session " + std::to_string(h.sid.value) +
                  " has a negative allocation dim on server " +
                  std::to_string(s),
              t, shard);
          break;
        }
      }
      if (h.placement.gpu_index < 0 ||
          h.placement.gpu_index >= p.server(sv).spec().num_gpus) {
        add(out, "capacity",
            "session " + std::to_string(h.sid.value) + " pinned to GPU " +
                std::to_string(h.placement.gpu_index) + " of server " +
                std::to_string(s) + " (" +
                std::to_string(p.server(sv).spec().num_gpus) + " GPUs)",
            t, shard);
      }
    }
  }

  // Pass 2: the session table against the hosting census.
  const std::vector<SessionId> ids = p.session_ids();
  for (const SessionId sid : ids) {
    const auto info = p.session_info(sid);
    const auto it = host_of.find(sid.value);
    if (it == host_of.end()) {
      add(out, "lost_session",
          "session " + std::to_string(sid.value) +
              " is in the table but hosted on no server",
          t, shard);
      continue;
    }
    if (!(info.server == it->second) &&
        !p.server(info.server).hosts(sid)) {
      add(out, "placement_mismatch",
          "session " + std::to_string(sid.value) + " recorded on server " +
              std::to_string(info.server.value) + " but hosted on server " +
              std::to_string(it->second.value),
          t, shard);
    }
  }
  // Hosted sids that are not in the table (stale host entries).
  for (const auto& [sid, sv] : host_of) {
    if (!std::binary_search(ids.begin(), ids.end(), SessionId{sid})) {
      add(out, "lost_session",
          "server " + std::to_string(sv.value) + " hosts session " +
              std::to_string(sid) + " which is not in the table",
          t, shard);
    }
  }

  // Pass 3: per-view capacity ceilings.
  for (std::size_t s = 0; s < p.num_servers(); ++s) {
    const auto& srv = p.server(ServerId{s});
    const ResourceVector cap = srv.spec().per_gpu_capacity();
    for (int g = 0; g < srv.spec().num_gpus; ++g) {
      const ResourceVector allocated = srv.allocated_on_gpu(g);
      for (std::size_t d = 0; d < kNumDims; ++d) {
        if (allocated.at(d) < -1e-9) {
          add(out, "capacity",
              "server " + std::to_string(s) + " gpu " + std::to_string(g) +
                  " has negative total allocation in dim " +
                  std::to_string(d),
              t, shard);
        } else if (cap.at(d) > 0.0 &&
                   allocated.at(d) > cap.at(d) * kOversubscribeCeiling) {
          add(out, "capacity",
              "server " + std::to_string(s) + " gpu " + std::to_string(g) +
                  " allocation dim " + std::to_string(d) + " is " +
                  std::to_string(allocated.at(d)) + " > " +
                  std::to_string(kOversubscribeCeiling) + "x capacity",
              t, shard);
        }
      }
    }
  }

  // Pass 4: conservation ledger.
  const std::uint64_t running = p.running_sessions();
  const std::uint64_t completed = p.completed_runs().size();
  const std::uint64_t queued = p.queued_requests();
  if (p.sessions_admitted() != running + completed) {
    add(out, "conservation",
        "admitted " + std::to_string(p.sessions_admitted()) +
            " != running " + std::to_string(running) + " + completed " +
            std::to_string(completed),
        t, shard);
  }
  if (p.submitted_requests() != queued + running + completed) {
    add(out, "conservation",
        "submitted " + std::to_string(p.submitted_requests()) +
            " != queued " + std::to_string(queued) + " + running " +
            std::to_string(running) + " + completed " +
            std::to_string(completed),
        t, shard);
  }

  // Pass 5: SessionTable structural audit.
  const std::string table_err = p.session_table_consistency();
  if (!table_err.empty()) add(out, "table", table_err, t, shard);

  return out;
}

std::vector<Violation> check_fleet(const fleet::Fleet& fleet, TimeMs t) {
  std::vector<Violation> out;
  std::size_t routed = 0;
  for (int i = 0; i < fleet.num_shards(); ++i) {
    auto shard_v = check_platform(fleet.shard(i), i, t);
    out.insert(out.end(), std::make_move_iterator(shard_v.begin()),
               std::make_move_iterator(shard_v.end()));
    routed += fleet.routed_to(i);
  }
  if (routed != fleet.arrivals_generated()) {
    add(out, "conservation",
        "router ledger: " + std::to_string(fleet.arrivals_generated()) +
            " arrivals generated but " + std::to_string(routed) +
            " routed to shards",
        t, -1);
  }
  return out;
}

std::string describe(const std::vector<Violation>& violations) {
  std::string out;
  for (const auto& v : violations) {
    out += "[t=" + std::to_string(v.t) + " shard=" + std::to_string(v.shard) +
           "] " + v.invariant + ": " + v.detail + "\n";
  }
  return out;
}

}  // namespace cocg::schedcheck
