// Traffic traces — the fleet's front door as data.
//
// A Trace is an open-loop arrival stream: one TraceEvent per session
// arrival, carrying the per-session context later QoS work chews on
// (region, game + category, player profile, declared expected session
// length) plus the router verdict when the trace was captured from a live
// run. Traces are the unit of evaluation (CGReplay's thesis): any run can
// capture its arrival stream, and any captured stream can be replayed
// bit-exactly against a different scheduler or router policy, so two
// variants are always compared on the *same* traffic.
//
// On disk a trace is a versioned, line-oriented, human-diffable text
// artifact on the common/textio.h substrate — the same discipline as
// model_io/profile_io: exact round trip (every field integral; names are
// table-interned so event lines never need quoting) and "trace line N"
// diagnostics on malformed input.
//
//   cocg-traffic-v1
//   meta <key> <free-form value>          (0+ lines, provenance)
//   regions <R>
//   region <idx> <name>
//   games <G>
//   game <idx> <category> <name>          (name may contain spaces)
//   events <N>
//   e <t_ms> <region> <game> <player> <profile> <expected_ms> <script> <shard>
//   end-traffic
//
// Event timestamps must be non-decreasing (validated on read — replay
// feeds them straight into lockstep epochs). `shard` is the captured
// router verdict, -1 when the trace was generated rather than captured.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "game/spec.h"

namespace cocg::traffic {

/// Declared player commitment class; drives the expected-session-length
/// metadata (and nothing else — sessions still run their scripts).
enum class PlayerProfile : std::uint8_t { kCasual = 0, kRegular, kHardcore };
inline constexpr std::size_t kNumProfiles = 3;

const char* profile_name(PlayerProfile p);
/// Parse "casual" / "regular" / "hardcore"; throws std::runtime_error on
/// anything else.
PlayerProfile parse_profile(const std::string& name);

/// Interning table for region names. Index 0 is always "global" — the
/// region of every arrival that never stated one.
class RegionTable {
 public:
  RegionTable() { names_.emplace_back("global"); }

  /// Index of `name`, interning it if new.
  std::uint32_t intern(const std::string& name);
  /// Index of `name`, or npos when unknown.
  static constexpr std::uint32_t npos = ~std::uint32_t{0};
  std::uint32_t find(const std::string& name) const;

  const std::string& name(std::uint32_t idx) const;
  std::size_t size() const { return names_.size(); }
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<std::string> names_;
};

/// One session arrival.
struct TraceEvent {
  TimeMs t = 0;                  ///< arrival time (ms since trace start)
  std::uint32_t region = 0;      ///< index into Trace::regions
  std::uint32_t game = 0;        ///< index into Trace::games
  std::uint64_t player_id = 0;
  PlayerProfile profile = PlayerProfile::kRegular;
  DurationMs expected_session_ms = 0;  ///< declared, from the profile
  std::uint32_t script_idx = 0;
  std::int32_t shard = -1;  ///< captured router verdict; -1 = none

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Game identity as the trace carries it — name plus category, so a trace
/// is self-describing even without the spec library that produced it.
struct TraceGame {
  std::string name;
  game::GameCategory category = game::GameCategory::kWeb;

  friend bool operator==(const TraceGame&, const TraceGame&) = default;
};

struct Trace {
  /// Free-form provenance (generator recipe, seed, capture tool). Keys
  /// and values are single-line; written in map order.
  std::map<std::string, std::string> meta;
  std::vector<std::string> regions;  ///< index 0 conventionally "global"
  std::vector<TraceGame> games;
  std::vector<TraceEvent> events;  ///< non-decreasing t

  friend bool operator==(const Trace&, const Trace&) = default;
};

/// Serialize. Throws std::runtime_error on I/O failure or on a trace that
/// violates its own invariants (event indices out of table range,
/// decreasing timestamps, names or meta values containing newlines).
void write_trace(const Trace& trace, std::ostream& os);
void save_trace(const Trace& trace, const std::string& path);

/// Deserialize and validate every invariant. Throws std::runtime_error
/// with a "trace line N" diagnostic on truncated, corrupt, out-of-range
/// or version-skewed input.
Trace read_trace(std::istream& is);
Trace load_trace(const std::string& path);

}  // namespace cocg::traffic
