// Workload generator — production-shaped open-loop arrival traces.
//
// Four recipes, all driven by one seeded RNG (same config + seed → byte
// identical trace, the property the round-trip CI job leans on):
//
//  * poisson  — homogeneous baseline at `arrivals_per_hour`;
//  * diurnal  — sinusoidal day/night cycle: rate(t) scales by
//               1 + amplitude·sin(2π(t/period + phase)); amplitude 0.6
//               means peak traffic is 4× the trough;
//  * flash    — a game launch: one game's share of the mix ramps to
//               `flash_multiplier`× over `flash_ramp_ms`, holds for
//               `flash_hold_ms`, ramps back down (total rate rises with
//               it — flash crowds are extra players, not substitution);
//  * failover — a region evacuates: `failover_from`'s arrival share
//               linearly shifts onto `failover_to` across
//               [failover_at_ms, failover_at_ms + failover_ramp_ms].
//
// Time-varying rates are realized by Lewis–Shedler thinning against the
// recipe's peak rate, so inter-arrival statistics stay exactly Poisson at
// every instant. Each accepted arrival then draws region, game, player,
// profile and expected session length from the same RNG.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "game/spec.h"
#include "traffic/trace.h"

namespace cocg::traffic {

enum class Pattern { kPoisson, kDiurnal, kFlashCrowd, kRegionalFailover };

const char* pattern_name(Pattern p);
/// Parse "poisson" / "diurnal" / "flash" / "failover"; throws
/// std::runtime_error on anything else.
Pattern parse_pattern(const std::string& name);

struct GeneratorConfig {
  Pattern pattern = Pattern::kPoisson;
  DurationMs duration_ms = 60 * 60 * 1000;
  /// Aggregate baseline rate across all games and regions.
  double arrivals_per_hour = 600.0;
  /// Game mix; weights need not be normalized (empty weights = uniform).
  std::vector<const game::GameSpec*> games;
  std::vector<double> game_weights;
  /// Region mix (empty = single "global" region, uniform weights).
  std::vector<std::string> regions;
  std::vector<double> region_weights;
  int player_pool = 10'000;
  std::uint64_t seed = 42;

  // diurnal
  double diurnal_amplitude = 0.6;  ///< in [0, 1)
  DurationMs diurnal_period_ms = 24 * 60 * 60 * 1000;
  double diurnal_phase = 0.0;  ///< fraction of a period; 0 starts mid-ramp

  // flash crowd
  std::size_t flash_game = 0;  ///< index into `games`
  TimeMs flash_start_ms = 0;
  DurationMs flash_ramp_ms = 5 * 60 * 1000;
  DurationMs flash_hold_ms = 20 * 60 * 1000;
  double flash_multiplier = 8.0;

  // regional failover
  std::size_t failover_from = 0;  ///< index into `regions`
  std::size_t failover_to = 1;
  TimeMs failover_at_ms = 0;
  DurationMs failover_ramp_ms = 5 * 60 * 1000;
};

/// Generate the trace for `cfg`. Validates the config (non-empty games,
/// weight lengths, amplitude range, pattern-specific indices) and throws
/// std::runtime_error on violations. The result carries a `meta` block
/// recording the recipe and seed.
Trace generate_trace(const GeneratorConfig& cfg);

}  // namespace cocg::traffic
