#include "traffic/generator.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "common/rng.h"
#include "traffic/source.h"

namespace cocg::traffic {

namespace {

void require(bool ok, const std::string& msg) {
  if (!ok) throw std::runtime_error("generate_trace: " + msg);
}

/// Per-hour → per-ms.
double rate_per_ms(double per_hour) { return per_hour / 3'600'000.0; }

/// Diurnal modulation factor at time t.
double diurnal_factor(const GeneratorConfig& cfg, TimeMs t) {
  const double x =
      static_cast<double>(t) / static_cast<double>(cfg.diurnal_period_ms) +
      cfg.diurnal_phase;
  return 1.0 + cfg.diurnal_amplitude *
                   std::sin(2.0 * std::numbers::pi * x);
}

/// Flash-crowd extra-rate factor for the flash game at time t: 1 outside
/// the event, ramps linearly to `flash_multiplier`, holds, ramps back.
double flash_factor(const GeneratorConfig& cfg, TimeMs t) {
  const TimeMs ramp_up_end = cfg.flash_start_ms + cfg.flash_ramp_ms;
  const TimeMs hold_end = ramp_up_end + cfg.flash_hold_ms;
  const TimeMs ramp_down_end = hold_end + cfg.flash_ramp_ms;
  if (t < cfg.flash_start_ms || t >= ramp_down_end) return 1.0;
  if (t < ramp_up_end) {
    const double f = static_cast<double>(t - cfg.flash_start_ms) /
                     static_cast<double>(std::max<DurationMs>(1,
                                                              cfg.flash_ramp_ms));
    return 1.0 + (cfg.flash_multiplier - 1.0) * f;
  }
  if (t < hold_end) return cfg.flash_multiplier;
  const double f = static_cast<double>(ramp_down_end - t) /
                   static_cast<double>(std::max<DurationMs>(1,
                                                            cfg.flash_ramp_ms));
  return 1.0 + (cfg.flash_multiplier - 1.0) * f;
}

/// Fraction of `failover_from`'s share that has moved to `failover_to`.
double failover_fraction(const GeneratorConfig& cfg, TimeMs t) {
  if (t < cfg.failover_at_ms) return 0.0;
  const TimeMs end = cfg.failover_at_ms + cfg.failover_ramp_ms;
  if (t >= end) return 1.0;
  return static_cast<double>(t - cfg.failover_at_ms) /
         static_cast<double>(std::max<DurationMs>(1, cfg.failover_ramp_ms));
}

/// Instantaneous game weights at time t (flash crowd inflates one entry).
void game_weights_at(const GeneratorConfig& cfg, TimeMs t,
                     std::vector<double>& w) {
  for (std::size_t i = 0; i < cfg.games.size(); ++i) {
    w[i] = cfg.game_weights.empty() ? 1.0 : cfg.game_weights[i];
  }
  if (cfg.pattern == Pattern::kFlashCrowd) {
    w[cfg.flash_game] *= flash_factor(cfg, t);
  }
}

/// Instantaneous region weights at time t (failover drains one entry).
void region_weights_at(const GeneratorConfig& cfg, TimeMs t,
                       std::size_t n_regions, std::vector<double>& w) {
  for (std::size_t i = 0; i < n_regions; ++i) {
    w[i] = cfg.region_weights.empty() ? 1.0 : cfg.region_weights[i];
  }
  if (cfg.pattern == Pattern::kRegionalFailover) {
    const double f = failover_fraction(cfg, t);
    const double moving = w[cfg.failover_from] * f;
    w[cfg.failover_from] -= moving;
    w[cfg.failover_to] += moving;
  }
}

/// Total arrival rate (per ms) at time t. The flash crowd adds traffic on
/// top of the baseline: total rate scales by Σw(t)/Σw(0).
double total_rate_at(const GeneratorConfig& cfg, TimeMs t,
                     double base_weight_sum, std::vector<double>& scratch) {
  double rate = rate_per_ms(cfg.arrivals_per_hour);
  if (cfg.pattern == Pattern::kDiurnal) rate *= diurnal_factor(cfg, t);
  if (cfg.pattern == Pattern::kFlashCrowd) {
    game_weights_at(cfg, t, scratch);
    double sum = 0.0;
    for (double w : scratch) sum += w;
    rate *= sum / base_weight_sum;
  }
  return rate;
}

}  // namespace

const char* pattern_name(Pattern p) {
  switch (p) {
    case Pattern::kPoisson: return "poisson";
    case Pattern::kDiurnal: return "diurnal";
    case Pattern::kFlashCrowd: return "flash";
    case Pattern::kRegionalFailover: return "failover";
  }
  throw std::runtime_error("invalid pattern");
}

Pattern parse_pattern(const std::string& name) {
  if (name == "poisson") return Pattern::kPoisson;
  if (name == "diurnal") return Pattern::kDiurnal;
  if (name == "flash" || name == "flash_crowd") return Pattern::kFlashCrowd;
  if (name == "failover" || name == "regional_failover") {
    return Pattern::kRegionalFailover;
  }
  throw std::runtime_error("unknown traffic pattern '" + name +
                           "' (want poisson|diurnal|flash|failover)");
}

Trace generate_trace(const GeneratorConfig& cfg) {
  require(!cfg.games.empty(), "at least one game required");
  for (const auto* g : cfg.games) {
    require(g != nullptr && !g->scripts.empty(),
            "every game needs a spec with scripts");
  }
  require(cfg.duration_ms > 0, "duration must be positive");
  require(cfg.arrivals_per_hour > 0.0, "arrival rate must be positive");
  require(cfg.player_pool >= 1, "player pool must be >= 1");
  require(cfg.game_weights.empty() ||
              cfg.game_weights.size() == cfg.games.size(),
          "game_weights must match games");
  const std::vector<std::string> regions =
      cfg.regions.empty() ? std::vector<std::string>{"global"} : cfg.regions;
  require(cfg.region_weights.empty() ||
              cfg.region_weights.size() == regions.size(),
          "region_weights must match regions");
  require(cfg.diurnal_amplitude >= 0.0 && cfg.diurnal_amplitude < 1.0,
          "diurnal amplitude must be in [0, 1)");
  if (cfg.pattern == Pattern::kFlashCrowd) {
    require(cfg.flash_game < cfg.games.size(),
            "flash_game index out of range");
    require(cfg.flash_multiplier >= 1.0, "flash multiplier must be >= 1");
  }
  if (cfg.pattern == Pattern::kRegionalFailover) {
    require(regions.size() >= 2, "failover needs at least two regions");
    require(cfg.failover_from < regions.size() &&
                cfg.failover_to < regions.size() &&
                cfg.failover_from != cfg.failover_to,
            "failover region indices invalid");
  }

  Trace out;
  out.meta["generator"] = pattern_name(cfg.pattern);
  out.meta["seed"] = std::to_string(cfg.seed);
  out.meta["arrivals_per_hour"] = std::to_string(cfg.arrivals_per_hour);
  out.meta["duration_ms"] = std::to_string(cfg.duration_ms);
  out.regions = regions;
  out.games.reserve(cfg.games.size());
  for (const auto* g : cfg.games) {
    out.games.push_back(TraceGame{g->name, g->category});
  }

  std::vector<double> gw(cfg.games.size(), 1.0);
  std::vector<double> rw(regions.size(), 1.0);
  double base_weight_sum = 0.0;
  for (std::size_t i = 0; i < cfg.games.size(); ++i) {
    base_weight_sum += cfg.game_weights.empty() ? 1.0 : cfg.game_weights[i];
  }
  require(base_weight_sum > 0.0, "game weights must sum to > 0");

  // Peak rate for thinning: evaluate the factors' analytic maxima.
  double peak = rate_per_ms(cfg.arrivals_per_hour);
  if (cfg.pattern == Pattern::kDiurnal) {
    peak *= 1.0 + cfg.diurnal_amplitude;
  } else if (cfg.pattern == Pattern::kFlashCrowd) {
    const double flash_w =
        (cfg.game_weights.empty() ? 1.0 : cfg.game_weights[cfg.flash_game]);
    peak *= (base_weight_sum + flash_w * (cfg.flash_multiplier - 1.0)) /
            base_weight_sum;
  }

  Rng rng(cfg.seed);
  double t = 0.0;  // continuous time; events land on the floor ms
  const double horizon = static_cast<double>(cfg.duration_ms);
  while (true) {
    t += rng.exponential(1.0 / peak);
    if (t >= horizon) break;
    const auto tm = static_cast<TimeMs>(t);
    const double rate = total_rate_at(cfg, tm, base_weight_sum, gw);
    if (!rng.chance(rate / peak)) continue;  // thinned out

    game_weights_at(cfg, tm, gw);
    region_weights_at(cfg, tm, regions.size(), rw);
    TraceEvent e;
    e.t = tm;
    e.game = static_cast<std::uint32_t>(rng.weighted_index(gw));
    e.region = static_cast<std::uint32_t>(rng.weighted_index(rw));
    e.player_id =
        static_cast<std::uint64_t>(rng.uniform_int(1, cfg.player_pool));
    e.profile = draw_profile(rng);
    e.expected_session_ms = draw_expected_session_ms(
        cfg.games[e.game]->category, e.profile, rng);
    e.script_idx = static_cast<std::uint32_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(cfg.games[e.game]->scripts.size()) - 1));
    out.events.push_back(e);
  }
  return out;
}

}  // namespace cocg::traffic
