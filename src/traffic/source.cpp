#include "traffic/source.h"

#include <algorithm>
#include <string>

#include "common/check.h"

namespace cocg::traffic {

namespace {

/// Nominal expected session length per category (ms). Web platformers are
/// quick runs; consoles hold players the longest; MOBAs sit at match
/// length. Purely declarative metadata.
constexpr DurationMs kCategoryNominalMs[] = {
    10 * 60 * 1000,  // kWeb
    25 * 60 * 1000,  // kMobile
    40 * 60 * 1000,  // kConsole
    35 * 60 * 1000,  // kMoba
};

constexpr double kProfileScale[] = {
    0.5,  // casual
    1.0,  // regular
    1.8,  // hardcore
};

}  // namespace

DurationMs draw_expected_session_ms(game::GameCategory category,
                                    PlayerProfile profile, Rng& rng) {
  const auto c = static_cast<std::size_t>(category);
  const auto p = static_cast<std::size_t>(profile);
  COCG_EXPECTS(c < 4 && p < kNumProfiles);
  const double nominal =
      static_cast<double>(kCategoryNominalMs[c]) * kProfileScale[p];
  // ±25% deterministic jitter, floored at one minute.
  const double jittered = nominal * (1.0 + 0.25 * rng.normal());
  return static_cast<DurationMs>(std::max(60'000.0, jittered));
}

PlayerProfile draw_profile(Rng& rng) {
  const double u = rng.uniform();
  if (u < 0.50) return PlayerProfile::kCasual;
  if (u < 0.85) return PlayerProfile::kRegular;
  return PlayerProfile::kHardcore;
}

PoissonSource::PoissonSource(std::uint64_t seed)
    : rng_(seed), meta_rng_(rng_.fork()) {}

void PoissonSource::add_stream(const platform::OpenLoopSource& cfg,
                               std::uint32_t region) {
  COCG_EXPECTS(cfg.spec != nullptr);
  COCG_EXPECTS(cfg.arrivals_per_hour > 0.0);
  COCG_EXPECTS(cfg.player_pool >= 1);
  streams_.push_back(Stream{cfg, region, kTimeNever});
}

void PoissonSource::generate(TimeMs t0, TimeMs t1,
                             std::vector<Arrival>& out) {
  // Draw order must stay identical to the legacy in-fleet loop: per
  // stream, (init gap | script, player, gap) against the one shared rng_.
  for (auto& s : streams_) {
    const double mean_gap_ms = 3600.0 * 1000.0 / s.cfg.arrivals_per_hour;
    if (s.next_due == kTimeNever) {
      s.next_due = t0 + static_cast<DurationMs>(
                            std::max(1.0, rng_.exponential(mean_gap_ms)));
    }
    while (s.next_due <= t1) {
      Arrival a;
      a.at = s.next_due;
      a.spec = s.cfg.spec;
      a.script_idx = static_cast<std::uint32_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(s.cfg.spec->scripts.size()) - 1));
      a.player_id = static_cast<std::uint64_t>(
          rng_.uniform_int(1, s.cfg.player_pool));
      a.region = s.region;
      a.profile = draw_profile(meta_rng_);
      a.expected_session_ms = draw_expected_session_ms(
          s.cfg.spec->category, a.profile, meta_rng_);
      out.push_back(a);
      s.next_due += static_cast<DurationMs>(
          std::max(1.0, rng_.exponential(mean_gap_ms)));
    }
  }
}

std::vector<Arrival> bind_trace(
    const Trace& trace, const std::vector<const game::GameSpec*>& specs,
    RegionTable& regions) {
  // Per-trace-game resolution, checked up front so diagnostics name the
  // game rather than the first event that uses it.
  std::vector<const game::GameSpec*> bound;
  bound.reserve(trace.games.size());
  for (const auto& tg : trace.games) {
    const game::GameSpec* found = nullptr;
    for (const auto* s : specs) {
      if (s != nullptr && s->name == tg.name) {
        found = s;
        break;
      }
    }
    if (found == nullptr) {
      throw BindError("bind_trace: no spec for trace game '" + tg.name +
                      "'");
    }
    if (found->category != tg.category) {
      throw BindError("bind_trace: category mismatch for '" + tg.name +
                      "' (trace says it changed since capture)");
    }
    bound.push_back(found);
  }
  std::vector<std::uint32_t> region_map;
  region_map.reserve(trace.regions.size());
  for (const auto& name : trace.regions) region_map.push_back(
      regions.intern(name));

  std::vector<Arrival> out;
  out.reserve(trace.events.size());
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const TraceEvent& e = trace.events[i];
    const game::GameSpec* spec = bound[e.game];
    if (e.script_idx >= spec->scripts.size()) {
      throw BindError("bind_trace: event " + std::to_string(i) +
                      " script index " + std::to_string(e.script_idx) +
                      " out of range for '" + spec->name + "' (" +
                      std::to_string(spec->scripts.size()) + " scripts)");
    }
    Arrival a;
    a.at = e.t;
    a.spec = spec;
    a.script_idx = e.script_idx;
    a.player_id = e.player_id;
    a.region = region_map[e.region];
    a.profile = e.profile;
    a.expected_session_ms = e.expected_session_ms;
    a.shard = e.shard;
    out.push_back(a);
  }
  return out;
}

TraceReplaySource::TraceReplaySource(const std::vector<Arrival>* arrivals,
                                     bool use_recorded_shard)
    : arrivals_(arrivals), use_recorded_shard_(use_recorded_shard) {
  COCG_EXPECTS(arrivals != nullptr);
}

void TraceReplaySource::generate(TimeMs t0, TimeMs t1,
                                 std::vector<Arrival>& out) {
  const auto& all = *arrivals_;
  // Skip anything at or before t0 that an earlier window already emitted;
  // events exactly at sim start (t == 0) belong to the first window.
  while (next_ < all.size() &&
         (all[next_].at < t0 || (all[next_].at == t0 && t0 != 0))) {
    ++next_;
  }
  while (next_ < all.size() && all[next_].at <= t1) {
    Arrival a = all[next_++];
    if (!use_recorded_shard_) a.shard = -1;
    out.push_back(a);
  }
}

TraceRecorder::TraceRecorder() { trace_.regions.emplace_back("global"); }

void TraceRecorder::set_meta(const std::string& key,
                             const std::string& value) {
  trace_.meta[key] = value;
}

void TraceRecorder::record(const Arrival& a, const RegionTable& regions,
                           int shard) {
  COCG_EXPECTS(a.spec != nullptr);
  TraceEvent e;
  e.t = a.at;
  // Mirror the live RegionTable's index space verbatim (it only ever
  // appends), so a capture keeps the exact region order of the run — and
  // a replayed capture re-binds to the same indices, which is what makes
  // capture → replay → re-capture a fixed point.
  COCG_EXPECTS(a.region < regions.size());
  for (std::size_t i = trace_.regions.size(); i < regions.size(); ++i) {
    trace_.regions.push_back(regions.name(static_cast<std::uint32_t>(i)));
  }
  e.region = a.region;
  auto git = game_index_.find(a.spec);
  if (git == game_index_.end()) {
    git = game_index_
              .emplace(a.spec,
                       static_cast<std::uint32_t>(trace_.games.size()))
              .first;
    trace_.games.push_back(TraceGame{a.spec->name, a.spec->category});
  }
  e.game = git->second;
  e.player_id = a.player_id;
  e.profile = a.profile;
  e.expected_session_ms = a.expected_session_ms;
  e.script_idx = a.script_idx;
  e.shard = shard;
  COCG_EXPECTS_MSG(trace_.events.empty() || e.t >= trace_.events.back().t,
                   "capture must record arrivals in time order");
  trace_.events.push_back(e);
}

}  // namespace cocg::traffic
