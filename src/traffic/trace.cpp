#include "traffic/trace.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/textio.h"

namespace cocg::traffic {

namespace {

constexpr const char* kMagic = "cocg-traffic-v1";
constexpr const char* kVersionPrefix = "cocg-traffic-";

void require_single_line(const std::string& s, const char* what) {
  if (s.find('\n') != std::string::npos ||
      s.find('\r') != std::string::npos) {
    throw std::runtime_error(std::string("write_trace: ") + what +
                             " contains a line break: '" + s + "'");
  }
}

const char* category_token(game::GameCategory c) {
  switch (c) {
    case game::GameCategory::kWeb: return "web";
    case game::GameCategory::kMobile: return "mobile";
    case game::GameCategory::kConsole: return "console";
    case game::GameCategory::kMoba: return "moba";
  }
  throw std::runtime_error("write_trace: invalid game category");
}

game::GameCategory parse_category(LineReader& r, const std::string& tok) {
  if (tok == "web") return game::GameCategory::kWeb;
  if (tok == "mobile") return game::GameCategory::kMobile;
  if (tok == "console") return game::GameCategory::kConsole;
  if (tok == "moba") return game::GameCategory::kMoba;
  r.fail("unknown game category '" + tok + "'");
}

/// The remainder of `ls` after one leading space — the free-form tail of
/// a `region`/`game`/`meta` line.
std::string tail(LineReader& r, std::istringstream& ls, const char* what) {
  std::string rest;
  std::getline(ls, rest);
  if (rest.empty() || rest[0] != ' ' || rest.size() < 2) {
    r.fail(std::string("missing ") + what);
  }
  return rest.substr(1);
}

}  // namespace

const char* profile_name(PlayerProfile p) {
  switch (p) {
    case PlayerProfile::kCasual: return "casual";
    case PlayerProfile::kRegular: return "regular";
    case PlayerProfile::kHardcore: return "hardcore";
  }
  throw std::runtime_error("invalid player profile");
}

PlayerProfile parse_profile(const std::string& name) {
  if (name == "casual") return PlayerProfile::kCasual;
  if (name == "regular") return PlayerProfile::kRegular;
  if (name == "hardcore") return PlayerProfile::kHardcore;
  throw std::runtime_error("unknown player profile '" + name + "'");
}

std::uint32_t RegionTable::intern(const std::string& name) {
  const std::uint32_t found = find(name);
  if (found != npos) return found;
  names_.push_back(name);
  return static_cast<std::uint32_t>(names_.size() - 1);
}

std::uint32_t RegionTable::find(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<std::uint32_t>(i);
  }
  return npos;
}

const std::string& RegionTable::name(std::uint32_t idx) const {
  if (idx >= names_.size()) {
    throw std::runtime_error("RegionTable: index " + std::to_string(idx) +
                             " out of range (" + std::to_string(size()) +
                             " regions)");
  }
  return names_[idx];
}

void write_trace(const Trace& trace, std::ostream& os) {
  os << kMagic << '\n';
  for (const auto& [k, v] : trace.meta) {
    require_single_line(k, "meta key");
    require_single_line(v, "meta value");
    if (k.empty() || k.find(' ') != std::string::npos) {
      throw std::runtime_error(
          "write_trace: meta key must be one non-empty token, got '" + k +
          "'");
    }
    os << "meta " << k << ' ' << v << '\n';
  }
  os << "regions " << trace.regions.size() << '\n';
  for (std::size_t i = 0; i < trace.regions.size(); ++i) {
    require_single_line(trace.regions[i], "region name");
    os << "region " << i << ' ' << trace.regions[i] << '\n';
  }
  os << "games " << trace.games.size() << '\n';
  for (std::size_t i = 0; i < trace.games.size(); ++i) {
    require_single_line(trace.games[i].name, "game name");
    os << "game " << i << ' ' << category_token(trace.games[i].category)
       << ' ' << trace.games[i].name << '\n';
  }
  os << "events " << trace.events.size() << '\n';
  TimeMs prev = 0;
  for (const auto& e : trace.events) {
    if (e.region >= trace.regions.size()) {
      throw std::runtime_error("write_trace: event region index " +
                               std::to_string(e.region) + " out of range");
    }
    if (e.game >= trace.games.size()) {
      throw std::runtime_error("write_trace: event game index " +
                               std::to_string(e.game) + " out of range");
    }
    if (e.t < prev) {
      throw std::runtime_error(
          "write_trace: event timestamps must be non-decreasing");
    }
    prev = e.t;
    os << "e " << e.t << ' ' << e.region << ' ' << e.game << ' '
       << e.player_id << ' ' << static_cast<int>(e.profile) << ' '
       << e.expected_session_ms << ' ' << e.script_idx << ' ' << e.shard
       << '\n';
  }
  os << "end-traffic\n";
  if (!os) throw std::runtime_error("write_trace: stream write failed");
}

void save_trace(const Trace& trace, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_trace: cannot open " + path);
  write_trace(trace, os);
  if (!os) throw std::runtime_error("save_trace: write failed " + path);
}

Trace read_trace(std::istream& is) {
  LineReader r(is, "trace");
  Trace t;
  {
    const std::string magic = r.line("magic");
    if (magic != kMagic) {
      if (magic.rfind(kVersionPrefix, 0) == 0) {
        r.fail("unsupported trace format version '" + magic +
               "' (expected " + kMagic + ")");
      }
      r.fail("bad magic '" + magic + "' (expected " + std::string(kMagic) +
             ")");
    }
  }
  // meta lines run until the regions header.
  std::string line = r.line("meta or regions");
  while (line.rfind("meta ", 0) == 0) {
    const std::string rest = line.substr(5);
    const std::size_t sp = rest.find(' ');
    if (sp == std::string::npos || sp == 0) {
      r.fail("malformed meta line '" + line + "' (want 'meta <key> <value>')");
    }
    t.meta[rest.substr(0, sp)] = rest.substr(sp + 1);
    line = r.line("meta or regions");
  }
  std::size_t n_regions = 0;
  {
    if (line.rfind("regions ", 0) != 0) {
      r.fail("expected 'regions ', got '" + line + "'");
    }
    std::istringstream ls(line.substr(8));
    n_regions = r.field<std::size_t>(ls, "regions count");
  }
  t.regions.reserve(n_regions);
  for (std::size_t i = 0; i < n_regions; ++i) {
    auto ls = r.expect("region ");
    const auto idx = r.field<std::size_t>(ls, "region index");
    if (idx != i) {
      r.fail("region index " + std::to_string(idx) + " out of order (want " +
             std::to_string(i) + ")");
    }
    t.regions.push_back(tail(r, ls, "region name"));
  }
  std::size_t n_games = 0;
  {
    auto ls = r.expect("games ");
    n_games = r.field<std::size_t>(ls, "games count");
  }
  t.games.reserve(n_games);
  for (std::size_t i = 0; i < n_games; ++i) {
    auto ls = r.expect("game ");
    const auto idx = r.field<std::size_t>(ls, "game index");
    if (idx != i) {
      r.fail("game index " + std::to_string(idx) + " out of order (want " +
             std::to_string(i) + ")");
    }
    TraceGame g;
    g.category = parse_category(r, r.field<std::string>(ls, "game category"));
    g.name = tail(r, ls, "game name");
    t.games.push_back(std::move(g));
  }
  std::size_t n_events = 0;
  {
    auto ls = r.expect("events ");
    n_events = r.field<std::size_t>(ls, "events count");
  }
  t.events.reserve(n_events);
  TimeMs prev = 0;
  for (std::size_t i = 0; i < n_events; ++i) {
    auto ls = r.expect("e ");
    TraceEvent e;
    e.t = r.field<TimeMs>(ls, "event t_ms");
    e.region = r.field<std::uint32_t>(ls, "event region");
    e.game = r.field<std::uint32_t>(ls, "event game");
    e.player_id = r.field<std::uint64_t>(ls, "event player");
    const int prof = r.field<int>(ls, "event profile");
    if (prof < 0 || prof >= static_cast<int>(kNumProfiles)) {
      r.fail("event profile " + std::to_string(prof) + " out of range [0, " +
             std::to_string(kNumProfiles - 1) + "]");
    }
    e.profile = static_cast<PlayerProfile>(prof);
    e.expected_session_ms = r.field<DurationMs>(ls, "event expected_ms");
    e.script_idx = r.field<std::uint32_t>(ls, "event script");
    e.shard = r.field<std::int32_t>(ls, "event shard");
    if (e.t < 0) r.fail("event t_ms must be >= 0");
    if (e.t < prev) {
      r.fail("event timestamps must be non-decreasing (" +
             std::to_string(e.t) + " after " + std::to_string(prev) + ")");
    }
    prev = e.t;
    if (e.region >= t.regions.size()) {
      r.fail("event region " + std::to_string(e.region) +
             " out of range (" + std::to_string(t.regions.size()) +
             " regions)");
    }
    if (e.game >= t.games.size()) {
      r.fail("event game " + std::to_string(e.game) + " out of range (" +
             std::to_string(t.games.size()) + " games)");
    }
    if (e.expected_session_ms < 0) r.fail("event expected_ms must be >= 0");
    if (e.shard < -1) r.fail("event shard must be >= -1");
    t.events.push_back(e);
  }
  {
    const std::string end = r.line("end-traffic");
    if (end != "end-traffic") {
      r.fail("expected 'end-traffic', got '" + end + "'");
    }
  }
  return t;
}

Trace load_trace(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_trace: cannot open " + path);
  return read_trace(is);
}

}  // namespace cocg::traffic
