// Arrival sources — the abstraction between "where arrivals come from"
// and "who serves them".
//
// The fleet used to hardwire a Poisson draw into its epoch loop; now it
// owns a list of ArrivalSources and asks each for the arrivals in
// (t0, t1] at every epoch boundary. PoissonSource reproduces the legacy
// open-loop stream draw-for-draw (same shared RNG, same per-stream
// chaining), so existing seeded experiments are bit-unchanged;
// TraceReplaySource feeds a captured or generated Trace back instead —
// the replay half of capture/replay. TraceRecorder is the capture half:
// the fleet hands it every routed arrival plus the router's verdict and
// it folds them into a Trace ready for save_trace.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "game/spec.h"
#include "platform/request.h"
#include "traffic/trace.h"

namespace cocg::traffic {

/// One spec-resolved arrival, ready to route. The in-memory twin of
/// TraceEvent: names are bound to a GameSpec and a RegionTable index.
struct Arrival {
  TimeMs at = 0;
  const game::GameSpec* spec = nullptr;
  std::uint32_t script_idx = 0;
  std::uint64_t player_id = 0;
  std::uint32_t region = 0;  ///< RegionTable index
  PlayerProfile profile = PlayerProfile::kRegular;
  DurationMs expected_session_ms = 0;
  std::int32_t shard = -1;  ///< recorded router verdict; -1 = route fresh
};

/// Pull interface the fleet drains once per epoch.
class ArrivalSource {
 public:
  virtual ~ArrivalSource() = default;

  /// Append every arrival with `at` in (t0, t1] to `out`, in routing
  /// order. Called with strictly advancing, abutting windows.
  virtual void generate(TimeMs t0, TimeMs t1, std::vector<Arrival>& out) = 0;
};

/// Expected-session-length model shared by PoissonSource and the trace
/// generator: a per-category nominal length scaled by the player profile,
/// with mild deterministic jitter from `rng`. Metadata only — sessions
/// still run their scripts.
DurationMs draw_expected_session_ms(game::GameCategory category,
                                    PlayerProfile profile, Rng& rng);
/// Profile mix of a production pool: casual 50%, regular 35%,
/// hardcore 15%.
PlayerProfile draw_profile(Rng& rng);

/// The legacy fleet arrival stream: one shared RNG, each stream chaining
/// exponential gaps independently, drained stream-major per window —
/// exactly the draw order Fleet::generate_and_route used to perform, so
/// a given fleet seed still produces the identical arrival sequence.
/// Profile / expected-length metadata draws come from a *separate* forked
/// RNG so the primary stream stays untouched.
class PoissonSource final : public ArrivalSource {
 public:
  explicit PoissonSource(std::uint64_t seed);

  void add_stream(const platform::OpenLoopSource& cfg,
                  std::uint32_t region = 0);
  std::size_t num_streams() const { return streams_.size(); }

  void generate(TimeMs t0, TimeMs t1, std::vector<Arrival>& out) override;

 private:
  struct Stream {
    platform::OpenLoopSource cfg;
    std::uint32_t region = 0;
    TimeMs next_due = kTimeNever;
  };
  Rng rng_;       ///< arrival times, scripts, players (legacy sequence)
  Rng meta_rng_;  ///< profile + expected-length metadata
  std::vector<Stream> streams_;
};

/// Error type for trace→spec binding problems (unknown game, bad script
/// index). Distinct from parse errors: the trace is well-formed, the
/// local game library just can't serve it.
class BindError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Resolve a Trace against a spec library: every trace game must match a
/// spec by name and every script index must exist on it. Region names are
/// interned into `regions` (so replay, capture and reporting share one
/// region id space). Throws BindError naming the offending game/event.
std::vector<Arrival> bind_trace(const Trace& trace,
                                const std::vector<const game::GameSpec*>& specs,
                                RegionTable& regions);

/// Replays a bound arrival vector. Borrows the storage — the owner (the
/// fleet, a bench) must keep it alive for the source's lifetime.
class TraceReplaySource final : public ArrivalSource {
 public:
  /// `use_recorded_shard` keeps captured router verdicts on the arrivals;
  /// when false they are cleared so the router decides afresh (the
  /// policy-comparison mode).
  TraceReplaySource(const std::vector<Arrival>* arrivals,
                    bool use_recorded_shard);

  void generate(TimeMs t0, TimeMs t1, std::vector<Arrival>& out) override;

 private:
  const std::vector<Arrival>* arrivals_;
  std::size_t next_ = 0;
  bool use_recorded_shard_;
};

/// Capture sink: accumulates routed arrivals into a Trace. Games are
/// interned on first sight; the region table mirrors the live
/// RegionTable's index space exactly, so capture and replay agree on
/// region order (capture → replay → re-capture is a fixed point).
class TraceRecorder {
 public:
  TraceRecorder();

  /// Record one routed arrival. `shard` is the router's verdict.
  void record(const Arrival& a, const RegionTable& regions, int shard);

  void set_meta(const std::string& key, const std::string& value);
  std::size_t size() const { return trace_.events.size(); }

  /// The captured trace (valid to write at any point).
  const Trace& trace() const { return trace_; }

 private:
  Trace trace_;
  std::unordered_map<const game::GameSpec*, std::uint32_t> game_index_;
};

}  // namespace cocg::traffic
