#include "platform/cloud_platform.h"

#include <algorithm>

#include "common/check.h"
#include "common/log.h"
#include "game/plan.h"
#include "hw/contention.h"

namespace cocg::platform {

namespace {

/// Trace pid of one server (pid 0 is reserved for the scheduler track).
int trace_pid(ServerId id) { return static_cast<int>(id.value) + 1; }

/// Stage-span key of a ground-truth observation: -1 loading, else stage.
int stage_key(bool loading, int stage_type) {
  return loading ? -1 : stage_type;
}

std::string stage_span_name(int key) {
  return key < 0 ? "loading" : "exec:" + std::to_string(key);
}

}  // namespace

CloudPlatform::CloudPlatform(PlatformConfig cfg,
                             std::unique_ptr<Scheduler> scheduler)
    : cfg_(cfg),
      scheduler_(std::move(scheduler)),
      rng_(cfg.seed),
      streaming_(cfg.streaming) {
  COCG_EXPECTS(scheduler_ != nullptr);
  COCG_EXPECTS(cfg_.tick_ms > 0);
  COCG_EXPECTS(cfg_.control_period_ms >= cfg_.tick_ms);
  auto& reg = obs::metrics();
  obs_requests_ = reg.counter("platform.requests_submitted");
  obs_admitted_ = reg.counter("platform.sessions_admitted");
  obs_completed_ = reg.counter("platform.sessions_completed");
  obs_hw_ticks_ = reg.counter("platform.hardware_ticks");
  obs_control_ticks_ = reg.counter("platform.control_ticks");
  obs_queue_depth_ = reg.gauge("platform.queue_depth");
  obs_running_ = reg.gauge("platform.running_sessions");
  obs_wait_ms_ = reg.histogram(
      "platform.admission_wait_ms",
      {1000, 5000, 15000, 30000, 60000, 120000, 300000});
}

CloudPlatform::~CloudPlatform() = default;

ServerId CloudPlatform::add_server(const hw::ServerSpec& spec) {
  const ServerId id{servers_.size()};
  servers_.emplace_back(id, spec);
  auto& gauges = obs_util_.emplace_back();
  const std::string base = "platform.util.s" + std::to_string(id.value);
  for (int g = 0; g < spec.num_gpus; ++g) {
    gauges.push_back(obs::metrics().gauge(
        base + ".g" + std::to_string(g) + ".max_dim_fraction"));
  }
  if (obs::trace_enabled()) {
    obs::trace().set_process_name(
        trace_pid(id), "server" + std::to_string(id.value) + " (" +
                           spec.name + ")");
  }
  return id;
}

void CloudPlatform::add_source(const SourceConfig& source) {
  COCG_EXPECTS(source.spec != nullptr);
  COCG_EXPECTS(source.max_concurrent >= 1);
  COCG_EXPECTS(source.player_pool >= 1);
  sources_.push_back(SourceState{source, 0});
}

RequestId CloudPlatform::submit(const game::GameSpec* spec,
                                std::size_t script_idx,
                                std::uint64_t player_id) {
  COCG_EXPECTS(spec != nullptr);
  COCG_EXPECTS(script_idx < spec->scripts.size());
  GameRequest req;
  req.id = RequestId{next_request_++};
  req.spec = spec;
  req.script_idx = script_idx;
  req.player_id = player_id;
  req.arrival = engine_.now();
  queue_.push_back(req);
  obs_requests_.add();
  return req.id;
}

void CloudPlatform::add_open_loop_source(const OpenLoopSource& source) {
  COCG_EXPECTS(source.spec != nullptr);
  COCG_EXPECTS(source.arrivals_per_hour > 0.0);
  COCG_EXPECTS(source.player_pool >= 1);
  open_sources_.push_back(OpenState{source, kTimeNever});
}

void CloudPlatform::pump_open_loop_arrivals() {
  const TimeMs now = engine_.now();
  for (auto& os : open_sources_) {
    const double mean_gap_ms =
        3600.0 * 1000.0 / os.cfg.arrivals_per_hour;
    if (os.next_due == kTimeNever) {
      os.next_due = now + static_cast<DurationMs>(
                              std::max(1.0, rng_.exponential(mean_gap_ms)));
    }
    while (os.next_due <= now) {
      const auto script = static_cast<std::size_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(os.cfg.spec->scripts.size()) - 1));
      const auto player = static_cast<std::uint64_t>(
          rng_.uniform_int(1, os.cfg.player_pool));
      submit(os.cfg.spec, script, player);
      ++open_loop_arrivals_;
      os.next_due += static_cast<DurationMs>(
          std::max(1.0, rng_.exponential(mean_gap_ms)));
    }
  }
}

void CloudPlatform::replenish_sources() {
  for (auto& src : sources_) {
    while (src.outstanding < src.cfg.max_concurrent) {
      const auto script = static_cast<std::size_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(src.cfg.spec->scripts.size()) - 1));
      const auto player =
          static_cast<std::uint64_t>(rng_.uniform_int(1, src.cfg.player_pool));
      submit(src.cfg.spec, script, player);
      ++src.outstanding;
    }
  }
}

void CloudPlatform::try_admit_queue() {
  // FIFO scan; requests the scheduler rejects stay queued for the next
  // control period (Fig. 11: games continuously request "until the
  // distributor passes the request").
  std::deque<GameRequest> remaining;
  while (!queue_.empty()) {
    GameRequest req = queue_.front();
    queue_.pop_front();
    auto placement = scheduler_->admit(*this, req);
    if (!placement) {
      remaining.push_back(req);
      continue;
    }
    // Materialize the session.
    const SessionId sid{next_session_++};
    auto& srv = server_mut(placement->server);
    const bool placed =
        srv.place(sid, placement->gpu_index, placement->allocation);
    if (!placed) {
      COCG_WARN("scheduler " << scheduler_->name()
                             << " returned an infeasible placement; request "
                             << req.id.value << " requeued");
      remaining.push_back(req);
      continue;
    }
    auto plan = game::generate_plan(*req.spec, req.script_idx, req.player_id,
                                    rng_);
    ActiveSession as;
    as.session = std::make_unique<game::GameSession>(
        sid, req.spec, req.script_idx, std::move(plan), rng_.fork(),
        cfg_.session);
    as.server = placement->server;
    as.gpu_index = placement->gpu_index;
    as.script_idx = req.script_idx;
    as.player_id = req.player_id;
    as.request_arrival = req.arrival;
    as.trace.set_label(req.spec->name + "#" + std::to_string(sid.value));
    as.session->begin(engine_.now());
    obs_admitted_.add();
    obs_wait_ms_.record(
        static_cast<double>(engine_.now() - req.arrival));
    obs::events().record(
        engine_.now(),
        obs::SessionEvent{sid.value, req.spec->name, /*started=*/true,
                          placement->server.value, placement->gpu_index});
    if (obs::trace_enabled()) {
      obs::trace().set_thread_name(
          trace_pid(placement->server), static_cast<int>(sid.value),
          req.spec->name + "#" + std::to_string(sid.value));
    }
    sessions_.emplace(sid, std::move(as));
    scheduler_->on_session_start(*this, sid);
  }
  queue_ = std::move(remaining);
}

void CloudPlatform::roll_stage_span(ActiveSession& as, SessionId sid,
                                    int key, TimeMs t) {
  if (as.span_stage == key) return;
  auto& tb = obs::trace();
  const int pid = trace_pid(as.server);
  const int tid = static_cast<int>(sid.value);
  if (as.span_stage != -2 && t > as.span_start) {
    tb.add_complete(pid, tid, stage_span_name(as.span_stage), "stage",
                    as.span_start, t - as.span_start);
  }
  as.span_stage = key;
  as.span_start = t;
}

void CloudPlatform::hardware_tick() {
  const TimeMs t = engine_.now();
  obs_hw_ticks_.add();
  const bool obs_on = obs::enabled();
  const bool trace_on = obs::trace_enabled();

  // Per server: gather draws, resolve contention, advance sessions.
  for (auto& srv : servers_) {
    std::vector<hw::PinnedDraw> draws;
    std::vector<SessionId> sids;
    for (SessionId sid : srv.session_ids()) {
      auto it = sessions_.find(sid);
      COCG_CHECK(it != sessions_.end());
      auto& as = it->second;
      hw::PinnedDraw pd;
      pd.draw.sid = sid;
      pd.draw.demand = as.session->demand();
      pd.draw.allocation = srv.placement(sid).allocation;
      pd.gpu_index = as.gpu_index;
      draws.push_back(pd);
      sids.push_back(sid);
    }
    if (draws.empty()) continue;
    const auto supplies = hw::resolve_server(srv.spec(), draws);

    // Utilization snapshots (per GPU view). The registry gauges and trace
    // counter tracks are the metrics-facing export; util_log_ keeps the
    // Fig. 9 accessors working.
    if (record_utilization_ || obs_on) {
      const ResourceVector cap = srv.spec().per_gpu_capacity();
      for (int g = 0; g < srv.spec().num_gpus; ++g) {
        UtilizationPoint up;
        up.t = t;
        up.server = srv.id();
        up.gpu_index = g;
        for (std::size_t i = 0; i < sids.size(); ++i) {
          // CPU/RAM are charged to every view; GPU dims to the pinned view.
          up.total_supplied[Dim::kCpuPct] += supplies[i].supplied[Dim::kCpuPct];
          up.total_supplied[Dim::kRamMb] += supplies[i].supplied[Dim::kRamMb];
          if (draws[i].gpu_index == g) {
            up.total_supplied[Dim::kGpuPct] +=
                supplies[i].supplied[Dim::kGpuPct];
            up.total_supplied[Dim::kGpuMemMb] +=
                supplies[i].supplied[Dim::kGpuMemMb];
          }
        }
        for (std::size_t d = 0; d < kNumDims; ++d) {
          up.max_dim_fraction = std::max(
              up.max_dim_fraction, up.total_supplied.at(d) / cap.at(d));
        }
        obs_util_[srv.id().value][static_cast<std::size_t>(g)].set(
            up.max_dim_fraction);
        if (trace_on) {
          obs::trace().add_counter(
              trace_pid(srv.id()), "gpu" + std::to_string(g) + " util", t,
              {{"gpu_pct", up.total_supplied.gpu()},
               {"cpu_pct", up.total_supplied.cpu()},
               {"max_dim_pct", 100.0 * up.max_dim_fraction}});
        }
        if (record_utilization_) util_log_.push_back(up);
      }
    }

    // Advance sessions and record telemetry.
    for (std::size_t i = 0; i < sids.size(); ++i) {
      auto& as = sessions_.at(sids[i]);
      telemetry::MetricSample s;
      s.t = t;
      s.usage = supplies[i].supplied;
      for (std::size_t d = 0; d < kNumDims; ++d) {
        s.usage.at(d) = std::max(
            0.0, s.usage.at(d) *
                     (1.0 + rng_.normal(0.0, cfg_.measurement_noise_rel)));
      }
      s.true_stage_type = as.session->stage_type();
      s.true_loading =
          as.session->stage_kind() == game::StageKind::kLoading;
      s.true_cluster = as.session->current_cluster();
      if (trace_on) {
        roll_stage_span(as, sids[i],
                        stage_key(s.true_loading, s.true_stage_type), t);
      }
      const ResourceVector demand_before = draws[i].draw.demand;
      as.session->tick(t, supplies[i].supplied);
      s.fps = as.session->last_fps();
      as.trace.add(s);

      // §II-A streaming pipeline: interaction latency on rendering ticks.
      if (s.fps > 0.0) {
        const double cpu_sat =
            demand_before[Dim::kCpuPct] > 0.0
                ? std::min(1.0, supplies[i].supplied[Dim::kCpuPct] /
                                    demand_before[Dim::kCpuPct])
                : 1.0;
        const double lat = streaming_.latency_ms(s.fps, cpu_sat, rng_);
        as.latency_ms.add(lat);
        if (lat > streaming_.config().latency_budget_ms) {
          as.latency_violation_ms += cfg_.tick_ms;
        }
      }
    }
  }

  // §V-B1 harvest accounting: integrate unallocated capacity.
  if (record_harvest_) {
    const double dt_s = ms_to_sec(cfg_.tick_ms);
    for (const auto& srv : servers_) {
      double cpu_alloc = 0.0;
      for (int g = 0; g < srv.spec().num_gpus; ++g) {
        double gpu_alloc = 0.0;
        for (SessionId sid : srv.sessions_on_gpu(g)) {
          gpu_alloc += srv.placement(sid).allocation[Dim::kGpuPct];
          cpu_alloc += srv.placement(sid).allocation[Dim::kCpuPct];
        }
        harvested_gpu_s_ +=
            std::max(0.0, srv.spec().gpu_capacity_pct - gpu_alloc) / 100.0 *
            dt_s;
      }
      harvested_cpu_s_ +=
          std::max(0.0, srv.spec().cpu_capacity_pct - cpu_alloc) / 100.0 *
          dt_s;
    }
  }

  // Reap finished sessions (deterministic id order via map iteration).
  std::vector<SessionId> done;
  for (const auto& [sid, as] : sessions_) {
    if (as.session->finished()) done.push_back(sid);
  }
  for (SessionId sid : done) finish_session(sid, t + cfg_.tick_ms);
}

void CloudPlatform::finish_session(SessionId sid, TimeMs end) {
  auto it = sessions_.find(sid);
  COCG_CHECK(it != sessions_.end());
  auto& as = it->second;

  CompletedRun run;
  run.sid = sid;
  run.game = as.session->spec().name;
  run.script_idx = as.script_idx;
  run.start = as.session->start_time();
  run.end = end;
  run.duration_ms = end - as.session->start_time();
  run.wait_ms = as.session->start_time() - as.request_arrival;
  run.qos_violation_ms = as.session->qos_violation_ms();
  run.loading_extension_ms = as.session->loading_extension_ms();
  run.mean_fps_ratio = as.session->mean_fps_ratio();
  run.mean_fps = as.session->mean_fps();
  if (!as.latency_ms.empty()) {
    run.mean_latency_ms = as.latency_ms.mean();
    run.max_latency_ms = as.latency_ms.max();
  }
  run.latency_violation_ms = as.latency_violation_ms;
  completed_.push_back(run);

  obs_completed_.add();
  obs::events().record(
      end, obs::SessionEvent{sid.value, run.game, /*started=*/false,
                             as.server.value, as.gpu_index});
  if (obs::trace_enabled() && as.span_stage != -2 && end > as.span_start) {
    obs::trace().add_complete(trace_pid(as.server),
                              static_cast<int>(sid.value),
                              stage_span_name(as.span_stage), "stage",
                              as.span_start, end - as.span_start);
  }

  scheduler_->on_session_end(*this, sid);
  server_mut(as.server).remove(sid);

  // Credit the closed-loop source.
  for (auto& src : sources_) {
    if (src.cfg.spec == &as.session->spec()) {
      src.outstanding = std::max(0, src.outstanding - 1);
      break;
    }
  }
  sessions_.erase(it);
}

void CloudPlatform::control_tick() {
  replenish_sources();
  pump_open_loop_arrivals();
  try_admit_queue();
  scheduler_->control(*this);
  obs_control_ticks_.add();
  obs_queue_depth_.set(static_cast<double>(queue_.size()));
  obs_running_.set(static_cast<double>(sessions_.size()));
}

void CloudPlatform::schedule_request(const game::GameSpec* spec,
                                     std::size_t script_idx,
                                     std::uint64_t player_id, TimeMs at) {
  COCG_EXPECTS(spec != nullptr);
  COCG_EXPECTS(script_idx < spec->scripts.size());
  engine_.schedule_at(at, [this, spec, script_idx, player_id] {
    submit(spec, script_idx, player_id);
  });
}

void CloudPlatform::run(DurationMs duration_ms) {
  begin(duration_ms);
  advance_until(horizon_);
  finish();
}

void CloudPlatform::begin(DurationMs duration_ms) {
  COCG_EXPECTS(duration_ms > 0);
  COCG_EXPECTS_MSG(!hw_task_.active(), "begin() while already running");
  horizon_ = engine_.now() + duration_ms;

  replenish_sources();
  try_admit_queue();

  hw_task_ = engine_.schedule_periodic(
      cfg_.tick_ms, cfg_.tick_ms, [this](TimeMs t) {
        hardware_tick();
        return t < horizon_;
      });
  ctl_task_ = engine_.schedule_periodic(
      cfg_.control_period_ms, cfg_.control_period_ms, [this](TimeMs t) {
        control_tick();
        return t < horizon_;
      });
}

TimeMs CloudPlatform::advance_until(TimeMs t) { return engine_.run_until(t); }

void CloudPlatform::finish() {
  hw_task_.stop();
  ctl_task_.stop();
}

// --- PlatformView ---

TimeMs CloudPlatform::now() const { return engine_.now(); }

std::vector<ServerId> CloudPlatform::server_ids() const {
  std::vector<ServerId> out;
  out.reserve(servers_.size());
  for (const auto& s : servers_) out.push_back(s.id());
  return out;
}

const hw::Server& CloudPlatform::server(ServerId id) const {
  COCG_EXPECTS(id.value < servers_.size());
  return servers_[id.value];
}

hw::Server& CloudPlatform::server_mut(ServerId id) {
  COCG_EXPECTS(id.value < servers_.size());
  return servers_[id.value];
}

std::vector<SessionId> CloudPlatform::session_ids() const {
  std::vector<SessionId> out;
  out.reserve(sessions_.size());
  for (const auto& [sid, as] : sessions_) out.push_back(sid);
  return out;
}

const CloudPlatform::ActiveSession& CloudPlatform::active(
    SessionId sid) const {
  auto it = sessions_.find(sid);
  COCG_EXPECTS_MSG(it != sessions_.end(), "unknown session");
  return it->second;
}

SessionInfo CloudPlatform::session_info(SessionId sid) const {
  const auto& as = active(sid);
  SessionInfo info;
  info.id = sid;
  info.spec = &as.session->spec();
  info.script_idx = as.script_idx;
  info.player_id = as.player_id;
  info.server = as.server;
  info.gpu_index = as.gpu_index;
  info.allocation = servers_[as.server.value].placement(sid).allocation;
  info.start_time = as.session->start_time();
  return info;
}

const telemetry::Trace& CloudPlatform::session_trace(SessionId sid) const {
  return active(sid).trace;
}

bool CloudPlatform::reallocate(SessionId sid, const ResourceVector& allocation,
                               bool allow_oversubscribe) {
  auto it = sessions_.find(sid);
  if (it == sessions_.end()) return false;
  return server_mut(it->second.server)
      .reallocate(sid, allocation, allow_oversubscribe);
}

void CloudPlatform::hold_loading(SessionId sid, bool hold) {
  auto it = sessions_.find(sid);
  if (it == sessions_.end()) return;
  it->second.session->set_loading_hold(hold);
}

const game::GameSession& CloudPlatform::session_truth(SessionId sid) const {
  return *active(sid).session;
}

std::map<std::string, GameStats> CloudPlatform::game_stats() const {
  std::map<std::string, GameStats> out;
  std::map<std::string, double> ratio_sum, wait_sum;
  for (const auto& run : completed_) {
    auto& gs = out[run.game];
    ++gs.completed;
    gs.total_duration_s += ms_to_sec(run.duration_ms);
    gs.qos_violation_s += ms_to_sec(run.qos_violation_ms);
    ratio_sum[run.game] += run.mean_fps_ratio;
    wait_sum[run.game] += ms_to_sec(run.wait_ms);
  }
  for (auto& [name, gs] : out) {
    gs.mean_fps_ratio = ratio_sum[name] / std::max(1, gs.completed);
    gs.mean_wait_s = wait_sum[name] / std::max(1, gs.completed);
  }
  return out;
}

double CloudPlatform::throughput() const {
  // T = Σ_i N_i · S̄_i = total completed game-seconds (Eq. 2).
  double total = 0.0;
  for (const auto& run : completed_) total += ms_to_sec(run.duration_ms);
  return total;
}

}  // namespace cocg::platform
