#include "platform/cloud_platform.h"

#include <algorithm>

#include "common/check.h"
#include "common/log.h"
#include "game/plan.h"
#include "hw/batch_kernels.h"
#include "schedcheck/fault.h"
#include "schedcheck/session.h"

namespace cocg::platform {

namespace {

/// Trace pid of one server (pid 0 is reserved for the scheduler track).
int trace_pid(ServerId id) { return static_cast<int>(id.value) + 1; }

/// Stage-span key of a ground-truth observation: -1 loading, else stage.
int stage_key(bool loading, int stage_type) {
  return loading ? -1 : stage_type;
}

/// Cap on speculative container reservations (points / samples).
constexpr std::size_t kMaxSpeculativeReserve = 1u << 20;

}  // namespace

std::vector<obs::SloClassConfig> default_slo_classes() {
  // Indexed by game::GameCategory: kWeb, kMobile, kConsole, kMoba.
  return {
      {"web", 0.80, 150.0},
      {"mobile", 0.90, 120.0},
      {"console", 0.90, 100.0},
      {"moba", 0.95, 80.0},
  };
}

CloudPlatform::CloudPlatform(PlatformConfig cfg,
                             std::unique_ptr<Scheduler> scheduler)
    : cfg_(cfg),
      scheduler_(std::move(scheduler)),
      rng_(cfg.seed),
      streaming_(cfg.streaming) {
  COCG_EXPECTS(scheduler_ != nullptr);
  COCG_EXPECTS(cfg_.tick_ms > 0);
  COCG_EXPECTS(cfg_.control_period_ms >= cfg_.tick_ms);
  auto& reg = obs::metrics();
  obs_requests_ = reg.counter("platform.requests_submitted");
  obs_admitted_ = reg.counter("platform.sessions_admitted");
  obs_completed_ = reg.counter("platform.sessions_completed");
  obs_hw_ticks_ = reg.counter("platform.hardware_ticks");
  obs_session_ticks_ = reg.counter("platform.session_ticks");
  obs_control_ticks_ = reg.counter("platform.control_ticks");
  obs_queue_depth_ = reg.gauge("platform.queue_depth");
  obs_running_ = reg.gauge("platform.running_sessions");
  obs_wait_ms_ = reg.histogram(
      "platform.admission_wait_ms",
      {1000, 5000, 15000, 30000, 60000, 120000, 300000});
  obs_trace_dropped_ = reg.counter("platform.trace_samples_dropped");
  obs_util_dropped_ = reg.counter("platform.util_log_points_dropped");
  obs_ticks_skipped_ = reg.counter("tick.skipped");
  obs_ff_windows_ = reg.counter("tick.fast_forward_windows");
  obs_cache_hits_ = reg.counter("resolve.cache_hits");
  obs_cache_misses_ = reg.counter("resolve.cache_misses");
  prof_rng_ = obs::stage_timer(obs::Stage::kRngDraws);
  prof_kernels_ = obs::stage_timer(obs::Stage::kResourceKernels);
  prof_ff_ = obs::stage_timer(obs::Stage::kFastForward);
  prof_domain_ = &obs::profiler();
  slo_.configure(cfg_.slo_classes.empty() ? default_slo_classes()
                                          : cfg_.slo_classes);
}

CloudPlatform::~CloudPlatform() = default;

ServerId CloudPlatform::add_server(const hw::ServerSpec& spec) {
  const ServerId id{servers_.size()};
  servers_.emplace_back(id, spec);
  caches_.emplace_back();
  auto& gauges = obs_util_.emplace_back();
  const std::string base = "platform.util.s" + std::to_string(id.value);
  for (int g = 0; g < spec.num_gpus; ++g) {
    gauges.push_back(obs::metrics().gauge(
        base + ".g" + std::to_string(g) + ".max_dim_fraction"));
  }
  // Intern the per-device trace counter names once, not per tick.
  while (gpu_util_names_.size() < static_cast<std::size_t>(spec.num_gpus)) {
    gpu_util_names_.push_back(
        "gpu" + std::to_string(gpu_util_names_.size()) + " util");
  }
  if (obs::trace_enabled()) {
    obs::trace().set_process_name(
        trace_pid(id), "server" + std::to_string(id.value) + " (" +
                           spec.name + ")");
  }
  return id;
}

void CloudPlatform::add_source(const SourceConfig& source) {
  COCG_EXPECTS(source.spec != nullptr);
  COCG_EXPECTS(source.max_concurrent >= 1);
  COCG_EXPECTS(source.player_pool >= 1);
  sources_.push_back(SourceState{source, 0});
}

RequestId CloudPlatform::submit(const game::GameSpec* spec,
                                std::size_t script_idx,
                                std::uint64_t player_id) {
  return submit(spec, script_idx, player_id, RequestMeta{});
}

RequestId CloudPlatform::submit(const game::GameSpec* spec,
                                std::size_t script_idx,
                                std::uint64_t player_id,
                                const RequestMeta& meta) {
  COCG_EXPECTS(spec != nullptr);
  COCG_EXPECTS(script_idx < spec->scripts.size());
  GameRequest req;
  req.id = RequestId{next_request_++};
  req.spec = spec;
  req.script_idx = script_idx;
  req.player_id = player_id;
  req.arrival = engine_.now();
  req.meta = meta;
  queue_.push_back(req);
  obs_requests_.add();
  if (arrival_hook_) arrival_hook_(queue_.back());
  return req.id;
}

void CloudPlatform::add_open_loop_source(const OpenLoopSource& source) {
  COCG_EXPECTS(source.spec != nullptr);
  COCG_EXPECTS(source.arrivals_per_hour > 0.0);
  COCG_EXPECTS(source.player_pool >= 1);
  open_sources_.push_back(OpenState{source, kTimeNever});
}

void CloudPlatform::pump_open_loop_arrivals() {
  const TimeMs now = engine_.now();
  for (auto& os : open_sources_) {
    const double mean_gap_ms =
        3600.0 * 1000.0 / os.cfg.arrivals_per_hour;
    if (os.next_due == kTimeNever) {
      os.next_due = now + static_cast<DurationMs>(
                              std::max(1.0, rng_.exponential(mean_gap_ms)));
    }
    while (os.next_due <= now) {
      const auto script = static_cast<std::size_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(os.cfg.spec->scripts.size()) - 1));
      const auto player = static_cast<std::uint64_t>(
          rng_.uniform_int(1, os.cfg.player_pool));
      submit(os.cfg.spec, script, player);
      ++open_loop_arrivals_;
      os.next_due += static_cast<DurationMs>(
          std::max(1.0, rng_.exponential(mean_gap_ms)));
    }
  }
}

void CloudPlatform::replenish_sources() {
  for (auto& src : sources_) {
    while (src.outstanding < src.cfg.max_concurrent) {
      const auto script = static_cast<std::size_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(src.cfg.spec->scripts.size()) - 1));
      const auto player =
          static_cast<std::uint64_t>(rng_.uniform_int(1, src.cfg.player_pool));
      submit(src.cfg.spec, script, player);
      ++src.outstanding;
    }
  }
}

void CloudPlatform::try_admit_queue() {
  if (queue_.empty()) return;  // common case on idle control ticks
  // FIFO scan; requests the scheduler rejects stay queued for the next
  // control period (Fig. 11: games continuously request "until the
  // distributor passes the request").
  std::deque<GameRequest> remaining;
  while (!queue_.empty()) {
    GameRequest req = queue_.front();
    queue_.pop_front();
    auto placement = scheduler_->admit(*this, req);
    if (!placement) {
      remaining.push_back(req);
      continue;
    }
    // Schedule point: commit the placement now (1) or defer the request to
    // the next admission pass (0). The natural choice is always commit;
    // replay/fuzzing uses the deferral arm to shift admissions relative to
    // other shards' decisions.
    if (schedcheck::decide(schedcheck::Point::kAdmission, 2, 1) == 0) {
      remaining.push_back(req);
      continue;
    }
    // Materialize the session.
    const SessionId sid{next_session_++};
    auto& srv = server_mut(placement->server);
    const bool placed =
        srv.place(sid, placement->gpu_index, placement->allocation);
    if (!placed) {
      COCG_WARN("scheduler " << scheduler_->name()
                             << " returned an infeasible placement; request "
                             << req.id.value << " requeued");
      remaining.push_back(req);
      continue;
    }
    auto plan = game::generate_plan(*req.spec, req.script_idx, req.player_id,
                                    rng_);
    const DurationMs nominal_ms = game::plan_nominal_duration(plan);
    ActiveSession& as = sessions_.emplace(sid);
    as.session = std::make_unique<game::GameSession>(
        sid, req.spec, req.script_idx, std::move(plan), rng_.fork(),
        cfg_.session);
    as.server = placement->server;
    as.gpu_index = placement->gpu_index;
    as.script_idx = req.script_idx;
    as.player_id = req.player_id;
    as.request_arrival = req.arrival;
    as.meta = req.meta;
    as.trace.set_label(req.spec->name + "#" + std::to_string(sid.value));
    // Size the telemetry buffer for the expected run length (plus slack for
    // loading extensions) so steady-state sampling never reallocates.
    std::size_t expect =
        static_cast<std::size_t>(nominal_ms / cfg_.tick_ms) + 16;
    if (cfg_.trace_max_samples > 0) {
      as.trace.set_max_samples(cfg_.trace_max_samples);
      expect = std::min(expect, cfg_.trace_max_samples +
                                    cfg_.trace_max_samples / 2 + 1);
    }
    as.trace.reserve(std::min(expect, kMaxSpeculativeReserve));
    as.session->begin(engine_.now());
    obs_admitted_.add();
    obs_wait_ms_.record(
        static_cast<double>(engine_.now() - req.arrival));
    obs::events().record(
        engine_.now(),
        obs::SessionEvent{sid.value, req.spec->name, /*started=*/true,
                          placement->server.value, placement->gpu_index});
    if (obs::trace_enabled()) {
      obs::trace().set_thread_name(
          trace_pid(placement->server), static_cast<int>(sid.value),
          req.spec->name + "#" + std::to_string(sid.value));
    }
    scheduler_->on_session_start(*this, sid);
    // Test-only planted bug (schedcheck fuzzer efficacy): when an
    // admission lands while any session sits in a regulator loading hold,
    // mirror the new session onto the next server with a zero allocation —
    // a cross-server double-host only that interleaving can produce.
    if (schedcheck::fault() == schedcheck::Fault::kDoubleHostWindow &&
        servers_.size() >= 2) {
      bool hold_open = false;
      sessions_.for_each([&](SessionId other, const ActiveSession& o) {
        if (other != sid && o.session != nullptr &&
            o.session->loading_hold()) {
          hold_open = true;
        }
      });
      if (hold_open) {
        const ServerId shadow{(placement->server.value + 1) %
                              servers_.size()};
        server_mut(shadow).place(sid, 0, ResourceVector{});
      }
    }
  }
  queue_ = std::move(remaining);
}

const std::string& CloudPlatform::span_name(int key) {
  if (key < 0) return loading_span_name_;
  const auto k = static_cast<std::size_t>(key);
  while (exec_span_names_.size() <= k) {
    exec_span_names_.push_back("exec:" +
                               std::to_string(exec_span_names_.size()));
  }
  return exec_span_names_[k];
}

void CloudPlatform::roll_stage_span(ActiveSession& as, SessionId sid,
                                    int key, TimeMs t) {
  if (as.span_stage == key) return;
  auto& tb = obs::trace();
  const int pid = trace_pid(as.server);
  const int tid = static_cast<int>(sid.value);
  if (as.span_stage != -2 && t > as.span_start) {
    tb.add_complete(pid, tid, span_name(as.span_stage), "stage",
                    as.span_start, t - as.span_start);
  }
  as.span_stage = key;
  as.span_start = t;
}

DurationMs CloudPlatform::hardware_tick() {
  const TimeMs t = engine_.now();
  obs_hw_ticks_.add();
  const bool obs_on = obs::enabled();
  const bool trace_on = obs::trace_enabled();

  // Global fast-forward candidacy: any per-tick recorder that needs real
  // ticks (trace spans/counters, util log, harvest integration) or any
  // per-tick RNG consumer (measurement noise, streaming jitter) pins the
  // engine to per-tick execution; per-session quiescence (demand jitter,
  // spikes, stage boundaries) is folded in below.
  const bool ff_candidate =
      cfg_.macro_ticks && cfg_.incremental_resolve &&
      cfg_.measurement_noise_rel <= 0.0 &&
      streaming_.config().network_jitter_ms <= 0.0 && !trace_on &&
      !record_utilization_ && !record_harvest_;
  bool ff_ok = ff_candidate;
  std::int64_t min_quiescent = game::GameSession::kQuiescentUnbounded;
  std::size_t live_total = 0;

  // Per server: gather draws, resolve contention, advance sessions. The
  // hosted() view is iterated in ascending-sid order, matching the legacy
  // map-backed walk draw for draw. Draw/resolve buffers live in the
  // per-server ResolveCache: an unchanged demand epoch proves the hosted
  // set, allocations and demands are all bit-identical to the last resolve,
  // so a hit reuses the cached result; a miss (or the always-resolve
  // oracle) rebuilds the same buffers in place.
  for (auto& srv : servers_) {
    const auto& hosted = srv.hosted();
    if (hosted.empty()) continue;
    ResolveCache& cache = caches_[srv.id().value];
    const bool hit = cfg_.incremental_resolve && cache.valid &&
                     cache.stamp == srv.demand_epoch();
    auto& live = scratch_.live;
    live.clear();
    if (hit) {
      ++qstats_.resolve_cache_hits;
      obs_cache_hits_.add();
      // Session pointers are never cached: SessionTable growth relocates
      // slots, so re-find by sid (O(1)) every tick.
      for (const auto& h : hosted) {
        ActiveSession* as = sessions_.find(h.sid);
        COCG_CHECK(as != nullptr);
        live.push_back(as);
      }
    } else {
      ++qstats_.resolve_cache_misses;
      obs_cache_misses_.add();
      auto& draws = cache.draws;
      draws.clear();
      for (const auto& h : hosted) {
        ActiveSession* as = sessions_.find(h.sid);
        COCG_CHECK(as != nullptr);
        hw::PinnedDraw pd;
        pd.draw.sid = h.sid;
        pd.draw.demand = as->session->demand();
        pd.draw.allocation = h.placement.allocation;
        pd.gpu_index = as->gpu_index;
        draws.push_back(pd);
        live.push_back(as);
      }
      hw::resolve_server(srv.spec(), draws, cache.resolve);
      cache.valid = true;
      cache.stamp = srv.demand_epoch();
    }
    const auto& draws = cache.draws;
    const auto& supplies = cache.resolve.out;
    obs_session_ticks_.add(draws.size());
    live_total += draws.size();

    // Utilization snapshots (per GPU view). The registry gauges and trace
    // counter tracks are the metrics-facing export; util_log_ keeps the
    // Fig. 9 accessors working. Accumulated in one pass over sessions —
    // per-view sums still add in session order, so totals are bit-identical
    // to the per-view rescan this replaced.
    if (record_utilization_ || obs_on) {
      const ResourceVector cap = srv.spec().per_gpu_capacity();
      const auto ngpus = static_cast<std::size_t>(srv.spec().num_gpus);
      auto& util = scratch_.util;
      // Grow-once scratch: keep the per-GPU slots allocated across servers
      // and ticks, re-zeroing the fields in place instead of the former
      // clear()/resize() destroy-construct churn.
      if (util.size() < ngpus) util.resize(ngpus);
      for (std::size_t g = 0; g < ngpus; ++g) {
        util[g].t = t;
        util[g].server = srv.id();
        util[g].gpu_index = static_cast<int>(g);
        util[g].total_supplied = ResourceVector{};
        util[g].max_dim_fraction = 0.0;
      }
      // CPU/RAM are charged to every view; every view adds the same
      // supplies in the same session order, so one ordered sum over the
      // SoA supply lanes equals each view's former sequential total
      // bit-for-bit. GPU dims bucket to the pinned view in draw order.
      const auto& lanes = cache.resolve.lanes;
      const std::size_t ndraws = draws.size();
      const double cpu_sum = hw::batch::sum_ordered(
          lanes.supplied[static_cast<std::size_t>(Dim::kCpuPct)].data(),
          ndraws);
      const double ram_sum = hw::batch::sum_ordered(
          lanes.supplied[static_cast<std::size_t>(Dim::kRamMb)].data(),
          ndraws);
      for (std::size_t g = 0; g < ngpus; ++g) {
        util[g].total_supplied[Dim::kCpuPct] = cpu_sum;
        util[g].total_supplied[Dim::kRamMb] = ram_sum;
      }
      const double* gpu_lane =
          lanes.supplied[static_cast<std::size_t>(Dim::kGpuPct)].data();
      const double* vram_lane =
          lanes.supplied[static_cast<std::size_t>(Dim::kGpuMemMb)].data();
      for (std::size_t i = 0; i < ndraws; ++i) {
        auto& pinned = util[static_cast<std::size_t>(draws[i].gpu_index)];
        pinned.total_supplied[Dim::kGpuPct] += gpu_lane[i];
        pinned.total_supplied[Dim::kGpuMemMb] += vram_lane[i];
      }
      for (std::size_t g = 0; g < ngpus; ++g) {
        UtilizationPoint& up = util[g];
        for (std::size_t d = 0; d < kNumDims; ++d) {
          up.max_dim_fraction = std::max(
              up.max_dim_fraction, up.total_supplied.at(d) / cap.at(d));
        }
        obs_util_[srv.id().value][g].set(up.max_dim_fraction);
        if (trace_on) {
          obs::trace().add_counter(
              trace_pid(srv.id()), gpu_util_names_[g], t,
              {{"gpu_pct", up.total_supplied.gpu()},
               {"cpu_pct", up.total_supplied.cpu()},
               {"max_dim_pct", 100.0 * up.max_dim_fraction}});
        }
        if (record_utilization_) {
          util_log_.push_back(up);
          if (cfg_.util_log_max_points > 0 &&
              util_log_.size() > cfg_.util_log_max_points +
                                     cfg_.util_log_max_points / 2) {
            const std::size_t drop =
                util_log_.size() - cfg_.util_log_max_points;
            util_log_.erase(
                util_log_.begin(),
                util_log_.begin() + static_cast<std::ptrdiff_t>(drop));
            util_log_dropped_ += drop;
            obs_util_dropped_.add(drop);
          }
        }
      }
    }

    // Advance sessions and record telemetry.
    for (std::size_t i = 0; i < live.size(); ++i) {
      ActiveSession& as = *live[i];
      telemetry::MetricSample s;
      s.t = t;
      s.usage = supplies[i].supplied;
      // Batched measurement noise: one fill per session reproduces the
      // exact draw sequence of the former per-dimension normal() calls.
      // Noise-free configs skip the draws entirely (the Box–Muller
      // transcendentals dominate the per-session tick cost).
      if (cfg_.measurement_noise_rel > 0.0) {
        obs::StageScope rng_scope(prof_rng_);
        double noise[kNumDims];
        rng_.fill_normal(noise, kNumDims, 0.0, cfg_.measurement_noise_rel);
        for (std::size_t d = 0; d < kNumDims; ++d) {
          s.usage.at(d) = std::max(0.0, s.usage.at(d) * (1.0 + noise[d]));
        }
      }
      s.true_stage_type = as.session->stage_type();
      s.true_loading =
          as.session->stage_kind() == game::StageKind::kLoading;
      s.true_cluster = as.session->current_cluster();
      if (trace_on) {
        roll_stage_span(as, draws[i].draw.sid,
                        stage_key(s.true_loading, s.true_stage_type), t);
      }
      const ResourceVector demand_before = draws[i].draw.demand;
      const std::uint64_t dv = as.session->demand_version();
      {
        obs::StageScope kernel_scope(prof_kernels_);
        as.session->tick(t, supplies[i].supplied);
      }
      // Stage transition / jitter redraw / spike start-or-end all surface
      // as a demand-version change: advance the server's epoch so the next
      // tick re-resolves.
      if (as.session->demand_version() != dv) srv.bump_demand_epoch();
      if (ff_ok) {
        if (as.session->finished()) {
          ff_ok = false;  // reap + removal this tick: state changes
        } else {
          const std::int64_t q =
              as.session->quiescent_ticks(supplies[i].supplied);
          if (q < min_quiescent) min_quiescent = q;
          if (q == 0) ff_ok = false;
        }
      }
      s.fps = as.session->last_fps();
      as.trace.add(s);

      // §II-A streaming pipeline: interaction latency on rendering ticks.
      if (s.fps > 0.0) {
        const double cpu_sat =
            demand_before[Dim::kCpuPct] > 0.0
                ? std::min(1.0, supplies[i].supplied[Dim::kCpuPct] /
                                    demand_before[Dim::kCpuPct])
                : 1.0;
        double lat = 0.0;
        {
          obs::StageScope rng_scope(prof_rng_);
          lat = streaming_.latency_ms(s.fps, cpu_sat, rng_);
        }
        as.latency_ms.add(lat);
        if (lat > streaming_.config().latency_budget_ms) {
          as.latency_violation_ms += cfg_.tick_ms;
        }
      }
    }
  }

  // §V-B1 harvest accounting: integrate unallocated capacity. Walks the
  // hosted() table per device in sid order — the same visit order (and
  // therefore the same floating-point sums) as the sessions_on_gpu() scan
  // this replaced.
  if (record_harvest_) {
    const double dt_s = ms_to_sec(cfg_.tick_ms);
    for (const auto& srv : servers_) {
      double cpu_alloc = 0.0;
      for (int g = 0; g < srv.spec().num_gpus; ++g) {
        double gpu_alloc = 0.0;
        for (const auto& h : srv.hosted()) {
          if (h.placement.gpu_index != g) continue;
          gpu_alloc += h.placement.allocation[Dim::kGpuPct];
          cpu_alloc += h.placement.allocation[Dim::kCpuPct];
        }
        harvested_gpu_s_ +=
            std::max(0.0, srv.spec().gpu_capacity_pct - gpu_alloc) / 100.0 *
            dt_s;
      }
      harvested_cpu_s_ +=
          std::max(0.0, srv.spec().cpu_capacity_pct - cpu_alloc) / 100.0 *
          dt_s;
    }
  }

  // Reap finished sessions in ascending id order (the legacy map order):
  // collect from the slot table, then sort.
  auto& done = scratch_.done;
  done.clear();
  sessions_.for_each([&](SessionId sid, ActiveSession& as) {
    if (as.session->finished()) done.push_back(sid);
  });
  std::sort(done.begin(), done.end());
  for (SessionId sid : done) finish_session(sid, t + cfg_.tick_ms);

  // --- macro-tick fast-forward decision ---
  const DurationMs dt = cfg_.tick_ms;
  if (!ff_ok || !done.empty() || min_quiescent < 1) return dt;
  // Every session must have been advanced exactly once: a double-hosted
  // session (fault windows) ticks once per hosting server and would be
  // fast-forwarded at the wrong rate.
  if (live_total != sessions_.size()) return dt;
  // End-of-tick revalidation: any epoch advance during the session pass
  // (stage transition, regulator action from a racing control path) means
  // next tick's resolve differs — no window.
  for (const auto& srv : servers_) {
    if (srv.hosted().empty()) continue;
    const ResolveCache& cache = caches_[srv.id().value];
    if (!cache.valid || cache.stamp != srv.demand_epoch()) return dt;
  }
  // Window bound: the skipped ticks plus the re-armed tick must all land
  // strictly inside the gap to the next scheduled event AND inside the
  // current run_until() limit — the fleet's epoch barrier reads shard
  // state at exactly that limit, so state must not advance past it.
  const TimeMs bound = std::min(engine_.next_interesting_time(), horizon_);
  if (bound <= t) return dt;
  const auto max_w = static_cast<std::int64_t>((bound - t) / dt) - 1;
  const std::int64_t w = std::min(min_quiescent, max_w);
  if (w < 1) return dt;
  fast_forward_window(w, t);
  return (static_cast<DurationMs>(w) + 1) * dt;
}

void CloudPlatform::fast_forward_window(std::int64_t w, TimeMs t) {
  obs::StageScope ff_scope(prof_ff_);
  const DurationMs dt = cfg_.tick_ms;
  for (auto& srv : servers_) {
    const auto& hosted = srv.hosted();
    if (hosted.empty()) continue;
    ResolveCache& cache = caches_[srv.id().value];
    const auto& draws = cache.draws;
    const auto& supplies = cache.resolve.out;
    for (std::size_t i = 0; i < draws.size(); ++i) {
      ActiveSession* asp = sessions_.find(draws[i].draw.sid);
      COCG_CHECK(asp != nullptr);
      ActiveSession& as = *asp;
      // Pre-tick observable state is constant across a quiescent window,
      // so the skipped ticks' telemetry samples differ only in timestamp.
      telemetry::MetricSample s;
      s.usage = supplies[i].supplied;
      s.true_stage_type = as.session->stage_type();
      s.true_loading =
          as.session->stage_kind() == game::StageKind::kLoading;
      s.true_cluster = as.session->current_cluster();
      s.fps = as.session->last_fps();
      for (std::int64_t k = 1; k <= w; ++k) {
        s.t = t + static_cast<DurationMs>(k) * dt;
        as.trace.add(s);
      }
      as.session->fast_forward(w, supplies[i].supplied);
      if (s.fps > 0.0) {
        const ResourceVector& demand_before = draws[i].draw.demand;
        const double cpu_sat =
            demand_before[Dim::kCpuPct] > 0.0
                ? std::min(1.0, supplies[i].supplied[Dim::kCpuPct] /
                                    demand_before[Dim::kCpuPct])
                : 1.0;
        // Jitter-free by the window's preconditions: latency_ms draws no
        // RNG and returns the same value every skipped tick. Welford
        // accumulation is order-dependent, so add it w times rather than
        // folding — bit-identity with the per-tick path.
        const double lat = streaming_.latency_ms(s.fps, cpu_sat, rng_);
        for (std::int64_t k = 0; k < w; ++k) as.latency_ms.add(lat);
        if (lat > streaming_.config().latency_budget_ms) {
          as.latency_violation_ms += static_cast<DurationMs>(w) * dt;
        }
      }
    }
    obs_session_ticks_.add(static_cast<std::uint64_t>(w) * draws.size());
  }
  // Keep the tick counters equal to what the per-tick oracle would report.
  obs_hw_ticks_.add(static_cast<std::uint64_t>(w));
  qstats_.ticks_skipped += static_cast<std::uint64_t>(w);
  ++qstats_.fast_forward_windows;
  obs_ticks_skipped_.add(static_cast<std::uint64_t>(w));
  obs_ff_windows_.add();
}

void CloudPlatform::finish_session(SessionId sid, TimeMs end) {
  ActiveSession* asp = sessions_.find(sid);
  COCG_CHECK(asp != nullptr);
  ActiveSession& as = *asp;

  CompletedRun run;
  run.sid = sid;
  run.game = as.session->spec().name;
  run.script_idx = as.script_idx;
  run.start = as.session->start_time();
  run.end = end;
  run.duration_ms = end - as.session->start_time();
  run.wait_ms = as.session->start_time() - as.request_arrival;
  run.qos_violation_ms = as.session->qos_violation_ms();
  run.loading_extension_ms = as.session->loading_extension_ms();
  run.region = as.meta.region;
  run.profile = as.meta.profile;
  run.expected_session_ms = as.meta.expected_session_ms;
  run.mean_fps_ratio = as.session->mean_fps_ratio();
  run.mean_fps = as.session->mean_fps();
  if (!as.latency_ms.empty()) {
    run.mean_latency_ms = as.latency_ms.mean();
    run.max_latency_ms = as.latency_ms.max();
  }
  run.latency_violation_ms = as.latency_violation_ms;
  completed_.push_back(run);

  slo_.record(static_cast<std::size_t>(as.session->spec().category),
              run.mean_fps_ratio, run.mean_latency_ms);
  obs_completed_.add();
  obs_trace_dropped_.add(as.trace.dropped_samples());
  obs::events().record(
      end, obs::SessionEvent{sid.value, run.game, /*started=*/false,
                             as.server.value, as.gpu_index});
  if (obs::trace_enabled() && as.span_stage != -2 && end > as.span_start) {
    obs::trace().add_complete(trace_pid(as.server),
                              static_cast<int>(sid.value),
                              span_name(as.span_stage), "stage",
                              as.span_start, end - as.span_start);
  }

  scheduler_->on_session_end(*this, sid);
  server_mut(as.server).remove(sid);

  // Credit the closed-loop source.
  for (auto& src : sources_) {
    if (src.cfg.spec == &as.session->spec()) {
      src.outstanding = std::max(0, src.outstanding - 1);
      break;
    }
  }
  sessions_.erase(sid);
}

void CloudPlatform::control_tick() {
  replenish_sources();
  pump_open_loop_arrivals();
  try_admit_queue();
  scheduler_->control(*this);
  obs_control_ticks_.add();
  obs_queue_depth_.set(static_cast<double>(queue_.size()));
  obs_running_.set(static_cast<double>(sessions_.size()));

  // Perfetto stage-cost counter track: one stacked series per stage on
  // the scheduler pid, emitted as per-control-period deltas so the track
  // reads as "ms of stage work per 5 s of sim time".
  if (obs::trace_enabled() && obs::profiling_enabled()) {
    if (!stage_track_named_) {
      obs::trace().set_process_name(0, "scheduler/profiler");
      stage_track_named_ = true;
    }
    const obs::StageProfile cur = prof_domain_->profile();
    obs::TraceBuilder::NumberArgs series;
    series.reserve(obs::kNumStages);
    for (std::size_t i = 0; i < obs::kNumStages; ++i) {
      const double delta_ms =
          static_cast<double>(cur[i].total_ns -
                              prev_stage_profile_[i].total_ns) /
          1e6;
      series.emplace_back(obs::stage_name(i), delta_ms);
    }
    obs::trace().add_counter(0, "stage costs (ms)", engine_.now(),
                             std::move(series));
    prev_stage_profile_ = cur;
  }
}

void CloudPlatform::schedule_request(const game::GameSpec* spec,
                                     std::size_t script_idx,
                                     std::uint64_t player_id, TimeMs at) {
  schedule_request(spec, script_idx, player_id, at, RequestMeta{});
}

void CloudPlatform::schedule_request(const game::GameSpec* spec,
                                     std::size_t script_idx,
                                     std::uint64_t player_id, TimeMs at,
                                     const RequestMeta& meta) {
  COCG_EXPECTS(spec != nullptr);
  COCG_EXPECTS(script_idx < spec->scripts.size());
  engine_.schedule_at(at, [this, spec, script_idx, player_id, meta] {
    submit(spec, script_idx, player_id, meta);
  });
}

void CloudPlatform::run(DurationMs duration_ms) {
  begin(duration_ms);
  advance_until(horizon_);
  finish();
}

void CloudPlatform::begin(DurationMs duration_ms) {
  COCG_EXPECTS(duration_ms > 0);
  COCG_EXPECTS_MSG(!hw_task_.active(), "begin() while already running");
  horizon_ = engine_.now() + duration_ms;

  if (record_utilization_ && util_log_.empty()) {
    // One point per GPU view per tick, capped to keep the speculative
    // reservation sane for very long horizons.
    std::size_t views = 0;
    for (const auto& srv : servers_) {
      views += static_cast<std::size_t>(srv.spec().num_gpus);
    }
    const auto ticks = static_cast<std::size_t>(duration_ms / cfg_.tick_ms);
    std::size_t expect = views * ticks;
    if (cfg_.util_log_max_points > 0) {
      expect = std::min(expect, cfg_.util_log_max_points +
                                    cfg_.util_log_max_points / 2 + 1);
    }
    util_log_.reserve(std::min(expect, kMaxSpeculativeReserve));
  }

  replenish_sources();
  try_admit_queue();

  // The hardware tick chooses its own next delay: tick_ms normally,
  // (w+1)·tick_ms after absorbing a quiescent window. Delays are always
  // multiples of tick_ms, so firings stay on the tick grid.
  hw_task_ = engine_.schedule_periodic_dyn(cfg_.tick_ms, [this](TimeMs t) {
    const DurationMs next = hardware_tick();
    return t < horizon_ ? next : 0;
  });
  ctl_task_ = engine_.schedule_periodic(
      cfg_.control_period_ms, cfg_.control_period_ms, [this](TimeMs t) {
        control_tick();
        return t < horizon_;
      });
}

TimeMs CloudPlatform::advance_until(TimeMs t) { return engine_.run_until(t); }

void CloudPlatform::finish() {
  hw_task_.stop();
  ctl_task_.stop();
}

// --- PlatformView ---

TimeMs CloudPlatform::now() const { return engine_.now(); }

std::vector<ServerId> CloudPlatform::server_ids() const {
  std::vector<ServerId> out;
  out.reserve(servers_.size());
  for (const auto& s : servers_) out.push_back(s.id());
  return out;
}

const hw::Server& CloudPlatform::server(ServerId id) const {
  COCG_EXPECTS(id.value < servers_.size());
  return servers_[id.value];
}

hw::Server& CloudPlatform::server_mut(ServerId id) {
  COCG_EXPECTS(id.value < servers_.size());
  return servers_[id.value];
}

std::vector<SessionId> CloudPlatform::session_ids() const {
  return sessions_.sorted_ids();
}

const CloudPlatform::ActiveSession& CloudPlatform::active(
    SessionId sid) const {
  const ActiveSession* as = sessions_.find(sid);
  COCG_EXPECTS_MSG(as != nullptr, "unknown session");
  return *as;
}

SessionInfo CloudPlatform::session_info(SessionId sid) const {
  const auto& as = active(sid);
  SessionInfo info;
  info.id = sid;
  info.spec = &as.session->spec();
  info.script_idx = as.script_idx;
  info.player_id = as.player_id;
  info.server = as.server;
  info.gpu_index = as.gpu_index;
  info.allocation = servers_[as.server.value].placement(sid).allocation;
  info.start_time = as.session->start_time();
  return info;
}

const telemetry::Trace& CloudPlatform::session_trace(SessionId sid) const {
  return active(sid).trace;
}

bool CloudPlatform::reallocate(SessionId sid, const ResourceVector& allocation,
                               bool allow_oversubscribe) {
  ActiveSession* as = sessions_.find(sid);
  if (as == nullptr) return false;
  return server_mut(as->server).reallocate(sid, allocation,
                                           allow_oversubscribe);
}

void CloudPlatform::hold_loading(SessionId sid, bool hold) {
  ActiveSession* as = sessions_.find(sid);
  if (as == nullptr) return;
  as->session->set_loading_hold(hold);
  // A hold leaves the resolve inputs untouched (demand keeps being drawn),
  // but every regulator action advances the epoch by policy — one spare
  // re-resolve is cheaper than reasoning about the exception (see the
  // invalidation table in docs/performance.md).
  server_mut(as->server).bump_demand_epoch();
}

const game::GameSession& CloudPlatform::session_truth(SessionId sid) const {
  return *active(sid).session;
}

std::map<std::string, GameStats> CloudPlatform::game_stats() const {
  std::map<std::string, GameStats> out;
  std::map<std::string, double> ratio_sum, wait_sum;
  for (const auto& run : completed_) {
    auto& gs = out[run.game];
    ++gs.completed;
    gs.total_duration_s += ms_to_sec(run.duration_ms);
    gs.qos_violation_s += ms_to_sec(run.qos_violation_ms);
    ratio_sum[run.game] += run.mean_fps_ratio;
    wait_sum[run.game] += ms_to_sec(run.wait_ms);
  }
  for (auto& [name, gs] : out) {
    gs.mean_fps_ratio = ratio_sum[name] / std::max(1, gs.completed);
    gs.mean_wait_s = wait_sum[name] / std::max(1, gs.completed);
  }
  return out;
}

double CloudPlatform::throughput() const {
  // T = Σ_i N_i · S̄_i = total completed game-seconds (Eq. 2).
  double total = 0.0;
  for (const auto& run : completed_) total += ms_to_sec(run.duration_ms);
  return total;
}

}  // namespace cocg::platform
