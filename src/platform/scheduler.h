// Abstract scheduling strategy plugged into the CloudPlatform.
//
// Implementations: CoCG (core/cocg_scheduler.h) and the §V baselines —
// VBP, GAugur-style profiling, and the "improved" reactive scheme.
#pragma once

#include <optional>
#include <string>

#include "common/resources.h"
#include "common/types.h"
#include "platform/request.h"
#include "platform/view.h"

namespace cocg::platform {

/// Where and how to host an admitted request.
struct Placement {
  ServerId server;
  int gpu_index = 0;
  ResourceVector allocation;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string name() const = 0;

  /// Decide whether `req` can start now. Returning nullopt keeps it queued;
  /// admission is retried every control period.
  virtual std::optional<Placement> admit(PlatformView& view,
                                         const GameRequest& req) = 0;

  /// Called every control period (default: the paper's 5 s) to adjust
  /// allocations / resolve peaks.
  virtual void control(PlatformView& view) { (void)view; }

  virtual void on_session_start(PlatformView& view, SessionId sid) {
    (void)view;
    (void)sid;
  }
  virtual void on_session_end(PlatformView& view, SessionId sid) {
    (void)view;
    (void)sid;
  }
};

}  // namespace cocg::platform
