// CloudPlatform: the GamingAnywhere-like cloud game service (§II-A),
// simulated end to end on a discrete-event engine.
//
// Responsibilities:
//  * host servers and sessions, resolve hardware contention each second;
//  * run closed-loop request sources and the admission queue;
//  * drive the plugged-in Scheduler (admission + 5-second control loop);
//  * record per-session telemetry and platform-level utilization;
//  * account completed runs, throughput T = Σ N_i·S_i (Eq. 2) and QoS.
//
// Hot-path layout (see docs/performance.md): sessions live in a dense
// SessionTable, per-tick buffers live in a reusable TickScratch arena, and
// all trace/counter name strings are interned up front — hardware_tick()
// performs zero heap allocation at steady state.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "game/session.h"
#include "hw/contention.h"
#include "hw/server.h"
#include "obs/obs.h"
#include "obs/slo.h"
#include "platform/request.h"
#include "platform/scheduler.h"
#include "platform/session_table.h"
#include "platform/streaming.h"
#include "platform/view.h"
#include "sim/engine.h"
#include "telemetry/trace.h"

namespace cocg::platform {

struct PlatformConfig {
  DurationMs tick_ms = 1000;          ///< hardware/session advance cadence
  DurationMs control_period_ms = 5000; ///< scheduler control cadence (§IV-B)
  double measurement_noise_rel = 0.02; ///< probe noise on recorded samples
  game::SessionConfig session;
  StreamingConfig streaming;           ///< §II-A pipeline latency model
  std::uint64_t seed = 42;
  /// Per-session telemetry window: keep at most this many newest samples
  /// per trace (0 = unbounded). Long-horizon soak runs set this to bound
  /// memory; report-producing experiments leave it off.
  std::size_t trace_max_samples = 0;
  /// Utilization-log window: keep at most this many newest points in
  /// utilization_log() (0 = unbounded).
  std::size_t util_log_max_points = 0;
  /// SLO classes, indexed by game::GameCategory (so the table must have
  /// one entry per category, in enum order). Empty selects
  /// default_slo_classes().
  std::vector<obs::SloClassConfig> slo_classes;
  /// Quiescence-aware tick engine (docs/performance.md). When on, each
  /// server's resolve result is cached and reused while its demand epoch is
  /// unchanged; turning it off is the always-resolve bit-identity oracle.
  bool incremental_resolve = true;
  /// Macro-tick fast-forward: when every session is quiescent and no
  /// per-tick recorder (noise, trace, util log, harvest) needs real ticks,
  /// advance session accounting analytically across multi-tick windows and
  /// skip the intermediate hardware-tick events. Requires
  /// incremental_resolve; off = per-tick oracle.
  bool macro_ticks = true;
};

/// Quiescence engine counters (also exported as metrics counters and in
/// fleet reports/health heartbeats).
struct QuiescenceStats {
  std::uint64_t ticks_skipped = 0;       ///< hw ticks absorbed by windows
  std::uint64_t fast_forward_windows = 0;
  std::uint64_t resolve_cache_hits = 0;   ///< per server per tick
  std::uint64_t resolve_cache_misses = 0;
};

/// The default SLO class table, one class per game::GameCategory in enum
/// order. Targets follow the delay-sensitivity ladder ("Games Are Not
/// Equal"): MOBAs are the tightest, web-category platformers the most
/// tolerant; the latency targets bracket the 100 ms streaming budget.
std::vector<obs::SloClassConfig> default_slo_classes();

/// One finished play-through.
struct CompletedRun {
  SessionId sid;
  std::string game;
  std::size_t script_idx = 0;
  TimeMs start = 0;
  TimeMs end = 0;
  DurationMs duration_ms = 0;
  DurationMs wait_ms = 0;  ///< request arrival → admission
  DurationMs qos_violation_ms = 0;
  DurationMs loading_extension_ms = 0;
  /// Traffic metadata carried through from the arrival (request.h).
  std::uint32_t region = 0;
  std::uint8_t profile = 1;
  DurationMs expected_session_ms = 0;
  double mean_fps_ratio = 1.0;
  double mean_fps = 0.0;
  /// §II-A interaction latency over execution ticks.
  double mean_latency_ms = 0.0;
  double max_latency_ms = 0.0;
  DurationMs latency_violation_ms = 0;  ///< ticks over the latency budget
};

/// Aggregate per game (Eq. 2 inputs).
struct GameStats {
  int completed = 0;
  double total_duration_s = 0.0;   ///< Σ S_i over completed runs
  double mean_fps_ratio = 0.0;     ///< averaged over completed runs
  double qos_violation_s = 0.0;
  double mean_wait_s = 0.0;        ///< request arrival → admission
};

/// Per-tick utilization snapshot of one GPU view (for Fig. 9-style plots).
struct UtilizationPoint {
  TimeMs t = 0;
  ServerId server;
  int gpu_index = 0;
  ResourceVector total_supplied;
  double max_dim_fraction = 0.0;  ///< max over dims of supplied/capacity
};

class CloudPlatform final : public PlatformView {
 public:
  CloudPlatform(PlatformConfig cfg, std::unique_ptr<Scheduler> scheduler);
  ~CloudPlatform() override;

  CloudPlatform(const CloudPlatform&) = delete;
  CloudPlatform& operator=(const CloudPlatform&) = delete;

  /// Add a server before running. Returns its id.
  ServerId add_server(const hw::ServerSpec& spec);

  /// Register a closed-loop request source.
  void add_source(const SourceConfig& source);

  /// Register an open-loop Poisson arrival source (active once run()
  /// starts; arrivals stop at the experiment horizon).
  void add_open_loop_source(const OpenLoopSource& source);

  /// Arrivals generated by open-loop sources so far.
  std::size_t open_loop_arrivals() const { return open_loop_arrivals_; }

  /// Submit a one-shot request (used by targeted experiments).
  RequestId submit(const game::GameSpec* spec, std::size_t script_idx,
                   std::uint64_t player_id);
  /// Metadata-carrying variant: region/profile/expected-length ride along
  /// into the session and its CompletedRun.
  RequestId submit(const game::GameSpec* spec, std::size_t script_idx,
                   std::uint64_t player_id, const RequestMeta& meta);

  /// Observe every request the instant it joins the admission queue
  /// (closed-loop replenish, open-loop pumps, scheduled injections alike).
  /// The capture path hangs a traffic recorder off this; null disables.
  /// The hook must not reenter the platform.
  using ArrivalHook = std::function<void(const GameRequest&)>;
  void set_arrival_hook(ArrivalHook hook) { arrival_hook_ = std::move(hook); }

  /// Record per-GPU utilization snapshots every tick (Fig. 9 benches).
  void enable_utilization_recording(bool on) { record_utilization_ = on; }

  /// §V-B1: capacity not allocated to latency-critical games "can be
  /// allocated to tasks with low latency-critical tasks such as machine
  /// learning and graph computing". When enabled, the platform integrates
  /// the unallocated capacity every tick — the resource pool a best-effort
  /// co-runner could harvest.
  void enable_harvest_accounting(bool on) { record_harvest_ = on; }
  double harvested_gpu_seconds() const { return harvested_gpu_s_; }
  double harvested_cpu_seconds() const { return harvested_cpu_s_; }

  /// Schedule a one-shot request submission at absolute sim time `at`
  /// (>= now()). The fleet router injects routed open-loop arrivals this
  /// way; the request joins the admission queue when the event fires.
  void schedule_request(const game::GameSpec* spec, std::size_t script_idx,
                        std::uint64_t player_id, TimeMs at);
  void schedule_request(const game::GameSpec* spec, std::size_t script_idx,
                        std::uint64_t player_id, TimeMs at,
                        const RequestMeta& meta);

  /// Run the experiment for `duration_ms` of simulated time.
  void run(DurationMs duration_ms);

  /// Split-phase variant of run() for lockstep execution (the fleet's
  /// epoch/barrier model): begin() arms the periodic tasks and performs
  /// the initial admission pass, advance_until() executes the event loop
  /// up to `t` (events at exactly `t` still run), finish() stops the
  /// periodic tasks. run() == begin(); advance_until(horizon); finish().
  void begin(DurationMs duration_ms);
  TimeMs advance_until(TimeMs t);
  void finish();
  TimeMs horizon() const { return horizon_; }

  // --- PlatformView ---
  TimeMs now() const override;
  std::vector<ServerId> server_ids() const override;
  const hw::Server& server(ServerId id) const override;
  std::vector<SessionId> session_ids() const override;
  SessionInfo session_info(SessionId sid) const override;
  const telemetry::Trace& session_trace(SessionId sid) const override;
  bool reallocate(SessionId sid, const ResourceVector& allocation,
                  bool allow_oversubscribe = false) override;
  void hold_loading(SessionId sid, bool hold) override;

  /// Allocation-free alternative to server_ids(): ids are dense [0, n).
  std::size_t num_servers() const { return servers_.size(); }

  // --- results ---
  const std::vector<CompletedRun>& completed_runs() const {
    return completed_;
  }
  std::map<std::string, GameStats> game_stats() const;
  /// Throughput T = Σ_i N_i · S̄_i with S̄ in seconds (Eq. 2) — equals the
  /// total completed game-seconds delivered in the window.
  double throughput() const;
  const std::vector<UtilizationPoint>& utilization_log() const {
    return util_log_;
  }
  /// Points discarded by the util_log_max_points window.
  std::uint64_t utilization_log_dropped() const { return util_log_dropped_; }
  std::size_t queued_requests() const { return queue_.size(); }
  std::size_t running_sessions() const { return sessions_.size(); }
  /// Requests ever submitted / sessions ever admitted — the conservation
  /// ledger the schedcheck invariants balance against queued + running +
  /// completed counts.
  std::uint64_t submitted_requests() const { return next_request_ - 1; }
  std::uint64_t sessions_admitted() const { return next_session_ - 1; }
  /// SessionTable structural audit ("" when consistent) — schedcheck.
  std::string session_table_consistency() const {
    return sessions_.consistency_error();
  }
  /// Engine event-queue depth (health snapshots).
  std::size_t pending_events() const { return engine_.pending_events(); }
  Scheduler& scheduler() { return *scheduler_; }

  /// Per-class SLO attainment over completed runs (always on — see
  /// obs/slo.h). The fleet merges shard trackers via merge_from.
  const obs::SloTracker& slo_tracker() const { return slo_; }

  /// Quiescence engine counters (zeros when incremental_resolve is off).
  const QuiescenceStats& quiescence_stats() const { return qstats_; }

  /// This platform's stage-profiler snapshot (the obs domain active at
  /// construction; zeros unless obs::set_profiling_enabled(true)).
  obs::StageProfile stage_profile() const { return prof_domain_->profile(); }

  /// Ground-truth access for evaluation harnesses (never for schedulers).
  const game::GameSession& session_truth(SessionId sid) const;

 private:
  struct ActiveSession {
    std::unique_ptr<game::GameSession> session;
    ServerId server;
    int gpu_index = 0;
    std::size_t script_idx = 0;
    std::uint64_t player_id = 0;
    RequestMeta meta;
    telemetry::Trace trace;
    RunningStats latency_ms;
    DurationMs latency_violation_ms = 0;
    TimeMs request_arrival = 0;
    /// Open timeline span (ground-truth stage): -2 none, -1 loading,
    /// >= 0 the execution stage type.
    int span_stage = -2;
    TimeMs span_start = 0;
  };
  struct SourceState {
    SourceConfig cfg;
    int outstanding = 0;  ///< queued + running instances
  };
  /// Reusable per-tick buffers. Cleared (capacity retained) every tick, so
  /// steady-state hardware_tick() never touches the heap. Draws and resolve
  /// buffers live per server in ResolveCache so hits can reuse them.
  struct TickScratch {
    std::vector<ActiveSession*> live;   ///< parallel to the cache's draws
    std::vector<UtilizationPoint> util; ///< one per GPU of current server
    std::vector<SessionId> done;        ///< finished sessions, pre-sort
  };
  /// Per-server resolve state. A hit (epoch unchanged since `stamp`) reuses
  /// `draws` and `resolve.out`/`resolve.lanes` verbatim; a miss (or the
  /// always-resolve oracle) rebuilds both in place, so hit and miss ticks
  /// read identical buffers.
  struct ResolveCache {
    bool valid = false;
    std::uint64_t stamp = 0;  ///< server demand epoch at last resolve
    std::vector<hw::PinnedDraw> draws;
    hw::ServerResolveScratch resolve;
  };

  /// Runs one hardware tick; returns the delay until the next one —
  /// tick_ms normally, (w+1)·tick_ms after absorbing a w-tick quiescent
  /// window analytically.
  DurationMs hardware_tick();
  /// Materialize w skipped ticks' worth of session accounting (traces,
  /// latency stats, counters) at current time t; every cache must be hot.
  void fast_forward_window(std::int64_t w, TimeMs t);
  void control_tick();
  /// Close (and re-open) a session's ground-truth stage span in the trace.
  void roll_stage_span(ActiveSession& as, SessionId sid, int stage_key,
                       TimeMs t);
  /// Interned span name for a stage key (-1 → "loading", k → "exec:k").
  const std::string& span_name(int key);
  void pump_open_loop_arrivals();
  void try_admit_queue();
  void finish_session(SessionId sid, TimeMs end);
  void replenish_sources();
  hw::Server& server_mut(ServerId id);
  const ActiveSession& active(SessionId sid) const;

  PlatformConfig cfg_;
  std::unique_ptr<Scheduler> scheduler_;
  sim::Engine engine_;
  Rng rng_;
  StreamingModel streaming_;

  std::vector<hw::Server> servers_;
  std::vector<ResolveCache> caches_;  ///< parallel to servers_
  /// Dense slot store; deterministic id order is recovered where it matters
  /// (reaping, session_ids) via collect-and-sort.
  SessionTable<ActiveSession> sessions_;
  struct OpenState {
    OpenLoopSource cfg;
    TimeMs next_due = kTimeNever;
  };
  std::deque<GameRequest> queue_;
  std::vector<SourceState> sources_;
  std::vector<OpenState> open_sources_;
  std::size_t open_loop_arrivals_ = 0;
  ArrivalHook arrival_hook_;

  std::vector<CompletedRun> completed_;
  std::vector<UtilizationPoint> util_log_;
  std::uint64_t util_log_dropped_ = 0;
  bool record_utilization_ = false;
  bool record_harvest_ = false;
  double harvested_gpu_s_ = 0.0;
  double harvested_cpu_s_ = 0.0;

  std::uint64_t next_session_ = 1;
  std::uint64_t next_request_ = 1;
  TimeMs horizon_ = 0;
  sim::PeriodicTask hw_task_;
  sim::PeriodicTask ctl_task_;

  TickScratch scratch_;

  // Interned name strings (members, not function-local statics: fleet
  // shards run platforms on parallel threads).
  std::vector<std::string> gpu_util_names_;   ///< "gpu<g> util" per device
  std::vector<std::string> exec_span_names_;  ///< "exec:<k>" per stage key
  std::string loading_span_name_ = "loading";

  // Observability handles (pre-resolved; recording is ~free when the
  // global switch is off). Utilization gauges are per GPU view, resolved
  // in add_server, and replace the ad-hoc UtilizationPoint plumbing as the
  // metrics-facing export — util_log_ remains for the Fig. 9 accessors.
  obs::Counter obs_requests_;
  obs::Counter obs_admitted_;
  obs::Counter obs_completed_;
  obs::Counter obs_hw_ticks_;
  obs::Counter obs_session_ticks_;  ///< sessions advanced, summed per tick
  obs::Counter obs_control_ticks_;
  obs::Gauge obs_queue_depth_;
  obs::Gauge obs_running_;
  obs::Histogram obs_wait_ms_;
  std::vector<std::vector<obs::Gauge>> obs_util_;  ///< [server][gpu]
  /// Windowing drop accounting, surfaced in the metrics snapshot:
  /// per-session trace drops are credited when the session finishes;
  /// util-log drops are credited at the drop site.
  obs::Counter obs_trace_dropped_;
  obs::Counter obs_util_dropped_;
  // Quiescence engine counters: authoritative totals in qstats_ (reports,
  // health), mirrored to registry counters for the metrics snapshot.
  QuiescenceStats qstats_;
  obs::Counter obs_ticks_skipped_;
  obs::Counter obs_ff_windows_;
  obs::Counter obs_cache_hits_;
  obs::Counter obs_cache_misses_;

  // Stage profiler: per-tick scopes plus the domain profiler pointer the
  // Perfetto counter track and stage_profile() read.
  obs::StageTimer prof_rng_;
  obs::StageTimer prof_kernels_;
  obs::StageTimer prof_ff_;
  obs::StageProfiler* prof_domain_ = nullptr;
  obs::StageProfile prev_stage_profile_{};  ///< last counter-track export
  bool stage_track_named_ = false;

  /// Per-class SLO attainment (always-on recording at session finish).
  obs::SloTracker slo_;
};

}  // namespace cocg::platform
