// Dense slot-indexed session store.
//
// The platform's hot loop touches every active session every simulated
// tick. A std::map gives deterministic iteration but costs a pointer-chasing
// tree walk per lookup and a node allocation per admission. SessionTable
// keeps the sessions in contiguous slot storage:
//
//  * O(1) id -> slot lookup through a direct-mapped index: session ids are
//    issued sequentially, so the index is a flat vector indexed by id —
//    one array load per lookup, no hashing and no node chase (4 bytes per
//    id ever issued; it only grows on admission, never on the tick path);
//  * no swap-remove: erasing one session never relocates another, and
//    emplace() only relocates values when it has to grow the slot vector —
//    so pointers collected within a tick (no admissions) stay valid;
//  * freed slots are recycled through a free list — steady-state admission
//    reuses storage instead of allocating;
//  * iteration order over slots is *not* id order; callers that need the
//    deterministic ascending-id order (reaping, PlatformView::session_ids)
//    use sorted_ids() / collect-and-sort, which keeps reports byte-identical
//    with the previous std::map-backed store.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace cocg::platform {

template <class T>
class SessionTable {
 public:
  /// Create a default-constructed value for `sid` (must not be present).
  /// The reference stays valid until the next emplace() that grows the
  /// slot vector; erase() of other sessions never invalidates it.
  T& emplace(SessionId sid) {
    COCG_EXPECTS(sid.valid());
    COCG_EXPECTS_MSG(!contains(sid), "session already in table");
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
      slots_[slot].value = T{};
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    slots_[slot].sid = sid;
    if (sid.value >= index_.size()) {
      index_.resize(static_cast<std::size_t>(sid.value) + 1, kNoSlot);
    }
    index_[sid.value] = slot;
    ++size_;
    return slots_[slot].value;
  }

  T* find(SessionId sid) {
    const std::uint32_t slot = slot_of(sid);
    return slot == kNoSlot ? nullptr : &slots_[slot].value;
  }
  const T* find(SessionId sid) const {
    const std::uint32_t slot = slot_of(sid);
    return slot == kNoSlot ? nullptr : &slots_[slot].value;
  }

  bool contains(SessionId sid) const { return slot_of(sid) != kNoSlot; }

  /// Destroy the stored value (slot is recycled). Returns false if absent.
  bool erase(SessionId sid) {
    const std::uint32_t slot = slot_of(sid);
    if (slot == kNoSlot) return false;
    slots_[slot].sid = SessionId{};   // invalid id marks the slot dead
    slots_[slot].value = T{};         // release resources eagerly
    free_.push_back(slot);
    index_[sid.value] = kNoSlot;
    --size_;
    return true;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Visit every live session in slot order (NOT id order).
  template <class F>
  void for_each(F&& f) {
    for (auto& s : slots_) {
      if (s.sid.valid()) f(s.sid, s.value);
    }
  }
  template <class F>
  void for_each(F&& f) const {
    for (const auto& s : slots_) {
      if (s.sid.valid()) f(s.sid, s.value);
    }
  }

  /// Live session ids in ascending order (the legacy std::map order).
  std::vector<SessionId> sorted_ids() const {
    std::vector<SessionId> ids;
    ids.reserve(size_);
    for (const auto& s : slots_) {
      if (s.sid.valid()) ids.push_back(s.sid);
    }
    std::sort(ids.begin(), ids.end());
    return ids;
  }

  /// Slots ever allocated (live + recycled) — capacity introspection.
  std::size_t slot_count() const { return slots_.size(); }

  /// Structural audit for the schedcheck invariant suite: verifies the
  /// index ↔ slot agreement, free-list validity (dead, in-range, no
  /// duplicates), the live/free partition of the slot vector, and the
  /// cached size. Returns "" when consistent, else a description of the
  /// first problem found. O(slots); not for the tick path.
  std::string consistency_error() const {
    std::vector<char> on_free(slots_.size(), 0);
    for (const std::uint32_t slot : free_) {
      if (slot >= slots_.size()) {
        return "free-list entry " + std::to_string(slot) +
               " out of range (slots: " + std::to_string(slots_.size()) + ")";
      }
      if (on_free[slot]) {
        return "slot " + std::to_string(slot) + " appears twice on the free list";
      }
      if (slots_[slot].sid.valid()) {
        return "slot " + std::to_string(slot) +
               " is on the free list but holds live session " +
               std::to_string(slots_[slot].sid.value);
      }
      on_free[slot] = 1;
    }
    std::size_t live = 0;
    for (std::size_t slot = 0; slot < slots_.size(); ++slot) {
      const SessionId sid = slots_[slot].sid;
      if (!sid.valid()) {
        if (!on_free[slot]) {
          return "dead slot " + std::to_string(slot) +
                 " is missing from the free list";
        }
        continue;
      }
      ++live;
      if (sid.value >= index_.size() || index_[sid.value] != slot) {
        return "live session " + std::to_string(sid.value) + " in slot " +
               std::to_string(slot) + " is not indexed back to its slot";
      }
    }
    for (std::size_t id = 0; id < index_.size(); ++id) {
      const std::uint32_t slot = index_[id];
      if (slot == kNoSlot) continue;
      if (slot >= slots_.size() || slots_[slot].sid.value != id) {
        return "index entry for session " + std::to_string(id) +
               " points at slot " + std::to_string(slot) +
               " which does not hold it";
      }
    }
    if (live != size_) {
      return "cached size " + std::to_string(size_) + " != live slots " +
             std::to_string(live);
    }
    return {};
  }

 private:
  static constexpr std::uint32_t kNoSlot =
      std::numeric_limits<std::uint32_t>::max();

  struct Slot {
    SessionId sid;  ///< invalid when the slot is on the free list
    T value;
  };

  std::uint32_t slot_of(SessionId sid) const {
    return sid.value < index_.size() ? index_[sid.value] : kNoSlot;
  }

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::vector<std::uint32_t> index_;  ///< sid.value -> slot, kNoSlot if dead
  std::size_t size_ = 0;
};

}  // namespace cocg::platform
