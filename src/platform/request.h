// Game requests and closed-loop request sources.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "game/spec.h"

namespace cocg::platform {

/// Per-session traffic context carried from the arrival stream into the
/// session (and out again on CompletedRun). Indices and codes are opaque
/// to the platform: `region` indexes the fleet's traffic::RegionTable
/// (0 = "global"), `profile` encodes traffic::PlayerProfile, and
/// `expected_session_ms` is the player's *declared* expected session
/// length — metadata for QoS/capacity work, never a control input.
struct RequestMeta {
  std::uint32_t region = 0;
  std::uint8_t profile = 1;  ///< traffic::PlayerProfile::kRegular
  DurationMs expected_session_ms = 0;
};

/// A pending "start this game for this player" request.
struct GameRequest {
  RequestId id;
  const game::GameSpec* spec = nullptr;
  std::size_t script_idx = 0;
  std::uint64_t player_id = 0;
  TimeMs arrival = 0;
  RequestMeta meta;
};

/// Closed-loop source (the Fig. 11 methodology): a game "continuously runs
/// requests" — whenever fewer than `max_concurrent` instances are queued or
/// running, another request is submitted with a uniformly random script.
struct SourceConfig {
  const game::GameSpec* spec = nullptr;
  int max_concurrent = 1;
  int player_pool = 16;  ///< player ids drawn from [1, player_pool]
};

/// Open-loop Poisson source: players arrive at `arrivals_per_hour`
/// independent of service progress — the datacenter-facing workload model
/// (queue growth under overload is visible, unlike closed loops).
struct OpenLoopSource {
  const game::GameSpec* spec = nullptr;
  double arrivals_per_hour = 6.0;
  int player_pool = 16;
};

}  // namespace cocg::platform
