// The scheduler's window onto the platform.
//
// Schedulers see servers, placements, and observed telemetry — never a
// session's internal ground truth (its plan or true stage). This enforces
// the paper's information model: CoCG works from 5-second resource samples.
#pragma once

#include <vector>

#include "common/resources.h"
#include "common/types.h"
#include "game/spec.h"
#include "hw/server.h"
#include "telemetry/trace.h"

namespace cocg::platform {

struct SessionInfo {
  SessionId id;
  const game::GameSpec* spec = nullptr;
  std::size_t script_idx = 0;
  std::uint64_t player_id = 0;
  ServerId server;
  int gpu_index = 0;
  ResourceVector allocation;
  TimeMs start_time = 0;
};

class PlatformView {
 public:
  virtual ~PlatformView() = default;

  virtual TimeMs now() const = 0;

  virtual std::vector<ServerId> server_ids() const = 0;
  virtual const hw::Server& server(ServerId id) const = 0;

  /// All running sessions, ordered by id for determinism.
  virtual std::vector<SessionId> session_ids() const = 0;
  virtual SessionInfo session_info(SessionId sid) const = 0;

  /// Observed telemetry so far (1-second samples; ground-truth fields are
  /// populated for offline evaluation but schedulers must not read them).
  virtual const telemetry::Trace& session_trace(SessionId sid) const = 0;

  /// Change a session's allocation cap. Fails (false) when it does not fit,
  /// unless allow_oversubscribe.
  virtual bool reallocate(SessionId sid, const ResourceVector& allocation,
                          bool allow_oversubscribe = false) = 0;

  /// Freeze/unfreeze a loading stage's progress (regulator time-stealing).
  virtual void hold_loading(SessionId sid, bool hold) = 0;
};

}  // namespace cocg::platform
