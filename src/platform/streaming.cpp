#include "platform/streaming.h"

#include <algorithm>

#include "common/check.h"

namespace cocg::platform {

StreamingModel::StreamingModel(StreamingConfig cfg) : cfg_(cfg) {
  COCG_EXPECTS(cfg_.network_rtt_ms >= 0.0);
  COCG_EXPECTS(cfg_.network_jitter_ms >= 0.0);
  COCG_EXPECTS(cfg_.encode_ms >= 0.0);
  COCG_EXPECTS(cfg_.decode_ms >= 0.0);
  COCG_EXPECTS(cfg_.latency_budget_ms > 0.0);
}

double StreamingModel::latency_ms(double fps, double cpu_satisfaction,
                                  Rng& rng) const {
  COCG_EXPECTS_MSG(fps > 0.0, "latency is defined for rendering ticks only");
  const double sat = std::clamp(cpu_satisfaction, 0.05, 1.0);
  const double frame_time_ms = 1000.0 / fps;
  const double jitter =
      cfg_.network_jitter_ms > 0.0
          ? std::max(0.0, rng.normal(0.0, cfg_.network_jitter_ms))
          : 0.0;
  return cfg_.network_rtt_ms + jitter + cfg_.input_process_ms / sat +
         frame_time_ms + cfg_.encode_ms / sat + cfg_.decode_ms;
}

}  // namespace cocg::platform
