#include "platform/streaming.h"

#include <algorithm>

#include "common/check.h"

namespace cocg::platform {

StreamingModel::StreamingModel(StreamingConfig cfg) : cfg_(cfg) {
  COCG_EXPECTS(cfg_.network_rtt_ms >= 0.0);
  COCG_EXPECTS(cfg_.network_jitter_ms >= 0.0);
  COCG_EXPECTS(cfg_.encode_ms >= 0.0);
  COCG_EXPECTS(cfg_.decode_ms >= 0.0);
  COCG_EXPECTS(cfg_.latency_budget_ms > 0.0);
}

}  // namespace cocg::platform
