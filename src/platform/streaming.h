// Cloud-game streaming pipeline model (§II-A).
//
// The paper's workflow: player input travels to the server, the CPU
// processes the command, the GPU renders the frame, the encoder compresses
// it, the network returns it, and the client decodes — cloud gaming is
// playable only when this loop stays within tens of milliseconds (the
// paper quotes a <3 ms network budget).
//
// StreamingModel turns a session's instantaneous FPS and CPU satisfaction
// into an end-to-end interaction latency sample:
//
//   latency = uplink + input processing / cpu_sat + frame time (1/fps)
//           + encode / cpu_sat + downlink (+ jitter) + decode
//
// Encoding and input processing run on the same contended CPU as the game,
// so co-location pressure stretches them — the mechanism by which resource
// squeeze becomes user-visible lag.
#pragma once

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"

namespace cocg::platform {

struct StreamingConfig {
  double network_rtt_ms = 6.0;     ///< round trip; paper wants <3 ms one-way
  double network_jitter_ms = 1.0;  ///< stddev of per-sample jitter
  double input_process_ms = 1.0;   ///< command compilation at full supply
  double encode_ms = 5.0;          ///< frame encode at full CPU supply
  double decode_ms = 4.0;          ///< client-side decode
  double latency_budget_ms = 100.0;  ///< interaction-latency QoS bound
};

class StreamingModel {
 public:
  explicit StreamingModel(StreamingConfig cfg = {});

  /// One end-to-end latency sample. `fps` must be > 0 (an execution-stage
  /// tick); `cpu_satisfaction` in (0, 1] stretches the CPU-bound pipeline
  /// segments. `rng` supplies network jitter. Inline: sampled once per
  /// rendering tick on the simulation hot path.
  double latency_ms(double fps, double cpu_satisfaction, Rng& rng) const {
    COCG_EXPECTS_MSG(fps > 0.0,
                     "latency is defined for rendering ticks only");
    const double sat = std::clamp(cpu_satisfaction, 0.05, 1.0);
    const double frame_time_ms = 1000.0 / fps;
    const double jitter =
        cfg_.network_jitter_ms > 0.0
            ? std::max(0.0, rng.normal(0.0, cfg_.network_jitter_ms))
            : 0.0;
    return cfg_.network_rtt_ms + jitter + cfg_.input_process_ms / sat +
           frame_time_ms + cfg_.encode_ms / sat + cfg_.decode_ms;
  }

  const StreamingConfig& config() const { return cfg_; }

 private:
  StreamingConfig cfg_;
};

}  // namespace cocg::platform
