#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace cocg::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";  // JSON has no NaN/Inf
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::abs(v) < 9.0e15) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

JsonObjectWriter::JsonObjectWriter(std::ostream& os) : os_(os) { os_ << '{'; }

JsonObjectWriter::~JsonObjectWriter() { close(); }

void JsonObjectWriter::close() {
  if (closed_) return;
  closed_ = true;
  os_ << '}';
}

void JsonObjectWriter::comma() {
  if (!first_) os_ << ',';
  first_ = false;
}

void JsonObjectWriter::field(const std::string& key, const std::string& value) {
  comma();
  os_ << '"' << json_escape(key) << "\":\"" << json_escape(value) << '"';
}

void JsonObjectWriter::field(const std::string& key, const char* value) {
  field(key, std::string(value));
}

void JsonObjectWriter::field(const std::string& key, double value) {
  comma();
  os_ << '"' << json_escape(key) << "\":" << json_number(value);
}

void JsonObjectWriter::field(const std::string& key, std::int64_t value) {
  comma();
  os_ << '"' << json_escape(key) << "\":" << value;
}

void JsonObjectWriter::field(const std::string& key, std::uint64_t value) {
  comma();
  os_ << '"' << json_escape(key) << "\":" << value;
}

void JsonObjectWriter::field(const std::string& key, int value) {
  field(key, static_cast<std::int64_t>(value));
}

void JsonObjectWriter::field(const std::string& key, bool value) {
  comma();
  os_ << '"' << json_escape(key) << "\":" << (value ? "true" : "false");
}

std::ostream& JsonObjectWriter::raw_field(const std::string& key) {
  comma();
  os_ << '"' << json_escape(key) << "\":";
  return os_;
}

// --- parser ---

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

std::string JsonValue::get_string(const std::string& key,
                                  const std::string& fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->kind == Kind::kString ? v->string : fallback;
}

double JsonValue::get_number(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->kind == Kind::kNumber ? v->number : fallback;
}

bool JsonValue::get_bool(const std::string& key, bool fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->kind == Kind::kBool ? v->boolean : fallback;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool literal(const char* word) {
    const std::size_t n = std::char_traits<char>::length(word);
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool value(JsonValue& out) {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object(out);
      case '[': return array(out);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return string(out.string);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return literal("null");
      default: return number(out);
    }
  }

  bool number(JsonValue& out) {
    const char* start = s_.c_str() + pos_;
    char* end = nullptr;
    out.number = std::strtod(start, &end);
    if (end == start) return false;
    out.kind = JsonValue::Kind::kNumber;
    pos_ += static_cast<std::size_t>(end - start);
    return true;
  }

  bool string(std::string& out) {
    if (s_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) return false;
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          // The writer only emits \u00XX control escapes; decode the
          // basic-multilingual subset as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue item;
      skip_ws();
      if (!value(item)) return false;
      out.array.push_back(std::move(item));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= s_.size() || !string(key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      skip_ws();
      JsonValue item;
      if (!value(item)) return false;
      out.object.emplace(std::move(key), std::move(item));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

bool json_parse(const std::string& text, JsonValue& out) {
  Parser p(text);
  return p.parse(out);
}

}  // namespace cocg::obs
