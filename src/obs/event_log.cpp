#include "obs/event_log.h"

#include <sstream>

#include "obs/json.h"
#include "obs/metrics.h"

namespace cocg::obs {

const char* event_kind_name(const EventPayload& payload) {
  struct Visitor {
    const char* operator()(const AdmissionEvent&) { return "admission"; }
    const char* operator()(const MonitorRecord&) { return "monitor"; }
    const char* operator()(const PredictionOutcome&) { return "prediction"; }
    const char* operator()(const RegulatorIntervention&) { return "regulator"; }
    const char* operator()(const MigrationEvent&) { return "migration"; }
    const char* operator()(const SessionEvent&) { return "session"; }
  };
  return std::visit(Visitor{}, payload);
}

void EventLog::record(TimeMs t, EventPayload payload) {
  if (!enabled()) return;
  events_.push_back(Event{t, std::move(payload)});
}

std::string event_to_json(const Event& e) {
  std::ostringstream os;
  JsonObjectWriter w(os);
  w.field("t", static_cast<std::int64_t>(e.t));
  w.field("kind", event_kind_name(e.payload));
  struct Visitor {
    JsonObjectWriter& w;
    void operator()(const AdmissionEvent& a) {
      w.field("request", a.request);
      w.field("game", a.game);
      w.field("admitted", a.admitted);
      w.field("reason", a.reason);
      if (a.admitted) {
        w.field("server", a.server);
        w.field("gpu", a.gpu);
      }
      w.field("waited_ms", static_cast<std::int64_t>(a.waited_ms));
    }
    void operator()(const MonitorRecord& m) {
      w.field("session", m.session);
      w.field("game", m.game);
      w.field("event", m.event);
      w.field("stage", m.stage);
    }
    void operator()(const PredictionOutcome& p) {
      w.field("session", p.session);
      w.field("game", p.game);
      w.field("predicted", p.predicted);
      w.field("actual", p.actual);
      w.field("hit", p.hit);
      w.field("model", p.model);
      w.field("redundancy_gpu", p.redundancy_gpu);
    }
    void operator()(const RegulatorIntervention& r) {
      w.field("session", r.session);
      w.field("game", r.game);
      w.field("hold", r.hold);
      w.field("stolen_ms", static_cast<std::int64_t>(r.stolen_ms));
    }
    void operator()(const MigrationEvent& m) {
      w.field("game", m.game);
      w.field("from_sku", m.from_sku);
      w.field("to_sku", m.to_sku);
    }
    void operator()(const SessionEvent& s) {
      w.field("session", s.session);
      w.field("game", s.game);
      w.field("started", s.started);
      w.field("server", s.server);
      w.field("gpu", s.gpu);
    }
  };
  std::visit(Visitor{w}, e.payload);
  w.close();
  return os.str();
}

void EventLog::write_jsonl(std::ostream& os) const {
  for (const auto& e : events_) os << event_to_json(e) << '\n';
}

std::string EventLog::to_jsonl() const {
  std::ostringstream os;
  write_jsonl(os);
  return os.str();
}

namespace {

bool payload_from_json(const JsonValue& v, EventPayload& out) {
  const std::string kind = v.get_string("kind");
  if (kind == "admission") {
    AdmissionEvent a;
    a.request = static_cast<std::uint64_t>(v.get_number("request"));
    a.game = v.get_string("game");
    a.admitted = v.get_bool("admitted");
    a.reason = v.get_string("reason");
    a.server = static_cast<std::uint64_t>(v.get_number("server"));
    a.gpu = static_cast<int>(v.get_number("gpu", -1));
    a.waited_ms = static_cast<DurationMs>(v.get_number("waited_ms"));
    out = a;
    return true;
  }
  if (kind == "monitor") {
    MonitorRecord m;
    m.session = static_cast<std::uint64_t>(v.get_number("session"));
    m.game = v.get_string("game");
    m.event = v.get_string("event");
    m.stage = static_cast<int>(v.get_number("stage", -1));
    out = m;
    return true;
  }
  if (kind == "prediction") {
    PredictionOutcome p;
    p.session = static_cast<std::uint64_t>(v.get_number("session"));
    p.game = v.get_string("game");
    p.predicted = static_cast<int>(v.get_number("predicted", -1));
    p.actual = static_cast<int>(v.get_number("actual", -1));
    p.hit = v.get_bool("hit");
    p.model = v.get_string("model");
    p.redundancy_gpu = v.get_number("redundancy_gpu");
    out = p;
    return true;
  }
  if (kind == "regulator") {
    RegulatorIntervention r;
    r.session = static_cast<std::uint64_t>(v.get_number("session"));
    r.game = v.get_string("game");
    r.hold = v.get_bool("hold");
    r.stolen_ms = static_cast<DurationMs>(v.get_number("stolen_ms"));
    out = r;
    return true;
  }
  if (kind == "migration") {
    MigrationEvent m;
    m.game = v.get_string("game");
    m.from_sku = v.get_string("from_sku");
    m.to_sku = v.get_string("to_sku");
    out = m;
    return true;
  }
  if (kind == "session") {
    SessionEvent s;
    s.session = static_cast<std::uint64_t>(v.get_number("session"));
    s.game = v.get_string("game");
    s.started = v.get_bool("started");
    s.server = static_cast<std::uint64_t>(v.get_number("server"));
    s.gpu = static_cast<int>(v.get_number("gpu", -1));
    out = s;
    return true;
  }
  return false;
}

}  // namespace

bool read_jsonl(std::istream& is, std::vector<Event>& out) {
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    JsonValue v;
    if (!json_parse(line, v) || !v.is_object()) return false;
    Event e;
    e.t = static_cast<TimeMs>(v.get_number("t"));
    if (!payload_from_json(v, e.payload)) return false;
    out.push_back(std::move(e));
  }
  return true;
}

}  // namespace cocg::obs
