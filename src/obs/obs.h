// Umbrella header for the observability layer.
//
//   obs::set_enabled(true);            // master switch (off by default)
//   obs::set_trace_enabled(true);      // opt into timeline collection
//   ... run the experiment ...
//   obs::metrics().write_json(os);     // counters/gauges/histograms
//   obs::events().write_jsonl(os);     // decision event log
//   obs::trace().write_json(os);       // Perfetto-compatible timeline
//
// See docs/observability.md for the metric and event catalog.
#pragma once

#include "obs/domain.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace_export.h"

namespace cocg::obs {

/// Zero all metric values and clear the event log and trace of the
/// current domain (see obs/domain.h). Metric cells (and therefore
/// pre-resolved handles held by live components) stay valid. Used between
/// experiments in one process and by tests.
void reset();

}  // namespace cocg::obs
