#include "obs/obs.h"

namespace cocg::obs {

void reset() {
  metrics().reset_values();
  events().clear();
  trace().clear();
}

}  // namespace cocg::obs
