#include "obs/obs.h"

namespace cocg::obs {

void reset() { current_domain().reset(); }

}  // namespace cocg::obs
