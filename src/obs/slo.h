// SLO attainment tracker — per-class FPS/latency targets from
// fixed-bucket histograms.
//
// "Games Are Not Equal": a MOBA at 54/60 FPS is broken while a platformer
// at the same ratio is fine, so the single fleet-wide mean FPS the reports
// carried until now hides exactly the signal a QoS-aware scheduler needs.
// The tracker groups completed runs into configurable SLO classes (the
// platform maps game::GameCategory to a class index) and evaluates two
// targets per class:
//
//   * FPS attained      when mean_fps_ratio >= min_fps_ratio
//   * latency attained  when mean_latency_ms <  max_latency_ms
//
// Evaluation is exact and histogram-based: each class target is inserted
// as a bucket edge of a fixed-bucket histogram (same upper_bound bucket
// semantics as obs::Histogram — bucket i counts edges[i-1] <= v <
// edges[i]), so attainment is a pure bucket sum with no per-run list kept
// anywhere. Two properties matter for where this sits in the stack:
//
//  * recording is ALWAYS ON (not gated on obs::enabled()) and alloc-free —
//    the fleet report must carry SLO rows even when no observability sink
//    was requested, and recording happens inside the zero-allocation hot
//    path (session finish);
//  * when the obs switch IS on, every record is mirrored into registry
//    histograms `slo.<class>.fps_ratio` / `slo.<class>.latency_ms`, so
//    the metrics JSON carries the full distributions alongside the
//    attainment table.
//
// Shard trackers merge by bucket sum (same class config required), which
// keeps fleet aggregation deterministic in shard order.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace cocg::obs {

/// One SLO class: a name plus the two targets.
struct SloClassConfig {
  std::string name;               ///< e.g. "moba" — JSON/metric key
  double min_fps_ratio = 0.90;    ///< attained when mean_fps_ratio >= this
  double max_latency_ms = 100.0;  ///< attained when mean_latency_ms < this
};

/// One class's evaluated attainment (report/health transport).
struct SloAttainment {
  std::string slo_class;
  std::uint64_t runs = 0;
  /// 100.0 when runs == 0 (vacuously attained).
  double fps_attainment_pct = 100.0;
  double latency_attainment_pct = 100.0;
};

class SloTracker {
 public:
  SloTracker() = default;
  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  /// Install the class table and pre-size every bucket array (so record()
  /// never allocates). Registers the mirror histograms in the current
  /// domain's registry. Call once, before any record().
  void configure(std::vector<SloClassConfig> classes);

  bool configured() const { return !classes_.empty(); }
  std::size_t num_classes() const { return classes_.size(); }
  const SloClassConfig& cls(std::size_t i) const { return classes_[i].cfg; }

  /// Copy of the class table (to configure a merge target identically).
  std::vector<SloClassConfig> class_configs() const {
    std::vector<SloClassConfig> out;
    out.reserve(classes_.size());
    for (const auto& st : classes_) out.push_back(st.cfg);
    return out;
  }

  /// Account one completed run. Always on, alloc-free; out-of-range class
  /// indices are dropped (a platform bug, but not worth crashing the hot
  /// path for). `latency_ms` <= 0 means "no rendered frames" and counts
  /// as latency-attained.
  void record(std::size_t class_index, double fps_ratio, double latency_ms);

  /// Sum another tracker's buckets into this one. Class tables must match
  /// (checked; the fleet builds every shard platform from one config).
  void merge_from(const SloTracker& other);

  /// Zero bucket values in place (class table and mirrors survive).
  void reset_values();

  /// Evaluate per-class attainment from the buckets.
  std::vector<SloAttainment> attainment() const;

  /// `[{"class":...,"runs":...,"fps_attainment_pct":...,
  ///    "latency_attainment_pct":...},...]` — canonical array shared by
  /// the fleet report and health snapshots (doubles via json_number).
  static void write_attainment_json(const std::vector<SloAttainment>& rows,
                                    std::ostream& os);

 private:
  struct ClassState {
    SloClassConfig cfg;
    // Fixed-bucket histograms with the target as an exact edge; bucket
    // semantics identical to detail::HistogramCell.
    std::vector<double> fps_edges, lat_edges;
    std::vector<std::uint64_t> fps_buckets, lat_buckets;
    std::size_t fps_target_idx = 0;  ///< fps_edges[idx] == min_fps_ratio
    std::size_t lat_target_idx = 0;  ///< lat_edges[idx] == max_latency_ms
    std::uint64_t runs = 0;
    // Registry mirrors (gated on obs::enabled() like every handle).
    Histogram fps_hist, lat_hist;
  };

  std::vector<ClassState> classes_;
};

}  // namespace cocg::obs
