#include "obs/profiler.h"

#include <atomic>
#include <chrono>

#include "obs/domain.h"
#include "obs/json.h"

namespace cocg::obs {

namespace {

std::atomic<bool> g_profiling{false};
std::atomic<ProfilerClockMode> g_clock_mode{ProfilerClockMode::kWall};

constexpr const char* kStageNames[kNumStages] = {
    "rng_draws",         "resource_kernels", "contention_resolve",
    "event_queue",       "predictor_decide", "distributor_decide",
    "regulator",         "router",           "shard_barrier",
    "executor_steal",    "executor_idle",    "fast_forward",
};

}  // namespace

const char* stage_name(Stage s) {
  return stage_name(static_cast<std::size_t>(s));
}

const char* stage_name(std::size_t index) {
  return index < kNumStages ? kStageNames[index] : "unknown";
}

bool profiling_enabled() {
  return g_profiling.load(std::memory_order_relaxed);
}

void set_profiling_enabled(bool on) {
  g_profiling.store(on, std::memory_order_relaxed);
}

void set_profiler_clock_mode(ProfilerClockMode m) {
  g_clock_mode.store(m, std::memory_order_relaxed);
}

ProfilerClockMode profiler_clock_mode() {
  return g_clock_mode.load(std::memory_order_relaxed);
}

std::uint64_t StageProfiler::now_ns() {
  if (g_clock_mode.load(std::memory_order_relaxed) ==
      ProfilerClockMode::kDeterministic) {
    // Per-profiler sequence: shard profilers see the same transition counts
    // regardless of how shards are packed onto runner threads.
    return ++det_seq_;
  }
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void StageProfiler::reset() {
  for (auto& s : slots_) {
    s.calls = 0;
    s.total_ns = 0;
  }
  det_seq_ = 0;
}

StageProfile StageProfiler::profile() const {
  StageProfile p{};
  for (std::size_t i = 0; i < kNumStages; ++i) {
    p[i].calls = slots_[i].calls;
    p[i].total_ns = slots_[i].total_ns;
  }
  return p;
}

std::uint64_t StageProfiler::total_calls() const {
  std::uint64_t n = 0;
  for (const auto& s : slots_) n += s.calls;
  return n;
}

std::uint64_t StageProfiler::total_ns() const {
  std::uint64_t n = 0;
  for (const auto& s : slots_) n += s.total_ns;
  return n;
}

void StageProfiler::merge_from(const StageProfiler& other) {
  merge_from(other.profile());
}

void StageProfiler::merge_from(const StageProfile& p) {
  for (std::size_t i = 0; i < kNumStages; ++i) {
    slots_[i].calls += p[i].calls;
    slots_[i].total_ns += p[i].total_ns;
  }
}

void StageProfiler::export_counters(MetricsRegistry& reg) const {
  for (std::size_t i = 0; i < kNumStages; ++i) {
    const std::string base = std::string("profiler.") + kStageNames[i];
    reg.counter(base + ".calls").add(slots_[i].calls);
    reg.counter(base + ".total_ns").add(slots_[i].total_ns);
  }
}

StageProfiler& profiler() { return current_domain().profiler; }

StageTimer stage_timer(Stage s) { return StageTimer(profiler(), s); }

void write_stage_costs_json(const StageProfile& p, std::ostream& os) {
  os << '[';
  for (std::size_t i = 0; i < kNumStages; ++i) {
    if (i) os << ',';
    os << "{\"stage\":\"" << kStageNames[i] << "\",\"calls\":" << p[i].calls
       << ",\"total_ns\":" << p[i].total_ns << '}';
  }
  os << ']';
}

}  // namespace cocg::obs
