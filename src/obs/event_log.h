// Structured event log — typed decision records keyed on sim time.
//
// Every consequential decision in the CoCG control loop (Fig. 8) appends
// one record: admissions with Algorithm 1's verdict reason, monitor
// judgements, prediction outcomes (predicted vs actual stage, model used,
// redundancy applied), regulator interventions (loading holds / time
// stealing), session lifecycle, and §IV-D profile migrations. The log
// answers "why did the system do X at time T" without printf archaeology.
//
// Export format is JSON Lines: one flat JSON object per record, `t` and
// `kind` always present. read_jsonl() parses the format back, so logs
// round-trip (tests) and post-processing scripts need no schema.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

#include "common/types.h"

namespace cocg::obs {

/// Admission verdict for one request on one control round (Algorithm 1).
struct AdmissionEvent {
  std::uint64_t request = 0;
  std::string game;
  bool admitted = false;
  std::string reason;           ///< distributor verdict / rejection cause
  std::uint64_t server = 0;     ///< chosen server (admitted only)
  int gpu = -1;                 ///< chosen GPU view (admitted only)
  DurationMs waited_ms = 0;     ///< request arrival → this decision
};

/// One OnlineMonitor judgement that changed state (stage transitions,
/// pending jumps, rehearsal callbacks — kSameStage is not logged).
struct MonitorRecord {
  std::uint64_t session = 0;
  std::string game;
  std::string event;  ///< monitor_event_name() string
  int stage = -1;     ///< judged stage after the observation
};

/// A scored next-stage prediction (resolved when the stage ends).
struct PredictionOutcome {
  std::uint64_t session = 0;
  std::string game;
  int predicted = -1;
  int actual = -1;
  bool hit = false;
  std::string model;          ///< active model kind (dtc/rf/gbdt)
  double redundancy_gpu = 0;  ///< Eq. 1's S on the GPU dim at scoring time
};

/// Regulator verdict applied to one session (loading-time stealing).
struct RegulatorIntervention {
  std::uint64_t session = 0;
  std::string game;
  bool hold = false;          ///< loading frozen this control period
  DurationMs stolen_ms = 0;   ///< cumulative steal in this loading stage
};

/// §IV-D profile migration between SKUs.
struct MigrationEvent {
  std::string game;
  std::string from_sku;
  std::string to_sku;
};

/// Session lifecycle (platform-side ground truth).
struct SessionEvent {
  std::uint64_t session = 0;
  std::string game;
  bool started = false;  ///< true: admitted+placed; false: finished
  std::uint64_t server = 0;
  int gpu = -1;
};

using EventPayload =
    std::variant<AdmissionEvent, MonitorRecord, PredictionOutcome,
                 RegulatorIntervention, MigrationEvent, SessionEvent>;

struct Event {
  TimeMs t = 0;
  EventPayload payload;
};

/// The JSONL `kind` tag of a payload.
const char* event_kind_name(const EventPayload& payload);

class EventLog {
 public:
  EventLog() = default;
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Append one record. No-op while observability is disabled.
  void record(TimeMs t, EventPayload payload);

  const std::vector<Event>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

  /// One JSON object per line, in record order.
  void write_jsonl(std::ostream& os) const;
  std::string to_jsonl() const;

 private:
  std::vector<Event> events_;
};

/// Serialize one event as a single JSONL line (no trailing newline).
std::string event_to_json(const Event& e);

/// Parse JSONL produced by write_jsonl back into typed events. Returns
/// false (and stops) on the first malformed or unknown-kind line.
bool read_jsonl(std::istream& is, std::vector<Event>& out);

/// The current domain's event log (process-global unless a ScopedDomain
/// is installed on this thread — see obs/domain.h).
EventLog& events();

}  // namespace cocg::obs
