// Metrics registry — named counters, gauges and fixed-bucket histograms
// with cheap hot-path recording.
//
// Design rules (this is the substrate perf PRs measure themselves against):
//  * handles are resolved ONCE (map lookup at registration); recording is a
//    branch on the global enable flag plus a pointer write — safe to leave
//    in event-loop and per-tick code;
//  * cells live for the registry's lifetime and are never invalidated —
//    `reset_values()` zeroes them in place so long-lived components keep
//    their handles across experiments;
//  * registering the same name twice returns the same cell (handle reuse),
//    so per-game metrics resolved by independent monitors aggregate;
//  * recording is NOT thread-safe (the simulator is single-threaded by
//    design); registration takes a map lookup and may allocate.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace cocg::obs {

/// Global observability switch. Off by default: every record call reduces
/// to one relaxed load + branch (bench_fig12 proves this is below the
/// noise floor of the 5-second loop).
bool enabled();
void set_enabled(bool on);

namespace detail {

struct CounterCell {
  std::uint64_t value = 0;
};

struct GaugeCell {
  double value = 0.0;
  std::uint64_t updates = 0;
};

struct HistogramCell {
  std::vector<double> edges;            ///< ascending bucket upper bounds
  std::vector<std::uint64_t> buckets;   ///< edges.size() + 1 (last: overflow)
  std::uint64_t count = 0;
  double sum = 0.0;
};

}  // namespace detail

/// Monotonic counter handle.
class Counter {
 public:
  Counter() = default;

  void add(std::uint64_t n = 1) const {
    if (cell_ == nullptr || !enabled()) return;
    cell_->value += n;
  }

  std::uint64_t value() const { return cell_ != nullptr ? cell_->value : 0; }
  bool valid() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Counter(detail::CounterCell* cell) : cell_(cell) {}
  detail::CounterCell* cell_ = nullptr;
};

/// Last-value gauge handle.
class Gauge {
 public:
  Gauge() = default;

  void set(double v) const {
    if (cell_ == nullptr || !enabled()) return;
    cell_->value = v;
    ++cell_->updates;
  }

  double value() const { return cell_ != nullptr ? cell_->value : 0.0; }
  std::uint64_t updates() const {
    return cell_ != nullptr ? cell_->updates : 0;
  }
  bool valid() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(detail::GaugeCell* cell) : cell_(cell) {}
  detail::GaugeCell* cell_ = nullptr;
};

/// Fixed-bucket histogram handle. Bucket i counts values v with
/// edges[i-1] <= v < edges[i]; values >= the last edge land in the
/// overflow bucket (index edges.size()).
class Histogram {
 public:
  Histogram() = default;

  void record(double v) const;

  std::uint64_t count() const { return cell_ != nullptr ? cell_->count : 0; }
  double sum() const { return cell_ != nullptr ? cell_->sum : 0.0; }
  std::uint64_t bucket(std::size_t i) const;
  std::size_t num_buckets() const {
    return cell_ != nullptr ? cell_->buckets.size() : 0;
  }
  bool valid() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(detail::HistogramCell* cell) : cell_(cell) {}
  detail::HistogramCell* cell_ = nullptr;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Resolve (creating on first use) a handle by name. Repeated calls with
  /// the same name return a handle to the same cell.
  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  /// `edges` must be strictly ascending and non-empty. If the name already
  /// exists, the original bucket layout wins and `edges` is ignored.
  Histogram histogram(const std::string& name, std::vector<double> edges);

  /// Zero every cell in place; handles stay valid.
  void reset_values();

  /// Fold another registry's values into this one: counters and histogram
  /// buckets/count/sum are summed, gauges take the other side's value when
  /// it was ever set (last-write-wins, with update counts summed). Missing
  /// instruments are created; histogram bucket layouts must agree for
  /// shared names. Used by the fleet layer to aggregate per-shard
  /// registries — merging shards in index order is deterministic.
  void merge_from(const MetricsRegistry& other);

  /// Snapshot accessors (registration-map lookup; for tests/exporters).
  bool has_counter(const std::string& name) const;
  bool has_gauge(const std::string& name) const;
  bool has_histogram(const std::string& name) const;
  std::uint64_t counter_value(const std::string& name) const;
  double gauge_value(const std::string& name) const;
  std::vector<std::string> counter_names() const;

  /// Total recordings since the last reset: counter increments are not
  /// recoverable (add(n) counts n), so this is counter values + gauge
  /// updates + histogram counts — the overhead bench uses it to estimate
  /// how many record calls one run performs.
  std::uint64_t total_recordings() const;

  /// Export everything as one JSON document:
  /// {"counters":{...},"gauges":{...},"histograms":{...}}.
  void write_json(std::ostream& os) const;
  std::string to_json() const;

 private:
  // Deques give cell-address stability across registrations.
  std::deque<detail::CounterCell> counter_cells_;
  std::deque<detail::GaugeCell> gauge_cells_;
  std::deque<detail::HistogramCell> histogram_cells_;
  std::map<std::string, detail::CounterCell*> counters_;
  std::map<std::string, detail::GaugeCell*> gauges_;
  std::map<std::string, detail::HistogramCell*> histograms_;
};

/// The current domain's registry (the process-global one unless a
/// ScopedDomain is installed on this thread — see obs/domain.h). Used by
/// the engine/platform/scheduler wiring.
MetricsRegistry& metrics();

}  // namespace cocg::obs
