// Shared command-line plumbing for the observability sinks.
//
// Tools opt in with per-sink flags, stripped before positional parsing:
//
//   --metrics-out <path>   metrics registry snapshot as JSON
//   --events-out <path>    decision event log as JSON Lines
//   --trace-out <path>     Chrome trace-event / Perfetto JSON
//   --health-out <path>    periodic health snapshots as JSON Lines
//                          (only tools that pass with_health — the
//                          profiler has no live run to snapshot)
//   --obs-out <dir>        convenience: all of the above under one
//                          directory (metrics.json, events.jsonl,
//                          trace.json, health.jsonl); created if missing;
//                          explicit per-sink flags override
//
// Any flag present flips the global observability switch AND the stage
// profiler on; --trace-out/--obs-out additionally enable the (chattier)
// per-tick trace collection.
#pragma once

#include <string>
#include <vector>

namespace cocg::obs {

struct CliOptions {
  std::string metrics_out;
  std::string events_out;
  std::string trace_out;
  std::string health_out;

  bool any() const {
    return !metrics_out.empty() || !events_out.empty() ||
           !trace_out.empty() || !health_out.empty();
  }
};

/// Remove the observability flags from `args` (in place) and return the
/// parsed options, enabling the global switches as a side effect.
/// `with_health` controls whether --health-out is recognised (and whether
/// --obs-out expands to one). Throws std::runtime_error when a flag is
/// missing its path argument or the --obs-out directory cannot be created.
CliOptions strip_cli_flags(std::vector<std::string>& args,
                           bool with_health = false);

/// One usage line per flag, for tools' help text.
const char* cli_usage();
const char* cli_usage_with_health();

/// Write whichever final outputs were requested (metrics/events/trace —
/// the health stream is written during the run by the tool itself). The
/// metrics snapshot includes the current domain's stage-cost counters
/// when profiling is on. Prints one "wrote ..." line per file to stdout.
/// Throws std::runtime_error when a file cannot be opened.
void write_outputs(const CliOptions& opts);

}  // namespace cocg::obs
