// Shared command-line plumbing for the observability sinks.
//
// Tools opt in with three flags, stripped before positional parsing:
//
//   --metrics-out <path>   metrics registry snapshot as JSON
//   --events-out <path>    decision event log as JSON Lines
//   --trace-out <path>     Chrome trace-event / Perfetto JSON
//
// Any flag present flips the global observability switch on; --trace-out
// additionally enables the (chattier) per-tick trace collection.
#pragma once

#include <string>
#include <vector>

namespace cocg::obs {

struct CliOptions {
  std::string metrics_out;
  std::string events_out;
  std::string trace_out;

  bool any() const {
    return !metrics_out.empty() || !events_out.empty() || !trace_out.empty();
  }
};

/// Remove the observability flags from `args` (in place) and return the
/// parsed options, enabling the global switches as a side effect.
/// Throws std::runtime_error when a flag is missing its path argument.
CliOptions strip_cli_flags(std::vector<std::string>& args);

/// One usage line per flag, for tools' help text.
const char* cli_usage();

/// Write whichever outputs were requested; prints one "wrote ..." line per
/// file to stdout. Throws std::runtime_error when a file cannot be opened.
void write_outputs(const CliOptions& opts);

}  // namespace cocg::obs
