#include "obs/health.h"

#include "obs/json.h"

namespace cocg::obs {

void write_health_snapshot(const HealthSnapshot& s, std::ostream& os) {
  os << "{\"t_ms\":" << s.t << ",\"arrivals\":" << s.arrivals
     << ",\"router_decisions_per_s\":" << json_number(s.router_decisions_per_s)
     << ",\"shards\":[";
  for (std::size_t i = 0; i < s.shards.size(); ++i) {
    if (i) os << ',';
    const auto& sh = s.shards[i];
    os << "{\"shard\":" << sh.shard << ",\"servers\":" << sh.servers
       << ",\"running\":" << sh.running << ",\"queued\":" << sh.queued
       << ",\"pending_events\":" << sh.pending_events
       << ",\"routed\":" << sh.routed
       << ",\"mean_gpu_util\":" << json_number(sh.mean_gpu_util) << '}';
  }
  os << "],\"slo\":";
  SloTracker::write_attainment_json(s.slo, os);
  os << ",\"stage_costs\":";
  write_stage_costs_json(s.stage_costs, os);
  if (s.executor.present) {
    os << ",\"executor\":{\"jobs_run\":" << s.executor.jobs_run
       << ",\"steals\":" << s.executor.steals
       << ",\"steal_ns\":" << s.executor.steal_ns
       << ",\"idle_waits\":" << s.executor.idle_waits
       << ",\"idle_ns\":" << s.executor.idle_ns
       << ",\"syncs\":" << s.executor.syncs << '}';
  }
  if (s.quiescence.present) {
    os << ",\"quiescence\":{\"ticks_skipped\":" << s.quiescence.ticks_skipped
       << ",\"fast_forward_windows\":" << s.quiescence.fast_forward_windows
       << ",\"resolve_cache_hits\":" << s.quiescence.resolve_cache_hits
       << ",\"resolve_cache_misses\":" << s.quiescence.resolve_cache_misses
       << '}';
  }
  os << "}\n";
}

void write_health_header(DurationMs interval_ms, std::ostream& os) {
  os << "{\"health_header\":1,\"interval_ms\":" << interval_ms << "}\n";
}

}  // namespace cocg::obs
