// Observability domains — swappable metric/event/trace sinks.
//
// The obs accessors (`metrics()`, `events()`, `trace()`) historically
// returned process-global singletons, which is exactly right for one
// single-threaded simulation per process. The fleet layer runs K shard
// simulations, possibly on different threads, and each shard must record
// into its own sinks so results are independent of the thread count and
// can be merged deterministically afterwards.
//
// A Domain bundles one registry + event log + trace builder. Installing
// one via ScopedDomain redirects the global accessors *for the current
// thread* for the guard's lifetime; with nothing installed they fall back
// to the process-global domain, so existing single-simulation code is
// unchanged. Handles resolved while a domain is installed (e.g. a
// CloudPlatform constructed under ScopedDomain) point into that domain's
// cells permanently — the cheap hot-path recording story is unchanged.
#pragma once

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace_export.h"

namespace cocg::obs {

/// One self-contained set of observability sinks.
struct Domain {
  MetricsRegistry metrics;
  EventLog events;
  TraceBuilder trace;
  StageProfiler profiler;

  /// Zero metric values (handles stay valid), clear events + trace, and
  /// zero the stage profiler (timers stay valid).
  void reset();
};

/// The process-global domain the accessors use when none is installed.
Domain& global_domain();

/// The domain the obs accessors resolve to on this thread.
Domain& current_domain();

/// RAII guard: redirects this thread's obs accessors to `d`. Nests; the
/// previous domain is restored on destruction.
class ScopedDomain {
 public:
  explicit ScopedDomain(Domain& d);
  ~ScopedDomain();

  ScopedDomain(const ScopedDomain&) = delete;
  ScopedDomain& operator=(const ScopedDomain&) = delete;

 private:
  Domain* prev_;
};

}  // namespace cocg::obs
