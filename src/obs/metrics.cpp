#include "obs/metrics.h"

#include <algorithm>
#include <atomic>
#include <sstream>

#include "common/check.h"
#include "obs/json.h"

namespace cocg::obs {

namespace {
std::atomic<bool> g_enabled{false};
}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

void Histogram::record(double v) const {
  if (cell_ == nullptr || !enabled()) return;
  const auto& edges = cell_->edges;
  const std::size_t idx = static_cast<std::size_t>(
      std::upper_bound(edges.begin(), edges.end(), v) - edges.begin());
  ++cell_->buckets[idx];
  ++cell_->count;
  cell_->sum += v;
}

std::uint64_t Histogram::bucket(std::size_t i) const {
  if (cell_ == nullptr || i >= cell_->buckets.size()) return 0;
  return cell_->buckets[i];
}

Counter MetricsRegistry::counter(const std::string& name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counter_cells_.emplace_back();
    it = counters_.emplace(name, &counter_cells_.back()).first;
  }
  return Counter(it->second);
}

Gauge MetricsRegistry::gauge(const std::string& name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauge_cells_.emplace_back();
    it = gauges_.emplace(name, &gauge_cells_.back()).first;
  }
  return Gauge(it->second);
}

Histogram MetricsRegistry::histogram(const std::string& name,
                                     std::vector<double> edges) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    COCG_EXPECTS_MSG(!edges.empty(), "histogram needs at least one edge");
    COCG_EXPECTS_MSG(std::is_sorted(edges.begin(), edges.end()) &&
                         std::adjacent_find(edges.begin(), edges.end()) ==
                             edges.end(),
                     "histogram edges must be strictly ascending");
    histogram_cells_.emplace_back();
    auto& cell = histogram_cells_.back();
    cell.buckets.assign(edges.size() + 1, 0);
    cell.edges = std::move(edges);
    it = histograms_.emplace(name, &cell).first;
  }
  return Histogram(it->second);
}

void MetricsRegistry::reset_values() {
  for (auto& c : counter_cells_) c.value = 0;
  for (auto& g : gauge_cells_) {
    g.value = 0.0;
    g.updates = 0;
  }
  for (auto& h : histogram_cells_) {
    std::fill(h.buckets.begin(), h.buckets.end(), 0);
    h.count = 0;
    h.sum = 0.0;
  }
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [name, cell] : other.counters_) {
    counter(name).cell_->value += cell->value;
  }
  for (const auto& [name, cell] : other.gauges_) {
    auto* dst = gauge(name).cell_;
    if (cell->updates > 0) dst->value = cell->value;
    dst->updates += cell->updates;
  }
  for (const auto& [name, cell] : other.histograms_) {
    auto* dst = histogram(name, cell->edges).cell_;
    COCG_EXPECTS_MSG(dst->edges == cell->edges,
                     "merge_from: histogram bucket layouts differ for \"" +
                         name + "\"");
    for (std::size_t i = 0; i < cell->buckets.size(); ++i) {
      dst->buckets[i] += cell->buckets[i];
    }
    dst->count += cell->count;
    dst->sum += cell->sum;
  }
}

bool MetricsRegistry::has_counter(const std::string& name) const {
  return counters_.count(name) != 0;
}

bool MetricsRegistry::has_gauge(const std::string& name) const {
  return gauges_.count(name) != 0;
}

bool MetricsRegistry::has_histogram(const std::string& name) const {
  return histograms_.count(name) != 0;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  auto it = counters_.find(name);
  return it != counters_.end() ? it->second->value : 0;
}

double MetricsRegistry::gauge_value(const std::string& name) const {
  auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second->value : 0.0;
}

std::uint64_t MetricsRegistry::total_recordings() const {
  std::uint64_t total = 0;
  for (const auto& c : counter_cells_) total += c.value;
  for (const auto& g : gauge_cells_) total += g.updates;
  for (const auto& h : histogram_cells_) total += h.count;
  return total;
}

std::vector<std::string> MetricsRegistry::counter_names() const {
  std::vector<std::string> out;
  out.reserve(counters_.size());
  for (const auto& [name, cell] : counters_) out.push_back(name);
  return out;
}

void MetricsRegistry::write_json(std::ostream& os) const {
  JsonObjectWriter top(os);
  {
    auto& s = top.raw_field("counters");
    JsonObjectWriter w(s);
    for (const auto& [name, cell] : counters_) w.field(name, cell->value);
  }
  {
    auto& s = top.raw_field("gauges");
    JsonObjectWriter w(s);
    for (const auto& [name, cell] : gauges_) w.field(name, cell->value);
  }
  {
    auto& s = top.raw_field("histograms");
    JsonObjectWriter w(s);
    for (const auto& [name, cell] : histograms_) {
      auto& hs = w.raw_field(name);
      JsonObjectWriter h(hs);
      h.field("count", cell->count);
      h.field("sum", cell->sum);
      {
        auto& es = h.raw_field("edges");
        es << '[';
        for (std::size_t i = 0; i < cell->edges.size(); ++i) {
          if (i != 0) es << ',';
          es << json_number(cell->edges[i]);
        }
        es << ']';
      }
      {
        auto& bs = h.raw_field("buckets");
        bs << '[';
        for (std::size_t i = 0; i < cell->buckets.size(); ++i) {
          if (i != 0) bs << ',';
          bs << cell->buckets[i];
        }
        bs << ']';
      }
    }
  }
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

}  // namespace cocg::obs
