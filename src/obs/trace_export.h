// Chrome trace-event / Perfetto-compatible trace export.
//
// TraceBuilder collects trace events against *simulated* time and writes
// the JSON object format (https://ui.perfetto.dev loads it directly):
//  * one "process" per server, with one counter track per GPU view
//    (utilization) and one "thread" per session (stage spans);
//  * complete events ("ph":"X") for stage spans, counter events ("ph":"C")
//    for per-tick utilization, instant events ("ph":"i") for decisions.
// Sim milliseconds map to trace microseconds, so a 2-hour co-location run
// renders as a navigable 2-hour timeline.
//
// The builder itself is a dumb container — hot paths must check
// trace_enabled() before assembling args (the flag folds into the global
// observability switch).
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace cocg::obs {

/// Trace collection is opt-in on top of the master switch: counter tracks
/// at tick cadence are bulky, so tools enable it only when --trace-out is
/// given.
bool trace_enabled();
void set_trace_enabled(bool on);

class TraceBuilder {
 public:
  using Args = std::vector<std::pair<std::string, std::string>>;
  using NumberArgs = std::vector<std::pair<std::string, double>>;

  TraceBuilder() = default;
  TraceBuilder(const TraceBuilder&) = delete;
  TraceBuilder& operator=(const TraceBuilder&) = delete;

  /// Name the pid row ("process_name" metadata event).
  void set_process_name(int pid, const std::string& name);
  /// Name the (pid, tid) row ("thread_name" metadata event).
  void set_thread_name(int pid, int tid, const std::string& name);

  /// Span [start, start + dur] on one track ("ph":"X").
  void add_complete(int pid, int tid, const std::string& name,
                    const std::string& cat, TimeMs start, DurationMs dur,
                    Args args = {});

  /// Zero-duration marker ("ph":"i", thread scope).
  void add_instant(int pid, int tid, const std::string& name,
                   const std::string& cat, TimeMs t, Args args = {});

  /// Counter sample ("ph":"C"): one stacked-area track per (pid, name).
  void add_counter(int pid, const std::string& name, TimeMs t,
                   NumberArgs series);

  /// Copy every record and name from `other`, shifting its pids by
  /// `pid_offset` and prefixing its process names with `process_prefix`
  /// (unnamed pids carrying events get a synthesized "<prefix>pid<N>"
  /// name). The fleet exporter uses this to render each shard as its own
  /// process group in one merged timeline.
  void append(const TraceBuilder& other, int pid_offset,
              const std::string& process_prefix);

  std::size_t size() const { return events_.size(); }
  void clear();

  /// {"traceEvents":[...],"displayTimeUnit":"ms"} — valid Chrome trace
  /// JSON; metadata events are emitted before payload events.
  void write_json(std::ostream& os) const;
  std::string to_json() const;

 private:
  struct Record {
    char ph = 'X';
    int pid = 0;
    int tid = 0;
    TimeMs ts_ms = 0;
    DurationMs dur_ms = 0;
    std::string name;
    std::string cat;
    Args args;          ///< string-valued args
    NumberArgs nargs;   ///< number-valued args (counters)
  };
  void write_record(std::ostream& os, const Record& r) const;

  std::vector<Record> events_;
  std::map<int, std::string> process_names_;
  std::map<std::pair<int, int>, std::string> thread_names_;
};

/// The current domain's trace builder (process-global unless a
/// ScopedDomain is installed on this thread — see obs/domain.h).
TraceBuilder& trace();

}  // namespace cocg::obs
