#include "obs/cli.h"

#include <filesystem>
#include <fstream>
#include <iostream>
#include <stdexcept>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace_export.h"

namespace cocg::obs {

CliOptions strip_cli_flags(std::vector<std::string>& args, bool with_health) {
  CliOptions opts;
  std::string obs_dir;
  std::vector<std::string> rest;
  rest.reserve(args.size());
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::string* target = nullptr;
    if (args[i] == "--metrics-out") {
      target = &opts.metrics_out;
    } else if (args[i] == "--events-out") {
      target = &opts.events_out;
    } else if (args[i] == "--trace-out") {
      target = &opts.trace_out;
    } else if (with_health && args[i] == "--health-out") {
      target = &opts.health_out;
    } else if (args[i] == "--obs-out") {
      target = &obs_dir;
    }
    if (target == nullptr) {
      rest.push_back(args[i]);
      continue;
    }
    if (i + 1 >= args.size()) {
      throw std::runtime_error(args[i] + " requires a path");
    }
    *target = args[++i];
  }
  args = std::move(rest);
  if (!obs_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(obs_dir, ec);
    if (ec) {
      throw std::runtime_error("--obs-out: cannot create directory " +
                               obs_dir + ": " + ec.message());
    }
    const std::filesystem::path dir(obs_dir);
    // Explicit per-sink flags win over the directory expansion.
    if (opts.metrics_out.empty()) {
      opts.metrics_out = (dir / "metrics.json").string();
    }
    if (opts.events_out.empty()) {
      opts.events_out = (dir / "events.jsonl").string();
    }
    if (opts.trace_out.empty()) {
      opts.trace_out = (dir / "trace.json").string();
    }
    if (with_health && opts.health_out.empty()) {
      opts.health_out = (dir / "health.jsonl").string();
    }
  }
  if (opts.any()) {
    set_enabled(true);
    set_profiling_enabled(true);
  }
  if (!opts.trace_out.empty()) set_trace_enabled(true);
  return opts;
}

const char* cli_usage() {
  return
      "  --metrics-out <path>  write metrics registry snapshot (JSON)\n"
      "  --events-out <path>   write decision event log (JSON Lines)\n"
      "  --trace-out <path>    write Chrome trace-event JSON (Perfetto)\n"
      "  --obs-out <dir>       all of the above under one directory\n";
}

const char* cli_usage_with_health() {
  return
      "  --metrics-out <path>  write metrics registry snapshot (JSON)\n"
      "  --events-out <path>   write decision event log (JSON Lines)\n"
      "  --trace-out <path>    write Chrome trace-event JSON (Perfetto)\n"
      "  --health-out <path>   stream health snapshots (JSON Lines)\n"
      "  --obs-out <dir>       all of the above under one directory\n";
}

namespace {

std::ofstream open_or_throw(const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open " + path + " for writing");
  return os;
}

}  // namespace

void write_outputs(const CliOptions& opts) {
  if (!opts.metrics_out.empty()) {
    // Fold the stage table into the registry so the snapshot carries the
    // profiler.<stage>.{calls,total_ns} counters.
    if (profiling_enabled()) profiler().export_counters(metrics());
    auto os = open_or_throw(opts.metrics_out);
    metrics().write_json(os);
    os << "\n";
    std::cout << "wrote metrics to " << opts.metrics_out << "\n";
  }
  if (!opts.events_out.empty()) {
    auto os = open_or_throw(opts.events_out);
    events().write_jsonl(os);
    std::cout << "wrote " << events().size() << " events to "
              << opts.events_out << "\n";
  }
  if (!opts.trace_out.empty()) {
    auto os = open_or_throw(opts.trace_out);
    trace().write_json(os);
    os << "\n";
    std::cout << "wrote trace to " << opts.trace_out
              << " (open in https://ui.perfetto.dev)\n";
  }
}

}  // namespace cocg::obs
