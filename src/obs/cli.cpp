#include "obs/cli.h"

#include <fstream>
#include <iostream>
#include <stdexcept>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace_export.h"

namespace cocg::obs {

CliOptions strip_cli_flags(std::vector<std::string>& args) {
  CliOptions opts;
  std::vector<std::string> rest;
  rest.reserve(args.size());
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::string* target = nullptr;
    if (args[i] == "--metrics-out") {
      target = &opts.metrics_out;
    } else if (args[i] == "--events-out") {
      target = &opts.events_out;
    } else if (args[i] == "--trace-out") {
      target = &opts.trace_out;
    }
    if (target == nullptr) {
      rest.push_back(args[i]);
      continue;
    }
    if (i + 1 >= args.size()) {
      throw std::runtime_error(args[i] + " requires a file path");
    }
    *target = args[++i];
  }
  args = std::move(rest);
  if (opts.any()) set_enabled(true);
  if (!opts.trace_out.empty()) set_trace_enabled(true);
  return opts;
}

const char* cli_usage() {
  return
      "  --metrics-out <path>  write metrics registry snapshot (JSON)\n"
      "  --events-out <path>   write decision event log (JSON Lines)\n"
      "  --trace-out <path>    write Chrome trace-event JSON (Perfetto)\n";
}

namespace {

std::ofstream open_or_throw(const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open " + path + " for writing");
  return os;
}

}  // namespace

void write_outputs(const CliOptions& opts) {
  if (!opts.metrics_out.empty()) {
    auto os = open_or_throw(opts.metrics_out);
    metrics().write_json(os);
    os << "\n";
    std::cout << "wrote metrics to " << opts.metrics_out << "\n";
  }
  if (!opts.events_out.empty()) {
    auto os = open_or_throw(opts.events_out);
    events().write_jsonl(os);
    std::cout << "wrote " << events().size() << " events to "
              << opts.events_out << "\n";
  }
  if (!opts.trace_out.empty()) {
    auto os = open_or_throw(opts.trace_out);
    trace().write_json(os);
    os << "\n";
    std::cout << "wrote trace to " << opts.trace_out
              << " (open in https://ui.perfetto.dev)\n";
  }
}

}  // namespace cocg::obs
