#include "obs/slo.h"

#include <algorithm>

#include "common/check.h"
#include "obs/json.h"

namespace cocg::obs {

namespace {

/// Insert `target` into the base edge set, sorted and deduplicated.
std::vector<double> edges_with_target(std::vector<double> base,
                                      double target) {
  base.push_back(target);
  std::sort(base.begin(), base.end());
  base.erase(std::unique(base.begin(), base.end()), base.end());
  return base;
}

std::size_t index_of(const std::vector<double>& edges, double target) {
  const auto it = std::find(edges.begin(), edges.end(), target);
  return static_cast<std::size_t>(it - edges.begin());
}

std::size_t bucket_index(const std::vector<double>& edges, double v) {
  return static_cast<std::size_t>(
      std::upper_bound(edges.begin(), edges.end(), v) - edges.begin());
}

}  // namespace

void SloTracker::configure(std::vector<SloClassConfig> classes) {
  COCG_EXPECTS_MSG(classes_.empty(), "SloTracker::configure called twice");
  COCG_EXPECTS_MSG(!classes.empty(), "SloTracker needs at least one class");
  classes_.reserve(classes.size());
  for (auto& cfg : classes) {
    ClassState st;
    st.fps_edges =
        edges_with_target({0.25, 0.50, 0.75, 0.98}, cfg.min_fps_ratio);
    st.lat_edges =
        edges_with_target({25.0, 50.0, 200.0, 400.0}, cfg.max_latency_ms);
    st.fps_buckets.assign(st.fps_edges.size() + 1, 0);
    st.lat_buckets.assign(st.lat_edges.size() + 1, 0);
    st.fps_target_idx = index_of(st.fps_edges, cfg.min_fps_ratio);
    st.lat_target_idx = index_of(st.lat_edges, cfg.max_latency_ms);
    st.fps_hist =
        metrics().histogram("slo." + cfg.name + ".fps_ratio", st.fps_edges);
    st.lat_hist =
        metrics().histogram("slo." + cfg.name + ".latency_ms", st.lat_edges);
    st.cfg = std::move(cfg);
    classes_.push_back(std::move(st));
  }
}

void SloTracker::record(std::size_t class_index, double fps_ratio,
                        double latency_ms) {
  if (class_index >= classes_.size()) return;
  ClassState& st = classes_[class_index];
  ++st.runs;
  ++st.fps_buckets[bucket_index(st.fps_edges, fps_ratio)];
  // "No rendered frames" (latency_ms <= 0) counts as attained: record an
  // in-range zero rather than skipping, so runs == histogram count holds.
  const double lat = latency_ms > 0 ? latency_ms : 0.0;
  ++st.lat_buckets[bucket_index(st.lat_edges, lat)];
  st.fps_hist.record(fps_ratio);
  st.lat_hist.record(lat);
}

void SloTracker::merge_from(const SloTracker& other) {
  COCG_EXPECTS_MSG(classes_.size() == other.classes_.size(),
                   "SloTracker::merge_from: class tables differ in size");
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    ClassState& dst = classes_[i];
    const ClassState& src = other.classes_[i];
    COCG_EXPECTS_MSG(dst.cfg.name == src.cfg.name &&
                         dst.fps_edges == src.fps_edges &&
                         dst.lat_edges == src.lat_edges,
                     "SloTracker::merge_from: class configs differ");
    dst.runs += src.runs;
    for (std::size_t b = 0; b < dst.fps_buckets.size(); ++b) {
      dst.fps_buckets[b] += src.fps_buckets[b];
    }
    for (std::size_t b = 0; b < dst.lat_buckets.size(); ++b) {
      dst.lat_buckets[b] += src.lat_buckets[b];
    }
  }
}

void SloTracker::reset_values() {
  for (auto& st : classes_) {
    st.runs = 0;
    std::fill(st.fps_buckets.begin(), st.fps_buckets.end(), 0);
    std::fill(st.lat_buckets.begin(), st.lat_buckets.end(), 0);
  }
}

std::vector<SloAttainment> SloTracker::attainment() const {
  std::vector<SloAttainment> rows;
  rows.reserve(classes_.size());
  for (const auto& st : classes_) {
    SloAttainment row;
    row.slo_class = st.cfg.name;
    row.runs = st.runs;
    if (st.runs > 0) {
      // Values >= min_fps_ratio land strictly above the target edge:
      // buckets (fps_target_idx, end].
      std::uint64_t fps_ok = 0;
      for (std::size_t b = st.fps_target_idx + 1; b < st.fps_buckets.size();
           ++b) {
        fps_ok += st.fps_buckets[b];
      }
      // Values < max_latency_ms land at or below the target edge's
      // bucket: buckets [0, lat_target_idx].
      std::uint64_t lat_ok = 0;
      for (std::size_t b = 0; b <= st.lat_target_idx; ++b) {
        lat_ok += st.lat_buckets[b];
      }
      const double n = static_cast<double>(st.runs);
      row.fps_attainment_pct = 100.0 * static_cast<double>(fps_ok) / n;
      row.latency_attainment_pct = 100.0 * static_cast<double>(lat_ok) / n;
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

void SloTracker::write_attainment_json(const std::vector<SloAttainment>& rows,
                                       std::ostream& os) {
  os << '[';
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i) os << ',';
    const auto& r = rows[i];
    os << "{\"class\":\"" << json_escape(r.slo_class)
       << "\",\"runs\":" << r.runs
       << ",\"fps_attainment_pct\":" << json_number(r.fps_attainment_pct)
       << ",\"latency_attainment_pct\":"
       << json_number(r.latency_attainment_pct) << '}';
  }
  os << ']';
}

}  // namespace cocg::obs
