#include "obs/trace_export.h"

#include <atomic>
#include <sstream>

#include "obs/json.h"
#include "obs/metrics.h"

namespace cocg::obs {

namespace {
std::atomic<bool> g_trace_on{false};
}  // namespace

bool trace_enabled() {
  return g_trace_on.load(std::memory_order_relaxed) && enabled();
}

void set_trace_enabled(bool on) {
  g_trace_on.store(on, std::memory_order_relaxed);
}

void TraceBuilder::set_process_name(int pid, const std::string& name) {
  process_names_[pid] = name;
}

void TraceBuilder::set_thread_name(int pid, int tid, const std::string& name) {
  thread_names_[{pid, tid}] = name;
}

void TraceBuilder::add_complete(int pid, int tid, const std::string& name,
                                const std::string& cat, TimeMs start,
                                DurationMs dur, Args args) {
  Record r;
  r.ph = 'X';
  r.pid = pid;
  r.tid = tid;
  r.ts_ms = start;
  r.dur_ms = dur;
  r.name = name;
  r.cat = cat;
  r.args = std::move(args);
  events_.push_back(std::move(r));
}

void TraceBuilder::add_instant(int pid, int tid, const std::string& name,
                               const std::string& cat, TimeMs t, Args args) {
  Record r;
  r.ph = 'i';
  r.pid = pid;
  r.tid = tid;
  r.ts_ms = t;
  r.name = name;
  r.cat = cat;
  r.args = std::move(args);
  events_.push_back(std::move(r));
}

void TraceBuilder::add_counter(int pid, const std::string& name, TimeMs t,
                               NumberArgs series) {
  Record r;
  r.ph = 'C';
  r.pid = pid;
  r.ts_ms = t;
  r.name = name;
  r.nargs = std::move(series);
  events_.push_back(std::move(r));
}

void TraceBuilder::append(const TraceBuilder& other, int pid_offset,
                          const std::string& process_prefix) {
  for (const auto& [pid, name] : other.process_names_) {
    process_names_[pid + pid_offset] = process_prefix + name;
  }
  for (const auto& [key, name] : other.thread_names_) {
    thread_names_[{key.first + pid_offset, key.second}] = name;
  }
  events_.reserve(events_.size() + other.events_.size());
  for (Record r : other.events_) {
    // Give event-carrying pids the source never named a stable label so
    // shards stay distinguishable in the merged view.
    if (process_names_.count(r.pid + pid_offset) == 0) {
      process_names_[r.pid + pid_offset] =
          process_prefix + "pid" + std::to_string(r.pid);
    }
    r.pid += pid_offset;
    events_.push_back(std::move(r));
  }
}

void TraceBuilder::clear() {
  events_.clear();
  process_names_.clear();
  thread_names_.clear();
}

void TraceBuilder::write_record(std::ostream& os, const Record& r) const {
  JsonObjectWriter w(os);
  w.field("ph", std::string(1, r.ph));
  w.field("pid", r.pid);
  if (r.ph != 'C') w.field("tid", r.tid);
  w.field("ts", static_cast<std::int64_t>(r.ts_ms) * 1000);
  if (r.ph == 'X') {
    w.field("dur", static_cast<std::int64_t>(r.dur_ms) * 1000);
  }
  w.field("name", r.name);
  if (!r.cat.empty()) w.field("cat", r.cat);
  if (r.ph == 'i') w.field("s", "t");
  if (!r.args.empty() || !r.nargs.empty() || r.ph == 'C') {
    auto& as = w.raw_field("args");
    JsonObjectWriter aw(as);
    for (const auto& [k, v] : r.args) aw.field(k, v);
    for (const auto& [k, v] : r.nargs) aw.field(k, v);
  }
}

void TraceBuilder::write_json(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  for (const auto& [pid, name] : process_names_) {
    sep();
    JsonObjectWriter w(os);
    w.field("ph", "M");
    w.field("pid", pid);
    w.field("name", "process_name");
    auto& as = w.raw_field("args");
    JsonObjectWriter aw(as);
    aw.field("name", name);
  }
  for (const auto& [key, name] : thread_names_) {
    sep();
    JsonObjectWriter w(os);
    w.field("ph", "M");
    w.field("pid", key.first);
    w.field("tid", key.second);
    w.field("name", "thread_name");
    auto& as = w.raw_field("args");
    JsonObjectWriter aw(as);
    aw.field("name", name);
  }
  for (const auto& r : events_) {
    sep();
    write_record(os, r);
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
}

std::string TraceBuilder::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

}  // namespace cocg::obs
