// Minimal JSON support for the observability layer: a streaming writer for
// the exporters and a small recursive-descent parser used to validate and
// round-trip our own output (metrics JSON, event JSONL, Chrome trace JSON).
// Not a general-purpose JSON library — it handles exactly the subset the
// obs exporters emit (finite numbers, UTF-8 strings, objects, arrays).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace cocg::obs {

/// Escape a string for embedding inside JSON double quotes.
std::string json_escape(const std::string& s);

/// Format a double the way the exporters do: integral values print without
/// a fractional part, everything else with enough digits to round-trip.
std::string json_number(double v);

/// Helper that writes one `{...}` object with comma management. Values are
/// appended pre-serialized (via the typed overloads).
class JsonObjectWriter {
 public:
  explicit JsonObjectWriter(std::ostream& os);
  ~JsonObjectWriter();

  JsonObjectWriter(const JsonObjectWriter&) = delete;
  JsonObjectWriter& operator=(const JsonObjectWriter&) = delete;

  void field(const std::string& key, const std::string& value);
  void field(const std::string& key, const char* value);
  void field(const std::string& key, double value);
  void field(const std::string& key, std::int64_t value);
  void field(const std::string& key, std::uint64_t value);
  void field(const std::string& key, int value);
  void field(const std::string& key, bool value);
  /// Emit `"key":` followed by nothing — the caller writes the raw value
  /// (nested array/object) directly to the stream.
  std::ostream& raw_field(const std::string& key);

  /// Write the closing `}` now (idempotent; the destructor otherwise does
  /// it). Needed when the stream's contents are read while the writer is
  /// still in scope, e.g. `os.str()` on a stringstream.
  void close();

 private:
  void comma();
  std::ostream& os_;
  bool first_ = true;
  bool closed_ = false;
};

/// Parsed JSON value (tests and JSONL ingestion).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }

  /// Object member access; returns nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;

  /// Typed getters with defaults (convenience for flat records).
  std::string get_string(const std::string& key,
                         const std::string& fallback = "") const;
  double get_number(const std::string& key, double fallback = 0.0) const;
  bool get_bool(const std::string& key, bool fallback = false) const;
};

/// Parse one JSON document. Returns false on malformed input (partial
/// results in `out` are unspecified). Trailing whitespace is allowed;
/// trailing garbage is an error.
bool json_parse(const std::string& text, JsonValue& out);

}  // namespace cocg::obs
