// Stage profiler — self-profiling for the tick pipeline.
//
// Answers "where does a tick's time go?" with a fixed stage taxonomy
// covering the whole pipeline (RNG draws, resource kernels, contention
// resolve, event-queue management, predictor/distributor decisions, the
// regulator, the fleet router and the shard barrier). Per-stage wall time
// and call counts accumulate into cache-line-padded slots of the current
// obs::Domain's StageProfiler, so fleet shards profile independently on
// their own threads and merge deterministically at aggregation — the same
// story as the metrics registry.
//
// Design rules (mirrors obs/metrics.h; this layer gates future perf PRs):
//  * handles are resolved ONCE (StageTimer binds a profiler slot at
//    construction); opening a StageScope with profiling off is a relaxed
//    load + branch, with it on it is two steady-clock reads — cheap
//    enough to leave in the event loop and per-tick code;
//  * a StageScope never touches the heap, so the zero-allocation
//    guarantee of the simulation hot path holds with profiling enabled
//    (tests/platform/test_hotpath_alloc runs both ways);
//  * stages may nest (rng_draws fires inside the per-session advance that
//    resource_kernels brackets in spirit); reported times are inclusive
//    per stage, so the table is a cost breakdown, not a partition;
//  * the deterministic clock mode replaces wall time with a per-profiler
//    sequence number, making stage costs a pure function of the call
//    sequence — the fleet determinism tests use it to assert that
//    reports with profiling enabled are byte-identical at any thread
//    count.
#pragma once

#include <array>
#include <cstdint>
#include <ostream>
#include <string>

#include "obs/metrics.h"

namespace cocg::obs {

/// The fixed stage taxonomy of the tick pipeline. Extend by appending
/// (exporters iterate [0, kNumStages) and name rows via stage_name).
enum class Stage : std::uint8_t {
  kRngDraws = 0,        ///< measurement noise + streaming jitter draws
  kResourceKernels,     ///< per-session demand/FPS advance (GameSession)
  kContentionResolve,   ///< hw::resolve_server per-view contention
  kEventQueue,          ///< event-queue pop/heap management
  kPredictorDecide,     ///< monitor collect/judge/predict + candidate outlook
  kDistributorDecide,   ///< Algorithm 1 view scan in admit()
  kRegulator,           ///< loading-steal resolve + reallocation
  kRouter,              ///< fleet per-arrival shard choice
  kShardBarrier,        ///< fleet epoch barrier (pool run + join)
  kExecutorSteal,       ///< steal runner: epochs run off their home worker
  kExecutorIdle,        ///< steal runner: worker wall time with no runnable job
  kFastForward,         ///< quiescent macro-tick window materialization
};

inline constexpr std::size_t kNumStages = 12;

/// Stable snake_case stage name ("rng_draws", ...); used as the JSON key
/// in every export.
const char* stage_name(Stage s);
const char* stage_name(std::size_t index);

/// Profiling switch, layered on top of the master obs switch like
/// trace_enabled(): stage timing is opt-in because the enabled path costs
/// two clock reads per scope.
bool profiling_enabled();
void set_profiling_enabled(bool on);

/// Clock source for every StageProfiler in the process. kWall reads
/// std::chrono::steady_clock; kDeterministic counts scope transitions per
/// profiler, which makes stage costs reproducible across runs and thread
/// counts (determinism tests only — the numbers are not nanoseconds).
enum class ProfilerClockMode { kWall, kDeterministic };
void set_profiler_clock_mode(ProfilerClockMode m);
ProfilerClockMode profiler_clock_mode();

/// One stage's accumulated cost.
struct StageStats {
  std::uint64_t calls = 0;
  std::uint64_t total_ns = 0;
};

/// Plain-value snapshot of a whole profiler (merge/aggregation transport).
using StageProfile = std::array<StageStats, kNumStages>;

class StageTimer;

class StageProfiler {
 public:
  StageProfiler() = default;
  StageProfiler(const StageProfiler&) = delete;
  StageProfiler& operator=(const StageProfiler&) = delete;

  void reset();

  StageStats stats(Stage s) const {
    const auto& slot = slots_[static_cast<std::size_t>(s)];
    return StageStats{slot.calls, slot.total_ns};
  }
  StageProfile profile() const;
  std::uint64_t total_calls() const;
  std::uint64_t total_ns() const;

  /// Fold another profiler (or a snapshot) into this one. The fleet merges
  /// shard profilers in shard order — deterministic.
  void merge_from(const StageProfiler& other);
  void merge_from(const StageProfile& p);

  /// Register/accumulate the stage table into `reg` as counters
  /// `profiler.<stage>.calls` / `profiler.<stage>.total_ns` — the
  /// metrics-JSON export. Call once per run (counters are additive).
  void export_counters(MetricsRegistry& reg) const;

 private:
  friend class StageScope;
  friend class StageTimer;

  /// Cache-line padded so profilers of adjacent fleet shards never share
  /// a line even when Domains are allocated back to back.
  struct alignas(64) Slot {
    std::uint64_t calls = 0;
    std::uint64_t total_ns = 0;
  };

  std::uint64_t now_ns();

  std::array<Slot, kNumStages> slots_{};
  std::uint64_t det_seq_ = 0;  ///< deterministic-clock sequence counter
};

/// Pre-resolved handle to one stage slot of one profiler (the Counter
/// idiom): resolve at construction, open StageScopes on the hot path.
class StageTimer {
 public:
  StageTimer() = default;
  StageTimer(StageProfiler& p, Stage s)
      : prof_(&p), slot_(&p.slots_[static_cast<std::size_t>(s)]) {}

  bool valid() const { return slot_ != nullptr; }

 private:
  friend class StageScope;
  StageProfiler* prof_ = nullptr;
  StageProfiler::Slot* slot_ = nullptr;
};

/// RAII stage scope. Disabled (or on an unresolved timer) it is a relaxed
/// load + branch; enabled it is two clock reads and two slot writes.
/// Never allocates.
class StageScope {
 public:
  explicit StageScope(const StageTimer& t) {
    if (t.slot_ == nullptr || !profiling_enabled()) return;
    prof_ = t.prof_;
    slot_ = t.slot_;
    start_ = prof_->now_ns();
  }
  ~StageScope() {
    if (slot_ == nullptr) return;
    slot_->total_ns += prof_->now_ns() - start_;
    ++slot_->calls;
  }

  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

 private:
  StageProfiler* prof_ = nullptr;
  StageProfiler::Slot* slot_ = nullptr;
  std::uint64_t start_ = 0;
};

/// The current domain's profiler (process-global unless a ScopedDomain is
/// installed on this thread — see obs/domain.h).
StageProfiler& profiler();

/// Resolve a timer for `s` against the current domain's profiler.
StageTimer stage_timer(Stage s);

/// `"stage_costs":[{"stage":...,"calls":...,"total_ns":...},...]` — the
/// canonical JSON array shared by the fleet report and health snapshots.
/// Emits every stage (zero rows included) so the schema is stable.
void write_stage_costs_json(const StageProfile& p, std::ostream& os);

}  // namespace cocg::obs
